/**
 * @file
 * Sustained-load microbenchmark for the solarcore_serve daemon: N
 * concurrent clients drive a worker-pool server over a real AF_UNIX
 * socket, first with all-miss queries (cold: every request simulates
 * its units) and then re-sending the same queries (warm: result-cache
 * hits, the latency floor of the service). The warm pass repeats
 * several times and keeps the best pass per configuration -- on a
 * shared machine contention only ever adds time, so the minimum is
 * the least-disturbed sample.
 *
 * Two daemons run side by side: one with tracing disabled and one
 * with the span layer armed (--trace-out set, head sampling off)
 * while the clients stay untraced; passes alternate between them so
 * machine-load drift hits both equally. The relative difference of
 * the best all-miss (simulating) pass medians is the "tracing-off
 * overhead" that bench/run_microbench.sh gates at <1%: arming the
 * span layer must not tax a real planning request that does not
 * keep a trace. (The cache-hit floor is also recorded for both
 * configurations, informationally -- at ~20 us a reply, the fixed
 * span-staging cost is a visible relative slice there.)
 *
 * Output is a flat JSON document (stdout and optionally --json-out)
 * recorded by run_microbench.sh as BENCH_serve.json; every top-level
 * number feeds the bench/history trajectory for the phase-2
 * sustained-load p99 target.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

#ifndef _WIN32
#include <stdlib.h>
#endif

namespace {

using namespace solarcore;
using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/**
 * One cheap single-unit query; @p ordinal picks a distinct seed and
 * @p salt shifts the whole seed range so a pass can be forced to
 * miss the result cache (salt 0 is the warm working set).
 */
serve::PlanQuery
benchQuery(std::uint64_t request_id, std::uint32_t ordinal,
           std::uint32_t salt = 0)
{
    serve::PlanQuery q;
    q.requestId = request_id;
    q.nodesPerUnit = 100;
    q.grid.sites = {solar::SiteId::AZ};
    q.grid.months = {solar::Month::Jul};
    q.grid.policies = {campaign::CampaignPolicy::MpptOpt};
    q.grid.workloads = {workload::WorkloadId::HM2};
    q.grid.seeds = {salt + ordinal + 1};
    q.grid.dtSeconds = 480.0;
    return q;
}

/** Times the query set is re-sent per warm pass (see runLoad). */
constexpr int kWarmIterations = 25;

double
percentileMs(std::vector<double> values, double q)
{
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(values.size() - 1) + 0.5);
    return values[std::min(idx, values.size() - 1)];
}

/** One live server plus its client fleet. */
struct LoadTarget
{
    explicit LoadTarget(const serve::ServeConfig &cfg)
        : server(cfg), socketPath(cfg.socketPath)
    {
    }

    bool
    start(int clients)
    {
        if (!server.start()) {
            std::cerr << "microbench_serve: cannot start server on "
                      << socketPath << "\n";
            return false;
        }
        for (int c = 0; c < clients; ++c) {
            conns.push_back(std::make_unique<serve::Client>());
            if (!conns.back()->connect(socketPath)) {
                std::cerr << "microbench_serve: connect failed\n";
                return false;
            }
        }
        return true;
    }

    serve::Server server;
    std::string socketPath;
    std::vector<std::unique_ptr<serve::Client>> conns;
    double coldSeconds = 0.0;
    double warmBestSeconds = 0.0;
    double warmBestP50Ms = 0.0; //!< min over passes of the pass median
    double simBestP50Ms = 0.0;  //!< median over all-miss pass medians
    double simOverheadPct = 0.0; //!< armed-vs-off gate result (off only)
    std::vector<double> warmLatencyMs; //!< per-request, best pass
};

/**
 * One pass over @p target: every client thread loops @p iters times
 * over its share of the query set (warm passes iterate so the
 * measured window amortises thread spawn/join). @return elapsed
 * seconds, or a negative value when any request failed.
 */
double
runPass(LoadTarget &target, int clients, int requests, int iters,
        std::uint32_t salt, std::vector<double> *lat_ms)
{
    std::atomic<bool> failed{false};
    const auto t0 = Clock::now();
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            for (int loop = 0; loop < iters; ++loop) {
                for (int i = 0; i < requests; ++i) {
                    const auto ordinal = static_cast<std::uint32_t>(
                        c * requests + i);
                    const serve::PlanQuery q =
                        benchQuery(ordinal + 1, ordinal, salt);
                    serve::PlanReply reply;
                    std::string error;
                    const auto rt0 = Clock::now();
                    if (!target.conns[static_cast<std::size_t>(c)]
                             ->call(q, reply, 60000, error) ||
                        reply.status != serve::ReplyStatus::Ok) {
                        failed.store(true);
                        return;
                    }
                    if (lat_ms != nullptr)
                        (*lat_ms)[static_cast<std::size_t>(
                            (loop * clients + c) * requests + i)] =
                            secondsSince(rt0) * 1e3;
                }
            }
        });
    }
    for (auto &t : threads)
        t.join();
    const double elapsed = secondsSince(t0);
    return failed.load() ? -1.0 : elapsed;
}

/**
 * Cold pass on both targets, then @p reps warm (cache-hit) passes
 * ALTERNATING between the two targets so slow machine-load drift
 * hits both configurations equally; each target keeps its best
 * (least-disturbed) pass.
 */
bool
runInterleaved(LoadTarget &off, LoadTarget &armed, int clients,
               int requests, int reps)
{
    off.coldSeconds = runPass(off, clients, requests, 1, 0, nullptr);
    armed.coldSeconds =
        runPass(armed, clients, requests, 1, 0, nullptr);
    if (off.coldSeconds < 0.0 || armed.coldSeconds < 0.0)
        return false;

    const auto per_pass =
        static_cast<std::size_t>(clients) *
        static_cast<std::size_t>(requests) *
        static_cast<std::size_t>(kWarmIterations);
    for (int r = 0; r < reps; ++r) {
        for (LoadTarget *target : {&off, &armed}) {
            std::vector<double> rep_lat(per_pass, 0.0);
            const double elapsed =
                runPass(*target, clients, requests, kWarmIterations,
                        0, &rep_lat);
            if (elapsed < 0.0)
                return false;
            // Pass MEDIANS are robust to preemption outliers on a
            // loaded machine; minimise them over the repetitions
            // like the pass wall time.
            const double p50 = percentileMs(rep_lat, 0.50);
            if (r == 0 || p50 < target->warmBestP50Ms)
                target->warmBestP50Ms = p50;
            if (r == 0 || elapsed < target->warmBestSeconds) {
                target->warmBestSeconds = elapsed;
                target->warmLatencyMs = std::move(rep_lat);
            }
        }
    }

    return true;
}

/**
 * The tracing-off overhead gate. @p gate_off and @p gate_armed run
 * with the answer cache DISABLED so the same fixed query set
 * simulates its unit on every pass: the measured work is a real
 * planning request (not the cache-hit floor, where socket scheduling
 * dominates and the fixed span-staging cost is a huge relative
 * slice) and is identical across passes and daemons. A SINGLE client
 * runs serially -- concurrency on a small machine adds queue-wait
 * jitter that swamps a sub-percent delta -- with passes alternating
 * between the daemons; each side keeps its best (least-disturbed)
 * pass median, mirroring the BM_SimulatedDayObsOff gate.
 */
bool
runGate(LoadTarget &gate_off, LoadTarget &gate_armed, int total_requests,
        int reps)
{
    for (int r = 0; r < reps; ++r) {
        for (LoadTarget *target : {&gate_off, &gate_armed}) {
            std::vector<double> rep_lat(
                static_cast<std::size_t>(total_requests), 0.0);
            const double elapsed =
                runPass(*target, 1, total_requests, 1, 0, &rep_lat);
            if (elapsed < 0.0)
                return false;
            const double p50 = percentileMs(rep_lat, 0.50);
            if (r == 0 || p50 < target->simBestP50Ms)
                target->simBestP50Ms = p50;
        }
    }
    gate_off.simOverheadPct =
        (gate_armed.simBestP50Ms - gate_off.simBestP50Ms) /
        gate_off.simBestP50Ms * 100.0;
    return true;
}

long
parseFlag(const std::string &arg, const char *name, long fallback)
{
    const std::string prefix = std::string(name) + "=";
    if (arg.rfind(prefix, 0) != 0)
        return fallback;
    return std::strtol(arg.c_str() + prefix.size(), nullptr, 10);
}

} // namespace

int
main(int argc, char **argv)
{
    int clients = 4;
    int requests = 8;
    int reps = 15;
    std::string json_out;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        clients = static_cast<int>(
            parseFlag(arg, "--clients", clients));
        requests = static_cast<int>(
            parseFlag(arg, "--requests", requests));
        reps = static_cast<int>(parseFlag(arg, "--reps", reps));
        if (arg.rfind("--json-out=", 0) == 0)
            json_out = arg.substr(std::string("--json-out=").size());
        if (arg == "--help" || arg == "-h") {
            std::cout << "usage: microbench_serve [--clients=N] "
                         "[--requests=M] [--reps=R] "
                         "[--json-out=PATH]\n";
            return 0;
        }
    }
    if (!serve::serveSupported()) {
        std::cerr << "microbench_serve: AF_UNIX serving not "
                     "supported here\n";
        return 77;
    }

#ifndef _WIN32
    char tmpl[] = "/tmp/scservebenchXXXXXX";
    if (mkdtemp(tmpl) == nullptr) {
        std::cerr << "microbench_serve: mkdtemp failed\n";
        return 1;
    }
    const std::string dir = tmpl;
#else
    const std::string dir = ".";
#endif

    serve::ServeConfig base;
    base.socketPath = dir + "/off.sock";
    base.workers = 2;
    base.minPublishSeconds = 0.0;
    serve::ServeConfig armed_cfg = base;
    armed_cfg.socketPath = dir + "/armed.sock";
    armed_cfg.traceOut = dir + "/spans.jsonl";
    armed_cfg.traceSample = 0; // only client-stamped / tail kept

    serve::ServeConfig gate_off_cfg = base;
    gate_off_cfg.socketPath = dir + "/gateoff.sock";
    gate_off_cfg.resultCacheCap = 0;
    serve::ServeConfig gate_armed_cfg = armed_cfg;
    gate_armed_cfg.socketPath = dir + "/gatearmed.sock";
    gate_armed_cfg.resultCacheCap = 0;
    gate_armed_cfg.traceOut = dir + "/gate_spans.jsonl";

    bool ok = false;
    LoadTarget off(base);
    LoadTarget traced(armed_cfg);
    if (off.start(clients) && traced.start(clients))
        ok = runInterleaved(off, traced, clients, requests, reps);
    off.server.stop();
    traced.server.stop();

    LoadTarget gate_off(gate_off_cfg);
    LoadTarget gate_armed(gate_armed_cfg);
    if (ok) {
        ok = false;
        if (gate_off.start(1) && gate_armed.start(1))
            ok = runGate(gate_off, gate_armed, clients * requests,
                         reps);
        gate_off.server.stop();
        gate_armed.server.stop();
    }

#ifndef _WIN32
    std::remove((dir + "/spans.jsonl").c_str());
    std::remove((dir + "/gate_spans.jsonl").c_str());
    std::remove(tmpl);
#endif
    if (!ok) {
        std::cerr << "microbench_serve: load generation failed\n";
        return 1;
    }

    const double total =
        static_cast<double>(clients) * static_cast<double>(requests);
    const double warm_total = total * kWarmIterations;
    const double overhead_pct = gate_off.simOverheadPct;
    std::ostringstream os;
    os.precision(6);
    os << std::fixed;
    os << "{\n"
       << " \"schema\": \"solarcore-bench-serve-v1\",\n"
       << " \"clients\": " << clients << ",\n"
       << " \"requests_per_client\": " << requests << ",\n"
       << " \"warm_repetitions\": " << reps << ",\n"
       << " \"cold_requests_per_second\": "
       << total / off.coldSeconds << ",\n"
       << " \"warm_requests_per_second\": "
       << warm_total / off.warmBestSeconds << ",\n"
       << " \"warm_p50_ms\": "
       << percentileMs(off.warmLatencyMs, 0.50) << ",\n"
       << " \"warm_p99_ms\": "
       << percentileMs(off.warmLatencyMs, 0.99) << ",\n"
       << " \"traced_warm_requests_per_second\": "
       << warm_total / traced.warmBestSeconds << ",\n"
       << " \"warm_best_p50_ms\": " << off.warmBestP50Ms << ",\n"
       << " \"traced_warm_best_p50_ms\": " << traced.warmBestP50Ms
       << ",\n"
       << " \"sim_p50_ms\": " << gate_off.simBestP50Ms << ",\n"
       << " \"traced_sim_p50_ms\": " << gate_armed.simBestP50Ms
       << ",\n"
       << " \"tracing_off_overhead_pct\": " << overhead_pct << "\n"
       << "}\n";
    std::cout << os.str();
    if (!json_out.empty()) {
        std::ofstream out(json_out);
        out << os.str();
        if (!out.good()) {
            std::cerr << "microbench_serve: cannot write " << json_out
                      << "\n";
            return 1;
        }
    }
    return 0;
}
