/**
 * @file
 * Reproduces paper Figure 18: average solar energy utilization per
 * geographic location for every workload under MPPT&IC, MPPT&RR and
 * MPPT&Opt, against the battery-based de-rating bands of Table 3.
 * Utilization per cell is averaged over the four evaluation months.
 */

#include <iostream>

#include "common/bench_common.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace solarcore;

int
main()
{
    const core::PolicyKind policies[] = {core::PolicyKind::MpptIc,
                                         core::PolicyKind::MpptRr,
                                         core::PolicyKind::MpptOpt};

    printBanner(std::cout, "Figure 18: average energy utilization by "
                           "location (per workload, averaged over months)");

    RunningStats overall_opt;
    RunningStats overall_rr;
    for (auto site : solar::allSites()) {
        printBanner(std::cout, solar::siteInfo(site).location);
        TextTable t;
        t.header({"workload", "MPPT&IC", "MPPT&RR", "MPPT&Opt"});
        for (auto wl : workload::allWorkloads()) {
            std::vector<std::string> row{workload::workloadName(wl)};
            for (auto policy : policies) {
                RunningStats util;
                for (auto month : solar::allMonths())
                    util.add(bench::runDay(site, month, wl, policy)
                                 .utilization);
                row.push_back(TextTable::pct(util.mean()));
                if (policy == core::PolicyKind::MpptOpt)
                    overall_opt.add(util.mean());
                if (policy == core::PolicyKind::MpptRr)
                    overall_rr.add(util.mean());
            }
            t.row(std::move(row));
        }
        t.print(std::cout);
    }

    printBanner(std::cout, "battery-based system bands (Table 3)");
    std::cout << "high-efficiency battery upper bound: "
              << TextTable::pct(power::kBatteryUpperBound) << "\n"
              << "high-efficiency battery lower bound: "
              << TextTable::pct(power::kBatteryLowerBound) << "\n"
              << "average-efficiency battery: 70%..81%, low: < 70%\n";

    std::cout << "\nSolarCore (MPPT&Opt) average utilization across all "
                 "sites/workloads: "
              << TextTable::pct(overall_opt.mean())
              << " (paper: ~82% average)\n"
              << "MPPT&Opt - MPPT&RR utilization gap: "
              << TextTable::num((overall_opt.mean() - overall_rr.mean()) *
                                    100.0,
                                1)
              << " pp (paper reports Opt ~2.6 pp below RR; see "
                 "EXPERIMENTS.md for the deviation discussion)\n";
    return 0;
}
