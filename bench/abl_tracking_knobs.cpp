/**
 * @file
 * Ablation of the SolarCore controller's design knobs, quantifying the
 * claims the paper makes qualitatively:
 *
 *  1. DVFS granularity (Section 6.3: "by increasing the granularity of
 *     DVFS level, one can increase the control accuracy of MPPT and
 *     the power margin can be further decreased");
 *  2. the power margin (Section 4.3: a margin is necessary for
 *     robustness but degrades tracking accuracy);
 *  3. the tracking period (Section 5: 10-minute periods, <5 ms per
 *     event).
 *
 * Each sweep varies one knob with the others at their defaults, on the
 * AZ-Apr / HM2 cell.
 */

#include <iostream>

#include "common/bench_common.hpp"
#include "util/table.hpp"

using namespace solarcore;

namespace {

core::DayResult
runWith(const core::SimConfig &cfg)
{
    return core::simulateDay(bench::standardModule(),
                             bench::standardTrace(solar::SiteId::AZ,
                                                  solar::Month::Apr),
                             workload::WorkloadId::HM2, cfg);
}

core::SimConfig
baseConfig()
{
    core::SimConfig cfg;
    cfg.policy = core::PolicyKind::MpptOpt;
    cfg.dtSeconds = bench::kBenchDtSeconds;
    return cfg;
}

} // namespace

int
main()
{
    printBanner(std::cout, "Ablation 1: DVFS granularity "
                           "(paper Section 6.3 claim)");
    {
        TextTable t;
        t.header({"levels", "utilization", "tracking error", "PTP "
                  "[Tinstr]"});
        for (int levels : {3, 6, 11, 21, 41}) {
            auto cfg = baseConfig();
            cfg.dvfsLevels = levels;
            const auto r = runWith(cfg);
            t.row({std::to_string(levels), TextTable::pct(r.utilization),
                   TextTable::pct(r.avgTrackingError),
                   TextTable::num(r.solarInstructions / 1e12, 1)});
        }
        t.print(std::cout);
        std::cout << "expected: finer levels -> smaller notches -> "
                     "tighter tracking (higher utilization, lower "
                     "error).\n";
    }

    printBanner(std::cout, "Ablation 2: power margin");
    {
        TextTable t;
        t.header({"margin", "utilization", "tracking error",
                  "emergency sheds/day"});
        for (double margin : {0.0, 0.01, 0.02, 0.05, 0.10, 0.20}) {
            auto cfg = baseConfig();
            cfg.controller.marginFraction = margin;
            const auto r = runWith(cfg);
            t.row({TextTable::pct(margin, 0),
                   TextTable::pct(r.utilization),
                   TextTable::pct(r.avgTrackingError),
                   std::to_string(r.transferCount)});
        }
        t.print(std::cout);
        std::cout << "expected: larger margins trade utilization for "
                     "robustness headroom (paper Section 4.3).\n";
    }

    printBanner(std::cout, "Ablation 3: per-core power gating (PCPG)");
    {
        TextTable t;
        t.header({"site-month", "PCPG", "utilization",
                  "effective duration", "PTP [Tinstr]"});
        for (auto [site, month] :
             {std::pair{solar::SiteId::TN, solar::Month::Jan},
              std::pair{solar::SiteId::AZ, solar::Month::Jul}}) {
            for (bool pcpg : {true, false}) {
                core::SimConfig cfg;
                cfg.policy = core::PolicyKind::MpptOpt;
                cfg.dtSeconds = bench::kBenchDtSeconds;
                cfg.pcpg = pcpg;
                const auto r = core::simulateDay(
                    bench::standardModule(),
                    bench::standardTrace(site, month),
                    workload::WorkloadId::M2, cfg);
                t.row({bench::siteMonthLabel(site, month),
                       pcpg ? "on" : "off",
                       TextTable::pct(r.utilization),
                       TextTable::pct(r.effectiveFraction),
                       TextTable::num(r.solarInstructions / 1e12, 1)});
            }
        }
        t.print(std::cout);
        std::cout << "expected: gating extends the harvestable range "
                     "(low-supply hours) at weak sites; without it the "
                     "chip's minimum draw forces grid failovers.\n";
    }

    printBanner(std::cout, "Ablation 4: tracking period");
    {
        TextTable t;
        t.header({"period [min]", "utilization", "tracking error",
                  "controller notches/day"});
        for (double period : {1.0, 2.0, 5.0, 10.0, 20.0, 40.0}) {
            auto cfg = baseConfig();
            cfg.trackingPeriodMinutes = period;
            const auto r = runWith(cfg);
            t.row({TextTable::num(period, 0),
                   TextTable::pct(r.utilization),
                   TextTable::pct(r.avgTrackingError),
                   std::to_string(r.controllerSteps)});
        }
        t.print(std::cout);
        std::cout << "expected: shorter periods track more tightly at "
                     "the cost of controller activity; the paper uses "
                     "10 minutes.\n";
    }
    return 0;
}
