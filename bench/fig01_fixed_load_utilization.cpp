/**
 * @file
 * Reproduces paper Figure 1: solar energy utilization of a FIXED
 * resistive load (matched at 1000 W/m^2) under falling irradiance.
 * The paper reports >50% energy loss by 400 W/m^2 because the load
 * line walks away from the moving maximum power point.
 *
 * Also demonstrates Table 1: the sign of the power/voltage/current
 * response to load and transfer-ratio tuning on each side of the MPP.
 */

#include <iostream>

#include "common/bench_common.hpp"
#include "util/table.hpp"

using namespace solarcore;

namespace {

void
figure1()
{
    const auto &module = bench::standardModule();
    pv::PvArray array(module, 1, 1, pv::kStc);

    // Match the load at STC: R = Vmpp / Impp.
    const auto mpp_stc = pv::findMpp(array);
    const double r_matched = mpp_stc.voltage / mpp_stc.current;

    printBanner(std::cout, "Figure 1: fixed-load energy utilization vs "
                           "irradiance (load matched at 1000 W/m^2)");
    TextTable t;
    t.header({"G [W/m^2]", "P_load [W]", "P_mpp [W]", "utilization"});
    for (double g : {1000.0, 900.0, 800.0, 700.0, 600.0, 500.0, 400.0}) {
        array.setEnvironment({g, 25.0});
        const auto op = pv::resistiveOperatingPoint(array, r_matched);
        const auto mpp = pv::findMpp(array);
        t.row({TextTable::num(g, 0), TextTable::num(op.power(), 1),
               TextTable::num(mpp.power, 1),
               TextTable::pct(op.power() / mpp.power)});
    }
    t.print(std::cout);
    std::cout << "\npaper: utilization collapses below ~50% at 400 W/m^2 "
                 "for a fixed load; MPP tracking would hold ~100%.\n";
}

void
table1()
{
    const auto &module = bench::standardModule();
    pv::PvArray array(module, 1, 1, pv::kStc);
    const auto mpp = pv::findMpp(array);

    printBanner(std::cout,
                "Table 1: electrical response of load/ratio tuning");
    TextTable t;
    t.header({"operating side", "action", "dP", "dV", "dI"});

    // Emulate the two sides with resistive loads above/below the
    // matched resistance, through a unity-ratio converter.
    struct Probe
    {
        const char *side;
        double r_load;
    };
    const double r_mpp = mpp.voltage / mpp.current;
    const Probe probes[] = {
        {"right of MPP (a)", r_mpp * 3.0},
        {"left of MPP (b)", r_mpp / 3.0},
    };
    for (const auto &p : probes) {
        // Increase load = lower R. Observe power/voltage/current signs.
        const auto base = pv::resistiveOperatingPoint(array, p.r_load);
        const auto more = pv::resistiveOperatingPoint(array, p.r_load * 0.9);
        auto sign = [](double d) {
            return d > 1e-9 ? "+" : (d < -1e-9 ? "-" : "0");
        };
        t.row({p.side, "increase load w",
               sign(more.power() - base.power()),
               sign(more.voltage - base.voltage),
               sign(more.current - base.current)});
    }
    t.print(std::cout);
    std::cout << "paper: right of MPP, increasing load raises power while "
                 "voltage falls; left of MPP the same action loses power.\n";
}

} // namespace

int
main()
{
    figure1();
    table1();
    return 0;
}
