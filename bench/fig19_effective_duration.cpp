/**
 * @file
 * Reproduces paper Figure 19: the share of the daytime window in
 * which SolarCore runs from solar power (vs utility backup) for every
 * weather pattern. The paper reports 60%..90% depending on pattern,
 * with AZ consistently longest.
 */

#include <iostream>

#include "common/bench_common.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace solarcore;

int
main()
{
    printBanner(std::cout, "Figure 19: effective operation duration of "
                           "SolarCore (MPPT&Opt, HM2)");
    TextTable t;
    t.header({"pattern", "solar %daytime", "utility %daytime"});

    RunningStats per_site[solar::kNumSites];
    for (auto [site, month] : solar::allSiteMonths()) {
        const auto r = bench::runDay(site, month, workload::WorkloadId::HM2,
                                     core::PolicyKind::MpptOpt);
        t.row({bench::siteMonthLabel(site, month),
               TextTable::pct(r.effectiveFraction),
               TextTable::pct(1.0 - r.effectiveFraction)});
        per_site[static_cast<int>(site)].add(r.effectiveFraction);
    }
    t.print(std::cout);

    printBanner(std::cout, "per-site averages");
    TextTable s;
    s.header({"site", "avg effective duration"});
    for (auto site : solar::allSites()) {
        s.row({solar::siteName(site),
               TextTable::pct(per_site[static_cast<int>(site)].mean())});
    }
    s.print(std::cout);
    std::cout << "\npaper: effective duration spans ~60-90% of daytime "
                 "and AZ is consistently the longest.\n";
    return 0;
}
