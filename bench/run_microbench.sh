#!/usr/bin/env bash
# Runs the component microbenchmarks and records the results as JSON at
# the repo root (BENCH_pv.json, plus BENCH_obs.json for the
# observability-layer rows and BENCH_telemetry.json for the deep-
# telemetry rows: waveform recorder, self-profiler, invariant
# auditor). The suite carries its own before/after
# pairs: BM_CellCurrentSolveNewton / BM_FindMppNewton /
# BM_SimulatedDayNewton force the retained damped-Newton I-V path (the
# seed implementation), so one run captures both sides of the
# Lambert-W / MPP-cache comparison, and BM_SimulatedDayObsOff /
# BM_SimulatedDayTraced bracket the instrumentation layer's overhead.
#
# Usage: bench/run_microbench.sh [build-dir] [extra benchmark args...]
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-"${repo_root}/build"}"
shift || true

bench_bin="${build_dir}/bench/microbench_components"
if [[ ! -x "${bench_bin}" ]]; then
    echo "error: ${bench_bin} not found; configure and build first:" >&2
    echo "  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release && cmake --build build -j" >&2
    exit 1
fi

out="${repo_root}/BENCH_pv.json"
"${bench_bin}" \
    --benchmark_format=json \
    --benchmark_out="${out}" \
    --benchmark_out_format=json \
    "$@"
echo "wrote ${out}"

# Observability rows into their own file: the stat/trace primitive
# costs and the simulated-day overhead bracket.
obs_out="${repo_root}/BENCH_obs.json"
"${bench_bin}" \
    --benchmark_filter='BM_(StatScalarIncrement|TraceAppend|SimulatedDay(/|Traced|ObsOff))' \
    --benchmark_format=json \
    --benchmark_out="${obs_out}" \
    --benchmark_out_format=json \
    "$@" > /dev/null
echo "wrote ${obs_out}"

# Tracing-off overhead gate: a simulated day with observability
# compiled in but detached (BM_SimulatedDayObsOff/60) must stay within
# 1% of the uninstrumented day (BM_SimulatedDay/60). A single sample
# of a ~15 ms benchmark jitters by several percent on a shared
# machine, so the gate compares medians over repeated runs; a small
# negative delta is normal timer noise.
gate_tmp="$(mktemp)"
"${bench_bin}" \
    --benchmark_filter='BM_SimulatedDay(/|ObsOff/)60$' \
    --benchmark_repetitions=7 \
    --benchmark_report_aggregates_only=true \
    --benchmark_format=json \
    --benchmark_out="${gate_tmp}" \
    --benchmark_out_format=json > /dev/null
python3 - "${gate_tmp}" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    rows = json.load(f)["benchmarks"]
times = {r["name"]: r["real_time"] for r in rows}
base = times.get("BM_SimulatedDay/60_median")
off = times.get("BM_SimulatedDayObsOff/60_median")
if not base or not off:
    sys.exit("missing BM_SimulatedDay/60 or BM_SimulatedDayObsOff/60 "
             "median row")
overhead = (off - base) / base
print(f"tracing-off overhead: {overhead * 100.0:+.2f}% "
      f"(off median {off:.3f} ms vs base median {base:.3f} ms)")
if overhead > 0.01:
    sys.exit(f"FAIL: tracing-off overhead {overhead * 100.0:.2f}% > 1%")
EOF
rm -f "${gate_tmp}"

# Deep-telemetry rows into their own file: the waveform/profiler/
# auditor primitive costs plus the attached simulated-day brackets.
telemetry_out="${repo_root}/BENCH_telemetry.json"
"${bench_bin}" \
    --benchmark_filter='BM_(TelemetrySampleStep|ProfileScope(Detached|Attached)|AuditorCheckStep|SimulatedDay(/|Telemetry|Profiled|Audited))' \
    --benchmark_format=json \
    --benchmark_out="${telemetry_out}" \
    --benchmark_out_format=json \
    "$@" > /dev/null
echo "wrote ${telemetry_out}"

# Attached-instrumentation overhead report. The off path is gated above
# (BM_SimulatedDayObsOff, which now also carries the detached profiler
# scopes); the attached deltas are informational -- they are the price
# the user opted into with --telemetry-out / --profile-out / --audit.
python3 - "${telemetry_out}" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    rows = json.load(f)["benchmarks"]
times = {r["name"]: r["real_time"] for r in rows}
base = times.get("BM_SimulatedDay/60")
if not base:
    sys.exit("missing BM_SimulatedDay/60 row")
for name, label in (("BM_SimulatedDayTelemetry/60", "telemetry"),
                    ("BM_SimulatedDayProfiled/60", "profiler"),
                    ("BM_SimulatedDayAudited/60", "auditor")):
    t = times.get(name)
    if not t:
        sys.exit(f"missing {name} row")
    print(f"{label} attached overhead: {(t - base) / base * 100.0:+.2f}% "
          f"({t:.3f} ms vs base {base:.3f} ms)")
EOF

# One-line MPP-cache summary from an instrumented CLI day (the sweep
# binaries share caches across runs; a single day is all misses).
cli_bin="${build_dir}/tools/solarcore_cli"
if [[ -x "${cli_bin}" ]]; then
    stats_tmp="$(mktemp)"
    "${cli_bin}" summary --site AZ --month Apr \
        --stats-out="${stats_tmp}" > /dev/null
    python3 - "${stats_tmp}" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    s = json.load(f)
hits = s.get("pv.mppCache.hits", 0)
misses = s.get("pv.mppCache.misses", 0)
rate = s.get("pv.mppCache.hitRate", 0.0)
print(f"mpp cache: {int(hits)} hits / {int(misses)} misses "
      f"(hit rate {rate * 100.0:.1f}%)")
EOF
    rm -f "${stats_tmp}" "${stats_tmp}.manifest.json"
fi
