#!/usr/bin/env bash
# Runs the component microbenchmarks and records the results as JSON at
# the repo root (BENCH_pv.json, plus BENCH_obs.json for the
# observability-layer rows and BENCH_telemetry.json for the deep-
# telemetry rows: waveform recorder, self-profiler, invariant
# auditor). The suite carries its own before/after
# pairs: BM_CellCurrentSolveNewton / BM_FindMppNewton /
# BM_SimulatedDayNewton force the retained damped-Newton I-V path (the
# seed implementation), so one run captures both sides of the
# Lambert-W / MPP-cache comparison, and BM_SimulatedDayObsOff /
# BM_SimulatedDayTraced bracket the instrumentation layer's overhead.
# BM_FindMppBatch* / BM_EvalIvBatch* / BM_SimulatedDayScalarKernel
# bracket the batched SoA kernels against the scalar oracle, and the
# final section records the end-to-end fig13 scalar-vs-dispatched
# campaign speedup (with a golden parity check) in BENCH_campaign.json
# and the sustained-load serve daemon numbers (cold/warm throughput,
# cache-hit latency floor, tracing-off overhead gate) in
# BENCH_serve.json.
#
# The build directory must be a Release tree (enforced below) and every
# output file is stamped with the build type that produced it.
#
# Usage: bench/run_microbench.sh [--append-history] [build-dir]
#        [extra benchmark args...]
#
# --append-history additionally appends one JSONL entry per BENCH_*.json
# to bench/history/<name>.jsonl (timestamp, build type, git describe,
# metric map); tools/bench_diff gates the latest entry against the
# committed baselines.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"

append_history=0
filtered=()
for a in "$@"; do
    if [[ "$a" == "--append-history" ]]; then
        append_history=1
    else
        filtered+=("$a")
    fi
done
set -- ${filtered[@]+"${filtered[@]}"}

build_dir="${1:-"${repo_root}/build"}"
shift || true

# --- Release enforcement -------------------------------------------
# Numbers from a Debug or RelWithDebInfo tree are not comparable run to
# run, so the script refuses them: the recorded BENCH_*.json files are
# the repo's perf baseline. The actual build type is stamped into every
# output file below so a stale baseline is self-describing. Set
# SOLARCORE_BENCH_ALLOW_NON_RELEASE=1 to bypass (local profiling only).
cache_file="${build_dir}/CMakeCache.txt"
build_type="unknown"
if [[ -f "${cache_file}" ]]; then
    build_type="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "${cache_file}")"
    build_type="${build_type:-unset}"
fi
if [[ "${build_type}" != "Release" &&
      "${SOLARCORE_BENCH_ALLOW_NON_RELEASE:-0}" != "1" ]]; then
    echo "error: ${build_dir} is built as '${build_type}', not Release." >&2
    echo "Benchmark baselines must come from a Release tree:" >&2
    echo "  cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release" >&2
    echo "  bench/run_microbench.sh build-release" >&2
    echo "(set SOLARCORE_BENCH_ALLOW_NON_RELEASE=1 to bypass)" >&2
    exit 1
fi

# Rebuild so the benchmarks measure the tree as it stands.
cmake --build "${build_dir}" -j \
    --target microbench_components solarcore_campaign golden_check \
    > /dev/null

bench_bin="${build_dir}/bench/microbench_components"
if [[ ! -x "${bench_bin}" ]]; then
    echo "error: ${bench_bin} not found; configure and build first:" >&2
    echo "  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release && cmake --build build -j" >&2
    exit 1
fi

# --- machine-load sanity check -------------------------------------
# A 1-minute load average above the CPU count at bench start means the
# numbers are being taken on a contended machine; warn loudly and
# record the fact in every output file's context so a noisy baseline
# is self-describing.
num_cpus="$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)"
load_1min="$(cut -d' ' -f1 /proc/loadavg 2>/dev/null || echo 0)"
load_high=0
if python3 -c "import sys; sys.exit(0 if float('${load_1min}') > float('${num_cpus}') else 1)"; then
    load_high=1
    echo "warning: 1-minute load average ${load_1min} exceeds" \
         "${num_cpus} cpus at bench start; numbers may be noisy" >&2
fi

# Stamp the build type (and kernel info) into a benchmark JSON file so
# every recorded baseline says what produced it, plus the machine-load
# state observed at bench start.
stamp_json() {
    python3 - "$1" "${build_type}" "${load_1min}" "${load_high}" <<'EOF'
import json, sys
path, build_type, load_1min, load_high = sys.argv[1:5]
with open(path) as f:
    doc = json.load(f)
ctx = doc.setdefault("context", {})
ctx["solarcore_build_type"] = build_type
ctx["load_avg_at_start"] = float(load_1min)
ctx["load_avg_exceeded_cpus"] = load_high == "1"
with open(path, "w") as f:
    json.dump(doc, f, indent=1)
    f.write("\n")
EOF
}

# Refuse baselines measured through a debug benchmark library: the
# harness (in-tree minibench) stamps the NDEBUG state it was compiled
# with into context.library_build_type, and assert-laden timing loops
# are not comparable to release ones. Same bypass knob as the Release
# enforcement above.
check_library_stamp() {
    local stamp
    stamp="$(python3 -c "import json,sys; \
print(json.load(open(sys.argv[1])).get('context',{}) \
.get('library_build_type','unknown'))" "$1")"
    if [[ "${stamp}" != "release" &&
          "${SOLARCORE_BENCH_ALLOW_NON_RELEASE:-0}" != "1" ]]; then
        echo "error: $1 was produced by a '${stamp}' benchmark" \
             "library; baselines need a release-built harness." >&2
        echo "(set SOLARCORE_BENCH_ALLOW_NON_RELEASE=1 to bypass)" >&2
        exit 1
    fi
}

out="${repo_root}/BENCH_pv.json"
"${bench_bin}" \
    --benchmark_format=json \
    --benchmark_out="${out}" \
    --benchmark_out_format=json \
    "$@"
check_library_stamp "${out}"
stamp_json "${out}"
echo "wrote ${out}"

# Observability rows into their own file: the stat/trace primitive
# costs and the simulated-day overhead bracket.
obs_out="${repo_root}/BENCH_obs.json"
"${bench_bin}" \
    --benchmark_filter='BM_(StatScalarIncrement|TraceAppend|SimulatedDay(/|Traced|ObsOff))' \
    --benchmark_format=json \
    --benchmark_out="${obs_out}" \
    --benchmark_out_format=json \
    "$@" > /dev/null
stamp_json "${obs_out}"
echo "wrote ${obs_out}"

# Tracing-off overhead gate: a simulated day with observability
# compiled in but detached (BM_SimulatedDayObsOff/60) must stay within
# 2% of the uninstrumented day (BM_SimulatedDay/60). The bound was 1%
# when the day cost ~13 ms; the batched SIMD kernels cut the day to
# ~3 ms, so the same ~20 us of detached scopes is now a larger (but
# unchanged in absolute terms) fraction. A single sample jitters by
# several percent on a shared machine, and contention only ever adds
# time, so the gate compares the MINIMUM over repeated runs (the
# least-disturbed sample of each side); a small negative delta is
# normal timer noise.
gate_tmp="$(mktemp)"
"${bench_bin}" \
    --benchmark_filter='BM_SimulatedDay(/|ObsOff/)60$' \
    --benchmark_repetitions=9 \
    --benchmark_format=json \
    --benchmark_out="${gate_tmp}" \
    --benchmark_out_format=json > /dev/null
python3 - "${gate_tmp}" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    rows = json.load(f)["benchmarks"]
times = {}
for r in rows:
    if r.get("run_type") == "iteration":
        times.setdefault(r["run_name"], []).append(r["real_time"])
base_reps = times.get("BM_SimulatedDay/60")
off_reps = times.get("BM_SimulatedDayObsOff/60")
if not base_reps or not off_reps:
    sys.exit("missing BM_SimulatedDay/60 or BM_SimulatedDayObsOff/60 "
             "repetition rows")
base, off = min(base_reps), min(off_reps)
overhead = (off - base) / base
print(f"tracing-off overhead: {overhead * 100.0:+.2f}% "
      f"(off min {off:.3f} ms vs base min {base:.3f} ms, "
      f"{len(off_reps)} reps)")
if overhead > 0.02:
    sys.exit(f"FAIL: tracing-off overhead {overhead * 100.0:.2f}% > 2%")
EOF
rm -f "${gate_tmp}"

# Deep-telemetry rows into their own file: the waveform/profiler/
# auditor primitive costs plus the attached simulated-day brackets.
telemetry_out="${repo_root}/BENCH_telemetry.json"
"${bench_bin}" \
    --benchmark_filter='BM_(TelemetrySampleStep|ProfileScope(Detached|Attached)|AuditorCheckStep|SimulatedDay(/|Telemetry|Profiled|Audited))' \
    --benchmark_format=json \
    --benchmark_out="${telemetry_out}" \
    --benchmark_out_format=json \
    "$@" > /dev/null
stamp_json "${telemetry_out}"
echo "wrote ${telemetry_out}"

# Attached-instrumentation overhead report. The off path is gated above
# (BM_SimulatedDayObsOff, which now also carries the detached profiler
# scopes); the attached deltas are informational -- they are the price
# the user opted into with --telemetry-out / --profile-out / --audit.
python3 - "${telemetry_out}" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    rows = json.load(f)["benchmarks"]
times = {r["name"]: r["real_time"] for r in rows}
base = times.get("BM_SimulatedDay/60")
if not base:
    sys.exit("missing BM_SimulatedDay/60 row")
for name, label in (("BM_SimulatedDayTelemetry/60", "telemetry"),
                    ("BM_SimulatedDayProfiled/60", "profiler"),
                    ("BM_SimulatedDayAudited/60", "auditor")):
    t = times.get(name)
    if not t:
        sys.exit(f"missing {name} row")
    print(f"{label} attached overhead: {(t - base) / base * 100.0:+.2f}% "
          f"({t:.3f} ms vs base {base:.3f} ms)")
EOF

# One-line MPP-cache summary from an instrumented CLI day (the sweep
# binaries share caches across runs; a single day is all misses).
cli_bin="${build_dir}/tools/solarcore_cli"
if [[ -x "${cli_bin}" ]]; then
    stats_tmp="$(mktemp)"
    "${cli_bin}" summary --site AZ --month Apr \
        --stats-out="${stats_tmp}" > /dev/null
    python3 - "${stats_tmp}" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    s = json.load(f)
hits = s.get("pv.mppCache.hits", 0)
misses = s.get("pv.mppCache.misses", 0)
rate = s.get("pv.mppCache.hitRate", 0.0)
print(f"mpp cache: {int(hits)} hits / {int(misses)} misses "
      f"(hit rate {rate * 100.0:.1f}%)")
EOF
    rm -f "${stats_tmp}" "${stats_tmp}.manifest.json"
fi

# --- batched-kernel campaign speedup (BENCH_campaign.json) ----------
# The fig13 preset, once with the batch kernels disabled (scalar
# oracle) and once with the dispatched kernel, each reporting the
# tool's own end-of-run units-per-second. The dispatched kernel must
# also reproduce the scalar summary within the golden-check
# tolerances; a fast-but-wrong kernel fails the script.
campaign_bin="${build_dir}/tools/solarcore_campaign"
golden_bin="${build_dir}/tools/golden_check"
if [[ -x "${campaign_bin}" && -x "${golden_bin}" ]]; then
    campaign_tmp="$(mktemp -d)"
    run_fig13() { # kernel -> units/sec (the last progress line's rate)
        "${campaign_bin}" --preset=fig13 "--pv-kernel=$1" \
            --out="${campaign_tmp}/$1.json" \
            --manifest-out="${campaign_tmp}/$1.manifest.json" \
            --verbose 2>&1 |
            sed -n 's/.*, \([0-9.]*\) u\/s.*/\1/p' | tail -1
    }
    scalar_rate="$(run_fig13 scalar)"
    auto_rate="$(run_fig13 auto)"
    dispatched="$(sed -n 's/.*"pv_kernel":[[:space:]]*"\([a-z0-9]*\)".*/\1/p' \
        "${campaign_tmp}/auto.manifest.json" | head -1)"
    "${golden_bin}" --check "${campaign_tmp}/scalar.json" \
        "${campaign_tmp}/auto.json"

    # Execution-engine modes on the same preset: a forked-worker cold
    # run, then a warm unit-cache re-run (the cache dir was just
    # populated by the cold run). Each must reproduce the in-process
    # summary byte-for-byte, and the warm run's status.json carries
    # the hit/miss counters recorded below.
    run_fig13_mode() { # extra-args out-name -> units/sec
        local t0 t1 log rate units
        t0="$(date +%s.%N)"
        log="$("${campaign_bin}" --preset=fig13 --pv-kernel=auto \
            --out="${campaign_tmp}/$2.json" \
            --status-out="${campaign_tmp}/$2.status.json" \
            --verbose $1 2>&1)"
        t1="$(date +%s.%N)"
        rate="$(sed -n 's/.*, \([0-9.]*\) u\/s.*/\1/p' <<<"${log}" |
            tail -1)"
        if [[ -z "${rate}" ]]; then
            # A fully-cached run finishes before the first progress
            # line; fall back to wall-clock units/sec.
            units="$(sed -n 's/^campaign: \([0-9]*\) units$/\1/p' \
                <<<"${log}")"
            rate="$(python3 -c "print(float('${units:-0}') /
max(float('${t1}') - float('${t0}'), 1e-9))")"
        fi
        echo "${rate}"
    }
    workers_rate="$(run_fig13_mode "--workers=2" workers)"
    cold_rate="$(run_fig13_mode \
        "--unit-cache=${campaign_tmp}/ucache" cachecold)"
    warm_rate="$(run_fig13_mode \
        "--unit-cache=${campaign_tmp}/ucache" cachewarm)"
    cmp "${campaign_tmp}/auto.json" "${campaign_tmp}/workers.json"
    cmp "${campaign_tmp}/auto.json" "${campaign_tmp}/cachewarm.json"

    campaign_out="${repo_root}/BENCH_campaign.json"
    python3 - "${campaign_out}" "${build_type}" "${scalar_rate}" \
        "${auto_rate}" "${dispatched}" "${workers_rate}" \
        "${cold_rate}" "${warm_rate}" \
        "${campaign_tmp}/cachewarm.status.json" <<'EOF'
import json, sys
(path, build_type, scalar, auto, dispatched, workers, cold, warm,
 warm_status) = sys.argv[1:10]
scalar, auto = float(scalar), float(auto)
workers, cold, warm = float(workers), float(cold), float(warm)
with open(warm_status) as f:
    cache = json.load(f).get("unit_cache", {})
doc = {
    "preset": "fig13",
    "context": {"solarcore_build_type": build_type},
    "scalar_units_per_second": scalar,
    "dispatched_kernel": dispatched,
    "dispatched_units_per_second": auto,
    "speedup": auto / scalar if scalar else 0.0,
    "workers2_units_per_second": workers,
    "workers2_speedup": workers / auto if auto else 0.0,
    "cache_cold_units_per_second": cold,
    "cache_warm_units_per_second": warm,
    "cache_warm_speedup": warm / cold if cold else 0.0,
    "cache_hits": cache.get("hits", 0),
    "cache_misses": cache.get("misses", 0),
    "cache_stores": cache.get("stores", 0),
    "cache_evictions": cache.get("evictions", 0),
}
if cache.get("misses", 0) != 0 or cache.get("hits", 0) == 0:
    sys.exit(f"FAIL: warm cache re-run was not 100% hits: {cache}")
with open(path, "w") as f:
    json.dump(doc, f, indent=1)
    f.write("\n")
print(f"campaign fig13: {scalar:.1f} u/s scalar -> {auto:.1f} u/s "
      f"{dispatched} ({doc['speedup']:.2f}x), parity OK")
print(f"campaign fig13: workers=2 {workers:.1f} u/s "
      f"({doc['workers2_speedup']:.2f}x vs in-process), "
      f"warm cache {warm:.1f} u/s vs cold {cold:.1f} u/s, "
      f"{int(cache.get('hits', 0))}/"
      f"{int(cache.get('hits', 0)) + int(cache.get('misses', 0))} hits")
EOF
    rm -rf "${campaign_tmp}"
    echo "wrote ${campaign_out}"
fi

# --- sustained-load serve bench (BENCH_serve.json) ------------------
# N concurrent clients against two live daemons (tracing disabled vs
# span layer armed): cold/warm throughput and the cache-hit latency
# floor for the phase-2 sustained-load p99 trajectory, plus the
# tracing-off overhead gate -- arming the span layer must add <1% to
# the median of a real (simulating) planning request.
serve_bench_bin="${build_dir}/bench/microbench_serve"
cmake --build "${build_dir}" -j --target microbench_serve > /dev/null
if [[ -x "${serve_bench_bin}" ]]; then
    serve_out="${repo_root}/BENCH_serve.json"
    serve_rc=0
    "${serve_bench_bin}" --json-out="${serve_out}" > /dev/null ||
        serve_rc=$?
    if [[ "${serve_rc}" == "77" ]]; then
        echo "serve bench skipped (AF_UNIX serving unsupported)"
    elif [[ "${serve_rc}" != "0" ]]; then
        echo "error: microbench_serve failed (rc=${serve_rc})" >&2
        exit "${serve_rc}"
    else
        stamp_json "${serve_out}"
        python3 - "${serve_out}" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
overhead = doc["tracing_off_overhead_pct"]
print(f"serve: cold {doc['cold_requests_per_second']:.0f} req/s, "
      f"warm {doc['warm_requests_per_second']:.0f} req/s "
      f"(p50 {doc['warm_p50_ms'] * 1e3:.1f} us, "
      f"p99 {doc['warm_p99_ms'] * 1e3:.1f} us)")
print(f"serve tracing-off overhead: {overhead:+.2f}% "
      f"(sim p50 {doc['traced_sim_p50_ms']:.3f} ms armed vs "
      f"{doc['sim_p50_ms']:.3f} ms off)")
if overhead > 1.0:
    sys.exit(f"FAIL: serve tracing-off overhead {overhead:.2f}% > 1%")
EOF
        echo "wrote ${serve_out}"
    fi
fi

# --- perf history (--append-history) --------------------------------
# One JSONL entry per BENCH_*.json: timestamp, build type, git
# describe, and the metric map tools/bench_diff compares against the
# committed baselines. Appending keeps the whole perf history of the
# machine in-tree and diffable.
if [[ "${append_history}" == "1" ]]; then
    hist_dir="${repo_root}/bench/history"
    mkdir -p "${hist_dir}"
    git_desc="$(git -C "${repo_root}" describe --always --dirty --tags \
        2>/dev/null || echo unknown)"
    for name in BENCH_pv BENCH_obs BENCH_telemetry BENCH_campaign \
                BENCH_serve; do
        src="${repo_root}/${name}.json"
        [[ -f "${src}" ]] || continue
        python3 - "${src}" "${hist_dir}/${name}.jsonl" \
            "${build_type}" "${git_desc}" <<'EOF'
import datetime
import json
import sys

src, dst, build_type, git_desc = sys.argv[1:5]
with open(src) as f:
    doc = json.load(f)
# Mirror tools/bench_diff extractMetrics(): google-benchmark files
# contribute name -> real_time of plain iteration rows (first
# occurrence wins); flat documents contribute every top-level number.
if "benchmarks" in doc:
    metrics = {}
    for row in doc["benchmarks"]:
        if row.get("run_type", "iteration") != "iteration":
            continue
        name = row.get("name")
        if name and "real_time" in row and name not in metrics:
            metrics[name] = row["real_time"]
else:
    metrics = {k: v for k, v in doc.items()
               if isinstance(v, (int, float)) and not isinstance(v, bool)}
entry = {
    "schema": "solarcore-bench-history-v1",
    "utc": datetime.datetime.now(datetime.timezone.utc)
        .strftime("%Y-%m-%dT%H:%M:%SZ"),
    "build_type": build_type,
    "git": git_desc,
    "source": src.rsplit("/", 1)[-1],
    "metrics": metrics,
}
with open(dst, "a") as f:
    f.write(json.dumps(entry, sort_keys=True) + "\n")
print(f"appended {dst}")
EOF
    done
fi
