#!/usr/bin/env bash
# Runs the component microbenchmarks and records the results as JSON at
# the repo root (BENCH_pv.json). The suite carries its own before/after
# pairs: BM_CellCurrentSolveNewton / BM_FindMppNewton /
# BM_SimulatedDayNewton force the retained damped-Newton I-V path (the
# seed implementation), so one run captures both sides of the
# Lambert-W / MPP-cache comparison.
#
# Usage: bench/run_microbench.sh [build-dir] [extra benchmark args...]
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-"${repo_root}/build"}"
shift || true

bench_bin="${build_dir}/bench/microbench_components"
if [[ ! -x "${bench_bin}" ]]; then
    echo "error: ${bench_bin} not found; configure and build first:" >&2
    echo "  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release && cmake --build build -j" >&2
    exit 1
fi

out="${repo_root}/BENCH_pv.json"
"${bench_bin}" \
    --benchmark_format=json \
    --benchmark_out="${out}" \
    --benchmark_out_format=json \
    "$@"
echo "wrote ${out}"
