/**
 * @file
 * Extension study: partial shading of a series string.
 *
 * The paper assumes uniform irradiance, under which the P-V curve has
 * a unique MPP. With bypass diodes and a passing shadow, the curve
 * splits into multiple local maxima and a unimodal tracker can park on
 * the wrong hill. This bench (1) maps the local maxima for a set of
 * shading patterns, and (2) replays a 60-minute shadow transit across
 * a 3-module string, comparing the energy a unimodal tracker harvests
 * against the global search.
 */

#include <iostream>

#include "common/bench_common.hpp"
#include "pv/shading.hpp"
#include "util/table.hpp"

using namespace solarcore;

namespace {

void
mapLocalMaxima()
{
    printBanner(std::cout, "P-V structure of a 3-module string under "
                           "shading (G of each module, W/m^2)");
    TextTable t;
    t.header({"pattern", "local maxima", "global MPP [W]",
              "unimodal search [W]", "unimodal loss"});

    const double patterns[][3] = {
        {1000.0, 1000.0, 1000.0},
        {1000.0, 1000.0, 600.0},
        {1000.0, 1000.0, 300.0},
        {1000.0, 600.0, 250.0},
        {1000.0, 300.0, 150.0},
    };
    for (const auto &p : patterns) {
        pv::ShadedString string(bench::standardModule(),
                                {{p[0], 25.0}, {p[1], 25.0},
                                 {p[2], 25.0}});
        const auto maxima = pv::findLocalMaxima(string);
        const auto global = pv::findGlobalMpp(string);
        const auto unimodal = pv::findMpp(string);
        t.row({TextTable::num(p[0], 0) + "/" + TextTable::num(p[1], 0) +
                   "/" + TextTable::num(p[2], 0),
               std::to_string(maxima.size()),
               TextTable::num(global.power, 1),
               TextTable::num(unimodal.power, 1),
               TextTable::pct(1.0 - unimodal.power /
                                  std::max(1e-9, global.power))});
    }
    t.print(std::cout);
}

void
shadowTransit()
{
    printBanner(std::cout, "60-minute shadow transit across the string "
                           "(per-minute harvest)");
    const pv::Environment sun{900.0, 30.0};
    double unimodal_wh = 0.0;
    double global_wh = 0.0;
    double ideal_wh = 0.0;

    for (int minute = 0; minute < 60; ++minute) {
        // The shadow enters module 0, crosses to module 2, then exits.
        pv::ShadedString string(bench::standardModule(),
                                {sun, sun, sun});
        const double pos = minute / 60.0 * 4.0 - 0.5; // shadow centre
        for (int m = 0; m < 3; ++m) {
            const double dist = std::abs(pos - m);
            const double dim = dist < 0.75 ? 0.25 : 1.0;
            string.setEnvironment(m,
                                  {sun.irradiance * dim, sun.cellTempC});
        }
        const double p_uni = pv::findMpp(string).power;
        const double p_glob = pv::findGlobalMpp(string).power;
        unimodal_wh += p_uni / 60.0;
        global_wh += p_glob / 60.0;
        ideal_wh += p_glob / 60.0;
    }

    TextTable t;
    t.header({"tracker", "harvest [Wh]", "vs global"});
    t.row({"unimodal golden-section", TextTable::num(unimodal_wh, 1),
           TextTable::pct(unimodal_wh / global_wh)});
    t.row({"global scan + refine", TextTable::num(global_wh, 1), "100%"});
    t.print(std::cout);
    std::cout << "\na SolarCore deployment on shaded strings needs the "
                 "global scan: the paper's uniform-irradiance assumption "
                 "makes the unimodal tracker sufficient only for "
                 "unshaded rooftop panels.\n";
}

} // namespace

int
main()
{
    mapLocalMaxima();
    shadowTransit();
    return 0;
}
