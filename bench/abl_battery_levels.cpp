/**
 * @file
 * Table 3 as an experiment: the battery-equipped baseline at every
 * de-rating level (High / Moderate / Low efficiency systems), compared
 * against SolarCore (MPPT&Opt), per site. The paper uses Table 3 only
 * to bound the battery systems; this bench shows where SolarCore's
 * storage-free design overtakes each battery class.
 */

#include <iostream>

#include "common/bench_common.hpp"
#include "power/battery.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace solarcore;

int
main()
{
    const struct
    {
        const char *name;
        power::BatteryLevel level;
    } levels[] = {{"High", power::BatteryLevel::High},
                  {"Moderate", power::BatteryLevel::Moderate},
                  {"Low", power::BatteryLevel::Low}};

    printBanner(std::cout, "battery system classes (Table 3) vs "
                           "SolarCore, normalized PTP per site "
                           "(HM2, averaged over months; battery-High "
                           "lower bound = 1.0)");
    TextTable t;
    t.header({"site", "SolarCore", "Battery-High", "Battery-Moderate",
              "Battery-Low"});

    RunningStats sc_vs_moderate;
    for (auto site : solar::allSites()) {
        RunningStats sc;
        RunningStats batt[3];
        for (auto month : solar::allMonths()) {
            const auto day = bench::runDay(site, month,
                                           workload::WorkloadId::HM2,
                                           core::PolicyKind::MpptOpt);
            // Normalize each month by the High-class battery's lower
            // bound (the paper's Battery-L).
            const auto base = bench::runBatteryDay(
                site, month, workload::WorkloadId::HM2,
                power::kBatteryLowerBound);
            sc.add(day.solarInstructions / base.instructions);
            for (int l = 0; l < 3; ++l) {
                const auto b = bench::runBatteryDay(
                    site, month, workload::WorkloadId::HM2,
                    power::deRating(levels[l].level).overall());
                batt[l].add(b.instructions / base.instructions);
            }
            sc_vs_moderate.add(day.solarInstructions /
                               bench::runBatteryDay(
                                   site, month, workload::WorkloadId::HM2,
                                   power::deRating(
                                       power::BatteryLevel::Moderate)
                                       .overall())
                                   .instructions);
        }
        t.row({solar::siteName(site), TextTable::num(sc.mean(), 2),
               TextTable::num(batt[0].mean(), 2),
               TextTable::num(batt[1].mean(), 2),
               TextTable::num(batt[2].mean(), 2)});
    }
    t.print(std::cout);

    std::cout << "\nSolarCore vs a TYPICAL (moderate, 81%-derated) "
                 "battery system: "
              << TextTable::num(sc_vs_moderate.mean(), 2)
              << "x PTP -- with no battery cost, ageing or maintenance "
                 "(the paper's Section 1 argument).\n";
    return 0;
}
