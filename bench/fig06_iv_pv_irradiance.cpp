/**
 * @file
 * Reproduces paper Figure 6: module I-V and P-V characteristics at
 * G in {400, 600, 800, 1000} W/m^2 and T = 25 C. Emits the sampled
 * curves plus the per-irradiance MPP summary; higher irradiance must
 * generate more photocurrent and move the MPP upward.
 */

#include <iostream>

#include "common/bench_common.hpp"
#include "util/table.hpp"

using namespace solarcore;

int
main()
{
    const auto &module = bench::standardModule();

    printBanner(std::cout, "Figure 6: BP3180N I-V / P-V vs irradiance "
                           "(T = 25 C)");
    TextTable curves;
    curves.header({"V [V]", "I@400", "I@600", "I@800", "I@1000", "P@400",
                   "P@600", "P@800", "P@1000"});

    const double gs[] = {400.0, 600.0, 800.0, 1000.0};
    pv::PvArray ref(module, 1, 1, {1000.0, 25.0});
    const double v_max = ref.openCircuitVoltage();
    for (int i = 0; i <= 12; ++i) {
        const double v = v_max * i / 12.0;
        std::vector<std::string> row{TextTable::num(v, 1)};
        std::vector<std::string> powers;
        for (double g : gs) {
            pv::PvArray array(module, 1, 1, {g, 25.0});
            const double c = array.currentAt(v);
            row.push_back(TextTable::num(c, 2));
            powers.push_back(TextTable::num(v * c, 1));
        }
        row.insert(row.end(), powers.begin(), powers.end());
        curves.row(std::move(row));
    }
    curves.print(std::cout);

    printBanner(std::cout, "MPP summary (paper: MPPs move upward with G)");
    TextTable mpps;
    mpps.header({"G [W/m^2]", "Voc [V]", "Isc [A]", "Vmpp [V]", "Impp [A]",
                 "Pmax [W]"});
    for (double g : gs) {
        pv::PvArray array(module, 1, 1, {g, 25.0});
        const auto mpp = pv::findMpp(array);
        mpps.row({TextTable::num(g, 0),
                  TextTable::num(array.openCircuitVoltage(), 1),
                  TextTable::num(array.shortCircuitCurrent(), 2),
                  TextTable::num(mpp.voltage, 1),
                  TextTable::num(mpp.current, 2),
                  TextTable::num(mpp.power, 1)});
    }
    mpps.print(std::cout);
    return 0;
}
