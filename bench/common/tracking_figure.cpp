#include "tracking_figure.hpp"

#include <iostream>
#include <memory>

#include "obs/manifest.hpp"
#include "obs/stats_registry.hpp"
#include "obs/trace.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace solarcore::bench {

void
printTrackingFigure(solar::SiteId site, solar::Month month,
                    const char *figure_name, bool csv, int threads,
                    const obs::ObsOptions *obs)
{
    const workload::WorkloadId wls[] = {workload::WorkloadId::H1,
                                        workload::WorkloadId::HM2,
                                        workload::WorkloadId::L1};

    obs::RunManifest manifest(figure_name);

    if (!csv) {
        printBanner(std::cout,
                    std::string(figure_name) +
                        ": MPP tracking accuracy (" +
                        siteMonthLabel(site, month) +
                        "), budget vs consumption [W]");
    }

    // Warm the shared trace cache before fanning out, then give each
    // worker its own MPP memo; results land in index-addressed slots.
    // Observability follows the same pattern: per-worker registries
    // and trace buffers, merged below in task-index order, keep every
    // output byte-identical at any thread count.
    standardTrace(site, month);
    const bool want_stats = obs && obs->statsRequested();
    const bool want_trace = obs && obs->traceRequested();
    core::DayResult results[3];
    std::unique_ptr<obs::StatsRegistry> regs[3];
    std::unique_ptr<obs::TraceBuffer> tbufs[3];
    ThreadPool pool(threads);
    pool.parallelFor(3, [&](std::size_t i) {
        pv::MppCache mpp_cache(standardModule(), 1, 1);
        if (want_stats)
            regs[i] = std::make_unique<obs::StatsRegistry>();
        if (want_trace)
            tbufs[i] =
                std::make_unique<obs::TraceBuffer>(obs->traceBufferCap);
        results[i] = runDay(site, month, wls[i], core::PolicyKind::MpptOpt,
                            75.0, /*timeline=*/true, /*dt=*/15.0,
                            &mpp_cache, regs[i].get(), tbufs[i].get());
    });

    if (obs && obs->anyRequested()) {
        if (want_stats) {
            obs::StatsRegistry merged;
            for (const auto &r : regs)
                merged.merge(*r);
            obs->writeStats(merged);
        }
        if (want_trace) {
            obs->writeTrace(
                obs::mergeBuffers(
                    {tbufs[0].get(), tbufs[1].get(), tbufs[2].get()}),
                {"H1", "HM2", "L1"});
        }
        manifest.set("site", std::string(solar::siteName(site)));
        manifest.set("month", std::string(solar::monthName(month)));
        manifest.set("threads",
                     static_cast<std::uint64_t>(pool.threadCount()));
        manifest.set("policy",
                     std::string(core::policyName(
                         core::PolicyKind::MpptOpt)));
        manifest.setSeed(kBenchSeed);
        obs->writeManifest(manifest);
    }

    TextTable t;
    t.header({"minute", "budget", "H1 drawn", "HM2 drawn", "L1 drawn"});
    const auto &ref = results[0].timeline;
    const std::size_t stride = csv ? 1 : 10;
    for (std::size_t i = 0; i < ref.size(); i += stride) {
        std::vector<std::string> row{
            TextTable::num(ref[i].minute - ref.front().minute, 0),
            TextTable::num(ref[i].budgetW, 1)};
        for (const auto &r : results) {
            row.push_back(i < r.timeline.size()
                              ? TextTable::num(r.timeline[i].consumedW, 1)
                              : "-");
        }
        t.row(std::move(row));
    }
    if (csv) {
        t.printCsv(std::cout);
        return;
    }
    t.print(std::cout);

    printBanner(std::cout, "day summary");
    TextTable s;
    s.header({"workload", "utilization", "avg rel. error",
              "effective duration"});
    for (int i = 0; i < 3; ++i) {
        s.row({workload::workloadName(wls[i]),
               TextTable::pct(results[i].utilization),
               TextTable::pct(results[i].avgTrackingError),
               TextTable::pct(results[i].effectiveFraction)});
    }
    s.print(std::cout);
    std::cout << "paper: consumption closely follows the budget; H1 "
                 "ripples hardest, L1 and heterogeneous mixes are "
                 "smoother.\n";
}

} // namespace solarcore::bench
