/**
 * @file
 * Shared helpers for the experiment-reproduction binaries: a cached
 * standard panel/trace setup (one BP3180N module, seed-1 weather), a
 * one-call day runner, and the normalization helpers the paper's
 * figures use. Every bench binary prints the same rows/series the
 * paper reports; absolute values differ from the authors' testbed but
 * the shapes are the reproduction target (see EXPERIMENTS.md).
 */

#ifndef SOLARCORE_BENCH_COMMON_HPP
#define SOLARCORE_BENCH_COMMON_HPP

#include <string>

#include "core/solarcore.hpp"
#include "obs/obs_options.hpp"

namespace solarcore::bench {

/** The weather seed shared by every experiment binary. */
inline constexpr std::uint64_t kBenchSeed = 1;

/** The calibrated BP3180N module (built once). */
const pv::PvModule &standardModule();

/** The seed-1 daytime trace of a site-month (cached). */
const solar::SolarTrace &standardTrace(solar::SiteId site,
                                       solar::Month month);

/** Default simulation step used by the sweeps [seconds]. */
inline constexpr double kBenchDtSeconds = 30.0;

/**
 * Run one standard day.
 *
 * @param site, month  weather pattern
 * @param wl           workload mix
 * @param policy       power-management scheme
 * @param fixed_budget_w Fixed-Power budget (ignored for MPPT policies)
 * @param timeline     record the per-minute trace
 * @param dt_seconds   simulation step
 * @param mpp_cache    optional cross-day MPP memo (one per worker);
 *                     sweeps replaying one trace for many workloads
 *                     and budgets solve each environment only once
 * @param stats        optional stats registry (one per worker)
 * @param trace        optional event-trace sink (one per worker)
 * @param telemetry    optional per-step waveform recorder
 * @param audit        optional invariant auditor
 */
core::DayResult runDay(solar::SiteId site, solar::Month month,
                       workload::WorkloadId wl, core::PolicyKind policy,
                       double fixed_budget_w = 75.0, bool timeline = false,
                       double dt_seconds = kBenchDtSeconds,
                       pv::MppCache *mpp_cache = nullptr,
                       obs::StatsRegistry *stats = nullptr,
                       obs::TraceBuffer *trace = nullptr,
                       obs::TelemetryRecorder *telemetry = nullptr,
                       obs::Auditor *audit = nullptr);

/**
 * Parse a `--threads=N` argument (0 or omitted: all hardware threads).
 * Shared by the sweep binaries so every figure can be reproduced
 * single-threaded (byte-identical output) or fanned across cores.
 */
int threadsFromArgs(int argc, char **argv);

/**
 * Collect the shared observability flags (--stats-out=, --trace-out=,
 * --trace-buffer=, --manifest-out=) from argv; unrecognized arguments
 * are left for the binary's own parser.
 */
obs::ObsOptions obsOptionsFromArgs(int argc, char **argv);

/** Run the battery baseline for a site-month/workload. */
core::BatteryDayResult runBatteryDay(solar::SiteId site, solar::Month month,
                                     workload::WorkloadId wl,
                                     double derating_factor,
                                     double dt_seconds = kBenchDtSeconds);

/** "AZ-Jan"-style label. */
std::string siteMonthLabel(solar::SiteId site, solar::Month month);

} // namespace solarcore::bench

#endif // SOLARCORE_BENCH_COMMON_HPP
