#include "bench_common.hpp"

#include <map>

namespace solarcore::bench {

const pv::PvModule &
standardModule()
{
    static const pv::PvModule module = pv::buildBp3180n();
    return module;
}

const solar::SolarTrace &
standardTrace(solar::SiteId site, solar::Month month)
{
    static std::map<std::pair<int, int>, solar::SolarTrace> cache;
    const auto key = std::make_pair(static_cast<int>(site),
                                    static_cast<int>(month));
    auto it = cache.find(key);
    if (it == cache.end()) {
        it = cache
                 .emplace(key,
                          solar::generateDayTrace(site, month, kBenchSeed))
                 .first;
    }
    return it->second;
}

core::DayResult
runDay(solar::SiteId site, solar::Month month, workload::WorkloadId wl,
       core::PolicyKind policy, double fixed_budget_w, bool timeline,
       double dt_seconds)
{
    core::SimConfig cfg;
    cfg.policy = policy;
    cfg.fixedBudgetW = fixed_budget_w;
    cfg.dtSeconds = dt_seconds;
    cfg.recordTimeline = timeline;
    cfg.seed = kBenchSeed;
    return core::simulateDay(standardModule(), standardTrace(site, month),
                             wl, cfg);
}

core::BatteryDayResult
runBatteryDay(solar::SiteId site, solar::Month month,
              workload::WorkloadId wl, double derating_factor,
              double dt_seconds)
{
    core::SimConfig cfg;
    cfg.dtSeconds = dt_seconds;
    cfg.seed = kBenchSeed;
    return core::simulateBatteryDay(standardModule(),
                                    standardTrace(site, month), wl,
                                    derating_factor, cfg);
}

std::string
siteMonthLabel(solar::SiteId site, solar::Month month)
{
    return std::string(solar::siteName(site)) + "-" +
        solar::monthName(month);
}

} // namespace solarcore::bench
