#include "bench_common.hpp"

#include <cstdlib>
#include <map>
#include <mutex>
#include <string_view>

#include "util/thread_pool.hpp"

namespace solarcore::bench {

const pv::PvModule &
standardModule()
{
    static const pv::PvModule module = pv::buildBp3180n();
    return module;
}

const solar::SolarTrace &
standardTrace(solar::SiteId site, solar::Month month)
{
    // Guarded: the parallel sweeps fault traces in from worker
    // threads. Entries are node-stable, so returned references stay
    // valid across later insertions.
    static std::mutex mutex;
    static std::map<std::pair<int, int>, solar::SolarTrace> cache;
    std::lock_guard<std::mutex> lock(mutex);
    const auto key = std::make_pair(static_cast<int>(site),
                                    static_cast<int>(month));
    auto it = cache.find(key);
    if (it == cache.end()) {
        it = cache
                 .emplace(key,
                          solar::generateDayTrace(site, month, kBenchSeed))
                 .first;
    }
    return it->second;
}

core::DayResult
runDay(solar::SiteId site, solar::Month month, workload::WorkloadId wl,
       core::PolicyKind policy, double fixed_budget_w, bool timeline,
       double dt_seconds, pv::MppCache *mpp_cache,
       obs::StatsRegistry *stats, obs::TraceBuffer *trace,
       obs::TelemetryRecorder *telemetry, obs::Auditor *audit)
{
    core::SimConfig cfg;
    cfg.policy = policy;
    cfg.fixedBudgetW = fixed_budget_w;
    cfg.dtSeconds = dt_seconds;
    cfg.recordTimeline = timeline;
    cfg.seed = kBenchSeed;
    cfg.mppCache = mpp_cache;
    cfg.stats = stats;
    cfg.trace = trace;
    cfg.telemetry = telemetry;
    cfg.audit = audit;
    return core::simulateDay(standardModule(), standardTrace(site, month),
                             wl, cfg);
}

int
threadsFromArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg(argv[i]);
        if (arg.rfind("--threads=", 0) == 0) {
            // 0 / garbage fall through to ThreadPool's auto-detect.
            return std::atoi(arg.data() + 10);
        }
    }
    return 0;
}

obs::ObsOptions
obsOptionsFromArgs(int argc, char **argv)
{
    obs::ObsOptions opts;
    for (int i = 1; i < argc; ++i)
        opts.consume(argv[i]);
    return opts;
}

core::BatteryDayResult
runBatteryDay(solar::SiteId site, solar::Month month,
              workload::WorkloadId wl, double derating_factor,
              double dt_seconds)
{
    core::SimConfig cfg;
    cfg.dtSeconds = dt_seconds;
    cfg.seed = kBenchSeed;
    return core::simulateBatteryDay(standardModule(),
                                    standardTrace(site, month), wl,
                                    derating_factor, cfg);
}

std::string
siteMonthLabel(solar::SiteId site, solar::Month month)
{
    return std::string(solar::siteName(site)) + "-" +
        solar::monthName(month);
}

} // namespace solarcore::bench
