#include "fixed_budget_sweep.hpp"

#include <iostream>

#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace solarcore::bench {

std::vector<workload::WorkloadId>
sweepWorkloads()
{
    // One homogeneous set per EPI class plus two heterogeneous mixes.
    return {workload::WorkloadId::H1, workload::WorkloadId::M2,
            workload::WorkloadId::L1, workload::WorkloadId::HM2,
            workload::WorkloadId::ML2};
}

std::vector<FixedSweepCell>
runFixedBudgetSweep(int threads)
{
    const auto wls = sweepWorkloads();
    const auto site_months = solar::allSiteMonths();

    // One task per site-month: tasks only write their own result slot,
    // and within a task every day replays the same trace, so a single
    // per-task MPP memo serves all (workloads + budgets) x days runs.
    std::vector<std::vector<FixedSweepCell>> per_task(site_months.size());
    ThreadPool pool(threads);
    pool.parallelFor(site_months.size(), [&](std::size_t task) {
        const auto [site, month] = site_months[task];
        pv::MppCache mpp_cache(standardModule(), 1, 1);

        // SolarCore reference per workload.
        std::vector<core::DayResult> refs;
        refs.reserve(wls.size());
        for (auto wl : wls)
            refs.push_back(runDay(site, month, wl,
                                  core::PolicyKind::MpptOpt, 75.0, false,
                                  kBenchDtSeconds, &mpp_cache));

        for (double budget : kFixedBudgets) {
            FixedSweepCell cell;
            cell.site = site;
            cell.month = month;
            cell.budgetW = budget;
            RunningStats e;
            RunningStats p;
            for (std::size_t i = 0; i < wls.size(); ++i) {
                const auto r = runDay(site, month, wls[i],
                                      core::PolicyKind::FixedPower, budget,
                                      false, kBenchDtSeconds, &mpp_cache);
                e.add(refs[i].solarEnergyWh > 0.0
                          ? r.solarEnergyWh / refs[i].solarEnergyWh
                          : 0.0);
                p.add(refs[i].solarInstructions > 0.0
                          ? r.solarInstructions / refs[i].solarInstructions
                          : 0.0);
            }
            cell.normalizedEnergy = e.mean();
            cell.normalizedPtp = p.mean();
            per_task[task].push_back(cell);
        }
    });

    // Deterministic aggregation: flatten in task-index order.
    std::vector<FixedSweepCell> cells;
    cells.reserve(site_months.size() * kFixedBudgets.size());
    for (const auto &task_cells : per_task)
        cells.insert(cells.end(), task_cells.begin(), task_cells.end());
    return cells;
}

void
printFixedSweep(const std::vector<FixedSweepCell> &cells, bool energy)
{
    for (auto site : solar::allSites()) {
        printBanner(std::cout,
                    std::string(energy ? "normalized solar energy"
                                       : "normalized PTP") +
                        " under fixed budgets -- " +
                        solar::siteInfo(site).location);
        TextTable t;
        t.header({"month", "25W", "50W", "75W", "100W", "125W", "best"});
        for (auto month : solar::allMonths()) {
            std::vector<std::string> row{solar::monthName(month)};
            double best = 0.0;
            for (const auto &c : cells) {
                if (c.site != site || c.month != month)
                    continue;
                const double v =
                    energy ? c.normalizedEnergy : c.normalizedPtp;
                row.push_back(TextTable::num(v, 2));
                best = std::max(best, v);
            }
            row.push_back(TextTable::num(best, 2));
            t.row(std::move(row));
        }
        t.print(std::cout);
    }

    // Headline: the best fixed budget anywhere.
    double best_any = 0.0;
    for (const auto &c : cells)
        best_any = std::max(best_any,
                            energy ? c.normalizedEnergy : c.normalizedPtp);
    std::cout << "\nbest fixed-budget cell overall: "
              << TextTable::num(best_any, 2)
              << " of SolarCore (paper: < 0.70 => SolarCore wins by at "
                 "least 43%)\n";
}

} // namespace solarcore::bench
