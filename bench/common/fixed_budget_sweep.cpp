#include "fixed_budget_sweep.hpp"

#include <iostream>

#include "util/stats.hpp"
#include "util/table.hpp"

namespace solarcore::bench {

std::vector<workload::WorkloadId>
sweepWorkloads()
{
    // One homogeneous set per EPI class plus two heterogeneous mixes.
    return {workload::WorkloadId::H1, workload::WorkloadId::M2,
            workload::WorkloadId::L1, workload::WorkloadId::HM2,
            workload::WorkloadId::ML2};
}

std::vector<FixedSweepCell>
runFixedBudgetSweep()
{
    std::vector<FixedSweepCell> cells;
    const auto wls = sweepWorkloads();

    for (auto [site, month] : solar::allSiteMonths()) {
        // SolarCore reference per workload.
        std::vector<core::DayResult> refs;
        refs.reserve(wls.size());
        for (auto wl : wls)
            refs.push_back(runDay(site, month, wl,
                                  core::PolicyKind::MpptOpt));

        for (double budget : kFixedBudgets) {
            FixedSweepCell cell;
            cell.site = site;
            cell.month = month;
            cell.budgetW = budget;
            RunningStats e;
            RunningStats p;
            for (std::size_t i = 0; i < wls.size(); ++i) {
                const auto r = runDay(site, month, wls[i],
                                      core::PolicyKind::FixedPower, budget);
                e.add(refs[i].solarEnergyWh > 0.0
                          ? r.solarEnergyWh / refs[i].solarEnergyWh
                          : 0.0);
                p.add(refs[i].solarInstructions > 0.0
                          ? r.solarInstructions / refs[i].solarInstructions
                          : 0.0);
            }
            cell.normalizedEnergy = e.mean();
            cell.normalizedPtp = p.mean();
            cells.push_back(cell);
        }
    }
    return cells;
}

void
printFixedSweep(const std::vector<FixedSweepCell> &cells, bool energy)
{
    for (auto site : solar::allSites()) {
        printBanner(std::cout,
                    std::string(energy ? "normalized solar energy"
                                       : "normalized PTP") +
                        " under fixed budgets -- " +
                        solar::siteInfo(site).location);
        TextTable t;
        t.header({"month", "25W", "50W", "75W", "100W", "125W", "best"});
        for (auto month : solar::allMonths()) {
            std::vector<std::string> row{solar::monthName(month)};
            double best = 0.0;
            for (const auto &c : cells) {
                if (c.site != site || c.month != month)
                    continue;
                const double v =
                    energy ? c.normalizedEnergy : c.normalizedPtp;
                row.push_back(TextTable::num(v, 2));
                best = std::max(best, v);
            }
            row.push_back(TextTable::num(best, 2));
            t.row(std::move(row));
        }
        t.print(std::cout);
    }

    // Headline: the best fixed budget anywhere.
    double best_any = 0.0;
    for (const auto &c : cells)
        best_any = std::max(best_any,
                            energy ? c.normalizedEnergy : c.normalizedPtp);
    std::cout << "\nbest fixed-budget cell overall: "
              << TextTable::num(best_any, 2)
              << " of SolarCore (paper: < 0.70 => SolarCore wins by at "
                 "least 43%)\n";
}

} // namespace solarcore::bench
