/**
 * @file
 * Shared implementation of the Figure 13/14 tracking-accuracy plots:
 * per-minute maximal power budget vs actual consumption for the H1
 * (high EPI, homogeneous), HM2 (high EPI, heterogeneous) and L1 (low
 * EPI, homogeneous) workloads at one site-month.
 */

#ifndef SOLARCORE_BENCH_TRACKING_FIGURE_HPP
#define SOLARCORE_BENCH_TRACKING_FIGURE_HPP

#include "common/bench_common.hpp"

namespace solarcore::bench {

/**
 * Print one tracking-accuracy figure for @p site / @p month.
 * @param csv     emit machine-readable CSV instead of the aligned table
 * @param threads fan the per-workload days across a pool; the table is
 *                assembled in workload order, so the output is
 *                byte-identical for any thread count
 * @param obs     optional observability outputs: each worker records
 *                into its own registry/buffer and the streams are
 *                merged in task-index order, so stats dumps and traces
 *                are also byte-identical for any thread count
 */
void printTrackingFigure(solar::SiteId site, solar::Month month,
                         const char *figure_name, bool csv = false,
                         int threads = 1,
                         const obs::ObsOptions *obs = nullptr);

} // namespace solarcore::bench

#endif // SOLARCORE_BENCH_TRACKING_FIGURE_HPP
