/**
 * @file
 * Shared sweep for the Figure 16/17 reproductions: for every site,
 * month and fixed power budget in {25..125} W, run the Fixed-Power
 * baseline and normalize its solar energy and PTP to the SolarCore
 * (MPPT&Opt) run of the same cell, averaged over a representative
 * workload set.
 */

#ifndef SOLARCORE_BENCH_FIXED_BUDGET_SWEEP_HPP
#define SOLARCORE_BENCH_FIXED_BUDGET_SWEEP_HPP

#include <array>
#include <vector>

#include "common/bench_common.hpp"

namespace solarcore::bench {

/** The swept budgets of Figures 15-17 [W]. */
inline constexpr std::array<double, 5> kFixedBudgets = {25.0, 50.0, 75.0,
                                                        100.0, 125.0};

/** Workloads averaged in the sweep (one per Table 5 class pattern). */
std::vector<workload::WorkloadId> sweepWorkloads();

/** One cell of the sweep. */
struct FixedSweepCell
{
    solar::SiteId site;
    solar::Month month;
    double budgetW = 0.0;
    double normalizedEnergy = 0.0; //!< vs SolarCore, same cell
    double normalizedPtp = 0.0;    //!< vs SolarCore, same cell
};

/**
 * Run the full sweep. Site-month cells are independent, so they fan
 * across @p threads pool workers; each worker reuses one MPP memo for
 * every run of its trace, and cells are assembled in index order so
 * the output is byte-identical for any thread count.
 */
std::vector<FixedSweepCell> runFixedBudgetSweep(int threads = 1);

/**
 * Print the sweep as one table per site with months as row groups,
 * selecting the @p energy (true) or PTP (false) column.
 */
void printFixedSweep(const std::vector<FixedSweepCell> &cells, bool energy);

} // namespace solarcore::bench

#endif // SOLARCORE_BENCH_FIXED_BUDGET_SWEEP_HPP
