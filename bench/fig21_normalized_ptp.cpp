/**
 * @file
 * Reproduces paper Figure 21: normalized performance-time product of
 * MPPT&IC / MPPT&RR / MPPT&Opt against the Battery-U / Battery-L
 * bounds, for all 16 weather patterns and all 10 workloads, normalized
 * per cell to Battery-L. Paper averages to match in shape:
 * IC ~0.82, RR ~1.02, Opt ~1.13, Battery-U ~1.14.
 */

#include <iostream>

#include "common/bench_common.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace solarcore;

int
main()
{
    const core::PolicyKind policies[] = {core::PolicyKind::MpptIc,
                                         core::PolicyKind::MpptRr,
                                         core::PolicyKind::MpptOpt};

    RunningStats avg_ic;
    RunningStats avg_rr;
    RunningStats avg_opt;
    RunningStats avg_bu;
    RunningStats opt_over_rr;
    RunningStats opt_over_ic;

    for (auto site : solar::allSites()) {
        for (auto month : solar::allMonths()) {
            printBanner(std::cout,
                        "Figure 21 -- normalized PTP, " +
                            bench::siteMonthLabel(site, month) +
                            " (Battery-L = 1.0)");
            TextTable t;
            t.header({"workload", "MPPT&IC", "MPPT&RR", "MPPT&Opt",
                      "Battery-U"});
            for (auto wl : workload::allWorkloads()) {
                const auto bl = bench::runBatteryDay(
                    site, month, wl, power::kBatteryLowerBound);
                const auto bu = bench::runBatteryDay(
                    site, month, wl, power::kBatteryUpperBound);
                const double base = bl.instructions;

                std::vector<std::string> row{workload::workloadName(wl)};
                double ptp[3] = {0.0, 0.0, 0.0};
                for (int p = 0; p < 3; ++p) {
                    const auto r =
                        bench::runDay(site, month, wl, policies[p]);
                    ptp[p] = r.solarInstructions / base;
                    row.push_back(TextTable::num(ptp[p], 2));
                }
                row.push_back(TextTable::num(bu.instructions / base, 2));
                t.row(std::move(row));

                avg_ic.add(ptp[0]);
                avg_rr.add(ptp[1]);
                avg_opt.add(ptp[2]);
                avg_bu.add(bu.instructions / base);
                opt_over_rr.add(ptp[2] / ptp[1]);
                opt_over_ic.add(ptp[2] / ptp[0]);
            }
            t.print(std::cout);
        }
    }

    printBanner(std::cout, "Figure 21 summary (normalized to Battery-L)");
    TextTable s;
    s.header({"scheme", "avg normalized PTP", "paper"});
    s.row({"MPPT&IC", TextTable::num(avg_ic.mean(), 2), "0.82"});
    s.row({"MPPT&RR", TextTable::num(avg_rr.mean(), 2), "1.02"});
    s.row({"MPPT&Opt", TextTable::num(avg_opt.mean(), 2), "1.13"});
    s.row({"Battery-U", TextTable::num(avg_bu.mean(), 2), "1.14"});
    s.print(std::cout);

    std::cout << "\nMPPT&Opt vs MPPT&RR: +"
              << TextTable::num((opt_over_rr.mean() - 1.0) * 100.0, 1)
              << "% (paper: +10.8%)\n"
              << "MPPT&Opt vs MPPT&IC: +"
              << TextTable::num((opt_over_ic.mean() - 1.0) * 100.0, 1)
              << "% (paper: +37.8%)\n";
    return 0;
}
