/**
 * @file
 * Reproduces paper Figure 14: MPP tracking accuracy under an irregular
 * (monsoon) weather pattern (July at the Phoenix AZ station) for the
 * H1, HM2 and L1 workloads.
 */

#include <string_view>

#include "common/tracking_figure.hpp"

int
main(int argc, char **argv)
{
    bool csv = false;
    for (int i = 1; i < argc; ++i)
        csv = csv || std::string_view(argv[i]) == "--csv";
    const auto obs = solarcore::bench::obsOptionsFromArgs(argc, argv);
    solarcore::bench::printTrackingFigure(
        solarcore::solar::SiteId::AZ, solarcore::solar::Month::Jul,
        "Figure 14", csv, solarcore::bench::threadsFromArgs(argc, argv),
        &obs);
    return 0;
}
