/**
 * @file
 * Reproduces paper Figure 20: average solar energy utilization as a
 * function of the effective SolarCore operation duration, per policy.
 * Runs every site-month x workload cell, buckets them by effective
 * duration (>90%, 80-90, 70-80, 60-70, 50-60% of daytime) and prints
 * the per-bucket average utilization for MPPT&IC / RR / Opt.
 * The paper's claim: with >= 80% of the daytime on tracking power,
 * SolarCore guarantees >= 82% utilization on average.
 */

#include <iostream>

#include "common/bench_common.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace solarcore;

namespace {

int
bucketOf(double effective)
{
    if (effective > 0.9)
        return 0;
    if (effective > 0.8)
        return 1;
    if (effective > 0.7)
        return 2;
    if (effective > 0.6)
        return 3;
    return 4;
}

const char *kBucketNames[] = {"> 90%", "80~90%", "70~80%", "60~70%",
                              "50~60%"};

} // namespace

int
main()
{
    const core::PolicyKind policies[] = {core::PolicyKind::MpptIc,
                                         core::PolicyKind::MpptRr,
                                         core::PolicyKind::MpptOpt};
    const workload::WorkloadId wls[] = {
        workload::WorkloadId::H1, workload::WorkloadId::M2,
        workload::WorkloadId::L1, workload::WorkloadId::HM2,
        workload::WorkloadId::ML2};

    RunningStats buckets[3][5];
    RunningStats above80[3];
    for (auto [site, month] : solar::allSiteMonths()) {
        for (auto wl : wls) {
            for (int p = 0; p < 3; ++p) {
                const auto r = bench::runDay(site, month, wl, policies[p]);
                const int b = bucketOf(r.effectiveFraction);
                buckets[p][b].add(r.utilization);
                if (r.effectiveFraction >= 0.8)
                    above80[p].add(r.utilization);
            }
        }
    }

    printBanner(std::cout, "Figure 20: avg energy utilization vs "
                           "effective operation duration");
    TextTable t;
    t.header({"duration bucket", "MPPT&IC", "MPPT&RR", "MPPT&Opt",
              "cells"});
    for (int b = 0; b < 5; ++b) {
        std::vector<std::string> row{kBucketNames[b]};
        std::size_t cells = 0;
        for (int p = 0; p < 3; ++p) {
            cells = std::max(cells, buckets[p][b].count());
            row.push_back(buckets[p][b].count()
                              ? TextTable::pct(buckets[p][b].mean())
                              : std::string("-"));
        }
        row.push_back(std::to_string(cells));
        t.row(std::move(row));
    }
    t.print(std::cout);

    std::cout << "\nwith >= 80% effective duration, MPPT&Opt averages "
              << (above80[2].count()
                      ? TextTable::pct(above80[2].mean())
                      : std::string("n/a"))
              << " utilization (paper: >= 82%)\n";
    return 0;
}
