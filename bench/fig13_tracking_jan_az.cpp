/**
 * @file
 * Reproduces paper Figure 13: MPP tracking accuracy under a regular
 * weather pattern (January at the Phoenix AZ station) for the H1, HM2
 * and L1 workloads.
 */

#include <string_view>

#include "common/tracking_figure.hpp"

int
main(int argc, char **argv)
{
    bool csv = false;
    for (int i = 1; i < argc; ++i)
        csv = csv || std::string_view(argv[i]) == "--csv";
    const auto obs = solarcore::bench::obsOptionsFromArgs(argc, argv);
    solarcore::bench::printTrackingFigure(
        solarcore::solar::SiteId::AZ, solarcore::solar::Month::Jan,
        "Figure 13", csv, solarcore::bench::threadsFromArgs(argc, argv),
        &obs);
    return 0;
}
