/**
 * @file
 * google-benchmark microbenchmarks of the hot components: the PV I-V
 * solve, MPP search, network operating-point solve, the performance /
 * power model evaluations, the DP allocator and a full simulated day.
 * These guard the simulation's throughput (the Figure 16-21 sweeps run
 * thousands of simulated days).
 */

#include <benchmark/benchmark.h>

#include "common/bench_common.hpp"

using namespace solarcore;

namespace {

void
BM_CellCurrentSolve(benchmark::State &state)
{
    const auto &module = bench::standardModule();
    const pv::Environment env{800.0, 40.0};
    double v = 20.0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(module.currentAt(v, env));
        v = v < 40.0 ? v + 0.1 : 20.0;
    }
}
BENCHMARK(BM_CellCurrentSolve);

void
BM_FindMpp(benchmark::State &state)
{
    const auto &module = bench::standardModule();
    pv::PvArray array(module, 1, 1, {800.0, 40.0});
    for (auto _ : state)
        benchmark::DoNotOptimize(pv::findMpp(array));
}
BENCHMARK(BM_FindMpp);

void
BM_PinRailVoltage(benchmark::State &state)
{
    const auto &module = bench::standardModule();
    pv::PvArray array(module, 1, 1, {800.0, 40.0});
    power::DcDcConverter conv;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            power::pinRailVoltage(array, conv, 12.0, 60.0));
}
BENCHMARK(BM_PinRailVoltage);

void
BM_PerfModelEvaluate(benchmark::State &state)
{
    const cpu::PerfModel model{cpu::CoreConfig{}};
    const auto profile = workload::benchmark("gcc");
    for (auto _ : state)
        benchmark::DoNotOptimize(
            model.evaluate(profile.phases.front(), 2.5e9));
}
BENCHMARK(BM_PerfModelEvaluate);

void
BM_PowerModelEvaluate(benchmark::State &state)
{
    const cpu::PerfModel perf{cpu::CoreConfig{}};
    const cpu::PowerModel power{cpu::EnergyParams{}};
    const auto profile = workload::benchmark("gcc");
    const auto pe = perf.evaluate(profile.phases.front(), 2.5e9);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            power.evaluate(profile.phases.front(), pe, 1.45, 2.5e9));
}
BENCHMARK(BM_PowerModelEvaluate);

void
BM_DpAllocator(benchmark::State &state)
{
    cpu::MultiCoreChip chip(cpu::defaultChipConfig(),
                            cpu::DvfsTable::paperDefault(),
                            cpu::EnergyParams{},
                            workload::workloadSet(workload::WorkloadId::HM2),
                            1);
    const double budget = static_cast<double>(state.range(0));
    for (auto _ : state)
        benchmark::DoNotOptimize(core::optimizeAllocation(chip, budget));
}
BENCHMARK(BM_DpAllocator)->Arg(50)->Arg(100)->Arg(200);

void
BM_ControllerTrack(benchmark::State &state)
{
    const auto &module = bench::standardModule();
    pv::PvArray array(module, 1, 1, {800.0, 40.0});
    cpu::MultiCoreChip chip(cpu::defaultChipConfig(),
                            cpu::DvfsTable::paperDefault(),
                            cpu::EnergyParams{},
                            workload::workloadSet(workload::WorkloadId::HM2),
                            1);
    core::TprOptAdapter adapter;
    core::SolarCoreController ctl(array, chip, adapter);
    for (auto _ : state) {
        chip.gateAll();
        benchmark::DoNotOptimize(ctl.track());
    }
}
BENCHMARK(BM_ControllerTrack);

void
BM_SimulatedDay(benchmark::State &state)
{
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            bench::runDay(solar::SiteId::AZ, solar::Month::Apr,
                          workload::WorkloadId::HM2,
                          core::PolicyKind::MpptOpt, 75.0, false,
                          static_cast<double>(state.range(0))));
    }
}
BENCHMARK(BM_SimulatedDay)->Arg(60)->Arg(30)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
