/**
 * @file
 * google-benchmark microbenchmarks of the hot components: the PV I-V
 * solve, MPP search, network operating-point solve, the performance /
 * power model evaluations, the DP allocator and a full simulated day.
 * These guard the simulation's throughput (the Figure 16-21 sweeps run
 * thousands of simulated days).
 */

#include <cstddef>
#include <cstdint>
#include <iterator>
#include <vector>

#include <benchmark/benchmark.h>

#include "common/bench_common.hpp"
#include "pv/pv_kernel.hpp"
#include "obs/auditor.hpp"
#include "obs/profiler.hpp"
#include "obs/stats_registry.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"

using namespace solarcore;

namespace {

void
BM_CellCurrentSolve(benchmark::State &state)
{
    const auto &module = bench::standardModule();
    const pv::Environment env{800.0, 40.0};
    double v = 20.0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(module.currentAt(v, env));
        v = v < 40.0 ? v + 0.1 : 20.0;
    }
}
BENCHMARK(BM_CellCurrentSolve);

void
BM_CellCurrentSolveNewton(benchmark::State &state)
{
    const auto &module = bench::standardModule();
    const pv::Environment env{800.0, 40.0};
    pv::setNewtonIvSolve(true);
    double v = 20.0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(module.currentAt(v, env));
        v = v < 40.0 ? v + 0.1 : 20.0;
    }
    pv::setNewtonIvSolve(false);
}
BENCHMARK(BM_CellCurrentSolveNewton);

void
BM_FindMpp(benchmark::State &state)
{
    const auto &module = bench::standardModule();
    pv::PvArray array(module, 1, 1, {800.0, 40.0});
    for (auto _ : state)
        benchmark::DoNotOptimize(pv::findMpp(array));
}
BENCHMARK(BM_FindMpp);

void
BM_FindMppNewton(benchmark::State &state)
{
    // The seed implementation: golden-section over the Newton-solved
    // I-V curve, via the generic IvSource overload.
    const auto &module = bench::standardModule();
    pv::PvArray array(module, 1, 1, {800.0, 40.0});
    const auto &source = static_cast<const pv::IvSource &>(array);
    pv::setNewtonIvSolve(true);
    for (auto _ : state)
        benchmark::DoNotOptimize(pv::findMpp(source));
    pv::setNewtonIvSolve(false);
}
BENCHMARK(BM_FindMppNewton);

void
BM_FindMppCached(benchmark::State &state)
{
    // Replayed trace: the fixed-budget sweep re-solves the same
    // environment sequence once per workload x budget combination.
    const auto &module = bench::standardModule();
    pv::MppCache cache(module, 1, 1);
    const pv::Environment envs[] = {
        {200.0, 28.0}, {450.0, 34.0}, {700.0, 41.0}, {850.0, 46.0},
        {920.0, 49.0}, {700.0, 44.0}, {400.0, 36.0},
    };
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.mpp(envs[i]));
        i = (i + 1) % std::size(envs);
    }
}
BENCHMARK(BM_FindMppCached);

void
BM_MppGridRefined(benchmark::State &state)
{
    const auto &module = bench::standardModule();
    const pv::MppGrid grid(module, 1, 1, 50.0, 1000.0, 20, -10.0, 75.0,
                           18);
    double g = 100.0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(grid.refined({g, 25.0 + g * 0.02}));
        g = g < 950.0 ? g + 37.0 : 100.0;
    }
}
BENCHMARK(BM_MppGridRefined);

void
BM_PinRailVoltage(benchmark::State &state)
{
    const auto &module = bench::standardModule();
    pv::PvArray array(module, 1, 1, {800.0, 40.0});
    power::DcDcConverter conv;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            power::pinRailVoltage(array, conv, 12.0, 60.0));
}
BENCHMARK(BM_PinRailVoltage);

// --- batched SoA kernels (scalar oracle vs portable vs AVX2) --------

/** A varied light-lane trace for the batch benches. */
std::vector<pv::Environment>
batchEnvTrace(std::size_t n)
{
    std::vector<pv::Environment> envs(n);
    for (std::size_t k = 0; k < n; ++k) {
        const double frac =
            static_cast<double>(k % 97) / 96.0; // co-prime stride
        envs[k] = {120.0 + 880.0 * frac, 18.0 + 32.0 * frac};
    }
    return envs;
}

void
runFindMppBatch(benchmark::State &state, pv::PvKernel kernel)
{
    if (!pv::pvKernelSupported(kernel)) {
        state.SkipWithError("kernel not supported on this machine");
        return;
    }
    const auto &module = bench::standardModule();
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto envs = batchEnvTrace(n);
    std::vector<pv::MppResult> out(n);
    const pv::PvKernel prev = pv::selectedPvKernel();
    pv::setPvKernel(kernel);
    for (auto _ : state) {
        pv::findMppBatch(module, 1, 1, envs, out);
        benchmark::DoNotOptimize(out.data());
        benchmark::ClobberMemory();
    }
    pv::setPvKernel(prev);
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(n));
}

void
BM_FindMppBatchScalar(benchmark::State &state)
{
    runFindMppBatch(state, pv::PvKernel::Scalar);
}
BENCHMARK(BM_FindMppBatchScalar)->Arg(1024);

void
BM_FindMppBatchPortable(benchmark::State &state)
{
    runFindMppBatch(state, pv::PvKernel::Portable);
}
BENCHMARK(BM_FindMppBatchPortable)->Arg(1024);

void
BM_FindMppBatchAvx2(benchmark::State &state)
{
    runFindMppBatch(state, pv::PvKernel::Avx2);
}
BENCHMARK(BM_FindMppBatchAvx2)->Arg(1024);

void
runEvalIvBatch(benchmark::State &state, pv::PvKernel kernel)
{
    if (!pv::pvKernelSupported(kernel)) {
        state.SkipWithError("kernel not supported on this machine");
        return;
    }
    const auto &cell = bench::standardModule().cell();
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto envs = batchEnvTrace(n);
    std::vector<double> volts(n);
    for (std::size_t k = 0; k < n; ++k)
        volts[k] = 0.30 + 0.25 * static_cast<double>(k % 11) / 10.0;
    std::vector<pv::IvOut> out(n);
    const pv::PvKernel prev = pv::selectedPvKernel();
    pv::setPvKernel(kernel);
    for (auto _ : state) {
        pv::evalIv(cell, envs, volts, out);
        benchmark::DoNotOptimize(out.data());
        benchmark::ClobberMemory();
    }
    pv::setPvKernel(prev);
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(n));
}

void
BM_EvalIvBatchScalar(benchmark::State &state)
{
    runEvalIvBatch(state, pv::PvKernel::Scalar);
}
BENCHMARK(BM_EvalIvBatchScalar)->Arg(1024);

void
BM_EvalIvBatchPortable(benchmark::State &state)
{
    runEvalIvBatch(state, pv::PvKernel::Portable);
}
BENCHMARK(BM_EvalIvBatchPortable)->Arg(1024);

void
BM_EvalIvBatchAvx2(benchmark::State &state)
{
    runEvalIvBatch(state, pv::PvKernel::Avx2);
}
BENCHMARK(BM_EvalIvBatchAvx2)->Arg(1024);

void
BM_MppCacheLookupBatch(benchmark::State &state)
{
    // Steady-state batched replay: the same 7 distinct conditions the
    // scalar BM_FindMppCached cycles through, batched 64 at a time.
    const auto &module = bench::standardModule();
    pv::MppCache cache(module, 1, 1);
    std::vector<pv::Environment> envs(64);
    const auto trace = batchEnvTrace(7);
    for (std::size_t k = 0; k < envs.size(); ++k)
        envs[k] = trace[k % trace.size()];
    std::vector<pv::MppResult> out(envs.size());
    for (auto _ : state) {
        cache.lookupBatch(envs, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(envs.size()));
}
BENCHMARK(BM_MppCacheLookupBatch);

void
BM_PinRailVoltagePrepared(benchmark::State &state)
{
    // The controller fast path: warm Newton on a prepared environment
    // (compare against BM_PinRailVoltage, the findMpp + bisect path).
    const auto &module = bench::standardModule();
    pv::PreparedArray prepared(module, 1, 1);
    prepared.setEnvironment({800.0, 40.0});
    power::DcDcConverter conv;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            power::pinRailVoltage(prepared, conv, 12.0, 60.0));
}
BENCHMARK(BM_PinRailVoltagePrepared);

void
BM_PerfModelEvaluate(benchmark::State &state)
{
    const cpu::PerfModel model{cpu::CoreConfig{}};
    const auto profile = workload::benchmark("gcc");
    for (auto _ : state)
        benchmark::DoNotOptimize(
            model.evaluate(profile.phases.front(), 2.5e9));
}
BENCHMARK(BM_PerfModelEvaluate);

void
BM_PowerModelEvaluate(benchmark::State &state)
{
    const cpu::PerfModel perf{cpu::CoreConfig{}};
    const cpu::PowerModel power{cpu::EnergyParams{}};
    const auto profile = workload::benchmark("gcc");
    const auto pe = perf.evaluate(profile.phases.front(), 2.5e9);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            power.evaluate(profile.phases.front(), pe, 1.45, 2.5e9));
}
BENCHMARK(BM_PowerModelEvaluate);

void
BM_DpAllocator(benchmark::State &state)
{
    cpu::MultiCoreChip chip(cpu::defaultChipConfig(),
                            cpu::DvfsTable::paperDefault(),
                            cpu::EnergyParams{},
                            workload::workloadSet(workload::WorkloadId::HM2),
                            1);
    const double budget = static_cast<double>(state.range(0));
    for (auto _ : state)
        benchmark::DoNotOptimize(core::optimizeAllocation(chip, budget));
}
BENCHMARK(BM_DpAllocator)->Arg(50)->Arg(100)->Arg(200);

void
BM_ControllerTrack(benchmark::State &state)
{
    const auto &module = bench::standardModule();
    pv::PvArray array(module, 1, 1, {800.0, 40.0});
    cpu::MultiCoreChip chip(cpu::defaultChipConfig(),
                            cpu::DvfsTable::paperDefault(),
                            cpu::EnergyParams{},
                            workload::workloadSet(workload::WorkloadId::HM2),
                            1);
    core::TprOptAdapter adapter;
    core::SolarCoreController ctl(array, chip, adapter);
    for (auto _ : state) {
        chip.gateAll();
        benchmark::DoNotOptimize(ctl.track());
    }
}
BENCHMARK(BM_ControllerTrack);

void
BM_SimulatedDay(benchmark::State &state)
{
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            bench::runDay(solar::SiteId::AZ, solar::Month::Apr,
                          workload::WorkloadId::HM2,
                          core::PolicyKind::MpptOpt, 75.0, false,
                          static_cast<double>(state.range(0))));
    }
}
BENCHMARK(BM_SimulatedDay)->Arg(60)->Arg(30)->Unit(benchmark::kMillisecond);

void
BM_SimulatedDayNewton(benchmark::State &state)
{
    // Seed-equivalent end-to-end path: Newton I-V solves everywhere.
    pv::setNewtonIvSolve(true);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            bench::runDay(solar::SiteId::AZ, solar::Month::Apr,
                          workload::WorkloadId::HM2,
                          core::PolicyKind::MpptOpt, 75.0, false,
                          static_cast<double>(state.range(0))));
    }
    pv::setNewtonIvSolve(false);
}
BENCHMARK(BM_SimulatedDayNewton)
    ->Arg(60)
    ->Arg(30)
    ->Unit(benchmark::kMillisecond);

void
BM_SimulatedDayCached(benchmark::State &state)
{
    // Cross-day memo shared across repetitions, as in the sweeps.
    pv::MppCache cache(bench::standardModule(), 1, 1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            bench::runDay(solar::SiteId::AZ, solar::Month::Apr,
                          workload::WorkloadId::HM2,
                          core::PolicyKind::MpptOpt, 75.0, false,
                          static_cast<double>(state.range(0)), &cache));
    }
}
BENCHMARK(BM_SimulatedDayCached)
    ->Arg(60)
    ->Arg(30)
    ->Unit(benchmark::kMillisecond);

void
BM_SimulatedDayScalarKernel(benchmark::State &state)
{
    // End-to-end day with the batch kernels disabled: everything the
    // default BM_SimulatedDay gains over this row is the SoA batching
    // plus SIMD dispatch plumbed through the day driver.
    const pv::PvKernel prev = pv::selectedPvKernel();
    pv::setPvKernel(pv::PvKernel::Scalar);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            bench::runDay(solar::SiteId::AZ, solar::Month::Apr,
                          workload::WorkloadId::HM2,
                          core::PolicyKind::MpptOpt, 75.0, false,
                          static_cast<double>(state.range(0))));
    }
    pv::setPvKernel(prev);
}
BENCHMARK(BM_SimulatedDayScalarKernel)
    ->Arg(60)
    ->Arg(30)
    ->Unit(benchmark::kMillisecond);

void
BM_StatScalarIncrement(benchmark::State &state)
{
    // The registry hot path: a double add on a reference obtained once
    // at registration time (the registry map is never touched again).
    obs::StatsRegistry reg;
    auto &counter = reg.scalar("chip.core0.dvfsTransitions");
    for (auto _ : state) {
        ++counter;
        benchmark::DoNotOptimize(&counter);
    }
}
BENCHMARK(BM_StatScalarIncrement);

void
BM_TraceAppendEnabled(benchmark::State &state)
{
    // One ring-buffer append: stamp, store, advance.
    obs::TraceBuffer buf(1 << 16);
    buf.setNow(720.0);
    obs::TraceEvent e;
    e.kind = obs::EventKind::DvfsChange;
    e.core = 3;
    e.i0 = 4;
    e.i1 = 5;
    e.v0 = 5.2;
    for (auto _ : state) {
        buf.emit(e);
        benchmark::DoNotOptimize(&buf);
    }
}
BENCHMARK(BM_TraceAppendEnabled);

void
BM_TraceAppendDisabled(benchmark::State &state)
{
    // The disabled-sink pattern every emitter uses: a null check and
    // nothing else. This is the cost tracing adds when off.
    obs::TraceBuffer *trace = nullptr;
    benchmark::DoNotOptimize(trace);
    obs::TraceEvent e;
    e.kind = obs::EventKind::DvfsChange;
    for (auto _ : state) {
        if (trace)
            trace->emit(e);
        benchmark::DoNotOptimize(&e);
    }
}
BENCHMARK(BM_TraceAppendDisabled);

void
BM_TelemetrySampleStep(benchmark::State &state)
{
    // One recorded waveform step of a representative channel set:
    // begin, ten sets, commit. The per-step cost of --telemetry-out.
    obs::TelemetryRecorder rec;
    obs::TelemetryRecorder::ChannelId ids[10];
    for (int c = 0; c < 10; ++c)
        ids[c] = rec.channel("ch" + std::to_string(c), "W");
    double minute = 0.0;
    for (auto _ : state) {
        rec.beginStep(minute);
        for (int c = 0; c < 10; ++c)
            rec.set(ids[c], minute + c);
        rec.endStep();
        minute += 0.25;
        if (rec.rowCount() >= (1u << 16))
            rec.clear(); // bound memory; channels stay registered
    }
}
BENCHMARK(BM_TelemetrySampleStep);

void
BM_ProfileScopeDetached(benchmark::State &state)
{
    // SC_PROFILE_SCOPE with no profiler attached: one thread-local
    // load and a branch. This is what the scopes embedded in the I-V
    // solve / MPP cache / TPR allocator cost in every normal run.
    for (auto _ : state) {
        SC_PROFILE_SCOPE("detached");
        benchmark::DoNotOptimize(&state);
    }
}
BENCHMARK(BM_ProfileScopeDetached);

void
BM_ProfileScopeAttached(benchmark::State &state)
{
    // The attached cost: two clock reads plus a map walk on the first
    // visit (amortized to a pointer chase afterwards).
    obs::Profiler profiler;
    obs::Profiler::Attach attach(&profiler);
    for (auto _ : state) {
        SC_PROFILE_SCOPE("attached");
        benchmark::DoNotOptimize(&state);
    }
}
BENCHMARK(BM_ProfileScopeAttached);

void
BM_AuditorCheckStep(benchmark::State &state)
{
    // One audited step's worth of passing checks in counting mode.
    obs::Auditor audit;
    double drawn = 60.0;
    for (auto _ : state) {
        audit.setNow(720.0);
        audit.countStep();
        audit.checkBudget(drawn, 75.0, "bench");
        audit.checkRailVoltage(12.0, 12.0, "bench");
        audit.checkSocRange(0.5, "bench");
        benchmark::DoNotOptimize(&audit);
        drawn = drawn > 70.0 ? 60.0 : drawn + 0.01;
    }
}
BENCHMARK(BM_AuditorCheckStep);

void
BM_SimulatedDayObsOff(benchmark::State &state)
{
    // Observability compiled in and constructed but not attached: the
    // simulation sees null sinks. run_microbench.sh asserts this stays
    // within 1% of BM_SimulatedDay (no obs objects at all).
    obs::StatsRegistry reg;
    obs::TraceBuffer buf(1 << 16);
    benchmark::DoNotOptimize(&reg);
    benchmark::DoNotOptimize(&buf);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            bench::runDay(solar::SiteId::AZ, solar::Month::Apr,
                          workload::WorkloadId::HM2,
                          core::PolicyKind::MpptOpt, 75.0, false,
                          static_cast<double>(state.range(0))));
    }
}
BENCHMARK(BM_SimulatedDayObsOff)
    ->Arg(60)
    ->Unit(benchmark::kMillisecond);

void
BM_SimulatedDayTraced(benchmark::State &state)
{
    // Full observability: stats registry plus event trace attached.
    obs::StatsRegistry reg;
    obs::TraceBuffer buf(1 << 16);
    for (auto _ : state) {
        buf.clear();
        benchmark::DoNotOptimize(
            bench::runDay(solar::SiteId::AZ, solar::Month::Apr,
                          workload::WorkloadId::HM2,
                          core::PolicyKind::MpptOpt, 75.0, false,
                          static_cast<double>(state.range(0)), nullptr,
                          &reg, &buf));
    }
}
BENCHMARK(BM_SimulatedDayTraced)
    ->Arg(60)
    ->Unit(benchmark::kMillisecond);

void
BM_SimulatedDayTelemetry(benchmark::State &state)
{
    // Waveform recording attached: every step samples the full
    // channel superset (panel, converter, rail, chip, per-core).
    obs::TelemetryRecorder rec;
    for (auto _ : state) {
        rec.clear();
        benchmark::DoNotOptimize(
            bench::runDay(solar::SiteId::AZ, solar::Month::Apr,
                          workload::WorkloadId::HM2,
                          core::PolicyKind::MpptOpt, 75.0, false,
                          static_cast<double>(state.range(0)), nullptr,
                          nullptr, nullptr, &rec));
    }
}
BENCHMARK(BM_SimulatedDayTelemetry)
    ->Arg(60)
    ->Unit(benchmark::kMillisecond);

void
BM_SimulatedDayProfiled(benchmark::State &state)
{
    // Self-profiler attached: every embedded scope takes two clock
    // reads instead of the detached null-check.
    obs::Profiler profiler;
    obs::Profiler::Attach attach(&profiler);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            bench::runDay(solar::SiteId::AZ, solar::Month::Apr,
                          workload::WorkloadId::HM2,
                          core::PolicyKind::MpptOpt, 75.0, false,
                          static_cast<double>(state.range(0))));
    }
}
BENCHMARK(BM_SimulatedDayProfiled)
    ->Arg(60)
    ->Unit(benchmark::kMillisecond);

void
BM_SimulatedDayAudited(benchmark::State &state)
{
    // Invariant auditor in counting mode: the per-step physics checks
    // (budget, rail, panel point, per-core DVFS legality).
    for (auto _ : state) {
        obs::Auditor audit;
        benchmark::DoNotOptimize(
            bench::runDay(solar::SiteId::AZ, solar::Month::Apr,
                          workload::WorkloadId::HM2,
                          core::PolicyKind::MpptOpt, 75.0, false,
                          static_cast<double>(state.range(0)), nullptr,
                          nullptr, nullptr, nullptr, &audit));
    }
}
BENCHMARK(BM_SimulatedDayAudited)
    ->Arg(60)
    ->Unit(benchmark::kMillisecond);

void
BM_TrackingSweepParallel(benchmark::State &state)
{
    // The fig13/fig14 policy sweep body: three tracked days dispatched
    // through the worker pool (thread count = benchmark argument).
    const int threads = static_cast<int>(state.range(0));
    const auto policies = {core::PolicyKind::MpptOpt,
                           core::PolicyKind::MpptIc,
                           core::PolicyKind::MpptRr};
    for (auto _ : state) {
        ThreadPool pool(threads);
        std::vector<core::DayResult> results(policies.size());
        std::vector<pv::MppCache> caches;
        caches.reserve(policies.size());
        for (std::size_t i = 0; i < policies.size(); ++i)
            caches.emplace_back(bench::standardModule(), 1, 1);
        pool.parallelFor(policies.size(), [&](std::size_t i) {
            results[i] = bench::runDay(
                solar::SiteId::AZ, solar::Month::Jan,
                workload::WorkloadId::HM2, *(policies.begin() + i), 75.0,
                false, 60.0, &caches[i]);
        });
        benchmark::DoNotOptimize(results.data());
    }
}
BENCHMARK(BM_TrackingSweepParallel)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
