/**
 * @file
 * Robustness of the headline results to the weather draw: the paper
 * replays fixed 2009 recordings; our substitution is a seeded
 * generator, so the honest question is whether the conclusions depend
 * on the seed. Re-derives the headline aggregates over five
 * independent weather seeds and reports mean +- stddev.
 */

#include <iostream>

#include "common/bench_common.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace solarcore;

namespace {

core::DayResult
runSeed(solar::SiteId site, solar::Month month, workload::WorkloadId wl,
        core::PolicyKind policy, std::uint64_t seed)
{
    core::SimConfig cfg;
    cfg.policy = policy;
    cfg.dtSeconds = bench::kBenchDtSeconds;
    cfg.seed = seed;
    return core::simulateDay(bench::standardModule(),
                             solar::generateDayTrace(site, month, seed),
                             wl, cfg);
}

} // namespace

int
main()
{
    printBanner(std::cout, "headline aggregates across 5 weather seeds");

    TextTable t;
    t.header({"metric", "mean", "stddev", "min", "max", "paper"});

    // 1. Average utilization across the 16 site-months (MPPT&Opt, ML2).
    RunningStats util;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        RunningStats per_seed;
        for (auto [site, month] : solar::allSiteMonths())
            per_seed.add(runSeed(site, month, workload::WorkloadId::ML2,
                                 core::PolicyKind::MpptOpt, seed)
                             .utilization);
        util.add(per_seed.mean());
    }
    t.row({"avg utilization", TextTable::pct(util.mean()),
           TextTable::pct(util.stddev()), TextTable::pct(util.min()),
           TextTable::pct(util.max()), "~82%"});

    // 2. Opt/RR PTP ratio on the heterogeneous mixes at AZ-Apr.
    RunningStats ratio;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        RunningStats per_seed;
        for (auto wl : {workload::WorkloadId::H2, workload::WorkloadId::M2,
                        workload::WorkloadId::HM2,
                        workload::WorkloadId::ML2}) {
            const auto opt = runSeed(solar::SiteId::AZ, solar::Month::Apr,
                                     wl, core::PolicyKind::MpptOpt, seed);
            const auto rr = runSeed(solar::SiteId::AZ, solar::Month::Apr,
                                    wl, core::PolicyKind::MpptRr, seed);
            per_seed.add(opt.solarInstructions / rr.solarInstructions);
        }
        ratio.add(per_seed.mean());
    }
    t.row({"Opt/RR PTP (heterogeneous)", TextTable::num(ratio.mean(), 3),
           TextTable::num(ratio.stddev(), 3),
           TextTable::num(ratio.min(), 3), TextTable::num(ratio.max(), 3),
           "1.108"});

    // 3. Opt/IC PTP ratio on the same cells.
    RunningStats ic_ratio;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        RunningStats per_seed;
        for (auto wl : {workload::WorkloadId::H2, workload::WorkloadId::M2,
                        workload::WorkloadId::HM2,
                        workload::WorkloadId::ML2}) {
            const auto opt = runSeed(solar::SiteId::AZ, solar::Month::Apr,
                                     wl, core::PolicyKind::MpptOpt, seed);
            const auto ic = runSeed(solar::SiteId::AZ, solar::Month::Apr,
                                    wl, core::PolicyKind::MpptIc, seed);
            per_seed.add(opt.solarInstructions / ic.solarInstructions);
        }
        ic_ratio.add(per_seed.mean());
    }
    t.row({"Opt/IC PTP (heterogeneous)",
           TextTable::num(ic_ratio.mean(), 3),
           TextTable::num(ic_ratio.stddev(), 3),
           TextTable::num(ic_ratio.min(), 3),
           TextTable::num(ic_ratio.max(), 3), "1.378"});

    t.print(std::cout);
    std::cout << "\nevery seed preserves the orderings: the conclusions "
                 "do not hinge on a particular weather draw.\n";
    return 0;
}
