/**
 * @file
 * Reproduces paper Figure 5 and Table 1: the characteristics of load
 * matching. On each side of the MPP, sweep (a) the multi-core load w
 * (its load-line resistance through rising DVFS demand) at fixed
 * transfer ratio, and (b) the transfer ratio k at fixed load, printing
 * the operating point's power/voltage/current after every step --
 * the movement the SolarCore controller exploits.
 */

#include <iostream>

#include "common/bench_common.hpp"
#include "power/converter.hpp"
#include "power/operating_point.hpp"
#include "pv/mpp.hpp"
#include "util/table.hpp"

using namespace solarcore;

namespace {

void
sweepLoad(const pv::PvArray &array, double k, double r_from, double r_to,
          const char *title)
{
    printBanner(std::cout, title);
    TextTable t;
    t.header({"R_load [ohm]", "P_out [W]", "V_out [V]", "I_out [A]",
              "panel V [V]"});
    power::DcDcConverter conv;
    conv.setRatio(k);
    for (int i = 0; i <= 6; ++i) {
        const double r = r_from + (r_to - r_from) * i / 6.0;
        const auto st = power::solveNetwork(array, conv, r);
        if (!st.valid)
            continue;
        t.row({TextTable::num(r, 2), TextTable::num(st.loadPower(), 1),
               TextTable::num(st.load.voltage, 2),
               TextTable::num(st.load.current, 2),
               TextTable::num(st.panel.voltage, 1)});
    }
    t.print(std::cout);
}

void
sweepRatio(const pv::PvArray &array, double r_load, double k_from,
           double k_to, const char *title)
{
    printBanner(std::cout, title);
    TextTable t;
    t.header({"k", "P_out [W]", "V_out [V]", "I_out [A]", "panel V [V]"});
    for (int i = 0; i <= 6; ++i) {
        const double k = k_from + (k_to - k_from) * i / 6.0;
        power::DcDcConverter conv;
        conv.setRatio(k);
        const auto st = power::solveNetwork(array, conv, r_load);
        if (!st.valid)
            continue;
        t.row({TextTable::num(k, 2), TextTable::num(st.loadPower(), 1),
               TextTable::num(st.load.voltage, 2),
               TextTable::num(st.load.current, 2),
               TextTable::num(st.panel.voltage, 1)});
    }
    t.print(std::cout);
}

} // namespace

int
main()
{
    const auto &module = bench::standardModule();
    pv::PvArray array(module, 1, 1, {800.0, 30.0});
    const auto mpp = pv::findMpp(array);
    std::cout << "panel at G=800, T=30C: MPP " << TextTable::num(mpp.power, 1)
              << " W at " << TextTable::num(mpp.voltage, 1) << " V\n";

    // Scenario (a): operating point right of the MPP (panel voltage
    // above Vmpp). Increasing the load (smaller R) approaches the MPP.
    const double k_right = mpp.voltage * 1.12 / 12.0;
    sweepLoad(array, k_right, 4.0, 1.2,
              "Figure 5(a): right of MPP -- increasing load w "
              "(R falls) approaches the MPP");

    // Scenario (b): left of the MPP. Decreasing the load approaches it.
    const double k_left = mpp.voltage * 0.55 / 12.0;
    sweepLoad(array, k_left, 0.8, 3.2,
              "Figure 5(b): left of MPP -- decreasing load w "
              "(R rises) approaches the MPP");

    // Transfer-ratio tuning at fixed load, both directions (Table 1).
    sweepRatio(array, 2.2, k_right * 1.1, k_right * 0.75,
               "Table 1, right of MPP: decreasing k approaches the MPP");
    sweepRatio(array, 2.2, k_left * 0.8, k_left * 1.6,
               "Table 1, left of MPP: increasing k approaches the MPP");

    std::cout << "\npaper: on the right of the MPP power rises as the "
                 "load line steepens or k falls; on the left the same "
                 "moves lose power -- the sign structure the SolarCore "
                 "controller's step-2 probe detects.\n";
    return 0;
}
