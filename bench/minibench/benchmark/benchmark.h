/**
 * @file
 * minibench: an in-tree, source-compatible subset of the
 * google-benchmark API (benchmark::State, BENCHMARK(), DoNotOptimize,
 * the JSON reporter and the --benchmark_* flags this repo's harness
 * uses).
 *
 * Why not the system libbenchmark: distribution packages ship the
 * library prebuilt without NDEBUG, so every BENCH_*.json it produced
 * stamped `"library_build_type": "debug"` -- assert-laden timing loops
 * under a Release benchmark binary. This shim compiles as part of the
 * project with the project's flags: a Release tree measures (and
 * stamps) release, and the stamp below is derived from the same NDEBUG
 * the timing loop was compiled with.
 *
 * Implemented surface (everything bench/microbench_components.cpp and
 * bench/run_microbench.sh touch):
 *   - benchmark::State: range(i), iterations(), SetItemsProcessed(),
 *     SkipWithError(), range-for timing loop
 *   - benchmark::DoNotOptimize / ClobberMemory
 *   - BENCHMARK(fn)->Arg(n)->Unit(benchmark::kMillisecond),
 *     BENCHMARK_MAIN()
 *   - flags: --benchmark_filter (ECMAScript regex, partial match),
 *     --benchmark_format=console|json, --benchmark_out=FILE,
 *     --benchmark_out_format=json, --benchmark_repetitions=N,
 *     --benchmark_min_time=SECONDS
 *   - JSON schema: context {date, host_name, executable, num_cpus,
 *     mhz_per_cpu, cpu_scaling_enabled, caches, load_avg,
 *     library_build_type} and one iteration row per repetition {name,
 *     run_name, run_type, iterations, real_time, cpu_time, time_unit,
 *     items_per_second}; rows skipped via SkipWithError() carry
 *     error_occurred/error_message and no real_time.
 *
 * Semantics match google-benchmark where the harness depends on them:
 * the timing window opens at the first loop iteration (setup before
 * the range-for is free), iterations are calibrated by doubling until
 * the loop runs >= min_time, and every repetition re-runs the loop at
 * the calibrated iteration count.
 */

#ifndef SOLARCORE_MINIBENCH_BENCHMARK_H
#define SOLARCORE_MINIBENCH_BENCHMARK_H

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace benchmark {

enum TimeUnit { kNanosecond, kMicrosecond, kMillisecond, kSecond };

/** One timing run's mutable state; the benchmark body loops over it. */
class State
{
  public:
    State(std::int64_t max_iterations, std::vector<std::int64_t> args)
        : maxIterations_(max_iterations), args_(std::move(args))
    {}

    struct StateIterator
    {
        State *parent;
        std::int64_t remaining;

        int operator*() const { return 0; }
        StateIterator &operator++()
        {
            --remaining;
            return *this;
        }
        bool operator!=(const StateIterator &)
        {
            if (remaining > 0 && !parent->error_)
                return true;
            parent->finishLoop();
            return false;
        }
    };

    StateIterator begin()
    {
        startLoop();
        return StateIterator{this, maxIterations_};
    }
    StateIterator end() { return StateIterator{this, 0}; }

    std::int64_t range(std::size_t i = 0) const
    {
        return i < args_.size() ? args_[i] : 0;
    }

    /** Total iterations of the completed loop (google-benchmark calls
     *  this after the loop to scale SetItemsProcessed). */
    std::int64_t iterations() const { return maxIterations_; }

    void SetItemsProcessed(std::int64_t items) { items_ = items; }

    void SkipWithError(const char *message)
    {
        error_ = true;
        errorMessage_ = message != nullptr ? message : "";
    }

    bool errorOccurred() const { return error_; }
    const std::string &errorMessage() const { return errorMessage_; }
    double realSeconds() const { return realSeconds_; }
    double cpuSeconds() const { return cpuSeconds_; }
    std::int64_t itemsProcessed() const { return items_; }

  private:
    void startLoop();
    void finishLoop();

    std::int64_t maxIterations_ = 0;
    std::vector<std::int64_t> args_;
    std::int64_t items_ = 0;
    bool error_ = false;
    std::string errorMessage_;

    bool started_ = false;
    bool finished_ = false;
    std::chrono::steady_clock::time_point realStart_;
    double cpuStart_ = 0.0;
    double realSeconds_ = 0.0;
    double cpuSeconds_ = 0.0;
};

#if defined(__GNUC__) || defined(__clang__)
template <class Tp>
inline __attribute__((always_inline)) void
DoNotOptimize(Tp const &value)
{
    asm volatile("" : : "r,m"(value) : "memory");
}

template <class Tp>
inline __attribute__((always_inline)) void
DoNotOptimize(Tp &value)
{
#if defined(__clang__)
    asm volatile("" : "+r,m"(value) : : "memory");
#else
    // gcc needs the memory alternative first or large/odd types hit
    // "impossible constraint in asm".
    asm volatile("" : "+m,r"(value) : : "memory");
#endif
}

inline __attribute__((always_inline)) void
ClobberMemory()
{
    asm volatile("" : : : "memory");
}
#else
template <class Tp>
inline void
DoNotOptimize(Tp const &)
{
}
inline void
ClobberMemory()
{
}
#endif

namespace internal {

using Function = void (*)(State &);

/** One BENCHMARK() registration; Arg()/Unit() configure it. */
class Benchmark
{
  public:
    Benchmark(std::string name, Function fn);

    /** Add a one-argument instance (each Arg() call is one run). */
    Benchmark *Arg(std::int64_t value);

    /** Reporting unit for every instance of this benchmark. */
    Benchmark *Unit(TimeUnit unit);

    const std::string &name() const { return name_; }
    Function function() const { return fn_; }
    TimeUnit unit() const { return unit_; }
    const std::vector<std::vector<std::int64_t>> &argLists() const
    {
        return argLists_;
    }

  private:
    std::string name_;
    Function fn_;
    TimeUnit unit_ = kNanosecond;
    std::vector<std::vector<std::int64_t>> argLists_;
};

Benchmark *RegisterBenchmark(const char *name, Function fn);

/** Parse flags, run every (filtered) benchmark, write reports.
 *  @return process exit code. */
int RunAllBenchmarks(int argc, char **argv);

} // namespace internal

} // namespace benchmark

#define MINIBENCH_CONCAT2(a, b) a##b
#define MINIBENCH_CONCAT(a, b) MINIBENCH_CONCAT2(a, b)

#define BENCHMARK(fn)                                                  \
    static ::benchmark::internal::Benchmark *MINIBENCH_CONCAT(         \
        minibench_reg_, __LINE__) [[maybe_unused]] =                   \
        ::benchmark::internal::RegisterBenchmark(#fn, fn)

#define BENCHMARK_MAIN()                                               \
    int main(int argc, char **argv)                                    \
    {                                                                  \
        return ::benchmark::internal::RunAllBenchmarks(argc, argv);    \
    }

#endif // SOLARCORE_MINIBENCH_BENCHMARK_H
