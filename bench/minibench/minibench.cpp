#include "benchmark/benchmark.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fstream>
#include <iostream>
#include <memory>
#include <regex>
#include <sstream>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace benchmark {

namespace {

double
processCpuSeconds()
{
#if defined(CLOCK_PROCESS_CPUTIME_ID)
    timespec ts;
    if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) == 0)
        return static_cast<double>(ts.tv_sec) +
            static_cast<double>(ts.tv_nsec) * 1e-9;
#endif
    return static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
}

const char *
timeUnitName(TimeUnit unit)
{
    switch (unit) {
    case kNanosecond:
        return "ns";
    case kMicrosecond:
        return "us";
    case kMillisecond:
        return "ms";
    case kSecond:
        return "s";
    }
    return "ns";
}

double
timeUnitPerSecond(TimeUnit unit)
{
    switch (unit) {
    case kNanosecond:
        return 1e9;
    case kMicrosecond:
        return 1e6;
    case kMillisecond:
        return 1e3;
    case kSecond:
        return 1.0;
    }
    return 1e9;
}

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size() + 2);
    for (const char c : text) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    // %g can produce "1e+06"-style output, which is valid JSON.
    return buf;
}

} // namespace

void
State::startLoop()
{
    if (started_)
        return;
    started_ = true;
    cpuStart_ = processCpuSeconds();
    realStart_ = std::chrono::steady_clock::now();
}

void
State::finishLoop()
{
    if (!started_ || finished_)
        return;
    finished_ = true;
    realSeconds_ = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - realStart_)
                       .count();
    cpuSeconds_ = processCpuSeconds() - cpuStart_;
}

namespace internal {

namespace {

std::vector<Benchmark *> &
registry()
{
    static std::vector<Benchmark *> benchmarks;
    return benchmarks;
}

/** One runnable (benchmark, argument list) pair. */
struct Instance
{
    const Benchmark *family = nullptr;
    std::vector<std::int64_t> args;

    std::string name() const
    {
        std::string n = family->name();
        for (const std::int64_t a : args) {
            n += '/';
            n += std::to_string(a);
        }
        return n;
    }
};

/** One repetition's report row. */
struct Row
{
    std::string name;
    TimeUnit unit = kNanosecond;
    std::int64_t iterations = 0;
    double realTimePerIter = 0.0; //!< in `unit`
    double cpuTimePerIter = 0.0;  //!< in `unit`
    double itemsPerSecond = 0.0;  //!< 0 when not set
    bool error = false;
    std::string errorMessage;
};

struct Options
{
    std::string filter;
    std::string format = "console";
    std::string outPath;
    std::string outFormat = "json";
    int repetitions = 1;
    double minTime = 0.25;
};

/** Run one instance at a fixed iteration count. */
State
runOnce(const Instance &inst, std::int64_t iters)
{
    State state(iters, inst.args);
    inst.family->function()(state);
    return state;
}

/**
 * Grow the iteration count until the timing loop runs >= minTime (the
 * google-benchmark calibration shape: multiply by the projected
 * shortfall with head-room, clamped to [2x, 10x] per step).
 */
std::int64_t
calibrate(const Instance &inst, double min_time, bool &error,
          std::string &error_message)
{
    constexpr std::int64_t kMaxIters = 1000000000;
    std::int64_t iters = 1;
    for (;;) {
        const State state = runOnce(inst, iters);
        if (state.errorOccurred()) {
            error = true;
            error_message = state.errorMessage();
            return iters;
        }
        const double t = state.realSeconds();
        if (t >= min_time || iters >= kMaxIters)
            return iters;
        double mult = min_time / std::max(t, 1e-9) * 1.4;
        mult = std::min(10.0, std::max(2.0, mult));
        iters = std::min<double>(static_cast<double>(kMaxIters),
                                 static_cast<double>(iters) * mult + 1.0);
    }
}

std::string
contextJson(const char *executable)
{
    std::ostringstream os;

    char date[64] = "unknown";
    const std::time_t now = std::time(nullptr);
    std::tm tm_buf{};
#if defined(__unix__) || defined(__APPLE__)
    localtime_r(&now, &tm_buf);
#else
    tm_buf = *std::localtime(&now);
#endif
    std::strftime(date, sizeof(date), "%Y-%m-%dT%H:%M:%S%z", &tm_buf);

    char host[256] = "unknown";
#if defined(__unix__) || defined(__APPLE__)
    if (gethostname(host, sizeof(host)) != 0)
        std::strcpy(host, "unknown");
    host[sizeof(host) - 1] = '\0';
#endif

    double mhz = 0.0;
    {
        std::ifstream cpuinfo("/proc/cpuinfo");
        std::string line;
        while (std::getline(cpuinfo, line)) {
            if (line.rfind("cpu MHz", 0) == 0) {
                const auto colon = line.find(':');
                if (colon != std::string::npos)
                    mhz = std::strtod(line.c_str() + colon + 1, nullptr);
                break;
            }
        }
    }

    bool scaling = false;
    {
        std::ifstream gov("/sys/devices/system/cpu/cpu0/cpufreq/"
                          "scaling_governor");
        std::string governor;
        if (gov >> governor)
            scaling = governor != "performance";
    }

    double load[3] = {0.0, 0.0, 0.0};
#if defined(__unix__) || defined(__APPLE__)
    if (getloadavg(load, 3) != 3)
        load[0] = load[1] = load[2] = 0.0;
#endif

    os << "    \"date\": \"" << date << "\",\n";
    os << "    \"host_name\": \"" << jsonEscape(host) << "\",\n";
    os << "    \"executable\": \"" << jsonEscape(executable) << "\",\n";
    os << "    \"num_cpus\": " << std::thread::hardware_concurrency()
       << ",\n";
    os << "    \"mhz_per_cpu\": " << jsonDouble(mhz) << ",\n";
    os << "    \"cpu_scaling_enabled\": " << (scaling ? "true" : "false")
       << ",\n";
    os << "    \"caches\": [\n    ],\n";
    os << "    \"load_avg\": [" << jsonDouble(load[0]) << ","
       << jsonDouble(load[1]) << "," << jsonDouble(load[2]) << "],\n";
    // The whole point of the in-tree shim: this stamp describes the
    // flags the timing loop itself was compiled with.
#ifdef NDEBUG
    os << "    \"library_build_type\": \"release\"\n";
#else
    os << "    \"library_build_type\": \"debug\"\n";
#endif
    return os.str();
}

std::string
reportJson(const std::vector<Row> &rows, const char *executable)
{
    std::ostringstream os;
    os << "{\n  \"context\": {\n" << contextJson(executable) << "  },\n";
    os << "  \"benchmarks\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        os << "    {\n";
        os << "      \"name\": \"" << jsonEscape(r.name) << "\",\n";
        os << "      \"run_name\": \"" << jsonEscape(r.name) << "\",\n";
        os << "      \"run_type\": \"iteration\",\n";
        os << "      \"repetitions\": 0,\n";
        os << "      \"threads\": 1,\n";
        if (r.error) {
            os << "      \"error_occurred\": true,\n";
            os << "      \"error_message\": \""
               << jsonEscape(r.errorMessage) << "\"\n";
        } else {
            os << "      \"iterations\": " << r.iterations << ",\n";
            os << "      \"real_time\": " << jsonDouble(r.realTimePerIter)
               << ",\n";
            os << "      \"cpu_time\": " << jsonDouble(r.cpuTimePerIter)
               << ",\n";
            if (r.itemsPerSecond > 0.0)
                os << "      \"items_per_second\": "
                   << jsonDouble(r.itemsPerSecond) << ",\n";
            os << "      \"time_unit\": \"" << timeUnitName(r.unit)
               << "\"\n";
        }
        os << "    }" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    return os.str();
}

void
reportConsole(std::ostream &os, const std::vector<Row> &rows)
{
    os << "----------------------------------------------------------\n";
    os << "Benchmark                        Time        Iterations\n";
    os << "----------------------------------------------------------\n";
    for (const Row &r : rows) {
        if (r.error) {
            os << r.name << "  ERROR: " << r.errorMessage << "\n";
            continue;
        }
        char line[256];
        std::snprintf(line, sizeof(line), "%-28s %10.3f %-3s %12lld\n",
                      r.name.c_str(), r.realTimePerIter,
                      timeUnitName(r.unit),
                      static_cast<long long>(r.iterations));
        os << line;
    }
}

} // namespace

Benchmark::Benchmark(std::string name, Function fn)
    : name_(std::move(name)), fn_(fn)
{}

Benchmark *
Benchmark::Arg(std::int64_t value)
{
    argLists_.push_back({value});
    return this;
}

Benchmark *
Benchmark::Unit(TimeUnit unit)
{
    unit_ = unit;
    return this;
}

Benchmark *
RegisterBenchmark(const char *name, Function fn)
{
    // Leaked by design: registrations live for the whole process, and
    // the registry must survive static destruction order.
    auto *bench = new Benchmark(name, fn);
    registry().push_back(bench);
    return bench;
}

int
RunAllBenchmarks(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto eq = arg.find('=');
        const std::string key = arg.substr(0, eq);
        const std::string value =
            eq == std::string::npos ? "" : arg.substr(eq + 1);
        if (key == "--benchmark_filter") {
            opt.filter = value;
        } else if (key == "--benchmark_format") {
            opt.format = value;
        } else if (key == "--benchmark_out") {
            opt.outPath = value;
        } else if (key == "--benchmark_out_format") {
            opt.outFormat = value;
        } else if (key == "--benchmark_repetitions") {
            opt.repetitions = std::max(1, std::atoi(value.c_str()));
        } else if (key == "--benchmark_min_time") {
            const double t = std::strtod(value.c_str(), nullptr);
            if (t > 0.0)
                opt.minTime = t;
        } else if (key.rfind("--benchmark_", 0) == 0) {
            std::cerr << "minibench: ignoring unsupported flag " << key
                      << "\n";
        } else {
            std::cerr << "minibench: unknown argument " << arg << "\n";
            return 2;
        }
    }

    std::unique_ptr<std::regex> filter;
    if (!opt.filter.empty()) {
        try {
            filter = std::make_unique<std::regex>(opt.filter);
        } catch (const std::regex_error &e) {
            std::cerr << "minibench: bad --benchmark_filter: " << e.what()
                      << "\n";
            return 2;
        }
    }

    std::vector<Instance> instances;
    for (const Benchmark *family : registry()) {
        if (family->argLists().empty()) {
            Instance inst;
            inst.family = family;
            instances.push_back(std::move(inst));
            continue;
        }
        for (const auto &args : family->argLists()) {
            Instance inst;
            inst.family = family;
            inst.args = args;
            instances.push_back(std::move(inst));
        }
    }

    std::vector<Row> rows;
    for (const Instance &inst : instances) {
        const std::string name = inst.name();
        if (filter && !std::regex_search(name, *filter))
            continue;

        bool error = false;
        std::string error_message;
        const std::int64_t iters =
            calibrate(inst, opt.minTime, error, error_message);
        if (error) {
            Row row;
            row.name = name;
            row.unit = inst.family->unit();
            row.error = true;
            row.errorMessage = error_message;
            rows.push_back(std::move(row));
            continue;
        }

        const double scale = timeUnitPerSecond(inst.family->unit());
        for (int rep = 0; rep < opt.repetitions; ++rep) {
            const State state = runOnce(inst, iters);
            Row row;
            row.name = name;
            row.unit = inst.family->unit();
            if (state.errorOccurred()) {
                row.error = true;
                row.errorMessage = state.errorMessage();
            } else {
                row.iterations = iters;
                row.realTimePerIter = state.realSeconds() /
                    static_cast<double>(iters) * scale;
                row.cpuTimePerIter = state.cpuSeconds() /
                    static_cast<double>(iters) * scale;
                if (state.itemsProcessed() > 0 &&
                    state.realSeconds() > 0.0)
                    row.itemsPerSecond =
                        static_cast<double>(state.itemsProcessed()) /
                        state.realSeconds();
            }
            rows.push_back(std::move(row));
        }
    }

    const char *executable = argc > 0 ? argv[0] : "unknown";
    if (!opt.outPath.empty()) {
        if (opt.outFormat != "json") {
            std::cerr << "minibench: only --benchmark_out_format=json is "
                         "supported\n";
            return 2;
        }
        std::ofstream out(opt.outPath, std::ios::trunc);
        if (!out) {
            std::cerr << "minibench: cannot open '" << opt.outPath
                      << "'\n";
            return 1;
        }
        out << reportJson(rows, executable);
    }
    if (opt.format == "json")
        std::cout << reportJson(rows, executable);
    else
        reportConsole(std::cout, rows);
    return 0;
}

} // namespace internal

} // namespace benchmark
