/**
 * @file
 * Model validation artifact: the interval performance model that
 * drives the day-long simulations versus the cycle-level OoO core
 * (src/cpu/cycle), for every catalogued benchmark at both clock
 * extremes. The table documents the agreement band (tests enforce
 * 0.55x..1.45x) and that both models see identical frequency-scaling
 * trends -- the property the DVFS results rest on.
 */

#include <iostream>

#include "common/bench_common.hpp"
#include "cpu/cycle/cycle_core.hpp"
#include "cpu/perf_model.hpp"
#include "util/table.hpp"

using namespace solarcore;

int
main()
{
    const cpu::CoreConfig config;
    const cpu::PerfModel interval(config);

    printBanner(std::cout, "interval model vs cycle-level core "
                           "(40k-instruction synthetic traces)");
    TextTable t;
    t.header({"benchmark", "class", "IPC cyc@2.5G", "IPC int@2.5G",
              "ratio", "IPC cyc@1.0G", "IPC int@1.0G", "ratio"});

    double worst_low = 10.0;
    double worst_high = 0.0;
    for (const auto &name : workload::allBenchmarkNames()) {
        const auto profile = workload::benchmark(name);
        const auto &phase = profile.phases.front();
        const auto trace = cpu::cycle::generateTrace(phase, 40000, 7);

        std::vector<std::string> row{name};
        switch (workload::expectedClass(name)) {
          case cpu::EpiClass::High:     row.emplace_back("high"); break;
          case cpu::EpiClass::Moderate: row.emplace_back("mod");  break;
          case cpu::EpiClass::Low:      row.emplace_back("low");  break;
        }
        for (double f : {2.5e9, 1.0e9}) {
            const double cyc = cpu::cycle::CycleCore(config, f)
                                   .run(trace)
                                   .ipc();
            const double ivl = interval.evaluate(phase, f).ipc;
            const double ratio = cyc / ivl;
            worst_low = std::min(worst_low, ratio);
            worst_high = std::max(worst_high, ratio);
            row.push_back(TextTable::num(cyc, 2));
            row.push_back(TextTable::num(ivl, 2));
            row.push_back(TextTable::num(ratio, 2));
        }
        t.row(std::move(row));
    }
    t.print(std::cout);
    std::cout << "\nagreement band across all cells: "
              << TextTable::num(worst_low, 2) << "x .. "
              << TextTable::num(worst_high, 2)
              << "x (tests enforce 0.55x..1.45x); both models agree on "
                 "every frequency-scaling direction.\n";
    return 0;
}
