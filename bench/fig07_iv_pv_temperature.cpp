/**
 * @file
 * Reproduces paper Figure 7: module I-V and P-V characteristics at
 * T in {0, 25, 50, 75} C and G = 1000 W/m^2. Higher temperature must
 * reduce the open-circuit voltage, slightly raise the short-circuit
 * current, and shift the MPP left with lower maximum power.
 */

#include <iostream>

#include "common/bench_common.hpp"
#include "util/table.hpp"

using namespace solarcore;

int
main()
{
    const auto &module = bench::standardModule();

    printBanner(std::cout, "Figure 7: BP3180N I-V / P-V vs temperature "
                           "(G = 1000 W/m^2)");
    TextTable curves;
    curves.header({"V [V]", "I@0C", "I@25C", "I@50C", "I@75C", "P@0C",
                   "P@25C", "P@50C", "P@75C"});

    const double ts[] = {0.0, 25.0, 50.0, 75.0};
    pv::PvArray cold(module, 1, 1, {1000.0, 0.0});
    const double v_max = cold.openCircuitVoltage();
    for (int i = 0; i <= 12; ++i) {
        const double v = v_max * i / 12.0;
        std::vector<std::string> row{TextTable::num(v, 1)};
        std::vector<std::string> powers;
        for (double t : ts) {
            pv::PvArray array(module, 1, 1, {1000.0, t});
            const double c = array.currentAt(v);
            row.push_back(TextTable::num(c, 2));
            powers.push_back(TextTable::num(v * c, 1));
        }
        row.insert(row.end(), powers.begin(), powers.end());
        curves.row(std::move(row));
    }
    curves.print(std::cout);

    printBanner(std::cout,
                "MPP summary (paper: MPP shifts left and falls with T)");
    TextTable mpps;
    mpps.header({"T [C]", "Voc [V]", "Isc [A]", "Vmpp [V]", "Impp [A]",
                 "Pmax [W]"});
    for (double t : ts) {
        pv::PvArray array(module, 1, 1, {1000.0, t});
        const auto mpp = pv::findMpp(array);
        mpps.row({TextTable::num(t, 0),
                  TextTable::num(array.openCircuitVoltage(), 1),
                  TextTable::num(array.shortCircuitCurrent(), 2),
                  TextTable::num(mpp.voltage, 1),
                  TextTable::num(mpp.current, 2),
                  TextTable::num(mpp.power, 1)});
    }
    mpps.print(std::cout);
    return 0;
}
