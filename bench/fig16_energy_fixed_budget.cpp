/**
 * @file
 * Reproduces paper Figure 16: solar energy drawn under fixed power
 * budgets of 25..125 W, normalized to SolarCore, per site and month
 * (averaged over a representative workload set).
 */

#include "common/fixed_budget_sweep.hpp"

int
main(int argc, char **argv)
{
    const auto cells = solarcore::bench::runFixedBudgetSweep(
        solarcore::bench::threadsFromArgs(argc, argv));
    solarcore::bench::printFixedSweep(cells, /*energy=*/true);
    return 0;
}
