/**
 * @file
 * Reproduces paper Figure 15: normalized effective operation duration
 * of a direct-coupled system under fixed power-transfer thresholds of
 * 25..125 W, for all 16 site-months. The paper groups the curves into
 * slow / linear / rapid decline classes; we print the full matrix and
 * an automatic classification of each site-month's decline shape.
 */

#include <cmath>
#include <iostream>

#include "common/bench_common.hpp"
#include "pv/mpp.hpp"
#include "util/table.hpp"

using namespace solarcore;

namespace {

/** Fraction of the daytime the panel MPP meets @p threshold_w. */
double
durationAboveThreshold(solar::SiteId site, solar::Month month,
                       double threshold_w)
{
    const auto &module = bench::standardModule();
    const auto &trace = bench::standardTrace(site, month);
    pv::PvArray array(module, 1, 1, pv::kStc);

    int above = 0;
    int total = 0;
    for (double minute = trace.startMinute(); minute <= trace.endMinute();
         minute += 1.0) {
        const double g = trace.irradianceAt(minute);
        const double amb = trace.ambientAt(minute);
        array.setEnvironment({g, module.cellTempFromAmbient(amb, g)});
        above += pv::findMpp(array).power >= threshold_w;
        ++total;
    }
    return static_cast<double>(above) / total;
}

const char *
classify(double frac_at_125)
{
    // Thresholds scaled to this panel: a single BP3180N only clears
    // 125 W near its summer peak, so even the sunniest cells keep at
    // most ~40% of the day above the top budget.
    if (frac_at_125 >= 0.30)
        return "slow decline";
    if (frac_at_125 >= 0.08)
        return "linear decline";
    return "rapid decline";
}

} // namespace

int
main()
{
    printBanner(std::cout, "Figure 15: normalized effective operation "
                           "duration vs power budget threshold");
    TextTable t;
    t.header({"pattern", "25W", "50W", "75W", "100W", "125W", "class"});

    const double budgets[] = {25.0, 50.0, 75.0, 100.0, 125.0};
    for (auto [site, month] : solar::allSiteMonths()) {
        std::vector<std::string> row{bench::siteMonthLabel(site, month)};
        double last = 0.0;
        double prev = 1.0;
        bool monotone = true;
        for (double b : budgets) {
            const double f = durationAboveThreshold(site, month, b);
            monotone &= f <= prev + 1e-12;
            prev = f;
            last = f;
            row.push_back(TextTable::num(f, 2));
        }
        row.emplace_back(classify(last));
        t.row(std::move(row));
        if (!monotone)
            std::cout << "warning: non-monotone duration curve\n";
    }
    t.print(std::cout);
    std::cout << "\npaper: duration declines slowly for sunny patterns "
                 "(e.g. Apr@AZ), linearly for most, and rapidly for "
                 "cloudy autumn/spring cells (e.g. Apr@NC, Oct@TN).\n";
    return 0;
}
