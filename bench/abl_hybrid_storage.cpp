/**
 * @file
 * Extension study (the paper's Section 8 future-work direction and
 * Section 1's battery trade-off): a direct-coupled SolarCore system
 * augmented with a SMALL storage buffer. The buffer absorbs the
 * tracking margin and sub-threshold trickle, and bridges cloud gaps,
 * so a few watt-hours of storage recover most of the energy the pure
 * direct-coupled design forfeits -- without the bulk battery whose
 * cost/lifetime problems motivated SolarCore in the first place.
 *
 * Sweeps the buffer capacity at a volatile site (NC-Apr) and a steady
 * one (AZ-Jan).
 */

#include <iostream>

#include "common/bench_common.hpp"
#include "util/table.hpp"

using namespace solarcore;

namespace {

void
sweepSite(solar::SiteId site, solar::Month month)
{
    printBanner(std::cout,
                "hybrid buffer sweep -- " +
                    bench::siteMonthLabel(site, month) + " (HM2)");
    TextTable t;
    t.header({"buffer [Wh]", "green fraction", "buffer Wh used",
              "green PTP [Tinstr]", "grid Wh"});
    for (double cap : {0.0, 5.0, 10.0, 25.0, 50.0, 100.0}) {
        core::SimConfig cfg;
        cfg.policy = core::PolicyKind::MpptOpt;
        cfg.dtSeconds = bench::kBenchDtSeconds;
        const auto r = core::simulateHybridDay(
            bench::standardModule(), bench::standardTrace(site, month),
            workload::WorkloadId::HM2, cap, cfg);
        t.row({TextTable::num(cap, 0), TextTable::pct(r.greenFraction),
               TextTable::num(r.bufferedWh, 1),
               TextTable::num(r.day.solarInstructions / 1e12, 1),
               TextTable::num(r.day.gridEnergyWh, 0)});
    }
    t.print(std::cout);
}

} // namespace

int
main()
{
    sweepSite(solar::SiteId::NC, solar::Month::Apr); // volatile
    sweepSite(solar::SiteId::AZ, solar::Month::Jan); // steady
    std::cout << "\nexpected: tens of Wh already bridge most cloud gaps "
                 "and dawn/dusk tails; returns diminish well before "
                 "bulk-battery capacities.\n";
    return 0;
}
