/**
 * @file
 * Extension study: thread motion (paper reference [36]) grafted onto
 * the MPPT&IC concentration policy. Plain IC boosts whichever program
 * happens to occupy the low-indexed cores; migrating the most
 * power-efficient programs there first recovers a large share of the
 * PTP that concentration loses to MPPT&Opt -- at the cost of periodic
 * migrations.
 */

#include <iostream>

#include "common/bench_common.hpp"
#include "util/table.hpp"

using namespace solarcore;

int
main()
{
    printBanner(std::cout, "thread motion on the concentration policy "
                           "(AZ-Apr, PTP normalized to MPPT&Opt)");
    TextTable t;
    t.header({"workload", "MPPT&IC", "MPPT&IC+TM", "MPPT&RR",
              "TM recovery"});

    for (auto wl : {workload::WorkloadId::H2, workload::WorkloadId::M2,
                    workload::WorkloadId::L2, workload::WorkloadId::HM2,
                    workload::WorkloadId::ML1, workload::WorkloadId::ML2}) {
        const auto opt = bench::runDay(solar::SiteId::AZ,
                                       solar::Month::Apr, wl,
                                       core::PolicyKind::MpptOpt);
        const auto ic = bench::runDay(solar::SiteId::AZ,
                                      solar::Month::Apr, wl,
                                      core::PolicyKind::MpptIc);
        const auto tm = bench::runDay(solar::SiteId::AZ,
                                      solar::Month::Apr, wl,
                                      core::PolicyKind::MpptIcMotion);
        const auto rr = bench::runDay(solar::SiteId::AZ,
                                      solar::Month::Apr, wl,
                                      core::PolicyKind::MpptRr);
        const double base = opt.solarInstructions;
        const double gap = base - ic.solarInstructions;
        const double recovered =
            gap > 0.0 ? (tm.solarInstructions - ic.solarInstructions) / gap
                      : 0.0;
        t.row({workload::workloadName(wl),
               TextTable::num(ic.solarInstructions / base, 2),
               TextTable::num(tm.solarInstructions / base, 2),
               TextTable::num(rr.solarInstructions / base, 2),
               TextTable::pct(recovered, 0)});
    }
    t.print(std::cout);
    std::cout << "\n'TM recovery' = share of the IC-to-Opt PTP gap that "
                 "migration closes; homogeneous mixes have nothing to "
                 "migrate, heterogeneous ones recover a large share.\n";
    return 0;
}
