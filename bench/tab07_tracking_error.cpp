/**
 * @file
 * Reproduces paper Table 7: the average relative MPP tracking error of
 * SolarCore (MPPT&Opt) for every site, month and workload -- the full
 * 4 x 4 x 10 matrix. The paper's qualitative record to match: high-EPI
 * homogeneous mixes (H1) err most, heterogeneous and low-EPI mixes
 * least; NC April is the most volatile cell, NC July the calmest.
 *
 * Also prints the configuration tables the evaluation fixes (paper
 * Tables 2-6) so the experiment context is self-describing.
 */

#include <iostream>

#include "common/bench_common.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace solarcore;

namespace {

void
printConfigTables()
{
    printBanner(std::cout, "Table 2: evaluated geographic locations");
    TextTable t2;
    t2.header({"station", "location", "latitude", "potential",
               "kWh/m2/day"});
    for (auto site : solar::allSites()) {
        const auto &info = solar::siteInfo(site);
        t2.row({info.station, info.location,
                TextTable::num(info.latitudeDeg, 2), info.potential,
                TextTable::num(info.paperKwhPerM2Day, 1)});
    }
    t2.print(std::cout);

    printBanner(std::cout, "Table 3: battery-based PV system levels");
    TextTable t3;
    t3.header({"level", "MPPT eff", "round-trip eff", "overall"});
    const struct
    {
        const char *name;
        power::BatteryLevel level;
    } levels[] = {{"High", power::BatteryLevel::High},
                  {"Moderate", power::BatteryLevel::Moderate},
                  {"Low", power::BatteryLevel::Low}};
    for (const auto &l : levels) {
        const auto d = power::deRating(l.level);
        t3.row({l.name, TextTable::pct(d.mpptTrackingEff, 0),
                TextTable::pct(d.batteryRoundTrip, 0),
                TextTable::pct(d.overall(), 0)});
    }
    t3.print(std::cout);

    printBanner(std::cout, "Table 4: simulated machine (excerpt)");
    const cpu::CoreConfig cc;
    const auto dvfs = cpu::DvfsTable::paperDefault();
    TextTable t4;
    t4.header({"parameter", "value"});
    t4.row({"cores", "8x Alpha-21264-class OoO"});
    t4.row({"width", "4-wide fetch/issue/commit"});
    t4.row({"ROB / IQ / LSQ", "98 / 64 / 48 entries"});
    t4.row({"L1 / L2",
            "64KB 4-way 3cyc / 2MB 8-way 12cyc (private)"});
    t4.row({"memory", TextTable::num(cc.memLatencyNs, 0) +
                          " ns (400 cycles @ 2.5 GHz)"});
    std::string freqs;
    std::string volts;
    for (int l = dvfs.maxLevel(); l >= 0; --l) {
        freqs += TextTable::num(dvfs.frequency(l) / 1e9, 1) + " ";
        volts += TextTable::num(dvfs.voltage(l), 2) + " ";
    }
    t4.row({"DVFS f [GHz]", freqs});
    t4.row({"DVFS V [V]", volts});
    t4.print(std::cout);

    printBanner(std::cout, "Table 5: multiprogrammed workloads");
    TextTable t5;
    t5.header({"set", "composition"});
    for (auto wl : workload::allWorkloads()) {
        std::string mix;
        for (const auto &b : workload::workloadBenchmarks(wl))
            mix += b + " ";
        t5.row({workload::workloadName(wl), mix});
    }
    t5.print(std::cout);

    printBanner(std::cout, "Table 6: evaluated power management schemes");
    TextTable t6;
    t6.header({"scheme", "MPPT", "load adaptation"});
    t6.row({"Fixed-Power", "no", "exact DP allocation, fixed budget"});
    t6.row({"MPPT&IC", "yes", "individual core to its extreme"});
    t6.row({"MPPT&RR", "yes", "round-robin"});
    t6.row({"MPPT&Opt", "yes", "throughput-power-ratio optimized"});
    t6.print(std::cout);
}

} // namespace

int
main()
{
    printConfigTables();

    printBanner(std::cout, "Table 7: average relative tracking error "
                           "(MPPT&Opt), all sites/months/workloads");
    TextTable t;
    std::vector<std::string> hdr{"site", "month"};
    for (auto wl : workload::allWorkloads())
        hdr.emplace_back(workload::workloadName(wl));
    t.header(std::move(hdr));

    RunningStats overall;
    RunningStats h1_err;
    RunningStats l1_err;
    for (auto site : solar::allSites()) {
        for (auto month : solar::allMonths()) {
            std::vector<std::string> row{solar::siteName(site),
                                         solar::monthName(month)};
            for (auto wl : workload::allWorkloads()) {
                const auto r = bench::runDay(site, month, wl,
                                             core::PolicyKind::MpptOpt);
                row.push_back(TextTable::pct(r.avgTrackingError));
                overall.add(r.avgTrackingError);
                if (wl == workload::WorkloadId::H1)
                    h1_err.add(r.avgTrackingError);
                if (wl == workload::WorkloadId::L1)
                    l1_err.add(r.avgTrackingError);
            }
            t.row(std::move(row));
        }
    }
    t.print(std::cout);

    std::cout << "\noverall mean error: " << TextTable::pct(overall.mean())
              << " (paper cells span ~4%..22%)\n"
              << "H1 mean " << TextTable::pct(h1_err.mean()) << " vs L1 mean "
              << TextTable::pct(l1_err.mean())
              << " (paper: high-EPI homogeneous errs most)\n";
    return 0;
}
