/**
 * @file
 * solarcore_serve: the planner-as-a-service daemon.
 *
 *   solarcore_serve --socket=/tmp/sc.sock --workers=4 \
 *       --unit-cache=.cache/units --status-out=serve-status.json \
 *       --metrics-port=0 &
 *   solarcore_query --socket=/tmp/sc.sock --sites=AZ --months=Jul ...
 *   solarcore_top --status=serve-status.json
 *
 * Binds an AF_UNIX socket, answers planning queries (fleet spec x
 * scenario grid -> energy/carbon/payback) with per-request deadlines
 * and load shedding, and publishes health to status.json and
 * OpenMetrics. Runs until SIGINT/SIGTERM, then drains cleanly:
 * queued requests get ShuttingDown replies, the socket is unlinked,
 * and a final status/metrics snapshot is written.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>

#include "serve/server.hpp"

using namespace solarcore;

namespace {

std::atomic<bool> g_stop{false};

void
onSignal(int)
{
    g_stop.store(true);
}

[[noreturn]] void
usage(const char *complaint = nullptr)
{
    if (complaint)
        std::cerr << "solarcore_serve: " << complaint << "\n";
    std::cerr <<
        "usage: solarcore_serve --socket=PATH [options]\n"
        "  --socket=PATH            AF_UNIX socket to bind (required)\n"
        "  --workers=N              planner worker threads (default 2)\n"
        "  --queue-depth=N          admission bound (default 64)\n"
        "  --result-cache-cap=N     answer LRU entries (default 1024,"
        " 0 off)\n"
        "  --max-units=N            per-query grid cap (default 4096)\n"
        "  --unit-cache=DIR         persistent unit cache (shared with\n"
        "                           solarcore_campaign --audit=off)\n"
        "  --unit-cache-cap=N       unit-cache LRU cap (default 4096)\n"
        "  --pv-kernel=K            auto|scalar|portable|avx2\n"
        "  --estimate-init-micros=X seed of the per-unit service-time\n"
        "                           estimate for deadline shedding\n"
        "  --status-out=FILE        status.json (atomic rename)\n"
        "  --metrics-out=FILE       OpenMetrics snapshot file\n"
        "  --metrics-port=N         /metrics HTTP port (0 = ephemeral)\n"
        "  --publish-interval=S     publisher throttle (default 0.25)\n"
        "  --trace-out=FILE         span JSONL written at shutdown\n"
        "  --trace-perfetto=FILE    Chrome/Perfetto trace at shutdown\n"
        "  --trace-sample=N         head-sample every Nth request\n"
        "                           (0 = only client-traced + tail-kept\n"
        "                           slow/shed/error requests)\n"
        "  --slow-ms=X              slow-query threshold [ms]\n"
        "                           (default 250)\n"
        "  --slow-log-cap=N         slow-query log entries (default 16)\n"
        "  --verbose                per-request stderr lines\n";
    std::exit(2);
}

long
parseCount(const std::string &value, const char *what)
{
    char *end = nullptr;
    const long v = std::strtol(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0' || v < 0)
        usage((std::string("invalid ") + what).c_str());
    return v;
}

} // namespace

int
main(int argc, char **argv)
{
    serve::ServeConfig config;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto eq = arg.find('=');
        const std::string key = arg.substr(0, eq);
        const std::string value =
            eq == std::string::npos ? "" : arg.substr(eq + 1);
        if (key == "--socket")
            config.socketPath = value;
        else if (key == "--workers")
            config.workers = static_cast<int>(parseCount(value, key.c_str()));
        else if (key == "--queue-depth")
            config.maxQueueDepth =
                static_cast<std::size_t>(parseCount(value, key.c_str()));
        else if (key == "--result-cache-cap")
            config.resultCacheCap =
                static_cast<std::size_t>(parseCount(value, key.c_str()));
        else if (key == "--max-units")
            config.maxUnitsPerQuery =
                static_cast<std::size_t>(parseCount(value, key.c_str()));
        else if (key == "--unit-cache")
            config.unitCacheDir = value;
        else if (key == "--unit-cache-cap")
            config.unitCacheCap =
                static_cast<std::size_t>(parseCount(value, key.c_str()));
        else if (key == "--pv-kernel")
            config.pvKernel = value;
        else if (key == "--estimate-init-micros")
            config.estimateInitUnitMicros =
                std::strtod(value.c_str(), nullptr);
        else if (key == "--status-out")
            config.statusPath = value;
        else if (key == "--metrics-out")
            config.metricsOut = value;
        else if (key == "--metrics-port")
            config.metricsPort =
                static_cast<int>(parseCount(value, key.c_str()));
        else if (key == "--publish-interval")
            config.minPublishSeconds = std::strtod(value.c_str(), nullptr);
        else if (key == "--trace-out")
            config.traceOut = value;
        else if (key == "--trace-perfetto")
            config.tracePerfettoOut = value;
        else if (key == "--trace-sample")
            config.traceSample = static_cast<std::uint64_t>(
                parseCount(value, key.c_str()));
        else if (key == "--slow-ms")
            config.slowMillis = std::strtod(value.c_str(), nullptr);
        else if (key == "--slow-log-cap")
            config.slowLogCap =
                static_cast<std::size_t>(parseCount(value, key.c_str()));
        else if (key == "--verbose")
            config.verbose = true;
        else if (key == "--help" || key == "-h")
            usage();
        else
            usage(("unknown option " + key).c_str());
    }
    if (config.socketPath.empty())
        usage("--socket=PATH is required");
    if (!serve::serveSupported()) {
        std::cerr << "solarcore_serve: AF_UNIX sockets are not supported"
                     " on this platform\n";
        return 1;
    }

    serve::Server server(config);
    if (!server.start()) {
        std::cerr << "solarcore_serve: failed to start on '"
                  << config.socketPath << "'\n";
        return 1;
    }
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    std::cerr << "solarcore_serve: listening on " << config.socketPath
              << " (pv kernel " << server.resolvedKernel() << ", "
              << std::max(1, config.workers) << " workers)\n";
    if (server.metricsPort() > 0)
        std::cerr << "solarcore_serve: metrics on http://127.0.0.1:"
                  << server.metricsPort() << "/metrics\n";

    while (!g_stop.load())
        std::this_thread::sleep_for(std::chrono::milliseconds(100));

    std::cerr << "solarcore_serve: shutting down\n";
    server.stop();
    const serve::ServeSnapshot snap = server.snapshot();
    std::cerr << "solarcore_serve: served " << snap.ok << " ok, "
              << snap.shedCapacity + snap.shedDeadline << " shed, "
              << snap.expired << " expired, " << snap.badRequest
              << " bad over " << snap.connections << " connections\n";
    return 0;
}
