/**
 * @file
 * golden_check: diff a freshly produced summary JSON against a
 * checked-in golden baseline under per-field tolerances, or adopt the
 * candidate as the new baseline.
 *
 *   golden_check --check  tests/golden/smoke_campaign.json smoke.json
 *   golden_check --update tests/golden/smoke_campaign.json smoke.json
 *
 * --check exits 1 (listing every drifted field) when any number moves
 * beyond tolerance, any string changes, or any path appears/vanishes.
 * --update rewrites the baseline with the candidate's bytes -- do this
 * only for intentional behaviour changes, and say why in the commit.
 *
 * Tolerances: numbers pass when |g - c| <= atol + rtol * |g|.
 *   --rtol=R --atol=A            defaults (5e-4 / 1e-9)
 *   --tol=PATTERN:R[:A]          override for paths containing PATTERN
 *   --ignore=PATTERN             skip paths containing PATTERN
 * Event-count fields (retracks, transfers, controllerSteps,
 * thermalThrottles) default to a looser rtol=0.05/atol=2 override:
 * a single extra re-track on another libm is noise, a 10% jump is a
 * regression. Pass your own --tol to tighten.
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "campaign/golden.hpp"

using namespace solarcore;

namespace {

[[noreturn]] void
usage(const char *complaint = nullptr)
{
    if (complaint)
        std::cerr << "golden_check: " << complaint << "\n";
    std::cerr << "usage: golden_check --check|--update GOLDEN CANDIDATE\n"
                 "  [--rtol=R] [--atol=A] [--tol=PATTERN:R[:A]]\n"
                 "  [--ignore=PATTERN] [--max-report=N]\n";
    std::exit(2);
}

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream buf;
    buf << in.rdbuf();
    out = buf.str();
    return true;
}

double
parseDouble(const std::string &flag, const std::string &value)
{
    try {
        std::size_t used = 0;
        const double v = std::stod(value, &used);
        if (used == value.size())
            return v;
    } catch (...) {
    }
    usage(("bad value for " + flag).c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    bool check = false;
    bool update = false;
    std::string golden_path;
    std::string candidate_path;
    campaign::ToleranceSpec tolerances;
    // Event counters jitter by a step or two across libm/FMA variants;
    // placed first so explicit --tol overrides (prepended below) win.
    for (const char *counter :
         {"retracks", "transfers", "controllerSteps", "thermalThrottles"})
        tolerances.overrides.push_back({counter, {0.05, 2.0}});
    std::size_t max_report = 20;

    std::vector<std::string> positional;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto eq = arg.find('=');
        const std::string key = arg.substr(0, eq);
        const std::string value =
            eq == std::string::npos ? "" : arg.substr(eq + 1);
        if (arg == "--check") {
            check = true;
        } else if (arg == "--update") {
            update = true;
        } else if (key == "--rtol") {
            tolerances.fallback.rtol = parseDouble(key, value);
        } else if (key == "--atol") {
            tolerances.fallback.atol = parseDouble(key, value);
        } else if (key == "--tol") {
            const auto c1 = value.find(':');
            if (c1 == std::string::npos || c1 == 0)
                usage("--tol needs PATTERN:RTOL[:ATOL]");
            const auto c2 = value.find(':', c1 + 1);
            campaign::Tolerance tol;
            tol.rtol = parseDouble(
                key, value.substr(c1 + 1,
                                  c2 == std::string::npos
                                      ? std::string::npos
                                      : c2 - c1 - 1));
            if (c2 != std::string::npos)
                tol.atol = parseDouble(key, value.substr(c2 + 1));
            tolerances.overrides.insert(
                tolerances.overrides.begin(),
                {value.substr(0, c1), tol});
        } else if (key == "--ignore") {
            if (value.empty())
                usage("--ignore needs a pattern");
            tolerances.ignored.push_back(value);
        } else if (key == "--max-report") {
            max_report =
                static_cast<std::size_t>(parseDouble(key, value));
        } else if (arg.rfind("--", 0) == 0) {
            usage(("unknown option " + arg).c_str());
        } else {
            positional.push_back(arg);
        }
    }
    if (check == update)
        usage("pick exactly one of --check / --update");
    if (positional.size() != 2)
        usage("need GOLDEN and CANDIDATE paths");
    golden_path = positional[0];
    candidate_path = positional[1];

    std::string candidate_text;
    if (!readFile(candidate_path, candidate_text)) {
        std::cerr << "golden_check: cannot read candidate '"
                  << candidate_path << "'\n";
        return 2;
    }
    campaign::FlatJson candidate;
    std::string error;
    if (!campaign::parseJsonFlat(candidate_text, candidate, error)) {
        std::cerr << "golden_check: candidate '" << candidate_path
                  << "': " << error << "\n";
        return 2;
    }

    if (update) {
        std::ofstream out(golden_path, std::ios::binary | std::ios::trunc);
        if (!out) {
            std::cerr << "golden_check: cannot write baseline '"
                      << golden_path << "'\n";
            return 2;
        }
        out << candidate_text;
        std::cout << "golden_check: baseline " << golden_path
                  << " updated (" << candidate.size() << " fields)\n";
        return 0;
    }

    std::string golden_text;
    if (!readFile(golden_path, golden_text)) {
        std::cerr << "golden_check: cannot read baseline '" << golden_path
                  << "' (generate it with --update)\n";
        return 2;
    }
    campaign::FlatJson golden;
    if (!campaign::parseJsonFlat(golden_text, golden, error)) {
        std::cerr << "golden_check: baseline '" << golden_path
                  << "': " << error << "\n";
        return 2;
    }

    const auto diffs = campaign::compareFlat(golden, candidate, tolerances);
    if (diffs.empty()) {
        std::cout << "golden_check: OK (" << golden.size()
                  << " fields within tolerance)\n";
        return 0;
    }
    std::cerr << "golden_check: " << diffs.size() << " field(s) drifted "
              << "from " << golden_path << ":\n";
    std::size_t shown = 0;
    for (const auto &diff : diffs) {
        if (shown++ >= max_report) {
            std::cerr << "  ... and " << diffs.size() - max_report
                      << " more\n";
            break;
        }
        switch (diff.kind) {
          case campaign::GoldenDiff::Kind::MissingInCandidate:
            std::cerr << "  - " << diff.path << ": missing (golden "
                      << diff.golden << ")\n";
            break;
          case campaign::GoldenDiff::Kind::ExtraInCandidate:
            std::cerr << "  + " << diff.path << ": unexpected "
                      << diff.candidate << "\n";
            break;
          case campaign::GoldenDiff::Kind::Mismatch:
            std::cerr << "  ~ " << diff.path << ": golden " << diff.golden
                      << " vs " << diff.candidate;
            if (diff.absError > 0.0)
                std::cerr << " (abs " << diff.absError << ", rel "
                          << diff.relError << ")";
            std::cerr << "\n";
            break;
        }
    }
    return 1;
}
