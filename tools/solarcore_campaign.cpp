/**
 * @file
 * solarcore_campaign: run a scenario campaign over the full
 * site x month x policy x workload x seed grid (or any slice of it),
 * sharded across a thread pool, and emit one deterministic summary
 * JSON -- the input side of the golden-baseline regression gate.
 *
 *   solarcore_campaign --preset=smoke --threads=4 --out=smoke.json
 *   solarcore_campaign --sites=AZ,CO --months=Jan,Jul \
 *       --policies=opt,fixed,battery --workloads=H1,HM2 --seeds=1,2 \
 *       --dt=30 --journal=run.journal --out=summary.json
 *   solarcore_campaign ... --journal=run.journal --resume   # continue
 *
 * The summary is byte-identical for any --threads value, and a
 * resumed campaign reproduces the uninterrupted summary exactly; see
 * DESIGN.md section "Campaigns and golden baselines".
 *
 * Options:
 *   --preset=smoke|fig13|fig14|full   start from a named grid
 *   --sites= --months= --policies= --workloads= --seeds=  (comma lists)
 *   --dt=SECONDS --budget=W --derating=F --period=MINUTES
 *   --pv-kernel=auto|scalar|portable|avx2 (batch PV kernel; "auto"
 *     dispatches on the CPU, "scalar" is the legacy per-call path)
 *   --threads=N (0 = all hardware threads)
 *   --workers=N  fork N worker processes, each running a contiguous
 *     shard of the unit list over its own --threads pool; the summary
 *     stays byte-identical to --workers=1
 *   --unit-cache=DIR --unit-cache-cap=N   persistent on-disk LRU of
 *     unit results; warm re-runs and overlapping grids skip simulation
 *   --out=FILE (default stdout)  --journal=FILE  --resume  --verbose
 *   --stats-out= --trace-out= --trace-buffer= --manifest-out=
 *   --telemetry-out= --telemetry-every= --telemetry-mode=
 *   --profile-out= --audit= --audit-out=
 *   --status-out=FILE   run-health status.json heartbeat (watch it
 *     live with tools/solarcore_top)
 *   --metrics-out=FILE --metrics-port=N   OpenMetrics exposition
 *     (file snapshot / embedded 127.0.0.1 scrape endpoint)
 *   --postmortem-out=FILE   crash flight recorder (postmortem.json)
 *
 * Campaigns audit invariants in counting mode by default (--audit=off
 * to disable); each unit's violation count lands in the summary, so
 * the golden gate also asserts "zero invariant violations".
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "campaign/campaign.hpp"
#include "obs/span.hpp"
#include "pv/pv_kernel.hpp"

using namespace solarcore;

namespace {

[[noreturn]] void
usage(const char *complaint = nullptr)
{
    if (complaint)
        std::cerr << "solarcore_campaign: " << complaint << "\n";
    std::cerr
        << "usage: solarcore_campaign [--preset=smoke|fig13|fig14|full]\n"
           "  [--sites=AZ,CO,NC,TN] [--months=Jan,Apr,Jul,Oct]\n"
           "  [--policies=opt,rr,ic,icm,fixed,battery]\n"
           "  [--workloads=H1,...] [--seeds=1,2,...]\n"
           "  [--dt=SECONDS] [--budget=W] [--derating=F] "
           "[--period=MIN]\n"
           "  [--pv-kernel=auto|scalar|portable|avx2]\n"
           "  [--threads=N] [--workers=N] [--out=FILE]\n"
           "  [--unit-cache=DIR] [--unit-cache-cap=N]\n"
           "  [--journal=FILE] [--resume]\n"
           "  [--verbose] [--stats-out=F] [--trace-out=F] "
           "[--trace-buffer=N] [--manifest-out=F]\n"
           "  [--telemetry-out=F.csv] [--telemetry-every=N] "
           "[--telemetry-mode=every|minmax]\n"
           "  [--profile-out=F.json] [--audit=off|count|strict "
           "(default count)] [--audit-out=F.json]\n"
           "  [--status-out=F.json] [--metrics-out=F] "
           "[--metrics-port=N] [--postmortem-out=F.json]\n"
           "  [--span-out=F.jsonl] [--span-perfetto=F.json] "
           "[--trace-id=HEXID]\n";
    std::exit(2);
}

double
parseDouble(const std::string &flag, const std::string &value)
{
    try {
        std::size_t used = 0;
        const double v = std::stod(value, &used);
        if (used == value.size())
            return v;
    } catch (...) {
    }
    usage(("bad value for " + flag).c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    campaign::ScenarioGrid grid;
    // Default slice: the paper's headline grid at the bench step size.
    campaign::applyPreset("full", grid);

    campaign::CampaignOptions options;
    // Campaigns are the regression gate, so invariants are counted by
    // default; --audit=off restores the unaudited fast path.
    options.obs.audit = obs::AuditMode::Count;
    std::string out_path;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (options.obs.consume(arg))
            continue;
        const auto eq = arg.find('=');
        const std::string key = arg.substr(0, eq);
        const std::string value =
            eq == std::string::npos ? "" : arg.substr(eq + 1);
        if (key == "--preset") {
            if (!campaign::applyPreset(value, grid))
                usage("unknown preset");
        } else if (key == "--sites") {
            if (!campaign::parseSiteList(value, grid.sites))
                usage("bad --sites list");
        } else if (key == "--months") {
            if (!campaign::parseMonthList(value, grid.months))
                usage("bad --months list");
        } else if (key == "--policies") {
            if (!campaign::parsePolicyList(value, grid.policies))
                usage("bad --policies list");
        } else if (key == "--workloads") {
            if (!campaign::parseWorkloadList(value, grid.workloads))
                usage("bad --workloads list");
        } else if (key == "--seeds") {
            if (!campaign::parseSeedList(value, grid.seeds))
                usage("bad --seeds list");
        } else if (key == "--dt") {
            grid.dtSeconds = parseDouble(key, value);
        } else if (key == "--budget") {
            grid.fixedBudgetW = parseDouble(key, value);
        } else if (key == "--derating") {
            grid.batteryDerating = parseDouble(key, value);
        } else if (key == "--period") {
            grid.trackingPeriodMinutes = parseDouble(key, value);
        } else if (key == "--pv-kernel") {
            pv::PvKernel parsed;
            if (value != "auto" &&
                !pv::pvKernelFromToken(value, parsed))
                usage("bad --pv-kernel (want auto|scalar|portable|avx2)");
            grid.pvKernel = value;
        } else if (key == "--threads") {
            options.threads =
                static_cast<int>(parseDouble(key, value));
        } else if (key == "--workers") {
            options.workers =
                static_cast<int>(parseDouble(key, value));
        } else if (key == "--unit-cache") {
            options.unitCacheDir = value;
        } else if (key == "--unit-cache-cap") {
            const double cap = parseDouble(key, value);
            if (cap < 0.0)
                usage("--unit-cache-cap must be >= 0");
            options.unitCacheCap = static_cast<std::size_t>(cap);
        } else if (key == "--out") {
            out_path = value;
        } else if (key == "--journal") {
            options.journalPath = value;
        } else if (key == "--resume") {
            options.resume = true;
        } else if (key == "--verbose") {
            options.verbose = true;
        } else if (key == "--status-out") {
            options.statusPath = value;
        } else if (key == "--span-out") {
            options.spanOut = value;
        } else if (key == "--span-perfetto") {
            options.spanPerfettoOut = value;
        } else if (key == "--trace-id") {
            if (!obs::parseSpanIdHex(value, options.traceId) ||
                options.traceId == 0)
                usage("bad --trace-id (expected 1..16 hex digits)");
        } else {
            usage(("unknown option " + key).c_str());
        }
    }
    if (grid.unitCount() == 0)
        usage("empty grid");
    if (grid.dtSeconds <= 0.0)
        usage("--dt must be positive");

    std::cerr << "campaign: " << grid.unitCount() << " units\n";
    const auto outcome = campaign::runCampaign(grid, options);
    std::cerr << "campaign: " << outcome.unitsRun << " run, "
              << outcome.unitsResumed << " resumed from journal, "
              << outcome.unitsCached << " cached\n";
    if (outcome.workerCrashes > 0)
        std::cerr << "campaign: " << outcome.workerCrashes
                  << " worker crash(es); shards were re-run\n";

    if (out_path.empty()) {
        campaign::writeSummaryJson(std::cout, grid, outcome);
        return 0;
    }
    std::ofstream out(out_path);
    if (!out) {
        std::cerr << "solarcore_campaign: cannot open '" << out_path
                  << "'\n";
        return 1;
    }
    campaign::writeSummaryJson(out, grid, outcome);
    std::cerr << "campaign: summary written to " << out_path << "\n";
    return 0;
}
