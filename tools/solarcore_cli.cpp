/**
 * @file
 * solarcore_cli: command-line front end to the simulation library.
 *
 * Runs one simulated day (or a multi-day aggregate) for any
 * site/month/workload/policy combination and emits either a summary,
 * a per-minute CSV timeline (for plotting), or the weather trace
 * itself.
 *
 *   solarcore_cli summary  --site AZ --month Apr --workload HM2
 *   solarcore_cli timeline --site NC --month Oct --policy rr > day.csv
 *   solarcore_cli trace    --site TN --month Jan --seed 9 > trace.csv
 *   solarcore_cli sweep    --workload L1 --days 5
 *
 * Options: --site AZ|CO|NC|TN   --month Jan|Apr|Jul|Oct
 *          --workload H1..ML2   --policy opt|rr|ic|icm|fixed
 *          --budget <W>         --seed <n>   --days <n>
 *          --dt <seconds>       --threshold <W>
 *          --pv-kernel auto|scalar|portable|avx2 (batch PV kernel)
 *
 * Observability (see src/obs/): --stats-out=FILE --trace-out=FILE
 * --trace-buffer=N --manifest-out=FILE --telemetry-out=FILE
 * --telemetry-every=N --telemetry-mode=every|minmax --profile-out=FILE
 * --audit=off|count|strict --audit-out=FILE --metrics-out=FILE
 * --metrics-port=N --postmortem-out=FILE. --metrics-out renders the
 * stats registry (and the profiler tree when profiled) as an
 * OpenMetrics exposition at exit; --postmortem-out arms the crash
 * flight recorder, so a fatal signal or strict-audit abort leaves a
 * postmortem.json behind. The trace is Chrome
 * trace_event JSON (Perfetto-loadable) unless FILE ends in .jsonl;
 * when both a trace and telemetry are requested, the waveform channels
 * are woven into the trace as Perfetto counter tracks. The command
 * defaults to "summary" when argv[1] is already a flag, so
 *
 *   solarcore_cli --telemetry-out=t.csv --profile-out=p.json \
 *       --audit=strict
 *
 * runs an audited, instrumented default day.
 */

#include <cstring>
#include <iostream>
#include <map>
#include <optional>
#include <string>

#include "core/aggregate.hpp"
#include "core/solarcore.hpp"
#include "pv/pv_kernel.hpp"
#include "obs/auditor.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics_export.hpp"
#include "obs/obs_options.hpp"
#include "obs/profiler.hpp"
#include "obs/stats_registry.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "util/table.hpp"

using namespace solarcore;

namespace {

struct Options
{
    std::string command = "summary";
    solar::SiteId site = solar::SiteId::AZ;
    solar::Month month = solar::Month::Apr;
    workload::WorkloadId workload = workload::WorkloadId::HM2;
    core::PolicyKind policy = core::PolicyKind::MpptOpt;
    double budgetW = 75.0;
    std::uint64_t seed = 1;
    int days = 5;
    double dtSeconds = 15.0;
    double thresholdW = 25.0;
    std::string pvKernel = "auto";
    obs::ObsOptions obs;
    obs::StatsRegistry *stats = nullptr; //!< set by main when requested
    obs::TraceBuffer *trace = nullptr;   //!< set by main when requested
    obs::TelemetryRecorder *telemetry = nullptr; //!< likewise
    obs::Auditor *audit = nullptr;               //!< likewise
};

[[noreturn]] void
usage()
{
    std::cerr
        << "usage: solarcore_cli <summary|timeline|trace|sweep> "
           "[options]\n"
           "  --site AZ|CO|NC|TN      --month Jan|Apr|Jul|Oct\n"
           "  --workload H1|H2|M1|M2|L1|L2|HM1|HM2|ML1|ML2\n"
           "  --policy opt|rr|ic|icm|fixed  --budget <W> (fixed policy)\n"
           "  --seed <n>  --days <n> (sweep)  --dt <s>  --threshold <W>\n"
           "  --pv-kernel auto|scalar|portable|avx2\n"
           "  --stats-out=FILE (.json|.csv)  --trace-out=FILE (Chrome "
           "JSON, or JSONL for .jsonl)\n"
           "  --trace-buffer=<events>  --manifest-out=FILE\n"
           "  --telemetry-out=FILE.csv  --telemetry-every=<n>  "
           "--telemetry-mode=every|minmax\n"
           "  --profile-out=FILE.json  --audit=off|count|strict  "
           "--audit-out=FILE.json\n"
           "  --metrics-out=FILE  --metrics-port=N  "
           "--postmortem-out=FILE.json\n";
    std::exit(2);
}

Options
parse(int argc, char **argv)
{
    Options opt;
    if (argc < 2)
        usage();
    // A flag in command position means "summary" was implied, so a
    // bare `solarcore_cli --telemetry-out=t.csv ...` works.
    int first_flag = 2;
    if (std::strncmp(argv[1], "--", 2) == 0) {
        first_flag = 1;
    } else {
        opt.command = argv[1];
        if (opt.command != "summary" && opt.command != "timeline" &&
            opt.command != "trace" && opt.command != "sweep")
            usage();
    }

    auto need = [&](int i) {
        if (i + 1 >= argc)
            usage();
        return std::string(argv[i + 1]);
    };
    for (int i = first_flag; i < argc;) {
        if (opt.obs.consume(argv[i])) {
            ++i;
            continue;
        }
        const std::string key = argv[i];
        const std::string val = need(i);
        i += 2;
        if (key == "--site") {
            bool found = false;
            for (auto s : solar::allSites())
                if (val == solar::siteName(s)) {
                    opt.site = s;
                    found = true;
                }
            if (!found)
                usage();
        } else if (key == "--month") {
            bool found = false;
            for (auto m : solar::allMonths())
                if (val == solar::monthName(m)) {
                    opt.month = m;
                    found = true;
                }
            if (!found)
                usage();
        } else if (key == "--workload") {
            bool found = false;
            for (auto w : workload::allWorkloads())
                if (val == workload::workloadName(w)) {
                    opt.workload = w;
                    found = true;
                }
            if (!found)
                usage();
        } else if (key == "--policy") {
            if (val == "opt")
                opt.policy = core::PolicyKind::MpptOpt;
            else if (val == "rr")
                opt.policy = core::PolicyKind::MpptRr;
            else if (val == "ic")
                opt.policy = core::PolicyKind::MpptIc;
            else if (val == "icm")
                opt.policy = core::PolicyKind::MpptIcMotion;
            else if (val == "fixed")
                opt.policy = core::PolicyKind::FixedPower;
            else
                usage();
        } else if (key == "--budget") {
            opt.budgetW = std::stod(val);
        } else if (key == "--seed") {
            opt.seed = std::stoull(val);
        } else if (key == "--days") {
            opt.days = std::stoi(val);
        } else if (key == "--dt") {
            opt.dtSeconds = std::stod(val);
        } else if (key == "--threshold") {
            opt.thresholdW = std::stod(val);
        } else if (key == "--pv-kernel") {
            pv::PvKernel parsed;
            if (val != "auto" && !pv::pvKernelFromToken(val, parsed))
                usage();
            opt.pvKernel = val;
        } else {
            usage();
        }
    }
    return opt;
}

core::SimConfig
toSimConfig(const Options &opt, bool timeline)
{
    core::SimConfig cfg;
    cfg.policy = opt.policy;
    cfg.fixedBudgetW = opt.budgetW;
    cfg.seed = opt.seed;
    cfg.dtSeconds = opt.dtSeconds;
    cfg.thresholdW = opt.thresholdW;
    cfg.recordTimeline = timeline;
    cfg.stats = opt.stats;
    cfg.trace = opt.trace;
    cfg.telemetry = opt.telemetry;
    cfg.audit = opt.audit;
    return cfg;
}

int
runSummary(const Options &opt)
{
    const auto module = pv::buildBp3180n();
    const auto trace =
        solar::generateDayTrace(opt.site, opt.month, opt.seed);
    const auto r = core::simulateDay(module, trace, opt.workload,
                                     toSimConfig(opt, false));
    TextTable t;
    t.header({"metric", "value"});
    t.row({"pattern", std::string(solar::siteName(opt.site)) + "-" +
                          solar::monthName(opt.month)});
    t.row({"workload", workload::workloadName(opt.workload)});
    t.row({"policy", core::policyName(opt.policy)});
    t.row({"MPP energy [Wh]", TextTable::num(r.mppEnergyWh, 1)});
    t.row({"solar energy [Wh]", TextTable::num(r.solarEnergyWh, 1)});
    t.row({"grid energy [Wh]", TextTable::num(r.gridEnergyWh, 1)});
    t.row({"utilization", TextTable::pct(r.utilization)});
    t.row({"effective duration", TextTable::pct(r.effectiveFraction)});
    t.row({"tracking error", TextTable::pct(r.avgTrackingError)});
    t.row({"solar PTP [Tinstr]",
           TextTable::num(r.solarInstructions / 1e12, 2)});
    t.print(std::cout);
    return 0;
}

int
runTimeline(const Options &opt)
{
    const auto module = pv::buildBp3180n();
    const auto trace =
        solar::generateDayTrace(opt.site, opt.month, opt.seed);
    const auto r = core::simulateDay(module, trace, opt.workload,
                                     toSimConfig(opt, true));
    std::cout << "minute,budget_w,consumed_w,on_solar\n";
    for (const auto &p : r.timeline) {
        std::cout << p.minute << ',' << p.budgetW << ',' << p.consumedW
                  << ',' << (p.onSolar ? 1 : 0) << '\n';
    }
    return 0;
}

int
runTrace(const Options &opt)
{
    const auto trace =
        solar::generateDayTrace(opt.site, opt.month, opt.seed);
    trace.saveCsv(std::cout);
    return 0;
}

int
runSweep(const Options &opt)
{
    const auto module = pv::buildBp3180n();
    const auto agg = core::simulateManyDays(module, opt.site, opt.month,
                                            opt.workload,
                                            toSimConfig(opt, false),
                                            opt.days, opt.seed);
    TextTable t;
    t.header({"metric", "mean", "min", "max", "stddev"});
    auto row = [&](const char *name, const RunningStats &st,
                   bool pct) {
        auto fmt = [&](double v) {
            return pct ? TextTable::pct(v) : TextTable::num(v, 1);
        };
        t.row({name, fmt(st.mean()), fmt(st.min()), fmt(st.max()),
               fmt(st.stddev())});
    };
    row("utilization", agg.utilization, true);
    row("effective duration", agg.effectiveFraction, true);
    row("tracking error", agg.trackingError, true);
    row("solar energy [Wh]", agg.solarEnergyWh, false);
    t.print(std::cout);
    std::cout << agg.days << " simulated days\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt = parse(argc, argv);

    // Pin the batch PV kernel for the whole process; "auto" lets the
    // runtime dispatch pick the widest supported one.
    if (opt.pvKernel == "auto") {
        pv::setPvKernel(pv::detectPvKernel());
    } else {
        pv::PvKernel requested;
        if (!pv::pvKernelFromToken(opt.pvKernel, requested) ||
            !pv::pvKernelSupported(requested)) {
            std::cerr << "solarcore_cli: pv kernel '" << opt.pvKernel
                      << "' not supported on this cpu\n";
            return 2;
        }
        pv::setPvKernel(requested);
    }

    obs::RunManifest manifest(argc, argv);
    std::optional<obs::StatsRegistry> stats;
    std::optional<obs::TraceBuffer> trace;
    std::optional<obs::TelemetryRecorder> telemetry;
    std::optional<obs::Profiler> profiler;
    std::optional<obs::Auditor> audit;
    // --metrics-out alone is enough to collect stats: the exposition
    // is rendered from the registry even when no --stats-out is given.
    if (opt.obs.statsRequested() || opt.obs.metricsRequested())
        opt.stats = &stats.emplace();
    if (opt.obs.traceRequested())
        opt.trace = &trace.emplace(opt.obs.traceBufferCap);
    if (opt.obs.telemetryRequested())
        opt.telemetry = &telemetry.emplace(opt.obs.telemetryEvery,
                                           opt.obs.telemetryMode);
    if (opt.obs.profileRequested())
        profiler.emplace();
    if (opt.obs.auditRequested()) {
        obs::AuditorConfig audit_cfg;
        if (opt.obs.audit != obs::AuditMode::Off)
            audit_cfg.mode = opt.obs.audit;
        opt.audit = &audit.emplace(audit_cfg);
    }
    std::optional<obs::Profiler::Attach> attach;
    if (profiler)
        attach.emplace(&*profiler);

    if (opt.obs.postmortemRequested()) {
        obs::FlightRecorderConfig fr_cfg;
        fr_cfg.outputPath = opt.obs.postmortemOut;
        obs::FlightRecorder::install(fr_cfg);
        if (!opt.obs.manifestOut.empty())
            obs::FlightRecorder::setManifestPath(opt.obs.manifestOut);
        obs::FlightRecorder::beginUnit(opt.command.c_str(),
                                       trace ? &*trace : nullptr);
    }
    obs::MetricsEndpoint metrics;
    if (opt.obs.metricsPort >= 0 &&
        metrics.start(opt.obs.metricsPort)) {
        std::cerr << "solarcore_cli: serving metrics on 127.0.0.1:"
                  << metrics.port() << "\n";
    }

    int rc;
    if (opt.command == "summary")
        rc = runSummary(opt);
    else if (opt.command == "timeline")
        rc = runTimeline(opt);
    else if (opt.command == "trace")
        rc = runTrace(opt);
    else
        rc = runSweep(opt);

    if (opt.obs.anyRequested()) {
        attach.reset(); // close the profiler before dumping it
        if (audit && stats)
            audit->foldInto(*stats);
        if (stats)
            opt.obs.writeStats(*stats);
        if (trace)
            opt.obs.writeTrace(obs::mergeBuffers({&*trace}), {"day"},
                               telemetry ? &*telemetry : nullptr);
        if (telemetry)
            opt.obs.writeTelemetry(*telemetry);
        if (profiler)
            opt.obs.writeProfile(*profiler);
        if (audit)
            opt.obs.writeAudit(*audit);
        opt.obs.recordSidecars(manifest, telemetry ? &*telemetry : nullptr,
                               profiler ? &*profiler : nullptr,
                               audit ? &*audit : nullptr);
        manifest.set("command", opt.command);
        manifest.set("site", std::string(solar::siteName(opt.site)));
        manifest.set("month", std::string(solar::monthName(opt.month)));
        manifest.set("workload",
                     std::string(workload::workloadName(opt.workload)));
        manifest.set("policy", std::string(core::policyName(opt.policy)));
        manifest.set("budget_w", opt.budgetW);
        manifest.set("threshold_w", opt.thresholdW);
        manifest.set("dt_seconds", opt.dtSeconds);
        manifest.set("pv_kernel",
                     std::string(
                         pv::pvKernelName(pv::selectedPvKernel())));
        manifest.set("days",
                     static_cast<std::uint64_t>(opt.days));
        manifest.setSeed(opt.seed);
        if (trace && trace->dropped() > 0)
            manifest.set("trace_dropped_events", trace->dropped());
        opt.obs.writeManifest(manifest);
    }
    if (opt.obs.metricsRequested()) {
        attach.reset(); // close the profiler before rendering it
        obs::OpenMetricsWriter w;
        if (stats)
            obs::appendRegistry(w, *stats);
        if (profiler)
            obs::appendProfiler(w, *profiler);
        metrics.update(w.finish());
        if (!opt.obs.metricsOut.empty())
            metrics.writeSnapshot(opt.obs.metricsOut);
    }
    return rc;
}
