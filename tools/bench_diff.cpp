/**
 * @file
 * bench_diff: the perf-history regression gate.
 *
 * `bench/run_microbench.sh --append-history` appends one JSONL entry
 * per BENCH_*.json to bench/history/<name>.jsonl:
 *
 *   {"schema":"solarcore-bench-history-v1","utc":...,"build_type":...,
 *    "git":...,"source":"BENCH_pv.json","metrics":{"BM_...": ns, ...}}
 *
 * bench_diff compares the LATEST history entry of each file against
 * the committed BENCH_*.json baseline at the repo root, under
 * per-metric relative tolerances. Time-like metrics (benchmark
 * real_time) regress when they grow; throughput-like metrics
 * (*units_per_second*, *speedup*) regress when they shrink.
 *
 *   bench_diff                         # all bench/history/*.jsonl
 *   bench_diff --rtol=0.3              # loosen the default tolerance
 *   bench_diff --tol=speedup:0.5       # per-metric override (substring)
 *   bench_diff --history-dir=D --baseline-dir=D2
 *
 * Exit 0 when everything is within tolerance (improvements included),
 * 1 on regression, 2 on usage/IO problems. Microbenchmark numbers on
 * shared machines jitter, so the default tolerance is deliberately
 * loose (25%) and CI treats this gate as advisory (non-blocking) --
 * its job is to flag order-of-magnitude cliffs, not 5% noise.
 */

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/golden.hpp"

using namespace solarcore;
namespace fs = std::filesystem;

namespace {

[[noreturn]] void
usage(const char *complaint = nullptr)
{
    if (complaint)
        std::cerr << "bench_diff: " << complaint << "\n";
    std::cerr << "usage: bench_diff [--history-dir=bench/history]\n"
                 "  [--baseline-dir=.] [--rtol=0.25] "
                 "[--tol=SUBSTRING:RTOL ...]\n";
    std::exit(2);
}

using Metrics = std::map<std::string, double>;

/**
 * Extract the comparable metric set from a flattened benchmark
 * document -- the same rule the history appender uses: google-
 * benchmark files contribute name -> real_time of plain iteration
 * rows; flat documents (BENCH_campaign.json) contribute every
 * top-level number.
 */
Metrics
extractMetrics(const campaign::FlatJson &doc)
{
    Metrics out;
    bool isBenchmarkFile = false;
    for (std::size_t i = 0;; ++i) {
        const std::string prefix = "benchmarks." + std::to_string(i);
        const auto name = doc.find(prefix + ".name");
        if (name == doc.end())
            break;
        isBenchmarkFile = true;
        const auto runType = doc.find(prefix + ".run_type");
        if (runType != doc.end() && runType->second.text != "iteration")
            continue;
        const auto time = doc.find(prefix + ".real_time");
        if (time != doc.end()) // first occurrence wins (repetitions)
            out.emplace(name->second.text, time->second.number);
    }
    if (!isBenchmarkFile) {
        for (const auto &[path, leaf] : doc) {
            if (leaf.kind == campaign::JsonLeaf::Kind::Number &&
                path.find('.') == std::string::npos)
                out[path] = leaf.number;
        }
    }
    return out;
}

bool
loadFlat(const fs::path &path, campaign::FlatJson &out)
{
    std::ifstream is(path);
    if (!is)
        return false;
    std::stringstream ss;
    ss << is.rdbuf();
    std::string error;
    if (!campaign::parseJsonFlat(ss.str(), out, error)) {
        std::cerr << "bench_diff: " << path.string() << ": " << error
                  << "\n";
        return false;
    }
    return true;
}

/** The last non-empty line of a JSONL file. */
bool
lastLine(const fs::path &path, std::string &out)
{
    std::ifstream is(path);
    if (!is)
        return false;
    std::string line;
    out.clear();
    while (std::getline(is, line))
        if (!line.empty())
            out = line;
    return !out.empty();
}

bool
higherIsBetter(const std::string &metric)
{
    return metric.find("per_second") != std::string::npos ||
        metric.find("speedup") != std::string::npos;
}

} // namespace

int
main(int argc, char **argv)
{
    fs::path history_dir = "bench/history";
    fs::path baseline_dir = ".";
    double rtol = 0.25;
    std::vector<std::pair<std::string, double>> overrides;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto eq = arg.find('=');
        const std::string key = arg.substr(0, eq);
        const std::string value =
            eq == std::string::npos ? "" : arg.substr(eq + 1);
        if (key == "--history-dir") {
            history_dir = value;
        } else if (key == "--baseline-dir") {
            baseline_dir = value;
        } else if (key == "--rtol") {
            rtol = std::strtod(value.c_str(), nullptr);
            if (!(rtol > 0))
                usage("--rtol must be positive");
        } else if (key == "--tol") {
            const auto colon = value.rfind(':');
            if (colon == std::string::npos)
                usage("--tol wants SUBSTRING:RTOL");
            const double r =
                std::strtod(value.c_str() + colon + 1, nullptr);
            if (!(r > 0))
                usage("--tol tolerance must be positive");
            overrides.emplace_back(value.substr(0, colon), r);
        } else {
            usage(("unknown option " + key).c_str());
        }
    }

    if (!fs::is_directory(history_dir)) {
        std::cerr << "bench_diff: no history at "
                  << history_dir.string()
                  << " (run bench/run_microbench.sh --append-history "
                     "first)\n";
        return 2;
    }

    std::vector<fs::path> histories;
    for (const auto &entry : fs::directory_iterator(history_dir))
        if (entry.path().extension() == ".jsonl")
            histories.push_back(entry.path());
    std::sort(histories.begin(), histories.end());
    if (histories.empty()) {
        std::cerr << "bench_diff: " << history_dir.string()
                  << " holds no .jsonl files\n";
        return 2;
    }

    auto tolFor = [&](const std::string &metric) {
        for (const auto &[substr, r] : overrides)
            if (metric.find(substr) != std::string::npos)
                return r;
        return rtol;
    };

    int regressions = 0;
    int compared = 0;
    for (const auto &hist : histories) {
        std::string line;
        if (!lastLine(hist, line)) {
            std::cerr << "bench_diff: " << hist.string()
                      << ": empty history\n";
            return 2;
        }
        campaign::FlatJson entry;
        std::string error;
        if (!campaign::parseJsonFlat(line, entry, error)) {
            std::cerr << "bench_diff: " << hist.string() << ": "
                      << error << "\n";
            return 2;
        }
        Metrics latest;
        for (const auto &[path, leaf] : entry) {
            if (path.rfind("metrics.", 0) == 0 &&
                leaf.kind == campaign::JsonLeaf::Kind::Number)
                latest[path.substr(8)] = leaf.number;
        }
        const auto src = entry.find("source");
        const fs::path baseline_path = baseline_dir /
            (src != entry.end() ? src->second.text
                                : hist.stem().string() + ".json");
        campaign::FlatJson baseline_doc;
        if (!loadFlat(baseline_path, baseline_doc)) {
            std::cerr << "bench_diff: missing baseline "
                      << baseline_path.string() << "\n";
            return 2;
        }
        const Metrics baseline = extractMetrics(baseline_doc);

        for (const auto &[metric, value] : latest) {
            const auto it = baseline.find(metric);
            if (it == baseline.end())
                continue; // new metric: nothing to gate against
            const double base = it->second;
            if (base == 0.0)
                continue;
            const double delta = (value - base) / base;
            const bool better = higherIsBetter(metric);
            const double tol = tolFor(metric);
            const bool regressed =
                better ? delta < -tol : delta > tol;
            ++compared;
            char buf[64];
            std::snprintf(buf, sizeof(buf), "%+7.1f%%", delta * 100.0);
            std::cout << (regressed ? "REGRESSED " : "ok        ")
                      << buf << "  " << metric << "  (" << value
                      << " vs " << base << ", "
                      << (better ? "higher" : "lower")
                      << " is better, rtol " << tol << ")\n";
            regressions += regressed;
        }
    }

    if (compared == 0) {
        std::cerr << "bench_diff: no overlapping metrics to compare\n";
        return 2;
    }
    if (regressions > 0) {
        std::cerr << "bench_diff: " << regressions << " of " << compared
                  << " metrics regressed\n";
        return 1;
    }
    std::cout << "bench_diff: " << compared
              << " metrics within tolerance\n";
    return 0;
}
