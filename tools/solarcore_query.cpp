/**
 * @file
 * solarcore_query: one-shot client for the solarcore_serve daemon.
 *
 *   solarcore_query --socket=/tmp/sc.sock --sites=AZ,NC --months=Jul \
 *       --policies=opt --workloads=HM2 --seeds=1 --nodes=10000 \
 *       --deadline-ms=2000
 *
 * Builds one PlanQuery from campaign-style axis lists, sends it, and
 * prints the reply: a JSON object on Ok (fleet energies, carbon and
 * payback projections, shortest-round-trip numbers so repeated
 * identical queries print byte-identical output), or the typed error
 * status on stderr with a non-zero exit. --repeat=N replays the same
 * query N times over one connection (cache warm-up demos and the CI
 * smoke job); every reply must match the first byte-for-byte.
 */

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "obs/json.hpp"
#include "obs/span.hpp"
#include "serve/client.hpp"

using namespace solarcore;

namespace {

[[noreturn]] void
usage(const char *complaint = nullptr)
{
    if (complaint)
        std::cerr << "solarcore_query: " << complaint << "\n";
    std::cerr <<
        "usage: solarcore_query --socket=PATH [options]\n"
        "  --socket=PATH        daemon socket (required)\n"
        "  --sites=A,B          sites (default AZ)\n"
        "  --months=A,B         months (default Jul)\n"
        "  --policies=A,B       policies (default opt)\n"
        "  --workloads=A,B      workloads (default HM2)\n"
        "  --seeds=1,2          weather seeds (default 1)\n"
        "  --nodes=N            fleet nodes per unit (default 1)\n"
        "  --deadline-ms=N      per-request deadline (default none)\n"
        "  --dt=SECONDS         simulation step (default 30)\n"
        "  --fixed-budget=W     Fixed-Power budget (default 75)\n"
        "  --co2=KG             grid carbon intensity [kg/kWh]\n"
        "  --tariff=USD         utility tariff [USD/kWh]\n"
        "  --panel-usd=USD      installed panel cost (fleet level)\n"
        "  --battery-usd=USD    battery bank cost (fleet level)\n"
        "  --battery-life=Y     battery replacement period [years]\n"
        "  --repeat=N           send the query N times (default 1)\n"
        "  --timeout-ms=N       reply wait (default 30000)\n"
        "  --id=N               base request id (default 1)\n"
        "  --trace[=HEXID]      stamp a trace id (fresh when omitted)\n"
        "                       so the daemon records request spans;\n"
        "                       the id prints on stderr\n";
    std::exit(2);
}

void
printAnswer(const serve::PlanAnswer &a)
{
    using obs::jsonNumber;
    std::string out = "{\"units\":" +
        jsonNumber(static_cast<std::uint64_t>(a.unitCount));
    out += ",\"nodes_per_unit\":" +
        jsonNumber(static_cast<std::uint64_t>(a.nodesPerUnit));
    out += ",\"nodes\":" + jsonNumber(a.nodes);
    out += ",\"mpp_energy_wh\":" + jsonNumber(a.mppEnergyWh);
    out += ",\"solar_energy_wh\":" + jsonNumber(a.solarEnergyWh);
    out += ",\"grid_energy_wh\":" + jsonNumber(a.gridEnergyWh);
    out += ",\"chip_energy_wh\":" + jsonNumber(a.chipEnergyWh);
    out += ",\"solar_instructions\":" + jsonNumber(a.solarInstructions);
    out += ",\"total_instructions\":" + jsonNumber(a.totalInstructions);
    out += ",\"fleet_utilization\":" + jsonNumber(a.fleetUtilization);
    out += ",\"green_fraction\":" + jsonNumber(a.greenFraction);
    out += ",\"solar_kwh_per_day\":" + jsonNumber(a.solarKwhPerDay);
    out += ",\"grid_kwh_per_day\":" + jsonNumber(a.gridKwhPerDay);
    out += ",\"co2_avoided_kg_per_year\":" +
        jsonNumber(a.co2AvoidedKgPerYear);
    out += ",\"savings_usd_per_year\":" + jsonNumber(a.savingsUsdPerYear);
    out += ",\"panel_payback_years\":" + jsonNumber(a.panelPaybackYears);
    out += ",\"battery_avoided_usd_per_year\":" +
        jsonNumber(a.batteryAvoidedUsdPerYear);
    out += "}\n";
    std::cout << out;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string socket_path;
    serve::PlanQuery query;
    query.requestId = 1;
    query.grid.sites = {solar::SiteId::AZ};
    query.grid.months = {solar::Month::Jul};
    query.grid.policies = {campaign::CampaignPolicy::MpptOpt};
    query.grid.workloads = {workload::WorkloadId::HM2};
    query.grid.seeds = {1};
    long repeat = 1;
    int timeout_ms = 30000;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto eq = arg.find('=');
        const std::string key = arg.substr(0, eq);
        const std::string value =
            eq == std::string::npos ? "" : arg.substr(eq + 1);
        if (key == "--socket")
            socket_path = value;
        else if (key == "--sites") {
            if (!campaign::parseSiteList(value, query.grid.sites))
                usage("bad --sites list");
        } else if (key == "--months") {
            if (!campaign::parseMonthList(value, query.grid.months))
                usage("bad --months list");
        } else if (key == "--policies") {
            if (!campaign::parsePolicyList(value, query.grid.policies))
                usage("bad --policies list");
        } else if (key == "--workloads") {
            if (!campaign::parseWorkloadList(value, query.grid.workloads))
                usage("bad --workloads list");
        } else if (key == "--seeds") {
            if (!campaign::parseSeedList(value, query.grid.seeds))
                usage("bad --seeds list");
        } else if (key == "--nodes")
            query.nodesPerUnit = static_cast<std::uint32_t>(
                std::strtoul(value.c_str(), nullptr, 10));
        else if (key == "--deadline-ms")
            query.deadlineMillis = static_cast<std::uint32_t>(
                std::strtoul(value.c_str(), nullptr, 10));
        else if (key == "--dt")
            query.grid.dtSeconds = std::strtod(value.c_str(), nullptr);
        else if (key == "--fixed-budget")
            query.grid.fixedBudgetW = std::strtod(value.c_str(), nullptr);
        else if (key == "--co2")
            query.econ.co2KgPerKwh = std::strtod(value.c_str(), nullptr);
        else if (key == "--tariff")
            query.econ.gridUsdPerKwh = std::strtod(value.c_str(), nullptr);
        else if (key == "--panel-usd")
            query.econ.panelUsd = std::strtod(value.c_str(), nullptr);
        else if (key == "--battery-usd")
            query.econ.batteryUsd = std::strtod(value.c_str(), nullptr);
        else if (key == "--battery-life")
            query.econ.batteryLifeYears =
                std::strtod(value.c_str(), nullptr);
        else if (key == "--repeat")
            repeat = std::strtol(value.c_str(), nullptr, 10);
        else if (key == "--timeout-ms")
            timeout_ms = static_cast<int>(
                std::strtol(value.c_str(), nullptr, 10));
        else if (key == "--id")
            query.requestId = std::strtoull(value.c_str(), nullptr, 10);
        else if (key == "--trace") {
            if (value.empty())
                query.traceId = obs::newTraceId();
            else if (!obs::parseSpanIdHex(value, query.traceId) ||
                     query.traceId == 0)
                usage("bad --trace id (expected 1..16 hex digits)");
        }
        else if (key == "--help" || key == "-h")
            usage();
        else
            usage(("unknown option " + key).c_str());
    }
    if (socket_path.empty())
        usage("--socket=PATH is required");
    if (repeat < 1)
        usage("--repeat must be at least 1");

    // Stdout stays byte-identical across repeats (and with/without
    // tracing): the trace id goes to stderr.
    if (query.traceId != 0)
        std::cerr << "solarcore_query: trace "
                  << obs::spanIdHex(query.traceId) << "\n";

    serve::Client client;
    if (!client.connect(socket_path)) {
        std::cerr << "solarcore_query: cannot connect to '" << socket_path
                  << "'\n";
        return 1;
    }

    for (long r = 0; r < repeat; ++r) {
        serve::PlanReply reply;
        std::string error;
        if (!client.call(query, reply, timeout_ms, error)) {
            std::cerr << "solarcore_query: " << error << "\n";
            return 1;
        }
        if (reply.status != serve::ReplyStatus::Ok) {
            std::cerr << "solarcore_query: "
                      << serve::replyStatusName(reply.status);
            if (!reply.message.empty())
                std::cerr << ": " << reply.message;
            std::cerr << "\n";
            return 3;
        }
        printAnswer(reply.answer);
        ++query.requestId;
    }
    return 0;
}
