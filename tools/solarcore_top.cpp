/**
 * @file
 * solarcore_top: a refreshing terminal dashboard over the campaign
 * runner's --status-out heartbeat file.
 *
 *   solarcore_campaign --preset=fig13 --status-out=status.json ... &
 *   solarcore_top --status=status.json
 *
 * Re-reads the atomically-replaced status.json on an interval and
 * renders progress (bar, units/s, ETA), worker occupancy and the
 * in-flight unit keys. Exits on its own once the campaign reports
 * completion; --once prints a single frame without the ANSI refresh
 * (scripts, CI logs).
 *
 * The reader tolerates a missing file (the campaign has not started
 * yet) and a schema it does not recognize (it says so and keeps
 * polling), so it can be started before the campaign.
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "campaign/golden.hpp"

using namespace solarcore;

namespace {

struct WorkerRow
{
    long id = -1, pid = -1, done = 0, total = 0;
    std::string lastKey;
    bool alive = true, crashed = false;
};

struct SlowQueryRow
{
    long requestId = 0;
    std::string traceId; //!< 16-hex, empty when the trace was dropped
    std::string status;
    double queueMs = 0, serviceMs = 0;
    long units = 0;
};

struct Status
{
    bool serve = false; //!< solarcore-serve-status-v1 document
    std::string signature;
    double total = 0, pending = 0, resumed = 0, done = 0;
    double inflight = 0, queueDepth = 0, workers = 0;
    double elapsed = 0, rate = 0, eta = 0, utilization = 0;
    std::vector<std::string> busy;
    bool processMode = false;
    std::vector<WorkerRow> workerRows;
    bool cacheEnabled = false;
    double cacheHits = 0, cacheMisses = 0, cacheStores = 0;
    double cacheEvictions = 0, unitsCached = 0;
    // Serve-mode fields.
    std::string socket, kernel;
    double requests = 0, ok = 0, shedCapacity = 0, shedDeadline = 0;
    double expired = 0, badRequest = 0, protocolErrors = 0;
    double connections = 0, disconnects = 0;
    double unitsSimulated = 0, unitsFromUnitCache = 0;
    double queueP50 = 0, queueP99 = 0, serviceP50 = 0, serviceP99 = 0;
    double resultHits = 0, resultMisses = 0, resultSize = 0;
    bool tracing = false;
    double committedTraces = 0, committedSpans = 0, droppedSpans = 0;
    double clientStamped = 0, headSampled = 0, tailKept = 0;
    std::vector<SlowQueryRow> slowQueries;
};

[[noreturn]] void
usage(const char *complaint = nullptr)
{
    if (complaint)
        std::cerr << "solarcore_top: " << complaint << "\n";
    std::cerr << "usage: solarcore_top --status=FILE [--interval=SECONDS]"
                 " [--once]\n";
    std::exit(2);
}

double
num(const campaign::FlatJson &doc, const std::string &key)
{
    const auto it = doc.find(key);
    return it == doc.end() ? 0.0 : it->second.number;
}

bool
loadStatus(const std::string &path, Status &out, std::string &problem)
{
    std::ifstream is(path);
    if (!is) {
        problem = "waiting for " + path;
        return false;
    }
    std::stringstream ss;
    ss << is.rdbuf();
    campaign::FlatJson doc;
    std::string error;
    if (!campaign::parseJsonFlat(ss.str(), doc, error)) {
        // A torn read cannot happen (the writer renames); a parse
        // error means the file is something else entirely.
        problem = "unparsable status file: " + error;
        return false;
    }
    const auto schema = doc.find("schema");
    if (schema != doc.end() &&
        schema->second.text == "solarcore-serve-status-v1") {
        out.serve = true;
        const auto socket = doc.find("socket");
        out.socket = socket == doc.end() ? std::string()
                                         : socket->second.text;
        const auto kernel = doc.find("pv_kernel");
        out.kernel = kernel == doc.end() ? std::string()
                                         : kernel->second.text;
        out.elapsed = num(doc, "uptime_seconds");
        out.workers = num(doc, "workers");
        out.queueDepth = num(doc, "queue_depth");
        out.inflight = num(doc, "inflight");
        out.connections = num(doc, "connections");
        out.disconnects = num(doc, "disconnects");
        out.protocolErrors = num(doc, "protocol_errors");
        out.requests = num(doc, "requests");
        out.ok = num(doc, "ok");
        out.shedCapacity = num(doc, "shed_capacity");
        out.shedDeadline = num(doc, "shed_deadline");
        out.expired = num(doc, "expired");
        out.badRequest = num(doc, "bad_request");
        out.unitsSimulated = num(doc, "units_simulated");
        out.unitsFromUnitCache = num(doc, "units_from_unit_cache");
        out.queueP50 = num(doc, "latency_ms.queue_p50");
        out.queueP99 = num(doc, "latency_ms.queue_p99");
        out.serviceP50 = num(doc, "latency_ms.service_p50");
        out.serviceP99 = num(doc, "latency_ms.service_p99");
        out.resultHits = num(doc, "result_cache.hits");
        out.resultMisses = num(doc, "result_cache.misses");
        out.resultSize = num(doc, "result_cache.size");
        out.cacheEnabled = doc.find("unit_cache.hits") != doc.end();
        out.cacheHits = num(doc, "unit_cache.hits");
        out.cacheMisses = num(doc, "unit_cache.misses");
        out.cacheStores = num(doc, "unit_cache.stores");
        out.cacheEvictions = num(doc, "unit_cache.evictions");
        const auto tracing = doc.find("tracing.enabled");
        out.tracing = tracing != doc.end() && tracing->second.boolean;
        out.committedTraces = num(doc, "tracing.committed_traces");
        out.committedSpans = num(doc, "tracing.committed_spans");
        out.droppedSpans = num(doc, "tracing.dropped_spans");
        out.clientStamped = num(doc, "tracing.client_stamped");
        out.headSampled = num(doc, "tracing.head_sampled");
        out.tailKept = num(doc, "tracing.tail_kept");
        out.slowQueries.clear();
        for (std::size_t i = 0;; ++i) {
            const std::string prefix =
                "slow_queries." + std::to_string(i);
            const auto rid = doc.find(prefix + ".request_id");
            if (rid == doc.end())
                break;
            SlowQueryRow row;
            row.requestId = static_cast<long>(rid->second.number);
            const auto tid = doc.find(prefix + ".trace_id");
            if (tid != doc.end())
                row.traceId = tid->second.text;
            const auto status = doc.find(prefix + ".status");
            if (status != doc.end())
                row.status = status->second.text;
            row.queueMs = num(doc, prefix + ".queue_ms");
            row.serviceMs = num(doc, prefix + ".service_ms");
            row.units = static_cast<long>(num(doc, prefix + ".units"));
            out.slowQueries.push_back(row);
        }
        return true;
    }
    if (schema == doc.end() ||
        schema->second.text != "solarcore-campaign-status-v1") {
        problem = "not a solarcore status file";
        return false;
    }
    const auto sig = doc.find("signature");
    out.signature =
        sig == doc.end() ? std::string() : sig->second.text;
    out.total = num(doc, "units_total");
    out.pending = num(doc, "units_pending");
    out.resumed = num(doc, "units_resumed");
    out.done = num(doc, "units_done");
    out.inflight = num(doc, "units_inflight");
    out.queueDepth = num(doc, "queue_depth");
    out.workers = num(doc, "workers");
    out.elapsed = num(doc, "elapsed_seconds");
    out.rate = num(doc, "units_per_second");
    out.eta = num(doc, "eta_seconds");
    out.utilization = num(doc, "worker_utilization");
    out.busy.clear();
    for (std::size_t i = 0;; ++i) {
        const auto it = doc.find("busy." + std::to_string(i));
        if (it == doc.end())
            break;
        out.busy.push_back(it->second.text);
    }
    const auto pm = doc.find("process_mode");
    out.processMode = pm != doc.end() && pm->second.boolean;
    out.workerRows.clear();
    for (std::size_t i = 0;; ++i) {
        const std::string prefix = "worker_rows." + std::to_string(i);
        const auto id = doc.find(prefix + ".id");
        if (id == doc.end())
            break;
        WorkerRow row;
        row.id = static_cast<long>(id->second.number);
        row.pid = static_cast<long>(num(doc, prefix + ".pid"));
        row.done = static_cast<long>(num(doc, prefix + ".done"));
        row.total = static_cast<long>(num(doc, prefix + ".total"));
        const auto key = doc.find(prefix + ".last_key");
        if (key != doc.end())
            row.lastKey = key->second.text;
        const auto alive = doc.find(prefix + ".alive");
        row.alive = alive != doc.end() && alive->second.boolean;
        const auto crashed = doc.find(prefix + ".crashed");
        row.crashed = crashed != doc.end() && crashed->second.boolean;
        out.workerRows.push_back(row);
    }
    out.cacheEnabled = doc.find("unit_cache.hits") != doc.end();
    out.cacheHits = num(doc, "unit_cache.hits");
    out.cacheMisses = num(doc, "unit_cache.misses");
    out.cacheStores = num(doc, "unit_cache.stores");
    out.cacheEvictions = num(doc, "unit_cache.evictions");
    out.unitsCached = num(doc, "unit_cache.units_cached");
    return true;
}

std::string
fmtDuration(double seconds)
{
    if (!std::isfinite(seconds) || seconds < 0)
        seconds = 0;
    const auto s = static_cast<long>(seconds + 0.5);
    char buf[32];
    if (s >= 3600)
        std::snprintf(buf, sizeof(buf), "%ldh%02ldm", s / 3600,
                      (s % 3600) / 60);
    else if (s >= 60)
        std::snprintf(buf, sizeof(buf), "%ldm%02lds", s / 60, s % 60);
    else
        std::snprintf(buf, sizeof(buf), "%lds", s);
    return buf;
}

void
renderServe(std::ostream &os, const Status &st)
{
    os << "solarcore serve";
    if (!st.socket.empty())
        os << "  (" << st.socket << ")";
    os << "\n";
    os << "  uptime   " << fmtDuration(st.elapsed);
    if (!st.kernel.empty())
        os << "   pv kernel " << st.kernel;
    os << "\n";
    os << "  load     " << static_cast<long>(st.inflight) << "/"
       << static_cast<long>(st.workers) << " busy   queue "
       << static_cast<long>(st.queueDepth) << "   conns "
       << static_cast<long>(st.connections - st.disconnects) << " open/"
       << static_cast<long>(st.connections) << " total\n";
    os << "  requests " << static_cast<long>(st.ok) << " ok";
    const long shed =
        static_cast<long>(st.shedCapacity + st.shedDeadline);
    if (shed > 0)
        os << "   " << shed << " shed ("
           << static_cast<long>(st.shedCapacity) << " capacity, "
           << static_cast<long>(st.shedDeadline) << " deadline)";
    if (st.expired > 0)
        os << "   " << static_cast<long>(st.expired) << " expired";
    if (st.badRequest > 0)
        os << "   " << static_cast<long>(st.badRequest) << " bad";
    if (st.protocolErrors > 0)
        os << "   " << static_cast<long>(st.protocolErrors)
           << " protocol errors";
    os << "\n";
    char lat[96];
    std::snprintf(lat, sizeof(lat),
                  "  latency  queue p50 %.2fms p99 %.2fms   service"
                  " p50 %.2fms p99 %.2fms\n",
                  st.queueP50, st.queueP99, st.serviceP50, st.serviceP99);
    os << lat;
    const double lookups = st.resultHits + st.resultMisses;
    char hitrate[16];
    std::snprintf(hitrate, sizeof(hitrate), "%.0f%%",
                  lookups > 0 ? st.resultHits / lookups * 100.0 : 0.0);
    os << "  answers  " << static_cast<long>(st.resultHits) << " hit/"
       << static_cast<long>(st.resultMisses) << " miss (" << hitrate
       << ")   " << static_cast<long>(st.resultSize) << " cached\n";
    os << "  units    " << static_cast<long>(st.unitsSimulated)
       << " simulated";
    if (st.cacheEnabled) {
        os << "   " << static_cast<long>(st.unitsFromUnitCache)
           << " from unit cache (" << static_cast<long>(st.cacheHits)
           << " hit/" << static_cast<long>(st.cacheMisses) << " miss)";
    }
    os << "\n";
    if (st.tracing) {
        os << "  tracing  " << static_cast<long>(st.committedTraces)
           << " traces (" << static_cast<long>(st.committedSpans)
           << " spans)   " << static_cast<long>(st.clientStamped)
           << " client / " << static_cast<long>(st.headSampled)
           << " sampled / " << static_cast<long>(st.tailKept)
           << " tail-kept";
        if (st.droppedSpans > 0)
            os << "   " << static_cast<long>(st.droppedSpans)
               << " dropped";
        os << "\n";
    }
    if (!st.slowQueries.empty()) {
        os << "  slow queries (most recent last)\n";
        for (const SlowQueryRow &row : st.slowQueries) {
            char line[160];
            std::snprintf(line, sizeof(line),
                          "    #%-6ld %-13s queue %8.2fms  service"
                          " %8.2fms  %ld units",
                          row.requestId, row.status.c_str(),
                          std::max(row.queueMs, 0.0),
                          std::max(row.serviceMs, 0.0), row.units);
            os << line;
            if (!row.traceId.empty())
                os << "  trace " << row.traceId;
            os << "\n";
        }
    }
}

void
render(std::ostream &os, const Status &st)
{
    if (st.serve) {
        renderServe(os, st);
        return;
    }
    const double denom = st.pending > 0 ? st.pending : 1.0;
    const double frac = std::min(st.done / denom, 1.0);
    constexpr int kBarWidth = 40;
    const int fill = static_cast<int>(frac * kBarWidth + 0.5);

    os << "solarcore campaign\n";
    if (!st.signature.empty())
        os << "  grid     " << st.signature << "\n";
    os << "  progress [";
    for (int i = 0; i < kBarWidth; ++i)
        os << (i < fill ? '#' : '-');
    char pct[16];
    std::snprintf(pct, sizeof(pct), "%5.1f%%", frac * 100.0);
    os << "] " << pct << "  " << static_cast<long>(st.done) << "/"
       << static_cast<long>(st.pending);
    if (st.resumed > 0)
        os << " (+" << static_cast<long>(st.resumed) << " resumed)";
    os << "\n";
    char rate[32];
    std::snprintf(rate, sizeof(rate), "%.1f", st.rate);
    os << "  rate     " << rate << " units/s   elapsed "
       << fmtDuration(st.elapsed) << "   eta "
       << (st.done >= st.pending ? "done" : fmtDuration(st.eta)) << "\n";
    char util[16];
    std::snprintf(util, sizeof(util), "%.0f%%", st.utilization * 100.0);
    os << "  workers  " << static_cast<long>(st.inflight) << "/"
       << static_cast<long>(st.workers) << " busy (" << util
       << ")   queue " << static_cast<long>(st.queueDepth) << "\n";
    if (!st.busy.empty()) {
        os << "  running ";
        constexpr std::size_t kMaxShown = 8;
        for (std::size_t i = 0; i < st.busy.size() && i < kMaxShown; ++i)
            os << ' ' << st.busy[i];
        if (st.busy.size() > kMaxShown)
            os << " (+" << st.busy.size() - kMaxShown << " more)";
        os << "\n";
    }
    if (st.processMode && !st.workerRows.empty()) {
        os << "  shards\n";
        for (const WorkerRow &row : st.workerRows) {
            os << "    w" << row.id << " [pid " << row.pid << "] "
               << row.done << "/" << row.total;
            if (row.crashed)
                os << "  CRASHED";
            else if (!row.alive)
                os << "  done";
            if (!row.lastKey.empty())
                os << "  " << row.lastKey;
            os << "\n";
        }
    }
    if (st.cacheEnabled) {
        const double lookups = st.cacheHits + st.cacheMisses;
        char hitrate[16];
        std::snprintf(hitrate, sizeof(hitrate), "%.0f%%",
                      lookups > 0 ? st.cacheHits / lookups * 100.0 : 0.0);
        os << "  cache    " << static_cast<long>(st.cacheHits) << " hit/"
           << static_cast<long>(st.cacheMisses) << " miss (" << hitrate
           << ")   " << static_cast<long>(st.unitsCached)
           << " units served   " << static_cast<long>(st.cacheStores)
           << " stored";
        if (st.cacheEvictions > 0)
            os << "   " << static_cast<long>(st.cacheEvictions)
               << " evicted";
        os << "\n";
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::string status_path;
    double interval = 1.0;
    bool once = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto eq = arg.find('=');
        const std::string key = arg.substr(0, eq);
        const std::string value =
            eq == std::string::npos ? "" : arg.substr(eq + 1);
        if (key == "--status")
            status_path = value;
        else if (key == "--interval")
            interval = std::strtod(value.c_str(), nullptr);
        else if (key == "--once")
            once = true;
        else
            usage(("unknown option " + key).c_str());
    }
    if (status_path.empty())
        usage("--status=FILE is required");
    if (!(interval > 0))
        usage("--interval must be positive");

    for (;;) {
        Status st;
        std::string problem;
        const bool ok = loadStatus(status_path, st, problem);
        if (once) {
            if (!ok) {
                std::cerr << "solarcore_top: " << problem << "\n";
                return 1;
            }
            render(std::cout, st);
            return 0;
        }
        // One frame per refresh: clear, home, draw.
        std::ostringstream frame;
        frame << "\x1b[H\x1b[2J";
        if (ok)
            render(frame, st);
        else
            frame << "solarcore_top: " << problem << "\n";
        std::cout << frame.str() << std::flush;
        // A serve status never "completes": keep watching until the
        // user quits or the daemon removes the file.
        if (ok && !st.serve && st.done >= st.pending && st.pending > 0) {
            std::cout << "campaign complete\n";
            return 0;
        }
        std::this_thread::sleep_for(
            std::chrono::duration<double>(interval));
    }
}
