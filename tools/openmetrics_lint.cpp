/**
 * @file
 * openmetrics_lint: structural validator for OpenMetrics exposition
 * text, the CI gate behind the --metrics-port scrape.
 *
 *   curl -s http://127.0.0.1:9464/metrics | openmetrics_lint
 *   openmetrics_lint metrics.prom
 *
 * Runs obs::lintOpenMetrics (HELP/TYPE presence, metric/label syntax,
 * histogram bucket monotonicity and _sum/_count consistency, the
 * terminating `# EOF`) over stdin or the named file. Exit 0 when
 * clean; exit 1 with one error per line on stderr otherwise.
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics_export.hpp"

int
main(int argc, char **argv)
{
    std::string text;
    if (argc > 2 ||
        (argc == 2 && std::string(argv[1]).rfind("--", 0) == 0)) {
        std::cerr << "usage: openmetrics_lint [FILE]  "
                     "(reads stdin without FILE)\n";
        return 2;
    }
    if (argc == 2) {
        std::ifstream is(argv[1]);
        if (!is) {
            std::cerr << "openmetrics_lint: cannot open '" << argv[1]
                      << "'\n";
            return 2;
        }
        std::stringstream ss;
        ss << is.rdbuf();
        text = ss.str();
    } else {
        std::stringstream ss;
        ss << std::cin.rdbuf();
        text = ss.str();
    }
    if (text.empty()) {
        std::cerr << "openmetrics_lint: empty input\n";
        return 1;
    }

    std::vector<std::string> errors;
    if (!solarcore::obs::lintOpenMetrics(text, errors)) {
        for (const auto &e : errors)
            std::cerr << "openmetrics_lint: " << e << "\n";
        std::cerr << "openmetrics_lint: FAIL (" << errors.size()
                  << " problem" << (errors.size() == 1 ? "" : "s")
                  << ")\n";
        return 1;
    }
    std::size_t lines = 0;
    for (const char c : text)
        lines += c == '\n';
    std::cout << "openmetrics_lint: OK (" << lines << " lines)\n";
    return 0;
}
