/**
 * @file
 * solarcore_spans: analyzer for the span JSONL exports written by
 * solarcore_serve (--trace-out) and solarcore_campaign (--span-out).
 *
 *   solarcore_spans spans.jsonl             # breakdown + critical paths
 *   solarcore_spans --lint spans.jsonl      # schema gate (CI)
 *   solarcore_spans --trace=HEXID spans.jsonl
 *
 * Default mode prints a per-stage latency breakdown (count, total,
 * mean, max, share) over every span name, then the critical path of
 * each trace: starting at the root, repeatedly descend into the
 * longest child span. --lint validates the "solarcore-span-v1" schema
 * instead: ids are 16-hex and non-zero, intervals are ordered, span
 * ids are unique within a trace, every parent resolves inside its
 * trace, and each trace has exactly one root. Exit 0 clean, 1 with
 * one error per line on stderr otherwise.
 */

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "campaign/golden.hpp"
#include "obs/span.hpp"

using namespace solarcore;

namespace {

struct Span
{
    std::uint64_t trace = 0;
    std::uint64_t id = 0;
    std::uint64_t parent = 0;
    double startNs = 0.0;
    double endNs = 0.0;
    long lane = 0;
    std::string name;

    double durationMs() const { return (endNs - startNs) / 1e6; }
};

[[noreturn]] void
usage(const char *complaint = nullptr)
{
    if (complaint)
        std::cerr << "solarcore_spans: " << complaint << "\n";
    std::cerr << "usage: solarcore_spans [--lint] [--trace=HEXID] "
                 "FILE.jsonl\n"
                 "  --lint         validate the solarcore-span-v1 schema\n"
                 "                 (exit 1 on any problem)\n"
                 "  --trace=HEXID  restrict the analysis to one trace\n";
    std::exit(2);
}

std::string
fmtMs(double ms)
{
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.3f", ms);
    return buf;
}

/**
 * Parse one JSONL line. @return false with @p error on malformed
 * JSON or schema violations detectable from a single record.
 */
bool
parseSpanLine(const std::string &line, Span &out, std::string &error)
{
    campaign::FlatJson flat;
    if (!campaign::parseJsonFlat(line, flat, error))
        return false;

    const auto text = [&](const char *key, std::string &value) {
        const auto it = flat.find(key);
        if (it == flat.end() ||
            it->second.kind != campaign::JsonLeaf::Kind::String) {
            error = std::string("missing string field '") + key + "'";
            return false;
        }
        value = it->second.text;
        return true;
    };
    const auto number = [&](const char *key, double &value) {
        const auto it = flat.find(key);
        if (it == flat.end() ||
            it->second.kind != campaign::JsonLeaf::Kind::Number) {
            error = std::string("missing number field '") + key + "'";
            return false;
        }
        value = it->second.number;
        return true;
    };

    std::string schema;
    if (!text("schema", schema))
        return false;
    if (schema != "solarcore-span-v1") {
        error = "unknown schema '" + schema + "'";
        return false;
    }
    std::string trace_hex, span_hex, parent_hex;
    if (!text("trace", trace_hex) || !text("span", span_hex) ||
        !text("parent", parent_hex) || !text("name", out.name))
        return false;
    if (!obs::parseSpanIdHex(trace_hex, out.trace) || out.trace == 0) {
        error = "bad trace id '" + trace_hex + "'";
        return false;
    }
    if (!obs::parseSpanIdHex(span_hex, out.id) || out.id == 0) {
        error = "bad span id '" + span_hex + "'";
        return false;
    }
    if (!obs::parseSpanIdHex(parent_hex, out.parent)) {
        error = "bad parent id '" + parent_hex + "'";
        return false;
    }
    if (out.name.empty()) {
        error = "empty span name";
        return false;
    }
    double lane = 0.0;
    if (!number("start_ns", out.startNs) ||
        !number("end_ns", out.endNs) || !number("lane", lane))
        return false;
    out.lane = static_cast<long>(lane);
    if (out.endNs < out.startNs) {
        error = "end_ns precedes start_ns";
        return false;
    }
    return true;
}

/** Cross-record checks: unique ids, resolvable parents, one root. */
void
lintStructure(const std::vector<Span> &spans,
              std::vector<std::string> &errors)
{
    std::map<std::pair<std::uint64_t, std::uint64_t>, std::size_t> ids;
    for (const Span &s : spans) {
        const auto key = std::make_pair(s.trace, s.id);
        if (++ids[key] == 2)
            errors.push_back("trace " + obs::spanIdHex(s.trace) +
                             ": duplicate span id " +
                             obs::spanIdHex(s.id));
    }
    std::map<std::uint64_t, std::size_t> roots;
    for (const Span &s : spans) {
        if (s.parent == 0) {
            ++roots[s.trace];
            continue;
        }
        if (ids.find(std::make_pair(s.trace, s.parent)) == ids.end())
            errors.push_back("trace " + obs::spanIdHex(s.trace) +
                             ": span " + obs::spanIdHex(s.id) + " ('" +
                             s.name + "') has unresolved parent " +
                             obs::spanIdHex(s.parent));
    }
    for (const Span &s : spans)
        if (roots[s.trace] != 1) {
            errors.push_back("trace " + obs::spanIdHex(s.trace) +
                             " has " + std::to_string(roots[s.trace]) +
                             " root spans (want exactly 1)");
            roots[s.trace] = 1; // report once
        }
}

void
printBreakdown(const std::vector<Span> &spans)
{
    struct Stage
    {
        std::size_t count = 0;
        double totalMs = 0.0;
        double maxMs = 0.0;
    };
    std::map<std::string, Stage> stages;
    double grand = 0.0;
    for (const Span &s : spans) {
        Stage &st = stages[s.name];
        ++st.count;
        st.totalMs += s.durationMs();
        st.maxMs = std::max(st.maxMs, s.durationMs());
        grand += s.durationMs();
    }
    std::vector<std::pair<std::string, Stage>> rows(stages.begin(),
                                                    stages.end());
    std::sort(rows.begin(), rows.end(), [](const auto &a, const auto &b) {
        return a.second.totalMs > b.second.totalMs;
    });
    std::printf("%-16s %8s %12s %12s %12s %7s\n", "stage", "count",
                "total_ms", "mean_ms", "max_ms", "share");
    for (const auto &[name, st] : rows)
        std::printf("%-16s %8zu %12s %12s %12s %6.1f%%\n", name.c_str(),
                    st.count, fmtMs(st.totalMs).c_str(),
                    fmtMs(st.totalMs / static_cast<double>(st.count))
                        .c_str(),
                    fmtMs(st.maxMs).c_str(),
                    grand > 0.0 ? 100.0 * st.totalMs / grand : 0.0);
}

void
printCriticalPaths(const std::vector<Span> &spans)
{
    std::map<std::uint64_t, std::vector<const Span *>> traces;
    for (const Span &s : spans)
        traces[s.trace].push_back(&s);

    // Largest traces first; cap the listing so huge exports stay
    // readable.
    std::vector<std::pair<std::uint64_t, std::vector<const Span *>>>
        ordered(traces.begin(), traces.end());
    std::sort(ordered.begin(), ordered.end(),
              [](const auto &a, const auto &b) {
                  double wa = 0.0, wb = 0.0;
                  for (const Span *s : a.second)
                      if (s->parent == 0)
                          wa = s->durationMs();
                  for (const Span *s : b.second)
                      if (s->parent == 0)
                          wb = s->durationMs();
                  if (wa != wb)
                      return wa > wb;
                  return a.first < b.first;
              });
    constexpr std::size_t kMaxTraces = 10;

    std::size_t shown = 0;
    for (const auto &[trace_id, list] : ordered) {
        if (shown == kMaxTraces) {
            std::printf("... %zu more trace(s) not shown\n",
                        ordered.size() - shown);
            break;
        }
        ++shown;
        const Span *root = nullptr;
        for (const Span *s : list)
            if (s->parent == 0)
                root = s;
        std::printf("trace %s: %zu span(s)",
                    obs::spanIdHex(trace_id).c_str(), list.size());
        if (!root) {
            std::printf(", no root span\n");
            continue;
        }
        std::printf(", wall %s ms\n", fmtMs(root->durationMs()).c_str());
        // Critical path: descend into the longest child at every hop.
        const Span *node = root;
        std::printf("  critical path: %s (%s ms)", node->name.c_str(),
                    fmtMs(node->durationMs()).c_str());
        for (;;) {
            const Span *widest = nullptr;
            for (const Span *s : list)
                if (s->parent == node->id &&
                    (!widest ||
                     s->durationMs() > widest->durationMs()))
                    widest = s;
            if (!widest)
                break;
            node = widest;
            std::printf(" -> %s (%s ms)", node->name.c_str(),
                        fmtMs(node->durationMs()).c_str());
        }
        std::printf("\n");
    }
}

} // namespace

int
main(int argc, char **argv)
{
    bool lint = false;
    std::uint64_t only_trace = 0;
    std::string path;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--lint")
            lint = true;
        else if (arg.rfind("--trace=", 0) == 0) {
            if (!obs::parseSpanIdHex(arg.substr(8), only_trace) ||
                only_trace == 0)
                usage("bad --trace id (expected 1..16 hex digits)");
        } else if (arg == "--help" || arg == "-h")
            usage();
        else if (arg.rfind("--", 0) == 0)
            usage(("unknown option " + arg).c_str());
        else if (path.empty())
            path = arg;
        else
            usage("more than one input file");
    }
    if (path.empty())
        usage("an input FILE.jsonl is required");

    std::ifstream is(path);
    if (!is) {
        std::cerr << "solarcore_spans: cannot open '" << path << "'\n";
        return 2;
    }

    std::vector<Span> spans;
    std::vector<std::string> errors;
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(is, line)) {
        ++line_no;
        if (line.empty())
            continue;
        Span s;
        std::string error;
        if (!parseSpanLine(line, s, error)) {
            errors.push_back("line " + std::to_string(line_no) + ": " +
                             error);
            continue;
        }
        if (only_trace == 0 || s.trace == only_trace)
            spans.push_back(std::move(s));
    }
    lintStructure(spans, errors);

    if (lint) {
        for (const auto &e : errors)
            std::cerr << "solarcore_spans: " << e << "\n";
        if (!errors.empty()) {
            std::cerr << "solarcore_spans: FAIL (" << errors.size()
                      << " problem" << (errors.size() == 1 ? "" : "s")
                      << ")\n";
            return 1;
        }
        if (spans.empty()) {
            std::cerr << "solarcore_spans: FAIL (no spans)\n";
            return 1;
        }
        std::map<std::uint64_t, bool> traces;
        for (const Span &s : spans)
            traces[s.trace] = true;
        std::cout << "solarcore_spans: OK (" << spans.size()
                  << " spans, " << traces.size() << " traces)\n";
        return 0;
    }

    for (const auto &e : errors)
        std::cerr << "solarcore_spans: warning: " << e << "\n";
    if (spans.empty()) {
        std::cerr << "solarcore_spans: no spans in '" << path << "'\n";
        return 1;
    }
    printBreakdown(spans);
    std::printf("\n");
    printCriticalPaths(spans);
    return 0;
}
