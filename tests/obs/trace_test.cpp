/**
 * @file
 * Tests for the event trace ring buffer, the multi-buffer merge, and
 * the JSONL / Chrome trace_event exporters.
 */

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/trace.hpp"

namespace solarcore::obs {
namespace {

TraceEvent
retrackEvent(RetrackCause cause, double budget_w, double demand_w)
{
    TraceEvent e;
    e.kind = EventKind::Retrack;
    e.arg0 = static_cast<std::uint8_t>(cause);
    e.v0 = budget_w;
    e.v1 = demand_w;
    return e;
}

TEST(TraceBuffer, StampsTimeAndSequence)
{
    TraceBuffer buf(8);
    buf.setNow(12.5);
    buf.emit(retrackEvent(RetrackCause::Periodic, 40.0, 35.0));
    buf.setNow(13.0);
    buf.emit(retrackEvent(RetrackCause::DemandDelta, 41.0, 36.0));

    ASSERT_EQ(buf.size(), 2u);
    EXPECT_DOUBLE_EQ(buf.at(0).timeMin, 12.5);
    EXPECT_EQ(buf.at(0).seq, 0u);
    EXPECT_DOUBLE_EQ(buf.at(1).timeMin, 13.0);
    EXPECT_EQ(buf.at(1).seq, 1u);
    EXPECT_EQ(buf.dropped(), 0u);
}

TEST(TraceBuffer, RingWrapsOldestFirstAndCountsDropped)
{
    TraceBuffer buf(4);
    for (int i = 0; i < 7; ++i) {
        buf.setNow(i);
        TraceEvent e;
        e.kind = EventKind::DvfsChange;
        e.i0 = i;
        buf.emit(e);
    }
    // Capacity 4, 7 emitted: events 0..2 were overwritten.
    EXPECT_EQ(buf.capacity(), 4u);
    EXPECT_EQ(buf.size(), 4u);
    EXPECT_EQ(buf.dropped(), 3u);
    const auto evs = buf.events();
    ASSERT_EQ(evs.size(), 4u);
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(evs[i].i0, i + 3);
        EXPECT_DOUBLE_EQ(evs[i].timeMin, i + 3.0);
    }

    buf.clear();
    EXPECT_TRUE(buf.empty());
    EXPECT_EQ(buf.dropped(), 0u);
}

TEST(TraceBuffer, MinimumCapacityIsOne)
{
    TraceBuffer buf(0);
    EXPECT_EQ(buf.capacity(), 1u);
    buf.emit(TraceEvent{});
    buf.emit(TraceEvent{});
    EXPECT_EQ(buf.size(), 1u);
    EXPECT_EQ(buf.dropped(), 1u);
}

TEST(MergeBuffers, OrdersByTimeThenTrackThenSeq)
{
    TraceBuffer a(8), b(8);
    a.setNow(10.0);
    a.emit(retrackEvent(RetrackCause::Periodic, 1.0, 0.0)); // t=10 trk0
    a.setNow(30.0);
    a.emit(retrackEvent(RetrackCause::Periodic, 2.0, 0.0)); // t=30 trk0
    b.setNow(10.0);
    b.emit(retrackEvent(RetrackCause::Periodic, 3.0, 0.0)); // t=10 trk1
    b.setNow(20.0);
    b.emit(retrackEvent(RetrackCause::Periodic, 4.0, 0.0)); // t=20 trk1

    const auto merged = mergeBuffers({&a, &b});
    ASSERT_EQ(merged.size(), 4u);
    EXPECT_DOUBLE_EQ(merged[0].v0, 1.0); // t=10, track 0 before track 1
    EXPECT_EQ(merged[0].track, 0);
    EXPECT_DOUBLE_EQ(merged[1].v0, 3.0);
    EXPECT_EQ(merged[1].track, 1);
    EXPECT_DOUBLE_EQ(merged[2].v0, 4.0); // t=20
    EXPECT_DOUBLE_EQ(merged[3].v0, 2.0); // t=30

    // Null buffers are skipped, and track ids follow slot positions.
    const auto sparse = mergeBuffers({nullptr, &b});
    ASSERT_EQ(sparse.size(), 2u);
    EXPECT_EQ(sparse[0].track, 1);
}

TEST(ExportJsonl, GoldenLines)
{
    TraceBuffer buf(8);
    buf.setNow(421.0);
    buf.emit(retrackEvent(RetrackCause::SolarEntry, 38.25, 30.0));
    TraceEvent d;
    d.kind = EventKind::DvfsChange;
    d.core = 2;
    d.i0 = 4;
    d.i1 = 5;
    d.arg0 = 1;
    d.v0 = 1.5;
    d.v1 = 0.25;
    buf.emit(d);

    std::ostringstream os;
    exportJsonl(buf.events(), os);
    EXPECT_EQ(os.str(),
              "{\"t_min\":421,\"track\":0,\"kind\":\"retrack\","
              "\"cause\":\"solar_entry\",\"budget_w\":38.25,"
              "\"demand_w\":30}\n"
              "{\"t_min\":421,\"track\":0,\"kind\":\"dvfs_change\","
              "\"core\":2,\"from_level\":4,\"to_level\":5,"
              "\"tpr_rank\":1,\"delta_power_w\":1.5,\"tpr\":0.25}\n");
}

TEST(ExportChromeTrace, EmitsMetadataInstantsAndCounters)
{
    TraceBuffer buf(8);
    buf.setNow(1.0);
    TraceEvent d;
    d.kind = EventKind::DvfsChange;
    d.core = 0;
    d.i0 = 3;
    d.i1 = 4;
    d.arg0 = 2;
    buf.emit(d);
    TraceEvent p;
    p.kind = EventKind::PeriodClose;
    p.v0 = 40.0;
    p.v1 = 38.5;
    buf.emit(p);

    std::ostringstream os;
    exportChromeTrace(buf.events(), os, {"day"});
    const std::string out = os.str();

    // A valid trace_event document with our metadata...
    EXPECT_EQ(out.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0),
              0u);
    EXPECT_NE(out.find("\"name\":\"process_name\""), std::string::npos);
    EXPECT_NE(out.find("\"args\":{\"name\":\"day\"}"), std::string::npos);
    // ...the instant record (minute 1 -> 6e7 us, shortest-form number)...
    EXPECT_NE(out.find("{\"name\":\"dvfs_change\",\"cat\":\"sim\","
                       "\"ph\":\"i\",\"s\":\"t\",\"ts\":6e+07,"
                       "\"pid\":1,\"tid\":0,\"args\":{\"core\":0,"
                       "\"from_level\":3,\"to_level\":4,\"tpr_rank\":2,"
                       "\"delta_power_w\":0,\"tpr\":0}}"),
              std::string::npos);
    // ...and the derived counter tracks.
    EXPECT_NE(out.find("{\"name\":\"core0.level\",\"ph\":\"C\","
                       "\"ts\":6e+07,\"pid\":1,\"tid\":0,"
                       "\"args\":{\"level\":4}}"),
              std::string::npos);
    EXPECT_NE(out.find("{\"name\":\"power\",\"ph\":\"C\",\"ts\":6e+07,"
                       "\"pid\":1,\"tid\":0,\"args\":{\"budget_w\":40,"
                       "\"consumed_w\":38.5}}"),
              std::string::npos);
    EXPECT_EQ(out.substr(out.size() - 4), "\n]}\n");
}

TEST(EventNames, AreStableStrings)
{
    EXPECT_STREQ(eventKindName(EventKind::AtsTransfer), "ats_transfer");
    EXPECT_STREQ(eventKindName(EventKind::ThermalThrottle),
                 "thermal_throttle");
    EXPECT_STREQ(retrackCauseName(RetrackCause::SupplyDelta),
                 "supply_delta");
    EXPECT_STREQ(batteryModeName(BatteryMode::Discharge), "discharge");
}

} // namespace
} // namespace solarcore::obs
