/**
 * @file
 * Tests for the per-step waveform recorder: channel registration and
 * schema freezing, every-N and min-max decimation semantics, NaN
 * cells, CSV export, and the campaign concat layout.
 */

#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "obs/telemetry.hpp"

namespace solarcore::obs {
namespace {

TEST(Telemetry, ChannelFindOrCreateAndUnits)
{
    TelemetryRecorder rec;
    const auto a = rec.channel("panel.power_w", "W");
    const auto b = rec.channel("rail.voltage_v", "V");
    EXPECT_NE(a, b);
    // Re-registering an existing name returns the same id (how
    // repeated days in one run share a schema), keeping its unit.
    EXPECT_EQ(rec.channel("panel.power_w"), a);
    EXPECT_EQ(rec.channelCount(), 2u);
    EXPECT_EQ(rec.channelUnit(a), "W");
}

TEST(Telemetry, SchemaFreezesAtFirstStep)
{
    TelemetryRecorder rec;
    rec.channel("x");
    rec.beginStep(0.0);
    rec.endStep();
    EXPECT_EQ(rec.channel("x"), 0u); // lookup of existing still fine
    EXPECT_DEATH(rec.channel("late"), "after sampling started");
}

TEST(Telemetry, EveryNKeepsFirstStepOfEachWindow)
{
    TelemetryRecorder rec(3, TelemetryMode::EveryN);
    const auto ch = rec.channel("v");
    for (int s = 0; s < 10; ++s) {
        rec.beginStep(static_cast<double>(s));
        rec.set(ch, static_cast<double>(s) * 10.0);
        rec.endStep();
    }
    // Steps 0, 3, 6, 9 are committed: the very first sample of a run
    // is always retained.
    ASSERT_EQ(rec.rowCount(), 4u);
    EXPECT_EQ(rec.stepCount(), 10u);
    const double want_times[] = {0.0, 3.0, 6.0, 9.0};
    for (std::size_t r = 0; r < 4; ++r) {
        EXPECT_DOUBLE_EQ(rec.rowTime(r), want_times[r]);
        EXPECT_DOUBLE_EQ(rec.value(r, ch), want_times[r] * 10.0);
    }
}

TEST(Telemetry, MinMaxPreservesMidBucketExtremes)
{
    TelemetryRecorder rec(5, TelemetryMode::MinMax);
    const auto ch = rec.channel("p");
    // A spike at step 2 and a dip at step 3, both mid-bucket: every-N
    // decimation at the same factor would drop both.
    const double values[] = {10.0, 11.0, 99.0, -5.0, 12.0};
    for (int s = 0; s < 5; ++s) {
        rec.beginStep(static_cast<double>(s));
        rec.set(ch, values[s]);
        rec.endStep();
    }
    // Two envelope rows: minima at the bucket start, maxima at the end.
    ASSERT_EQ(rec.rowCount(), 2u);
    EXPECT_DOUBLE_EQ(rec.rowTime(0), 0.0);
    EXPECT_DOUBLE_EQ(rec.value(0, ch), -5.0);
    EXPECT_DOUBLE_EQ(rec.rowTime(1), 4.0);
    EXPECT_DOUBLE_EQ(rec.value(1, ch), 99.0);
}

TEST(Telemetry, FlushCommitsThePartialDuskBucket)
{
    TelemetryRecorder rec(10, TelemetryMode::MinMax);
    const auto ch = rec.channel("p");
    for (int s = 0; s < 3; ++s) {
        rec.beginStep(static_cast<double>(s));
        rec.set(ch, static_cast<double>(s));
        rec.endStep();
    }
    EXPECT_EQ(rec.rowCount(), 0u); // bucket still open
    rec.flush();
    ASSERT_EQ(rec.rowCount(), 2u); // the dusk tail is never dropped
    EXPECT_DOUBLE_EQ(rec.value(0, ch), 0.0);
    EXPECT_DOUBLE_EQ(rec.value(1, ch), 2.0);
    rec.flush(); // idempotent on an empty bucket
    EXPECT_EQ(rec.rowCount(), 2u);
}

TEST(Telemetry, UnsetChannelsAreNanAndRenderEmpty)
{
    TelemetryRecorder rec;
    const auto a = rec.channel("a", "W");
    const auto b = rec.channel("b");
    rec.beginStep(1.5);
    rec.set(a, 7.0);
    rec.endStep(); // b never set this step
    EXPECT_TRUE(std::isnan(rec.value(0, b)));

    std::ostringstream os;
    rec.writeCsv(os);
    EXPECT_EQ(os.str(), "time_min,a[W],b\n1.5,7,\n");
}

TEST(Telemetry, ConcatIndexesUnitsByVectorPosition)
{
    TelemetryRecorder u0, u2;
    for (auto *rec : {&u0, &u2}) {
        const auto ch = rec->channel("v");
        rec->beginStep(0.0);
        rec->set(ch, rec == &u0 ? 1.0 : 2.0);
        rec->endStep();
    }
    // A null slot (a resumed campaign unit) still advances the unit
    // column, so indices name grid positions.
    std::ostringstream os;
    TelemetryRecorder::writeCsvConcat({&u0, nullptr, &u2}, os);
    EXPECT_EQ(os.str(), "unit,time_min,v\n0,0,1\n2,0,2\n");
}

TEST(Telemetry, ClearKeepsChannelsDropsRows)
{
    TelemetryRecorder rec(2, TelemetryMode::EveryN);
    const auto ch = rec.channel("v");
    rec.beginStep(0.0);
    rec.set(ch, 1.0);
    rec.endStep();
    ASSERT_EQ(rec.rowCount(), 1u);
    rec.clear();
    EXPECT_EQ(rec.rowCount(), 0u);
    EXPECT_EQ(rec.stepCount(), 0u);
    EXPECT_EQ(rec.channelCount(), 1u);
    // Decimation restarts: step 0 after clear commits again.
    rec.beginStep(9.0);
    rec.set(ch, 3.0);
    rec.endStep();
    ASSERT_EQ(rec.rowCount(), 1u);
    EXPECT_DOUBLE_EQ(rec.rowTime(0), 9.0);
}

TEST(Telemetry, ParseModeTokens)
{
    TelemetryMode mode = TelemetryMode::EveryN;
    EXPECT_TRUE(parseTelemetryMode("minmax", mode));
    EXPECT_EQ(mode, TelemetryMode::MinMax);
    EXPECT_TRUE(parseTelemetryMode("every", mode));
    EXPECT_EQ(mode, TelemetryMode::EveryN);
    EXPECT_FALSE(parseTelemetryMode("sometimes", mode));
}

} // namespace
} // namespace solarcore::obs
