// Request-scoped span layer: staging buffers, the bounded sink,
// id generation and the JSONL/Perfetto exporters.

#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "obs/span.hpp"

using namespace solarcore;

namespace {

TEST(SpanIds, HexRoundTrip)
{
    for (const std::uint64_t id :
         {0ull, 1ull, 0xdeadbeefull, ~0ull, 0x0123456789abcdefull}) {
        const std::string hex = obs::spanIdHex(id);
        EXPECT_EQ(hex.size(), 16u);
        std::uint64_t back = 0;
        ASSERT_TRUE(obs::parseSpanIdHex(hex, back)) << hex;
        EXPECT_EQ(back, id);
    }
    std::uint64_t v = 0;
    EXPECT_TRUE(obs::parseSpanIdHex("ff", v));
    EXPECT_EQ(v, 0xffu);
    EXPECT_TRUE(obs::parseSpanIdHex("DEAD", v));
    EXPECT_EQ(v, 0xdeadu);
    EXPECT_FALSE(obs::parseSpanIdHex("", v));
    EXPECT_FALSE(obs::parseSpanIdHex("xyz", v));
    EXPECT_FALSE(obs::parseSpanIdHex("00112233445566778", v)); // 17
}

TEST(SpanIds, NewTraceIdsAreNonZeroAndDistinct)
{
    const std::uint64_t a = obs::newTraceId();
    const std::uint64_t b = obs::newTraceId();
    EXPECT_NE(a, 0u);
    EXPECT_NE(b, 0u);
    EXPECT_NE(a, b);
}

TEST(RequestTrace, InactiveIsNoOp)
{
    obs::RequestTrace rt;
    EXPECT_FALSE(rt.active());
    EXPECT_EQ(rt.openSpan("io.read"), obs::RequestTrace::kNoSpan);
    obs::SpanScope scope(&rt, "queue");
    EXPECT_EQ(scope.id(), 0u);
    scope.attr("k", std::int64_t{7}); // must not crash
    EXPECT_TRUE(rt.spans().empty());

    obs::SpanScope null_scope(nullptr, "x");
    EXPECT_EQ(null_scope.id(), 0u);
}

TEST(RequestTrace, SpanTreeAndAttrs)
{
    obs::RequestTrace rt;
    rt.begin(0x42);
    ASSERT_TRUE(rt.active());

    const std::size_t root = rt.openSpan("request");
    ASSERT_NE(root, obs::RequestTrace::kNoSpan);
    const std::uint64_t root_id = rt.spanId(root);
    EXPECT_NE(root_id, 0u);
    {
        obs::SpanScope unit(&rt, "unit", root_id);
        unit.attr("cache", "hit");
        unit.attr("nodes", std::int64_t{100});
        unit.attr("warm", true);
        unit.attr("score", 1.5);
        EXPECT_NE(unit.id(), 0u);
        EXPECT_NE(unit.id(), root_id);
    }
    rt.closeSpan(root);

    ASSERT_EQ(rt.spans().size(), 2u);
    const obs::SpanRecord &r = rt.spans()[0];
    const obs::SpanRecord &u = rt.spans()[1];
    EXPECT_STREQ(r.name, "request");
    EXPECT_EQ(r.parentId, 0u);
    EXPECT_EQ(u.parentId, root_id);
    EXPECT_EQ(u.traceId, 0x42u);
    EXPECT_GE(u.startNs, r.startNs);
    EXPECT_GT(r.endNs, 0);
    EXPECT_GE(r.endNs, u.endNs);
    ASSERT_EQ(u.attrCount, 4u);
    EXPECT_STREQ(u.attrs[0].key, "cache");
    EXPECT_STREQ(u.attrs[0].text, "hit");
    EXPECT_EQ(u.attrs[1].i, 100);
    EXPECT_EQ(u.attrs[2].kind, obs::SpanAttr::Kind::Bool);
    EXPECT_DOUBLE_EQ(u.attrs[3].d, 1.5);
}

TEST(RequestTrace, AttrOverflowIsDropped)
{
    obs::RequestTrace rt;
    rt.begin(1);
    const std::size_t idx = rt.openSpan("s");
    obs::SpanRecord *s = rt.span(idx);
    ASSERT_NE(s, nullptr);
    for (int i = 0; i < 10; ++i)
        s->attr("k", std::int64_t{i});
    EXPECT_EQ(s->attrCount, obs::kSpanMaxAttrs);
}

TEST(RequestTrace, BoundedBufferCountsDrops)
{
    obs::RequestTrace rt(2);
    rt.begin(7);
    EXPECT_NE(rt.openSpan("a"), obs::RequestTrace::kNoSpan);
    EXPECT_NE(rt.openSpan("b"), obs::RequestTrace::kNoSpan);
    EXPECT_EQ(rt.openSpan("c"), obs::RequestTrace::kNoSpan);
    EXPECT_EQ(rt.droppedSpans(), 1u);
    EXPECT_EQ(rt.spans().size(), 2u);
}

TEST(RequestTrace, NamesAndTextsAreTruncatedSafely)
{
    obs::RequestTrace rt;
    rt.begin(1);
    const std::string long_name(200, 'n');
    const std::size_t idx = rt.openSpan(long_name.c_str());
    obs::SpanRecord *s = rt.span(idx);
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(std::string(s->name).size(), obs::kSpanNameBytes - 1);
    s->attr("key-that-is-far-too-long-for-the-slot",
            std::string_view(std::string(200, 't')));
    EXPECT_EQ(std::string(s->attrs[0].key).size(),
              obs::kSpanAttrKeyBytes - 1);
    EXPECT_EQ(std::string(s->attrs[0].text).size(),
              obs::kSpanAttrTextBytes - 1);
}

TEST(RequestTrace, SaltSeparatesSpanIdsAcrossLanes)
{
    obs::RequestTrace a, b;
    a.begin(9);
    b.begin(9);
    b.setIdSalt(1);
    const std::size_t ia = a.openSpan("x");
    const std::size_t ib = b.openSpan("x");
    EXPECT_NE(a.spanId(ia), b.spanId(ib));
}

TEST(SpanSink, CommitMovesSpansAndCountsDrops)
{
    obs::SpanSink sink(3);
    obs::RequestTrace rt(8);
    rt.begin(5);
    rt.openSpan("a");
    rt.openSpan("b");
    sink.commit(rt);
    EXPECT_FALSE(rt.active());
    EXPECT_TRUE(rt.spans().empty());

    rt.begin(6);
    rt.openSpan("c");
    rt.openSpan("d");
    sink.commit(rt); // only one slot left: one span dropped
    const obs::SpanSinkCounters c = sink.counters();
    EXPECT_EQ(c.spans, 3u);
    EXPECT_EQ(c.committedTraces, 2u);
    EXPECT_EQ(c.committedSpans, 3u);
    EXPECT_EQ(c.droppedSpans, 1u);
    EXPECT_EQ(sink.snapshot().size(), 3u);
}

TEST(SpanSink, DiscardedRequestCommitsNothing)
{
    obs::SpanSink sink;
    obs::RequestTrace rt;
    rt.begin(5);
    rt.openSpan("a");
    rt.reset(); // sampling decision: drop
    sink.commit(rt);
    EXPECT_EQ(sink.counters().committedSpans, 0u);
}

TEST(SpanSink, ConcurrentCommitsAreSafe)
{
    obs::SpanSink sink(1u << 12);
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&sink, t]() {
            for (int i = 0; i < 64; ++i) {
                obs::RequestTrace rt;
                rt.begin(static_cast<std::uint64_t>(t * 1000 + i + 1));
                rt.openSpan("request");
                rt.openSpan("unit");
                sink.commit(rt);
            }
        });
    }
    for (auto &th : threads)
        th.join();
    EXPECT_EQ(sink.counters().committedSpans, 4u * 64u * 2u);
}

std::vector<obs::SpanRecord>
sampleSpans()
{
    obs::RequestTrace rt;
    rt.begin(0xabc);
    const std::size_t root = rt.openSpan("request");
    const std::uint64_t root_id = rt.spanId(root);
    {
        obs::SpanScope unit(&rt, "unit", root_id);
        unit.attr("cache", "miss");
        unit.attr("nodes", std::int64_t{42});
    }
    rt.closeSpan(root);
    return rt.spans();
}

TEST(SpanExport, JsonlHasSchemaAndSortedStableBytes)
{
    const auto spans = sampleSpans();
    std::ostringstream a, b;
    obs::exportSpansJsonl(spans, a);
    // Reversed input must produce identical bytes (sorted export).
    std::vector<obs::SpanRecord> reversed(spans.rbegin(), spans.rend());
    obs::exportSpansJsonl(reversed, b);
    EXPECT_EQ(a.str(), b.str());

    const std::string text = a.str();
    EXPECT_NE(text.find("\"schema\":\"solarcore-span-v1\""),
              std::string::npos);
    EXPECT_NE(text.find("\"trace\":\"0000000000000abc\""),
              std::string::npos);
    EXPECT_NE(text.find("\"name\":\"unit\""), std::string::npos);
    EXPECT_NE(text.find("\"cache\":\"miss\""), std::string::npos);
    EXPECT_NE(text.find("\"nodes\":42"), std::string::npos);
    // Two lines, each a complete object.
    EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
}

TEST(SpanExport, ChromeTraceHasTrackPerRequest)
{
    auto spans = sampleSpans();
    obs::RequestTrace rt;
    rt.begin(0xdef);
    rt.setLane(3);
    rt.openSpan("request");
    rt.closeSpan(0);
    spans.insert(spans.end(), rt.spans().begin(), rt.spans().end());

    std::ostringstream os;
    obs::exportSpansChromeTrace(spans, os);
    const std::string text = os.str();
    EXPECT_NE(text.find("\"name\":\"trace 0000000000000abc\""),
              std::string::npos);
    EXPECT_NE(text.find("\"name\":\"trace 0000000000000def\""),
              std::string::npos);
    EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(text.find("\"tid\":4"), std::string::npos); // lane 3
    EXPECT_NE(text.find("\"cache\":\"miss\""), std::string::npos);
}

TEST(SpanExport, WriteSpanExportsReportsBadPaths)
{
    std::string error;
    EXPECT_TRUE(obs::writeSpanExports(sampleSpans(), "", "", error));
    EXPECT_FALSE(obs::writeSpanExports(
        sampleSpans(), "/nonexistent-dir/spans.jsonl", "", error));
    EXPECT_FALSE(error.empty());
}

} // namespace
