/**
 * @file
 * Tests for the crash flight recorder. The fatal paths run in forked
 * children (a handler that exits the process cannot run in the test
 * process): the child installs the recorder, marks an in-flight unit
 * with a live trace ring, then dies -- via SC_FATAL (the strict-audit
 * path) or abort() (the signal path). The parent reaps it and parses
 * the published postmortem.json, checking the schema, the reason, the
 * named invariant and the in-flight unit key. The direct API tests
 * (explicit writePostmortem, reentry latch, uninstall) run in-process.
 */

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "campaign/golden.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"

namespace solarcore::obs {
namespace {

/** Run @p act in a forked child with stderr silenced; reap it. */
int
runInChild(const std::function<void()> &act)
{
    fflush(nullptr);
    const pid_t pid = fork();
    if (pid == 0) {
        // No gtest asserts in the child: its exit status and the file
        // it leaves behind are the only channels back to the parent.
        const int null = ::open("/dev/null", O_WRONLY);
        if (null >= 0) {
            ::dup2(null, 2);
            ::close(null);
        }
        act();
        _exit(0); // the act is expected to not return
    }
    int status = 0;
    EXPECT_EQ(::waitpid(pid, &status, 0), pid);
    return status;
}

/** Arm the recorder and mark one in-flight unit with trace events. */
void
armWithUnit(const std::string &out, TraceBuffer &trace)
{
    trace.setNow(421.0);
    TraceEvent e;
    e.kind = EventKind::ThermalThrottle;
    e.core = 2;
    e.v0 = 97.5;
    trace.emit(e);

    FlightRecorderConfig config;
    config.outputPath = out;
    FlightRecorder::install(config);
    FlightRecorder::setManifestPath("manifest-for-test.json");
    FlightRecorder::beginUnit("AZ-Jan-opt-HM2-s7", &trace);
}

campaign::FlatJson
parsePostmortem(const std::string &path)
{
    std::ifstream is(path);
    EXPECT_TRUE(is.good()) << "no postmortem at " << path;
    std::stringstream ss;
    ss << is.rdbuf();
    campaign::FlatJson doc;
    std::string error;
    EXPECT_TRUE(campaign::parseJsonFlat(ss.str(), doc, error)) << error;
    return doc;
}

TEST(FlightRecorder, StrictAuditFatalPublishesPostmortem)
{
    const std::string out =
        testing::TempDir() + "postmortem_fatal_test.json";
    std::remove(out.c_str());

    const int status = runInChild([&] {
        static TraceBuffer trace(64);
        armWithUnit(out, trace);
        SC_FATAL("strict audit: power balance violated");
    });
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 1); // SC_FATAL exits 1

    const auto doc = parsePostmortem(out);
    EXPECT_EQ(doc.at("schema").text, "solarcore-postmortem-v1");
    EXPECT_EQ(doc.at("reason").text, "fatal");
    // The failing invariant's message survives into the report.
    EXPECT_NE(doc.at("detail").text.find("power balance violated"),
              std::string::npos);
    EXPECT_EQ(doc.at("manifest").text, "manifest-for-test.json");
    EXPECT_EQ(doc.at("units.0.key").text, "AZ-Jan-opt-HM2-s7");
    // The trace tail carries the emitted event.
    EXPECT_DOUBLE_EQ(doc.at("units.0.trace.0.t_min").number, 421.0);
    EXPECT_DOUBLE_EQ(doc.at("units.0.trace.0.core").number, 2.0);
    std::remove(out.c_str());
}

TEST(FlightRecorder, AbortSignalPublishesPostmortem)
{
    const std::string out =
        testing::TempDir() + "postmortem_abort_test.json";
    std::remove(out.c_str());

    const int status = runInChild([&] {
        static TraceBuffer trace(64);
        armWithUnit(out, trace);
        std::abort();
    });
    ASSERT_TRUE(WIFSIGNALED(status));
    EXPECT_EQ(WTERMSIG(status), SIGABRT); // handler re-raises

    const auto doc = parsePostmortem(out);
    EXPECT_EQ(doc.at("schema").text, "solarcore-postmortem-v1");
    EXPECT_EQ(doc.at("reason").text, "signal");
    EXPECT_EQ(doc.at("detail").text, "SIGABRT");
    EXPECT_EQ(doc.at("units.0.key").text, "AZ-Jan-opt-HM2-s7");
    std::remove(out.c_str());
}

TEST(FlightRecorder, FinishedUnitsLeaveTheReport)
{
    const std::string out =
        testing::TempDir() + "postmortem_endunit_test.json";
    std::remove(out.c_str());

    const int status = runInChild([&] {
        static TraceBuffer trace(64);
        armWithUnit(out, trace);
        FlightRecorder::endUnit(); // the unit completed before the crash
        SC_FATAL("late failure");
    });
    ASSERT_TRUE(WIFEXITED(status));

    const auto doc = parsePostmortem(out);
    EXPECT_EQ(doc.find("units.0.key"), doc.end());
    std::remove(out.c_str());
}

TEST(FlightRecorder, ExplicitWriteAndReentryLatch)
{
    const std::string out =
        testing::TempDir() + "postmortem_latch_test.json";
    std::remove(out.c_str());

    FlightRecorderConfig config;
    config.outputPath = out;
    FlightRecorder::install(config);
    EXPECT_TRUE(FlightRecorder::installed());
    EXPECT_TRUE(FlightRecorder::writePostmortem("test", "first"));
    // Only the first writer wins; the latch drops the second report.
    EXPECT_FALSE(FlightRecorder::writePostmortem("test", "second"));

    const auto doc = parsePostmortem(out);
    EXPECT_EQ(doc.at("reason").text, "test");
    EXPECT_EQ(doc.at("detail").text, "first");

    FlightRecorder::uninstall();
    EXPECT_FALSE(FlightRecorder::installed());
    std::remove(out.c_str());
}

} // namespace
} // namespace solarcore::obs
