/**
 * @file
 * Tests for the binary stats-registry wire format the forked campaign
 * workers stream back to the parent: values survive bit-exactly,
 * decode has merge() semantics, formulas are reattached by name, and
 * malformed blobs fail instead of corrupting the registry.
 */

#include <cmath>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/stats_wire.hpp"

namespace solarcore::obs {
namespace {

StatsRegistry &
populate(StatsRegistry &reg)
{
    reg.scalar("day.steps", "steps simulated") += 1234.0;
    // A value with no short decimal form must cross the wire
    // bit-identically.
    reg.scalar("energy.solarWh").set(0.1 + 0.2);
    auto &lanes = reg.vector("chip.coreBusy", 4, "per-core busy");
    for (std::size_t i = 0; i < lanes.lanes(); ++i)
        lanes.lane(i) = 10.0 * static_cast<double>(i) + 0.5;
    auto &hist = reg.histogram("mpp.power", 0.0, 200.0, 8, "MPP watts");
    for (double x : {5.0, 42.0, 42.0, 199.0, 1000.0 /* clamps */})
        hist.add(x);
    reg.formula(
        "derived.sum",
        [](const StatsRegistry &r) {
            return r.value("day.steps") + r.value("energy.solarWh");
        },
        "example derived stat");
    return reg;
}

std::string
dumped(const StatsRegistry &reg)
{
    std::ostringstream os;
    reg.dumpJson(os);
    return os.str();
}

FormulaResolver
testResolver()
{
    return [](std::string_view name) -> FormulaStat::Fn {
        if (name == "derived.sum")
            return [](const StatsRegistry &r) {
                return r.value("day.steps") + r.value("energy.solarWh");
            };
        return nullptr;
    };
}

TEST(StatsWire, RoundTripIntoEmptyRegistryIsByteIdentical)
{
    StatsRegistry source;
    populate(source);

    StatsRegistry decoded;
    std::string error;
    ASSERT_TRUE(mergeSerializedRegistry(serializeRegistry(source),
                                        decoded, testResolver(), error))
        << error;
    // The JSON dump renders every stat with shortest-round-trip
    // formatting, so byte equality here means bit equality of every
    // scalar, lane, bin and the reattached formula's evaluation.
    EXPECT_EQ(dumped(decoded), dumped(source));
}

TEST(StatsWire, DecodeHasMergeSemantics)
{
    StatsRegistry worker;
    populate(worker);
    const std::string blob = serializeRegistry(worker);

    // Parent already holds its own shard's numbers.
    StatsRegistry parent;
    populate(parent);
    std::string error;
    ASSERT_TRUE(
        mergeSerializedRegistry(blob, parent, testResolver(), error))
        << error;

    // Reference: the same fold through the in-process merge().
    StatsRegistry a, b;
    populate(a);
    populate(b);
    a.merge(b);
    EXPECT_EQ(dumped(parent), dumped(a));
}

TEST(StatsWire, UnknownFormulaIsSkippedNotFatal)
{
    StatsRegistry source;
    populate(source);

    StatsRegistry decoded;
    std::string error;
    ASSERT_TRUE(mergeSerializedRegistry(serializeRegistry(source),
                                        decoded, nullptr, error))
        << error;
    EXPECT_EQ(decoded.find("derived.sum"), nullptr);
    // The carried counters still landed.
    EXPECT_EQ(decoded.value("day.steps"), 1234.0);
}

TEST(StatsWire, MalformedBlobsAreRejected)
{
    StatsRegistry source;
    populate(source);
    const std::string blob = serializeRegistry(source);

    StatsRegistry sink;
    std::string error;
    EXPECT_FALSE(mergeSerializedRegistry("", sink, nullptr, error));
    EXPECT_FALSE(error.empty());

    // Wrong version byte.
    std::string wrong_version = blob;
    wrong_version[0] = static_cast<char>(wrong_version[0] + 1);
    error.clear();
    EXPECT_FALSE(
        mergeSerializedRegistry(wrong_version, sink, nullptr, error));
    EXPECT_FALSE(error.empty());

    // Truncated mid-payload.
    error.clear();
    EXPECT_FALSE(mergeSerializedRegistry(
        std::string_view(blob).substr(0, blob.size() / 2), sink, nullptr,
        error));
    EXPECT_FALSE(error.empty());
}

TEST(StatsWire, VectorLaneWidthsGrowOnMerge)
{
    StatsRegistry narrow;
    narrow.vector("chip.coreBusy", 2).lane(1) = 7.0;

    StatsRegistry wide;
    auto &lanes = wide.vector("chip.coreBusy", 4);
    lanes.lane(3) = 3.0;

    std::string error;
    ASSERT_TRUE(mergeSerializedRegistry(serializeRegistry(wide), narrow,
                                        nullptr, error))
        << error;
    const auto &merged = narrow.vector("chip.coreBusy", 2);
    ASSERT_EQ(merged.lanes(), 4u);
    EXPECT_EQ(merged.lane(1), 7.0);
    EXPECT_EQ(merged.lane(3), 3.0);
}

} // namespace
} // namespace solarcore::obs
