/**
 * @file
 * Tests for the shared JSON emission helpers (obs/json.hpp): number
 * formatting round-trips, non-finite degradation to null, string
 * escaping of control characters, UTF-8 passthrough, and the
 * JsonObjectWriter comma discipline. Round-trip checks parse the
 * rendered text back through campaign::parseJsonFlat, the same reader
 * golden_check and solarcore_top use, so writer and reader stay
 * mutually consistent.
 */

#include <cmath>
#include <limits>
#include <sstream>

#include <gtest/gtest.h>

#include "campaign/golden.hpp"
#include "obs/json.hpp"

namespace solarcore::obs {
namespace {

TEST(Json, NumberShortestFormRoundTrips)
{
    EXPECT_EQ(jsonNumber(0.0), "0");
    EXPECT_EQ(jsonNumber(1.0), "1");
    EXPECT_EQ(jsonNumber(-2.5), "-2.5");
    EXPECT_EQ(jsonNumber(std::uint64_t{18446744073709551615ull}),
              "18446744073709551615");
    EXPECT_EQ(jsonNumber(std::int64_t{-42}), "-42");

    // Shortest-form output must parse back to the identical double.
    for (const double v : {0.1, 1.0 / 3.0, 6.02214076e23, 1e-300,
                           -123456.789, 3.14159265358979}) {
        const std::string text = jsonNumber(v);
        EXPECT_DOUBLE_EQ(std::strtod(text.c_str(), nullptr), v) << text;
    }
}

TEST(Json, NonFiniteBecomesNull)
{
    EXPECT_EQ(jsonNumber(std::numeric_limits<double>::quiet_NaN()),
              "null");
    EXPECT_EQ(jsonNumber(std::numeric_limits<double>::infinity()),
              "null");
    EXPECT_EQ(jsonNumber(-std::numeric_limits<double>::infinity()),
              "null");
}

TEST(Json, StringEscapesControlCharacters)
{
    EXPECT_EQ(jsonString("plain"), "\"plain\"");
    EXPECT_EQ(jsonString("a\"b"), "\"a\\\"b\"");
    EXPECT_EQ(jsonString("a\\b"), "\"a\\\\b\"");
    EXPECT_EQ(jsonString("a\nb\tc\rd"), "\"a\\nb\\tc\\rd\"");
    // Other control characters take the \u00XX form.
    EXPECT_EQ(jsonString(std::string_view("\x01\x1f", 2)),
              "\"\\u0001\\u001f\"");
}

TEST(Json, Utf8PassesThroughUnmolested)
{
    // Multibyte sequences have no bytes < 0x20, so they must survive
    // byte-for-byte ("\xc3\xa9" = e-acute, "\xe2\x98\x80" = sun).
    const std::string utf8 = "caf\xc3\xa9 \xe2\x98\x80";
    EXPECT_EQ(jsonString(utf8), "\"" + utf8 + "\"");
}

TEST(Json, RenderedDocumentParsesBack)
{
    std::ostringstream os;
    {
        JsonObjectWriter w(os);
        w.field("name", "unit \"A\"\n");
        w.field("value", 0.125);
        w.field("count", std::uint64_t{7});
        w.field("bad", std::numeric_limits<double>::quiet_NaN());
        w.field("utf8", "\xe2\x98\x80");
        w.field("flag", true);
    }
    campaign::FlatJson doc;
    std::string error;
    ASSERT_TRUE(campaign::parseJsonFlat(os.str(), doc, error)) << error;

    EXPECT_EQ(doc.at("name").text, "unit \"A\"\n");
    EXPECT_DOUBLE_EQ(doc.at("value").number, 0.125);
    EXPECT_DOUBLE_EQ(doc.at("count").number, 7.0);
    EXPECT_EQ(doc.at("bad").kind, campaign::JsonLeaf::Kind::Null);
    EXPECT_EQ(doc.at("utf8").text, "\xe2\x98\x80");
    EXPECT_EQ(doc.at("flag").kind, campaign::JsonLeaf::Kind::Bool);
}

TEST(Json, ObjectWriterCommaDiscipline)
{
    std::ostringstream empty;
    JsonObjectWriter(empty).close();
    EXPECT_EQ(empty.str(), "{}");

    std::ostringstream two;
    {
        JsonObjectWriter w(two);
        w.field("a", 1.0);
        w.raw("b", "[1,2]");
    }
    EXPECT_EQ(two.str(), "{\"a\":1,\"b\":[1,2]}");
}

} // namespace
} // namespace solarcore::obs
