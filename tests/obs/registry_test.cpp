/**
 * @file
 * Tests for the hierarchical stats registry: scoping, find-or-create
 * semantics, histogram binning, formula evaluation by operand lookup,
 * snapshot/reset, merge, and the JSON/CSV dumps.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "obs/stats_registry.hpp"

namespace solarcore::obs {
namespace {

TEST(StatsRegistry, ScalarFindOrCreateAccumulates)
{
    StatsRegistry reg;
    auto &a = reg.scalar("chip.steps", "notches moved");
    a += 3.0;
    ++a;
    // Second lookup under the same name returns the same stat.
    auto &b = reg.scalar("chip.steps");
    EXPECT_EQ(&a, &b);
    EXPECT_DOUBLE_EQ(b.value(), 4.0);
    EXPECT_EQ(reg.size(), 1u);
    EXPECT_DOUBLE_EQ(reg.value("chip.steps"), 4.0);
    EXPECT_DOUBLE_EQ(reg.value("no.such.stat"), 0.0);
}

TEST(StatsRegistry, TypeMismatchPanics)
{
    StatsRegistry reg;
    reg.scalar("x");
    EXPECT_DEATH(reg.vector("x", 4), "another type");
}

TEST(StatsRegistry, ScopeQualifiesHierarchicalNames)
{
    StatsRegistry reg;
    StatScope root(reg);
    StatScope chip = root.sub("chip");
    StatScope core3 = chip.sub("core3");
    EXPECT_EQ(core3.prefix(), "chip.core3");

    ++core3.scalar("dvfsTransitions");
    EXPECT_NE(reg.find("chip.core3.dvfsTransitions"), nullptr);
    EXPECT_DOUBLE_EQ(reg.value("chip.core3.dvfsTransitions"), 1.0);
}

TEST(StatsRegistry, VectorLanesAndTotal)
{
    StatsRegistry reg;
    auto &v = reg.vector("chip.core.dvfsTransitions", 4);
    v.lane(0) += 2.0;
    v.lane(3) += 5.0;
    EXPECT_DOUBLE_EQ(v.total(), 7.0);
    // value() of a vector is its total.
    EXPECT_DOUBLE_EQ(reg.value("chip.core.dvfsTransitions"), 7.0);
    // Re-registration with more lanes grows, never shrinks.
    auto &v2 = reg.vector("chip.core.dvfsTransitions", 6);
    EXPECT_EQ(&v, &v2);
    EXPECT_EQ(v2.lanes(), 6u);
    EXPECT_DOUBLE_EQ(v2.lane(3), 5.0);
}

TEST(StatsRegistry, HistogramBinsAndClamps)
{
    StatsRegistry reg;
    auto &h = reg.histogram("err", 0.0, 10.0, 5);
    h.add(0.0);   // bin 0
    h.add(1.99);  // bin 0
    h.add(2.0);   // bin 1
    h.add(9.99);  // bin 4
    h.add(-5.0);  // clamps to bin 0
    h.add(42.0);  // clamps to bin 4
    EXPECT_EQ(h.bin(0), 3u);
    EXPECT_EQ(h.bin(1), 1u);
    EXPECT_EQ(h.bin(2), 0u);
    EXPECT_EQ(h.bin(4), 2u);
    EXPECT_EQ(h.total(), 6u);
    EXPECT_DOUBLE_EQ(h.binLow(1), 2.0);
}

TEST(StatsRegistry, FormulaEvaluatesAgainstOwningRegistry)
{
    StatsRegistry reg;
    reg.scalar("hits") += 3.0;
    reg.scalar("misses") += 1.0;
    reg.formula("hitRate", [](const StatsRegistry &r) {
        const double n = r.value("hits") + r.value("misses");
        return n > 0.0 ? r.value("hits") / n : 0.0;
    });
    EXPECT_DOUBLE_EQ(reg.value("hitRate"), 0.75);
    // Operands are looked up at evaluation time, not captured.
    reg.scalar("misses") += 5.0;
    EXPECT_DOUBLE_EQ(reg.value("hitRate"), 3.0 / 9.0);
}

TEST(StatsRegistry, SnapshotFlattensAndResetZeroes)
{
    StatsRegistry reg;
    reg.scalar("a") += 2.0;
    auto &v = reg.vector("v", 2);
    v.lane(1) = 4.0;

    const auto snap = reg.snapshot();
    ASSERT_EQ(snap.size(), 3u); // a, v.0, v.1
    EXPECT_EQ(snap[0].first, "a");
    EXPECT_DOUBLE_EQ(snap[0].second, 2.0);
    EXPECT_EQ(snap[2].first, "v.1");
    EXPECT_DOUBLE_EQ(snap[2].second, 4.0);

    reg.resetAll();
    EXPECT_DOUBLE_EQ(reg.value("a"), 0.0);
    EXPECT_DOUBLE_EQ(reg.value("v"), 0.0);
}

TEST(StatsRegistry, MergeAddsAndCopiesFormulas)
{
    StatsRegistry a;
    a.scalar("hits") += 2.0;
    a.vector("lanes", 2).lane(0) += 1.0;
    a.histogram("h", 0.0, 4.0, 2).add(1.0);

    StatsRegistry b;
    b.scalar("hits") += 3.0;
    b.scalar("onlyInB") += 7.0;
    b.vector("lanes", 2).lane(1) += 2.0;
    b.histogram("h", 0.0, 4.0, 2).add(3.0);
    b.formula("rate", [](const StatsRegistry &r) {
        return r.value("hits") / 10.0;
    });

    a.merge(b);
    EXPECT_DOUBLE_EQ(a.value("hits"), 5.0);
    EXPECT_DOUBLE_EQ(a.value("onlyInB"), 7.0);
    EXPECT_DOUBLE_EQ(a.value("lanes"), 3.0);
    EXPECT_EQ(a.histogram("h", 0.0, 4.0, 2).bin(0), 1u);
    EXPECT_EQ(a.histogram("h", 0.0, 4.0, 2).bin(1), 1u);
    // The copied formula computes against the merged operands.
    EXPECT_DOUBLE_EQ(a.value("rate"), 0.5);
}

TEST(StatsRegistry, DumpJsonIsSortedAndStable)
{
    StatsRegistry reg;
    reg.scalar("b.scalar") += 1.5;
    reg.scalar("a.scalar") += 2.0;
    reg.vector("c.vector", 2).lane(0) = 1.0;

    std::ostringstream os;
    reg.dumpJson(os);
    EXPECT_EQ(os.str(),
              "{\"a.scalar\":2,\"b.scalar\":1.5,"
              "\"c.vector\":[1,0]}\n");
}

TEST(StatsRegistry, DumpCsvFlattensRows)
{
    StatsRegistry reg;
    reg.scalar("a") += 2.0;
    reg.vector("v", 2).lane(1) = 3.0;

    std::ostringstream os;
    reg.dumpCsv(os);
    EXPECT_EQ(os.str(), "stat,value\na,2\nv.0,0\nv.1,3\n");
}

} // namespace
} // namespace solarcore::obs
