/**
 * @file
 * Tests for the run-manifest sidecar records.
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/manifest.hpp"

namespace solarcore::obs {
namespace {

TEST(RunManifest, WriteJsonCarriesToolArgsConfigAndSeed)
{
    char a0[] = "solarcore_cli";
    char a1[] = "summary";
    char a2[] = "--site";
    char a3[] = "AZ";
    char *argv[] = {a0, a1, a2, a3};
    RunManifest m(4, argv);
    m.set("site", std::string("AZ"));
    m.set("budget_w", 40.5);
    m.set("days", std::uint64_t{31});
    m.setSeed(1234);

    std::ostringstream os;
    m.writeJson(os);
    const std::string out = os.str();

    EXPECT_EQ(out.rfind("{\"tool\":\"solarcore_cli\","
                        "\"args\":[\"summary\",\"--site\",\"AZ\"],",
                        0),
              0u);
    EXPECT_NE(out.find("\"seed\":1234"), std::string::npos);
    // Config keys render sorted, with typed JSON values.
    EXPECT_NE(out.find("\"config\":{\"budget_w\":40.5,\"days\":31,"
                       "\"site\":\"AZ\"}"),
              std::string::npos);
    EXPECT_NE(out.find("\"git_describe\":"), std::string::npos);
    EXPECT_NE(out.find("\"wall_seconds\":"), std::string::npos);
    EXPECT_NE(out.find("\"cpu_seconds\":"), std::string::npos);
    EXPECT_EQ(out.back(), '\n');
}

TEST(RunManifest, FinishIsIdempotent)
{
    RunManifest m("tool");
    m.finish();
    const double wall = m.wallSeconds();
    const double cpu = m.cpuSeconds();
    EXPECT_GE(wall, 0.0);
    EXPECT_GE(cpu, 0.0);
    // A later finish (or writeJson) must not restart the clocks.
    m.finish();
    EXPECT_EQ(m.wallSeconds(), wall);
    EXPECT_EQ(m.cpuSeconds(), cpu);
}

TEST(RunManifest, SetOverwritesExistingKey)
{
    RunManifest m("tool");
    m.set("month", std::string("Jan"));
    m.set("month", std::string("Jul"));
    std::ostringstream os;
    m.writeJson(os);
    EXPECT_NE(os.str().find("\"month\":\"Jul\""), std::string::npos);
    EXPECT_EQ(os.str().find("\"month\":\"Jan\""), std::string::npos);
}

TEST(RunManifest, WriteFileRoundTripsAndRejectsBadPath)
{
    RunManifest m("tool");
    const std::string path = ::testing::TempDir() + "manifest_test.json";
    ASSERT_TRUE(m.writeFile(path));
    std::ifstream is(path);
    std::string line;
    ASSERT_TRUE(std::getline(is, line));
    EXPECT_EQ(line.rfind("{\"tool\":\"tool\"", 0), 0u);
    is.close();
    std::remove(path.c_str());

    EXPECT_FALSE(m.writeFile("/nonexistent-dir/manifest.json"));
}

TEST(RunManifest, BuildGitDescribeIsNonEmpty)
{
    EXPECT_NE(std::string(buildGitDescribe()), "");
}

} // namespace
} // namespace solarcore::obs
