/**
 * @file
 * Tests for the scoped self-profiler: frame nesting, aggregation,
 * detached no-op behavior, histogram quantiles, the task-order merge
 * determinism contract, and the JSON/collapsed-stack dumps.
 */

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/profiler.hpp"

namespace solarcore::obs {
namespace {

/** Find a direct child node, or nullptr. */
const Profiler::Node *
child(const Profiler::Node &parent, const std::string &name)
{
    const auto it = parent.children.find(name);
    return it == parent.children.end() ? nullptr : it->second.get();
}

TEST(Profiler, NestedScopesBuildATree)
{
    Profiler prof;
    {
        Profiler::Attach attach(&prof);
        SC_PROFILE_SCOPE("day");
        for (int i = 0; i < 3; ++i) {
            SC_PROFILE_SCOPE("step");
            SC_PROFILE_SCOPE("solve");
        }
    }
    const auto *day = child(prof.root(), "day");
    ASSERT_NE(day, nullptr);
    EXPECT_EQ(day->count, 1u);
    const auto *step = child(*day, "step");
    ASSERT_NE(step, nullptr);
    EXPECT_EQ(step->count, 3u);
    const auto *solve = child(*step, "solve");
    ASSERT_NE(solve, nullptr);
    EXPECT_EQ(solve->count, 3u);
    // The same name under a different parent is a different node.
    EXPECT_EQ(child(prof.root(), "step"), nullptr);
    EXPECT_GE(day->totalNs, step->totalNs);
}

TEST(Profiler, DetachedScopeIsANoOp)
{
    ASSERT_EQ(Profiler::current(), nullptr);
    {
        SC_PROFILE_SCOPE("nobody-listens");
    }
    Profiler prof;
    EXPECT_EQ(prof.totalNs(), 0);
    EXPECT_TRUE(prof.root().children.empty());
}

TEST(Profiler, AttachRestoresThePreviousBinding)
{
    Profiler outer, inner;
    Profiler::Attach a(&outer);
    EXPECT_EQ(Profiler::current(), &outer);
    {
        Profiler::Attach b(&inner);
        EXPECT_EQ(Profiler::current(), &inner);
    }
    EXPECT_EQ(Profiler::current(), &outer);
}

TEST(Profiler, RecordAggregatesCountTotalMinMaxAndQuantiles)
{
    // Drive enter/exit directly with synthetic durations so the
    // aggregates are exact.
    Profiler prof;
    for (const std::int64_t ns : {100, 200, 400, 800}) {
        prof.enter("phase");
        prof.exit(ns);
    }
    const auto *node = child(prof.root(), "phase");
    ASSERT_NE(node, nullptr);
    EXPECT_EQ(node->count, 4u);
    EXPECT_EQ(node->totalNs, 1500);
    EXPECT_EQ(node->minNs, 100);
    EXPECT_EQ(node->maxNs, 800);
    EXPECT_EQ(prof.totalNs(), 1500);
    const double p50 = node->quantileNs(0.5);
    const double p99 = node->quantileNs(0.99);
    EXPECT_LE(p50, p99);
    EXPECT_GE(p50, 100.0);
    EXPECT_LE(p99, 2.0 * 800.0); // log2 bucket upper edge
}

TEST(Profiler, MergeIsIndependentOfHowWorkWasSplit)
{
    // The campaign contract: one profiler seeing all tasks and three
    // per-task profilers merged in task order describe the same tree.
    auto run_task = [](Profiler &prof, int task) {
        prof.enter("unit");
        prof.enter("solve");
        prof.exit(100 * (task + 1));
        prof.exit(100 * (task + 1) + 50);
    };

    Profiler lone;
    for (int task = 0; task < 3; ++task)
        run_task(lone, task);

    Profiler split[3];
    for (int task = 0; task < 3; ++task)
        run_task(split[task], task);
    Profiler merged;
    for (const auto &part : split)
        merged.merge(part);

    std::ostringstream a, b;
    lone.writeJson(a);
    merged.writeJson(b);
    EXPECT_EQ(a.str(), b.str());

    std::ostringstream ca, cb;
    lone.writeCollapsed(ca);
    merged.writeCollapsed(cb);
    EXPECT_EQ(ca.str(), cb.str());
}

TEST(Profiler, DumpsContainThePhasePaths)
{
    Profiler prof;
    prof.enter("day");
    prof.enter("step");
    prof.exit(2000);
    prof.exit(3000);

    std::ostringstream json;
    prof.writeJson(json);
    EXPECT_NE(json.str().find("\"day\""), std::string::npos);
    EXPECT_NE(json.str().find("\"step\""), std::string::npos);

    // Collapsed stacks credit self time: day spent 3000-2000 = 1 us
    // outside its child.
    std::ostringstream folded;
    prof.writeCollapsed(folded);
    EXPECT_NE(folded.str().find("day;step 2"), std::string::npos);
    EXPECT_NE(folded.str().find("day 1"), std::string::npos);
}

} // namespace
} // namespace solarcore::obs
