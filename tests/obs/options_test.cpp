/**
 * @file
 * Tests for the shared observability command-line flags.
 */

#include <gtest/gtest.h>

#include "obs/obs_options.hpp"

namespace solarcore::obs {
namespace {

TEST(ObsOptions, ConsumeRecognizesObservabilityFlags)
{
    ObsOptions o;
    EXPECT_FALSE(o.anyRequested());

    EXPECT_TRUE(o.consume("--stats-out=stats.json"));
    EXPECT_TRUE(o.consume("--trace-out=day.jsonl"));
    EXPECT_TRUE(o.consume("--trace-buffer=1024"));
    EXPECT_TRUE(o.consume("--manifest-out=run.json"));

    EXPECT_EQ(o.statsOut, "stats.json");
    EXPECT_EQ(o.traceOut, "day.jsonl");
    EXPECT_EQ(o.traceBufferCap, 1024u);
    EXPECT_EQ(o.manifestOut, "run.json");
    EXPECT_TRUE(o.statsRequested());
    EXPECT_TRUE(o.traceRequested());
    EXPECT_TRUE(o.anyRequested());
}

TEST(ObsOptions, ConsumeLeavesForeignFlagsAlone)
{
    ObsOptions o;
    EXPECT_FALSE(o.consume("--site"));
    EXPECT_FALSE(o.consume("AZ"));
    EXPECT_FALSE(o.consume("--threads=3"));
    EXPECT_FALSE(o.consume("--stats-out")); // value-less form unsupported
    EXPECT_FALSE(o.anyRequested());
}

} // namespace
} // namespace solarcore::obs
