/**
 * @file
 * Tests for the OpenMetrics exposition layer: name/label sanitizing,
 * writer output (HELP/TYPE, cumulative histogram buckets, _sum/_count,
 * `# EOF`), the registry and profiler mappings, the structural linter
 * (positive and negative cases), and the MetricsEndpoint scrape path
 * over a real ephemeral socket plus the atomic file snapshot.
 */

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics_export.hpp"
#include "obs/profiler.hpp"
#include "obs/stats_registry.hpp"

namespace solarcore::obs {
namespace {

std::vector<std::string>
lintErrors(const std::string &text)
{
    std::vector<std::string> errors;
    lintOpenMetrics(text, errors);
    return errors;
}

TEST(OpenMetricsName, SanitizesDottedNames)
{
    EXPECT_EQ(openMetricsName("pv.mppCache.hitRate"),
              "solarcore_pv_mppCache_hitRate");
    EXPECT_EQ(openMetricsName("chip.core-0/util %"),
              "solarcore_chip_core_0_util__");
}

TEST(OpenMetricsLabels, EscapeBackslashQuoteNewline)
{
    EXPECT_EQ(openMetricsEscapeLabel("a\\b\"c\nd"),
              "a\\\\b\\\"c\\nd");
    EXPECT_EQ(openMetricsEscapeHelp("line1\nline2\\x"),
              "line1\\nline2\\\\x");
}

TEST(OpenMetricsWriter, RendersGaugeCounterInfo)
{
    OpenMetricsWriter w;
    w.gauge("solarcore_x", "an x", 1.5);
    w.counter("solarcore_events", "events seen", 12);
    w.info("solarcore_build", "build info",
           {{"version", "1"}, {"mode", "Release"}});
    const std::string text = w.finish();

    EXPECT_NE(text.find("# HELP solarcore_x an x\n"), std::string::npos);
    EXPECT_NE(text.find("# TYPE solarcore_x gauge\n"), std::string::npos);
    EXPECT_NE(text.find("solarcore_x 1.5\n"), std::string::npos);
    EXPECT_NE(text.find("# TYPE solarcore_events counter\n"),
              std::string::npos);
    EXPECT_NE(text.find("solarcore_events_total 12\n"), std::string::npos);
    EXPECT_NE(text.find("solarcore_build_info{version=\"1\","
                        "mode=\"Release\"} 1\n"),
              std::string::npos);
    EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");
    EXPECT_TRUE(lintErrors(text).empty()) << lintErrors(text).front();
}

TEST(OpenMetricsWriter, HistogramBucketsAreCumulative)
{
    OpenMetricsWriter w;
    // Per-bin counts 3,2,5 under edges 1,2,4 => cumulative 3,5,10.
    w.histogram("solarcore_lat", "latency", {1.0, 2.0, 4.0}, {3, 2, 5},
                10, 17.5);
    const std::string text = w.finish();

    EXPECT_NE(text.find("solarcore_lat_bucket{le=\"1\"} 3\n"),
              std::string::npos);
    EXPECT_NE(text.find("solarcore_lat_bucket{le=\"2\"} 5\n"),
              std::string::npos);
    EXPECT_NE(text.find("solarcore_lat_bucket{le=\"4\"} 10\n"),
              std::string::npos);
    EXPECT_NE(text.find("solarcore_lat_bucket{le=\"+Inf\"} 10\n"),
              std::string::npos);
    EXPECT_NE(text.find("solarcore_lat_sum 17.5\n"), std::string::npos);
    EXPECT_NE(text.find("solarcore_lat_count 10\n"), std::string::npos);
    EXPECT_TRUE(lintErrors(text).empty()) << lintErrors(text).front();
}

TEST(OpenMetricsWriter, HistogramExemplarsRenderAndLintClean)
{
    MetricExemplar ex;
    ex.valid = true;
    ex.labels = {{"trace_id", "00000000deadbeef"}};
    ex.value = 1.5;
    ex.timestampSeconds = 1700000000.25;

    OpenMetricsWriter w;
    // Exemplars align with the bounds plus the trailing +Inf bucket;
    // invalid entries render a plain bucket line.
    w.histogram("solarcore_lat", "latency", {1.0, 2.0}, {3, 2}, 5, 6.5,
                {MetricExemplar{}, ex, MetricExemplar{}});
    const std::string text = w.finish();

    EXPECT_NE(text.find("solarcore_lat_bucket{le=\"1\"} 3\n"),
              std::string::npos);
    EXPECT_NE(
        text.find("solarcore_lat_bucket{le=\"2\"} 5 "
                  "# {trace_id=\"00000000deadbeef\"} 1.5 1700000000.25\n"),
        std::string::npos);
    EXPECT_TRUE(lintErrors(text).empty()) << lintErrors(text).front();

    // Timestamp <= 0 renders without the trailing timestamp field.
    ex.timestampSeconds = 0.0;
    OpenMetricsWriter w2;
    w2.histogram("solarcore_lat", "latency", {1.0}, {3}, 3, 1.0,
                 {ex, MetricExemplar{}});
    const std::string text2 = w2.finish();
    EXPECT_NE(
        text2.find("solarcore_lat_bucket{le=\"1\"} 3 "
                    "# {trace_id=\"00000000deadbeef\"} 1.5\n"),
        std::string::npos);
    EXPECT_TRUE(lintErrors(text2).empty()) << lintErrors(text2).front();
}

TEST(OpenMetricsLint, RejectsMalformedOrMisplacedExemplars)
{
    // Exemplar on a gauge sample: only histogram _bucket lines may
    // carry one.
    const auto onGauge = lintErrors("# HELP solarcore_x x\n"
                                    "# TYPE solarcore_x gauge\n"
                                    "solarcore_x 1 "
                                    "# {trace_id=\"ab\"} 1\n"
                                    "# EOF\n");
    ASSERT_FALSE(onGauge.empty());
    EXPECT_NE(onGauge.front().find("non-histogram"), std::string::npos);

    // Exemplar on a histogram _sum (still not a _bucket sample).
    EXPECT_FALSE(lintErrors("# TYPE solarcore_h histogram\n"
                            "solarcore_h_bucket{le=\"+Inf\"} 1\n"
                            "solarcore_h_sum 1 # {trace_id=\"ab\"} 1\n"
                            "solarcore_h_count 1\n"
                            "# EOF\n")
                     .empty());

    // Structural breakage inside the exemplar body.
    EXPECT_FALSE(lintErrors("# TYPE solarcore_h histogram\n"
                            "solarcore_h_bucket{le=\"+Inf\"} 1 "
                            "# {trace_id=} 1\n"
                            "solarcore_h_sum 1\n"
                            "solarcore_h_count 1\n"
                            "# EOF\n")
                     .empty());
    // Missing exemplar value after the label set.
    EXPECT_FALSE(lintErrors("# TYPE solarcore_h histogram\n"
                            "solarcore_h_bucket{le=\"+Inf\"} 1 "
                            "# {trace_id=\"ab\"}\n"
                            "solarcore_h_sum 1\n"
                            "solarcore_h_count 1\n"
                            "# EOF\n")
                     .empty());
    // Exemplar label set over the 128-char spec cap.
    const std::string longValue(150, 'x');
    EXPECT_FALSE(lintErrors("# TYPE solarcore_h histogram\n"
                            "solarcore_h_bucket{le=\"+Inf\"} 1 "
                            "# {trace_id=\"" + longValue + "\"} 1\n"
                            "solarcore_h_sum 1\n"
                            "solarcore_h_count 1\n"
                            "# EOF\n")
                     .empty());

    // A well-formed bucket exemplar is accepted.
    EXPECT_TRUE(lintErrors("# HELP solarcore_h h\n"
                           "# TYPE solarcore_h histogram\n"
                           "solarcore_h_bucket{le=\"+Inf\"} 1 "
                           "# {trace_id=\"ab\"} 0.5 1700000000\n"
                           "solarcore_h_sum 1\n"
                           "solarcore_h_count 1\n"
                           "# EOF\n")
                    .empty());
}

TEST(OpenMetricsWriter, RegistryMappingLintsClean)
{
    StatsRegistry reg;
    reg.scalar("pv.solves", "MPP solves") += 41.0;
    auto &v = reg.vector("chip.core.busy", 3, "per-core busy");
    v.lane(1) += 2.0;
    auto &h = reg.histogram("pv.iter", 0.0, 64.0, 8, "solver iterations");
    h.add(3.0);
    h.add(9.0);
    h.add(1000.0); // clamps into the last bin => folded into +Inf
    reg.formula(
        "pv.rate", [](const StatsRegistry &r) { return r.value("pv.solves"); },
        "derived");

    OpenMetricsWriter w;
    appendRegistry(w, reg);
    const std::string text = w.finish();

    EXPECT_NE(text.find("solarcore_pv_solves 41\n"), std::string::npos);
    EXPECT_NE(text.find("solarcore_chip_core_busy{lane=\"1\"} 2\n"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE solarcore_pv_iter histogram\n"),
              std::string::npos);
    EXPECT_NE(text.find("solarcore_pv_iter_count 3\n"), std::string::npos);
    EXPECT_NE(text.find("solarcore_pv_rate 41\n"), std::string::npos);
    EXPECT_TRUE(lintErrors(text).empty()) << lintErrors(text).front();
}

TEST(OpenMetricsWriter, ProfilerMappingLintsClean)
{
    Profiler profiler;
    {
        Profiler::Attach attach(&profiler);
        ProfileScope day("day");
        ProfileScope step("step");
    }
    OpenMetricsWriter w;
    appendProfiler(w, profiler);
    const std::string text = w.finish();

    EXPECT_NE(text.find("solarcore_profile_scope_us"), std::string::npos);
    EXPECT_NE(text.find("scope=\"day\""), std::string::npos);
    EXPECT_NE(text.find("scope=\"day;step\""), std::string::npos);
    EXPECT_TRUE(lintErrors(text).empty()) << lintErrors(text).front();
}

TEST(OpenMetricsLint, CatchesStructuralProblems)
{
    // Missing the terminating # EOF.
    EXPECT_FALSE(lintErrors("# TYPE solarcore_x gauge\n"
                            "solarcore_x 1\n")
                     .empty());
    // Counter samples must use the _total suffix.
    EXPECT_FALSE(lintErrors("# TYPE solarcore_c counter\n"
                            "solarcore_c 1\n"
                            "# EOF\n")
                     .empty());
    // Histogram buckets must be monotone non-decreasing.
    EXPECT_FALSE(lintErrors("# TYPE solarcore_h histogram\n"
                            "solarcore_h_bucket{le=\"1\"} 5\n"
                            "solarcore_h_bucket{le=\"2\"} 3\n"
                            "solarcore_h_bucket{le=\"+Inf\"} 5\n"
                            "solarcore_h_sum 1\n"
                            "solarcore_h_count 5\n"
                            "# EOF\n")
                     .empty());
    // +Inf bucket must equal _count.
    EXPECT_FALSE(lintErrors("# TYPE solarcore_h histogram\n"
                            "solarcore_h_bucket{le=\"+Inf\"} 5\n"
                            "solarcore_h_sum 1\n"
                            "solarcore_h_count 7\n"
                            "# EOF\n")
                     .empty());
    // Duplicate TYPE for one family.
    EXPECT_FALSE(lintErrors("# TYPE solarcore_x gauge\n"
                            "solarcore_x 1\n"
                            "# TYPE solarcore_x gauge\n"
                            "solarcore_x 2\n"
                            "# EOF\n")
                     .empty());
    // Bad metric name.
    EXPECT_FALSE(lintErrors("9bad-name 1\n# EOF\n").empty());
}

/** One plain HTTP GET against 127.0.0.1:port; returns the response. */
std::string
httpGet(int port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    const char request[] = "GET /metrics HTTP/1.0\r\n\r\n";
    EXPECT_GT(::send(fd, request, sizeof(request) - 1, 0), 0);
    std::string response;
    char buf[1024];
    for (;;) {
        const auto n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0)
            break;
        response.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return response;
}

TEST(MetricsEndpoint, ServesLatestPayloadOnEphemeralPort)
{
    MetricsEndpoint endpoint;
    ASSERT_TRUE(endpoint.start(0));
    ASSERT_GT(endpoint.port(), 0);

    endpoint.update("# TYPE solarcore_x gauge\nsolarcore_x 1\n# EOF\n");
    std::string response = httpGet(endpoint.port());
    EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
    EXPECT_NE(response.find("application/openmetrics-text"),
              std::string::npos);
    EXPECT_NE(response.find("solarcore_x 1\n"), std::string::npos);

    // A later update is what the next scrape sees.
    endpoint.update("# TYPE solarcore_x gauge\nsolarcore_x 2\n# EOF\n");
    response = httpGet(endpoint.port());
    EXPECT_NE(response.find("solarcore_x 2\n"), std::string::npos);
    endpoint.stop();
}

TEST(MetricsEndpoint, WriteSnapshotIsAtomicAndComplete)
{
    MetricsEndpoint endpoint; // no server needed for the file path
    const std::string payload =
        "# TYPE solarcore_x gauge\nsolarcore_x 3\n# EOF\n";
    endpoint.update(payload);

    const std::string path =
        testing::TempDir() + "metrics_snapshot_test.prom";
    ASSERT_TRUE(endpoint.writeSnapshot(path));
    std::ifstream is(path);
    std::stringstream ss;
    ss << is.rdbuf();
    EXPECT_EQ(ss.str(), payload);
    // The temporary staging file must not linger.
    EXPECT_FALSE(std::ifstream(path + ".tmp").good());
    std::remove(path.c_str());
}

} // namespace
} // namespace solarcore::obs
