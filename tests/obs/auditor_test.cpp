/**
 * @file
 * Tests for the runtime invariant auditor: true positives fire, values
 * within tolerance do not (the false-positive guard the strict CI gate
 * depends on), counters fold into stats, violations reach the trace,
 * merge follows the task-order contract, and strict mode is fatal.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "obs/auditor.hpp"
#include "obs/stats_registry.hpp"
#include "obs/trace.hpp"

namespace solarcore::obs {
namespace {

TEST(Auditor, BudgetOvershootFiresAndKeepsContext)
{
    Auditor audit; // counting mode
    audit.setNow(612.5);
    EXPECT_FALSE(audit.checkBudget(100.0, 50.0, "solar period"));
    EXPECT_EQ(audit.violationCount(), 1u);
    EXPECT_EQ(audit.count(AuditCheck::BudgetOvershoot), 1u);
    ASSERT_EQ(audit.details().size(), 1u);
    const auto &d = audit.details().front();
    EXPECT_EQ(d.check, AuditCheck::BudgetOvershoot);
    EXPECT_DOUBLE_EQ(d.timeMin, 612.5);
    EXPECT_DOUBLE_EQ(d.measured, 100.0);
    EXPECT_EQ(d.context, "solar period");
}

TEST(Auditor, WithinToleranceDoesNotFire)
{
    // The false-positive guard: a draw just inside the 2% + 0.5 W
    // headroom (controller overshoot within its enforcement margin)
    // must not trip the audit, or --audit=strict would kill clean runs.
    Auditor audit;
    EXPECT_TRUE(audit.checkBudget(51.4, 50.0, "within headroom"));
    EXPECT_FALSE(audit.checkBudget(51.6, 50.0, "past headroom"));
    EXPECT_TRUE(audit.checkRailVoltage(12.5, 12.0, "4.2% off"));
    EXPECT_FALSE(audit.checkRailVoltage(12.7, 12.0, "5.8% off"));
    EXPECT_TRUE(audit.checkSocRange(0.0, "empty"));
    EXPECT_TRUE(audit.checkSocRange(1.0, "full"));
    EXPECT_FALSE(audit.checkSocRange(1.001, "overfull"));
    EXPECT_EQ(audit.violationCount(), 3u);
}

TEST(Auditor, EnergyBalanceCatchesALeakyLedger)
{
    Auditor audit;
    // Exact closure and tiny numeric residue pass...
    EXPECT_TRUE(
        audit.checkEnergyBalance(100.0, 40.0, 50.0, 10.0, "closed"));
    EXPECT_TRUE(audit.checkEnergyBalance(100.0, 40.0, 50.0, 10.5,
                                         "0.5% residue"));
    // ...but a 5% leak (energy created or silently dropped) fires.
    EXPECT_FALSE(
        audit.checkEnergyBalance(100.0, 40.0, 50.0, 5.0, "leak"));
    EXPECT_EQ(audit.count(AuditCheck::EnergyBalance), 1u);
}

TEST(Auditor, PanelPointComparesAgainstCurveAtScale)
{
    Auditor audit;
    // 0.5% of Isc off the curve: fine. 5%: the solved operating point
    // is not on the panel's I-V curve.
    EXPECT_TRUE(audit.checkPanelPoint(4.02, 4.0, 5.0, "on curve"));
    EXPECT_FALSE(audit.checkPanelPoint(4.25, 4.0, 5.0, "off curve"));
    EXPECT_EQ(audit.count(AuditCheck::PanelOperatingPoint), 1u);
}

TEST(Auditor, DvfsLegalityCoversGatingAndLevelRange)
{
    Auditor audit;
    EXPECT_TRUE(audit.checkDvfsLegality(0, 3, 0, 9, false, true, "ok"));
    EXPECT_TRUE(
        audit.checkDvfsLegality(1, 0, 0, 9, true, true, "gated ok"));
    // A gated core while PCPG is disabled is illegal...
    EXPECT_FALSE(audit.checkDvfsLegality(2, 0, 0, 9, true, false,
                                         "gated w/o pcpg"));
    // ...as is a level outside the DVFS table.
    EXPECT_FALSE(
        audit.checkDvfsLegality(3, 12, 0, 9, false, true, "level 12"));
    EXPECT_EQ(audit.count(AuditCheck::DvfsLegality), 2u);
    EXPECT_EQ(audit.details()[0].core, 2);
    EXPECT_EQ(audit.details()[1].core, 3);
}

TEST(Auditor, FoldIntoEmitsAuditStats)
{
    Auditor audit;
    audit.countStep();
    audit.countStep();
    audit.checkBudget(100.0, 50.0, "x");
    StatsRegistry reg;
    audit.foldInto(reg);
    EXPECT_DOUBLE_EQ(reg.value("audit.violations"), 1.0);
    EXPECT_DOUBLE_EQ(reg.value("audit.stepsAudited"), 2.0);
    EXPECT_DOUBLE_EQ(reg.value("audit.budgetOvershoot"), 1.0);
    EXPECT_DOUBLE_EQ(reg.value("audit.railVoltage"), 0.0);
}

TEST(Auditor, ViolationsEmitTraceEvents)
{
    TraceBuffer trace(16);
    trace.setNow(430.0);
    Auditor audit;
    audit.setTrace(&trace);
    audit.checkSocRange(-0.2, "drained below empty");
    const auto events = trace.events();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].kind, EventKind::AuditViolation);
    EXPECT_EQ(events[0].arg0,
              static_cast<std::uint8_t>(AuditCheck::SocRange));
    EXPECT_DOUBLE_EQ(events[0].v0, -0.2);
}

TEST(Auditor, MergeAddsCountsAndCapsDetails)
{
    AuditorConfig cfg;
    cfg.maxDetails = 3;
    Auditor a(cfg), b(cfg);
    a.countStep();
    a.checkBudget(100.0, 50.0, "a0");
    a.checkBudget(101.0, 50.0, "a1");
    b.countStep();
    b.checkRailVoltage(15.0, 12.0, "b0");
    b.checkRailVoltage(16.0, 12.0, "b1");
    a.merge(b);
    EXPECT_EQ(a.violationCount(), 4u);
    EXPECT_EQ(a.stepsAudited(), 2u);
    EXPECT_EQ(a.count(AuditCheck::BudgetOvershoot), 2u);
    EXPECT_EQ(a.count(AuditCheck::RailVoltage), 2u);
    ASSERT_EQ(a.details().size(), 3u); // capped at maxDetails
    EXPECT_EQ(a.details()[2].context, "b0");
}

TEST(Auditor, JsonReportListsChecksAndDetails)
{
    Auditor audit;
    audit.countStep();
    audit.setNow(615.0);
    audit.checkBudget(80.0, 50.0, "overshoot");
    std::ostringstream os;
    audit.writeJson(os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"solarcore-audit-v1\""), std::string::npos);
    EXPECT_NE(json.find("\"violations\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"budgetOvershoot\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"context\": \"overshoot\""), std::string::npos);
}

TEST(AuditorDeath, StrictModeAbortsOnFirstViolation)
{
    AuditorConfig cfg;
    cfg.mode = AuditMode::Strict;
    Auditor audit(cfg);
    EXPECT_TRUE(audit.checkBudget(50.0, 50.0, "fine"));
    EXPECT_DEATH(audit.checkBudget(100.0, 50.0, "boom"),
                 "audit\\[strict\\]: budgetOvershoot");
}

TEST(Auditor, ParseModeTokens)
{
    AuditMode mode = AuditMode::Off;
    EXPECT_TRUE(parseAuditMode("count", mode));
    EXPECT_EQ(mode, AuditMode::Count);
    EXPECT_TRUE(parseAuditMode("strict", mode));
    EXPECT_EQ(mode, AuditMode::Strict);
    EXPECT_TRUE(parseAuditMode("off", mode));
    EXPECT_EQ(mode, AuditMode::Off);
    EXPECT_FALSE(parseAuditMode("lenient", mode));
}

} // namespace
} // namespace solarcore::obs
