/**
 * @file
 * Tests for the golden-baseline oracle: flat JSON parsing and the
 * tolerance-aware diff, including the "a 1% drift must fail under the
 * default tolerance" guarantee the CI gate depends on.
 */

#include <string>

#include <gtest/gtest.h>

#include "campaign/golden.hpp"

namespace solarcore::campaign {
namespace {

FlatJson
parsed(const std::string &text)
{
    FlatJson out;
    std::string error;
    EXPECT_TRUE(parseJsonFlat(text, out, error)) << error;
    return out;
}

TEST(GoldenParse, FlattensNestedObjectsAndArrays)
{
    const auto flat = parsed(R"({
        "schema": "v1",
        "grid": {"dt_seconds": 30, "sites": "AZ,CO"},
        "units": [
            {"key": "a", "utilization": 0.75},
            {"key": "b", "utilization": 0.5}
        ],
        "empty_obj": {},
        "empty_arr": [],
        "flags": [true, false, null]
    })");
    ASSERT_EQ(flat.count("schema"), 1u);
    EXPECT_EQ(flat.at("schema").kind, JsonLeaf::Kind::String);
    EXPECT_EQ(flat.at("schema").text, "v1");
    EXPECT_EQ(flat.at("grid.dt_seconds").number, 30.0);
    EXPECT_EQ(flat.at("units.0.key").text, "a");
    EXPECT_EQ(flat.at("units.1.utilization").number, 0.5);
    EXPECT_TRUE(flat.at("flags.0").boolean);
    EXPECT_EQ(flat.at("flags.2").kind, JsonLeaf::Kind::Null);
    // Empty containers contribute no leaves.
    EXPECT_EQ(flat.count("empty_obj"), 0u);
    EXPECT_EQ(flat.count("empty_arr"), 0u);
}

TEST(GoldenParse, HandlesEscapesAndScientificNumbers)
{
    const auto flat = parsed(
        R"({"s": "a\"b\\c\nd", "tiny": 1.23e-7, "neg": -4.5E+2})");
    EXPECT_EQ(flat.at("s").text, "a\"b\\c\nd");
    EXPECT_DOUBLE_EQ(flat.at("tiny").number, 1.23e-7);
    EXPECT_DOUBLE_EQ(flat.at("neg").number, -450.0);
}

TEST(GoldenParse, RejectsMalformedInput)
{
    FlatJson out;
    std::string error;
    for (const char *bad :
         {"", "{", "{\"a\":}", "{\"a\" 1}", "[1,]", "{\"a\":1} trailing",
          "{\"a\":+-3}", "{'a':1}"}) {
        EXPECT_FALSE(parseJsonFlat(bad, out, error)) << bad;
        EXPECT_FALSE(error.empty()) << bad;
        EXPECT_TRUE(out.empty()) << bad;
    }
}

TEST(GoldenDiffTest, IdenticalDocumentsMatch)
{
    const auto doc = parsed(R"({"a": 1.5, "b": {"c": "x"}})");
    EXPECT_TRUE(compareFlat(doc, doc, {}).empty());
}

TEST(GoldenDiffTest, OnePercentDriftFailsDefaultTolerance)
{
    // The CI acceptance rule: perturbing any summary field by 1% must
    // trip the default tolerance (rtol 5e-4).
    const auto golden = parsed(R"({"aggregate": {"solarEnergyWh": 250}})");
    const auto candidate =
        parsed(R"({"aggregate": {"solarEnergyWh": 252.5}})");
    const auto diffs = compareFlat(golden, candidate, {});
    ASSERT_EQ(diffs.size(), 1u);
    EXPECT_EQ(diffs[0].path, "aggregate.solarEnergyWh");
    EXPECT_EQ(diffs[0].kind, GoldenDiff::Kind::Mismatch);
    EXPECT_NEAR(diffs[0].relError, 0.01, 1e-12);
}

TEST(GoldenDiffTest, TinyFloatNoiseIsTolerated)
{
    const auto golden = parsed(R"({"x": 250.0, "zero": 0.0})");
    const auto candidate =
        parsed(R"({"x": 250.00000001, "zero": 0.0})");
    EXPECT_TRUE(compareFlat(golden, candidate, {}).empty());
}

TEST(GoldenDiffTest, ZeroGoldenRequiresAtolToPass)
{
    const auto golden = parsed(R"({"x": 0})");
    const auto candidate = parsed(R"({"x": 0.5})");
    // rtol alone cannot pass a nonzero candidate against a zero golden.
    EXPECT_EQ(compareFlat(golden, candidate, {}).size(), 1u);
    ToleranceSpec loose;
    loose.fallback.atol = 1.0;
    EXPECT_TRUE(compareFlat(golden, candidate, loose).empty());
}

TEST(GoldenDiffTest, OverridesMatchBySubstringFirstWins)
{
    const auto golden = parsed(R"({"units": {"retracks": 100}})");
    const auto candidate = parsed(R"({"units": {"retracks": 104}})");
    EXPECT_EQ(compareFlat(golden, candidate, {}).size(), 1u);

    ToleranceSpec spec;
    spec.overrides.push_back({"retracks", {0.05, 2.0}});
    EXPECT_TRUE(compareFlat(golden, candidate, spec).empty());

    // A more specific earlier override shadows the later one.
    ToleranceSpec strict;
    strict.overrides.push_back({"units.retracks", {0.0, 0.0}});
    strict.overrides.push_back({"retracks", {0.05, 2.0}});
    EXPECT_EQ(compareFlat(golden, candidate, strict).size(), 1u);
}

TEST(GoldenDiffTest, MissingExtraAndKindChangesAreReported)
{
    const auto golden = parsed(R"({"a": 1, "b": 2, "s": "x"})");
    const auto candidate = parsed(R"({"a": 1, "c": 3, "s": 7})");
    const auto diffs = compareFlat(golden, candidate, {});
    ASSERT_EQ(diffs.size(), 3u);

    int missing = 0, extra = 0, mismatch = 0;
    for (const auto &d : diffs) {
        if (d.kind == GoldenDiff::Kind::MissingInCandidate) {
            ++missing;
            EXPECT_EQ(d.path, "b");
        } else if (d.kind == GoldenDiff::Kind::ExtraInCandidate) {
            ++extra;
            EXPECT_EQ(d.path, "c");
        } else {
            ++mismatch;
            EXPECT_EQ(d.path, "s"); // string -> number kind change
        }
    }
    EXPECT_EQ(missing, 1);
    EXPECT_EQ(extra, 1);
    EXPECT_EQ(mismatch, 1);
}

TEST(GoldenDiffTest, IgnoredPathsAreSkippedEntirely)
{
    const auto golden = parsed(R"({"a": 1, "meta": {"host": "x"}})");
    const auto candidate = parsed(R"({"a": 1, "meta": {"host": "y"}})");
    ToleranceSpec spec;
    spec.ignored.push_back("meta.");
    EXPECT_TRUE(compareFlat(golden, candidate, spec).empty());
}

TEST(GoldenDiffTest, StringAndBoolCompareExactly)
{
    const auto golden = parsed(R"({"s": "opt", "b": true})");
    const auto candidate = parsed(R"({"s": "rr", "b": false})");
    EXPECT_EQ(compareFlat(golden, candidate, {}).size(), 2u);
    EXPECT_TRUE(compareFlat(golden, golden, {}).empty());
}

} // namespace
} // namespace solarcore::campaign
