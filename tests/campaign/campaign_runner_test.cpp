/**
 * @file
 * End-to-end tests for the sharded campaign runner: summary JSON is
 * byte-identical at any thread count, an interrupted campaign resumes
 * from its journal to the exact same bytes, and the emitted document
 * is well-formed against the golden parser.
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "campaign/campaign.hpp"
#include "campaign/golden.hpp"
#include "campaign/journal.hpp"

namespace solarcore::campaign {
namespace {

/** A cheap grid: coarse steps, but every policy family represented. */
ScenarioGrid
testGrid()
{
    ScenarioGrid grid;
    grid.sites = {solar::SiteId::AZ, solar::SiteId::NC};
    grid.months = {solar::Month::Jan};
    grid.policies = {CampaignPolicy::MpptOpt, CampaignPolicy::FixedPower,
                     CampaignPolicy::Battery};
    grid.workloads = {workload::WorkloadId::HM2};
    grid.seeds = {1};
    grid.dtSeconds = 120.0;
    return grid;
}

std::string
summaryFor(const ScenarioGrid &grid, const CampaignOptions &options)
{
    const auto outcome = runCampaign(grid, options);
    std::ostringstream os;
    writeSummaryJson(os, grid, outcome);
    return os.str();
}

std::string
tempPath(const char *tag)
{
    return ::testing::TempDir() + "campaign_runner_" + tag + "_" +
        ::testing::UnitTest::GetInstance()->current_test_info()->name() +
        ".journal";
}

TEST(CampaignRunner, SummaryIsByteIdenticalAcrossThreadCounts)
{
    const auto grid = testGrid();
    CampaignOptions one;
    one.threads = 1;
    const std::string seq = summaryFor(grid, one);
    ASSERT_FALSE(seq.empty());

    for (int threads : {2, 4, 8}) {
        CampaignOptions opt;
        opt.threads = threads;
        EXPECT_EQ(summaryFor(grid, opt), seq) << "threads=" << threads;
    }
    // And the auto-detected pool too.
    CampaignOptions autodetect;
    autodetect.threads = 0;
    EXPECT_EQ(summaryFor(grid, autodetect), seq);
}

TEST(CampaignRunner, RunUnitIsDeterministicPerUnit)
{
    const auto grid = testGrid();
    const auto units = expandGrid(grid);
    for (const auto &unit : units) {
        const UnitMetrics a = runUnit(unit, grid);
        const UnitMetrics b = runUnit(unit, grid);
        for (const auto &field : metricFields())
            EXPECT_EQ(a.*(field.member), b.*(field.member))
                << unitKey(unit) << "." << field.name;
    }
}

TEST(CampaignRunner, ResumedCampaignReproducesUninterruptedSummary)
{
    const auto grid = testGrid();
    const std::string journal_path = tempPath("resume");
    std::remove(journal_path.c_str());

    CampaignOptions options;
    options.threads = 2;
    options.journalPath = journal_path;
    const std::string full = summaryFor(grid, options);

    // "Kill" the campaign after four units: keep the header plus four
    // metric records and drop the rest, leaving a torn half-line at
    // the end as a crash would. The journal also carries one heartbeat
    // comment per unit; keep one so the reload's comment-skipping is
    // exercised too.
    std::string header, heartbeat;
    std::vector<std::string> records;
    {
        std::ifstream in(journal_path);
        std::string line;
        ASSERT_TRUE(std::getline(in, header));
        while (std::getline(in, line)) {
            if (!line.empty() && line[0] == '#')
                heartbeat = line;
            else
                records.push_back(line);
        }
    }
    ASSERT_EQ(records.size(), grid.unitCount());
    ASSERT_FALSE(heartbeat.empty());
    {
        std::ofstream out(journal_path, std::ios::trunc);
        out << header << '\n' << heartbeat << '\n';
        for (std::size_t i = 0; i < 4; ++i)
            out << records[i] << '\n';
        out << records[4].substr(0, records[4].size() / 2); // torn write
    }

    CampaignOptions resume = options;
    resume.resume = true;
    const auto outcome = runCampaign(grid, resume);
    EXPECT_EQ(outcome.unitsResumed, 4);
    EXPECT_EQ(outcome.unitsRun,
              static_cast<int>(grid.unitCount()) - 4);
    std::ostringstream os;
    writeSummaryJson(os, grid, outcome);
    EXPECT_EQ(os.str(), full);

    // After the resumed run the journal is complete: a second resume
    // recomputes nothing.
    CampaignOptions again = options;
    again.resume = true;
    const auto noop = runCampaign(grid, again);
    EXPECT_EQ(noop.unitsResumed, static_cast<int>(grid.unitCount()));
    EXPECT_EQ(noop.unitsRun, 0);
    std::remove(journal_path.c_str());
}

TEST(CampaignRunner, JournalFromDifferentGridIsIgnored)
{
    const auto grid = testGrid();
    const std::string journal_path = tempPath("mismatch");
    std::remove(journal_path.c_str());

    CampaignOptions options;
    options.threads = 1;
    options.journalPath = journal_path;
    summaryFor(grid, options);

    // Same journal path, different grid: nothing may be resumed.
    auto other = grid;
    other.dtSeconds = 240.0;
    CampaignOptions resume = options;
    resume.resume = true;
    const auto outcome = runCampaign(other, resume);
    EXPECT_EQ(outcome.unitsResumed, 0);
    EXPECT_EQ(outcome.unitsRun, static_cast<int>(other.unitCount()));
    std::remove(journal_path.c_str());
}

TEST(CampaignRunner, SummaryParsesAndCarriesTheGridAndAggregates)
{
    const auto grid = testGrid();
    CampaignOptions options;
    options.threads = 1;
    const std::string text = summaryFor(grid, options);

    FlatJson flat;
    std::string error;
    ASSERT_TRUE(parseJsonFlat(text, flat, error)) << error;
    EXPECT_EQ(flat.at("schema").text, "solarcore-campaign-summary-v1");
    EXPECT_EQ(flat.at("grid.sites").text, "AZ,NC");
    EXPECT_EQ(flat.at("grid.policies").text, "opt,fixed,battery");
    EXPECT_EQ(flat.at("grid.dt_seconds").number, 120.0);
    EXPECT_EQ(flat.at("aggregate.units").number,
              static_cast<double>(grid.unitCount()));
    EXPECT_EQ(flat.at("units.0.key").text, "AZ-Jan-opt-HM2-s1");

    // Physical sanity of what the gate will freeze: energy flows and
    // the MPPT-efficiency ratio must be positive and bounded.
    for (std::size_t i = 0; i < grid.unitCount(); ++i) {
        const std::string prefix = "units." + std::to_string(i) + ".";
        EXPECT_GT(flat.at(prefix + "mppEnergyWh").number, 0.0) << i;
        EXPECT_GT(flat.at(prefix + "solarEnergyWh").number, 0.0) << i;
        const double util = flat.at(prefix + "utilization").number;
        EXPECT_GT(util, 0.0) << i;
        EXPECT_LE(util, 1.0 + 1e-9) << i;
    }
    EXPECT_GT(flat.at("aggregate.solarEnergyWh").number, 0.0);
    EXPECT_GT(flat.at("aggregate.solar_ptp_share").number, 0.0);
    EXPECT_LE(flat.at("aggregate.solar_ptp_share").number, 1.0);
}

TEST(CampaignRunner, BatteryUnitsReportBufferedSemantics)
{
    auto grid = testGrid();
    grid.sites = {solar::SiteId::AZ};
    grid.policies = {CampaignPolicy::Battery};
    const auto units = expandGrid(grid);
    ASSERT_EQ(units.size(), 1u);
    const auto m = runUnit(units[0], grid);
    EXPECT_EQ(m.effectiveFraction, 1.0); // everything runs on storage
    EXPECT_EQ(m.solarEnergyWh, m.chipEnergyWh);
    EXPECT_EQ(m.gridEnergyWh, 0.0);
    EXPECT_EQ(m.solarInstructions, m.totalInstructions);
    EXPECT_GT(m.totalInstructions, 0.0);
}

} // namespace
} // namespace solarcore::campaign
