/**
 * @file
 * Tests for the persistent unit-result cache: store/lookup round
 * trips bit-exactly, keys react to every simulation-relevant knob,
 * corrupt or mismatched entries read as misses (never wrong results),
 * the LRU cap evicts oldest-first, and entries persist across handles.
 */

#include <cstddef>
#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "campaign/unit_cache.hpp"

namespace solarcore::campaign {
namespace {

namespace fs = std::filesystem;

ScenarioGrid
cacheGrid()
{
    ScenarioGrid grid;
    grid.sites = {solar::SiteId::AZ};
    grid.months = {solar::Month::Jan};
    grid.policies = {CampaignPolicy::MpptOpt};
    grid.workloads = {workload::WorkloadId::HM2};
    grid.seeds = {1, 2, 3};
    grid.dtSeconds = 120.0;
    return grid;
}

/** Distinct, exactly-representable-in-text values per field. */
UnitMetrics
fakeMetrics(double base)
{
    UnitMetrics m;
    std::size_t i = 0;
    for (const auto &field : metricFields())
        m.*(field.member) = base + 0.125 * static_cast<double>(i++);
    // One value with no short decimal form: bit-exactness check.
    m.trackingError = 0.1 + 0.2;
    return m;
}

struct CacheDir
{
    std::string path;

    CacheDir()
        : path(::testing::TempDir() + "unit_cache_" +
               ::testing::UnitTest::GetInstance()
                   ->current_test_info()
                   ->name())
    {
        fs::remove_all(path);
    }
    ~CacheDir() { fs::remove_all(path); }
};

void
expectEqualMetrics(const UnitMetrics &a, const UnitMetrics &b)
{
    for (const auto &field : metricFields())
        EXPECT_EQ(a.*(field.member), b.*(field.member)) << field.name;
}

TEST(UnitCache, StoreThenLookupRoundTripsBitExactly)
{
    const auto grid = cacheGrid();
    const auto units = expandGrid(grid);
    CacheDir dir;
    UnitResultCache cache(dir.path, 0, "audit=off");
    ASSERT_TRUE(cache.ok());

    UnitMetrics out;
    EXPECT_FALSE(cache.lookup(grid, units[0], out));
    EXPECT_EQ(cache.counters().misses, 1u);

    const UnitMetrics stored = fakeMetrics(1.0);
    cache.store(grid, units[0], stored);
    EXPECT_EQ(cache.counters().stores, 1u);
    EXPECT_EQ(cache.size(), 1u);

    ASSERT_TRUE(cache.lookup(grid, units[0], out));
    EXPECT_EQ(cache.counters().hits, 1u);
    expectEqualMetrics(out, stored);
}

TEST(UnitCache, EntriesPersistAcrossHandles)
{
    const auto grid = cacheGrid();
    const auto units = expandGrid(grid);
    CacheDir dir;
    {
        UnitResultCache warm(dir.path, 0, "audit=off");
        warm.store(grid, units[0], fakeMetrics(2.0));
    }
    UnitResultCache reopened(dir.path, 0, "audit=off");
    ASSERT_TRUE(reopened.ok());
    EXPECT_EQ(reopened.size(), 1u);
    UnitMetrics out;
    ASSERT_TRUE(reopened.lookup(grid, units[0], out));
    expectEqualMetrics(out, fakeMetrics(2.0));
}

TEST(UnitCache, KeyReactsToEverySharedKnobButNotAxisLists)
{
    const auto grid = cacheGrid();
    const auto units = expandGrid(grid);
    CacheDir dir;
    UnitResultCache cache(dir.path, 0, "audit=off");
    const std::string base = cache.keyHash(grid, units[0]);

    // Unit axes and shared knobs all separate entries.
    EXPECT_NE(cache.keyHash(grid, units[1]), base);
    auto knob = grid;
    knob.dtSeconds = 60.0;
    EXPECT_NE(cache.keyHash(knob, units[0]), base);
    knob = grid;
    knob.fixedBudgetW = 42.0;
    EXPECT_NE(cache.keyHash(knob, units[0]), base);
    knob = grid;
    knob.pvKernel = "scalar";
    EXPECT_NE(cache.keyHash(knob, units[0]), base);

    // A different salt (audit mode) is a different key space too.
    UnitResultCache salted(dir.path, 0, "audit=strict");
    EXPECT_NE(salted.keyHash(grid, units[0]), base);

    // But the grid's axis *lists* are not part of the key: a superset
    // sweep shares the entry for the unit it has in common.
    auto superset = grid;
    superset.seeds = {1, 2, 3, 4, 5};
    EXPECT_EQ(cache.keyHash(superset, units[0]), base);
    cache.store(grid, units[0], fakeMetrics(3.0));
    UnitMetrics out;
    EXPECT_TRUE(cache.lookup(superset, units[0], out));
}

TEST(UnitCache, CorruptEntriesReadAsMisses)
{
    const auto grid = cacheGrid();
    const auto units = expandGrid(grid);
    CacheDir dir;
    UnitResultCache cache(dir.path, 0, "audit=off");
    cache.store(grid, units[0], fakeMetrics(4.0));
    const std::string path =
        dir.path + "/" + cache.keyHash(grid, units[0]) + ".unit";
    ASSERT_TRUE(fs::exists(path));

    // Garbage body: miss, not a wrong result.
    {
        std::ofstream os(path, std::ios::trunc);
        os << "not a cache entry\n";
    }
    UnitMetrics out;
    EXPECT_FALSE(cache.lookup(grid, units[0], out));

    // Right magic, wrong key material (a hash collision in miniature):
    // the clear-text material check turns it into a miss as well.
    {
        std::ofstream os(path, std::ios::trunc);
        os << "# solarcore-unit-cache-v1\n"
           << cache.keyMaterial(grid, units[1]) << "\n1 2 3\n";
    }
    EXPECT_FALSE(cache.lookup(grid, units[0], out));

    // Truncated metrics row: miss.
    {
        std::ofstream os(path, std::ios::trunc);
        os << "# solarcore-unit-cache-v1\n"
           << cache.keyMaterial(grid, units[0]) << "\n1 2 3\n";
    }
    EXPECT_FALSE(cache.lookup(grid, units[0], out));
    EXPECT_EQ(cache.counters().hits, 0u);
    EXPECT_EQ(cache.counters().misses, 3u);
}

TEST(UnitCache, LruCapEvictsOldestFirst)
{
    const auto grid = cacheGrid();
    const auto units = expandGrid(grid);
    ASSERT_GE(units.size(), 3u);
    CacheDir dir;
    UnitResultCache cache(dir.path, 2, "audit=off");

    cache.store(grid, units[0], fakeMetrics(5.0));
    cache.store(grid, units[1], fakeMetrics(6.0));
    // Touch unit 0 so unit 1 is now the LRU entry.
    UnitMetrics out;
    ASSERT_TRUE(cache.lookup(grid, units[0], out));

    cache.store(grid, units[2], fakeMetrics(7.0));
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.counters().evictions, 1u);
    EXPECT_TRUE(cache.lookup(grid, units[0], out));
    EXPECT_FALSE(cache.lookup(grid, units[1], out));
    EXPECT_TRUE(cache.lookup(grid, units[2], out));
}

TEST(UnitCache, UnwritableDirectoryDegradesToAllMisses)
{
    const auto grid = cacheGrid();
    const auto units = expandGrid(grid);
    UnitResultCache cache("/proc/definitely/not/writable", 0, "x");
    EXPECT_FALSE(cache.ok());
    UnitMetrics out;
    EXPECT_FALSE(cache.lookup(grid, units[0], out));
    cache.store(grid, units[0], fakeMetrics(8.0));
    EXPECT_FALSE(cache.lookup(grid, units[0], out));
    EXPECT_EQ(cache.counters().stores, 0u);
}

} // namespace
} // namespace solarcore::campaign
