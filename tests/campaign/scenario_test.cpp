/**
 * @file
 * Tests for the scenario grid: expansion order, keys, signatures, list
 * parsing and presets.
 */

#include <set>
#include <string>

#include <gtest/gtest.h>

#include "campaign/scenario.hpp"

namespace solarcore::campaign {
namespace {

ScenarioGrid
smallGrid()
{
    ScenarioGrid grid;
    grid.sites = {solar::SiteId::AZ, solar::SiteId::NC};
    grid.months = {solar::Month::Jan, solar::Month::Jul};
    grid.policies = {CampaignPolicy::MpptOpt, CampaignPolicy::Battery};
    grid.workloads = {workload::WorkloadId::HM2};
    grid.seeds = {1, 7};
    return grid;
}

TEST(Scenario, ExpansionIsSiteMajorAndDenselyIndexed)
{
    const auto grid = smallGrid();
    const auto units = expandGrid(grid);
    ASSERT_EQ(units.size(), grid.unitCount());
    ASSERT_EQ(units.size(), 2u * 2u * 2u * 1u * 2u);
    for (std::size_t i = 0; i < units.size(); ++i)
        EXPECT_EQ(units[i].index, static_cast<int>(i));

    // Innermost axis (seed) varies fastest, outermost (site) slowest.
    EXPECT_EQ(units[0].seed, 1u);
    EXPECT_EQ(units[1].seed, 7u);
    EXPECT_EQ(units[0].policy, CampaignPolicy::MpptOpt);
    EXPECT_EQ(units[2].policy, CampaignPolicy::Battery);
    EXPECT_EQ(units[0].month, solar::Month::Jan);
    EXPECT_EQ(units[4].month, solar::Month::Jul);
    EXPECT_EQ(units[0].site, solar::SiteId::AZ);
    EXPECT_EQ(units[8].site, solar::SiteId::NC);
}

TEST(Scenario, UnitKeysAreUniqueAndReadable)
{
    const auto units = expandGrid(smallGrid());
    std::set<std::string> keys;
    for (const auto &unit : units)
        keys.insert(unitKey(unit));
    EXPECT_EQ(keys.size(), units.size());
    EXPECT_EQ(unitKey(units[0]), "AZ-Jan-opt-HM2-s1");
    EXPECT_EQ(unitKey(units[3]), "AZ-Jan-battery-HM2-s7");
}

TEST(Scenario, SignatureTracksEveryAxisAndKnob)
{
    const auto base = smallGrid();
    const std::string sig = gridSignature(base);
    EXPECT_EQ(sig, gridSignature(smallGrid())); // deterministic

    auto g = base;
    g.sites.pop_back();
    EXPECT_NE(gridSignature(g), sig);
    g = base;
    g.seeds.push_back(9);
    EXPECT_NE(gridSignature(g), sig);
    g = base;
    g.dtSeconds += 1.0;
    EXPECT_NE(gridSignature(g), sig);
    g = base;
    g.fixedBudgetW += 5.0;
    EXPECT_NE(gridSignature(g), sig);
    g = base;
    g.trackingPeriodMinutes *= 2.0;
    EXPECT_NE(gridSignature(g), sig);
}

TEST(Scenario, PolicyTokensRoundTrip)
{
    std::vector<CampaignPolicy> parsed;
    ASSERT_TRUE(parsePolicyList("opt,rr,ic,icm,fixed,battery", parsed));
    ASSERT_EQ(parsed.size(), 6u);
    for (const auto policy : parsed) {
        std::vector<CampaignPolicy> again;
        ASSERT_TRUE(parsePolicyList(campaignPolicyToken(policy), again));
        ASSERT_EQ(again.size(), 1u);
        EXPECT_EQ(again[0], policy);
    }
}

TEST(Scenario, ListParsersRejectBadTokens)
{
    std::vector<solar::SiteId> sites;
    EXPECT_TRUE(parseSiteList("AZ,CO", sites));
    EXPECT_EQ(sites.size(), 2u);
    EXPECT_FALSE(parseSiteList("AZ,XX", sites));
    EXPECT_FALSE(parseSiteList("", sites));
    EXPECT_EQ(sites.size(), 2u); // left untouched on failure

    std::vector<solar::Month> months;
    EXPECT_TRUE(parseMonthList("Jan,Oct", months));
    EXPECT_FALSE(parseMonthList("January", months));

    std::vector<workload::WorkloadId> wls;
    EXPECT_TRUE(parseWorkloadList("H1,HM2,L1", wls));
    EXPECT_FALSE(parseWorkloadList("H1,nope", wls));

    std::vector<std::uint64_t> seeds;
    EXPECT_TRUE(parseSeedList("1,2,42", seeds));
    ASSERT_EQ(seeds.size(), 3u);
    EXPECT_EQ(seeds[2], 42u);
    EXPECT_FALSE(parseSeedList("1,two", seeds));
    EXPECT_FALSE(parseSeedList("3.5", seeds));
}

TEST(Scenario, PresetsLoadAndDiffer)
{
    ScenarioGrid grid;
    ASSERT_TRUE(applyPreset("smoke", grid));
    EXPECT_EQ(grid.unitCount(), 8u);
    EXPECT_EQ(grid.dtSeconds, 120.0);

    ScenarioGrid fig13, fig14;
    ASSERT_TRUE(applyPreset("fig13", fig13));
    ASSERT_TRUE(applyPreset("fig14", fig14));
    EXPECT_EQ(fig13.unitCount(), 3u);
    EXPECT_EQ(fig13.dtSeconds, 15.0);
    EXPECT_NE(gridSignature(fig13), gridSignature(fig14));

    ScenarioGrid full;
    ASSERT_TRUE(applyPreset("full", full));
    EXPECT_EQ(full.unitCount(), 4u * 4u * 5u * 3u);

    EXPECT_FALSE(applyPreset("nope", grid));
    EXPECT_EQ(grid.dtSeconds, 120.0); // unknown preset leaves grid alone
}

} // namespace
} // namespace solarcore::campaign
