/**
 * @file
 * Tests for the multi-process campaign execution engine: forked
 * workers reproduce the in-process summary byte-for-byte, the unit
 * cache behaves identically at any worker count (and a warm cache
 * serves every unit), and the reusable SimWorkspace changes no
 * numbers.
 */

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "campaign/campaign.hpp"
#include "campaign/golden.hpp"
#include "campaign/unit_cache.hpp"
#include "core/simulation.hpp"
#include "util/pipe_channel.hpp"

namespace solarcore::campaign {
namespace {

namespace fs = std::filesystem;

/** Cheap but representative: two sites, three policy families. */
ScenarioGrid
testGrid()
{
    ScenarioGrid grid;
    grid.sites = {solar::SiteId::AZ, solar::SiteId::NC};
    grid.months = {solar::Month::Jan};
    grid.policies = {CampaignPolicy::MpptOpt, CampaignPolicy::FixedPower,
                     CampaignPolicy::Battery};
    grid.workloads = {workload::WorkloadId::HM2};
    grid.seeds = {1};
    grid.dtSeconds = 120.0;
    return grid;
}

std::string
summaryFor(const ScenarioGrid &grid, const CampaignOptions &options,
           CampaignOutcome *outcome_out = nullptr)
{
    const auto outcome = runCampaign(grid, options);
    std::ostringstream os;
    writeSummaryJson(os, grid, outcome);
    if (outcome_out != nullptr)
        *outcome_out = outcome;
    return os.str();
}

struct TempDir
{
    std::string path;

    explicit TempDir(const char *tag)
        : path(::testing::TempDir() + "shard_exec_" + tag + "_" +
               ::testing::UnitTest::GetInstance()
                   ->current_test_info()
                   ->name())
    {
        fs::remove_all(path);
    }
    ~TempDir() { fs::remove_all(path); }
};

TEST(ShardExec, WorkersReproduceInProcessSummaryByteForByte)
{
    if (!util::pipeChannelSupported())
        GTEST_SKIP() << "no fork/pipe on this platform";
    const auto grid = testGrid();
    CampaignOptions inproc;
    inproc.threads = 1;
    const std::string reference = summaryFor(grid, inproc);
    ASSERT_FALSE(reference.empty());

    for (int workers : {2, 4}) {
        CampaignOptions sharded;
        sharded.threads = 1;
        sharded.workers = workers;
        CampaignOutcome outcome;
        EXPECT_EQ(summaryFor(grid, sharded, &outcome), reference)
            << "workers=" << workers;
        EXPECT_EQ(outcome.unitsRun,
                  static_cast<int>(grid.unitCount()));
        EXPECT_EQ(outcome.workerCrashes, 0);
    }

    // More workers than units degrades to one unit per worker.
    CampaignOptions oversubscribed;
    oversubscribed.threads = 1;
    oversubscribed.workers = 64;
    EXPECT_EQ(summaryFor(grid, oversubscribed), reference);
}

TEST(ShardExec, CacheBehavesIdenticallyAcrossWorkerCounts)
{
    if (!util::pipeChannelSupported())
        GTEST_SKIP() << "no fork/pipe on this platform";
    const auto grid = testGrid();
    TempDir dir_one("cache_w1");
    TempDir dir_many("cache_w4");

    // Cold runs: every unit simulated and stored, regardless of mode.
    CampaignOptions one;
    one.threads = 1;
    one.unitCacheDir = dir_one.path;
    CampaignOutcome cold_one;
    const std::string ref = summaryFor(grid, one, &cold_one);

    CampaignOptions many = one;
    many.workers = 4;
    many.unitCacheDir = dir_many.path;
    CampaignOutcome cold_many;
    EXPECT_EQ(summaryFor(grid, many, &cold_many), ref);
    EXPECT_EQ(cold_one.unitsCached, 0);
    EXPECT_EQ(cold_many.unitsCached, cold_one.unitsCached);
    EXPECT_EQ(cold_many.unitsRun, cold_one.unitsRun);

    // The two modes stored byte-identical entry sets.
    std::size_t entries = 0;
    for (const auto &entry : fs::directory_iterator(dir_one.path)) {
        ++entries;
        const auto twin =
            fs::path(dir_many.path) / entry.path().filename();
        ASSERT_TRUE(fs::exists(twin)) << entry.path();
        std::ifstream a(entry.path()), b(twin);
        std::stringstream sa, sb;
        sa << a.rdbuf();
        sb << b.rdbuf();
        EXPECT_EQ(sa.str(), sb.str()) << entry.path();
    }
    EXPECT_EQ(entries, grid.unitCount());

    // Warm runs: all units served from cache, summaries unchanged --
    // and a cache written by one mode warms the other.
    CampaignOutcome warm_one;
    EXPECT_EQ(summaryFor(grid, one, &warm_one), ref);
    EXPECT_EQ(warm_one.unitsCached,
              static_cast<int>(grid.unitCount()));
    EXPECT_EQ(warm_one.unitsRun, 0);

    CampaignOptions crossed = many;
    crossed.unitCacheDir = dir_one.path; // warmed by workers=1
    CampaignOutcome warm_crossed;
    EXPECT_EQ(summaryFor(grid, crossed, &warm_crossed), ref);
    EXPECT_EQ(warm_crossed.unitsCached,
              static_cast<int>(grid.unitCount()));
    EXPECT_EQ(warm_crossed.unitsRun, 0);
}

TEST(ShardExec, ReusableWorkspaceChangesNoNumbers)
{
    const auto grid = testGrid();
    const auto units = expandGrid(grid);
    core::SimWorkspace workspace;
    for (const auto &unit : units) {
        const UnitMetrics fresh = runUnit(unit, grid);
        // Same workspace reused across every unit: capacity persists,
        // results must not.
        const UnitMetrics reused = runUnit(unit, grid, nullptr, nullptr,
                                           nullptr, nullptr, &workspace);
        for (const auto &field : metricFields())
            EXPECT_EQ(fresh.*(field.member), reused.*(field.member))
                << unitKey(unit) << "." << field.name;
    }
}

TEST(ShardExec, WorkersComposeWithJournalResume)
{
    if (!util::pipeChannelSupported())
        GTEST_SKIP() << "no fork/pipe on this platform";
    const auto grid = testGrid();
    TempDir dir("journal");
    fs::create_directories(dir.path);
    const std::string journal = dir.path + "/campaign.journal";

    CampaignOptions sharded;
    sharded.threads = 1;
    sharded.workers = 2;
    sharded.journalPath = journal;
    const std::string ref = summaryFor(grid, sharded);

    // A resume against the worker-written journal recomputes nothing
    // and reproduces the bytes.
    CampaignOptions resume = sharded;
    resume.resume = true;
    CampaignOutcome outcome;
    EXPECT_EQ(summaryFor(grid, resume, &outcome), ref);
    EXPECT_EQ(outcome.unitsResumed,
              static_cast<int>(grid.unitCount()));
    EXPECT_EQ(outcome.unitsRun, 0);
}

TEST(ShardExec, WorkerSpansStitchIntoOneTraceWithoutChangingSummary)
{
    if (!util::pipeChannelSupported())
        GTEST_SKIP() << "no fork/pipe on this platform";
    const auto grid = testGrid();

    CampaignOptions plain;
    plain.threads = 1;
    plain.workers = 2;
    const std::string ref = summaryFor(grid, plain);

    TempDir dir("spans");
    fs::create_directories(dir.path);
    CampaignOptions traced = plain;
    traced.spanOut = dir.path + "/spans.jsonl";
    traced.traceId = 0xfeed01;

    // Span emission must not perturb a single summary byte.
    EXPECT_EQ(summaryFor(grid, traced), ref);

    // Worker spans cross the pipe and stitch into the requested
    // trace: one campaign root, one shard span per worker (each on
    // its own lane), and one unit span per scenario unit.
    std::ifstream in(traced.spanOut);
    ASSERT_TRUE(in.good());
    std::string line;
    std::size_t roots = 0;
    std::size_t shards = 0;
    std::size_t units = 0;
    std::size_t lanes_seen = 0;
    bool lane_flags[64] = {false};
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        FlatJson doc;
        std::string error;
        ASSERT_TRUE(parseJsonFlat(line, doc, error)) << error;
        EXPECT_EQ(doc["schema"].text, "solarcore-span-v1");
        EXPECT_EQ(doc["trace"].text, "0000000000feed01");
        if (doc["parent"].text == "0000000000000000") {
            ++roots;
            EXPECT_EQ(doc["name"].text, "campaign");
        }
        if (doc["name"].text == "shard")
            ++shards;
        if (doc["name"].text == "unit") {
            ++units;
            const auto lane = static_cast<int>(doc["lane"].number);
            ASSERT_GE(lane, 1);
            ASSERT_LT(lane, 64);
            if (!lane_flags[lane]) {
                lane_flags[lane] = true;
                ++lanes_seen;
            }
        }
    }
    EXPECT_EQ(roots, 1u);
    EXPECT_EQ(shards, 2u);
    EXPECT_EQ(units, grid.unitCount());
    EXPECT_EQ(lanes_seen, 2u); // both workers contributed units
}

} // namespace
} // namespace solarcore::campaign
