/**
 * @file
 * Tests for the campaign progress journal: bit-exact round-trips,
 * header validation against the grid signature, torn-line tolerance
 * and append-after-resume.
 */

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "campaign/journal.hpp"

namespace solarcore::campaign {
namespace {

class JournalTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = ::testing::TempDir() + "journal_test_" +
            ::testing::UnitTest::GetInstance()
                ->current_test_info()
                ->name() +
            ".txt";
        std::remove(path_.c_str());
    }

    void TearDown() override { std::remove(path_.c_str()); }

    static UnitMetrics
    sampleMetrics(double scale)
    {
        UnitMetrics m;
        // Awkward doubles on purpose: the round-trip must be bit-exact.
        m.mppEnergyWh = 123.456789012345 * scale;
        m.solarEnergyWh = 0.1 + 0.2 * scale;
        m.gridEnergyWh = 1.0 / 3.0 * scale;
        m.chipEnergyWh = 98.7654321 * scale;
        m.utilization = 0.987654321098765 * scale;
        m.effectiveFraction = 2.0 / 7.0;
        m.trackingError = 1.23e-7 * scale;
        m.solarInstructions = 4.56e12 * scale;
        m.totalInstructions = 4.8e12 * scale;
        m.retracks = 37.0;
        m.transfers = 5.0;
        m.controllerSteps = 411.0;
        m.thermalThrottles = 2.0;
        return m;
    }

    std::string path_;
    const std::string signature_ = "v1 test-grid dt=30";
};

TEST_F(JournalTest, RoundTripIsBitExact)
{
    {
        JournalWriter writer(path_, signature_, /*fresh=*/true);
        ASSERT_TRUE(writer.ok());
        writer.append(0, sampleMetrics(1.0));
        writer.append(2, sampleMetrics(0.3));
    }
    const auto rec = loadJournal(path_, signature_);
    EXPECT_TRUE(rec.headerValid);
    EXPECT_EQ(rec.linesDropped, 0);
    ASSERT_EQ(rec.completed.size(), 2u);

    const auto expect0 = sampleMetrics(1.0);
    const auto expect2 = sampleMetrics(0.3);
    for (const auto &field : metricFields()) {
        EXPECT_EQ(rec.completed.at(0).*(field.member),
                  expect0.*(field.member))
            << field.name;
        EXPECT_EQ(rec.completed.at(2).*(field.member),
                  expect2.*(field.member))
            << field.name;
    }
}

TEST_F(JournalTest, MissingFileYieldsEmptyRecovery)
{
    const auto rec = loadJournal(path_, signature_);
    EXPECT_FALSE(rec.headerValid);
    EXPECT_TRUE(rec.completed.empty());
}

TEST_F(JournalTest, MismatchedSignatureIsRejected)
{
    {
        JournalWriter writer(path_, signature_, /*fresh=*/true);
        writer.append(0, sampleMetrics(1.0));
    }
    const auto rec = loadJournal(path_, "v1 some-other-grid dt=15");
    EXPECT_FALSE(rec.headerValid);
    EXPECT_TRUE(rec.completed.empty());
}

TEST_F(JournalTest, TornAndMalformedLinesAreDropped)
{
    {
        JournalWriter writer(path_, signature_, /*fresh=*/true);
        writer.append(0, sampleMetrics(1.0));
        writer.append(1, sampleMetrics(2.0));
    }
    {
        // Simulate a crash mid-write: a truncated record, a line with
        // trailing garbage, and a negative index.
        std::ofstream out(path_, std::ios::app);
        out << "2 1.0 2.0 3.0\n";
        out << "3";
        for (std::size_t i = 0; i < kNumMetricFields; ++i)
            out << " 1.5";
        out << " surplus\n";
        out << "-1";
        for (std::size_t i = 0; i < kNumMetricFields; ++i)
            out << " 1.5";
        out << "\n";
        out << "4 0.25 0.5"; // torn final line, no newline
    }
    const auto rec = loadJournal(path_, signature_);
    EXPECT_TRUE(rec.headerValid);
    EXPECT_EQ(rec.linesDropped, 4);
    ASSERT_EQ(rec.completed.size(), 2u);
    EXPECT_TRUE(rec.completed.count(0));
    EXPECT_TRUE(rec.completed.count(1));
}

TEST_F(JournalTest, AppendModePreservesEarlierEntries)
{
    {
        JournalWriter writer(path_, signature_, /*fresh=*/true);
        writer.append(0, sampleMetrics(1.0));
    }
    {
        // Resumed run: reopen without truncating, add the missing unit.
        JournalWriter writer(path_, signature_, /*fresh=*/false);
        ASSERT_TRUE(writer.ok());
        writer.append(1, sampleMetrics(2.0));
    }
    const auto rec = loadJournal(path_, signature_);
    EXPECT_TRUE(rec.headerValid);
    ASSERT_EQ(rec.completed.size(), 2u);
    EXPECT_TRUE(rec.completed.count(0));
    EXPECT_TRUE(rec.completed.count(1));
}

TEST_F(JournalTest, HashChangesWithSignature)
{
    const auto h1 = journalHash("grid-a");
    const auto h2 = journalHash("grid-b");
    EXPECT_NE(h1, h2);
    EXPECT_EQ(h1, journalHash("grid-a"));
    EXPECT_FALSE(h1.empty());
}

} // namespace
} // namespace solarcore::campaign
