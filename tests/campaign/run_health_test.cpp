/**
 * @file
 * Tests for the campaign run-health reporter: snapshot arithmetic
 * (in-flight, queue depth, utilization), the versioned status.json
 * document and its atomic publication, the legacy journal heartbeat
 * format (byte-compatibility with the pre-reporter runner), and the
 * OpenMetrics rendering, which must pass the structural linter.
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "campaign/golden.hpp"
#include "campaign/journal.hpp"
#include "campaign/run_health.hpp"
#include "obs/metrics_export.hpp"

namespace solarcore::campaign {
namespace {

campaign::FlatJson
parseFile(const std::string &path)
{
    std::ifstream is(path);
    EXPECT_TRUE(is.good()) << "missing " << path;
    std::stringstream ss;
    ss << is.rdbuf();
    campaign::FlatJson doc;
    std::string error;
    EXPECT_TRUE(campaign::parseJsonFlat(ss.str(), doc, error)) << error;
    return doc;
}

TEST(RunHealth, SnapshotTracksInflightAndQueue)
{
    RunHealthConfig config;
    config.totalUnits = 10;
    config.pendingUnits = 8;
    config.unitsResumed = 2;
    config.workers = 4;
    RunHealthReporter reporter(config);

    reporter.unitStarted("u0");
    reporter.unitStarted("u1");
    auto snap = reporter.snapshot();
    EXPECT_EQ(snap.unitsDone, 0u);
    EXPECT_EQ(snap.unitsInflight, 2u);
    EXPECT_EQ(snap.queueDepth, 6u); // 8 pending - 0 done - 2 running
    EXPECT_DOUBLE_EQ(snap.workerUtilization, 0.5);
    EXPECT_EQ(snap.busyKeys.size(), 2u);

    reporter.unitFinished("u0");
    snap = reporter.snapshot();
    EXPECT_EQ(snap.unitsDone, 1u);
    EXPECT_EQ(snap.unitsInflight, 1u);
    EXPECT_EQ(snap.queueDepth, 6u); // 8 - 1 done - 1 running
    ASSERT_EQ(snap.busyKeys.size(), 1u);
    EXPECT_EQ(snap.busyKeys[0], "u1");
}

TEST(RunHealth, StatusJsonSchemaAndFields)
{
    const std::string path =
        testing::TempDir() + "run_health_status_test.json";
    std::remove(path.c_str());

    RunHealthConfig config;
    config.totalUnits = 3;
    config.pendingUnits = 3;
    config.workers = 2;
    config.signature = "sites=AZ, months=Jan";
    config.statusPath = path;
    config.minPublishSeconds = 0.0; // publish on every completion
    RunHealthReporter reporter(config);

    reporter.unitStarted("AZ-Jan-opt-H1-s1");
    reporter.unitStarted("AZ-Jan-opt-H1-s2");
    reporter.unitFinished("AZ-Jan-opt-H1-s1");

    auto doc = parseFile(path);
    EXPECT_EQ(doc.at("schema").text, "solarcore-campaign-status-v1");
    EXPECT_EQ(doc.at("signature").text, "sites=AZ, months=Jan");
    EXPECT_DOUBLE_EQ(doc.at("units_total").number, 3.0);
    EXPECT_DOUBLE_EQ(doc.at("units_pending").number, 3.0);
    EXPECT_DOUBLE_EQ(doc.at("units_done").number, 1.0);
    EXPECT_DOUBLE_EQ(doc.at("units_inflight").number, 1.0);
    EXPECT_DOUBLE_EQ(doc.at("queue_depth").number, 1.0);
    EXPECT_DOUBLE_EQ(doc.at("workers").number, 2.0);
    EXPECT_DOUBLE_EQ(doc.at("worker_utilization").number, 0.5);
    EXPECT_EQ(doc.at("busy.0").text, "AZ-Jan-opt-H1-s2");
    EXPECT_GE(doc.at("units_per_second").number, 0.0);

    // finish() republishes unconditionally; the staging file is gone.
    reporter.unitFinished("AZ-Jan-opt-H1-s2");
    reporter.finish();
    doc = parseFile(path);
    EXPECT_DOUBLE_EQ(doc.at("units_done").number, 2.0);
    EXPECT_DOUBLE_EQ(doc.at("units_inflight").number, 0.0);
    EXPECT_FALSE(std::ifstream(path + ".tmp").good());
    std::remove(path.c_str());
}

TEST(RunHealth, JournalHeartbeatKeepsLegacyFormat)
{
    const std::string path =
        testing::TempDir() + "run_health_journal_test.jsonl";
    std::remove(path.c_str());
    JournalWriter journal(path, "test-signature", true);
    ASSERT_TRUE(journal.ok());

    RunHealthConfig config;
    config.totalUnits = 2;
    config.pendingUnits = 2;
    config.workers = 1;
    config.journal = &journal;
    RunHealthReporter reporter(config);
    reporter.unitStarted("AZ-Jan-opt-H1-s1");
    reporter.unitFinished("AZ-Jan-opt-H1-s1");

    std::ifstream is(path);
    std::string line;
    bool found = false;
    while (std::getline(is, line))
        found = found ||
            line == "# heartbeat 1/2 AZ-Jan-opt-H1-s1";
    EXPECT_TRUE(found) << "legacy heartbeat comment missing";
    std::remove(path.c_str());
}

TEST(RunHealth, RenderedMetricsLintClean)
{
    RunHealthSnapshot snap;
    snap.totalUnits = 900;
    snap.pendingUnits = 900;
    snap.unitsDone = 450;
    snap.unitsInflight = 4;
    snap.queueDepth = 446;
    snap.workers = 4;
    snap.elapsedSeconds = 12.5;
    snap.unitsPerSecond = 36.0;
    snap.etaSeconds = 12.5;
    snap.workerUtilization = 1.0;

    const std::string text = RunHealthReporter::renderMetrics(snap);
    std::vector<std::string> errors;
    EXPECT_TRUE(obs::lintOpenMetrics(text, errors))
        << (errors.empty() ? "" : errors.front());
    EXPECT_NE(text.find("solarcore_campaign_units_done_total 450\n"),
              std::string::npos);
    EXPECT_NE(text.find("solarcore_campaign_queue_depth 446\n"),
              std::string::npos);

    // The same families compose into a larger document cleanly.
    obs::OpenMetricsWriter w;
    RunHealthReporter::appendMetrics(w, snap);
    w.gauge("solarcore_extra", "another family", 1.0);
    errors.clear();
    EXPECT_TRUE(obs::lintOpenMetrics(w.finish(), errors))
        << (errors.empty() ? "" : errors.front());
}

TEST(RunHealth, StatusJsonEscapesKeys)
{
    RunHealthSnapshot snap;
    snap.busyKeys = {"weird\"key\n"};
    const std::string text =
        RunHealthReporter::renderStatusJson(snap, "sig\\nature");
    campaign::FlatJson doc;
    std::string error;
    ASSERT_TRUE(campaign::parseJsonFlat(text, doc, error)) << error;
    EXPECT_EQ(doc.at("busy.0").text, "weird\"key\n");
    EXPECT_EQ(doc.at("signature").text, "sig\\nature");
}

} // namespace
} // namespace solarcore::campaign
