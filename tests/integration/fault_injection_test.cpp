/**
 * @file
 * Fault-injection and extreme-condition tests: degraded sensors, lossy
 * converters, fully overcast days, heat waves and pathological DVFS
 * tables must degrade gracefully, never crash or violate invariants.
 */

#include <gtest/gtest.h>

#include "core/solarcore.hpp"

namespace solarcore {
namespace {

core::SimConfig
fastConfig()
{
    core::SimConfig cfg;
    cfg.dtSeconds = 60.0;
    return cfg;
}

TEST(FaultInjection, NoisySensorsStillFindMppSide)
{
    // The probe must survive 1% sensor noise: with the operating point
    // parked clearly on one side, most probes still answer correctly.
    const auto module = pv::buildBp3180n();
    pv::PvArray array(module, 1, 1, {800.0, 30.0});
    power::IvSensor sensor(0.01, 0.005, 0.01, 3);

    // Right-of-MPP operating point via a light resistive load.
    const auto mpp = pv::findMpp(array);
    const double r_light = 3.0 * mpp.voltage / mpp.current;
    int correct = 0;
    for (int trial = 0; trial < 50; ++trial) {
        const auto op = pv::resistiveOperatingPoint(array, r_light);
        const auto measured = sensor.measure(op);
        // Side test through measured voltage: above Vmpp = right side.
        correct += measured.voltage > mpp.voltage;
    }
    EXPECT_GT(correct, 45);
}

TEST(FaultInjection, LossyConverterReducesUtilization)
{
    const auto module = pv::buildBp3180n();
    const auto trace = solar::generateDayTrace(solar::SiteId::AZ,
                                               solar::Month::Apr, 1);
    auto ideal = fastConfig();
    auto lossy = fastConfig();
    lossy.controller.converterEfficiency = 0.90;
    const auto ri = core::simulateDay(module, trace,
                                      workload::WorkloadId::M1, ideal);
    const auto rl = core::simulateDay(module, trace,
                                      workload::WorkloadId::M1, lossy);
    // Less useful work out of the same resource...
    EXPECT_LT(rl.solarInstructions, ri.solarInstructions);
    // ...while the panel-side draw stays within the budget.
    EXPECT_LE(rl.utilization, 1.0);
    EXPECT_GT(rl.utilization, 0.5);
}

TEST(FaultInjection, FullyOvercastDayFallsBackGracefully)
{
    solar::WeatherParams murk;
    murk.clearFrac = 0.0;
    murk.partlyFrac = 0.0;
    murk.overcastFrac = 1.0;
    murk.gustiness = 0.2;
    murk.tMinC = 2.0;
    murk.tMaxC = 8.0;
    // Deep winter + full overcast at high latitude: almost no power.
    const auto trace = solar::generateCustomTrace(55.0, 355, murk, 0.8, 9);
    const auto module = pv::buildBp3180n();
    const auto r = core::simulateDay(module, trace,
                                     workload::WorkloadId::HM2,
                                     fastConfig());
    EXPECT_LT(r.effectiveFraction, 0.2);
    EXPECT_GT(r.totalInstructions, 0.0); // grid keeps the chip alive
    EXPECT_GE(r.utilization, 0.0);
}

TEST(FaultInjection, HeatWaveReducesHarvestButNotCorrectness)
{
    solar::WeatherParams clear;
    clear.clearFrac = 1.0;
    clear.partlyFrac = 0.0;
    clear.overcastFrac = 0.0;
    clear.gustiness = 0.0;
    clear.tMinC = 20.0;
    clear.tMaxC = 30.0;
    solar::WeatherParams heat = clear;
    heat.tMinC = 38.0;
    heat.tMaxC = 48.0;
    const auto module = pv::buildBp3180n();
    const auto cool = solar::generateCustomTrace(33.0, 196, clear, 1.0, 4);
    const auto hot = solar::generateCustomTrace(33.0, 196, heat, 1.0, 4);
    const auto rc = core::simulateDay(module, cool,
                                      workload::WorkloadId::L1,
                                      fastConfig());
    const auto rh = core::simulateDay(module, hot,
                                      workload::WorkloadId::L1,
                                      fastConfig());
    // Hot panels produce less (Figure 7), so there is less to harvest.
    EXPECT_LT(rh.mppEnergyWh, rc.mppEnergyWh);
    EXPECT_LE(rh.utilization, 1.0);
}

TEST(FaultInjection, CoarseDvfsStillTracksSafely)
{
    // A 3-level table gives brutal notch sizes; the margin machinery
    // must keep consumption under the budget regardless.
    const auto module = pv::buildBp3180n();
    const auto trace = solar::generateDayTrace(solar::SiteId::AZ,
                                               solar::Month::Jul, 1);
    auto cfg = fastConfig();
    cfg.dvfsLevels = 3;
    cfg.recordTimeline = true;
    const auto r = core::simulateDay(module, trace,
                                     workload::WorkloadId::H1, cfg);
    for (const auto &p : r.timeline) {
        if (p.onSolar) {
            ASSERT_LE(p.consumedW, p.budgetW * 1.001);
        }
    }
    EXPECT_GT(r.utilization, 0.5);
}

TEST(FaultInjection, TinyPanelNeverEngages)
{
    // A panel array far smaller than the threshold leaves the system
    // permanently on the grid without dividing by zero anywhere.
    const auto module = pv::buildBp3180n();
    const auto trace = solar::generateDayTrace(solar::SiteId::TN,
                                               solar::Month::Jan, 1);
    auto cfg = fastConfig();
    cfg.thresholdW = 500.0; // unreachable
    const auto r = core::simulateDay(module, trace,
                                     workload::WorkloadId::M2, cfg);
    EXPECT_DOUBLE_EQ(r.solarEnergyWh, 0.0);
    EXPECT_DOUBLE_EQ(r.effectiveFraction, 0.0);
    EXPECT_DOUBLE_EQ(r.utilization, 0.0);
    EXPECT_GT(r.totalInstructions, 0.0);
}

TEST(FaultInjection, OversizedArrayClipsAtChipMax)
{
    // Three parallel strings can exceed the chip's maximum draw: the
    // controller must cap at all-cores-max without oscillating.
    const auto module = pv::buildBp3180n();
    const auto trace = solar::generateDayTrace(solar::SiteId::AZ,
                                               solar::Month::Jul, 1);
    auto cfg = fastConfig();
    cfg.modulesParallel = 3;
    cfg.recordTimeline = true;
    const auto r = core::simulateDay(module, trace,
                                     workload::WorkloadId::M2, cfg);
    // Mid-day clipping: utilization clearly below one, but tracking
    // never draws above the budget.
    EXPECT_LT(r.utilization, 0.85);
    for (const auto &p : r.timeline) {
        if (p.onSolar) {
            ASSERT_LE(p.consumedW, p.budgetW * 1.001);
        }
    }
}

} // namespace
} // namespace solarcore
