/**
 * @file
 * Golden-compatible telemetry smoke test: one instrumented simulated
 * day (waveform recorder + self-profiler + invariant auditor all
 * attached) digested into a small JSON summary and diffed against
 * tests/golden/telemetry_smoke.json with the campaign golden oracle.
 *
 * The digest keeps per-channel envelope statistics rather than raw
 * rows, so the golden stays a few hundred bytes while still pinning
 * the waveform shapes (a broken channel wiring shows up as a shifted
 * mean or a vanished min/max). Regenerate after an intentional model
 * change with:
 *
 *   SC_UPDATE_GOLDEN=1 ./tests/integration/integration_tests \
 *       --gtest_filter='TelemetryGolden.*'
 */

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "campaign/golden.hpp"
#include "core/solarcore.hpp"
#include "obs/auditor.hpp"
#include "obs/json.hpp"
#include "obs/profiler.hpp"
#include "obs/telemetry.hpp"

#ifndef SOLARCORE_GOLDEN_DIR
#error "SOLARCORE_GOLDEN_DIR must point at tests/golden"
#endif

namespace solarcore {
namespace {

std::string
goldenPath()
{
    return std::string(SOLARCORE_GOLDEN_DIR) + "/telemetry_smoke.json";
}

/** Render the digest JSON of one instrumented day. */
std::string
digest(obs::TelemetryRecorder &telem, const obs::Auditor &audit)
{
    using obs::jsonNumber;
    telem.flush();
    std::ostringstream os;
    os << "{\n  \"schema\": \"solarcore-telemetry-smoke-v1\",\n";
    os << "  \"steps\": " << jsonNumber(telem.stepCount()) << ",\n";
    os << "  \"rows\": " << jsonNumber(telem.rowCount()) << ",\n";
    os << "  \"audit_violations\": " << jsonNumber(audit.violationCount())
       << ",\n";
    os << "  \"channels\": {\n";
    for (std::size_t c = 0; c < telem.channelCount(); ++c) {
        double lo = 0.0, hi = 0.0, sum = 0.0;
        std::size_t n = 0;
        for (std::size_t r = 0; r < telem.rowCount(); ++r) {
            const double v = telem.value(r, c);
            if (std::isnan(v))
                continue;
            if (n == 0) {
                lo = hi = v;
            } else {
                lo = std::min(lo, v);
                hi = std::max(hi, v);
            }
            sum += v;
            ++n;
        }
        os << "    \"" << telem.channelName(c) << "\": {\"rows\": "
           << jsonNumber(n) << ", \"min\": " << jsonNumber(lo)
           << ", \"max\": " << jsonNumber(hi) << ", \"mean\": "
           << jsonNumber(n ? sum / static_cast<double>(n) : 0.0) << '}'
           << (c + 1 < telem.channelCount() ? "," : "") << '\n';
    }
    os << "  }\n}\n";
    return os.str();
}

TEST(TelemetryGolden, InstrumentedDayMatchesBaseline)
{
    const auto module = pv::buildBp3180n();
    const auto trace = solar::generateDayTrace(solar::SiteId::AZ,
                                               solar::Month::Apr, 1);

    obs::TelemetryRecorder telem(4, obs::TelemetryMode::EveryN);
    obs::Auditor audit; // counting mode
    obs::Profiler profiler;

    core::SimConfig cfg;
    cfg.dtSeconds = 60.0;
    cfg.telemetry = &telem;
    cfg.audit = &audit;
    {
        obs::Profiler::Attach attach(&profiler);
        core::simulateDay(module, trace, workload::WorkloadId::HM2, cfg);
    }

    // The default scenario satisfies every invariant; a violation here
    // means a physics regression (or an over-tight tolerance that
    // would kill --audit=strict runs in CI).
    EXPECT_EQ(audit.violationCount(), 0u);
    EXPECT_GT(audit.stepsAudited(), 0u);

    // The embedded scopes account for essentially the whole day loop:
    // the per-step scope plus the batched MPP precompute that runs
    // before the step loop.
    const auto *day =
        profiler.root().children.count("day")
            ? profiler.root().children.at("day").get()
            : nullptr;
    ASSERT_NE(day, nullptr);
    ASSERT_EQ(day->children.count("step"), 1u);
    double scoped_ns =
        static_cast<double>(day->children.at("step")->totalNs);
    if (day->children.count("mpp.lookupBatch"))
        scoped_ns += static_cast<double>(
            day->children.at("mpp.lookupBatch")->totalNs);
    EXPECT_GE(scoped_ns, 0.9 * static_cast<double>(day->totalNs));

    const std::string got = digest(telem, audit);

    if (std::getenv("SC_UPDATE_GOLDEN")) {
        std::ofstream out(goldenPath());
        ASSERT_TRUE(out) << "cannot write " << goldenPath();
        out << got;
        GTEST_SKIP() << "golden regenerated at " << goldenPath();
    }

    std::ifstream in(goldenPath());
    ASSERT_TRUE(in) << "missing golden " << goldenPath()
                    << " (run with SC_UPDATE_GOLDEN=1 to create)";
    std::stringstream want;
    want << in.rdbuf();

    campaign::FlatJson golden, candidate;
    std::string error;
    ASSERT_TRUE(campaign::parseJsonFlat(want.str(), golden, error))
        << error;
    ASSERT_TRUE(campaign::parseJsonFlat(got, candidate, error)) << error;
    const auto diffs = campaign::compareFlat(golden, candidate, {});
    for (const auto &d : diffs) {
        ADD_FAILURE() << d.path << ": golden=" << d.golden
                      << " candidate=" << d.candidate;
    }
}

} // namespace
} // namespace solarcore
