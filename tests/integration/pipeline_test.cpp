/**
 * @file
 * Cross-module integration tests: day-long simulations across sites,
 * months, workloads and policies, asserting the paper's qualitative
 * results end to end. Sims run with a coarse 60 s step to stay fast.
 */

#include <gtest/gtest.h>

#include "core/solarcore.hpp"
#include "util/stats.hpp"

namespace solarcore {
namespace {

core::SimConfig
fastConfig(core::PolicyKind policy)
{
    core::SimConfig cfg;
    cfg.policy = policy;
    cfg.dtSeconds = 60.0;
    return cfg;
}

/** Parameterized over all 16 site-months with the default policy. */
class SiteMonthPipeline
    : public ::testing::TestWithParam<std::tuple<solar::SiteId,
                                                 solar::Month>>
{
};

TEST_P(SiteMonthPipeline, InvariantsHold)
{
    const auto [site, month] = GetParam();
    const auto module = pv::buildBp3180n();
    const auto trace = solar::generateDayTrace(site, month, 1);
    const auto r = core::simulateDay(module, trace,
                                     workload::WorkloadId::HM2,
                                     fastConfig(core::PolicyKind::MpptOpt));

    EXPECT_GT(r.mppEnergyWh, 50.0);
    EXPECT_LT(r.mppEnergyWh, 1200.0);
    EXPECT_GE(r.utilization, 0.4) << solar::siteName(site);
    EXPECT_LE(r.utilization, 1.0);
    EXPECT_GE(r.effectiveFraction, 0.5);
    EXPECT_LE(r.effectiveFraction, 1.0);
    EXPECT_GT(r.avgTrackingError, 0.0);
    EXPECT_LT(r.avgTrackingError, 0.35);
    EXPECT_GT(r.solarInstructions, 1e12);
}

INSTANTIATE_TEST_SUITE_P(
    AllSiteMonths, SiteMonthPipeline,
    ::testing::Combine(::testing::Values(solar::SiteId::AZ, solar::SiteId::CO,
                                         solar::SiteId::NC,
                                         solar::SiteId::TN),
                       ::testing::Values(solar::Month::Jan, solar::Month::Apr,
                                         solar::Month::Jul,
                                         solar::Month::Oct)));

TEST(Headline, AverageUtilizationNearPaper)
{
    // Paper abstract: ~82% average green-energy utilization. Average
    // MPPT&Opt across the 16 site-months (one workload, one seed) and
    // require the 75%..95% band.
    const auto module = pv::buildBp3180n();
    RunningStats util;
    for (auto [site, month] : solar::allSiteMonths()) {
        const auto trace = solar::generateDayTrace(site, month, 1);
        const auto r =
            core::simulateDay(module, trace, workload::WorkloadId::ML2,
                              fastConfig(core::PolicyKind::MpptOpt));
        util.add(r.utilization);
    }
    EXPECT_GT(util.mean(), 0.75);
    EXPECT_LT(util.mean(), 0.95);
}

TEST(Headline, OptBeatsRoundRobinOnAverage)
{
    // Paper: +10.8% PTP vs round-robin on average. Require a positive
    // gap on the heterogeneous mixes where the TPR heuristic can act.
    const auto module = pv::buildBp3180n();
    RunningStats ratio;
    for (auto wl : {workload::WorkloadId::H2, workload::WorkloadId::M2,
                    workload::WorkloadId::HM2, workload::WorkloadId::ML2}) {
        const auto trace = solar::generateDayTrace(solar::SiteId::AZ,
                                                   solar::Month::Apr, 1);
        const auto opt = core::simulateDay(
            module, trace, wl, fastConfig(core::PolicyKind::MpptOpt));
        const auto rr = core::simulateDay(
            module, trace, wl, fastConfig(core::PolicyKind::MpptRr));
        ratio.add(opt.solarInstructions / rr.solarInstructions);
    }
    EXPECT_GT(ratio.mean(), 1.03);
    EXPECT_LT(ratio.mean(), 1.35);
}

TEST(Headline, IcTrailsRoundRobin)
{
    // Paper: MPPT&IC ~0.82 vs MPPT&RR ~1.02 normalized PTP.
    const auto module = pv::buildBp3180n();
    const auto trace = solar::generateDayTrace(solar::SiteId::CO,
                                               solar::Month::Jul, 1);
    const auto rr = core::simulateDay(module, trace,
                                      workload::WorkloadId::HM2,
                                      fastConfig(core::PolicyKind::MpptRr));
    const auto ic = core::simulateDay(module, trace,
                                      workload::WorkloadId::HM2,
                                      fastConfig(core::PolicyKind::MpptIc));
    EXPECT_LT(ic.solarInstructions, 0.95 * rr.solarInstructions);
}

TEST(Headline, GustyMonthsTrackWorseThanCalmOnes)
{
    // Table 7's weather effect: cells with volatile skies err more.
    // Aggregate the high-gust site-months (>= 0.75) against the calm
    // ones (<= 0.30), several weather seeds each.
    const auto module = pv::buildBp3180n();
    RunningStats gusty;
    RunningStats calm;
    for (auto [site, month] : solar::allSiteMonths()) {
        const auto &wx = solar::weatherParams(site, month);
        RunningStats *bucket = nullptr;
        if (wx.gustiness >= 0.75)
            bucket = &gusty;
        else if (wx.gustiness <= 0.30)
            bucket = &calm;
        if (!bucket)
            continue;
        for (std::uint64_t seed = 1; seed <= 3; ++seed) {
            auto cfg = fastConfig(core::PolicyKind::MpptOpt);
            cfg.seed = seed;
            bucket->add(core::simulateDay(
                            module,
                            solar::generateDayTrace(site, month, seed),
                            workload::WorkloadId::M1, cfg)
                            .avgTrackingError);
        }
    }
    ASSERT_GT(gusty.count(), 0u);
    ASSERT_GT(calm.count(), 0u);
    EXPECT_GT(gusty.mean(), calm.mean());
}

TEST(Headline, HighEpiTracksWorseThanLowEpi)
{
    // Table 7 rows: H1 shows larger errors than L1 in nearly every
    // cell (larger load-power ripple).
    const auto module = pv::buildBp3180n();
    RunningStats h1;
    RunningStats l1;
    for (auto month : solar::allMonths()) {
        const auto trace =
            solar::generateDayTrace(solar::SiteId::AZ, month, 1);
        h1.add(core::simulateDay(module, trace, workload::WorkloadId::H1,
                                 fastConfig(core::PolicyKind::MpptOpt))
                   .avgTrackingError);
        l1.add(core::simulateDay(module, trace, workload::WorkloadId::L1,
                                 fastConfig(core::PolicyKind::MpptOpt))
                   .avgTrackingError);
    }
    EXPECT_GT(h1.mean(), l1.mean());
}

TEST(Headline, UmbrellaHeaderExposesFullApi)
{
    // Compile-time integration: build every major object through the
    // single public include.
    const auto module = pv::buildBp3180n();
    pv::PvArray array(module, 1, 1, pv::kStc);
    const auto mpp = pv::findMpp(array);
    EXPECT_NEAR(mpp.power, 180.0, 1.0);

    power::DcDcConverter conv;
    auto st = power::pinRailVoltage(array, conv, 12.0, 100.0);
    EXPECT_TRUE(st.valid);

    cpu::MultiCoreChip chip(cpu::defaultChipConfig(),
                            cpu::DvfsTable::paperDefault(),
                            cpu::EnergyParams{},
                            workload::workloadSet(workload::WorkloadId::L2),
                            1);
    core::TprOptAdapter adapter;
    core::SolarCoreController ctl(array, chip, adapter);
    chip.gateAll();
    EXPECT_TRUE(ctl.track().solarViable);
}

} // namespace
} // namespace solarcore
