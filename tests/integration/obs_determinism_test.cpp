/**
 * @file
 * Observability must not perturb the simulation: a traced day produces
 * byte-identical metrics to an untraced one, and merged per-worker
 * buffers/registries render identically regardless of how the work was
 * split across workers.
 */

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/solarcore.hpp"
#include "obs/stats_registry.hpp"
#include "obs/trace.hpp"

namespace solarcore {
namespace {

core::SimConfig
fastConfig()
{
    core::SimConfig cfg;
    cfg.dtSeconds = 60.0;
    return cfg;
}

/** Every DayResult metric, rendered exactly. */
std::string
metricsKey(const core::DayResult &r)
{
    std::ostringstream os;
    os.precision(17);
    os << r.mppEnergyWh << '|' << r.solarEnergyWh << '|' << r.gridEnergyWh
       << '|' << r.chipEnergyWh << '|' << r.utilization << '|'
       << r.effectiveFraction << '|' << r.solarInstructions << '|'
       << r.totalInstructions << '|' << r.avgTrackingError << '|'
       << r.transferCount << '|' << r.thermalThrottles << '|'
       << r.controllerSteps;
    return os.str();
}

TEST(ObsDeterminism, TracedDayMatchesUntracedByteForByte)
{
    const auto module = pv::buildBp3180n();
    const auto trace = solar::generateDayTrace(solar::SiteId::AZ,
                                               solar::Month::Jan, 1);

    auto plain_cfg = fastConfig();
    const auto plain = core::simulateDay(module, trace,
                                         workload::WorkloadId::HM2,
                                         plain_cfg);

    obs::StatsRegistry reg;
    obs::TraceBuffer buf;
    auto obs_cfg = fastConfig();
    obs_cfg.stats = &reg;
    obs_cfg.trace = &buf;
    const auto observed = core::simulateDay(module, trace,
                                            workload::WorkloadId::HM2,
                                            obs_cfg);

    EXPECT_EQ(metricsKey(plain), metricsKey(observed));
    // And the instrumentation actually recorded the day.
    EXPECT_GT(buf.size(), 0u);
    EXPECT_GT(reg.value("chip.dvfsTransitions"), 0.0);
    EXPECT_GT(reg.value("sim.mppEnergyWh"), 0.0);
}

TEST(ObsDeterminism, MergedOutputIndependentOfWorkerSplit)
{
    const auto module = pv::buildBp3180n();
    struct Task
    {
        solar::Month month;
        workload::WorkloadId wl;
    };
    const Task tasks[3] = {{solar::Month::Jan, workload::WorkloadId::H1},
                           {solar::Month::Apr, workload::WorkloadId::HM2},
                           {solar::Month::Jul, workload::WorkloadId::L1}};

    // "threads=1": every task funnels through worker buffer 0.
    // "threads=3": one buffer/registry per task, merged by task index.
    // Both runs are sequential here -- what the test pins down is that
    // the merge depends only on the task->buffer assignment, which is
    // exactly the property that makes the real thread pool's output
    // byte-identical at any worker count.
    auto renderSplit = [&](bool per_task_buffers) {
        obs::StatsRegistry regs[3];
        obs::TraceBuffer bufs[3];
        for (int t = 0; t < 3; ++t) {
            const int slot = per_task_buffers ? t : 0;
            auto cfg = fastConfig();
            cfg.stats = &regs[slot];
            cfg.trace = &bufs[slot];
            const auto day_trace = solar::generateDayTrace(
                solar::SiteId::AZ, tasks[t].month, 1);
            core::simulateDay(module, day_trace, tasks[t].wl, cfg);
        }
        obs::StatsRegistry merged;
        for (const auto &r : regs)
            merged.merge(r);
        std::ostringstream stats_os;
        merged.dumpJson(stats_os);

        std::ostringstream trace_os;
        obs::exportJsonl(obs::mergeBuffers({&bufs[0], &bufs[1], &bufs[2]}),
                         trace_os);
        return std::pair(stats_os.str(), trace_os.str());
    };

    const auto single = renderSplit(false);
    const auto split = renderSplit(true);
    EXPECT_EQ(single.first, split.first);
    // Trace lines differ only in the track id when the split changes,
    // so compare with the track field normalized out.
    auto stripTrack = [](std::string s) {
        for (std::size_t pos = 0;
             (pos = s.find(",\"track\":", pos)) != std::string::npos;) {
            const std::size_t end = s.find(',', pos + 9);
            s.erase(pos, end - pos);
        }
        return s;
    };
    EXPECT_EQ(stripTrack(single.second), stripTrack(split.second));
    EXPECT_FALSE(single.second.empty());
}

} // namespace
} // namespace solarcore
