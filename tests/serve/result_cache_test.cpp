/**
 * @file
 * Tests for the in-memory LRU answer cache: hit/miss semantics, LRU
 * promotion and eviction order, refresh-on-reinsert, the capacity-0
 * disable switch, and counter accounting.
 */

#include <string>

#include <gtest/gtest.h>

#include "serve/result_cache.hpp"

namespace solarcore::serve {
namespace {

TEST(ResultCache, HitReturnsStoredBytes)
{
    ResultCache cache(4);
    cache.insert("key-a", "body-a");

    std::string body;
    ASSERT_TRUE(cache.lookup("key-a", body));
    EXPECT_EQ(body, "body-a");
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 0u);
    EXPECT_EQ(cache.size(), 1u);
}

TEST(ResultCache, MissOnUnknownKey)
{
    ResultCache cache(4);
    std::string body = "sentinel";
    EXPECT_FALSE(cache.lookup("absent", body));
    EXPECT_EQ(body, "sentinel"); // untouched on miss
    EXPECT_EQ(cache.misses(), 1u);
}

TEST(ResultCache, LruEvictionRespectsPromotion)
{
    ResultCache cache(2);
    cache.insert("a", "A");
    cache.insert("b", "B");

    // Touch "a" so "b" becomes least-recently-used, then overflow.
    std::string body;
    ASSERT_TRUE(cache.lookup("a", body));
    cache.insert("c", "C");

    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.evictions(), 1u);
    EXPECT_FALSE(cache.lookup("b", body)); // evicted
    ASSERT_TRUE(cache.lookup("a", body));
    EXPECT_EQ(body, "A");
    ASSERT_TRUE(cache.lookup("c", body));
    EXPECT_EQ(body, "C");
}

TEST(ResultCache, ReinsertRefreshesRecencyAndBody)
{
    ResultCache cache(2);
    cache.insert("a", "A1");
    cache.insert("b", "B");
    cache.insert("a", "A2"); // refresh: "b" is now LRU
    cache.insert("c", "C");  // evicts "b", not "a"

    std::string body;
    EXPECT_FALSE(cache.lookup("b", body));
    ASSERT_TRUE(cache.lookup("a", body));
    EXPECT_EQ(body, "A2");
    EXPECT_EQ(cache.size(), 2u);
}

TEST(ResultCache, CapacityZeroDisables)
{
    ResultCache cache(0);
    cache.insert("a", "A");
    std::string body;
    EXPECT_FALSE(cache.lookup("a", body));
    EXPECT_EQ(cache.size(), 0u);
}

TEST(ResultCache, CapacityOneKeepsNewest)
{
    ResultCache cache(1);
    cache.insert("a", "A");
    cache.insert("b", "B");
    std::string body;
    EXPECT_FALSE(cache.lookup("a", body));
    ASSERT_TRUE(cache.lookup("b", body));
    EXPECT_EQ(body, "B");
}

TEST(ResultCache, CountersAccumulate)
{
    ResultCache cache(8);
    std::string body;
    for (int i = 0; i < 3; ++i)
        cache.lookup("missing", body);
    cache.insert("k", "v");
    for (int i = 0; i < 5; ++i)
        ASSERT_TRUE(cache.lookup("k", body));
    EXPECT_EQ(cache.misses(), 3u);
    EXPECT_EQ(cache.hits(), 5u);
    EXPECT_EQ(cache.insertions(), 1u);
    EXPECT_EQ(cache.evictions(), 0u);
}

} // namespace
} // namespace solarcore::serve
