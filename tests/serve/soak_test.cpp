/**
 * @file
 * Concurrency soak for the serve daemon: many client threads hammer
 * one server with a mixed batch of queries and every reply must be
 * byte-identical to the single-threaded warm-up answer for the same
 * query -- the determinism acceptance bar at full concurrency. The
 * warm-up also pins the cache accounting: after it, the storm phase
 * must be 100% result-cache hits (the >=95% criterion with margin).
 */

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

#ifndef _WIN32
#include <stdlib.h>
#endif

#include <filesystem>

namespace solarcore::serve {
namespace {

constexpr int kThreads = 8;
constexpr int kCallsPerThread = 30;

// Reply frame: tag u8 + version u32 + request id u64; everything
// after is the deterministic answer body.
constexpr std::size_t kReplyHeaderBytes = 13;

PlanQuery
soakQuery(int variant, std::uint64_t request_id)
{
    static const solar::SiteId sites[] = {
        solar::SiteId::AZ, solar::SiteId::CO, solar::SiteId::NC,
        solar::SiteId::TN, solar::SiteId::AZ, solar::SiteId::CO};
    PlanQuery q;
    q.requestId = request_id;
    q.nodesPerUnit = 50;
    q.grid.sites = {sites[variant % 6]};
    q.grid.months = {solar::Month::Jul};
    q.grid.policies = {campaign::CampaignPolicy::MpptOpt};
    q.grid.workloads = {workload::WorkloadId::HM2};
    q.grid.seeds = {1 + static_cast<std::uint64_t>(variant / 4)};
    q.grid.dtSeconds = 480.0;
    return q;
}

constexpr int kVariants = 6;

TEST(ServeSoak, ConcurrentClientsGetByteIdenticalAnswers)
{
    if (!serveSupported())
        GTEST_SKIP() << "AF_UNIX serving not supported here";

    char tmpl[] = "/tmp/scsoakXXXXXX";
    ASSERT_NE(mkdtemp(tmpl), nullptr);
    const std::string dir = tmpl;

    ServeConfig cfg;
    cfg.socketPath = dir + "/soak.sock";
    cfg.workers = 4;
    cfg.maxQueueDepth = 256;
    Server server(cfg);
    ASSERT_TRUE(server.start());

    // Warm-up: one client, one pass over every distinct query. These
    // replies are the reference bodies.
    std::vector<std::string> reference(kVariants);
    {
        Client client;
        ASSERT_TRUE(client.connect(cfg.socketPath));
        for (int v = 0; v < kVariants; ++v) {
            const auto query = soakQuery(v, 1000 + v);
            ASSERT_TRUE(client.sendFramePayload(encodeQuery(query)));
            std::string frame;
            ASSERT_TRUE(client.receiveFrame(frame, 60000));
            PlanReply reply;
            std::string error;
            ASSERT_TRUE(decodeReply(frame, reply, error)) << error;
            ASSERT_EQ(reply.status, ReplyStatus::Ok);
            ASSERT_GT(frame.size(), kReplyHeaderBytes);
            reference[v] = frame.substr(kReplyHeaderBytes);
        }
        const auto warm = server.snapshot();
        EXPECT_EQ(warm.resultCacheMisses,
                  static_cast<std::uint64_t>(kVariants));
        EXPECT_EQ(warm.resultCacheHits, 0u);
    }

    // Storm: every thread rotates through the variants on its own
    // connection and byte-compares each answer body.
    std::vector<std::thread> threads;
    std::vector<std::vector<std::string>> failures(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            auto &fail = failures[t];
            Client client;
            if (!client.connect(cfg.socketPath)) {
                fail.push_back("connect failed");
                return;
            }
            for (int i = 0; i < kCallsPerThread; ++i) {
                const int v = (t + i) % kVariants;
                const std::uint64_t id =
                    10000 + static_cast<std::uint64_t>(t) * 1000 + i;
                const auto query = soakQuery(v, id);
                if (!client.sendFramePayload(encodeQuery(query))) {
                    fail.push_back("send failed");
                    return;
                }
                std::string frame;
                if (!client.receiveFrame(frame, 60000)) {
                    fail.push_back("receive timed out");
                    return;
                }
                PlanReply reply;
                std::string error;
                if (!decodeReply(frame, reply, error)) {
                    fail.push_back("undecodable reply: " + error);
                    continue;
                }
                if (reply.status != ReplyStatus::Ok) {
                    fail.push_back(std::string("status ") +
                                   replyStatusName(reply.status));
                    continue;
                }
                if (reply.requestId != id) {
                    fail.push_back("request id mismatch");
                    continue;
                }
                if (frame.substr(kReplyHeaderBytes) != reference[v])
                    fail.push_back("answer bytes diverged, variant " +
                                   std::to_string(v));
            }
        });
    }
    for (auto &th : threads)
        th.join();
    for (int t = 0; t < kThreads; ++t)
        EXPECT_TRUE(failures[t].empty())
            << "thread " << t << ": " << failures[t].front() << " ("
            << failures[t].size() << " failures)";

    const auto snap = server.snapshot();
    const std::uint64_t total =
        static_cast<std::uint64_t>(kVariants) +
        static_cast<std::uint64_t>(kThreads) * kCallsPerThread;
    EXPECT_EQ(snap.requests, total);
    EXPECT_EQ(snap.ok, total);
    // The storm phase ran entirely out of the answer cache: every
    // lookup after warm-up hit (the >=95% bar, met at 100%).
    EXPECT_EQ(snap.resultCacheMisses,
              static_cast<std::uint64_t>(kVariants));
    EXPECT_EQ(snap.resultCacheHits,
              static_cast<std::uint64_t>(kThreads) * kCallsPerThread);
    EXPECT_EQ(snap.unitsSimulated,
              static_cast<std::uint64_t>(kVariants));
    EXPECT_EQ(snap.connections,
              static_cast<std::uint64_t>(kThreads) + 1);

    server.stop();
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
}

} // namespace
} // namespace solarcore::serve
