/**
 * @file
 * Codec and fuzz battery for the serve wire protocol.
 *
 * The decoders carry the robustness contract of the whole daemon: a
 * fuzzer (or a buggy client) can hand them arbitrary bytes and they
 * must answer with a typed failure, never crash, and never allocate
 * towards an unvalidated size. These tests exercise round-trips,
 * every-byte truncation, targeted field corruption, random garbage
 * and the determinism identity between encodeReply() and the cached
 * encodeAnswerBody()/encodeReplyFromBody() path.
 */

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "serve/protocol.hpp"

namespace solarcore::serve {
namespace {

// Fixed query-frame offsets (see encodeQuery): tag, version u32,
// request id u64, deadline u32, nodes-per-unit u32, then the site
// axis (count u32 + u8 entries).
constexpr std::size_t kOffVersion = 1;
constexpr std::size_t kOffSiteCount = 21;
constexpr std::size_t kOffFirstSite = 25;

PlanQuery
sampleQuery()
{
    PlanQuery q;
    q.requestId = 0x1122334455667788ull;
    q.deadlineMillis = 1500;
    q.nodesPerUnit = 250;
    q.grid.sites = {solar::SiteId::AZ, solar::SiteId::NC};
    q.grid.months = {solar::Month::Jan, solar::Month::Jul};
    q.grid.policies = {campaign::CampaignPolicy::MpptOpt,
                       campaign::CampaignPolicy::Battery};
    q.grid.workloads = {workload::WorkloadId::H1,
                        workload::WorkloadId::ML2};
    q.grid.seeds = {1, 42, 0xdeadbeefull};
    q.grid.dtSeconds = 120.0;
    q.grid.fixedBudgetW = 60.0;
    q.econ.co2KgPerKwh = 0.55;
    q.econ.panelUsd = 900.0;
    return q;
}

PlanAnswer
sampleAnswer()
{
    PlanAnswer a;
    a.unitCount = 16;
    a.nodesPerUnit = 250;
    a.nodes = 4000.0;
    a.mppEnergyWh = 1234.5;
    a.solarEnergyWh = 1100.25;
    a.gridEnergyWh = 50.125;
    a.chipEnergyWh = 1150.375;
    a.solarInstructions = 3.5e12;
    a.totalInstructions = 3.7e12;
    a.fleetUtilization = 0.891;
    a.greenFraction = 0.956;
    a.solarKwhPerDay = 1.10025;
    a.gridKwhPerDay = 0.050125;
    a.co2AvoidedKgPerYear = 160.6;
    a.savingsUsdPerYear = 48.2;
    a.panelPaybackYears = 18.67;
    a.batteryAvoidedUsdPerYear = 150.0;
    return a;
}

/** Tiny deterministic PRNG (xorshift64*) for garbage generation. */
struct Rng
{
    std::uint64_t state;
    explicit Rng(std::uint64_t seed) : state(seed ? seed : 1) {}
    std::uint64_t next()
    {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        return state * 0x2545F4914F6CDD1Dull;
    }
};

TEST(ServeProtocol, QueryRoundTrip)
{
    const auto q = sampleQuery();
    const std::string frame = encodeQuery(q);

    PlanQuery d;
    std::string error;
    ASSERT_TRUE(decodeQuery(frame, d, error)) << error;
    EXPECT_EQ(d.requestId, q.requestId);
    EXPECT_EQ(d.deadlineMillis, q.deadlineMillis);
    EXPECT_EQ(d.nodesPerUnit, q.nodesPerUnit);
    EXPECT_EQ(d.grid.sites, q.grid.sites);
    EXPECT_EQ(d.grid.months, q.grid.months);
    EXPECT_EQ(d.grid.policies, q.grid.policies);
    EXPECT_EQ(d.grid.workloads, q.grid.workloads);
    EXPECT_EQ(d.grid.seeds, q.grid.seeds);
    EXPECT_DOUBLE_EQ(d.grid.dtSeconds, q.grid.dtSeconds);
    EXPECT_DOUBLE_EQ(d.grid.fixedBudgetW, q.grid.fixedBudgetW);
    EXPECT_DOUBLE_EQ(d.grid.batteryDerating, q.grid.batteryDerating);
    EXPECT_DOUBLE_EQ(d.grid.trackingPeriodMinutes,
                     q.grid.trackingPeriodMinutes);
    EXPECT_DOUBLE_EQ(d.econ.co2KgPerKwh, q.econ.co2KgPerKwh);
    EXPECT_DOUBLE_EQ(d.econ.gridUsdPerKwh, q.econ.gridUsdPerKwh);
    EXPECT_DOUBLE_EQ(d.econ.panelUsd, q.econ.panelUsd);
    EXPECT_DOUBLE_EQ(d.econ.batteryUsd, q.econ.batteryUsd);
    EXPECT_DOUBLE_EQ(d.econ.batteryLifeYears, q.econ.batteryLifeYears);
}

TEST(ServeProtocol, ReplyRoundTripAllStatuses)
{
    for (int s = 0; s <= 6; ++s) {
        PlanReply r;
        r.requestId = 77 + static_cast<std::uint64_t>(s);
        r.status = static_cast<ReplyStatus>(s);
        r.message = r.status == ReplyStatus::Ok ? "" : "diagnostic";
        if (r.status == ReplyStatus::Ok)
            r.answer = sampleAnswer();

        PlanReply d;
        std::string error;
        ASSERT_TRUE(decodeReply(encodeReply(r), d, error)) << error;
        EXPECT_EQ(d.requestId, r.requestId);
        EXPECT_EQ(d.status, r.status);
        EXPECT_EQ(d.message, r.message);
        if (r.status == ReplyStatus::Ok) {
            EXPECT_EQ(d.answer.unitCount, r.answer.unitCount);
            EXPECT_DOUBLE_EQ(d.answer.solarEnergyWh,
                             r.answer.solarEnergyWh);
            EXPECT_DOUBLE_EQ(d.answer.panelPaybackYears,
                             r.answer.panelPaybackYears);
        }
    }
}

TEST(ServeProtocol, AnswerBodyMatchesFullEncoder)
{
    PlanReply r;
    r.requestId = 0xfeedull;
    r.status = ReplyStatus::Ok;
    r.answer = sampleAnswer();
    // The cached-path assembly must be byte-identical to the direct
    // encoder -- this is what makes cache hits byte-exact replays.
    EXPECT_EQ(encodeReplyFromBody(r.requestId, encodeAnswerBody(r.answer)),
              encodeReply(r));
}

TEST(ServeProtocol, AnswerBodyPreservesRawDoubleBits)
{
    // Doubles travel as raw bits: a denormal and a negative zero must
    // survive the trip exactly.
    PlanAnswer a = sampleAnswer();
    a.fleetUtilization = -0.0;
    a.greenFraction = std::numeric_limits<double>::denorm_min();
    PlanReply r;
    r.requestId = 5;
    r.status = ReplyStatus::Ok;
    r.answer = a;

    PlanReply d;
    std::string error;
    ASSERT_TRUE(decodeReply(encodeReply(r), d, error)) << error;
    EXPECT_EQ(std::signbit(d.answer.fleetUtilization), true);
    EXPECT_EQ(d.answer.greenFraction,
              std::numeric_limits<double>::denorm_min());
}

TEST(ServeProtocol, EveryQueryTruncationFailsCleanly)
{
    const std::string frame = encodeQuery(sampleQuery());
    for (std::size_t len = 0; len < frame.size(); ++len) {
        PlanQuery d;
        std::string error;
        EXPECT_FALSE(decodeQuery(frame.substr(0, len), d, error))
            << "prefix of length " << len << " decoded";
        EXPECT_FALSE(error.empty());
    }
}

TEST(ServeProtocol, EveryReplyTruncationFailsCleanly)
{
    PlanReply r;
    r.requestId = 9;
    r.status = ReplyStatus::Ok;
    r.answer = sampleAnswer();
    const std::string frame = encodeReply(r);
    for (std::size_t len = 0; len < frame.size(); ++len) {
        PlanReply d;
        std::string error;
        EXPECT_FALSE(decodeReply(frame.substr(0, len), d, error));
    }
}

TEST(ServeProtocol, TrailingBytesRejected)
{
    std::string frame = encodeQuery(sampleQuery());
    frame.push_back('\0');
    PlanQuery d;
    std::string error;
    EXPECT_FALSE(decodeQuery(frame, d, error));
}

TEST(ServeProtocol, RequestIdSurvivesVersionMismatch)
{
    // A wrong protocol version must fail, but the request id must
    // still come out so the server can address its BadRequest reply.
    std::string frame = encodeQuery(sampleQuery());
    frame[kOffVersion] = static_cast<char>(0x7f);
    PlanQuery d;
    std::string error;
    EXPECT_FALSE(decodeQuery(frame, d, error));
    EXPECT_EQ(d.requestId, sampleQuery().requestId);
}

TEST(ServeProtocol, WrongTagRejected)
{
    std::string frame = encodeQuery(sampleQuery());
    frame[0] = 'X';
    PlanQuery d;
    std::string error;
    EXPECT_FALSE(decodeQuery(frame, d, error));

    PlanReply rd;
    EXPECT_FALSE(decodeReply(frame, rd, error));
}

TEST(ServeProtocol, BadEnumValueRejected)
{
    std::string frame = encodeQuery(sampleQuery());
    frame[kOffFirstSite] = static_cast<char>(200);
    PlanQuery d;
    std::string error;
    EXPECT_FALSE(decodeQuery(frame, d, error));
}

TEST(ServeProtocol, HugeAxisCountFailsWithoutAllocating)
{
    // Declare 0xffffffff sites; the decoder must reject the count
    // against both kMaxAxisEntries and the remaining bytes instead of
    // reserving towards it.
    std::string frame = encodeQuery(sampleQuery());
    std::memset(frame.data() + kOffSiteCount, 0xff, 4);
    PlanQuery d;
    std::string error;
    EXPECT_FALSE(decodeQuery(frame, d, error));
}

TEST(ServeProtocol, ZeroAxisCountRejected)
{
    std::string frame = encodeQuery(sampleQuery());
    std::memset(frame.data() + kOffSiteCount, 0, 4);
    PlanQuery d;
    std::string error;
    EXPECT_FALSE(decodeQuery(frame, d, error));
}

TEST(ServeProtocol, ValidateRejectsBadValues)
{
    {
        PlanQuery q = sampleQuery();
        q.nodesPerUnit = 0;
        EXPECT_FALSE(validateQuery(q).empty());
    }
    {
        PlanQuery q = sampleQuery();
        q.grid.dtSeconds = std::nan("");
        EXPECT_FALSE(validateQuery(q).empty());
    }
    {
        PlanQuery q = sampleQuery();
        q.grid.dtSeconds = -30.0;
        EXPECT_FALSE(validateQuery(q).empty());
    }
    {
        PlanQuery q = sampleQuery();
        q.grid.batteryDerating = 1.5;
        EXPECT_FALSE(validateQuery(q).empty());
    }
    {
        PlanQuery q = sampleQuery();
        q.econ.panelUsd = -1.0;
        EXPECT_FALSE(validateQuery(q).empty());
    }
    {
        PlanQuery q = sampleQuery();
        q.econ.co2KgPerKwh = std::numeric_limits<double>::infinity();
        EXPECT_FALSE(validateQuery(q).empty());
    }
    EXPECT_TRUE(validateQuery(sampleQuery()).empty());
}

TEST(ServeProtocol, RandomGarbageNeverCrashes)
{
    Rng rng(0x5eed5eedull);
    for (int i = 0; i < 5000; ++i) {
        std::string frame;
        const std::size_t len = rng.next() % 300;
        frame.reserve(len);
        for (std::size_t b = 0; b < len; ++b)
            frame.push_back(static_cast<char>(rng.next() & 0xff));
        PlanQuery q;
        PlanReply r;
        std::string error;
        // Either outcome is fine; crashing or tripping a sanitizer is
        // the only failure mode.
        decodeQuery(frame, q, error);
        decodeReply(frame, r, error);
    }
}

TEST(ServeProtocol, MutatedValidFramesNeverCrash)
{
    const std::string base = encodeQuery(sampleQuery());
    Rng rng(0xabcdefull);
    for (int i = 0; i < 5000; ++i) {
        std::string frame = base;
        const int flips = 1 + static_cast<int>(rng.next() % 4);
        for (int f = 0; f < flips; ++f)
            frame[rng.next() % frame.size()] ^=
                static_cast<char>(1u << (rng.next() % 8));
        PlanQuery q;
        std::string error;
        if (decodeQuery(frame, q, error)) {
            // Anything that decodes must also be semantically valid;
            // the decoder runs validateQuery() itself.
            EXPECT_TRUE(validateQuery(q).empty());
        }
    }
}

TEST(ServeProtocol, KeyMaterialSeparatesAnswerInputs)
{
    const auto base = sampleQuery();
    const std::string k0 = queryKeyMaterial(base, "portable");

    // Identical query -> identical material (the cache identity).
    EXPECT_EQ(queryKeyMaterial(sampleQuery(), "portable"), k0);

    // Every answer-changing input must separate the key.
    {
        PlanQuery q = base;
        q.nodesPerUnit += 1;
        EXPECT_NE(queryKeyMaterial(q, "portable"), k0);
    }
    {
        PlanQuery q = base;
        q.econ.gridUsdPerKwh = 0.2;
        EXPECT_NE(queryKeyMaterial(q, "portable"), k0);
    }
    {
        PlanQuery q = base;
        q.grid.seeds.push_back(7);
        EXPECT_NE(queryKeyMaterial(q, "portable"), k0);
    }
    {
        PlanQuery q = base;
        q.grid.dtSeconds = 60.0;
        EXPECT_NE(queryKeyMaterial(q, "portable"), k0);
    }
    EXPECT_NE(queryKeyMaterial(base, "avx2"), k0);

    // The request id and deadline do not change the answer, so they
    // must NOT separate the key -- that would defeat the cache.
    {
        PlanQuery q = base;
        q.requestId += 99;
        q.deadlineMillis += 99;
        EXPECT_EQ(queryKeyMaterial(q, "portable"), k0);
    }
}

// ---- traced (v2) query frames -------------------------------------

TEST(ServeProtocol, TracedQueryRoundTrip)
{
    PlanQuery q = sampleQuery();
    q.traceId = 0xabcdef0123456789ull;
    const std::string frame = encodeQuery(q);

    std::uint32_t version = 0;
    std::memcpy(&version, frame.data() + kOffVersion, sizeof(version));
    EXPECT_EQ(version, kProtocolVersionTraced);

    PlanQuery d;
    std::string error;
    ASSERT_TRUE(decodeQuery(frame, d, error)) << error;
    EXPECT_EQ(d.traceId, q.traceId);
    EXPECT_EQ(d.requestId, q.requestId);
    EXPECT_EQ(d.grid.seeds, q.grid.seeds);
}

TEST(ServeProtocol, UntracedQueryStillEncodesV1Bytes)
{
    // Backward compatibility both ways: a client without a trace id
    // emits the exact pre-trace frame (a pre-trace server keeps
    // working), and that frame still decodes here with traceId == 0.
    PlanQuery q = sampleQuery();
    q.traceId = 0;
    const std::string frame = encodeQuery(q);

    std::uint32_t version = 0;
    std::memcpy(&version, frame.data() + kOffVersion, sizeof(version));
    EXPECT_EQ(version, kProtocolVersion);

    PlanQuery traced = q;
    traced.traceId = 0x77;
    EXPECT_EQ(encodeQuery(traced).size(), frame.size() + 8);

    PlanQuery d;
    std::string error;
    ASSERT_TRUE(decodeQuery(frame, d, error)) << error;
    EXPECT_EQ(d.traceId, 0u);
}

TEST(ServeProtocol, ZeroTraceIdInTracedFrameRejected)
{
    // A v2 frame whose trace field is zero is malformed: zero encodes
    // "no trace" and must use the v1 layout.
    PlanQuery q = sampleQuery();
    q.traceId = 0x55;
    std::string frame = encodeQuery(q);
    std::memset(frame.data() + kOffVersion + 12, 0, 8);
    PlanQuery d;
    std::string error;
    EXPECT_FALSE(decodeQuery(frame, d, error));
    EXPECT_EQ(d.requestId, sampleQuery().requestId);
}

TEST(ServeProtocol, EveryTracedQueryTruncationFailsCleanly)
{
    PlanQuery q = sampleQuery();
    q.traceId = 0xfeedfacecafebeefull;
    const std::string frame = encodeQuery(q);
    for (std::size_t len = 0; len < frame.size(); ++len) {
        PlanQuery d;
        std::string error;
        EXPECT_FALSE(decodeQuery(frame.substr(0, len), d, error))
            << "decode accepted a " << len << "-byte prefix";
        EXPECT_FALSE(error.empty());
    }
}

TEST(ServeProtocol, MutatedTracedFramesNeverCrash)
{
    PlanQuery base_query = sampleQuery();
    base_query.traceId = 0x1234abcd5678ef01ull;
    const std::string base = encodeQuery(base_query);
    // Every byte position x several corruption values: decode must
    // either reject with an error or produce a validatable query.
    for (std::size_t pos = 0; pos < base.size(); ++pos) {
        for (const unsigned char value : {0x00, 0x01, 0x7f, 0xff}) {
            std::string frame = base;
            if (static_cast<unsigned char>(frame[pos]) == value)
                continue;
            frame[pos] = static_cast<char>(value);
            PlanQuery q;
            std::string error;
            if (decodeQuery(frame, q, error)) {
                // The decoder runs validateQuery() itself, so anything
                // that decodes must also be semantically valid.
                EXPECT_TRUE(validateQuery(q).empty());
            } else {
                EXPECT_FALSE(error.empty());
            }
        }
    }
}

TEST(ServeProtocol, TraceIdExcludedFromKeyMaterial)
{
    // The trace id annotates the request; it must never separate the
    // answer-cache key, or traced queries would always miss.
    PlanQuery q = sampleQuery();
    const std::string k0 = queryKeyMaterial(q, "portable");
    q.traceId = 0xdeadbeefull;
    EXPECT_EQ(queryKeyMaterial(q, "portable"), k0);
}

TEST(ServeProtocol, StatusNamesAreStable)
{
    EXPECT_STREQ(replyStatusName(ReplyStatus::Ok), "ok");
    EXPECT_STREQ(replyStatusName(ReplyStatus::ShedCapacity),
                 "shed-capacity");
    EXPECT_STREQ(replyStatusName(ReplyStatus::ShedDeadline),
                 "shed-deadline");
    EXPECT_STREQ(replyStatusName(ReplyStatus::Expired), "expired");
    EXPECT_STREQ(replyStatusName(ReplyStatus::BadRequest), "bad-request");
    EXPECT_STREQ(replyStatusName(ReplyStatus::ServerError),
                 "server-error");
    EXPECT_STREQ(replyStatusName(ReplyStatus::ShuttingDown),
                 "shutting-down");
}

} // namespace
} // namespace solarcore::serve
