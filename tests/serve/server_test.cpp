/**
 * @file
 * End-to-end tests of the solarcore_serve daemon over a real AF_UNIX
 * socket in a temp directory: byte-identical answers across worker
 * counts and cache states, the two cache layers and their counters,
 * deadline/capacity shedding, deadline expiry mid-service, typed
 * BadRequest replies, wire-abuse robustness (oversized declared
 * lengths, torn frames, mid-request disconnects), and the health
 * surfaces (status.json, OpenMetrics snapshot, stats registry rows).
 *
 * Queries use tiny grids at a coarse dt so a unit simulates in a few
 * milliseconds; determinism claims compare full reply frames
 * byte-for-byte, which is the acceptance bar of the subsystem.
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "campaign/golden.hpp"
#include "obs/metrics_export.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

#ifndef _WIN32
#include <stdlib.h>
#endif

namespace solarcore::serve {
namespace {

namespace fs = std::filesystem;

/** Temp dir + short socket path per test; removed on teardown. */
class ServeTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        if (!serveSupported())
            GTEST_SKIP() << "AF_UNIX serving not supported here";
#ifndef _WIN32
        char tmpl[] = "/tmp/scserveXXXXXX";
        ASSERT_NE(mkdtemp(tmpl), nullptr);
        dir_ = tmpl;
#endif
    }

    void TearDown() override
    {
        if (!dir_.empty()) {
            std::error_code ec;
            fs::remove_all(dir_, ec);
        }
    }

    std::string path(const std::string &leaf) const
    {
        return dir_ + "/" + leaf;
    }

    ServeConfig baseConfig(const std::string &socket_leaf) const
    {
        ServeConfig cfg;
        cfg.socketPath = path(socket_leaf);
        cfg.workers = 2;
        cfg.minPublishSeconds = 0.0;
        return cfg;
    }

    std::string dir_;
};

/** A fast two-unit query (2 seeds, coarse dt). */
PlanQuery
smallQuery(std::uint64_t request_id = 1)
{
    PlanQuery q;
    q.requestId = request_id;
    q.nodesPerUnit = 100;
    q.grid.sites = {solar::SiteId::AZ};
    q.grid.months = {solar::Month::Jul};
    q.grid.policies = {campaign::CampaignPolicy::MpptOpt};
    q.grid.workloads = {workload::WorkloadId::HM2};
    q.grid.seeds = {1, 2};
    q.grid.dtSeconds = 480.0;
    return q;
}

/** Send @p query as a raw frame and return the raw reply frame. */
bool
rawCall(Client &client, const PlanQuery &query, std::string &frame,
        int timeout_ms = 30000)
{
    if (!client.sendFramePayload(encodeQuery(query)))
        return false;
    return client.receiveFrame(frame, timeout_ms);
}

/** Poll @p predicate for up to ~2 s (counters update asynchronously). */
template <typename Pred>
bool
eventually(Pred &&predicate)
{
    for (int i = 0; i < 200; ++i) {
        if (predicate())
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return predicate();
}

TEST_F(ServeTest, AnswersAreByteIdenticalAcrossWorkersAndCaches)
{
    const auto query = smallQuery();
    std::string first;

    {
        Server server(baseConfig("a.sock"));
        ASSERT_TRUE(server.start());
        Client client;
        ASSERT_TRUE(client.connect(path("a.sock")));

        ASSERT_TRUE(rawCall(client, query, first));
        std::string again;
        ASSERT_TRUE(rawCall(client, query, again));
        // Second call is a result-cache hit and must replay the exact
        // bytes of the simulated answer.
        EXPECT_EQ(again, first);

        const auto snap = server.snapshot();
        EXPECT_EQ(snap.requests, 2u);
        EXPECT_EQ(snap.ok, 2u);
        EXPECT_EQ(snap.resultCacheMisses, 1u);
        EXPECT_EQ(snap.resultCacheHits, 1u);
        EXPECT_EQ(snap.unitsSimulated, 2u);
        server.stop();
    }

    // A different worker count (and a fresh process-state) must not
    // change a single bit of the reply.
    {
        auto cfg = baseConfig("b.sock");
        cfg.workers = 4;
        Server server(cfg);
        ASSERT_TRUE(server.start());
        Client client;
        ASSERT_TRUE(client.connect(path("b.sock")));
        std::string frame;
        ASSERT_TRUE(rawCall(client, query, frame));
        EXPECT_EQ(frame, first);
        server.stop();
    }

    // The decoded reply is a well-formed Ok plan.
    PlanReply reply;
    std::string error;
    ASSERT_TRUE(decodeReply(first, reply, error)) << error;
    EXPECT_EQ(reply.status, ReplyStatus::Ok);
    EXPECT_EQ(reply.requestId, query.requestId);
    EXPECT_EQ(reply.answer.unitCount, 2u);
    EXPECT_EQ(reply.answer.nodesPerUnit, 100u);
    EXPECT_DOUBLE_EQ(reply.answer.nodes, 200.0);
    EXPECT_GT(reply.answer.solarEnergyWh, 0.0);
    EXPECT_GT(reply.answer.savingsUsdPerYear, 0.0);
}

TEST_F(ServeTest, UnitCachePersistsAcrossServerRestarts)
{
    const auto query = smallQuery();
    auto cfg = baseConfig("c.sock");
    cfg.unitCacheDir = path("units");

    {
        Server server(cfg);
        ASSERT_TRUE(server.start());
        Client client;
        ASSERT_TRUE(client.connect(cfg.socketPath));
        std::string frame;
        ASSERT_TRUE(rawCall(client, query, frame));
        const auto snap = server.snapshot();
        EXPECT_TRUE(snap.unitCacheEnabled);
        EXPECT_EQ(snap.unitCache.stores, 2u);
        server.stop();
    }

    // A fresh server over the same cache dir answers the same query
    // without simulating anything.
    {
        Server server(cfg);
        ASSERT_TRUE(server.start());
        Client client;
        ASSERT_TRUE(client.connect(cfg.socketPath));
        std::string frame;
        ASSERT_TRUE(rawCall(client, query, frame));
        const auto snap = server.snapshot();
        EXPECT_EQ(snap.unitsSimulated, 0u);
        EXPECT_EQ(snap.unitsFromUnitCache, 2u);
        server.stop();
    }
}

TEST_F(ServeTest, GarbagePayloadGetsTypedBadRequest)
{
    Server server(baseConfig("d.sock"));
    ASSERT_TRUE(server.start());
    Client client;
    ASSERT_TRUE(client.connect(path("d.sock")));

    ASSERT_TRUE(client.sendFramePayload("complete garbage"));
    std::string frame;
    ASSERT_TRUE(client.receiveFrame(frame, 30000));
    PlanReply reply;
    std::string error;
    ASSERT_TRUE(decodeReply(frame, reply, error)) << error;
    EXPECT_EQ(reply.status, ReplyStatus::BadRequest);
    EXPECT_FALSE(reply.message.empty());

    // The connection survives a bad request; a valid query still
    // gets a plan.
    ASSERT_TRUE(rawCall(client, smallQuery(7), frame));
    ASSERT_TRUE(decodeReply(frame, reply, error)) << error;
    EXPECT_EQ(reply.status, ReplyStatus::Ok);
    EXPECT_EQ(reply.requestId, 7u);

    EXPECT_EQ(server.snapshot().badRequest, 1u);
    server.stop();
}

TEST_F(ServeTest, MalformedFieldValuesGetBadRequestWithEchoedId)
{
    Server server(baseConfig("e.sock"));
    ASSERT_TRUE(server.start());
    Client client;
    ASSERT_TRUE(client.connect(path("e.sock")));

    // Corrupt the first site token (offset 25: after tag, version,
    // request id, deadline, nodes-per-unit, site count).
    auto query = smallQuery(99);
    std::string payload = encodeQuery(query);
    payload[25] = static_cast<char>(250);
    ASSERT_TRUE(client.sendFramePayload(payload));

    std::string frame;
    ASSERT_TRUE(client.receiveFrame(frame, 30000));
    PlanReply reply;
    std::string error;
    ASSERT_TRUE(decodeReply(frame, reply, error)) << error;
    EXPECT_EQ(reply.status, ReplyStatus::BadRequest);
    EXPECT_EQ(reply.requestId, 99u); // id parsed before the bad field
    server.stop();
}

TEST_F(ServeTest, OversizedDeclaredLengthDropsConnection)
{
    Server server(baseConfig("f.sock"));
    ASSERT_TRUE(server.start());
    Client client;
    ASSERT_TRUE(client.connect(path("f.sock")));

    // Declare a frame bigger than kMaxFrameBytes; the server must cut
    // the connection instead of buffering towards the length.
    const std::uint32_t huge = static_cast<std::uint32_t>(kMaxFrameBytes) + 1;
    std::string bytes(4, '\0');
    std::memcpy(bytes.data(), &huge, 4);
    bytes += "some payload";
    ASSERT_TRUE(client.sendBytes(bytes));

    std::string frame;
    EXPECT_FALSE(client.receiveFrame(frame, 2000));
    EXPECT_TRUE(eventually([&] {
        return server.snapshot().protocolErrors >= 1;
    }));

    // The server keeps serving new connections.
    Client fresh;
    ASSERT_TRUE(fresh.connect(path("f.sock")));
    ASSERT_TRUE(rawCall(fresh, smallQuery(3), frame));
    PlanReply reply;
    std::string error;
    ASSERT_TRUE(decodeReply(frame, reply, error)) << error;
    EXPECT_EQ(reply.status, ReplyStatus::Ok);
    server.stop();
}

TEST_F(ServeTest, TornFrameThenDisconnectCountsProtocolError)
{
    Server server(baseConfig("g.sock"));
    ASSERT_TRUE(server.start());
    {
        Client client;
        ASSERT_TRUE(client.connect(path("g.sock")));
        // Declare 100 bytes, deliver 10, hang up.
        const std::uint32_t declared = 100;
        std::string bytes(4, '\0');
        std::memcpy(bytes.data(), &declared, 4);
        bytes += "0123456789";
        ASSERT_TRUE(client.sendBytes(bytes));
        client.close();
    }
    EXPECT_TRUE(eventually([&] {
        const auto snap = server.snapshot();
        return snap.protocolErrors >= 1 && snap.disconnects >= 1;
    }));

    Client fresh;
    ASSERT_TRUE(fresh.connect(path("g.sock")));
    std::string frame;
    ASSERT_TRUE(rawCall(fresh, smallQuery(4), frame));
    server.stop();
}

TEST_F(ServeTest, MidRequestDisconnectIsHarmless)
{
    Server server(baseConfig("h.sock"));
    ASSERT_TRUE(server.start());
    {
        Client client;
        ASSERT_TRUE(client.connect(path("h.sock")));
        // Send a valid query and vanish before the reply.
        ASSERT_TRUE(client.sendFramePayload(encodeQuery(smallQuery(5))));
        client.close();
    }
    // The request still executes; the failed reply write must not
    // take the server down.
    EXPECT_TRUE(eventually([&] {
        return server.snapshot().requests >= 1 &&
            server.snapshot().inflight == 0 &&
            server.snapshot().queueDepth == 0;
    }));

    Client fresh;
    ASSERT_TRUE(fresh.connect(path("h.sock")));
    std::string frame;
    ASSERT_TRUE(rawCall(fresh, smallQuery(6), frame));
    PlanReply reply;
    std::string error;
    ASSERT_TRUE(decodeReply(frame, reply, error)) << error;
    EXPECT_EQ(reply.status, ReplyStatus::Ok);
    server.stop();
}

TEST_F(ServeTest, PredictedDeadlineMissIsShedBeforeSimulating)
{
    auto cfg = baseConfig("i.sock");
    // Pin the per-unit estimate absurdly high so the admission test
    // is deterministic: 2 units x 1e9 us >> any sane deadline.
    cfg.estimateInitUnitMicros = 1e9;
    Server server(cfg);
    ASSERT_TRUE(server.start());
    Client client;
    ASSERT_TRUE(client.connect(cfg.socketPath));

    auto query = smallQuery(11);
    query.deadlineMillis = 50;
    std::string frame;
    ASSERT_TRUE(rawCall(client, query, frame));
    PlanReply reply;
    std::string error;
    ASSERT_TRUE(decodeReply(frame, reply, error)) << error;
    EXPECT_EQ(reply.status, ReplyStatus::ShedDeadline);
    EXPECT_EQ(reply.requestId, 11u);

    // No deadline means no prediction to miss -- same query is served.
    query.deadlineMillis = 0;
    query.requestId = 12;
    ASSERT_TRUE(rawCall(client, query, frame));
    ASSERT_TRUE(decodeReply(frame, reply, error)) << error;
    EXPECT_EQ(reply.status, ReplyStatus::Ok);

    const auto snap = server.snapshot();
    EXPECT_EQ(snap.shedDeadline, 1u);
    EXPECT_EQ(snap.unitsSimulated, 2u); // only the admitted query ran

    // The shed counter is on the registry surface solarcore_top and
    // the OpenMetrics exporter read.
    const auto rows = server.statsRows();
    const auto row = std::find_if(rows.begin(), rows.end(), [](auto &r) {
        return r.first == "serve.shedDeadline";
    });
    ASSERT_NE(row, rows.end());
    EXPECT_DOUBLE_EQ(row->second, 1.0);
    server.stop();
}

TEST_F(ServeTest, FullQueueShedsWithTypedReply)
{
    auto cfg = baseConfig("j.sock");
    cfg.maxQueueDepth = 0; // every enqueue attempt overflows
    Server server(cfg);
    ASSERT_TRUE(server.start());
    Client client;
    ASSERT_TRUE(client.connect(cfg.socketPath));

    std::string frame;
    ASSERT_TRUE(rawCall(client, smallQuery(21), frame));
    PlanReply reply;
    std::string error;
    ASSERT_TRUE(decodeReply(frame, reply, error)) << error;
    EXPECT_EQ(reply.status, ReplyStatus::ShedCapacity);
    EXPECT_EQ(reply.requestId, 21u);
    EXPECT_EQ(server.snapshot().shedCapacity, 1u);
    server.stop();
}

TEST_F(ServeTest, DeadlineExpiresDuringService)
{
    auto cfg = baseConfig("k.sock");
    cfg.workers = 1;
    Server server(cfg);
    ASSERT_TRUE(server.start());
    Client client;
    ASSERT_TRUE(client.connect(cfg.socketPath));

    // With no estimate yet the request is admitted, but a 1 ms
    // deadline lapses during simulation (4 units at a fine dt); the
    // worker's between-unit check answers Expired.
    auto query = smallQuery(31);
    query.grid.seeds = {11, 12, 13, 14};
    query.grid.dtSeconds = 60.0;
    query.deadlineMillis = 1;
    std::string frame;
    ASSERT_TRUE(rawCall(client, query, frame));
    PlanReply reply;
    std::string error;
    ASSERT_TRUE(decodeReply(frame, reply, error)) << error;
    EXPECT_EQ(reply.status, ReplyStatus::Expired);
    EXPECT_EQ(server.snapshot().expired, 1u);
    server.stop();
}

TEST_F(ServeTest, OversizedGridIsBadRequest)
{
    auto cfg = baseConfig("l.sock");
    cfg.maxUnitsPerQuery = 1;
    Server server(cfg);
    ASSERT_TRUE(server.start());
    Client client;
    ASSERT_TRUE(client.connect(cfg.socketPath));

    std::string frame;
    ASSERT_TRUE(rawCall(client, smallQuery(41), frame)); // 2 units > 1
    PlanReply reply;
    std::string error;
    ASSERT_TRUE(decodeReply(frame, reply, error)) << error;
    EXPECT_EQ(reply.status, ReplyStatus::BadRequest);
    server.stop();
}

TEST_F(ServeTest, StatusJsonAndMetricsSnapshotAreWellFormed)
{
    auto cfg = baseConfig("m.sock");
    cfg.statusPath = path("status.json");
    cfg.metricsOut = path("metrics.prom");
    Server server(cfg);
    ASSERT_TRUE(server.start());
    Client client;
    ASSERT_TRUE(client.connect(cfg.socketPath));

    std::string frame;
    ASSERT_TRUE(rawCall(client, smallQuery(51), frame));
    ASSERT_TRUE(rawCall(client, smallQuery(52), frame));
    server.publishNow();

    // status.json: parseable, right schema, counters consistent.
    std::ifstream in(cfg.statusPath);
    ASSERT_TRUE(in.good());
    std::stringstream buf;
    buf << in.rdbuf();
    campaign::FlatJson doc;
    std::string error;
    ASSERT_TRUE(campaign::parseJsonFlat(buf.str(), doc, error)) << error;
    ASSERT_TRUE(doc.count("schema"));
    EXPECT_EQ(doc["schema"].text, "solarcore-serve-status-v1");
    EXPECT_EQ(doc["socket"].text, cfg.socketPath);
    EXPECT_DOUBLE_EQ(doc["requests"].number, 2.0);
    EXPECT_DOUBLE_EQ(doc["ok"].number, 2.0);
    EXPECT_DOUBLE_EQ(doc["result_cache.hits"].number, 1.0);
    EXPECT_DOUBLE_EQ(doc["result_cache.misses"].number, 1.0);
    EXPECT_GT(doc["latency_ms.service_p50"].number, 0.0);
    EXPECT_GE(doc["latency_ms.service_p99"].number,
              doc["latency_ms.service_p50"].number);

    // OpenMetrics snapshot: lint-clean and carrying the serve family.
    std::ifstream min(cfg.metricsOut);
    ASSERT_TRUE(min.good());
    std::stringstream mbuf;
    mbuf << min.rdbuf();
    std::vector<std::string> problems;
    EXPECT_TRUE(obs::lintOpenMetrics(mbuf.str(), problems))
        << (problems.empty() ? "" : problems.front());
    EXPECT_NE(mbuf.str().find("solarcore_serve_requests"),
              std::string::npos);
    EXPECT_NE(mbuf.str().find("solarcore_serve_resultCache_hits"),
              std::string::npos);
    server.stop();
}

TEST_F(ServeTest, TracedQueryYieldsStitchedSpanExport)
{
    auto cfg = baseConfig("t.sock");
    cfg.traceOut = path("spans.jsonl");
    cfg.tracePerfettoOut = path("spans.perfetto.json");
    cfg.metricsOut = path("metrics.prom");
    Server server(cfg);
    ASSERT_TRUE(server.start());
    {
        Client client;
        ASSERT_TRUE(client.connect(cfg.socketPath));
        PlanQuery q = smallQuery(61);
        q.traceId = 0xabc123;
        std::string frame;
        ASSERT_TRUE(rawCall(client, q, frame));
        PlanReply reply;
        std::string error;
        ASSERT_TRUE(decodeReply(frame, reply, error)) << error;
        EXPECT_EQ(reply.status, ReplyStatus::Ok);
    }
    server.publishNow();
    server.stop(); // span exports are written at stop()

    // Every span belongs to the client-stamped trace; the stages of
    // the request lifecycle are all present and stitch to one root.
    std::ifstream in(cfg.traceOut);
    ASSERT_TRUE(in.good());
    std::string line;
    std::vector<std::string> names;
    std::size_t roots = 0;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        campaign::FlatJson doc;
        std::string error;
        ASSERT_TRUE(campaign::parseJsonFlat(line, doc, error)) << error;
        EXPECT_EQ(doc["schema"].text, "solarcore-span-v1");
        EXPECT_EQ(doc["trace"].text, "0000000000abc123");
        names.push_back(doc["name"].text);
        if (doc["parent"].text == "0000000000000000")
            ++roots;
    }
    EXPECT_EQ(roots, 1u);
    std::sort(names.begin(), names.end());
    names.erase(std::unique(names.begin(), names.end()), names.end());
    EXPECT_GE(names.size(), 6u);
    for (const char *stage :
         {"request", "io.read", "admit", "queue.wait", "service",
          "unit", "aggregate", "reply"})
        EXPECT_TRUE(std::find(names.begin(), names.end(), stage) !=
                    names.end())
            << "missing stage " << stage;

    // The kept trace surfaces as an exemplar on the latency
    // histograms, and the snapshot still lints clean.
    std::ifstream min(cfg.metricsOut);
    ASSERT_TRUE(min.good());
    std::stringstream mbuf;
    mbuf << min.rdbuf();
    EXPECT_NE(mbuf.str().find("# {trace_id=\"0000000000abc123\"}"),
              std::string::npos);
    std::vector<std::string> problems;
    EXPECT_TRUE(obs::lintOpenMetrics(mbuf.str(), problems))
        << (problems.empty() ? "" : problems.front());

    // The Perfetto artifact exists and is non-trivial JSON.
    std::ifstream pin(cfg.tracePerfettoOut);
    ASSERT_TRUE(pin.good());
    std::stringstream pbuf;
    pbuf << pin.rdbuf();
    EXPECT_NE(pbuf.str().find("\"traceEvents\""), std::string::npos);
}

TEST_F(ServeTest, TraceReadyRepliesByteIdenticalToTracingDisabled)
{
    // Same untraced query against a tracing-armed daemon (head
    // sampling off) and a tracing-disabled daemon: the reply frames
    // must match byte for byte.
    auto traced_cfg = baseConfig("ta.sock");
    traced_cfg.traceOut = path("off_spans.jsonl");
    traced_cfg.traceSample = 0;
    auto plain_cfg = baseConfig("tb.sock");

    std::string traced_frame;
    std::string plain_frame;
    {
        Server server(traced_cfg);
        ASSERT_TRUE(server.start());
        Client client;
        ASSERT_TRUE(client.connect(traced_cfg.socketPath));
        ASSERT_TRUE(rawCall(client, smallQuery(65), traced_frame));
        server.stop();
    }
    {
        Server server(plain_cfg);
        ASSERT_TRUE(server.start());
        Client client;
        ASSERT_TRUE(client.connect(plain_cfg.socketPath));
        ASSERT_TRUE(rawCall(client, smallQuery(65), plain_frame));
        server.stop();
    }
    ASSERT_FALSE(traced_frame.empty());
    EXPECT_EQ(traced_frame, plain_frame);
}

TEST_F(ServeTest, SlowQueryLogRoundTripsThroughStatusJson)
{
    // The slow-query log is always on (no tracing configured here):
    // a tiny slow threshold makes every request slow, and the cap
    // keeps only the most recent two.
    auto cfg = baseConfig("s.sock");
    cfg.statusPath = path("status.json");
    cfg.slowMillis = 0.001;
    cfg.slowLogCap = 2;
    Server server(cfg);
    ASSERT_TRUE(server.start());
    {
        Client client;
        ASSERT_TRUE(client.connect(cfg.socketPath));
        std::string frame;
        ASSERT_TRUE(rawCall(client, smallQuery(71), frame));
        ASSERT_TRUE(rawCall(client, smallQuery(72), frame));
        ASSERT_TRUE(rawCall(client, smallQuery(73), frame));
    }
    server.publishNow();

    const ServeSnapshot snap = server.snapshot();
    ASSERT_EQ(snap.slowQueries.size(), 2u);
    EXPECT_EQ(snap.slowQueries[0].requestId, 72u); // 71 evicted FIFO
    EXPECT_EQ(snap.slowQueries[1].requestId, 73u);
    EXPECT_EQ(snap.slowQueries[1].status, "ok");
    EXPECT_EQ(snap.slowQueries[1].traceId, 0u); // tracing off
    EXPECT_FALSE(snap.tracingEnabled);

    std::ifstream in(cfg.statusPath);
    ASSERT_TRUE(in.good());
    std::stringstream buf;
    buf << in.rdbuf();
    campaign::FlatJson doc;
    std::string error;
    ASSERT_TRUE(campaign::parseJsonFlat(buf.str(), doc, error)) << error;
    EXPECT_EQ(doc["tracing.enabled"].kind,
              campaign::JsonLeaf::Kind::Bool);
    EXPECT_FALSE(doc["tracing.enabled"].boolean);
    ASSERT_TRUE(doc.count("slow_queries.0.request_id"));
    ASSERT_TRUE(doc.count("slow_queries.1.request_id"));
    EXPECT_FALSE(doc.count("slow_queries.2.request_id"));
    EXPECT_DOUBLE_EQ(doc["slow_queries.0.request_id"].number, 72.0);
    EXPECT_DOUBLE_EQ(doc["slow_queries.1.request_id"].number, 73.0);
    EXPECT_EQ(doc["slow_queries.1.status"].text, "ok");
    EXPECT_EQ(doc["slow_queries.1.trace_id"].text, "");
    EXPECT_GT(doc["slow_queries.1.service_ms"].number, 0.0);
    EXPECT_DOUBLE_EQ(doc["slow_queries.1.units"].number, 2.0);
    server.stop();
}

TEST_F(ServeTest, StopAnswersQueuedRequestsAndUnlinksSocket)
{
    auto cfg = baseConfig("n.sock");
    Server server(cfg);
    ASSERT_TRUE(server.start());
    EXPECT_TRUE(fs::exists(cfg.socketPath));
    server.stop();
    EXPECT_FALSE(fs::exists(cfg.socketPath));
    // stop() is idempotent.
    server.stop();
}

} // namespace
} // namespace solarcore::serve
