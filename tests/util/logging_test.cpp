/**
 * @file
 * Tests for the logging/error-reporting helpers.
 */

#include <gtest/gtest.h>

#include "util/logging.hpp"

namespace solarcore {
namespace {

TEST(Logging, ConcatFormatsMixedArguments)
{
    EXPECT_EQ(detail::concat("x=", 42, ", y=", 1.5), "x=42, y=1.5");
    EXPECT_EQ(detail::concat(), "");
    EXPECT_EQ(detail::concat("solo"), "solo");
}

TEST(Logging, WarnAndInformDoNotTerminate)
{
    SC_WARN("test warning, ", 1);
    SC_INFORM("test info");
    SUCCEED();
}

TEST(Logging, AssertPassesOnTrueCondition)
{
    SC_ASSERT(1 + 1 == 2, "arithmetic works");
    SUCCEED();
}

using LoggingDeathTest = ::testing::Test;

TEST(LoggingDeathTest, PanicAborts)
{
    EXPECT_DEATH(SC_PANIC("intentional panic: ", 7),
                 "intentional panic: 7");
}

TEST(LoggingDeathTest, FatalExitsWithError)
{
    EXPECT_EXIT(SC_FATAL("intentional fatal"),
                ::testing::ExitedWithCode(1), "intentional fatal");
}

TEST(LoggingDeathTest, AssertFailureReportsCondition)
{
    EXPECT_DEATH(SC_ASSERT(false, "broken invariant"),
                 "assertion failed");
}

} // namespace
} // namespace solarcore
