/**
 * @file
 * Tests for the logging/error-reporting helpers.
 */

#include <gtest/gtest.h>

#include "util/logging.hpp"

namespace solarcore {
namespace {

TEST(Logging, ConcatFormatsMixedArguments)
{
    EXPECT_EQ(detail::concat("x=", 42, ", y=", 1.5), "x=42, y=1.5");
    EXPECT_EQ(detail::concat(), "");
    EXPECT_EQ(detail::concat("solo"), "solo");
}

TEST(Logging, WarnAndInformDoNotTerminate)
{
    SC_WARN("test warning, ", 1);
    SC_INFORM("test info");
    SUCCEED();
}

TEST(Logging, AssertPassesOnTrueCondition)
{
    SC_ASSERT(1 + 1 == 2, "arithmetic works");
    SUCCEED();
}

TEST(Logging, ParseLogLevelAcceptsAliases)
{
    EXPECT_EQ(parseLogLevel("inform"), LogLevel::Inform);
    EXPECT_EQ(parseLogLevel("info"), LogLevel::Inform);
    EXPECT_EQ(parseLogLevel("warn"), LogLevel::Warn);
    EXPECT_EQ(parseLogLevel("warning"), LogLevel::Warn);
    EXPECT_EQ(parseLogLevel("fatal"), LogLevel::Fatal);
    EXPECT_EQ(parseLogLevel("quiet"), LogLevel::Fatal);
    EXPECT_EQ(parseLogLevel("garbage", LogLevel::Warn), LogLevel::Warn);
}

TEST(Logging, SetLogLevelRoundTrips)
{
    const LogLevel before = logLevel();
    setLogLevel(LogLevel::Fatal);
    EXPECT_EQ(logLevel(), LogLevel::Fatal);
    // Below-threshold messages are dropped (no way to observe stderr
    // here beyond not crashing, but the gate is exercised).
    SC_WARN("suppressed warning");
    SC_INFORM("suppressed info");
    setLogLevel(before);
    EXPECT_EQ(logLevel(), before);
}

TEST(Logging, WarnOnceFiresOncePerCallSite)
{
    // The macro's static flag flips on the first pass; further
    // iterations take the suppressed branch.
    for (int i = 0; i < 5; ++i)
        SC_WARN_ONCE("warn-once body, iteration ", i);
    SUCCEED();
}

using LoggingDeathTest = ::testing::Test;

TEST(LoggingDeathTest, PanicAborts)
{
    EXPECT_DEATH(SC_PANIC("intentional panic: ", 7),
                 "intentional panic: 7");
}

TEST(LoggingDeathTest, FatalExitsWithError)
{
    EXPECT_EXIT(SC_FATAL("intentional fatal"),
                ::testing::ExitedWithCode(1), "intentional fatal");
}

TEST(LoggingDeathTest, AssertFailureReportsCondition)
{
    EXPECT_DEATH(SC_ASSERT(false, "broken invariant"),
                 "assertion failed");
}

} // namespace
} // namespace solarcore
