/**
 * @file
 * Tests for the fixed-size worker pool: coverage, determinism across
 * thread counts, reuse, and exception propagation.
 */

#include <atomic>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "util/thread_pool.hpp"

namespace solarcore {
namespace {

/** A task-indexed pseudo-simulation: order-sensitive float pipeline. */
std::vector<double>
runPipeline(int threads, std::size_t n)
{
    std::vector<double> out(n);
    ThreadPool pool(threads);
    pool.parallelFor(n, [&](std::size_t i) {
        // Result depends only on the index, never on thread identity.
        double acc = static_cast<double>(i) + 1.0;
        for (int k = 0; k < 100; ++k)
            acc = std::fma(acc, 1.0000001, std::sin(acc) * 1e-3);
        out[i] = acc;
    });
    return out;
}

TEST(ThreadPool, EveryIndexRunsExactlyOnce)
{
    for (int threads : {1, 2, 4}) {
        std::vector<std::atomic<int>> counts(257);
        ThreadPool pool(threads);
        pool.parallelFor(counts.size(),
                         [&](std::size_t i) { ++counts[i]; });
        for (const auto &c : counts)
            EXPECT_EQ(c.load(), 1) << "threads=" << threads;
    }
}

TEST(ThreadPool, ResultsAreBitIdenticalAcrossThreadCounts)
{
    const auto seq = runPipeline(1, 301);
    for (int threads : {2, 3, 8}) {
        const auto par = runPipeline(threads, 301);
        ASSERT_EQ(par.size(), seq.size());
        for (std::size_t i = 0; i < seq.size(); ++i)
            EXPECT_EQ(par[i], seq[i])
                << "threads=" << threads << " i=" << i;
    }
}

TEST(ThreadPool, PoolIsReusableAcrossJobs)
{
    ThreadPool pool(4);
    for (int round = 0; round < 50; ++round) {
        std::vector<int> out(round + 1, 0);
        pool.parallelFor(out.size(), [&](std::size_t i) {
            out[i] = static_cast<int>(i) + round;
        });
        for (std::size_t i = 0; i < out.size(); ++i)
            ASSERT_EQ(out[i], static_cast<int>(i) + round);
    }
}

TEST(ThreadPool, ZeroAndSingleCountsAreHandled)
{
    ThreadPool pool(4);
    int runs = 0;
    pool.parallelFor(0, [&](std::size_t) { ++runs; });
    EXPECT_EQ(runs, 0);
    pool.parallelFor(1, [&](std::size_t) { ++runs; });
    EXPECT_EQ(runs, 1);
}

TEST(ThreadPool, ExceptionsPropagateToTheCaller)
{
    for (int threads : {1, 4}) {
        ThreadPool pool(threads);
        EXPECT_THROW(pool.parallelFor(64,
                                      [&](std::size_t i) {
                                          if (i == 13)
                                              throw std::runtime_error(
                                                  "boom");
                                      }),
                     std::runtime_error);
        // The pool survives a throwing job.
        std::atomic<int> ok{0};
        pool.parallelFor(8, [&](std::size_t) { ++ok; });
        EXPECT_EQ(ok.load(), 8);
    }
}

TEST(ThreadPool, HardwareThreadsHasAFloorOfOne)
{
    EXPECT_GE(ThreadPool::hardwareThreads(), 1);
}

TEST(ThreadPool, ZeroThreadsAutoDetectsHardwareConcurrency)
{
    for (int request : {0, -1, -8}) {
        ThreadPool pool(request);
        EXPECT_EQ(pool.threadCount(), ThreadPool::hardwareThreads())
            << "request=" << request;
        // And the auto-sized pool actually runs work.
        std::atomic<int> runs{0};
        pool.parallelFor(33, [&](std::size_t) { ++runs; });
        EXPECT_EQ(runs.load(), 33);
    }
}

} // namespace
} // namespace solarcore
