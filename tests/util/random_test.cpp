/**
 * @file
 * Unit tests for the deterministic PRNG.
 */

#include <cstdint>
#include <set>

#include <gtest/gtest.h>

#include "util/random.hpp"
#include "util/stats.hpp"

namespace solarcore {
namespace {

TEST(Rng, SameSeedSameStream)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a() == b());
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(11);
    RunningStats st;
    for (int i = 0; i < 100000; ++i)
        st.add(rng.uniform());
    EXPECT_NEAR(st.mean(), 0.5, 0.01);
    EXPECT_NEAR(st.variance(), 1.0 / 12.0, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusively)
{
    Rng rng(13);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.uniformInt(3, 8);
        ASSERT_GE(v, 3);
        ASSERT_LE(v, 8);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 6u);
}

TEST(Rng, UniformIntSingleton)
{
    Rng rng(17);
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(rng.uniformInt(5, 5), 5);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(19);
    RunningStats st;
    for (int i = 0; i < 200000; ++i)
        st.add(rng.gaussian(2.0, 3.0));
    EXPECT_NEAR(st.mean(), 2.0, 0.05);
    EXPECT_NEAR(st.stddev(), 3.0, 0.05);
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(23);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BernoulliExtremes)
{
    Rng rng(29);
    for (int i = 0; i < 100; ++i) {
        ASSERT_FALSE(rng.bernoulli(0.0));
        ASSERT_TRUE(rng.bernoulli(1.0));
    }
}

TEST(Rng, ForkedStreamsIndependent)
{
    Rng parent(31);
    Rng a = parent.fork(1);
    Rng b = parent.fork(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a() == b());
    EXPECT_LT(same, 3);
}

TEST(Rng, ForkDeterministic)
{
    Rng p1(37);
    Rng p2(37);
    Rng a = p1.fork(99);
    Rng b = p2.fork(99);
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(a(), b());
}

} // namespace
} // namespace solarcore
