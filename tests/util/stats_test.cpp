/**
 * @file
 * Unit tests for streaming statistics accumulators.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "util/stats.hpp"

namespace solarcore {
namespace {

TEST(RunningStats, EmptyIsZero)
{
    RunningStats st;
    EXPECT_EQ(st.count(), 0u);
    EXPECT_DOUBLE_EQ(st.mean(), 0.0);
    EXPECT_DOUBLE_EQ(st.variance(), 0.0);
    EXPECT_DOUBLE_EQ(st.sum(), 0.0);
}

TEST(RunningStats, KnownSequence)
{
    RunningStats st;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        st.add(x);
    EXPECT_EQ(st.count(), 8u);
    EXPECT_DOUBLE_EQ(st.mean(), 5.0);
    EXPECT_NEAR(st.variance(), 32.0 / 7.0, 1e-12); // unbiased
    EXPECT_DOUBLE_EQ(st.min(), 2.0);
    EXPECT_DOUBLE_EQ(st.max(), 9.0);
    EXPECT_DOUBLE_EQ(st.sum(), 40.0);
}

TEST(RunningStats, SingleSampleVarianceZero)
{
    RunningStats st;
    st.add(3.0);
    EXPECT_DOUBLE_EQ(st.variance(), 0.0);
    EXPECT_DOUBLE_EQ(st.mean(), 3.0);
    EXPECT_DOUBLE_EQ(st.min(), 3.0);
    EXPECT_DOUBLE_EQ(st.max(), 3.0);
}

TEST(RunningStats, MergeMatchesSequential)
{
    RunningStats whole;
    RunningStats a;
    RunningStats b;
    for (int i = 0; i < 100; ++i) {
        const double x = std::sin(i * 0.7) * 10.0 + i * 0.01;
        whole.add(x);
        (i < 37 ? a : b).add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), whole.count());
    EXPECT_NEAR(a.mean(), whole.mean(), 1e-10);
    EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), whole.min());
    EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty)
{
    RunningStats a;
    a.add(1.0);
    a.add(2.0);
    RunningStats empty;
    a.merge(empty);
    EXPECT_EQ(a.count(), 2u);

    RunningStats target;
    target.merge(a);
    EXPECT_EQ(target.count(), 2u);
    EXPECT_DOUBLE_EQ(target.mean(), 1.5);
}

TEST(GeometricMean, KnownValues)
{
    GeometricMean gm;
    gm.add(2.0);
    gm.add(8.0);
    EXPECT_NEAR(gm.value(), 4.0, 1e-12);
}

TEST(GeometricMean, EmptyIsZero)
{
    GeometricMean gm;
    EXPECT_DOUBLE_EQ(gm.value(), 0.0);
}

TEST(GeometricMean, FloorsNonPositiveSamples)
{
    GeometricMean gm(1e-3);
    gm.add(0.0);   // clamped to 1e-3
    gm.add(1e-3);
    EXPECT_NEAR(gm.value(), 1e-3, 1e-15);
}

TEST(Histogram, BinningAndClamping)
{
    Histogram h(0.0, 10.0, 5);
    h.add(-1.0);  // clamps into bin 0
    h.add(0.5);
    h.add(3.0);
    h.add(9.99);
    h.add(42.0);  // clamps into last bin
    EXPECT_EQ(h.total(), 5u);
    EXPECT_EQ(h.bin(0), 2u);
    EXPECT_EQ(h.bin(1), 1u);
    EXPECT_EQ(h.bin(4), 2u);
    EXPECT_DOUBLE_EQ(h.binLow(0), 0.0);
    EXPECT_DOUBLE_EQ(h.binHigh(4), 10.0);
}

} // namespace
} // namespace solarcore
