/**
 * @file
 * Unit tests for the scalar numerical routines in util/math.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "util/math.hpp"

namespace solarcore {
namespace {

TEST(Bisect, FindsSimpleRoot)
{
    auto f = [](double x) { return x * x - 2.0; };
    const auto res = bisect(f, 0.0, 2.0);
    EXPECT_TRUE(res.converged);
    EXPECT_NEAR(res.x, std::sqrt(2.0), 1e-8);
}

TEST(Bisect, HandlesRootAtEndpoint)
{
    auto f = [](double x) { return x - 1.0; };
    const auto lo = bisect(f, 1.0, 2.0);
    EXPECT_TRUE(lo.converged);
    EXPECT_DOUBLE_EQ(lo.x, 1.0);

    const auto hi = bisect(f, 0.0, 1.0);
    EXPECT_TRUE(hi.converged);
    EXPECT_DOUBLE_EQ(hi.x, 1.0);
}

TEST(Bisect, ReportsNoSignChange)
{
    auto f = [](double x) { return x * x + 1.0; };
    const auto res = bisect(f, -1.0, 1.0);
    EXPECT_FALSE(res.converged);
}

TEST(Bisect, DecreasingFunction)
{
    auto f = [](double x) { return 5.0 - x; };
    const auto res = bisect(f, 0.0, 10.0);
    EXPECT_TRUE(res.converged);
    EXPECT_NEAR(res.x, 5.0, 1e-7);
}

TEST(Newton, ConvergesQuadratically)
{
    auto f = [](double x) { return std::exp(x) - 3.0; };
    auto df = [](double x) { return std::exp(x); };
    const auto res = newton(f, df, 0.0, -5.0, 5.0);
    EXPECT_TRUE(res.converged);
    EXPECT_NEAR(res.x, std::log(3.0), 1e-9);
    EXPECT_LT(res.iterations, 20);
}

TEST(Newton, SurvivesEscapingSteps)
{
    // f has a nearly flat region that throws raw Newton far away.
    auto f = [](double x) { return std::tanh(x - 2.0); };
    auto df = [](double x) {
        const double t = std::tanh(x - 2.0);
        return 1.0 - t * t;
    };
    const auto res = newton(f, df, -10.0, -10.0, 10.0);
    EXPECT_TRUE(res.converged);
    EXPECT_NEAR(res.x, 2.0, 1e-6);
}

TEST(GoldenMax, FindsParabolaPeak)
{
    auto f = [](double x) { return -(x - 1.5) * (x - 1.5) + 4.0; };
    const auto res = goldenMax(f, -10.0, 10.0);
    EXPECT_TRUE(res.converged);
    EXPECT_NEAR(res.x, 1.5, 1e-4);
    EXPECT_NEAR(res.fx, 4.0, 1e-8);
}

TEST(GoldenMax, PeakAtBoundary)
{
    auto f = [](double x) { return x; };
    const auto res = goldenMax(f, 0.0, 3.0);
    EXPECT_NEAR(res.x, 3.0, 1e-4);
}

TEST(GoldenMax, DegenerateInterval)
{
    auto f = [](double x) { return -x * x; };
    const auto res = goldenMax(f, 2.0, 2.0);
    EXPECT_DOUBLE_EQ(res.x, 2.0);
}

TEST(Lerp, Endpoints)
{
    EXPECT_DOUBLE_EQ(lerp(1.0, 3.0, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(lerp(1.0, 3.0, 1.0), 3.0);
    EXPECT_DOUBLE_EQ(lerp(1.0, 3.0, 0.5), 2.0);
}

TEST(Clamp, Behaviour)
{
    EXPECT_DOUBLE_EQ(clamp(5.0, 0.0, 1.0), 1.0);
    EXPECT_DOUBLE_EQ(clamp(-5.0, 0.0, 1.0), 0.0);
    EXPECT_DOUBLE_EQ(clamp(0.5, 0.0, 1.0), 0.5);
}

TEST(ApproxEqual, RelativeScale)
{
    EXPECT_TRUE(approxEqual(1e12, 1e12 + 1.0, 1e-9));
    EXPECT_FALSE(approxEqual(1.0, 1.1, 1e-9));
    EXPECT_TRUE(approxEqual(0.0, 0.0));
}

TEST(LambertW0, KnownValues)
{
    EXPECT_DOUBLE_EQ(lambertW0(0.0), 0.0);
    EXPECT_NEAR(lambertW0(1.0), 0.5671432904097838, 1e-15);
    EXPECT_NEAR(lambertW0(std::exp(1.0)), 1.0, 1e-15);
    EXPECT_NEAR(lambertW0(2.0 * std::exp(2.0)), 2.0, 1e-14);
    // Branch point: W(-1/e) = -1.
    EXPECT_NEAR(lambertW0(-std::exp(-1.0)), -1.0, 1e-7);
    EXPECT_NEAR(lambertW0(-0.3), -0.4894022271802149, 1e-12);
}

TEST(LambertW0, DefiningIdentityAcrossMagnitudes)
{
    for (double x : {-0.35, -0.1, 1e-12, 1e-6, 0.1, 1.0, 10.0, 1e3, 1e8,
                     1e150, 1e300}) {
        const double w = lambertW0(x);
        EXPECT_NEAR(w * std::exp(w), x, 1e-12 * std::abs(x) + 1e-15)
            << "x=" << x;
    }
}

TEST(LambertW0Exp, SolvesLogFormBeyondExpRange)
{
    // lambertW0exp(y) solves w + ln w = y, i.e. w = W(e^y), including
    // y far past the exp() overflow threshold.
    for (double y : {-5.0, 0.0, 1.0, 50.0, 709.0, 1000.0, 1e4, 1e6}) {
        const double w = lambertW0exp(y);
        EXPECT_GT(w, 0.0);
        EXPECT_NEAR(w + std::log(w), y, 1e-12 * (1.0 + std::abs(y)))
            << "y=" << y;
    }
}

TEST(LambertW0Exp, MatchesDirectFormInOverlap)
{
    for (double y : {-2.0, 0.0, 0.5, 3.0, 20.0, 100.0}) {
        EXPECT_NEAR(lambertW0exp(y), lambertW0(std::exp(y)),
                    1e-13 * (1.0 + lambertW0(std::exp(y))))
            << "y=" << y;
    }
}

/** Property sweep: bisection root matches analytic root of x^3 - c. */
class CubeRootSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(CubeRootSweep, MatchesAnalytic)
{
    const double c = GetParam();
    auto f = [c](double x) { return x * x * x - c; };
    const auto res = bisect(f, 0.0, 10.0, 1e-11);
    EXPECT_TRUE(res.converged);
    EXPECT_NEAR(res.x, std::cbrt(c), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Roots, CubeRootSweep,
                         ::testing::Values(0.001, 0.5, 1.0, 8.0, 27.0, 729.0));

} // namespace
} // namespace solarcore
