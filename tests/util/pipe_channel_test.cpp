/**
 * @file
 * Tests for the length-prefixed pipe framing the multi-process
 * campaign runner uses: frames survive arbitrary kernel-side
 * fragmentation, a torn trailing frame is discarded with the
 * connection, and EOF is reported once the writer is gone.
 */

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/pipe_channel.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <csignal>
#include <fcntl.h>
#include <unistd.h>

namespace solarcore::util {
namespace {

struct Pipe
{
    int fds[2] = {-1, -1};

    Pipe()
    {
        EXPECT_EQ(::pipe(fds), 0);
        // The reader contract requires O_NONBLOCK.
        ::fcntl(fds[0], F_SETFL,
                ::fcntl(fds[0], F_GETFL, 0) | O_NONBLOCK);
    }
    ~Pipe()
    {
        closeRead();
        closeWrite();
    }
    void closeRead()
    {
        if (fds[0] >= 0)
            ::close(fds[0]);
        fds[0] = -1;
    }
    void closeWrite()
    {
        if (fds[1] >= 0)
            ::close(fds[1]);
        fds[1] = -1;
    }
};

TEST(PipeChannel, SupportedOnPosix)
{
    EXPECT_TRUE(pipeChannelSupported());
}

TEST(PipeChannel, RoundTripsFramesInOrder)
{
    Pipe p;
    const std::vector<std::string> sent = {
        "alpha", std::string(1, '\0') + std::string("binary\x01\xff"),
        "", std::string(70000, 'x'), "tail"};

    // The 70000-byte frame exceeds the default pipe capacity, so the
    // writer must run concurrently (as the worker process does) while
    // this side drains.
    std::thread writer([&] {
        for (const auto &frame : sent)
            EXPECT_TRUE(
                writeFrame(p.fds[1], frame.data(), frame.size()));
        p.closeWrite();
    });
    std::vector<std::string> got;
    FrameReader reader;
    FrameReader::Status status = FrameReader::Status::Open;
    while (status == FrameReader::Status::Open)
        status = reader.drain(p.fds[0], got);
    writer.join();
    EXPECT_EQ(status, FrameReader::Status::Closed);
    EXPECT_EQ(got, sent);
    EXPECT_EQ(reader.pendingBytes(), 0u);
}

TEST(PipeChannel, ReassemblesAcrossFragmentedReads)
{
    // Write a frame byte-by-byte: the reader must buffer partial
    // prefixes/payloads and only surface the completed frame.
    Pipe p;
    const std::string payload = "fragmented-frame-payload";
    const auto size = static_cast<std::uint32_t>(payload.size());
    std::string wire(reinterpret_cast<const char *>(&size),
                     sizeof(size));
    wire += payload;

    FrameReader reader;
    std::vector<std::string> got;
    for (char byte : wire) {
        ASSERT_EQ(::write(p.fds[1], &byte, 1), 1);
        ASSERT_EQ(reader.drain(p.fds[0], got),
                  FrameReader::Status::Open);
    }
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0], payload);
}

TEST(PipeChannel, TornTrailingFrameIsDiscardedAtEof)
{
    // A writer that dies mid-frame (campaign worker crash) leaves a
    // length prefix with a short payload; the reader reports Closed,
    // delivers every whole frame, and exposes the torn bytes only as
    // diagnostics.
    Pipe p;
    const std::string whole = "complete";
    ASSERT_TRUE(writeFrame(p.fds[1], whole.data(), whole.size()));

    const std::uint32_t lie = 100;
    ASSERT_EQ(::write(p.fds[1], &lie, sizeof(lie)),
              static_cast<ssize_t>(sizeof(lie)));
    ASSERT_EQ(::write(p.fds[1], "abc", 3), 3);
    p.closeWrite();

    FrameReader reader;
    std::vector<std::string> got;
    EXPECT_EQ(reader.drain(p.fds[0], got), FrameReader::Status::Closed);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0], whole);
    EXPECT_EQ(reader.pendingBytes(), sizeof(lie) + 3);
}

TEST(PipeChannel, OversizedDeclaredLengthIsAnError)
{
    // A hostile length prefix (the serve codec's threat model) must
    // not make the reader buffer towards gigabytes: with a cap set,
    // drain() reports Error as soon as the prefix is visible.
    Pipe p;
    const std::string small = "ok";
    ASSERT_TRUE(writeFrame(p.fds[1], small.data(), small.size()));
    const std::uint32_t huge = 0xffffffffu;
    ASSERT_EQ(::write(p.fds[1], &huge, sizeof(huge)),
              static_cast<ssize_t>(sizeof(huge)));

    FrameReader reader;
    reader.setMaxFrameBytes(1 << 16);
    std::vector<std::string> got;
    EXPECT_EQ(reader.drain(p.fds[0], got), FrameReader::Status::Error);
    // The frame ahead of the lie is still delivered whole.
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0], small);
}

TEST(PipeChannel, CapAdmitsFramesUpToTheLimit)
{
    Pipe p;
    const std::string payload(1 << 10, 'y');
    std::thread writer([&] {
        EXPECT_TRUE(writeFrame(p.fds[1], payload.data(), payload.size()));
        p.closeWrite();
    });
    FrameReader reader;
    reader.setMaxFrameBytes(payload.size());
    std::vector<std::string> got;
    FrameReader::Status status = FrameReader::Status::Open;
    while (status == FrameReader::Status::Open)
        status = reader.drain(p.fds[0], got);
    writer.join();
    EXPECT_EQ(status, FrameReader::Status::Closed);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0], payload);
}

TEST(PipeChannel, WriteToClosedReaderFails)
{
    // Campaign workers ignore SIGPIPE so a dead parent turns into a
    // failed write (worker exit 3), not a signal death. Mirror that
    // here or the default handler would kill the test binary.
    auto *previous = ::signal(SIGPIPE, SIG_IGN);
    Pipe p;
    p.closeRead();
    const std::string payload = "nobody-listening";
    EXPECT_FALSE(writeFrame(p.fds[1], payload.data(), payload.size()));
    ::signal(SIGPIPE, previous);
}

} // namespace
} // namespace solarcore::util

#endif // POSIX
