/**
 * @file
 * Unit tests for the table/CSV rendering helpers.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "util/table.hpp"

namespace solarcore {
namespace {

TEST(TextTable, NumberFormatting)
{
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::num(-1.0, 0), "-1");
    EXPECT_EQ(TextTable::pct(0.823, 1), "82.3%");
    EXPECT_EQ(TextTable::pct(1.0, 0), "100%");
}

TEST(TextTable, AlignedPrint)
{
    TextTable t;
    t.header({"name", "value"});
    t.row({"alpha", "1"});
    t.row({"bb", "22"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    // Separator line present after the header.
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTable, CsvQuoting)
{
    TextTable t;
    t.header({"a", "b"});
    t.row({"plain", "has,comma"});
    t.row({"has\"quote", "x"});
    std::ostringstream os;
    t.printCsv(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("\"has,comma\""), std::string::npos);
    EXPECT_NE(out.find("\"has\"\"quote\""), std::string::npos);
}

TEST(TextTable, ColumnCountFromWidestRow)
{
    TextTable t;
    t.header({"a"});
    t.row({"1", "2", "3"});
    EXPECT_EQ(t.columns(), 3u);
    EXPECT_EQ(t.rows(), 1u);
}

TEST(TextTable, EmptyTablePrintsNothing)
{
    TextTable t;
    std::ostringstream os;
    t.print(os);
    EXPECT_TRUE(os.str().empty());
}

} // namespace
} // namespace solarcore
