/**
 * @file
 * Tests for the DC/DC converter and the network operating-point
 * solver (paper Section 2.3, Figure 5, Table 1).
 */

#include <gtest/gtest.h>

#include "power/converter.hpp"
#include "power/operating_point.hpp"
#include "pv/bp3180n.hpp"
#include "pv/mpp.hpp"

namespace solarcore::power {
namespace {

pv::PvArray
stdArray(double g = 1000.0, double t = 25.0)
{
    static const pv::PvModule module = pv::buildBp3180n();
    return pv::PvArray(module, 1, 1, {g, t});
}

TEST(Converter, RatioClamping)
{
    DcDcConverter conv(0.5, 4.0);
    conv.setRatio(10.0);
    EXPECT_DOUBLE_EQ(conv.ratio(), 4.0);
    conv.setRatio(0.1);
    EXPECT_DOUBLE_EQ(conv.ratio(), 0.5);
    conv.adjustRatio(0.25);
    EXPECT_DOUBLE_EQ(conv.ratio(), 0.75);
}

TEST(Converter, AdjustRatioClampsAtMinimumTransferRatio)
{
    DcDcConverter conv(0.5, 8.0);
    conv.setRatio(0.6);
    // A large downward nudge pins the ratio at kMin, and further
    // nudges stay pinned instead of going below the usable range.
    EXPECT_DOUBLE_EQ(conv.adjustRatio(-5.0), conv.kMin());
    EXPECT_DOUBLE_EQ(conv.adjustRatio(-0.1), conv.kMin());
    EXPECT_DOUBLE_EQ(conv.ratio(), 0.5);
    // Symmetric pin at the top of the range.
    EXPECT_DOUBLE_EQ(conv.adjustRatio(100.0), conv.kMax());
    EXPECT_DOUBLE_EQ(conv.adjustRatio(0.1), conv.kMax());
}

TEST(Converter, MinimumRatioStillTransfersPower)
{
    // Pinned at kMin the converter remains a valid (lossless) network
    // element: the operating point solves and conserves power.
    const auto array = stdArray();
    DcDcConverter conv(0.5, 8.0);
    conv.setRatio(0.0); // clamps to kMin
    ASSERT_DOUBLE_EQ(conv.ratio(), conv.kMin());
    const auto st = solveNetwork(array, conv, 2.0);
    ASSERT_TRUE(st.valid);
    EXPECT_NEAR(st.panelPower(), st.loadPower(), 1e-6);
    EXPECT_NEAR(st.panel.voltage, conv.inputVoltage(st.load.voltage),
                1e-9);
}

TEST(Converter, TransferRelations)
{
    DcDcConverter conv;
    conv.setRatio(3.0);
    // Vin = k Vout; Iout = k Iin (lossless).
    EXPECT_DOUBLE_EQ(conv.inputVoltage(12.0), 36.0);
    EXPECT_DOUBLE_EQ(conv.outputCurrent(2.0), 6.0);
}

TEST(Converter, EfficiencyAppliedOnOutput)
{
    DcDcConverter conv(0.5, 8.0, 0.9);
    conv.setRatio(2.0);
    EXPECT_DOUBLE_EQ(conv.outputCurrent(1.0), 1.8);
}

TEST(Converter, PowerConservedWhenLossless)
{
    const auto array = stdArray();
    DcDcConverter conv;
    conv.setRatio(3.0);
    const auto st = solveNetwork(array, conv, 2.0);
    ASSERT_TRUE(st.valid);
    EXPECT_NEAR(st.panelPower(), st.loadPower(), 1e-6);
}

TEST(OperatingPoint, LoadResistanceFormula)
{
    EXPECT_DOUBLE_EQ(loadResistance(12.0, 144.0), 1.0);
    EXPECT_DOUBLE_EQ(loadResistance(12.0, 72.0), 2.0);
}

TEST(OperatingPoint, SolutionLiesOnBothCurves)
{
    const auto array = stdArray(800.0, 30.0);
    DcDcConverter conv;
    conv.setRatio(2.8);
    const double r_load = 1.8;
    const auto st = solveNetwork(array, conv, r_load);
    ASSERT_TRUE(st.valid);
    // Panel side on the I-V curve.
    EXPECT_NEAR(st.panel.current, array.currentAt(st.panel.voltage), 1e-6);
    // Rail side on the load line.
    EXPECT_NEAR(st.load.current, st.load.voltage / r_load, 1e-9);
    // Converter relations.
    EXPECT_NEAR(st.panel.voltage, conv.inputVoltage(st.load.voltage), 1e-9);
}

TEST(OperatingPoint, DarkPanelHasNoSolution)
{
    const auto array = stdArray(0.0, 25.0);
    DcDcConverter conv;
    EXPECT_FALSE(solveNetwork(array, conv, 2.0).valid);
    EXPECT_FALSE(pinRailVoltage(array, conv, 12.0, 50.0).valid);
}

TEST(OperatingPoint, HeavierLoadLowersRailVoltage)
{
    // Table 1: increasing the load (smaller R) moves the operating
    // point and lowers the output voltage.
    const auto array = stdArray();
    DcDcConverter conv;
    conv.setRatio(3.0);
    const auto light = solveNetwork(array, conv, 4.0);
    const auto heavy = solveNetwork(array, conv, 2.0);
    ASSERT_TRUE(light.valid && heavy.valid);
    EXPECT_LT(heavy.load.voltage, light.load.voltage);
    EXPECT_GT(heavy.load.current, light.load.current);
}

TEST(PinRail, HoldsRailAtNominal)
{
    const auto array = stdArray(900.0, 35.0);
    DcDcConverter conv;
    const auto st = pinRailVoltage(array, conv, 12.0, 80.0);
    ASSERT_TRUE(st.valid);
    EXPECT_DOUBLE_EQ(st.load.voltage, 12.0);
    EXPECT_NEAR(st.load.current, 80.0 / 12.0, 1e-9);
    // The chosen panel point delivers exactly the demand.
    EXPECT_NEAR(st.panelPower(), 80.0, 1e-6);
}

TEST(PinRail, SettlesOnStableBranch)
{
    const auto array = stdArray(900.0, 35.0);
    DcDcConverter conv;
    const auto mpp = pv::findMpp(array);
    const auto st = pinRailVoltage(array, conv, 12.0, mpp.power * 0.6);
    ASSERT_TRUE(st.valid);
    EXPECT_GE(st.panel.voltage, mpp.voltage - 1e-6);
}

TEST(PinRail, RejectsDemandAboveMpp)
{
    const auto array = stdArray(500.0, 25.0);
    DcDcConverter conv;
    const double pmpp = pv::findMpp(array).power;
    EXPECT_FALSE(pinRailVoltage(array, conv, 12.0, pmpp * 1.05).valid);
    EXPECT_TRUE(pinRailVoltage(array, conv, 12.0, pmpp * 0.95).valid);
}

TEST(PinRail, UpdatesConverterRatio)
{
    const auto array = stdArray();
    DcDcConverter conv;
    const auto st = pinRailVoltage(array, conv, 12.0, 100.0);
    ASSERT_TRUE(st.valid);
    EXPECT_NEAR(conv.ratio(), st.panel.voltage / 12.0, 1e-9);
}

TEST(PinRail, DemandNearMppStillSolvable)
{
    const auto array = stdArray(700.0, 40.0);
    DcDcConverter conv;
    const double pmpp = pv::findMpp(array).power;
    const auto st = pinRailVoltage(array, conv, 12.0, pmpp * 0.999);
    EXPECT_TRUE(st.valid);
}

/** Efficiency sweep: demand is met at the rail, loss on the panel. */
class EfficiencySweep : public ::testing::TestWithParam<double>
{
};

TEST_P(EfficiencySweep, PanelSuppliesDemandPlusLoss)
{
    const double eta = GetParam();
    const auto array = stdArray();
    DcDcConverter conv(0.5, 8.0, eta);
    const double demand = 60.0;
    const auto st = pinRailVoltage(array, conv, 12.0, demand);
    ASSERT_TRUE(st.valid);
    EXPECT_NEAR(st.panelPower(), demand / eta, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Etas, EfficiencySweep,
                         ::testing::Values(1.0, 0.97, 0.93, 0.85));

} // namespace
} // namespace solarcore::power
