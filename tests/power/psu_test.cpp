/**
 * @file
 * Tests for the multi-rail PSU model.
 */

#include <gtest/gtest.h>

#include "power/psu.hpp"

namespace solarcore::power {
namespace {

TEST(Psu, PaperDefaultSplitsRails)
{
    auto psu = Psu::paperDefault();
    ASSERT_EQ(psu.railCount(), 3);
    EXPECT_EQ(psu.rail(0).source, PowerSource::Solar);
    EXPECT_EQ(psu.rail(1).source, PowerSource::Grid);
    EXPECT_EQ(psu.rail(0).name, "12V-CPU");
}

TEST(Psu, DrawSplitsBySource)
{
    auto psu = Psu::paperDefault();
    psu.setLoad(0, 80.0);  // CPU on solar
    psu.setLoad(1, 40.0);  // peripherals on grid
    psu.setLoad(2, 10.0);  // logic on grid
    EXPECT_DOUBLE_EQ(psu.drawFrom(PowerSource::Solar), 80.0);
    EXPECT_DOUBLE_EQ(psu.drawFrom(PowerSource::Grid), 50.0);
    EXPECT_DOUBLE_EQ(psu.totalLoad(), 130.0);
}

TEST(Psu, AtsFailoverMovesCpuRail)
{
    auto psu = Psu::paperDefault();
    psu.setLoad(0, 80.0);
    psu.setSource(0, PowerSource::Grid); // clouds: ATS to utility
    EXPECT_DOUBLE_EQ(psu.drawFrom(PowerSource::Solar), 0.0);
    EXPECT_DOUBLE_EQ(psu.drawFrom(PowerSource::Grid), 80.0);
}

TEST(Psu, EnergyLedgersAccumulate)
{
    auto psu = Psu::paperDefault();
    psu.setLoad(0, 100.0);
    psu.setLoad(1, 50.0);
    psu.accountEnergy(3600.0);
    EXPECT_DOUBLE_EQ(psu.solarWh(), 100.0);
    EXPECT_DOUBLE_EQ(psu.gridWh(), 50.0);
    psu.setSource(0, PowerSource::Grid);
    psu.accountEnergy(1800.0);
    EXPECT_DOUBLE_EQ(psu.solarWh(), 100.0);
    EXPECT_DOUBLE_EQ(psu.gridWh(), 125.0);
}

TEST(Psu, OverloadIsFatal)
{
    auto psu = Psu::paperDefault();
    EXPECT_DEATH(psu.setLoad(0, 1000.0), "rating");
}

TEST(Psu, CustomRails)
{
    Psu psu;
    const int idx = psu.addRail({"3.3V", 3.3, PowerSource::Grid, 0.0,
                                 20.0});
    EXPECT_EQ(idx, 0);
    psu.setLoad(idx, 15.0);
    EXPECT_DOUBLE_EQ(psu.rail(idx).loadW, 15.0);
}

} // namespace
} // namespace solarcore::power
