/**
 * @file
 * Tests for the finite-capacity UPS ride-through model.
 */

#include <gtest/gtest.h>

#include "power/ups.hpp"

namespace solarcore::power {
namespace {

TEST(Ups, StartsFull)
{
    Ups ups(5.0, 250.0, 20.0);
    EXPECT_DOUBLE_EQ(ups.storedWh(), 5.0);
    EXPECT_EQ(ups.brownouts(), 0);
}

TEST(Ups, BridgesShortTransfer)
{
    Ups ups(5.0, 250.0, 20.0);
    // 100 W for 30 s = 0.83 Wh, well within the reservoir.
    EXPECT_TRUE(ups.bridge(100.0, 30.0));
    EXPECT_NEAR(ups.storedWh(), 5.0 - 100.0 * 30.0 / 3600.0, 1e-12);
    EXPECT_NEAR(ups.deliveredWh(), 100.0 * 30.0 / 3600.0, 1e-12);
}

TEST(Ups, BrownoutOnOverPowerLoad)
{
    Ups ups(5.0, 250.0, 20.0);
    EXPECT_FALSE(ups.bridge(300.0, 1.0));
    EXPECT_EQ(ups.brownouts(), 1);
    EXPECT_DOUBLE_EQ(ups.storedWh(), 5.0); // nothing delivered
}

TEST(Ups, BrownoutOnExhaustedReservoir)
{
    Ups ups(1.0, 250.0, 20.0);
    // 200 W for 60 s needs 3.33 Wh > 1 Wh stored.
    EXPECT_FALSE(ups.bridge(200.0, 60.0));
    EXPECT_EQ(ups.brownouts(), 1);
    EXPECT_DOUBLE_EQ(ups.storedWh(), 0.0);
    EXPECT_DOUBLE_EQ(ups.deliveredWh(), 1.0);
}

TEST(Ups, RechargeRefillsToCapacity)
{
    Ups ups(2.0, 250.0, 60.0);
    ASSERT_TRUE(ups.bridge(120.0, 30.0)); // use 1 Wh
    ups.recharge(30.0);                   // +0.5 Wh
    EXPECT_NEAR(ups.storedWh(), 1.5, 1e-12);
    ups.recharge(3600.0); // far more than needed: clamps at capacity
    EXPECT_DOUBLE_EQ(ups.storedWh(), 2.0);
}

TEST(Ups, HoldupTimeMatchesEnergyBudget)
{
    Ups ups(5.0, 250.0, 20.0);
    // 5 Wh at 100 W = 180 s.
    EXPECT_NEAR(ups.holdupSeconds(100.0), 180.0, 1e-9);
    EXPECT_DOUBLE_EQ(ups.holdupSeconds(300.0), 0.0);
    EXPECT_GT(ups.holdupSeconds(0.0), 3600.0);
}

TEST(Ups, TypicalSolarCoreDayWithinRating)
{
    // A paper-scale day sees ~10 transfers bridged for ~2 s each at
    // chip power: a small 5 Wh UPS must carry that comfortably.
    Ups ups(5.0, 250.0, 20.0);
    for (int i = 0; i < 10; ++i) {
        EXPECT_TRUE(ups.bridge(150.0, 2.0));
        ups.recharge(600.0);
    }
    EXPECT_EQ(ups.brownouts(), 0);
}

} // namespace
} // namespace solarcore::power
