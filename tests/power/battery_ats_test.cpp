/**
 * @file
 * Tests for the battery de-rating/state-of-charge models (paper
 * Table 3) and the automatic transfer switch.
 */

#include <gtest/gtest.h>

#include "power/ats.hpp"
#include "power/battery.hpp"
#include "power/sensors.hpp"

namespace solarcore::power {
namespace {

TEST(DeRating, Table3Values)
{
    const auto high = deRating(BatteryLevel::High);
    EXPECT_DOUBLE_EQ(high.mpptTrackingEff, 0.97);
    EXPECT_DOUBLE_EQ(high.batteryRoundTrip, 0.95);
    EXPECT_NEAR(high.overall(), 0.92, 0.003);

    const auto mod = deRating(BatteryLevel::Moderate);
    EXPECT_NEAR(mod.overall(), 0.81, 0.003);

    const auto low = deRating(BatteryLevel::Low);
    EXPECT_NEAR(low.overall(), 0.70, 0.003);
}

TEST(DeRating, PaperBoundsMatchHighLevel)
{
    EXPECT_NEAR(kBatteryUpperBound, 0.92, 1e-9);
    EXPECT_NEAR(kBatteryLowerBound, 0.81, 1e-9);
}

TEST(Battery, ChargeStoresWithLoss)
{
    Battery b(100.0, 0.9, 0.9, 0.0);
    const double absorbed = b.charge(50.0, 1.0); // 50 Wh offered
    EXPECT_DOUBLE_EQ(absorbed, 50.0);
    EXPECT_DOUBLE_EQ(b.storedWh(), 45.0);
    EXPECT_DOUBLE_EQ(b.lostWh(), 5.0);
}

TEST(Battery, ChargeSaturatesAtCapacity)
{
    Battery b(10.0, 1.0, 1.0, 0.0);
    const double absorbed = b.charge(100.0, 1.0);
    EXPECT_DOUBLE_EQ(absorbed, 10.0);
    EXPECT_DOUBLE_EQ(b.socFraction(), 1.0);
    EXPECT_DOUBLE_EQ(b.charge(100.0, 1.0), 0.0);
}

TEST(Battery, DischargeDeliversWithLoss)
{
    Battery b(100.0, 1.0, 0.8, 0.0);
    b.charge(100.0, 1.0);
    const double delivered = b.discharge(40.0, 1.0);
    EXPECT_DOUBLE_EQ(delivered, 40.0);
    EXPECT_DOUBLE_EQ(b.storedWh(), 50.0); // removed 50 to deliver 40
    EXPECT_DOUBLE_EQ(b.deliveredWh(), 40.0);
    EXPECT_DOUBLE_EQ(b.lostWh(), 10.0);
}

TEST(Battery, DischargeLimitedByStore)
{
    Battery b(100.0, 1.0, 1.0, 0.0);
    b.charge(30.0, 1.0);
    EXPECT_DOUBLE_EQ(b.discharge(100.0, 1.0), 30.0);
    EXPECT_DOUBLE_EQ(b.storedWh(), 0.0);
}

TEST(Battery, StartsEmptyAndEmptyDeliversNothing)
{
    Battery b(100.0);
    EXPECT_DOUBLE_EQ(b.storedWh(), 0.0);
    EXPECT_DOUBLE_EQ(b.socFraction(), 0.0);
    EXPECT_DOUBLE_EQ(b.discharge(50.0, 1.0), 0.0);
    EXPECT_DOUBLE_EQ(b.deliveredWh(), 0.0);
    // Idling an empty battery must not drive the store negative.
    b.idle(24.0);
    EXPECT_DOUBLE_EQ(b.storedWh(), 0.0);
}

TEST(Battery, FullBatteryRejectsChargeButDischargesCleanly)
{
    Battery b(50.0, 1.0, 1.0, 0.0);
    b.charge(1000.0, 1.0);
    EXPECT_DOUBLE_EQ(b.socFraction(), 1.0);
    // At capacity, further offers are refused in full.
    EXPECT_DOUBLE_EQ(b.charge(10.0, 1.0), 0.0);
    EXPECT_DOUBLE_EQ(b.storedWh(), 50.0);
    // The full store then drains to exactly empty, never below.
    EXPECT_DOUBLE_EQ(b.discharge(50.0, 1.0), 50.0);
    EXPECT_DOUBLE_EQ(b.discharge(50.0, 1.0), 0.0);
    EXPECT_DOUBLE_EQ(b.storedWh(), 0.0);
}

TEST(Battery, SelfDischargeDrains)
{
    Battery b(100.0, 1.0, 1.0, 0.01);
    b.charge(100.0, 1.0);
    b.idle(10.0);
    EXPECT_LT(b.storedWh(), 100.0);
    EXPECT_GT(b.storedWh(), 85.0);
}

TEST(Battery, RoundTripEfficiencyComposes)
{
    // 0.95 charge x 0.9 discharge ~ 0.855 round trip.
    Battery b(1000.0, 0.95, 0.90, 0.0);
    b.charge(100.0, 1.0);
    const double out = b.discharge(1000.0, 1.0);
    EXPECT_NEAR(out / 100.0, 0.855, 1e-9);
}

TEST(TransferSwitch, StartsOnGrid)
{
    TransferSwitch ats(25.0, 2.0, 300.0);
    EXPECT_FALSE(ats.onSolar());
}

TEST(TransferSwitch, SwitchesAfterStableDelay)
{
    TransferSwitch ats(25.0, 2.0, 300.0);
    // Above threshold but not yet for the stabilization delay.
    for (int i = 0; i < 9; ++i) {
        ats.update(40.0, 30.0);
        EXPECT_FALSE(ats.onSolar()) << i;
    }
    ats.update(40.0, 30.0); // 300 s accumulated
    EXPECT_TRUE(ats.onSolar());
    EXPECT_EQ(ats.transferCount(), 1);
}

TEST(TransferSwitch, FlickerResetsDelay)
{
    TransferSwitch ats(25.0, 2.0, 300.0);
    for (int i = 0; i < 8; ++i)
        ats.update(40.0, 30.0);
    ats.update(10.0, 30.0); // dip resets the stability clock
    for (int i = 0; i < 9; ++i) {
        ats.update(40.0, 30.0);
        EXPECT_FALSE(ats.onSolar()) << i;
    }
    ats.update(40.0, 30.0);
    EXPECT_TRUE(ats.onSolar());
}

TEST(TransferSwitch, DropsToGridImmediately)
{
    TransferSwitch ats(25.0, 2.0, 0.0);
    ats.update(40.0, 1.0);
    EXPECT_TRUE(ats.onSolar());
    ats.update(20.0, 1.0);
    EXPECT_FALSE(ats.onSolar());
    EXPECT_EQ(ats.transferCount(), 2);
}

TEST(TransferSwitch, HysteresisBandRespected)
{
    TransferSwitch ats(25.0, 5.0, 0.0);
    ats.update(27.0, 1.0); // above threshold but inside hysteresis band
    EXPECT_FALSE(ats.onSolar());
    ats.update(31.0, 1.0);
    EXPECT_TRUE(ats.onSolar());
    ats.update(26.0, 1.0); // above threshold: stays on solar
    EXPECT_TRUE(ats.onSolar());
}

TEST(TransferSwitch, EnergyLedgersSplitBySource)
{
    TransferSwitch ats(25.0, 2.0, 0.0);
    ats.accountEnergy(100.0, 3600.0); // on grid
    ats.update(40.0, 1.0);
    ats.accountEnergy(50.0, 7200.0); // on solar
    EXPECT_DOUBLE_EQ(ats.gridEnergyWh(), 100.0);
    EXPECT_DOUBLE_EQ(ats.solarEnergyWh(), 100.0);
    EXPECT_DOUBLE_EQ(ats.gridSeconds(), 3600.0);
    EXPECT_DOUBLE_EQ(ats.solarSeconds(), 7200.0);
}

TEST(Sensors, IdealSensorIsTransparent)
{
    IvSensor sensor;
    const pv::OperatingPoint op{35.7, 5.1};
    const auto m = sensor.measure(op);
    EXPECT_DOUBLE_EQ(m.voltage, 35.7);
    EXPECT_DOUBLE_EQ(m.current, 5.1);
    EXPECT_DOUBLE_EQ(sensor.measurePower(op), 35.7 * 5.1);
}

TEST(Sensors, QuantizationSnapsToLsb)
{
    IvSensor sensor(0.5, 0.25);
    const auto m = sensor.measure({35.7, 5.1});
    EXPECT_DOUBLE_EQ(m.voltage, 35.5);
    EXPECT_DOUBLE_EQ(m.current, 5.0);
}

TEST(Sensors, NoiseIsDeterministicPerSeed)
{
    IvSensor a(0.0, 0.0, 0.01, 7);
    IvSensor b(0.0, 0.0, 0.01, 7);
    const pv::OperatingPoint op{30.0, 4.0};
    for (int i = 0; i < 10; ++i) {
        const auto ma = a.measure(op);
        const auto mb = b.measure(op);
        EXPECT_DOUBLE_EQ(ma.voltage, mb.voltage);
        EXPECT_DOUBLE_EQ(ma.current, mb.current);
        EXPECT_NE(ma.voltage, op.voltage); // noise actually applied
    }
}

} // namespace
} // namespace solarcore::power
