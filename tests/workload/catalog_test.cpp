/**
 * @file
 * Tests for the benchmark catalog: EPI calibration and class bands
 * (paper Table 5), phase construction, and the workload mixes.
 */

#include <gtest/gtest.h>

#include "cpu/chip.hpp"
#include "workload/catalog.hpp"
#include "workload/multiprogram.hpp"

namespace solarcore::workload {
namespace {

TEST(Catalog, TwelveBenchmarks)
{
    const auto names = allBenchmarkNames();
    EXPECT_EQ(names.size(), 12u);
}

TEST(Catalog, EpiClassesMatchPaperTable5)
{
    using cpu::EpiClass;
    const char *high[] = {"art", "apsi", "bzip2", "gzip"};
    const char *moderate[] = {"gcc", "mcf", "gap", "vpr"};
    const char *low[] = {"mesa", "equake", "lucas", "swim"};
    for (const char *n : high)
        EXPECT_EQ(expectedClass(n), EpiClass::High) << n;
    for (const char *n : moderate)
        EXPECT_EQ(expectedClass(n), EpiClass::Moderate) << n;
    for (const char *n : low)
        EXPECT_EQ(expectedClass(n), EpiClass::Low) << n;
}

TEST(Catalog, MeasuredEpiHitsTarget)
{
    for (const auto &name : allBenchmarkNames()) {
        const auto profile = benchmark(name);
        EXPECT_NEAR(measureEpiNj(profile), epiTargetNj(name), 0.01)
            << name;
    }
}

TEST(Catalog, MeasuredEpiFallsInDeclaredBand)
{
    using cpu::classifyEpi;
    for (const auto &name : allBenchmarkNames()) {
        const auto profile = benchmark(name);
        EXPECT_EQ(classifyEpi(measureEpiNj(profile)), expectedClass(name))
            << name;
    }
}

TEST(Catalog, SixPhasesWithPositiveDurations)
{
    for (const auto &name : allBenchmarkNames()) {
        const auto profile = benchmark(name);
        EXPECT_EQ(profile.phases.size(), 6u) << name;
        for (const auto &ph : profile.phases) {
            EXPECT_GT(ph.durationSec, 0.0) << name;
            EXPECT_GT(ph.activityScale, 0.0) << name;
            EXPECT_GT(ph.ilp, 0.0) << name;
            EXPECT_GE(ph.l2MissPerKi, 0.0) << name;
        }
    }
}

TEST(Catalog, HighEpiSwingsHarderThanLowEpi)
{
    // Paper Section 6.1: high EPI workloads produce large power
    // ripples. The phase activity spread encodes that.
    auto spread = [](const cpu::BenchmarkProfile &p) {
        double lo = 1e18;
        double hi = 0.0;
        for (const auto &ph : p.phases) {
            lo = std::min(lo, ph.activityScale);
            hi = std::max(hi, ph.activityScale);
        }
        return (hi - lo) / ((hi + lo) / 2.0);
    };
    EXPECT_GT(spread(benchmark("art")), spread(benchmark("mesa")) * 1.5);
}

TEST(Catalog, UnknownBenchmarkIsFatal)
{
    EXPECT_DEATH(benchmark("quake3"), "unknown benchmark");
}

TEST(Multiprogram, TenWorkloads)
{
    EXPECT_EQ(allWorkloads().size(), 10u);
}

TEST(Multiprogram, EveryWorkloadHasEightSlots)
{
    for (auto id : allWorkloads()) {
        EXPECT_EQ(workloadBenchmarks(id).size(), 8u) << workloadName(id);
        EXPECT_EQ(workloadSet(id).size(), 8u) << workloadName(id);
    }
}

TEST(Multiprogram, Table5Composition)
{
    // Spot-check the exact Table 5 mixes.
    const auto h1 = workloadBenchmarks(WorkloadId::H1);
    for (const auto &n : h1)
        EXPECT_EQ(n, "art");

    const auto h2 = workloadBenchmarks(WorkloadId::H2);
    EXPECT_EQ(std::count(h2.begin(), h2.end(), "art"), 2);
    EXPECT_EQ(std::count(h2.begin(), h2.end(), "apsi"), 2);
    EXPECT_EQ(std::count(h2.begin(), h2.end(), "bzip2"), 2);
    EXPECT_EQ(std::count(h2.begin(), h2.end(), "gzip"), 2);

    const auto hm1 = workloadBenchmarks(WorkloadId::HM1);
    EXPECT_EQ(std::count(hm1.begin(), hm1.end(), "bzip2"), 4);
    EXPECT_EQ(std::count(hm1.begin(), hm1.end(), "gcc"), 4);

    const auto ml2 = workloadBenchmarks(WorkloadId::ML2);
    const char *expect_ml2[] = {"gcc", "mcf", "gap", "vpr",
                                "mesa", "equake", "lucas", "swim"};
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(ml2[static_cast<std::size_t>(i)], expect_ml2[i]);
}

TEST(Multiprogram, HomogeneityFlags)
{
    EXPECT_TRUE(isHomogeneous(WorkloadId::H1));
    EXPECT_TRUE(isHomogeneous(WorkloadId::M1));
    EXPECT_TRUE(isHomogeneous(WorkloadId::L1));
    EXPECT_FALSE(isHomogeneous(WorkloadId::H2));
    EXPECT_FALSE(isHomogeneous(WorkloadId::HM2));
    EXPECT_FALSE(isHomogeneous(WorkloadId::ML1));
}

TEST(Catalog, LongRunEpiStaysInClassBand)
{
    // Playing a benchmark through many phase cycles, the time-weighted
    // EPI must stay inside (or within a whisker of) the calibrated
    // class band -- phases swing around the base point symmetrically.
    const auto table = cpu::DvfsTable::paperDefault();
    for (const auto &name : {"art", "gcc", "mesa"}) {
        cpu::MultiCoreChip chip(
            cpu::defaultChipConfig(), table, cpu::EnergyParams{},
            std::vector<cpu::BenchmarkProfile>(8, benchmark(name)), 3);
        chip.setAllLevels(table.maxLevel());
        chip.step(3600.0); // one hour: ~10 full phase cycles
        const double joules = chip.totalEnergy();
        const double instrs = chip.totalInstructions();
        const double epi_nj = joules / instrs * 1e9;
        const double target = epiTargetNj(name);
        EXPECT_NEAR(epi_nj, target, 0.35 * target) << name;
    }
}

TEST(Catalog, DayScalePtpMagnitudePlausible)
{
    // The paper measures PTP as instructions per day: an 8-core chip
    // at full tilt must land in the 10^14..10^15 range over 10 h.
    cpu::MultiCoreChip chip(cpu::defaultChipConfig(),
                            cpu::DvfsTable::paperDefault(),
                            cpu::EnergyParams{},
                            workloadSet(WorkloadId::ML2), 3);
    chip.setAllLevels(chip.dvfs().maxLevel());
    chip.step(10.0 * 3600.0);
    EXPECT_GT(chip.totalInstructions(), 1e14);
    EXPECT_LT(chip.totalInstructions(), 2e15);
}

TEST(Multiprogram, NamesRoundTrip)
{
    for (auto id : allWorkloads()) {
        const std::string n = workloadName(id);
        EXPECT_FALSE(n.empty());
    }
    EXPECT_STREQ(workloadName(WorkloadId::HM2), "HM2");
}

/** Every mix member must come from the classes its name advertises. */
class WorkloadClassSweep : public ::testing::TestWithParam<WorkloadId>
{
};

TEST_P(WorkloadClassSweep, MembersDrawnFromAdvertisedClasses)
{
    using cpu::EpiClass;
    const auto id = GetParam();
    const std::string name = workloadName(id);
    for (const auto &bench : workloadBenchmarks(id)) {
        const auto cls = expectedClass(bench);
        bool ok = false;
        if (name[0] == 'H')
            ok |= cls == EpiClass::High;
        if (name[0] == 'M' || name.find('M') != std::string::npos)
            ok |= cls == EpiClass::Moderate;
        if (name[0] == 'L' || name.find('L') != std::string::npos)
            ok |= cls == EpiClass::Low;
        EXPECT_TRUE(ok) << name << " contains " << bench;
    }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadClassSweep,
                         ::testing::ValuesIn(allWorkloads()));

} // namespace
} // namespace solarcore::workload
