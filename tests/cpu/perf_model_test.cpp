/**
 * @file
 * Tests for the interval performance model.
 */

#include <gtest/gtest.h>

#include "cpu/perf_model.hpp"

namespace solarcore::cpu {
namespace {

PhaseProfile
computePhase()
{
    PhaseProfile p;
    p.ilp = 3.5;
    p.branchMpki = 1.0;
    p.l1MissPerKi = 2.0;
    p.l2MissPerKi = 0.1;
    p.stallCpi = 0.05;
    p.mlp = 2.0;
    return p;
}

PhaseProfile
memoryPhase()
{
    PhaseProfile p;
    p.ilp = 2.0;
    p.branchMpki = 5.0;
    p.l1MissPerKi = 60.0;
    p.l2MissPerKi = 8.0;
    p.stallCpi = 0.3;
    p.mlp = 2.0;
    return p;
}

TEST(PerfModel, IpcNeverExceedsWidth)
{
    const PerfModel model{CoreConfig{}};
    PhaseProfile p = computePhase();
    p.ilp = 100.0; // absurd ILP still capped by the 4-wide machine
    p.branchMpki = 0.0;
    p.l1MissPerKi = 0.0;
    p.l2MissPerKi = 0.0;
    p.stallCpi = 0.0;
    const auto est = model.evaluate(p, 2.5e9);
    EXPECT_LE(est.ipc, 4.0 + 1e-12);
    EXPECT_NEAR(est.ipc, 4.0, 1e-9);
}

TEST(PerfModel, CpiComponentsSum)
{
    const PerfModel model{CoreConfig{}};
    const auto est = model.evaluate(memoryPhase(), 2.5e9);
    EXPECT_NEAR(est.cpi(),
                est.cpiBase + est.cpiBranch + est.cpiL2 + est.cpiMemory,
                1e-12);
    EXPECT_NEAR(est.ipc, 1.0 / est.cpi(), 1e-12);
}

TEST(PerfModel, MemoryBoundGainsIpcWhenSlowed)
{
    // Memory latency is fixed in ns, so lower clocks waste fewer cycles.
    const PerfModel model{CoreConfig{}};
    const auto fast = model.evaluate(memoryPhase(), 2.5e9);
    const auto slow = model.evaluate(memoryPhase(), 1.0e9);
    EXPECT_GT(slow.ipc, fast.ipc);
    // But throughput still falls with frequency.
    EXPECT_GT(fast.throughput(2.5e9), slow.throughput(1.0e9));
}

TEST(PerfModel, ComputeBoundIpcAlmostFrequencyInvariant)
{
    const PerfModel model{CoreConfig{}};
    const auto fast = model.evaluate(computePhase(), 2.5e9);
    const auto slow = model.evaluate(computePhase(), 1.0e9);
    EXPECT_NEAR(slow.ipc / fast.ipc, 1.0, 0.04);
}

TEST(PerfModel, BranchPenaltyScalesWithMpki)
{
    const PerfModel model{CoreConfig{}};
    PhaseProfile a = computePhase();
    PhaseProfile b = computePhase();
    b.branchMpki = 2.0 * a.branchMpki;
    const auto ea = model.evaluate(a, 2.5e9);
    const auto eb = model.evaluate(b, 2.5e9);
    EXPECT_NEAR(eb.cpiBranch, 2.0 * ea.cpiBranch, 1e-12);
    EXPECT_LT(eb.ipc, ea.ipc);
}

TEST(PerfModel, MlpHidesMemoryLatency)
{
    const PerfModel model{CoreConfig{}};
    PhaseProfile a = memoryPhase();
    PhaseProfile b = memoryPhase();
    b.mlp = 2.0 * a.mlp;
    const auto ea = model.evaluate(a, 2.5e9);
    const auto eb = model.evaluate(b, 2.5e9);
    EXPECT_NEAR(eb.cpiMemory, 0.5 * ea.cpiMemory, 1e-12);
}

TEST(PerfModel, MemLatencyCyclesTrackFrequency)
{
    const PerfModel model{CoreConfig{}};
    const auto e25 = model.evaluate(memoryPhase(), 2.5e9);
    const auto e10 = model.evaluate(memoryPhase(), 1.0e9);
    EXPECT_NEAR(e25.cpiMemory / e10.cpiMemory, 2.5, 1e-9);
}

TEST(PerfModel, BiggerRobHidesMoreL2Latency)
{
    CoreConfig small;
    small.robEntries = 32;
    CoreConfig big;
    big.robEntries = 192;
    const PerfModel ms(small);
    const PerfModel mb(big);
    const auto es = ms.evaluate(memoryPhase(), 2.5e9);
    const auto eb = mb.evaluate(memoryPhase(), 2.5e9);
    EXPECT_GT(es.cpiL2, eb.cpiL2);
}

/** Frequency sweep: throughput increases monotonically with clock. */
class FrequencySweep : public ::testing::TestWithParam<double>
{
};

TEST_P(FrequencySweep, ThroughputMonotone)
{
    const PerfModel model{CoreConfig{}};
    const double f = GetParam();
    const auto here = model.evaluate(memoryPhase(), f);
    const auto faster = model.evaluate(memoryPhase(), f + 0.3e9);
    EXPECT_GT(faster.throughput(f + 0.3e9), here.throughput(f));
}

INSTANTIATE_TEST_SUITE_P(Clocks, FrequencySweep,
                         ::testing::Values(1.0e9, 1.3e9, 1.6e9, 1.9e9,
                                           2.2e9));

} // namespace
} // namespace solarcore::cpu
