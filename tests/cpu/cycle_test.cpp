/**
 * @file
 * Tests for the cycle-level validation core and its synthetic trace
 * generator, including the cross-validation against the interval
 * model that the day-long simulations use.
 */

#include <gtest/gtest.h>

#include "cpu/cycle/cycle_core.hpp"
#include "cpu/perf_model.hpp"
#include "workload/catalog.hpp"

namespace solarcore::cpu::cycle {
namespace {

PhaseProfile
simplePhase()
{
    PhaseProfile p;
    p.ilp = 2.0;
    p.branchMpki = 5.0;
    p.l1MissPerKi = 20.0;
    p.l2MissPerKi = 2.0;
    p.stallCpi = 0.2;
    p.mlp = 2.0;
    p.fpFraction = 0.1;
    p.memFraction = 0.35;
    return p;
}

TEST(TraceGen, Deterministic)
{
    const auto a = generateTrace(simplePhase(), 5000, 3);
    const auto b = generateTrace(simplePhase(), 5000, 3);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].cls, b[i].cls);
        ASSERT_EQ(a[i].depDistance, b[i].depDistance);
    }
}

TEST(TraceGen, StatisticsMatchProfile)
{
    const auto phase = simplePhase();
    const auto trace = generateTrace(phase, 200000, 5);
    const auto st = measureTrace(trace);
    EXPECT_NEAR(st.loadStoreFraction, phase.memFraction, 0.01);
    EXPECT_NEAR(st.fpFraction, phase.fpFraction, 0.01);
    EXPECT_NEAR(st.branchFraction, 0.10, 0.01);
    EXPECT_NEAR(st.mispredictsPerKi, phase.branchMpki, 1.0);
    EXPECT_NEAR(st.l1MissesPerKi, phase.l1MissPerKi, 3.0);
    EXPECT_NEAR(st.l2MissesPerKi, phase.l2MissPerKi, 1.0);
}

TEST(TraceGen, DependencyDistancesValid)
{
    const auto trace = generateTrace(simplePhase(), 10000, 9);
    for (std::size_t i = 0; i < trace.size(); ++i) {
        ASSERT_GE(trace[i].depDistance, 0);
        ASSERT_LE(static_cast<std::size_t>(trace[i].depDistance), i);
    }
}

TEST(CycleCore, MemoryLatencyScalesWithClock)
{
    const CoreConfig cfg;
    const CycleCore fast(cfg, 2.5e9);
    const CycleCore slow(cfg, 1.0e9);
    EXPECT_EQ(fast.memoryCycles(), 400); // 160 ns at 2.5 GHz (Table 4)
    EXPECT_EQ(slow.memoryCycles(), 160);
}

TEST(CycleCore, LatencyTable)
{
    const CoreConfig cfg;
    const CycleCore core(cfg, 2.5e9);
    TraceInstr alu{InstrClass::IntAlu, 0, false, MemLevel::L1};
    TraceInstr fp{InstrClass::FpAlu, 0, false, MemLevel::L1};
    TraceInstr l1{InstrClass::Load, 0, false, MemLevel::L1};
    TraceInstr l2{InstrClass::Load, 0, false, MemLevel::L2};
    TraceInstr mem{InstrClass::Load, 0, false, MemLevel::Memory};
    EXPECT_EQ(core.latencyOf(alu), 1);
    EXPECT_EQ(core.latencyOf(fp), 4);
    EXPECT_EQ(core.latencyOf(l1), 3);
    EXPECT_EQ(core.latencyOf(l2), 15);
    EXPECT_EQ(core.latencyOf(mem), 415);
}

TEST(CycleCore, IpcNeverExceedsWidth)
{
    // A fully parallel ALU-only trace saturates the 4-wide machine.
    PhaseProfile p = simplePhase();
    p.ilp = 32.0;
    p.branchMpki = 0.0;
    p.l1MissPerKi = 0.0;
    p.l2MissPerKi = 0.0;
    p.stallCpi = 0.0;
    p.memFraction = 0.0;
    p.fpFraction = 0.0;
    const auto trace = generateTrace(p, 20000, 1);
    const CycleCore core(CoreConfig{}, 2.5e9);
    const auto r = core.run(trace);
    EXPECT_LE(r.ipc(), 4.0);
    EXPECT_GT(r.ipc(), 3.0);
}

TEST(CycleCore, MispredictionsCostCycles)
{
    PhaseProfile clean = simplePhase();
    clean.branchMpki = 0.0;
    PhaseProfile dirty = simplePhase();
    dirty.branchMpki = 20.0;
    const CycleCore core(CoreConfig{}, 2.5e9);
    const auto rc = core.run(generateTrace(clean, 30000, 2));
    const auto rd = core.run(generateTrace(dirty, 30000, 2));
    EXPECT_GT(rc.ipc(), rd.ipc());
    EXPECT_GT(rd.mispredictStalls, rc.mispredictStalls);
}

TEST(CycleCore, MemoryBoundGainsIpcWhenSlowed)
{
    PhaseProfile p = simplePhase();
    p.l2MissPerKi = 8.0;
    const auto trace = generateTrace(p, 30000, 4);
    const CycleCore fast(CoreConfig{}, 2.5e9);
    const CycleCore slow(CoreConfig{}, 1.0e9);
    EXPECT_GT(slow.run(trace).ipc(), fast.run(trace).ipc());
}

TEST(CycleCore, BiggerRobHelpsMemoryBoundCode)
{
    PhaseProfile p = simplePhase();
    p.l2MissPerKi = 6.0;
    p.mlp = 4.0;
    const auto trace = generateTrace(p, 30000, 6);
    CoreConfig small;
    small.robEntries = 32;
    CoreConfig big;
    big.robEntries = 192;
    const auto rs = CycleCore(small, 2.5e9).run(trace);
    const auto rb = CycleCore(big, 2.5e9).run(trace);
    EXPECT_GT(rb.ipc(), rs.ipc());
    EXPECT_GT(rs.robFullStalls, rb.robFullStalls);
}

TEST(CycleCore, TinyLsqThrottlesMemoryCode)
{
    PhaseProfile p = simplePhase();
    p.memFraction = 0.5;
    p.l2MissPerKi = 5.0;
    const auto trace = generateTrace(p, 30000, 12);
    CoreConfig small;
    small.lsqEntries = 4;
    const auto rs = CycleCore(small, 2.5e9).run(trace);
    const auto rb = CycleCore(CoreConfig{}, 2.5e9).run(trace);
    EXPECT_LT(rs.ipc(), rb.ipc());
}

TEST(CycleCore, NarrowMachineSlower)
{
    CoreConfig narrow;
    narrow.fetchWidth = narrow.issueWidth = narrow.commitWidth = 1;
    const auto trace = generateTrace(simplePhase(), 20000, 8);
    const auto r1 = CycleCore(narrow, 2.5e9).run(trace);
    const auto r4 = CycleCore(CoreConfig{}, 2.5e9).run(trace);
    EXPECT_GT(r4.ipc(), r1.ipc());
    EXPECT_LE(r1.ipc(), 1.0);
}

/**
 * Cross-validation: for every catalogued benchmark and both clock
 * extremes, the cycle core and the interval model must agree on IPC
 * within a factor band, and on the direction of frequency scaling.
 */
class ModelCrossValidation
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(ModelCrossValidation, IpcWithinBandAndTrendsAgree)
{
    const auto profile = workload::benchmark(GetParam());
    const auto &phase = profile.phases.front();
    const CoreConfig cfg;
    const PerfModel interval(cfg);
    const auto trace = generateTrace(phase, 40000, 7);

    double cycle_ipc[2];
    double interval_ipc[2];
    const double freqs[2] = {2.5e9, 1.0e9};
    for (int i = 0; i < 2; ++i) {
        cycle_ipc[i] = CycleCore(cfg, freqs[i]).run(trace).ipc();
        interval_ipc[i] = interval.evaluate(phase, freqs[i]).ipc;
        const double ratio = cycle_ipc[i] / interval_ipc[i];
        EXPECT_GT(ratio, 0.55) << GetParam() << " @ " << freqs[i];
        EXPECT_LT(ratio, 1.45) << GetParam() << " @ " << freqs[i];
    }
    // Both models agree that a slower clock never lowers IPC.
    EXPECT_GE(cycle_ipc[1], cycle_ipc[0] * 0.98);
    EXPECT_GE(interval_ipc[1], interval_ipc[0]);
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, ModelCrossValidation,
                         ::testing::ValuesIn(
                             workload::allBenchmarkNames()));

TEST(ModelCrossValidation, EpiClassOrderingPreserved)
{
    // The cycle core must reproduce the class structure the catalog
    // encodes: low-EPI programs run at higher IPC than high-EPI ones.
    const CoreConfig cfg;
    auto ipc_of = [&](const char *name) {
        const auto profile = workload::benchmark(name);
        const auto trace =
            generateTrace(profile.phases.front(), 40000, 11);
        return CycleCore(cfg, 2.5e9).run(trace).ipc();
    };
    EXPECT_GT(ipc_of("mesa"), ipc_of("gcc"));
    EXPECT_GT(ipc_of("gcc"), ipc_of("art"));
    EXPECT_GT(ipc_of("mesa"), ipc_of("mcf"));
}

} // namespace
} // namespace solarcore::cpu::cycle
