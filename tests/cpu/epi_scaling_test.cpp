/**
 * @file
 * Property sweeps of the energy-per-instruction surface across the
 * DVFS table, for every catalogued benchmark: the scaling relations
 * the TPR heuristic exploits.
 */

#include <gtest/gtest.h>

#include "cpu/dvfs.hpp"
#include "cpu/perf_model.hpp"
#include "cpu/power_model.hpp"
#include "workload/catalog.hpp"

namespace solarcore::cpu {
namespace {

struct LevelPoint
{
    double power = 0.0;
    double throughput = 0.0;
    double epi = 0.0;
};

LevelPoint
evaluateAt(const PhaseProfile &phase, int level)
{
    const auto table = DvfsTable::paperDefault();
    const PerfModel perf{CoreConfig{}};
    const PowerModel power{EnergyParams{}};
    const auto pe = perf.evaluate(phase, table.frequency(level));
    const auto po = power.evaluate(phase, pe, table.voltage(level),
                                   table.frequency(level));
    return {po.totalW(), pe.throughput(table.frequency(level)), po.epiNj};
}

class BenchmarkScaling : public ::testing::TestWithParam<std::string>
{
  protected:
    PhaseProfile
    phase() const
    {
        return workload::benchmark(GetParam()).phases.front();
    }
};

TEST_P(BenchmarkScaling, PowerAndThroughputMonotoneInLevel)
{
    const auto table = DvfsTable::paperDefault();
    LevelPoint prev = evaluateAt(phase(), 0);
    for (int l = 1; l < table.numLevels(); ++l) {
        const auto here = evaluateAt(phase(), l);
        EXPECT_GT(here.power, prev.power) << l;
        EXPECT_GT(here.throughput, prev.throughput) << l;
        prev = here;
    }
}

TEST_P(BenchmarkScaling, DynamicEpiFallsWithVoltage)
{
    // EPI at the bottom level must be lower than at the top: the V^2
    // dynamic term dominates the leakage-per-instruction term at our
    // 90 nm leakage share. This is why spreading power across many
    // slow cores (MPPT&RR/Opt) beats concentrating it (MPPT&IC).
    const auto lo = evaluateAt(phase(), 0);
    const auto hi = evaluateAt(phase(), 5);
    EXPECT_LT(lo.epi, hi.epi);
}

TEST_P(BenchmarkScaling, MarginalWattBuysLessAtHigherLevels)
{
    // Concavity of throughput(power): delta-T per delta-W shrinks as
    // the level rises, the monotonicity the TPR table sorts by.
    const auto table = DvfsTable::paperDefault();
    double prev_ratio = 1e300;
    for (int l = 0; l + 1 < table.numLevels(); ++l) {
        const auto a = evaluateAt(phase(), l);
        const auto b = evaluateAt(phase(), l + 1);
        const double ratio =
            (b.throughput - a.throughput) / (b.power - a.power);
        EXPECT_LT(ratio, prev_ratio) << "level " << l;
        prev_ratio = ratio;
    }
}

TEST_P(BenchmarkScaling, PerfPerWattPeaksAtBottomLevel)
{
    const auto table = DvfsTable::paperDefault();
    double best_level0 = evaluateAt(phase(), 0).throughput /
        evaluateAt(phase(), 0).power;
    for (int l = 1; l < table.numLevels(); ++l) {
        const auto p = evaluateAt(phase(), l);
        EXPECT_LE(p.throughput / p.power, best_level0 * 1.001) << l;
    }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, BenchmarkScaling,
                         ::testing::ValuesIn(
                             workload::allBenchmarkNames()));

TEST(EpiSurface, ClassSeparationHoldsAtEveryLevel)
{
    // art (high EPI) must cost more energy per instruction than mesa
    // (low EPI) at every operating point, not just the calibration
    // point.
    const auto art = workload::benchmark("art").phases.front();
    const auto mesa = workload::benchmark("mesa").phases.front();
    const auto table = DvfsTable::paperDefault();
    for (int l = 0; l < table.numLevels(); ++l) {
        EXPECT_GT(evaluateAt(art, l).epi, evaluateAt(mesa, l).epi)
            << "level " << l;
    }
}

} // namespace
} // namespace solarcore::cpu
