/**
 * @file
 * Tests for the RC die-thermal model and its leakage feedback loop.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "core/simulation.hpp"
#include "cpu/power_model.hpp"
#include "cpu/thermal.hpp"

namespace solarcore::cpu {
namespace {

TEST(Thermal, SteadyStateIsAmbientPlusPR)
{
    ThermalModel t(1.2, 80.0, 25.0);
    EXPECT_DOUBLE_EQ(t.steadyState(20.0, 25.0), 49.0);
    EXPECT_DOUBLE_EQ(t.steadyState(0.0, 30.0), 30.0);
}

TEST(Thermal, ConvergesToSteadyState)
{
    ThermalModel t(1.2, 80.0, 25.0);
    for (int i = 0; i < 100; ++i)
        t.step(20.0, 25.0, 30.0);
    EXPECT_NEAR(t.temperature(), 49.0, 0.01);
}

TEST(Thermal, TimeConstantGovernsApproach)
{
    // After exactly one time constant, 63.2% of the gap is closed.
    ThermalModel t(1.0, 100.0, 20.0);
    t.step(30.0, 20.0, t.timeConstant());
    const double target = 50.0;
    const double expected = target + (20.0 - target) * std::exp(-1.0);
    EXPECT_NEAR(t.temperature(), expected, 1e-9);
}

TEST(Thermal, ExactUpdateStableForHugeSteps)
{
    ThermalModel t(1.2, 80.0, 25.0);
    t.step(25.0, 30.0, 1e6); // a week in one step
    EXPECT_NEAR(t.temperature(), t.steadyState(25.0, 30.0), 1e-6);
}

TEST(Thermal, CoolsWhenPowerDrops)
{
    ThermalModel t(1.2, 80.0, 70.0);
    const double before = t.temperature();
    t.step(2.0, 20.0, 60.0);
    EXPECT_LT(t.temperature(), before);
    EXPECT_GT(t.temperature(), t.steadyState(2.0, 20.0));
}

TEST(Thermal, ZeroStepIsIdentity)
{
    ThermalModel t(1.2, 80.0, 42.0);
    t.step(50.0, 10.0, 0.0);
    EXPECT_DOUBLE_EQ(t.temperature(), 42.0);
}

TEST(Thermal, HotterDieLeaksMore)
{
    // Closing the loop raises leakage: verify the coupling direction
    // through the power model.
    const PowerModel power{EnergyParams{}};
    EXPECT_GT(power.leakageAt(1.45, 75.0), power.leakageAt(1.45, 45.0));
}

TEST(Thermal, FeedbackLoopSettles)
{
    // P(T) = dyn + leak(T), T(P) via RC: iterate to a fixed point and
    // verify it is finite and stable (no thermal runaway at our
    // leakage coefficients).
    const PowerModel power{EnergyParams{}};
    ThermalModel t(1.2, 80.0, 45.0);
    const double dyn = 15.0;
    double p = dyn + power.leakageAt(1.45, t.temperature());
    for (int i = 0; i < 200; ++i) {
        t.step(p, 35.0, 30.0);
        p = dyn + power.leakageAt(1.45, t.temperature());
    }
    EXPECT_LT(t.temperature(), 70.0);
    EXPECT_GT(t.temperature(), 45.0);
    // Fixed point: T == steadyState(P(T)).
    EXPECT_NEAR(t.temperature(), t.steadyState(p, 35.0), 0.1);
}

TEST(Thermal, ThrottleEngagesUnderTightLimit)
{
    // An artificially low thermal limit must trigger throttling
    // events while keeping the day simulation well-formed.
    const auto module = pv::buildBp3180n();
    const auto trace = solar::generateDayTrace(solar::SiteId::AZ,
                                               solar::Month::Jul, 1);
    core::SimConfig cfg;
    cfg.dtSeconds = 60.0;
    cfg.rcThermal = true;
    cfg.maxDieTempC = 55.0; // far below normal operating temperature
    const auto r = core::simulateDay(module, trace,
                                     workload::WorkloadId::H1, cfg);
    EXPECT_GT(r.thermalThrottles, 0);
    EXPECT_LE(r.utilization, 1.0);

    core::SimConfig relaxed = cfg;
    relaxed.maxDieTempC = 95.0;
    const auto r2 = core::simulateDay(module, trace,
                                      workload::WorkloadId::H1, relaxed);
    EXPECT_LT(r2.thermalThrottles, r.thermalThrottles);
}

TEST(Thermal, RcSimulationCloseToProxy)
{
    // The RC-thermal day must land near the fixed-offset proxy (the
    // proxy was chosen as a typical operating point) while remaining
    // deterministic.
    const auto module = pv::buildBp3180n();
    const auto trace = solar::generateDayTrace(solar::SiteId::AZ,
                                               solar::Month::Apr, 1);
    core::SimConfig proxy;
    proxy.dtSeconds = 60.0;
    core::SimConfig rc = proxy;
    rc.rcThermal = true;
    const auto a = core::simulateDay(module, trace,
                                     workload::WorkloadId::HM2, proxy);
    const auto b = core::simulateDay(module, trace,
                                     workload::WorkloadId::HM2, rc);
    EXPECT_NEAR(b.utilization, a.utilization, 0.05);
    EXPECT_NEAR(b.solarInstructions / a.solarInstructions, 1.0, 0.05);

    const auto b2 = core::simulateDay(module, trace,
                                      workload::WorkloadId::HM2, rc);
    EXPECT_DOUBLE_EQ(b.solarInstructions, b2.solarInstructions);
}

} // namespace
} // namespace solarcore::cpu
