/**
 * @file
 * Tests for the DVFS table and VID encoding.
 */

#include <gtest/gtest.h>

#include "cpu/dvfs.hpp"

namespace solarcore::cpu {
namespace {

TEST(DvfsTable, PaperDefaultMatchesTable4)
{
    const auto t = DvfsTable::paperDefault();
    ASSERT_EQ(t.numLevels(), 6);
    EXPECT_DOUBLE_EQ(t.frequency(0), 1.0e9);
    EXPECT_DOUBLE_EQ(t.voltage(0), 0.95);
    EXPECT_DOUBLE_EQ(t.frequency(5), 2.5e9);
    EXPECT_DOUBLE_EQ(t.voltage(5), 1.45);
    // 300 MHz / 0.1 V steps.
    for (int l = 1; l < 6; ++l) {
        EXPECT_NEAR(t.frequency(l) - t.frequency(l - 1), 0.3e9, 1.0);
        EXPECT_NEAR(t.voltage(l) - t.voltage(l - 1), 0.10, 1e-12);
    }
}

TEST(DvfsTable, LevelBounds)
{
    const auto t = DvfsTable::paperDefault();
    EXPECT_EQ(t.minLevel(), 0);
    EXPECT_EQ(t.maxLevel(), 5);
    EXPECT_DOUBLE_EQ(t.maxVoltage(), 1.45);
}

TEST(DvfsTable, VidRoundTrip)
{
    const auto t = DvfsTable::paperDefault();
    for (int l = 0; l < t.numLevels(); ++l)
        EXPECT_EQ(t.levelFromVid(t.vid(l)), l) << "level " << l;
}

TEST(DvfsTable, VidEncodesNearestQuarterStep)
{
    const auto t = DvfsTable::paperDefault();
    // 0.95 V = 0.8375 + 4.5 * 0.025 -> code 4 or 5.
    const auto code = t.vid(0);
    const double decoded = 0.8375 + 0.025 * code;
    EXPECT_NEAR(decoded, 0.95, 0.013);
}

TEST(DvfsTable, CustomTableValidation)
{
    std::vector<DvfsPoint> pts = {{1.0e9, 1.0}, {2.0e9, 1.2}};
    const DvfsTable t(pts);
    EXPECT_EQ(t.numLevels(), 2);
    EXPECT_DOUBLE_EQ(t.frequency(1), 2.0e9);
}

using DvfsDeathTest = ::testing::Test;

TEST(DvfsDeathTest, RejectsDescendingFrequencies)
{
    std::vector<DvfsPoint> pts = {{2.0e9, 1.2}, {1.0e9, 1.0}};
    EXPECT_DEATH({ DvfsTable t(pts); }, "ascend");
}

TEST(DvfsDeathTest, RejectsOutOfRangeLevel)
{
    const auto t = DvfsTable::paperDefault();
    EXPECT_DEATH(t.frequency(6), "out of range");
    EXPECT_DEATH(t.frequency(-1), "out of range");
}

} // namespace
} // namespace solarcore::cpu
