/**
 * @file
 * Tests for the per-core VRM model.
 */

#include <gtest/gtest.h>

#include "cpu/dvfs.hpp"
#include "cpu/vrm.hpp"

namespace solarcore::cpu {
namespace {

TEST(Vrm, EfficiencyPeaksNearRatedLoad)
{
    const Vrm vrm;
    const double at_rated = vrm.efficiencyAt(30.0);
    EXPECT_GT(at_rated, vrm.efficiencyAt(1.0));   // light-load droop
    EXPECT_GT(at_rated, vrm.efficiencyAt(90.0));  // overload losses
    EXPECT_NEAR(at_rated, 0.90, 0.01);
}

TEST(Vrm, EfficiencyBounded)
{
    const Vrm vrm;
    for (double w : {0.0, 0.5, 2.0, 10.0, 30.0, 60.0, 200.0}) {
        const double e = vrm.efficiencyAt(w);
        EXPECT_GE(e, 0.5) << w;
        EXPECT_LE(e, 1.0) << w;
    }
}

TEST(Vrm, InputPowerExceedsLoad)
{
    const Vrm vrm;
    for (double w : {2.0, 10.0, 25.0}) {
        EXPECT_GT(vrm.inputPower(w), w);
        EXPECT_NEAR(vrm.inputPower(w) * vrm.efficiencyAt(w), w, 1e-9);
    }
    EXPECT_DOUBLE_EQ(vrm.inputPower(0.0), 0.0);
}

TEST(Vrm, TransitionTimeMatchesSlewRate)
{
    // One DVFS notch of the paper's table is 100 mV; at 20 mV/us that
    // is a 5 us transition -- far below the 5 ms tracking events.
    const Vrm vrm;
    const auto table = DvfsTable::paperDefault();
    const double dt =
        vrm.transitionSeconds(table.voltage(2), table.voltage(3));
    EXPECT_NEAR(dt, 5e-6, 1e-9);
    EXPECT_LT(dt, 5e-3);
}

TEST(Vrm, TransitionEnergyNegligiblePerNotch)
{
    // 100 mV * 1.5 nJ/mV = 150 nJ: microscopic next to the joules a
    // tracking period moves, which justifies ignoring it in the
    // day-level energy ledgers.
    const Vrm vrm;
    const double j = vrm.transitionJoules(1.05, 1.15);
    EXPECT_NEAR(j, 150e-9, 1e-12);
}

TEST(Vrm, FullDvfsLadderTransitionBudget)
{
    // Even sweeping a core across the entire ladder costs < 1 uJ and
    // < 30 us, so a 96-notch tracking event stays well under the
    // paper's 5 ms figure.
    const Vrm vrm;
    const auto table = DvfsTable::paperDefault();
    double joules = 0.0;
    double seconds = 0.0;
    for (int l = 0; l + 1 < table.numLevels(); ++l) {
        joules += vrm.transitionJoules(table.voltage(l),
                                       table.voltage(l + 1));
        seconds += vrm.transitionSeconds(table.voltage(l),
                                         table.voltage(l + 1));
    }
    EXPECT_LT(joules, 1e-6);
    EXPECT_LT(seconds * 96.0 / 5.0, 5e-3);
}

} // namespace
} // namespace solarcore::cpu
