/**
 * @file
 * Tests for the Core and MultiCoreChip wrappers.
 */

#include <gtest/gtest.h>

#include "cpu/chip.hpp"
#include "workload/catalog.hpp"
#include "workload/multiprogram.hpp"

namespace solarcore::cpu {
namespace {

MultiCoreChip
makeChip(workload::WorkloadId id = workload::WorkloadId::HM2,
         std::uint64_t seed = 42)
{
    return MultiCoreChip(defaultChipConfig(), DvfsTable::paperDefault(),
                         EnergyParams{}, workload::workloadSet(id), seed);
}

TEST(Core, LevelChangesPowerAndThroughput)
{
    auto chip = makeChip();
    Core &c = chip.core(0);
    c.setLevel(0);
    const double p_low = c.power().totalW();
    const double t_low = c.throughput();
    c.setLevel(5);
    EXPECT_GT(c.power().totalW(), p_low);
    EXPECT_GT(c.throughput(), t_low);
}

TEST(Core, GatingZeroesThroughput)
{
    auto chip = makeChip();
    Core &c = chip.core(0);
    c.setGated(true);
    EXPECT_DOUBLE_EQ(c.throughput(), 0.0);
    EXPECT_LT(c.power().totalW(), 0.1);
    c.setGated(false);
    EXPECT_GT(c.throughput(), 0.0);
}

TEST(Core, WhatIfQueriesMatchActualState)
{
    auto chip = makeChip();
    Core &c = chip.core(3);
    for (int l = 0; l < chip.dvfs().numLevels(); ++l) {
        c.setLevel(l);
        EXPECT_NEAR(c.powerAtLevel(l), c.power().totalW(), 1e-9);
        EXPECT_NEAR(c.throughputAtLevel(l), c.throughput(), 1e-6);
    }
}

TEST(Core, StepAccumulatesInstructionsAndEnergy)
{
    auto chip = makeChip();
    Core &c = chip.core(0);
    c.setLevel(5);
    const double thr = c.throughput();
    const double pw = c.power().totalW();
    c.step(1.0);
    // One second within one phase: exact accumulation.
    EXPECT_NEAR(c.instructionsRetired(), thr, thr * 1e-9);
    EXPECT_NEAR(c.energyJoules(), pw, pw * 1e-9);
}

TEST(Core, PhasePlaybackChangesOperatingPoint)
{
    auto chip = makeChip(workload::WorkloadId::H1);
    Core &c = chip.core(0);
    c.setLevel(5);
    // Walk through several phases and record the power trajectory;
    // art's phase swing must show up as distinct power values.
    double lo = 1e18;
    double hi = 0.0;
    for (int i = 0; i < 100; ++i) {
        c.step(30.0);
        const double p = c.power().totalW();
        lo = std::min(lo, p);
        hi = std::max(hi, p);
    }
    EXPECT_GT(hi - lo, 2.0); // watts of phase-driven ripple
}

TEST(Core, GatedStepConsumesResidualEnergyOnly)
{
    auto chip = makeChip();
    Core &c = chip.core(0);
    c.setGated(true);
    c.step(10.0);
    EXPECT_DOUBLE_EQ(c.instructionsRetired(), 0.0);
    EXPECT_NEAR(c.energyJoules(), 0.05 * 10.0, 1e-9);
}

TEST(Chip, AggregatesMatchCoreSums)
{
    auto chip = makeChip();
    chip.setAllLevels(3);
    double p = 0.0;
    double t = 0.0;
    for (int i = 0; i < chip.numCores(); ++i) {
        p += chip.core(i).power().totalW();
        t += chip.core(i).throughput();
    }
    EXPECT_NEAR(chip.totalPower(), p, 1e-9);
    EXPECT_NEAR(chip.totalThroughput(), t, 1e-6);
}

TEST(Chip, EightCoresByDefault)
{
    auto chip = makeChip();
    EXPECT_EQ(chip.numCores(), 8);
}

TEST(Chip, PowerEnvelope)
{
    // Chip max power must exceed any realistic solar budget and the
    // ungated min must stay in the tens of watts (PCPG goes lower).
    for (auto id : workload::allWorkloads()) {
        auto chip = makeChip(id);
        chip.setAllLevels(chip.dvfs().maxLevel());
        const double pmax = chip.totalPower();
        EXPECT_GT(pmax, 140.0) << workload::workloadName(id);
        EXPECT_LT(pmax, 260.0) << workload::workloadName(id);

        chip.setAllLevels(0);
        const double pmin = chip.totalPower();
        EXPECT_LT(pmin, 50.0) << workload::workloadName(id);

        chip.gateAll();
        EXPECT_LT(chip.totalPower(), 1.0) << workload::workloadName(id);
    }
}

TEST(Chip, SameSeedReproducesTrajectories)
{
    auto a = makeChip(workload::WorkloadId::ML2, 7);
    auto b = makeChip(workload::WorkloadId::ML2, 7);
    a.setAllLevels(4);
    b.setAllLevels(4);
    for (int i = 0; i < 50; ++i) {
        a.step(13.0);
        b.step(13.0);
    }
    EXPECT_DOUBLE_EQ(a.totalInstructions(), b.totalInstructions());
    EXPECT_DOUBLE_EQ(a.totalEnergy(), b.totalEnergy());
}

TEST(Chip, DifferentSeedsDecorrelatePhases)
{
    auto a = makeChip(workload::WorkloadId::H1, 1);
    auto b = makeChip(workload::WorkloadId::H1, 2);
    a.setAllLevels(5);
    b.setAllLevels(5);
    a.step(100.0);
    b.step(100.0);
    EXPECT_NE(a.totalInstructions(), b.totalInstructions());
}

TEST(Chip, IdealRegulatorsByDefault)
{
    auto chip = makeChip();
    chip.setAllLevels(3);
    EXPECT_FALSE(chip.hasVrmModel());
    EXPECT_DOUBLE_EQ(chip.inputPower(), chip.totalPower());
}

TEST(Chip, VrmModelAddsConversionLoss)
{
    auto chip = makeChip();
    chip.setAllLevels(3);
    chip.setVrmModel(VrmParams{});
    EXPECT_TRUE(chip.hasVrmModel());
    EXPECT_GT(chip.inputPower(), chip.totalPower());
    // ~10% regulator loss at typical operating points.
    EXPECT_LT(chip.inputPower(), 1.25 * chip.totalPower());
    chip.clearVrmModel();
    EXPECT_DOUBLE_EQ(chip.inputPower(), chip.totalPower());
}

TEST(Chip, VrmLossWorseAtLightLoad)
{
    // Light-load droop: the relative loss at the bottom level exceeds
    // the relative loss near the regulators' rated point.
    auto chip = makeChip();
    chip.setVrmModel(VrmParams{});
    chip.setAllLevels(0);
    const double light =
        chip.inputPower() / chip.totalPower();
    chip.setAllLevels(chip.dvfs().maxLevel());
    const double heavy =
        chip.inputPower() / chip.totalPower();
    EXPECT_GT(light, heavy);
}

TEST(Chip, HomogeneousWorkloadCoresDesynchronized)
{
    // Eight copies of art must not be phase-locked: per-core power at a
    // random instant should differ across cores.
    auto chip = makeChip(workload::WorkloadId::H1, 9);
    chip.setAllLevels(5);
    chip.step(200.0);
    double lo = 1e18;
    double hi = 0.0;
    for (int i = 0; i < chip.numCores(); ++i) {
        const double p = chip.core(i).power().totalW();
        lo = std::min(lo, p);
        hi = std::max(hi, p);
    }
    EXPECT_GT(hi - lo, 1.0);
}

} // namespace
} // namespace solarcore::cpu
