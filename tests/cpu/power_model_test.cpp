/**
 * @file
 * Tests for the Wattch-style power model.
 */

#include <gtest/gtest.h>

#include "cpu/dvfs.hpp"
#include "cpu/perf_model.hpp"
#include "cpu/power_model.hpp"

namespace solarcore::cpu {
namespace {

PhaseProfile
typicalPhase()
{
    PhaseProfile p;
    p.ilp = 2.4;
    p.branchMpki = 5.0;
    p.l1MissPerKi = 18.0;
    p.l2MissPerKi = 1.2;
    p.stallCpi = 0.22;
    p.mlp = 2.0;
    p.fpFraction = 0.1;
    p.memFraction = 0.35;
    p.activityScale = 3.0;
    return p;
}

TEST(PowerModel, PowerRisesWithVoltageAndFrequency)
{
    const PerfModel perf{CoreConfig{}};
    const PowerModel power{EnergyParams{}};
    const auto table = DvfsTable::paperDefault();
    const auto phase = typicalPhase();

    double prev = 0.0;
    for (int l = 0; l < table.numLevels(); ++l) {
        const auto pe = perf.evaluate(phase, table.frequency(l));
        const double w = power
            .evaluate(phase, pe, table.voltage(l), table.frequency(l))
            .totalW();
        ASSERT_GT(w, prev) << "level " << l;
        prev = w;
    }
}

TEST(PowerModel, DynamicScalesWithVoltageSquared)
{
    const PerfModel perf{CoreConfig{}};
    const PowerModel power{EnergyParams{}};
    const auto phase = typicalPhase();
    const double f = 2.0e9;
    const auto pe = perf.evaluate(phase, f);

    const double d1 = power.evaluate(phase, pe, 1.0, f).dynamicW;
    const double d2 = power.evaluate(phase, pe, 1.4, f).dynamicW;
    EXPECT_NEAR(d2 / d1, 1.4 * 1.4, 1e-9);
}

TEST(PowerModel, LeakageGrowsWithTemperature)
{
    const PowerModel power{EnergyParams{}};
    EXPECT_GT(power.leakageAt(1.45, 80.0), power.leakageAt(1.45, 50.0));
    EXPECT_GT(power.leakageAt(1.45, 50.0), power.leakageAt(0.95, 50.0));
}

TEST(PowerModel, LeakageAtNominalMatchesParameter)
{
    EnergyParams ep;
    const PowerModel power(ep);
    EXPECT_NEAR(power.leakageAt(ep.nominalVoltage, 50.0),
                ep.leakageAtNominalW, 1e-12);
}

TEST(PowerModel, GatedCoreDrawsOnlyResidual)
{
    EnergyParams ep;
    const PowerModel power(ep);
    const auto g = power.gatedPower();
    EXPECT_DOUBLE_EQ(g.dynamicW, 0.0);
    EXPECT_DOUBLE_EQ(g.leakageW, ep.gatedResidualW);
    EXPECT_DOUBLE_EQ(g.epiNj, 0.0);
}

TEST(PowerModel, EpiConsistentWithPowerAndThroughput)
{
    const PerfModel perf{CoreConfig{}};
    const PowerModel power{EnergyParams{}};
    const auto phase = typicalPhase();
    const double f = 2.5e9;
    const auto pe = perf.evaluate(phase, f);
    const auto po = power.evaluate(phase, pe, 1.45, f);
    EXPECT_NEAR(po.epiNj, po.totalW() / pe.throughput(f) * 1e9, 1e-9);
}

TEST(PowerModel, ActivityScaleIsLinearInDynamicEnergy)
{
    const PowerModel power{EnergyParams{}};
    PhaseProfile a = typicalPhase();
    PhaseProfile b = typicalPhase();
    a.activityScale = 1.0;
    b.activityScale = 2.0;
    EXPECT_NEAR(power.dynamicEpiNominalNj(b),
                2.0 * power.dynamicEpiNominalNj(a), 1e-12);
}

TEST(PowerModel, FpHeavyPhaseCostsMore)
{
    const PowerModel power{EnergyParams{}};
    PhaseProfile intp = typicalPhase();
    PhaseProfile fpp = typicalPhase();
    intp.fpFraction = 0.0;
    fpp.fpFraction = 0.6;
    EXPECT_GT(power.dynamicEpiNominalNj(fpp),
              power.dynamicEpiNominalNj(intp));
}

TEST(PowerModel, BreakdownSumsToDynamic)
{
    const PerfModel perf{CoreConfig{}};
    const PowerModel power{EnergyParams{}};
    const auto phase = typicalPhase();
    const auto pe = perf.evaluate(phase, 2.5e9);
    const auto po = power.evaluate(phase, pe, 1.45, 2.5e9);
    EXPECT_NEAR(po.breakdown.total(), po.dynamicW, 1e-12);
    EXPECT_GT(po.breakdown.clockW, 0.0);
    EXPECT_GT(po.breakdown.frontendW, 0.0);
}

TEST(PowerModel, BreakdownReflectsWorkloadCharacter)
{
    const PerfModel perf{CoreConfig{}};
    const PowerModel power{EnergyParams{}};
    PhaseProfile fp_heavy = typicalPhase();
    fp_heavy.fpFraction = 0.6;
    PhaseProfile miss_heavy = typicalPhase();
    miss_heavy.l1MissPerKi = 80.0;

    const auto base = power.evaluate(typicalPhase(),
                                     perf.evaluate(typicalPhase(), 2.5e9),
                                     1.45, 2.5e9);
    const auto fp = power.evaluate(fp_heavy,
                                   perf.evaluate(fp_heavy, 2.5e9), 1.45,
                                   2.5e9);
    const auto miss = power.evaluate(miss_heavy,
                                     perf.evaluate(miss_heavy, 2.5e9),
                                     1.45, 2.5e9);
    // Per unit of throughput, the character shows in the right bucket.
    auto share = [](double part, const PowerBreakdown &bd) {
        return part / bd.total();
    };
    EXPECT_GT(share(fp.breakdown.aluW, fp.breakdown),
              share(base.breakdown.aluW, base.breakdown));
    EXPECT_GT(share(miss.breakdown.l2W, miss.breakdown),
              share(base.breakdown.l2W, base.breakdown));
}

TEST(PowerModel, StalledCoreStillPaysPartialClock)
{
    // A core with near-zero IPC keeps burning the non-gated clock
    // fraction plus leakage.
    const PerfModel perf{CoreConfig{}};
    const PowerModel power{EnergyParams{}};
    PhaseProfile p = typicalPhase();
    p.l2MissPerKi = 100.0;
    p.mlp = 1.0;
    const auto pe = perf.evaluate(p, 2.5e9);
    EXPECT_LT(pe.ipc, 0.1);
    const auto po = power.evaluate(p, pe, 1.45, 2.5e9);
    EXPECT_GT(po.dynamicW, 0.5); // clock tree floor
}

} // namespace
} // namespace solarcore::cpu
