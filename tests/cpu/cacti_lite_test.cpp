/**
 * @file
 * Tests for the CACTI-style SRAM energy estimator and the derivation
 * of the Wattch-like energy parameters from the machine config.
 */

#include <gtest/gtest.h>

#include "cpu/cacti_lite.hpp"

namespace solarcore::cpu {
namespace {

SramGeometry
l1Geometry()
{
    return {64 * 1024, 4, 64, 1, 1};
}

TEST(CactiLite, ReferencePointsInBallpark)
{
    // Published CACTI 90 nm anchors: 64 KB L1 ~0.5..1 nJ per read,
    // 2 MB L2 a handful of nJ, small register arrays tens of pJ.
    const auto l1 = estimateSram(l1Geometry());
    EXPECT_GT(l1.readNj, 0.3);
    EXPECT_LT(l1.readNj, 1.2);

    const auto l2 = estimateSram({2048 * 1024, 8, 128, 1, 1});
    EXPECT_GT(l2.readNj, 1.5);
    EXPECT_LT(l2.readNj, 6.0);

    const auto rf = estimateSram({128 * 8, 1, 8, 2, 1});
    EXPECT_GT(rf.readNj, 0.005);
    EXPECT_LT(rf.readNj, 0.10);
}

TEST(CactiLite, EnergyMonotoneInCapacity)
{
    double prev = 0.0;
    for (int kb : {16, 32, 64, 128, 256}) {
        const auto e = estimateSram({kb * 1024, 4, 64, 1, 1});
        EXPECT_GT(e.readNj, prev) << kb;
        prev = e.readNj;
    }
}

TEST(CactiLite, WritesCostMoreThanReads)
{
    // Full bitline swings on writes vs sense-limited swings on reads.
    const auto e = estimateSram(l1Geometry());
    EXPECT_GT(e.writeNj, e.readNj);
}

TEST(CactiLite, HigherAssociativityCostsEnergy)
{
    const auto a2 = estimateSram({64 * 1024, 2, 64, 1, 1});
    const auto a8 = estimateSram({64 * 1024, 8, 64, 1, 1});
    EXPECT_GT(a8.readNj, a2.readNj);
}

TEST(CactiLite, PortsScaleEnergyAndLeakage)
{
    const auto p1 = estimateSram({1024, 1, 8, 1, 1});
    const auto p8 = estimateSram({1024, 1, 8, 8, 4});
    EXPECT_GT(p8.readNj, p1.readNj);
    EXPECT_GT(p8.leakageW, p1.leakageW);
}

TEST(CactiLite, SmallerFeatureSizeCheaper)
{
    const auto n90 = estimateSram(l1Geometry(), 90.0);
    const auto n45 = estimateSram(l1Geometry(), 45.0);
    EXPECT_LT(n45.readNj, n90.readNj);
}

TEST(CactiLite, VoltageSquaredScaling)
{
    const auto hi = estimateSram(l1Geometry(), 90.0, 1.4);
    const auto lo = estimateSram(l1Geometry(), 90.0, 0.7);
    EXPECT_NEAR(hi.readNj / lo.readNj, 4.0, 1e-9);
}

TEST(CactiLite, LeakageScalesWithBits)
{
    const auto small = estimateSram({64 * 1024, 4, 64, 1, 1});
    const auto big = estimateSram({256 * 1024, 4, 64, 1, 1});
    EXPECT_NEAR(big.leakageW / small.leakageW, 4.0, 0.01);
}

TEST(DeriveEnergyParams, NearHandTunedDefaults)
{
    // The hand-set defaults in EnergyParams were chosen to reproduce
    // the paper's power envelope; the first-order derivation must land
    // within a small factor of each of them.
    const auto derived = deriveEnergyParams(CoreConfig{});
    const EnergyParams def;
    auto within = [](double a, double b, double factor) {
        return a > b / factor && a < b * factor;
    };
    EXPECT_TRUE(within(derived.frontendNj, def.frontendNj, 2.5));
    EXPECT_TRUE(within(derived.windowNj, def.windowNj, 2.5));
    EXPECT_TRUE(within(derived.regfileNj, def.regfileNj, 3.0));
    EXPECT_TRUE(within(derived.lsqDcacheNj, def.lsqDcacheNj, 2.5));
    EXPECT_TRUE(within(derived.l2AccessNj, def.l2AccessNj, 2.5));
    EXPECT_TRUE(within(derived.leakageAtNominalW, def.leakageAtNominalW,
                       2.5));
}

TEST(DeriveEnergyParams, BiggerCachesRaiseDerivedEnergies)
{
    CoreConfig small;
    CoreConfig big;
    big.l1SizeKb = 4 * small.l1SizeKb;
    big.l2SizeKb = 4 * small.l2SizeKb;
    const auto es = deriveEnergyParams(small);
    const auto eb = deriveEnergyParams(big);
    EXPECT_GT(eb.lsqDcacheNj, es.lsqDcacheNj);
    EXPECT_GT(eb.l2AccessNj, es.l2AccessNj);
    EXPECT_GT(eb.leakageAtNominalW, es.leakageAtNominalW);
}

TEST(DeriveEnergyParams, WiderMachineCostsMore)
{
    CoreConfig narrow;
    narrow.fetchWidth = narrow.issueWidth = narrow.commitWidth = 2;
    CoreConfig wide;
    const auto en = deriveEnergyParams(narrow);
    const auto ew = deriveEnergyParams(wide);
    EXPECT_GT(ew.windowNj, en.windowNj);
    EXPECT_GT(ew.clockTreeNj, en.clockTreeNj);
    EXPECT_GT(ew.intAluNj, en.intAluNj);
}

TEST(DeriveEnergyParams, UsableByPowerModel)
{
    // A chip built with the derived parameters must produce power in
    // the same envelope as the default one.
    const auto derived = deriveEnergyParams(CoreConfig{});
    const PowerModel pm(derived);
    PhaseProfile phase;
    phase.activityScale = 3.0;
    const PerfModel perf{CoreConfig{}};
    const auto pe = perf.evaluate(phase, 2.5e9);
    const double w = pm.evaluate(phase, pe, 1.45, 2.5e9).totalW();
    EXPECT_GT(w, 5.0);
    EXPECT_LT(w, 50.0);
}

} // namespace
} // namespace solarcore::cpu
