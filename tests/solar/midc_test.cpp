/**
 * @file
 * Tests for the MIDC-format CSV ingestion.
 */

#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "core/simulation.hpp"
#include "solar/midc.hpp"

namespace solarcore::solar {
namespace {

const char *kSample =
    "DATE (MM/DD/YYYY),MST,Global Horizontal [W/m^2],"
    "Temperature [deg C]\n"
    "01/15/2009,07:30,15.2,2.1\n"
    "01/15/2009,07:31,17.9,2.2\n"
    "01/15/2009,07:32,20.5,2.2\n"
    "01/15/2009,07:33,23.3,2.3\n"
    "01/15/2009,07:34,26.0,2.4\n";

TEST(Midc, ParsesStandardLayout)
{
    std::istringstream is(kSample);
    const auto res = parseMidcCsv(is);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.rowsParsed, 5);
    EXPECT_EQ(res.rowsSkipped, 0);
    EXPECT_EQ(res.trace.size(), 5u);
    EXPECT_DOUBLE_EQ(res.trace.startMinute(), 450.0);
    EXPECT_NEAR(res.trace.point(0).irradiance, 15.2, 1e-12);
    EXPECT_NEAR(res.trace.point(0).ambientC, 2.1, 1e-12);
    EXPECT_EQ(res.irradianceColumn, "Global Horizontal [W/m^2]");
}

TEST(Midc, HandlesAlternateColumnNames)
{
    std::istringstream is("Station,LST,GHI,Air Temperature\n"
                          "PFCI,08:00,120.5,15.0\n"
                          "PFCI,08:01,121.0,15.1\n");
    const auto res = parseMidcCsv(is);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.rowsParsed, 2);
}

TEST(Midc, ClipsToEvaluationWindow)
{
    std::istringstream is("DATE,MST,Global Horizontal [W/m^2],Temp\n"
                          "x,05:00,0.0,1.0\n"  // before 7:30
                          "x,08:00,100.0,5.0\n"
                          "x,09:00,200.0,6.0\n"
                          "x,18:00,10.0,4.0\n"); // after 17:30
    const auto res = parseMidcCsv(is);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.rowsParsed, 2);
    EXPECT_EQ(res.rowsSkipped, 2);
}

TEST(Midc, NoClipKeepsAllRows)
{
    std::istringstream is("DATE,MST,GHI,Temp\n"
                          "x,05:00,0.0,1.0\n"
                          "x,08:00,100.0,5.0\n");
    const auto res = parseMidcCsv(is, /*clip_to_window=*/false);
    ASSERT_TRUE(res.ok);
    EXPECT_EQ(res.rowsParsed, 2);
}

TEST(Midc, SkipsMalformedRows)
{
    std::istringstream is("DATE,MST,GHI,Temp\n"
                          "x,08:00,100.0,5.0\n"
                          "x,borked,??,??\n"
                          "x,08:02,not_a_number,5.0\n"
                          "x,07:59,90.0,5.0\n"   // out of order
                          "x,08:03,120.0,5.2\n");
    const auto res = parseMidcCsv(is);
    ASSERT_TRUE(res.ok);
    EXPECT_EQ(res.rowsParsed, 2);
    EXPECT_EQ(res.rowsSkipped, 3);
}

TEST(Midc, ClampsNegativeNightOffsets)
{
    std::istringstream is("DATE,MST,GHI,Temp\n"
                          "x,08:00,-2.5,5.0\n"
                          "x,08:01,3.0,5.0\n");
    const auto res = parseMidcCsv(is);
    ASSERT_TRUE(res.ok);
    EXPECT_DOUBLE_EQ(res.trace.point(0).irradiance, 0.0);
}

TEST(Midc, ClampsImplausibleIrradianceSpikes)
{
    std::istringstream is("DATE,MST,GHI,Temp\n"
                          "x,08:00,5000.0,5.0\n"   // glitch spike
                          "x,08:01,800.0,5.0\n");
    const auto res = parseMidcCsv(is);
    ASSERT_TRUE(res.ok);
    EXPECT_DOUBLE_EQ(res.trace.point(0).irradiance,
                     kMaxPlausibleIrradiance);
    EXPECT_DOUBLE_EQ(res.trace.point(1).irradiance, 800.0);
}

TEST(Midc, ClampsImplausibleTemperatures)
{
    std::istringstream is("DATE,MST,GHI,Temp\n"
                          "x,08:00,100.0,999.0\n"
                          "x,08:01,100.0,-300.0\n"
                          "x,08:02,100.0,21.5\n");
    const auto res = parseMidcCsv(is);
    ASSERT_TRUE(res.ok);
    EXPECT_DOUBLE_EQ(res.trace.point(0).ambientC, kMaxPlausibleAmbientC);
    EXPECT_DOUBLE_EQ(res.trace.point(1).ambientC, kMinPlausibleAmbientC);
    EXPECT_DOUBLE_EQ(res.trace.point(2).ambientC, 21.5);
}

TEST(Midc, RejectsNonFiniteCells)
{
    // std::stod happily parses "nan"/"inf"; the row filter must not.
    std::istringstream is("DATE,MST,GHI,Temp\n"
                          "x,08:00,nan,5.0\n"
                          "x,08:01,inf,5.0\n"
                          "x,08:02,100.0,-inf\n"
                          "x,08:03,100.0,5.0\n"
                          "x,08:04,110.0,5.1\n");
    const auto res = parseMidcCsv(is);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.rowsParsed, 2);
    EXPECT_EQ(res.rowsSkipped, 3);
    for (std::size_t i = 0; i < res.trace.size(); ++i) {
        EXPECT_TRUE(std::isfinite(res.trace.point(i).irradiance));
        EXPECT_TRUE(std::isfinite(res.trace.point(i).ambientC));
    }
}

TEST(Midc, RejectsTrailingGarbageInNumericCells)
{
    std::istringstream is("DATE,MST,GHI,Temp\n"
                          "x,08:00,100.0abc,5.0\n" // stod would eat "100.0"
                          "x,08:01,100.0,5.0 \n"   // trailing space is fine
                          "x,08:02,110.0,5.1\n");
    const auto res = parseMidcCsv(is);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.rowsParsed, 2);
    EXPECT_EQ(res.rowsSkipped, 1);
}

TEST(Midc, MissingIrradianceColumnIsAnError)
{
    std::istringstream is("DATE,MST,Temperature [deg C]\n"
                          "x,08:00,5.0\n"
                          "x,08:01,5.1\n");
    const auto res = parseMidcCsv(is);
    EXPECT_FALSE(res.ok);
    EXPECT_FALSE(res.error.empty());
}

TEST(Midc, MissingTimeColumnIsAnError)
{
    std::istringstream is("DATE,GHI,Temp\n"
                          "x,100.0,5.0\n");
    EXPECT_FALSE(parseMidcCsv(is).ok);
}

TEST(Midc, MissingTemperatureColumnDefaultsDeterministically)
{
    std::istringstream is("DATE,MST,GHI\n"
                          "x,08:00,100.0\n"
                          "x,08:01,110.0\n");
    const auto res = parseMidcCsv(is);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_TRUE(res.temperatureColumn.empty());
    EXPECT_DOUBLE_EQ(res.trace.point(0).ambientC, 20.0);
    EXPECT_DOUBLE_EQ(res.trace.point(1).ambientC, 20.0);
}

TEST(Midc, SingleUsableRowIsAnError)
{
    std::istringstream is("DATE,MST,GHI,Temp\n"
                          "x,08:00,100.0,5.0\n"
                          "x,borked,100.0,5.0\n");
    const auto res = parseMidcCsv(is);
    EXPECT_FALSE(res.ok);
    EXPECT_EQ(res.rowsParsed, 1);
    EXPECT_FALSE(res.error.empty());
}

TEST(Midc, HeaderOnlyInputIsAnError)
{
    std::istringstream is("DATE,MST,GHI,Temp\n");
    const auto res = parseMidcCsv(is);
    EXPECT_FALSE(res.ok);
    EXPECT_EQ(res.rowsParsed, 0);
}

TEST(Midc, RejectsHeaderlessInput)
{
    std::istringstream empty("");
    EXPECT_FALSE(parseMidcCsv(empty).ok);

    std::istringstream junk("a,b,c\n1,2,3\n");
    const auto res = parseMidcCsv(junk);
    EXPECT_FALSE(res.ok);
    EXPECT_FALSE(res.error.empty());
}

TEST(Midc, ParsedTraceDrivesSimulation)
{
    // End-to-end: a parsed (synthetic-but-MIDC-formatted) day runs
    // through simulateDay like any generated trace.
    std::ostringstream day;
    day << "DATE,MST,Global Horizontal [W/m^2],Temperature [deg C]\n";
    for (int m = 450; m <= 1050; m += 5) {
        const double bell =
            600.0 * std::exp(-(m - 750.0) * (m - 750.0) / (2 * 150.0 * 150.0));
        day << "01/15/2009," << m / 60 << ':'
            << (m % 60 < 10 ? "0" : "") << m % 60 << ',' << bell
            << ",15.0\n";
    }
    std::istringstream is(day.str());
    const auto res = parseMidcCsv(is);
    ASSERT_TRUE(res.ok) << res.error;

    const auto module = pv::buildBp3180n();
    core::SimConfig cfg;
    cfg.dtSeconds = 60.0;
    const auto r = core::simulateDay(module, res.trace,
                                     workload::WorkloadId::M2, cfg);
    EXPECT_GT(r.solarEnergyWh, 0.0);
    EXPECT_GT(r.utilization, 0.5);
}

} // namespace
} // namespace solarcore::solar
