/**
 * @file
 * Tests for the weather model, site database and trace generation.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "solar/trace.hpp"
#include "solar/weather.hpp"
#include "util/stats.hpp"

namespace solarcore::solar {
namespace {

TEST(Sites, TableTwoOrdering)
{
    // Paper Table 2: resource potential AZ > CO > NC > TN.
    double prev = 1e9;
    for (auto site : allSites()) {
        const auto &info = siteInfo(site);
        EXPECT_LT(info.paperKwhPerM2Day, prev);
        prev = info.paperKwhPerM2Day;
    }
    EXPECT_EQ(siteInfo(SiteId::AZ).station, "PFCI");
    EXPECT_EQ(siteInfo(SiteId::CO).station, "BMS");
    EXPECT_EQ(siteInfo(SiteId::NC).station, "ECSU");
    EXPECT_EQ(siteInfo(SiteId::TN).station, "ORNL");
}

TEST(Sites, WeatherMixesSumToOne)
{
    for (auto [site, month] : allSiteMonths()) {
        const auto &wx = weatherParams(site, month);
        EXPECT_NEAR(wx.clearFrac + wx.partlyFrac + wx.overcastFrac, 1.0,
                    1e-9)
            << siteName(site) << "-" << monthName(month);
        EXPECT_GT(wx.tMaxC, wx.tMinC);
        EXPECT_GE(wx.gustiness, 0.0);
        EXPECT_LE(wx.gustiness, 1.0);
    }
}

TEST(Sites, SiteMonthEnumerationComplete)
{
    const auto pairs = allSiteMonths();
    EXPECT_EQ(pairs.size(), 16u);
    EXPECT_EQ(pairs.front().first, SiteId::AZ);
    EXPECT_EQ(pairs.back().first, SiteId::TN);
}

TEST(CloudModel, TransmittanceWithinBounds)
{
    CloudModel model(weatherParams(SiteId::NC, Month::Apr), Rng(5));
    for (int i = 0; i < 5000; ++i) {
        const double t = model.step(1.0);
        ASSERT_GT(t, 0.0);
        ASSERT_LE(t, 1.0);
    }
}

TEST(CloudModel, ClearSiteBrighterThanCloudySite)
{
    CloudModel az(weatherParams(SiteId::AZ, Month::Jan), Rng(7));
    CloudModel tn(weatherParams(SiteId::TN, Month::Jan), Rng(7));
    RunningStats s_az;
    RunningStats s_tn;
    for (int i = 0; i < 20000; ++i) {
        s_az.add(az.step(1.0));
        s_tn.add(tn.step(1.0));
    }
    EXPECT_GT(s_az.mean(), s_tn.mean() + 0.1);
}

TEST(CloudModel, GustyMonthMoreVolatile)
{
    // NC April (gustiness 0.95) must fluctuate more than NC July (0.25).
    CloudModel apr(weatherParams(SiteId::NC, Month::Apr), Rng(11));
    CloudModel jul(weatherParams(SiteId::NC, Month::Jul), Rng(11));
    RunningStats d_apr;
    RunningStats d_jul;
    double prev_a = apr.step(1.0);
    double prev_j = jul.step(1.0);
    for (int i = 0; i < 20000; ++i) {
        const double a = apr.step(1.0);
        const double j = jul.step(1.0);
        d_apr.add(std::abs(a - prev_a));
        d_jul.add(std::abs(j - prev_j));
        prev_a = a;
        prev_j = j;
    }
    EXPECT_GT(d_apr.mean(), 1.5 * d_jul.mean());
}

TEST(Trace, WindowAndShape)
{
    const auto trace = generateDayTrace(SiteId::AZ, Month::Jan, 1);
    EXPECT_DOUBLE_EQ(trace.startMinute(), kDayStartMinute);
    EXPECT_DOUBLE_EQ(trace.endMinute(), kDayEndMinute);
    EXPECT_EQ(trace.size(), 601u);
    for (const auto &p : trace.points()) {
        ASSERT_GE(p.irradiance, 0.0);
        ASSERT_LT(p.irradiance, 1250.0);
        ASSERT_GT(p.ambientC, -30.0);
        ASSERT_LT(p.ambientC, 55.0);
    }
}

TEST(Trace, Deterministic)
{
    const auto a = generateDayTrace(SiteId::CO, Month::Apr, 99);
    const auto b = generateDayTrace(SiteId::CO, Month::Apr, 99);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_DOUBLE_EQ(a.point(i).irradiance, b.point(i).irradiance);
        ASSERT_DOUBLE_EQ(a.point(i).ambientC, b.point(i).ambientC);
    }
}

TEST(Trace, SeedChangesWeather)
{
    const auto a = generateDayTrace(SiteId::CO, Month::Apr, 1);
    const auto b = generateDayTrace(SiteId::CO, Month::Apr, 2);
    int diff = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        diff += a.point(i).irradiance != b.point(i).irradiance;
    EXPECT_GT(diff, 100);
}

TEST(Trace, InsolationOrderingAcrossSites)
{
    // Averaged over the four evaluation months and several weather
    // seeds, the daytime insolation must follow Table 2's ordering.
    double avg[kNumSites] = {};
    for (auto site : allSites()) {
        RunningStats st;
        for (auto month : allMonths())
            for (std::uint64_t seed = 1; seed <= 5; ++seed)
                st.add(generateDayTrace(site, month, seed)
                           .insolationKwhPerM2());
        avg[static_cast<int>(site)] = st.mean();
    }
    EXPECT_GT(avg[0], avg[1]); // AZ > CO
    EXPECT_GT(avg[1], avg[2]); // CO > NC
    EXPECT_GT(avg[2], avg[3]); // NC > TN
}

TEST(Trace, SummerBeatsWinter)
{
    RunningStats jul;
    RunningStats jan;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        jul.add(generateDayTrace(SiteId::CO, Month::Jul, seed)
                    .insolationKwhPerM2());
        jan.add(generateDayTrace(SiteId::CO, Month::Jan, seed)
                    .insolationKwhPerM2());
    }
    EXPECT_GT(jul.mean(), jan.mean());
}

TEST(Trace, InterpolationBetweenSamples)
{
    std::vector<TracePoint> pts = {
        {450.0, 100.0, 10.0},
        {451.0, 200.0, 12.0},
    };
    SolarTrace trace(std::move(pts), 1.0);
    EXPECT_DOUBLE_EQ(trace.irradianceAt(450.5), 150.0);
    EXPECT_DOUBLE_EQ(trace.ambientAt(450.5), 11.0);
    // Clamped outside the record.
    EXPECT_DOUBLE_EQ(trace.irradianceAt(0.0), 100.0);
    EXPECT_DOUBLE_EQ(trace.irradianceAt(9999.0), 200.0);
}

TEST(Trace, InsolationOfConstantTrace)
{
    // 600 minutes at 600 W/m^2 = 6 kWh/m^2.
    std::vector<TracePoint> pts;
    for (int i = 0; i <= 600; ++i)
        pts.push_back({450.0 + i, 600.0, 20.0});
    SolarTrace trace(std::move(pts), 1.0);
    EXPECT_NEAR(trace.insolationKwhPerM2(), 6.0, 1e-9);
}

TEST(Trace, CsvRoundTrip)
{
    const auto trace = generateDayTrace(SiteId::NC, Month::Oct, 3);
    std::stringstream ss;
    trace.saveCsv(ss);
    const auto loaded = SolarTrace::loadCsv(ss);
    ASSERT_EQ(loaded.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); i += 37) {
        EXPECT_NEAR(loaded.point(i).irradiance, trace.point(i).irradiance,
                    1e-6);
    }
}

TEST(Trace, PeakIrradianceMatchesMax)
{
    const auto trace = generateDayTrace(SiteId::AZ, Month::Jul, 4);
    double max_seen = 0.0;
    for (const auto &p : trace.points())
        max_seen = std::max(max_seen, p.irradiance);
    EXPECT_DOUBLE_EQ(trace.peakIrradiance(), max_seen);
    EXPECT_GT(max_seen, 400.0);
}

TEST(Trace, JanuaryAzRegularJulyAzIrregular)
{
    // Paper Figures 13/14: Jan@AZ is the regular pattern, Jul@AZ the
    // irregular (monsoon) one. Count disturbed minutes (>10% relative
    // irradiance change minute to minute) around midday, across seeds.
    int jan_disturbed = 0;
    int jul_disturbed = 0;
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        for (auto [month, counter] :
             {std::pair{Month::Jan, &jan_disturbed},
              std::pair{Month::Jul, &jul_disturbed}}) {
            const auto tr = generateDayTrace(SiteId::AZ, month, seed);
            for (double m = 600.0; m < 900.0; m += 1.0) {
                const double a = tr.irradianceAt(m);
                const double b = tr.irradianceAt(m + 1.0);
                if (a > 50.0 && std::abs(b - a) / a > 0.10)
                    ++*counter;
            }
        }
    }
    EXPECT_GT(jul_disturbed, 2 * jan_disturbed);
}

using TraceDeathTest = ::testing::Test;

TEST(TraceDeathTest, RejectsBadDt)
{
    EXPECT_DEATH(generateDayTrace(SiteId::AZ, Month::Jan, 1, 0.0),
                 "dt out of range");
    EXPECT_DEATH(generateDayTrace(SiteId::AZ, Month::Jan, 1, 60.0),
                 "dt out of range");
}

TEST(TraceDeathTest, RejectsNonAscendingSamples)
{
    std::vector<TracePoint> pts = {{451.0, 1.0, 1.0}, {450.0, 1.0, 1.0}};
    EXPECT_DEATH(SolarTrace(std::move(pts), 1.0), "ascending");
}

TEST(CustomTrace, MatchesWindowAndDeterminism)
{
    solar::WeatherParams wx;
    wx.clearFrac = 0.7;
    wx.partlyFrac = 0.2;
    wx.overcastFrac = 0.1;
    wx.gustiness = 0.4;
    wx.tMinC = 5.0;
    wx.tMaxC = 18.0;
    const auto a = generateCustomTrace(48.1, 100, wx, 0.95, 7);
    const auto b = generateCustomTrace(48.1, 100, wx, 0.95, 7);
    EXPECT_EQ(a.size(), 601u);
    EXPECT_DOUBLE_EQ(a.point(300).irradiance, b.point(300).irradiance);
}

TEST(CustomTrace, LatitudeChangesInsolation)
{
    solar::WeatherParams wx; // all defaults, calm sky
    wx.gustiness = 0.1;
    const auto equatorial = generateCustomTrace(10.0, 15, wx, 1.0, 3);
    const auto northern = generateCustomTrace(60.0, 15, wx, 1.0, 3);
    // Mid-January: the high-latitude site must collect far less.
    EXPECT_GT(equatorial.insolationKwhPerM2(),
              2.0 * northern.insolationKwhPerM2());
}

TEST(CustomTrace, OvercastSkyDimsEverything)
{
    solar::WeatherParams clear;
    clear.clearFrac = 1.0;
    clear.partlyFrac = 0.0;
    clear.overcastFrac = 0.0;
    clear.gustiness = 0.0;
    solar::WeatherParams murk;
    murk.clearFrac = 0.0;
    murk.partlyFrac = 0.0;
    murk.overcastFrac = 1.0;
    murk.gustiness = 0.0;
    const auto sunny = generateCustomTrace(35.0, 196, clear, 1.0, 5);
    const auto gloomy = generateCustomTrace(35.0, 196, murk, 1.0, 5);
    EXPECT_LT(gloomy.insolationKwhPerM2(),
              0.4 * sunny.insolationKwhPerM2());
}

/** Parameterized determinism sweep across all site-months. */
class TraceSiteMonthSweep
    : public ::testing::TestWithParam<std::tuple<SiteId, Month>>
{
};

TEST_P(TraceSiteMonthSweep, PlausibleDailyEnergy)
{
    const auto [site, month] = GetParam();
    RunningStats st;
    for (std::uint64_t seed = 1; seed <= 3; ++seed)
        st.add(generateDayTrace(site, month, seed).insolationKwhPerM2());
    // Daytime-window insolation for the continental US falls between
    // roughly 1 and 9 kWh/m^2 for any month.
    EXPECT_GT(st.mean(), 0.8) << siteName(site) << monthName(month);
    EXPECT_LT(st.mean(), 9.5) << siteName(site) << monthName(month);
}

INSTANTIATE_TEST_SUITE_P(
    AllSiteMonths, TraceSiteMonthSweep,
    ::testing::Combine(::testing::Values(SiteId::AZ, SiteId::CO, SiteId::NC,
                                         SiteId::TN),
                       ::testing::Values(Month::Jan, Month::Apr, Month::Jul,
                                         Month::Oct)));

} // namespace
} // namespace solarcore::solar
