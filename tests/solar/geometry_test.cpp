/**
 * @file
 * Tests for solar position geometry and the clear-sky model.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "solar/clearsky.hpp"
#include "solar/geometry.hpp"

namespace solarcore::solar {
namespace {

TEST(Geometry, DayOfYearAnchors)
{
    EXPECT_EQ(dayOfYear(1, 1), 1);
    EXPECT_EQ(dayOfYear(1, 15), 15);
    EXPECT_EQ(dayOfYear(4, 15), 105);
    EXPECT_EQ(dayOfYear(7, 15), 196);
    EXPECT_EQ(dayOfYear(10, 15), 288);
    EXPECT_EQ(dayOfYear(12, 31), 365);
}

TEST(Geometry, DeclinationExtremes)
{
    // Summer solstice (~Jun 21, N=172): +23.45 deg.
    EXPECT_NEAR(degrees(declination(172)), 23.45, 0.1);
    // Winter solstice (~Dec 21, N=355): -23.45 deg.
    EXPECT_NEAR(degrees(declination(355)), -23.45, 0.1);
    // Equinoxes: near zero.
    EXPECT_NEAR(degrees(declination(81)), 0.0, 1.0);
    EXPECT_NEAR(degrees(declination(265)), 0.0, 1.0);
}

TEST(Geometry, HourAngleZeroAtNoon)
{
    EXPECT_DOUBLE_EQ(hourAngle(12.0), 0.0);
    EXPECT_NEAR(degrees(hourAngle(13.0)), 15.0, 1e-9);
    EXPECT_NEAR(degrees(hourAngle(6.0)), -90.0, 1e-9);
}

TEST(Geometry, ElevationPeaksAtNoon)
{
    const double lat = 35.0;
    const int doy = 172;
    const double e9 = sinElevation(lat, doy, 9.0);
    const double e12 = sinElevation(lat, doy, 12.0);
    const double e15 = sinElevation(lat, doy, 15.0);
    EXPECT_GT(e12, e9);
    EXPECT_GT(e12, e15);
}

TEST(Geometry, NoonElevationMatchesAnalytic)
{
    // At solar noon, elevation = 90 - |lat - decl|.
    const double lat = 33.45;
    const int doy = 196;
    const double expected =
        std::sin(radians(90.0 - std::abs(lat - degrees(declination(doy)))));
    EXPECT_NEAR(sinElevation(lat, doy, 12.0), expected, 1e-9);
}

TEST(Geometry, SunBelowHorizonAtMidnight)
{
    EXPECT_LT(sinElevation(35.0, 172, 0.0), 0.0);
}

TEST(Geometry, SummerDaysLongerThanWinter)
{
    const double lat = 39.74;
    EXPECT_GT(daylightHours(lat, 172), 14.0);
    EXPECT_LT(daylightHours(lat, 355), 10.0);
    // Equinox day is ~12 h everywhere.
    EXPECT_NEAR(daylightHours(lat, 81), 12.0, 0.3);
}

TEST(Geometry, SunriseSunsetSymmetricAroundNoon)
{
    const double lat = 33.45;
    const int doy = dayOfYear(7, 15);
    const double rise = sunriseHour(lat, doy);
    const double set = sunsetHour(lat, doy);
    EXPECT_NEAR(rise + set, 24.0, 1e-9);
    EXPECT_LT(rise, 6.0);  // summer sunrise before 6 solar time
    EXPECT_GT(set, 18.0);
    EXPECT_NEAR(set - rise, daylightHours(lat, doy), 1e-9);
}

TEST(Geometry, WinterSunriseAfterSevenThirtyAtHighLatitude)
{
    // The CO station's January days start after the paper's 7:30
    // window opens, which is why those mornings run on the grid.
    const double rise = sunriseHour(39.74, dayOfYear(1, 15));
    EXPECT_GT(rise, 7.0);
}

TEST(Geometry, PolarCases)
{
    // North pole in winter: no daylight. In summer: 24 h.
    EXPECT_DOUBLE_EQ(daylightHours(89.9, 355), 0.0);
    EXPECT_DOUBLE_EQ(daylightHours(89.9, 172), 24.0);
}

TEST(ClearSky, ZeroBelowHorizon)
{
    EXPECT_DOUBLE_EQ(clearSkyGhi(-0.1), 0.0);
    EXPECT_DOUBLE_EQ(clearSkyGhi(0.0), 0.0);
}

TEST(ClearSky, OverheadSunNearSolarConstantFraction)
{
    // Haurwitz at cos(Z)=1: 1098 * exp(-0.057) ~ 1037 W/m^2.
    EXPECT_NEAR(clearSkyGhi(1.0), 1037.0, 2.0);
}

TEST(ClearSky, MonotoneInElevation)
{
    double prev = 0.0;
    for (double s = 0.05; s <= 1.0; s += 0.05) {
        const double g = clearSkyGhi(s);
        ASSERT_GT(g, prev);
        prev = g;
    }
}

TEST(ClearSky, SiteFactorScalesLinearly)
{
    const double g1 = clearSkyGhi(0.8, 1.0);
    const double g2 = clearSkyGhi(0.8, 0.9);
    EXPECT_NEAR(g2, 0.9 * g1, 1e-9);
}

TEST(ClearSky, PhoenixSummerNoonPlausible)
{
    // Phoenix mid-July noon clear-sky GHI is ~1000 W/m^2.
    const double g = clearSkyGhiAt(33.45, dayOfYear(7, 15), 12.0);
    EXPECT_GT(g, 950.0);
    EXPECT_LT(g, 1100.0);
}

} // namespace
} // namespace solarcore::solar
