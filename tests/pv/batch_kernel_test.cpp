/**
 * @file
 * Parity, determinism and routing tests for the batched SoA PV kernels
 * (pv/pv_kernel.hpp) against the per-call scalar path, which this PR
 * keeps untouched as the always-built parity oracle.
 *
 * The numeric contract: the batch kernels agree with the scalar
 * Lambert-W path to ~1e-12 relative (far inside the golden-baseline
 * tolerances), dark lanes and Rs = 0 cells route through the *exact*
 * scalar formulas (bitwise), and lane math is elementwise with fixed
 * iteration counts, so results are bitwise independent of batch size,
 * lane position and tail padding.
 */

#include <algorithm>
#include <cmath>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/controller.hpp"
#include "pv/cell.hpp"
#include "power/operating_point.hpp"
#include "pv/bp3180n.hpp"
#include "pv/mpp.hpp"
#include "pv/mpp_cache.hpp"
#include "pv/pv_kernel.hpp"
#include "pv/shading.hpp"
#include "workload/multiprogram.hpp"

namespace solarcore::pv {
namespace {

/** Restore the process-wide kernel selection on scope exit. */
struct KernelGuard
{
    PvKernel saved = selectedPvKernel();
    ~KernelGuard() { setPvKernel(saved); }
};

/** Every kernel the running machine can execute. */
std::vector<PvKernel>
availableKernels()
{
    std::vector<PvKernel> kernels = {PvKernel::Scalar, PvKernel::Portable};
    if (pvKernelSupported(PvKernel::Avx2))
        kernels.push_back(PvKernel::Avx2);
    return kernels;
}

/** Batch (not Scalar) kernels available on the running machine. */
std::vector<PvKernel>
batchKernels()
{
    std::vector<PvKernel> kernels = {PvKernel::Portable};
    if (pvKernelSupported(PvKernel::Avx2))
        kernels.push_back(PvKernel::Avx2);
    return kernels;
}

const PvModule &
testModule()
{
    static const PvModule m = buildBp3180n();
    return m;
}

/** The full (G, T) test grid, dark lanes included. */
std::vector<Environment>
envGrid()
{
    std::vector<Environment> envs;
    for (double g : {-10.0, 0.0, 1.0, 25.0, 150.0, 480.0, 725.0, 1000.0,
                     1100.0})
        for (double t : {-10.0, 0.0, 25.0, 45.0, 70.0})
            envs.push_back({g, t});
    return envs;
}

double
relDiff(double a, double b)
{
    const double scale = std::max({std::abs(a), std::abs(b), 1e-12});
    return std::abs(a - b) / scale;
}

/** |a - b| <= rtol * max(|a|, |b|) + atol, with a useful message. */
::testing::AssertionResult
near(double a, double b, double rtol, double atol)
{
    const double bound =
        rtol * std::max(std::abs(a), std::abs(b)) + atol;
    if (std::abs(a - b) <= bound)
        return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
        << a << " vs " << b << " (|diff| " << std::abs(a - b)
        << " > bound " << bound << ")";
}

TEST(PvKernel, TokensRoundTripAndDetectIsSupported)
{
    for (PvKernel k :
         {PvKernel::Scalar, PvKernel::Portable, PvKernel::Avx2}) {
        PvKernel parsed;
        ASSERT_TRUE(pvKernelFromToken(pvKernelName(k), parsed));
        EXPECT_EQ(parsed, k);
    }
    PvKernel parsed;
    EXPECT_FALSE(pvKernelFromToken("auto", parsed));
    EXPECT_FALSE(pvKernelFromToken("sse9", parsed));
    EXPECT_TRUE(pvKernelSupported(detectPvKernel()));
}

TEST(PvKernel, EvalIvScalarKernelIsBitIdenticalToCellCalls)
{
    KernelGuard guard;
    setPvKernel(PvKernel::Scalar);
    const SolarCell &cell = testModule().cell();

    const auto envs = envGrid();
    std::vector<double> volts;
    for (std::size_t k = 0; k < envs.size(); ++k)
        volts.push_back(0.1 * static_cast<double>(k % 7));
    std::vector<IvOut> out(envs.size());
    evalIv(cell, envs, volts, out);
    for (std::size_t k = 0; k < envs.size(); ++k) {
        EXPECT_EQ(out[k].current, cell.currentAt(volts[k], envs[k]));
        EXPECT_EQ(out[k].slope, cell.currentSlopeAt(volts[k], envs[k]));
    }
}

TEST(PvKernel, EvalIvMatchesScalarAcrossGrid)
{
    KernelGuard guard;
    const SolarCell &cell = testModule().cell();
    const auto envs = envGrid();

    for (PvKernel kernel : batchKernels()) {
        setPvKernel(kernel);
        for (const auto &env : envs) {
            const double voc = cell.openCircuitVoltage(env);
            for (double frac : {0.0, 0.3, 0.6, 0.85, 0.95, 1.0}) {
                const double v = frac * std::max(voc, 0.4);
                const Environment es[1] = {env};
                const double vs[1] = {v};
                IvOut out[1];
                evalIv(cell, es, vs, out);
                const double i_ref = cell.currentAt(v, env);
                const double di_ref = cell.currentSlopeAt(v, env);
                if (env.irradiance <= 0.0) {
                    // Dark lanes take the exact scalar formula.
                    EXPECT_EQ(out[0].current, i_ref);
                    EXPECT_EQ(out[0].slope, di_ref);
                } else {
                    EXPECT_TRUE(near(out[0].current, i_ref, 1e-9, 1e-12))
                        << pvKernelName(kernel) << " G=" << env.irradiance
                        << " T=" << env.cellTempC << " v=" << v;
                    EXPECT_TRUE(near(out[0].slope, di_ref, 1e-9, 1e-12))
                        << pvKernelName(kernel) << " G=" << env.irradiance
                        << " T=" << env.cellTempC << " v=" << v;
                }
            }
        }
    }
}

TEST(PvKernel, EvalIvRsZeroRoutesToExactScalarFormula)
{
    KernelGuard guard;
    CellParams p;
    p.seriesRes = 0.0;
    const SolarCell cell(p);
    const Environment env{850.0, 40.0};
    const double v = 0.4;

    for (PvKernel kernel : batchKernels()) {
        setPvKernel(kernel);
        const Environment es[1] = {env};
        const double vs[1] = {v};
        IvOut out[1];
        evalIv(cell, es, vs, out);
        EXPECT_EQ(out[0].current, cell.currentAt(v, env));
        EXPECT_EQ(out[0].slope, cell.currentSlopeAt(v, env));
    }
}

TEST(PvKernel, FindMppBatchMatchesScalarOracleAcrossGrid)
{
    KernelGuard guard;
    const auto envs = envGrid();

    PvArray array(testModule(), 2, 3, kStc);
    std::vector<MppResult> oracle;
    for (const auto &env : envs) {
        array.setEnvironment(env);
        oracle.push_back(findMpp(array));
    }

    for (PvKernel kernel : batchKernels()) {
        setPvKernel(kernel);
        std::vector<MppResult> got(envs.size());
        findMppBatch(testModule(), 2, 3, envs, got);
        for (std::size_t k = 0; k < envs.size(); ++k) {
            if (envs[k].irradiance <= 0.0) {
                EXPECT_EQ(got[k].power, 0.0);
                EXPECT_EQ(got[k].current, 0.0);
                continue;
            }
            EXPECT_TRUE(near(got[k].voltage, oracle[k].voltage, 1e-9,
                             1e-12))
                << pvKernelName(kernel) << " G=" << envs[k].irradiance
                << " T=" << envs[k].cellTempC;
            EXPECT_TRUE(
                near(got[k].current, oracle[k].current, 1e-9, 1e-12));
            EXPECT_TRUE(near(got[k].power, oracle[k].power, 1e-9, 1e-12));
        }
    }
}

TEST(PvKernel, BatchResultsIndependentOfBatchSize)
{
    KernelGuard guard;
    // 17 lanes: exercises every remainder class of the 4-wide AVX2
    // groups and the 128-lane chunking is untouched.
    std::vector<Environment> envs;
    for (int k = 0; k < 17; ++k)
        envs.push_back({40.0 + 60.0 * k, -5.0 + 4.5 * k});

    for (PvKernel kernel : batchKernels()) {
        setPvKernel(kernel);
        std::vector<MppResult> whole(envs.size());
        findMppBatch(testModule(), 1, 1, envs, whole);

        for (std::size_t chunk : {std::size_t{1}, std::size_t{2},
                                  std::size_t{3}, std::size_t{5},
                                  std::size_t{8}, std::size_t{16}}) {
            std::vector<MppResult> pieces(envs.size());
            for (std::size_t base = 0; base < envs.size(); base += chunk) {
                const std::size_t m =
                    std::min(chunk, envs.size() - base);
                findMppBatch(testModule(), 1, 1,
                             std::span(envs).subspan(base, m),
                             std::span(pieces).subspan(base, m));
            }
            for (std::size_t k = 0; k < envs.size(); ++k) {
                EXPECT_EQ(pieces[k].voltage, whole[k].voltage)
                    << pvKernelName(kernel) << " chunk=" << chunk
                    << " lane=" << k;
                EXPECT_EQ(pieces[k].current, whole[k].current);
            }
        }

        // The same property for the I-V evaluation, odd tail included.
        std::vector<double> volts(envs.size(), 0.45);
        std::vector<IvOut> whole_iv(envs.size());
        evalIv(testModule().cell(), envs, volts, whole_iv);
        std::vector<IvOut> one(1);
        for (std::size_t k = 0; k < envs.size(); ++k) {
            evalIv(testModule().cell(),
                   std::span(envs).subspan(k, 1),
                   std::span(volts).subspan(k, 1), one);
            EXPECT_EQ(one[0].current, whole_iv[k].current)
                << pvKernelName(kernel) << " lane=" << k << " "
                << std::hexfloat << one[0].current << " vs "
                << whole_iv[k].current << std::defaultfloat;
            EXPECT_EQ(one[0].slope, whole_iv[k].slope)
                << pvKernelName(kernel) << " lane=" << k;
        }
    }
}

TEST(PvKernel, LookupBatchIsSequentialEquivalent)
{
    KernelGuard guard;
    // Repeats, a dark lane and an odd length, quantized and exact keys.
    std::vector<Environment> envs = {
        {800.0, 40.0}, {600.0, 30.0}, {800.0, 40.0}, {0.0, 20.0},
        {600.0, 30.0}, {801.0, 40.0}, {800.0, 40.0},
    };

    for (PvKernel kernel : availableKernels()) {
        setPvKernel(kernel);
        for (double quantum : {0.0, 5.0}) {
            MppCache seq(testModule(), 1, 1, quantum);
            MppCache bat(testModule(), 1, 1, quantum);

            std::vector<MppResult> want;
            for (const auto &env : envs)
                want.push_back(seq.mpp(env));
            std::vector<MppResult> got(envs.size());
            bat.lookupBatch(envs, got);

            EXPECT_EQ(bat.stats().hits, seq.stats().hits)
                << pvKernelName(kernel) << " q=" << quantum;
            EXPECT_EQ(bat.stats().misses, seq.stats().misses);
            EXPECT_EQ(bat.size(), seq.size());
            for (std::size_t k = 0; k < envs.size(); ++k) {
                if (kernel == PvKernel::Scalar) {
                    // The Scalar route is literally the per-element loop.
                    EXPECT_EQ(got[k].power, want[k].power) << k;
                } else {
                    EXPECT_TRUE(
                        near(got[k].power, want[k].power, 1e-9, 1e-12))
                        << pvKernelName(kernel) << " lane " << k;
                }
            }

            // A second pass over the same batch must be pure hits.
            const auto misses_before = bat.stats().misses;
            bat.lookupBatch(envs, got);
            EXPECT_EQ(bat.stats().misses, misses_before);
        }
    }
}

TEST(PvKernel, LookupBatchUnderNewtonOracleUsesLegacyLoop)
{
    KernelGuard guard;
    setPvKernel(PvKernel::Portable);
    setNewtonIvSolve(true);
    std::vector<Environment> envs = {{700.0, 35.0}, {700.0, 35.0}};
    MppCache cache(testModule(), 1, 1);
    std::vector<MppResult> got(envs.size());
    cache.lookupBatch(envs, got);
    setNewtonIvSolve(false);

    // Oracle mode re-solves every lookup: no memoization happened.
    EXPECT_EQ(cache.stats().hits, 0u);
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(got[0].power, got[1].power);
    EXPECT_GT(got[0].power, 0.0);
}

TEST(PvKernel, PreparedArrayMatchesPvArray)
{
    KernelGuard guard;
    setPvKernel(PvKernel::Portable);
    PvArray array(testModule(), 2, 2, kStc);
    PreparedArray prepared(testModule(), 2, 2);

    for (const auto &env : envGrid()) {
        array.setEnvironment(env);
        prepared.setEnvironment(env);

        // The MPP and feasibility threshold are bitwise legacy.
        const MppResult want = findMpp(array);
        EXPECT_EQ(prepared.mpp().voltage, want.voltage);
        EXPECT_EQ(prepared.mpp().current, want.current);
        EXPECT_EQ(prepared.mpp().power, want.power);
        EXPECT_EQ(prepared.dark(), env.irradiance <= 0.0);

        const double voc = array.openCircuitVoltage();
        for (double frac : {0.0, 0.4, 0.8, 0.97}) {
            const double v = frac * std::max(voc, 1.0);
            EXPECT_TRUE(near(prepared.currentAt(v), array.currentAt(v),
                             1e-12, 1e-12))
                << "G=" << env.irradiance << " T=" << env.cellTempC
                << " v=" << v;
        }
    }
}

TEST(PvKernel, PinRailPreparedMatchesLegacyPin)
{
    KernelGuard guard;
    setPvKernel(PvKernel::Portable);
    PvArray array(testModule(), 1, 1, kStc);
    PreparedArray prepared(testModule(), 1, 1);

    for (const auto &env : envGrid()) {
        array.setEnvironment(env);
        prepared.setEnvironment(env);
        const double pmpp = findMpp(array).power;
        for (double frac : {0.15, 0.5, 0.9, 0.99, 1.01, 2.0}) {
            const double demand = frac * std::max(pmpp, 1.0);
            power::DcDcConverter conv_a(0.5, 8.0, 0.95);
            power::DcDcConverter conv_b(0.5, 8.0, 0.95);
            const auto legacy =
                power::pinRailVoltage(array, conv_a, 12.0, demand);
            const auto fast =
                power::pinRailVoltage(prepared, conv_b, 12.0, demand);

            ASSERT_EQ(fast.valid, legacy.valid)
                << "G=" << env.irradiance << " T=" << env.cellTempC
                << " demand=" << demand;
            if (!legacy.valid)
                continue;
            EXPECT_LT(relDiff(fast.panel.voltage, legacy.panel.voltage),
                      1e-6);
            EXPECT_LT(relDiff(fast.panel.current, legacy.panel.current),
                      1e-6);
            EXPECT_LT(relDiff(conv_b.ratio(), conv_a.ratio()), 1e-6);
            EXPECT_EQ(fast.load.voltage, legacy.load.voltage);
            EXPECT_EQ(fast.load.current, legacy.load.current);
        }
    }
}

TEST(PvKernel, ShadedStringKeepsTheLegacyControllerPath)
{
    // A non-uniform source can never take the PreparedArray fast path
    // (partial shading breaks the single-diode closed form), so a
    // controller driving a ShadedString must behave bitwise the same
    // under every kernel selection.
    KernelGuard guard;
    const std::vector<Environment> conditions = {{900.0, 45.0},
                                                 {250.0, 38.0}};
    auto run = [&](PvKernel kernel) {
        setPvKernel(kernel);
        ShadedString panel(testModule(), conditions);
        cpu::MultiCoreChip chip{
            cpu::defaultChipConfig(), cpu::DvfsTable::paperDefault(),
            cpu::EnergyParams{},
            workload::workloadSet(workload::WorkloadId::HM2), 42};
        core::TprOptAdapter adapter;
        core::SolarCoreController ctl(panel, chip, adapter);
        const auto res = ctl.track();
        return std::tuple(res.solarViable, res.net.panel.voltage,
                          res.net.panel.current, chip.totalPower());
    };

    const auto scalar = run(PvKernel::Scalar);
    for (PvKernel kernel : batchKernels())
        EXPECT_EQ(run(kernel), scalar) << pvKernelName(kernel);
}

} // namespace
} // namespace solarcore::pv
