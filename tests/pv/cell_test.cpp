/**
 * @file
 * Unit and property tests for the single-diode PV cell model,
 * covering the physics claims of paper Section 2.
 */

#include <gtest/gtest.h>

#include "pv/cell.hpp"

namespace solarcore::pv {
namespace {

CellParams
referenceCell()
{
    CellParams p;
    p.iscRef = 5.4;
    p.vocRef = 44.2 / 72.0;
    p.seriesRes = 0.005;
    return p;
}

TEST(SolarCell, CalibrationMatchesDatasheetAtStc)
{
    const SolarCell cell(referenceCell());
    // Isc at STC: Rs shifts it infinitesimally below iscRef.
    EXPECT_NEAR(cell.shortCircuitCurrent(kStc), 5.4, 0.01);
    // Voc at STC is matched exactly by construction.
    EXPECT_NEAR(cell.openCircuitVoltage(kStc), 44.2 / 72.0, 1e-9);
}

TEST(SolarCell, CurrentMonotoneDecreasingInVoltage)
{
    const SolarCell cell(referenceCell());
    double prev = cell.currentAt(0.0, kStc);
    for (double v = 0.02; v <= cell.openCircuitVoltage(kStc); v += 0.02) {
        const double i = cell.currentAt(v, kStc);
        ASSERT_LT(i, prev) << "at v=" << v;
        prev = i;
    }
}

TEST(SolarCell, PhotocurrentProportionalToIrradiance)
{
    const SolarCell cell(referenceCell());
    const double i1000 = cell.photoCurrent({1000.0, 25.0});
    const double i500 = cell.photoCurrent({500.0, 25.0});
    EXPECT_NEAR(i500, 0.5 * i1000, 1e-12);
}

TEST(SolarCell, HigherIrradianceRaisesVocLogarithmically)
{
    const SolarCell cell(referenceCell());
    const double voc_400 = cell.openCircuitVoltage({400.0, 25.0});
    const double voc_1000 = cell.openCircuitVoltage({1000.0, 25.0});
    EXPECT_GT(voc_1000, voc_400);
    // Logarithmic: the gain is small relative to the irradiance ratio.
    EXPECT_LT(voc_1000 / voc_400, 1.15);
}

TEST(SolarCell, HigherTemperatureLowersVocAndRaisesIsc)
{
    // Paper Section 3: "when the environment temperature rises, the open
    // circuit voltage is reduced and the short circuit current increases".
    const SolarCell cell(referenceCell());
    const double voc_cold = cell.openCircuitVoltage({1000.0, 0.0});
    const double voc_hot = cell.openCircuitVoltage({1000.0, 75.0});
    EXPECT_GT(voc_cold, voc_hot);

    const double isc_cold = cell.shortCircuitCurrent({1000.0, 0.0});
    const double isc_hot = cell.shortCircuitCurrent({1000.0, 75.0});
    EXPECT_LT(isc_cold, isc_hot);
}

TEST(SolarCell, DarkCellBehavesLikeDiode)
{
    const SolarCell cell(referenceCell());
    const Environment dark{0.0, 25.0};
    // Dark forward bias draws (negative) diode current.
    EXPECT_LT(cell.currentAt(0.5, dark), 0.0);
    // Dark at zero bias carries no current.
    EXPECT_NEAR(cell.currentAt(0.0, dark), 0.0, 1e-15);
    EXPECT_DOUBLE_EQ(cell.openCircuitVoltage(dark), 0.0);
}

TEST(SolarCell, ReverseOfVocGivesZeroCurrent)
{
    const SolarCell cell(referenceCell());
    const double voc = cell.openCircuitVoltage(kStc);
    EXPECT_NEAR(cell.currentAt(voc, kStc), 0.0, 1e-6);
}

TEST(SolarCell, SeriesResistanceReducesMidCurveCurrent)
{
    CellParams ideal = referenceCell();
    ideal.seriesRes = 0.0;
    CellParams lossy = referenceCell();
    lossy.seriesRes = 0.01;

    const SolarCell a(ideal);
    const SolarCell b(lossy);
    const double v = 0.5; // mid-curve, near the knee
    EXPECT_GT(a.currentAt(v, kStc), b.currentAt(v, kStc));
}

TEST(SolarCell, ThermalVoltageScalesWithTemperature)
{
    const SolarCell cell(referenceCell());
    const double vt25 = cell.thermalVoltage(25.0);
    const double vt75 = cell.thermalVoltage(75.0);
    EXPECT_NEAR(vt75 / vt25, kelvin(75.0) / kelvin(25.0), 1e-12);
}

/** Property sweep over a grid of conditions: physical sanity bounds. */
class CellConditionSweep
    : public ::testing::TestWithParam<std::tuple<double, double>>
{
};

TEST_P(CellConditionSweep, PhysicalBounds)
{
    const auto [g, t] = GetParam();
    const SolarCell cell(referenceCell());
    const Environment env{g, t};

    const double isc = cell.shortCircuitCurrent(env);
    const double voc = cell.openCircuitVoltage(env);
    EXPECT_GE(isc, 0.0);
    EXPECT_GE(voc, 0.0);
    EXPECT_LT(isc, 10.0);
    EXPECT_LT(voc, 1.0);

    // Current anywhere on [0, Voc] is within [0, Isc].
    for (double frac : {0.25, 0.5, 0.75}) {
        const double i = cell.currentAt(frac * voc, env);
        EXPECT_LE(i, isc + 1e-9);
        EXPECT_GE(i, -1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CellConditionSweep,
    ::testing::Combine(::testing::Values(100.0, 400.0, 700.0, 1000.0),
                       ::testing::Values(0.0, 25.0, 50.0, 75.0)));

} // namespace
} // namespace solarcore::pv
