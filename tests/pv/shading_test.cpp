/**
 * @file
 * Tests for the partial-shading extension: bypass-diode strings,
 * multi-peak P-V curves and the global MPP search.
 */

#include <gtest/gtest.h>

#include "pv/bp3180n.hpp"
#include "pv/shading.hpp"

namespace solarcore::pv {
namespace {

PvModule
mod()
{
    static const PvModule m = buildBp3180n();
    return m;
}

TEST(ShadedString, UniformStringMatchesSeriesArray)
{
    const Environment env{800.0, 30.0};
    ShadedString string(mod(), {env, env, env});
    const PvArray array(mod(), 3, 1, env);

    EXPECT_NEAR(string.openCircuitVoltage(), array.openCircuitVoltage(),
                0.05);
    const auto s_mpp = findGlobalMpp(string);
    const auto a_mpp = findMpp(array);
    EXPECT_NEAR(s_mpp.power, a_mpp.power, 0.5);
}

TEST(ShadedString, VoltageMonotoneInCurrent)
{
    ShadedString string(mod(), {{1000.0, 25.0}, {400.0, 25.0}});
    double prev = 1e9;
    for (double i = 0.0; i <= string.maxShortCircuitCurrent();
         i += 0.25) {
        const double v = string.voltageAt(i);
        ASSERT_LE(v, prev + 1e-9) << "i=" << i;
        prev = v;
    }
}

TEST(ShadedString, BypassDiodeCarriesExcessCurrent)
{
    // At a current above the shaded module's Isc, the shaded position
    // must contribute exactly minus the diode drop.
    ShadedString string(mod(), {{1000.0, 25.0}, {200.0, 25.0}}, 0.5);
    const double shaded_isc =
        mod().shortCircuitCurrent({200.0, 25.0});
    const double v = string.voltageAt(shaded_isc + 1.0);
    const Environment full{1000.0, 25.0};
    // Full module voltage at that current, minus one diode drop.
    PvArray single(mod(), 1, 1, full);
    // The full module carries the current at some positive voltage.
    EXPECT_LT(v, single.openCircuitVoltage());
    ShadedString full_only(mod(), {full});
    EXPECT_NEAR(v, full_only.voltageAt(shaded_isc + 1.0) - 0.5, 1e-6);
}

TEST(ShadedString, PartialShadeCreatesTwoMaxima)
{
    ShadedString string(mod(), {{1000.0, 25.0}, {1000.0, 25.0},
                                {300.0, 25.0}});
    const auto maxima = findLocalMaxima(string);
    EXPECT_GE(maxima.size(), 2u);
}

TEST(ShadedString, GlobalMppBeatsOrMatchesEveryLocalMax)
{
    ShadedString string(mod(), {{1000.0, 25.0}, {600.0, 25.0},
                                {250.0, 25.0}});
    const auto global = findGlobalMpp(string);
    for (const auto &m : findLocalMaxima(string))
        EXPECT_GE(global.power, m.power - 1e-6);
    EXPECT_GT(global.power, 0.0);
}

TEST(ShadedString, UnimodalGoldenSearchCanMissGlobalPeak)
{
    // The motivating failure: for a two-hill curve, plain golden
    // section (which assumes unimodality) may converge to the lower
    // hill; the global search must never be worse.
    ShadedString string(mod(), {{1000.0, 25.0}, {1000.0, 25.0},
                                {250.0, 25.0}});
    const auto unimodal = findMpp(string);
    const auto global = findGlobalMpp(string);
    EXPECT_GE(global.power, unimodal.power - 1e-6);
}

TEST(ShadedString, ShadeOneOfThreeLosesAboutOneThirdNotAll)
{
    // Bypass diodes confine the loss to roughly the shaded module.
    const Environment sun{1000.0, 25.0};
    ShadedString clear(mod(), {sun, sun, sun});
    ShadedString shaded(mod(), {sun, sun, {100.0, 25.0}});
    const double p_clear = findGlobalMpp(clear).power;
    const double p_shaded = findGlobalMpp(shaded).power;
    EXPECT_LT(p_shaded, p_clear);
    EXPECT_GT(p_shaded, 0.55 * p_clear); // far better than total loss
}

TEST(ShadedString, MovingShadowViaSetEnvironment)
{
    const Environment sun{1000.0, 25.0};
    ShadedString string(mod(), {sun, sun, sun});
    const double before = findGlobalMpp(string).power;
    string.setEnvironment(1, {300.0, 25.0});
    const double during = findGlobalMpp(string).power;
    string.setEnvironment(1, sun);
    const double after = findGlobalMpp(string).power;
    EXPECT_LT(during, before);
    EXPECT_NEAR(after, before, 1e-6);
}

TEST(GlobalMpp, AgreesWithFindMppOnUnimodalSource)
{
    PvArray array(mod(), 1, 1, {850.0, 40.0});
    const auto a = findMpp(array);
    const auto b = findGlobalMpp(array);
    EXPECT_NEAR(a.power, b.power, 0.05);
    EXPECT_NEAR(a.voltage, b.voltage, 0.3);
}

TEST(GlobalMpp, DarkStringYieldsZero)
{
    ShadedString string(mod(), {{0.0, 25.0}, {0.0, 25.0}});
    EXPECT_DOUBLE_EQ(findGlobalMpp(string).power, 0.0);
    EXPECT_TRUE(findLocalMaxima(string).empty());
}

} // namespace
} // namespace solarcore::pv
