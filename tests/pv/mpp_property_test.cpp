/**
 * @file
 * Property sweep of the MPP across the full environmental grid: the
 * physical regularities every (G, T) condition must satisfy.
 */

#include <gtest/gtest.h>

#include "power/operating_point.hpp"
#include "pv/bp3180n.hpp"
#include "pv/mpp.hpp"

namespace solarcore::pv {
namespace {

class MppGridSweep
    : public ::testing::TestWithParam<std::tuple<double, double>>
{
  protected:
    static const PvModule &
    module()
    {
        static const PvModule m = buildBp3180n();
        return m;
    }
};

TEST_P(MppGridSweep, MppLiesOnTheKnee)
{
    const auto [g, t] = GetParam();
    PvArray array(module(), 1, 1, {g, t});
    const auto mpp = findMpp(array);
    const double voc = array.openCircuitVoltage();
    const double isc = array.shortCircuitCurrent();

    // Silicon fill-factor regularities: Vmpp sits at 70..90% of Voc,
    // Impp at 85..99% of Isc, and the fill factor in 0.65..0.85.
    EXPECT_GT(mpp.voltage, 0.70 * voc);
    EXPECT_LT(mpp.voltage, 0.92 * voc);
    EXPECT_GT(mpp.current, 0.85 * isc);
    EXPECT_LE(mpp.current, isc + 1e-9);
    const double ff = mpp.power / (voc * isc);
    EXPECT_GT(ff, 0.65);
    EXPECT_LT(ff, 0.85);
}

TEST_P(MppGridSweep, MppIsAStationaryPoint)
{
    const auto [g, t] = GetParam();
    PvArray array(module(), 1, 1, {g, t});
    const auto mpp = findMpp(array);
    // Power at +-0.5% voltage offsets must not exceed the MPP.
    for (double eps : {-0.005, 0.005}) {
        const double v = mpp.voltage * (1.0 + eps);
        EXPECT_LE(v * array.currentAt(v), mpp.power + 1e-9)
            << "G=" << g << " T=" << t << " eps=" << eps;
    }
}

TEST_P(MppGridSweep, PinRailConsistentWithMpp)
{
    const auto [g, t] = GetParam();
    PvArray array(module(), 1, 1, {g, t});
    const auto mpp = findMpp(array);
    power::DcDcConverter conv;
    // Demand just under the MPP must be satisfiable, just over must
    // not.
    EXPECT_TRUE(
        power::pinRailVoltage(array, conv, 12.0, 0.98 * mpp.power).valid);
    EXPECT_FALSE(
        power::pinRailVoltage(array, conv, 12.0, 1.02 * mpp.power).valid);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MppGridSweep,
    ::testing::Combine(::testing::Values(200.0, 500.0, 800.0, 1100.0),
                       ::testing::Values(-5.0, 20.0, 45.0, 70.0)));

} // namespace
} // namespace solarcore::pv
