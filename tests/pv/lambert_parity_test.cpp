/**
 * @file
 * Parity of the closed-form Lambert-W I-V fast path against the
 * retained damped-Newton oracle, across the full environmental grid
 * the figure sweeps exercise: G in [0, 1000] W/m^2 (plus an
 * over-irradiance point), T in [-10, 75] C.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "pv/bp3180n.hpp"
#include "pv/mpp.hpp"

namespace solarcore::pv {
namespace {

double
relDiff(double a, double b)
{
    return std::abs(a - b) / std::max({1.0, std::abs(a), std::abs(b)});
}

const PvModule &
testModule()
{
    static const PvModule m = buildBp3180n();
    return m;
}

class LambertParityGrid
    : public ::testing::TestWithParam<std::tuple<double, double>>
{
  protected:
    static const PvModule &module() { return testModule(); }
};

TEST_P(LambertParityGrid, CurrentMatchesNewtonOracle)
{
    const auto [g, t] = GetParam();
    const Environment env{g, t};
    const SolarCell &cell = module().cell();
    const double voc = cell.openCircuitVoltage(env);

    // Sample the curve from short circuit past the knee to Voc.
    for (double frac : {0.0, 0.2, 0.5, 0.7, 0.85, 0.95, 1.0}) {
        const double v = voc > 0.0 ? frac * voc : frac * 0.1;
        const double fast = cell.currentAt(v, env);
        const double oracle = cell.currentAtNewton(v, env);
        EXPECT_LE(relDiff(fast, oracle), 1e-9)
            << "G=" << g << " T=" << t << " v=" << v << " fast=" << fast
            << " oracle=" << oracle;
    }

    // Past Voc the Newton oracle saturates at its bracket floor
    // (~-1 A) while the closed form follows the true diode current, so
    // only the ordering is comparable: both negative, the closed form
    // at least as negative as the clamped oracle.
    if (voc > 0.0) {
        const double v = 1.05 * voc;
        const double fast = cell.currentAt(v, env);
        const double oracle = cell.currentAtNewton(v, env);
        EXPECT_LT(fast, 0.0) << "G=" << g << " T=" << t;
        EXPECT_LE(fast, oracle + 1e-9) << "G=" << g << " T=" << t;
    }
}

TEST_P(LambertParityGrid, AnalyticMppMatchesGoldenNewtonOracle)
{
    const auto [g, t] = GetParam();
    PvArray array(module(), 1, 1, {g, t});
    const MppResult fast = findMpp(array); // analytic overload

    // Oracle: tight golden-section search over the Newton-solved curve
    // (the seed implementation, forced via the flag and the generic
    // IvSource overload).
    setNewtonIvSolve(true);
    const MppResult oracle =
        findMpp(static_cast<const IvSource &>(array), 1e-9);
    setNewtonIvSolve(false);

    if (g <= 0.0) {
        EXPECT_EQ(fast.power, 0.0);
        EXPECT_EQ(fast.voltage, 0.0);
        EXPECT_EQ(fast.current, 0.0);
        return;
    }
    EXPECT_LE(relDiff(fast.power, oracle.power), 1e-9)
        << "G=" << g << " T=" << t;
    EXPECT_LE(relDiff(fast.voltage, oracle.voltage), 1e-6)
        << "G=" << g << " T=" << t;
    EXPECT_LE(relDiff(fast.current, oracle.current), 1e-6)
        << "G=" << g << " T=" << t;
    // The analytic point is the true stationary point: it must not be
    // beaten by the oracle's probe grid.
    EXPECT_GE(fast.power, oracle.power - 1e-9 * (1.0 + oracle.power));
}

INSTANTIATE_TEST_SUITE_P(
    FullGrid, LambertParityGrid,
    ::testing::Combine(::testing::Values(0.0, 50.0, 100.0, 250.0, 400.0,
                                         550.0, 700.0, 850.0, 1000.0,
                                         1100.0),
                       ::testing::Values(-10.0, 0.0, 10.0, 25.0, 40.0,
                                         55.0, 75.0)));

TEST(LambertParity, NewtonFlagRoutesTheSolve)
{
    const SolarCell &cell = testModule().cell();
    const Environment env{800.0, 40.0};
    const double v = 0.8 * cell.openCircuitVoltage(env);

    ASSERT_FALSE(newtonIvSolve());
    const double fast = cell.currentAt(v, env);
    setNewtonIvSolve(true);
    EXPECT_TRUE(newtonIvSolve());
    const double via_flag = cell.currentAt(v, env);
    setNewtonIvSolve(false);

    EXPECT_DOUBLE_EQ(via_flag, cell.currentAtNewton(v, env));
    EXPECT_LE(relDiff(fast, via_flag), 1e-9);
}

TEST(LambertParity, DarkPanelMppIsExplicitZero)
{
    PvArray array(testModule(), 1, 1, {0.0, 25.0});
    for (const auto &mpp :
         {findMpp(array), findMpp(static_cast<const IvSource &>(array))}) {
        EXPECT_EQ(mpp.voltage, 0.0);
        EXPECT_EQ(mpp.current, 0.0);
        EXPECT_EQ(mpp.power, 0.0);
    }
}

TEST(LambertParity, DarkIvCurveIsASingleZeroSample)
{
    PvArray array(testModule(), 1, 1, {0.0, 25.0});
    const auto samples = sampleIvCurve(array, 50);
    ASSERT_EQ(samples.size(), 1u);
    EXPECT_EQ(samples[0].voltage, 0.0);
    EXPECT_EQ(samples[0].current, 0.0);
    EXPECT_EQ(samples[0].power, 0.0);
}

} // namespace
} // namespace solarcore::pv
