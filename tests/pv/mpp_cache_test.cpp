/**
 * @file
 * Tests for the environment-keyed MPP memo and the bilinear (G, T)
 * grid with analytic refinement.
 */

#include <cmath>
#include <span>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "pv/bp3180n.hpp"
#include "pv/mpp_cache.hpp"

namespace solarcore::pv {
namespace {

const PvModule &
testModule()
{
    static const PvModule m = buildBp3180n();
    return m;
}

TEST(MppCache, ExactModeIsBitIdenticalToDirectSolve)
{
    MppCache cache(testModule(), 1, 1);
    PvArray array(testModule(), 1, 1, kStc);
    for (double g : {150.0, 480.0, 725.0, 1000.0}) {
        for (double t : {-5.0, 22.0, 61.0}) {
            array.setEnvironment({g, t});
            const auto direct = findMpp(array);
            const auto cached = cache.mpp({g, t});
            EXPECT_EQ(cached.voltage, direct.voltage) << g << " " << t;
            EXPECT_EQ(cached.current, direct.current) << g << " " << t;
            EXPECT_EQ(cached.power, direct.power) << g << " " << t;
        }
    }
}

TEST(MppCache, RepeatedEnvironmentHitsTheMemo)
{
    MppCache cache(testModule(), 1, 1);
    const Environment env{800.0, 40.0};
    const auto first = cache.mpp(env);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().hits, 0u);

    for (int i = 0; i < 5; ++i) {
        const auto again = cache.mpp(env);
        EXPECT_EQ(again.power, first.power);
    }
    EXPECT_EQ(cache.stats().hits, 5u);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.size(), 1u);
}

TEST(MppCache, EnvironmentChangeInvalidatesNothingButMissesCorrectly)
{
    // The memo is keyed, not stateful: after an environment change the
    // new condition resolves to its own fresh entry and going back to
    // the first one still returns the original result.
    MppCache cache(testModule(), 1, 1);
    const Environment a{900.0, 30.0};
    const Environment b{300.0, 10.0};

    const auto mpp_a = cache.mpp(a);
    const auto mpp_b = cache.mpp(b);
    EXPECT_NE(mpp_a.power, mpp_b.power);
    EXPECT_EQ(cache.stats().misses, 2u);

    PvArray oracle(testModule(), 1, 1, a);
    const auto direct_a = findMpp(oracle);
    oracle.setEnvironment(b);
    const auto direct_b = findMpp(oracle);
    EXPECT_EQ(cache.mpp(a).power, direct_a.power);
    EXPECT_EQ(cache.mpp(b).power, direct_b.power);
    EXPECT_EQ(cache.stats().hits, 2u);
}

TEST(MppCache, DarkEnvironmentBypassesTheMemo)
{
    MppCache cache(testModule(), 1, 1);
    const auto mpp = cache.mpp({0.0, 25.0});
    EXPECT_EQ(mpp.power, 0.0);
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.stats().misses, 0u);
}

TEST(MppCache, QuantizedModeCollapsesNearbyEnvironments)
{
    MppCache cache(testModule(), 1, 1, /*g_quantum=*/1.0,
                   /*t_quantum=*/0.1);
    const auto a = cache.mpp({800.2, 40.02});
    const auto b = cache.mpp({799.9, 39.98});
    EXPECT_EQ(a.power, b.power);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.stats().hits, 1u);

    // A full bucket away resolves separately.
    const auto c = cache.mpp({805.0, 40.0});
    EXPECT_NE(c.power, a.power);
    EXPECT_EQ(cache.size(), 2u);
}

TEST(MppCache, CompatibilityChecksModuleAndArrangement)
{
    MppCache cache(testModule(), 2, 3);
    EXPECT_TRUE(cache.compatibleWith(testModule(), 2, 3));
    EXPECT_FALSE(cache.compatibleWith(testModule(), 1, 1));

    CellParams other;
    other.seriesRes = 0.02;
    const PvModule different(SolarCell(other), 36, 1);
    EXPECT_FALSE(cache.compatibleWith(different, 2, 3));
}

TEST(MppCache, ClearResetsEntriesAndCounters)
{
    MppCache cache(testModule(), 1, 1);
    cache.mpp({500.0, 25.0});
    cache.mpp({500.0, 25.0});
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.stats().hits, 0u);
    EXPECT_EQ(cache.stats().misses, 0u);
}

TEST(MppCache, LookupBatchStatsAreSequentialEquivalent)
{
    // A batch mixing fresh keys, repeats (within and across batches)
    // and dark environments must count exactly like the per-element
    // mpp() loop: first occurrence of a key is a miss, repeats are
    // hits, dark lookups bypass the counters.
    const std::vector<Environment> envs = {
        {800.0, 40.0}, {300.0, 10.0}, {800.0, 40.0}, {0.0, 25.0},
        {950.0, 55.0}, {300.0, 10.0}, {0.0, -5.0},   {800.0, 40.0},
    };

    MppCache sequential(testModule(), 1, 1);
    for (const auto &env : envs)
        sequential.mpp(env);

    MppCache batched(testModule(), 1, 1);
    std::vector<MppResult> got(envs.size());
    batched.lookupBatch(envs, got);

    EXPECT_EQ(batched.stats().hits, sequential.stats().hits);
    EXPECT_EQ(batched.stats().misses, sequential.stats().misses);
    EXPECT_EQ(batched.size(), sequential.size());

    // The batch solve routes misses through the selected lane kernel
    // (the per-element path uses the analytic scalar solve), so
    // results agree to solver tolerance, not necessarily to the bit.
    MppCache oracle(testModule(), 1, 1);
    for (std::size_t i = 0; i < envs.size(); ++i) {
        const auto direct = oracle.mpp(envs[i]);
        EXPECT_NEAR(got[i].power, direct.power,
                    1e-9 * (1.0 + direct.power))
            << i;
        EXPECT_NEAR(got[i].voltage, direct.voltage,
                    1e-9 * (1.0 + direct.voltage))
            << i;
    }

    // Within one cache the memo is authoritative: replaying the batch
    // is all hits and bit-identical to the first pass.
    std::vector<MppResult> replay(envs.size());
    batched.lookupBatch(envs, replay);
    for (std::size_t i = 0; i < envs.size(); ++i) {
        EXPECT_EQ(replay[i].power, got[i].power) << i;
        EXPECT_EQ(replay[i].voltage, got[i].voltage) << i;
    }
    for (const auto &env : envs)
        sequential.mpp(env);
    EXPECT_EQ(batched.stats().hits, sequential.stats().hits);
    EXPECT_EQ(batched.stats().misses, sequential.stats().misses);
}

TEST(MppCache, LookupBatchIsDeterministicAcrossBatchShapes)
{
    // Same kernel path, different batch boundaries: feeding the
    // sequence one element at a time must land on the same bits as
    // one big batch (the memo, not the batch shape, owns the result).
    const std::vector<Environment> envs = {
        {800.0, 40.0}, {300.0, 10.0}, {800.0, 40.0},
        {950.0, 55.0}, {120.0, -2.0}, {300.0, 10.0},
    };
    MppCache whole(testModule(), 1, 1);
    std::vector<MppResult> batch(envs.size());
    whole.lookupBatch(envs, batch);

    MppCache stepwise(testModule(), 1, 1);
    std::vector<MppResult> single(envs.size());
    for (std::size_t i = 0; i < envs.size(); ++i)
        stepwise.lookupBatch(
            std::span<const Environment>(envs).subspan(i, 1),
            std::span<MppResult>(single).subspan(i, 1));

    for (std::size_t i = 0; i < envs.size(); ++i) {
        EXPECT_EQ(batch[i].voltage, single[i].voltage) << i;
        EXPECT_EQ(batch[i].current, single[i].current) << i;
        EXPECT_EQ(batch[i].power, single[i].power) << i;
    }
    EXPECT_EQ(whole.stats().hits, stepwise.stats().hits);
    EXPECT_EQ(whole.stats().misses, stepwise.stats().misses);
}

TEST(MppCache, LookupBatchConcurrentShardsMatchSequentialStats)
{
    // The day drivers give every pool thread its own cache and batch
    // the timestep lookups. Model that: N shards, each a private cache
    // draining its slice concurrently, must each land on the same
    // results and counters as a sequential per-element replay of that
    // slice.
    std::vector<Environment> envs;
    for (int i = 0; i < 48; ++i) {
        const double phase = static_cast<double>(i % 12);
        envs.push_back({100.0 + 75.0 * phase, 15.0 + 2.0 * phase});
    }

    constexpr std::size_t kShards = 4;
    const std::size_t per = envs.size() / kShards;
    std::vector<std::vector<MppResult>> got(
        kShards, std::vector<MppResult>(per));
    std::vector<MppCache> caches;
    caches.reserve(kShards);
    for (std::size_t s = 0; s < kShards; ++s)
        caches.emplace_back(testModule(), 1, 1);

    std::vector<std::thread> threads;
    for (std::size_t s = 0; s < kShards; ++s)
        threads.emplace_back([&, s] {
            caches[s].lookupBatch(
                std::span<const Environment>(envs).subspan(s * per, per),
                got[s]);
        });
    for (auto &t : threads)
        t.join();

    for (std::size_t s = 0; s < kShards; ++s) {
        // Bit-exact reference: the same slice through the same batch
        // path, single-threaded on a fresh cache.
        MppCache replay(testModule(), 1, 1);
        std::vector<MppResult> expected(per);
        replay.lookupBatch(
            std::span<const Environment>(envs).subspan(s * per, per),
            expected);
        for (std::size_t i = 0; i < per; ++i) {
            EXPECT_EQ(got[s][i].power, expected[i].power)
                << s << "/" << i;
            EXPECT_EQ(got[s][i].voltage, expected[i].voltage)
                << s << "/" << i;
        }

        // Counters: sequential-equivalent to the per-element loop.
        MppCache oracle(testModule(), 1, 1);
        for (std::size_t i = 0; i < per; ++i)
            oracle.mpp(envs[s * per + i]);
        EXPECT_EQ(caches[s].stats().hits, oracle.stats().hits) << s;
        EXPECT_EQ(caches[s].stats().misses, oracle.stats().misses) << s;
    }
}

TEST(MppGrid, InterpolationIsExactOnGridNodes)
{
    MppGrid grid(testModule(), 1, 1, 100.0, 1000.0, 10, -10.0, 75.0, 9);
    PvArray array(testModule(), 1, 1, {100.0, -10.0});
    const auto direct = findMpp(array);
    const auto interp = grid.interpolate({100.0, -10.0});
    EXPECT_NEAR(interp.power, direct.power, 1e-9 * direct.power);
}

TEST(MppGrid, InterpolationErrorIsSmallBetweenNodes)
{
    MppGrid grid(testModule(), 1, 1, 100.0, 1000.0, 19, -10.0, 75.0, 18);
    PvArray array(testModule(), 1, 1, kStc);
    for (double g : {130.0, 475.0, 910.0}) {
        for (double t : {-3.0, 33.0, 68.0}) {
            array.setEnvironment({g, t});
            const auto direct = findMpp(array);
            const auto interp = grid.interpolate({g, t});
            // Bilinear on a ~50 W/m^2 x 5 C pitch: sub-percent power.
            EXPECT_NEAR(interp.power, direct.power, 0.01 * direct.power)
                << g << " " << t;
        }
    }
}

TEST(MppGrid, RefinementRecoversTheExactMpp)
{
    MppGrid grid(testModule(), 1, 1, 100.0, 1000.0, 10, -10.0, 75.0, 9);
    PvArray array(testModule(), 1, 1, kStc);
    for (double g : {130.0, 475.0, 910.0}) {
        for (double t : {-3.0, 33.0, 68.0}) {
            array.setEnvironment({g, t});
            const auto direct = findMpp(array);
            const auto refined = grid.refined({g, t});
            EXPECT_NEAR(refined.power, direct.power,
                        1e-9 * (1.0 + direct.power))
                << g << " " << t;
            EXPECT_NEAR(refined.voltage, direct.voltage,
                        1e-6 * (1.0 + direct.voltage))
                << g << " " << t;
        }
    }
}

TEST(MppGrid, DarkEnvironmentIsZero)
{
    MppGrid grid(testModule(), 1, 1, 100.0, 1000.0, 4, -10.0, 75.0, 4);
    const auto mpp = grid.refined({0.0, 25.0});
    EXPECT_EQ(mpp.power, 0.0);
}

} // namespace
} // namespace solarcore::pv
