/**
 * @file
 * Tests for the environment-keyed MPP memo and the bilinear (G, T)
 * grid with analytic refinement.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "pv/bp3180n.hpp"
#include "pv/mpp_cache.hpp"

namespace solarcore::pv {
namespace {

const PvModule &
testModule()
{
    static const PvModule m = buildBp3180n();
    return m;
}

TEST(MppCache, ExactModeIsBitIdenticalToDirectSolve)
{
    MppCache cache(testModule(), 1, 1);
    PvArray array(testModule(), 1, 1, kStc);
    for (double g : {150.0, 480.0, 725.0, 1000.0}) {
        for (double t : {-5.0, 22.0, 61.0}) {
            array.setEnvironment({g, t});
            const auto direct = findMpp(array);
            const auto cached = cache.mpp({g, t});
            EXPECT_EQ(cached.voltage, direct.voltage) << g << " " << t;
            EXPECT_EQ(cached.current, direct.current) << g << " " << t;
            EXPECT_EQ(cached.power, direct.power) << g << " " << t;
        }
    }
}

TEST(MppCache, RepeatedEnvironmentHitsTheMemo)
{
    MppCache cache(testModule(), 1, 1);
    const Environment env{800.0, 40.0};
    const auto first = cache.mpp(env);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().hits, 0u);

    for (int i = 0; i < 5; ++i) {
        const auto again = cache.mpp(env);
        EXPECT_EQ(again.power, first.power);
    }
    EXPECT_EQ(cache.stats().hits, 5u);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.size(), 1u);
}

TEST(MppCache, EnvironmentChangeInvalidatesNothingButMissesCorrectly)
{
    // The memo is keyed, not stateful: after an environment change the
    // new condition resolves to its own fresh entry and going back to
    // the first one still returns the original result.
    MppCache cache(testModule(), 1, 1);
    const Environment a{900.0, 30.0};
    const Environment b{300.0, 10.0};

    const auto mpp_a = cache.mpp(a);
    const auto mpp_b = cache.mpp(b);
    EXPECT_NE(mpp_a.power, mpp_b.power);
    EXPECT_EQ(cache.stats().misses, 2u);

    PvArray oracle(testModule(), 1, 1, a);
    const auto direct_a = findMpp(oracle);
    oracle.setEnvironment(b);
    const auto direct_b = findMpp(oracle);
    EXPECT_EQ(cache.mpp(a).power, direct_a.power);
    EXPECT_EQ(cache.mpp(b).power, direct_b.power);
    EXPECT_EQ(cache.stats().hits, 2u);
}

TEST(MppCache, DarkEnvironmentBypassesTheMemo)
{
    MppCache cache(testModule(), 1, 1);
    const auto mpp = cache.mpp({0.0, 25.0});
    EXPECT_EQ(mpp.power, 0.0);
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.stats().misses, 0u);
}

TEST(MppCache, QuantizedModeCollapsesNearbyEnvironments)
{
    MppCache cache(testModule(), 1, 1, /*g_quantum=*/1.0,
                   /*t_quantum=*/0.1);
    const auto a = cache.mpp({800.2, 40.02});
    const auto b = cache.mpp({799.9, 39.98});
    EXPECT_EQ(a.power, b.power);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.stats().hits, 1u);

    // A full bucket away resolves separately.
    const auto c = cache.mpp({805.0, 40.0});
    EXPECT_NE(c.power, a.power);
    EXPECT_EQ(cache.size(), 2u);
}

TEST(MppCache, CompatibilityChecksModuleAndArrangement)
{
    MppCache cache(testModule(), 2, 3);
    EXPECT_TRUE(cache.compatibleWith(testModule(), 2, 3));
    EXPECT_FALSE(cache.compatibleWith(testModule(), 1, 1));

    CellParams other;
    other.seriesRes = 0.02;
    const PvModule different(SolarCell(other), 36, 1);
    EXPECT_FALSE(cache.compatibleWith(different, 2, 3));
}

TEST(MppCache, ClearResetsEntriesAndCounters)
{
    MppCache cache(testModule(), 1, 1);
    cache.mpp({500.0, 25.0});
    cache.mpp({500.0, 25.0});
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.stats().hits, 0u);
    EXPECT_EQ(cache.stats().misses, 0u);
}

TEST(MppGrid, InterpolationIsExactOnGridNodes)
{
    MppGrid grid(testModule(), 1, 1, 100.0, 1000.0, 10, -10.0, 75.0, 9);
    PvArray array(testModule(), 1, 1, {100.0, -10.0});
    const auto direct = findMpp(array);
    const auto interp = grid.interpolate({100.0, -10.0});
    EXPECT_NEAR(interp.power, direct.power, 1e-9 * direct.power);
}

TEST(MppGrid, InterpolationErrorIsSmallBetweenNodes)
{
    MppGrid grid(testModule(), 1, 1, 100.0, 1000.0, 19, -10.0, 75.0, 18);
    PvArray array(testModule(), 1, 1, kStc);
    for (double g : {130.0, 475.0, 910.0}) {
        for (double t : {-3.0, 33.0, 68.0}) {
            array.setEnvironment({g, t});
            const auto direct = findMpp(array);
            const auto interp = grid.interpolate({g, t});
            // Bilinear on a ~50 W/m^2 x 5 C pitch: sub-percent power.
            EXPECT_NEAR(interp.power, direct.power, 0.01 * direct.power)
                << g << " " << t;
        }
    }
}

TEST(MppGrid, RefinementRecoversTheExactMpp)
{
    MppGrid grid(testModule(), 1, 1, 100.0, 1000.0, 10, -10.0, 75.0, 9);
    PvArray array(testModule(), 1, 1, kStc);
    for (double g : {130.0, 475.0, 910.0}) {
        for (double t : {-3.0, 33.0, 68.0}) {
            array.setEnvironment({g, t});
            const auto direct = findMpp(array);
            const auto refined = grid.refined({g, t});
            EXPECT_NEAR(refined.power, direct.power,
                        1e-9 * (1.0 + direct.power))
                << g << " " << t;
            EXPECT_NEAR(refined.voltage, direct.voltage,
                        1e-6 * (1.0 + direct.voltage))
                << g << " " << t;
        }
    }
}

TEST(MppGrid, DarkEnvironmentIsZero)
{
    MppGrid grid(testModule(), 1, 1, 100.0, 1000.0, 4, -10.0, 75.0, 4);
    const auto mpp = grid.refined({0.0, 25.0});
    EXPECT_EQ(mpp.power, 0.0);
}

} // namespace
} // namespace solarcore::pv
