/**
 * @file
 * Tests for PV module/array scaling and the BP3180N calibration.
 */

#include <gtest/gtest.h>

#include "pv/bp3180n.hpp"
#include "pv/module.hpp"
#include "pv/mpp.hpp"

namespace solarcore::pv {
namespace {

TEST(PvModule, SeriesScalesVoltageParallelScalesCurrent)
{
    const auto sheet = bp3180nDatasheet();
    const PvModule mod = buildCalibratedModule(sheet);

    EXPECT_NEAR(mod.openCircuitVoltage(kStc), sheet.vocStc, 1e-6);
    EXPECT_NEAR(mod.shortCircuitCurrent(kStc), sheet.iscStc, 0.02);
}

TEST(PvModule, Bp3180nCalibrationHitsRatedPower)
{
    const PvModule mod = buildBp3180n();
    const PvArray array(mod, 1, 1, kStc);
    const auto mpp = findMpp(array);
    EXPECT_NEAR(mpp.power, 180.0, 0.05);
    // MPP voltage/current land near the datasheet operating point.
    EXPECT_NEAR(mpp.voltage, 35.8, 2.0);
    EXPECT_NEAR(mpp.current, 5.03, 0.3);
}

TEST(PvModule, BlockingDiodePreventsReverseCurrent)
{
    const PvModule mod = buildBp3180n();
    const double voc = mod.openCircuitVoltage(kStc);
    EXPECT_DOUBLE_EQ(mod.currentAt(voc * 1.2, kStc), 0.0);
}

TEST(PvModule, CellTempFollowsNoctRelation)
{
    const PvModule mod = buildBp3180n();
    // At 800 W/m^2 and 20 C ambient the cell sits at NOCT.
    EXPECT_NEAR(mod.cellTempFromAmbient(20.0, 800.0), 47.0, 1e-9);
    EXPECT_DOUBLE_EQ(mod.cellTempFromAmbient(20.0, 0.0), 20.0);
    // Negative irradiance (sensor noise) never cools the cell.
    EXPECT_DOUBLE_EQ(mod.cellTempFromAmbient(20.0, -50.0), 20.0);
}

TEST(PvArray, SeriesParallelComposition)
{
    const PvModule mod = buildBp3180n();
    const PvArray single(mod, 1, 1, kStc);
    const PvArray grid(mod, 2, 3, kStc);

    EXPECT_NEAR(grid.openCircuitVoltage(),
                2.0 * single.openCircuitVoltage(), 1e-9);
    EXPECT_NEAR(grid.shortCircuitCurrent(),
                3.0 * single.shortCircuitCurrent(), 1e-9);

    const auto mpp1 = findMpp(single);
    const auto mpp6 = findMpp(grid);
    EXPECT_NEAR(mpp6.power, 6.0 * mpp1.power, 0.1);
}

TEST(PvArray, EnvironmentRebindChangesOutput)
{
    const PvModule mod = buildBp3180n();
    PvArray array(mod, 1, 1, kStc);
    const double p_full = findMpp(array).power;

    array.setEnvironment({400.0, 25.0});
    const double p_dim = findMpp(array).power;
    EXPECT_LT(p_dim, 0.5 * p_full);
    EXPECT_GT(p_dim, 0.2 * p_full);
}

TEST(Mpp, PowerRisesWithIrradiance)
{
    // Paper Figure 6: MPPs move upward with G.
    const PvModule mod = buildBp3180n();
    double prev = 0.0;
    for (double g : {200.0, 400.0, 600.0, 800.0, 1000.0}) {
        PvArray array(mod, 1, 1, {g, 25.0});
        const double p = findMpp(array).power;
        ASSERT_GT(p, prev) << "at G=" << g;
        prev = p;
    }
}

TEST(Mpp, PowerFallsWithTemperature)
{
    // Paper Figure 7: higher temperature shifts MPP left and reduces P.
    const PvModule mod = buildBp3180n();
    double prev_p = 1e9;
    double prev_v = 1e9;
    for (double t : {0.0, 25.0, 50.0, 75.0}) {
        PvArray array(mod, 1, 1, {1000.0, t});
        const auto mpp = findMpp(array);
        ASSERT_LT(mpp.power, prev_p) << "at T=" << t;
        ASSERT_LT(mpp.voltage, prev_v) << "at T=" << t;
        prev_p = mpp.power;
        prev_v = mpp.voltage;
    }
}

TEST(Mpp, DarkArrayHasZeroMpp)
{
    const PvModule mod = buildBp3180n();
    PvArray array(mod, 1, 1, {0.0, 25.0});
    const auto mpp = findMpp(array);
    EXPECT_DOUBLE_EQ(mpp.power, 0.0);
}

TEST(Mpp, SampledCurveBracketsMppPower)
{
    const PvModule mod = buildBp3180n();
    PvArray array(mod, 1, 1, kStc);
    const auto mpp = findMpp(array);
    const auto curve = sampleIvCurve(array, 200);

    double best = 0.0;
    for (const auto &s : curve)
        best = std::max(best, s.power);
    EXPECT_LE(best, mpp.power + 1e-6);
    EXPECT_GT(best, 0.99 * mpp.power);
    EXPECT_EQ(curve.size(), 200u);
    // Endpoints: V=0 carries Isc, V=Voc carries ~no current.
    EXPECT_NEAR(curve.front().voltage, 0.0, 1e-12);
    EXPECT_NEAR(curve.back().current, 0.0, 1e-5);
}

TEST(Mpp, ResistiveOperatingPointOnCurve)
{
    const PvModule mod = buildBp3180n();
    PvArray array(mod, 1, 1, kStc);
    const auto op = resistiveOperatingPoint(array, 7.0);
    EXPECT_NEAR(op.current, op.voltage / 7.0, 1e-6);
    EXPECT_NEAR(op.current, array.currentAt(op.voltage), 1e-6);
    EXPECT_GT(op.power(), 0.0);
}

TEST(Mpp, MatchedResistiveLoadNearMpp)
{
    // A resistance chosen as Vmpp/Impp places the panel at the MPP.
    const PvModule mod = buildBp3180n();
    PvArray array(mod, 1, 1, kStc);
    const auto mpp = findMpp(array);
    const auto op = resistiveOperatingPoint(array, mpp.voltage / mpp.current);
    EXPECT_NEAR(op.power(), mpp.power, 0.01);
}

/**
 * Paper Figure 1's premise: a load matched at 1000 W/m^2 wastes more
 * than half the available energy at 400 W/m^2.
 */
TEST(Mpp, FixedLoadLosesPowerAtLowIrradiance)
{
    const PvModule mod = buildBp3180n();
    PvArray array(mod, 1, 1, kStc);
    const auto mpp_stc = findMpp(array);
    const double r_matched = mpp_stc.voltage / mpp_stc.current;

    array.setEnvironment({400.0, 25.0});
    const auto op = resistiveOperatingPoint(array, r_matched);
    const auto mpp_dim = findMpp(array);
    const double utilization = op.power() / mpp_dim.power;
    EXPECT_LT(utilization, 0.5);
}

} // namespace
} // namespace solarcore::pv
