/**
 * @file
 * Tests for the multi-day aggregation helper.
 */

#include <gtest/gtest.h>

#include "core/aggregate.hpp"

namespace solarcore::core {
namespace {

SimConfig
fastConfig()
{
    SimConfig cfg;
    cfg.dtSeconds = 60.0;
    return cfg;
}

TEST(Aggregate, CountsRequestedDays)
{
    const auto module = pv::buildBp3180n();
    const auto agg = simulateManyDays(module, solar::SiteId::AZ,
                                      solar::Month::Apr,
                                      workload::WorkloadId::L1,
                                      fastConfig(), 3);
    EXPECT_EQ(agg.days, 3);
    EXPECT_EQ(agg.utilization.count(), 3u);
    EXPECT_EQ(agg.solarInstructions.count(), 3u);
}

TEST(Aggregate, Deterministic)
{
    const auto module = pv::buildBp3180n();
    const auto a = simulateManyDays(module, solar::SiteId::NC,
                                    solar::Month::Oct,
                                    workload::WorkloadId::M2,
                                    fastConfig(), 3, 11);
    const auto b = simulateManyDays(module, solar::SiteId::NC,
                                    solar::Month::Oct,
                                    workload::WorkloadId::M2,
                                    fastConfig(), 3, 11);
    EXPECT_DOUBLE_EQ(a.utilization.mean(), b.utilization.mean());
    EXPECT_DOUBLE_EQ(a.solarEnergyWh.sum(), b.solarEnergyWh.sum());
}

TEST(Aggregate, SeedsActuallyVaryWeather)
{
    const auto module = pv::buildBp3180n();
    const auto agg = simulateManyDays(module, solar::SiteId::NC,
                                      solar::Month::Apr,
                                      workload::WorkloadId::HM2,
                                      fastConfig(), 4);
    // Volatile-site days must differ in harvested energy.
    EXPECT_GT(agg.solarEnergyWh.max(), agg.solarEnergyWh.min());
}

TEST(Aggregate, MetricsWithinPhysicalBounds)
{
    const auto module = pv::buildBp3180n();
    const auto agg = simulateManyDays(module, solar::SiteId::TN,
                                      solar::Month::Jan,
                                      workload::WorkloadId::ML2,
                                      fastConfig(), 3);
    EXPECT_GT(agg.utilization.min(), 0.3);
    EXPECT_LE(agg.utilization.max(), 1.0);
    EXPECT_GE(agg.effectiveFraction.min(), 0.0);
    EXPECT_LE(agg.effectiveFraction.max(), 1.0);
}

} // namespace
} // namespace solarcore::core
