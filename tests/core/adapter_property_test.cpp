/**
 * @file
 * Property tests for the load-adaptation layer: randomized budgets and
 * TPR profiles. The fixed-budget allocator must never exceed its
 * budget, and the TPR-opt adapter must always spend the next notch on
 * the best (greedy-dominant) candidate -- with the level-only climb
 * applying steps in non-increasing TPR order.
 */

#include <vector>

#include <gtest/gtest.h>

#include "core/fixed_power.hpp"
#include "core/load_adapter.hpp"
#include "core/tpr.hpp"
#include "cpu/chip.hpp"
#include "util/random.hpp"
#include "workload/multiprogram.hpp"

namespace solarcore::core {
namespace {

cpu::MultiCoreChip
makeChip(workload::WorkloadId wl, std::uint64_t seed)
{
    return cpu::MultiCoreChip(cpu::defaultChipConfig(),
                              cpu::DvfsTable::paperDefault(),
                              cpu::EnergyParams{},
                              workload::workloadSet(wl), seed);
}

TEST(AllocatorProperty, RandomBudgetsNeverExceeded)
{
    Rng rng(20260806);
    const auto workloads = workload::allWorkloads();
    for (int trial = 0; trial < 40; ++trial) {
        const auto wl = workloads[static_cast<std::size_t>(
            rng.uniformInt(0, static_cast<std::int64_t>(workloads.size()) -
                                  1))];
        auto chip = makeChip(wl, static_cast<std::uint64_t>(trial) + 1);
        // Advance the cores a random amount so every trial samples a
        // different point of the phase-dependent TPR profiles.
        chip.setAllLevels(2);
        chip.step(rng.uniform(0.0, 300.0));

        // Gated cores still leak, so the all-gated configuration is
        // the cheapest one the allocator can pick.
        const double floor_w =
            chip.powerModel().gatedPower().totalW() * chip.numCores();
        const double budget = rng.uniform(0.0, 1.2 * chip.maxPower());
        const auto alloc = optimizeAllocation(chip, budget, 0.25);
        if (!alloc.feasible) {
            // Only budgets below the all-gated floor (plus one DP
            // quantum of rounding) may be rejected.
            EXPECT_LT(budget, floor_w + 0.25) << "budget=" << budget;
            continue;
        }
        EXPECT_LE(alloc.powerW, budget + 1e-9)
            << workload::workloadName(wl) << " budget=" << budget;

        applyAllocation(chip, alloc);
        EXPECT_NEAR(chip.totalPower(), alloc.powerW, 1e-9);
        EXPECT_LE(chip.totalPower(), budget + 1e-9)
            << workload::workloadName(wl) << " budget=" << budget;
        EXPECT_NEAR(chip.totalThroughput(), alloc.throughput,
                    1e-6 * alloc.throughput + 1e-9);
    }
}

TEST(AllocatorProperty, LargerBudgetNeverLosesThroughput)
{
    Rng rng(7);
    auto chip = makeChip(workload::WorkloadId::HM1, 3);
    for (int trial = 0; trial < 15; ++trial) {
        const double lo = rng.uniform(0.0, chip.maxPower());
        const double hi = lo + rng.uniform(0.0, 40.0);
        const auto small = optimizeAllocation(chip, lo, 0.25);
        const auto large = optimizeAllocation(chip, hi, 0.25);
        ASSERT_TRUE(small.feasible && large.feasible);
        EXPECT_GE(large.throughput, small.throughput - 1e-9)
            << lo << " -> " << hi;
    }
}

TEST(TprOptProperty, EveryUpStepIsGreedyDominant)
{
    for (std::uint64_t seed : {1ull, 9ull, 42ull}) {
        auto chip = makeChip(workload::WorkloadId::ML1, seed);
        chip.gateAll();
        TprOptAdapter adapter;
        for (;;) {
            // The adapter must pick the argmax-TPR candidate among the
            // steps available right now.
            const auto candidates = allUpSteps(chip);
            const auto step = adapter.increaseOneStep(chip);
            if (!step.valid) {
                EXPECT_TRUE(candidates.empty());
                break;
            }
            for (const auto &c : candidates)
                EXPECT_GE(step.tpr(), c.tpr() - 1e-12)
                    << "core " << step.coreIndex << " vs " << c.coreIndex;
        }
        EXPECT_NEAR(chip.totalPower(), chip.maxPower(), 1e-9);
    }
}

TEST(TprOptProperty, EveryDownStepShedsCheapestThroughput)
{
    for (std::uint64_t seed : {2ull, 11ull}) {
        auto chip = makeChip(workload::WorkloadId::H2, seed);
        chip.setAllLevels(chip.dvfs().numLevels() - 1);
        TprOptAdapter adapter;
        for (;;) {
            const auto candidates = allDownSteps(chip);
            const auto step = adapter.decreaseOneStep(chip);
            if (!step.valid) {
                EXPECT_TRUE(candidates.empty());
                break;
            }
            // Downward, the best step loses the least throughput per
            // watt shed: the argmin-TPR candidate.
            for (const auto &c : candidates)
                EXPECT_LE(step.tpr(), c.tpr() + 1e-12)
                    << "core " << step.coreIndex << " vs " << c.coreIndex;
        }
        // Fully descended, every core is gated -- which still leaks
        // static power, so the floor is gatedPower per core, not zero.
        EXPECT_NEAR(chip.totalPower(),
                    chip.powerModel().gatedPower().totalW() *
                        chip.numCores(),
                    1e-9);
    }
}

TEST(TprOptProperty, LevelOnlyClimbAppliesStepsInNonIncreasingTprOrder)
{
    // With gating out of the picture (ungating mixes static power into
    // the ratio), the per-level TPR profiles are concave, so the
    // greedy climb consumes steps in globally non-increasing TPR order.
    for (std::uint64_t seed : {1ull, 5ull}) {
        auto chip = makeChip(workload::WorkloadId::M1, seed);
        chip.setGatingAllowed(false);
        chip.setAllLevels(0);
        TprOptAdapter adapter;
        double prev_tpr = 0.0;
        bool first = true;
        int applied = 0;
        for (;;) {
            const auto step = adapter.increaseOneStep(chip);
            if (!step.valid)
                break;
            ++applied;
            if (!first) {
                EXPECT_LE(step.tpr(), prev_tpr + 1e-12)
                    << "step " << applied << " seed " << seed;
            }
            prev_tpr = step.tpr();
            first = false;
        }
        EXPECT_EQ(applied,
                  chip.numCores() * (chip.dvfs().numLevels() - 1));
    }
}

} // namespace
} // namespace solarcore::core
