/**
 * @file
 * Tests for the classic perturb-and-observe tracker.
 */

#include <gtest/gtest.h>

#include "core/perturb_observe.hpp"
#include "pv/bp3180n.hpp"
#include "pv/mpp.hpp"

namespace solarcore::core {
namespace {

struct Rig
{
    pv::PvModule module = pv::buildBp3180n();
    pv::PvArray array{module, 1, 1, {800.0, 30.0}};
    power::DcDcConverter converter{0.5, 8.0, 1.0};
};

/** A load whose line crosses the panel curve comfortably. */
double
midLoad(const pv::PvArray &array)
{
    const auto mpp = pv::findMpp(array);
    // Rail at ~12 V when drawing around 60% of MPP power.
    return 12.0 * 12.0 / (0.6 * mpp.power);
}

TEST(PerturbObserve, ConvergesToMppFromBelow)
{
    Rig rig;
    rig.converter.setRatio(0.8); // panel parked far left of the MPP
    PerturbObserveTracker tracker(rig.array, rig.converter,
                                  midLoad(rig.array));
    const double p = tracker.run(200);
    const double pmpp = pv::findMpp(rig.array).power;
    EXPECT_GT(p, 0.93 * pmpp);
    EXPECT_LE(p, pmpp + 1e-6);
}

TEST(PerturbObserve, ConvergesToMppFromAbove)
{
    Rig rig;
    rig.converter.setRatio(3.6); // panel parked near open circuit
    PerturbObserveTracker tracker(rig.array, rig.converter,
                                  midLoad(rig.array));
    const double p = tracker.run(200);
    EXPECT_GT(p, 0.93 * pv::findMpp(rig.array).power);
}

TEST(PerturbObserve, AdaptiveStepSettlesTighterThanFixed)
{
    double final_power[2];
    int idx = 0;
    for (bool adaptive : {true, false}) {
        Rig rig;
        rig.converter.setRatio(1.0);
        PerturbObserveConfig cfg;
        cfg.adaptiveStep = adaptive;
        cfg.deltaK = 0.08; // deliberately coarse
        PerturbObserveTracker tracker(rig.array, rig.converter,
                                      midLoad(rig.array),
                                      power::IvSensor(), cfg);
        final_power[idx++] = tracker.run(300);
    }
    EXPECT_GE(final_power[0], final_power[1] - 1e-9);
}

TEST(PerturbObserve, TracksMovingIrradiance)
{
    Rig rig;
    rig.converter.setRatio(2.0);
    PerturbObserveTracker tracker(rig.array, rig.converter,
                                  midLoad(rig.array));
    tracker.run(150);
    // Clouds roll in.
    rig.array.setEnvironment({400.0, 28.0});
    const double p = tracker.run(150);
    const double pmpp = pv::findMpp(rig.array).power;
    EXPECT_GT(p, 0.85 * pmpp);
    EXPECT_LE(p, pmpp + 1e-6);
}

TEST(PerturbObserve, DarkPanelReportsZero)
{
    Rig rig;
    rig.array.setEnvironment({0.0, 25.0});
    PerturbObserveTracker tracker(rig.array, rig.converter, 2.0);
    EXPECT_DOUBLE_EQ(tracker.run(20), 0.0);
}

TEST(PerturbObserve, CountsFlipsWhileHunting)
{
    Rig rig;
    rig.converter.setRatio(2.0);
    PerturbObserveTracker tracker(rig.array, rig.converter,
                                  midLoad(rig.array));
    tracker.run(200);
    // Once settled, the tracker oscillates: flips must accumulate.
    EXPECT_GT(tracker.directionFlips(), 3);
    EXPECT_EQ(tracker.iterations(), 200);
}

TEST(PerturbObserve, LoadChangeReprimesTracking)
{
    Rig rig;
    rig.converter.setRatio(2.0);
    PerturbObserveTracker tracker(rig.array, rig.converter,
                                  midLoad(rig.array));
    tracker.run(150);
    tracker.setLoad(midLoad(rig.array) * 0.6); // chip sped up
    const double p = tracker.run(150);
    EXPECT_GT(p, 0.85 * pv::findMpp(rig.array).power);
}

TEST(PerturbObserve, SurvivesSensorNoise)
{
    Rig rig;
    rig.converter.setRatio(1.2);
    power::IvSensor noisy(0.0, 0.0, 0.005, 11);
    PerturbObserveTracker tracker(rig.array, rig.converter,
                                  midLoad(rig.array), noisy);
    const double p = tracker.run(400);
    EXPECT_GT(p, 0.85 * pv::findMpp(rig.array).power);
}

} // namespace
} // namespace solarcore::core
