/**
 * @file
 * Edge-case tests for the controller and simulation configuration
 * surface: converter-ratio limits, saturation behaviour, and the
 * interaction matrix of the optional model knobs.
 */

#include <gtest/gtest.h>

#include "core/solarcore.hpp"

namespace solarcore::core {
namespace {

TEST(ControllerEdge, ConverterRatioStaysInRange)
{
    // Across a supply ramp the rail-pinning ratio must stay inside the
    // converter's [kMin, kMax] window.
    const auto module = pv::buildBp3180n();
    pv::PvArray array(module, 1, 1, {300.0, 25.0});
    cpu::MultiCoreChip chip(cpu::defaultChipConfig(),
                            cpu::DvfsTable::paperDefault(),
                            cpu::EnergyParams{},
                            workload::workloadSet(workload::WorkloadId::L2),
                            1);
    TprOptAdapter adapter;
    SolarCoreController ctl(array, chip, adapter);
    chip.gateAll();
    for (double g = 300.0; g <= 1000.0; g += 175.0) {
        array.setEnvironment({g, 30.0});
        ASSERT_TRUE(ctl.track().solarViable);
        EXPECT_GE(ctl.converter().ratio(), ctl.converter().kMin());
        EXPECT_LE(ctl.converter().ratio(), ctl.converter().kMax());
    }
}

TEST(ControllerEdge, OversuppliedChipSaturatesAtMax)
{
    // Three parallel strings under full sun exceed any chip demand:
    // the climb must stop with every core flat out, not spin.
    const auto module = pv::buildBp3180n();
    pv::PvArray array(module, 1, 3, {1000.0, 25.0});
    cpu::MultiCoreChip chip(cpu::defaultChipConfig(),
                            cpu::DvfsTable::paperDefault(),
                            cpu::EnergyParams{},
                            workload::workloadSet(workload::WorkloadId::M2),
                            1);
    TprOptAdapter adapter;
    SolarCoreController ctl(array, chip, adapter);
    chip.gateAll();
    const auto res = ctl.track();
    ASSERT_TRUE(res.solarViable);
    for (int i = 0; i < chip.numCores(); ++i) {
        EXPECT_FALSE(chip.core(i).gated()) << i;
        EXPECT_EQ(chip.core(i).level(), chip.dvfs().maxLevel()) << i;
    }
    EXPECT_EQ(res.stepsUp, 48);
}

TEST(ControllerEdge, TrackIdempotentUnderStaticConditions)
{
    // A second track under unchanged conditions must not move the
    // chip by more than one notch worth of power.
    const auto module = pv::buildBp3180n();
    pv::PvArray array(module, 1, 1, {750.0, 30.0});
    cpu::MultiCoreChip chip(cpu::defaultChipConfig(),
                            cpu::DvfsTable::paperDefault(),
                            cpu::EnergyParams{},
                            workload::workloadSet(workload::WorkloadId::L1),
                            1);
    TprOptAdapter adapter;
    SolarCoreController ctl(array, chip, adapter);
    chip.gateAll();
    ASSERT_TRUE(ctl.track().solarViable);
    const double first = chip.totalPower();
    ASSERT_TRUE(ctl.track().solarViable);
    EXPECT_NEAR(chip.totalPower(), first, 5.0);
}

/** The optional model knobs must compose without breaking invariants. */
class KnobMatrix
    : public ::testing::TestWithParam<std::tuple<bool, bool, int>>
{
};

TEST_P(KnobMatrix, DayInvariantsHoldUnderAllKnobs)
{
    const auto [pcpg, rc_thermal, dvfs_levels] = GetParam();
    const auto module = pv::buildBp3180n();
    const auto trace = solar::generateDayTrace(solar::SiteId::CO,
                                               solar::Month::Jul, 2);
    SimConfig cfg;
    cfg.dtSeconds = 60.0;
    cfg.pcpg = pcpg;
    cfg.rcThermal = rc_thermal;
    cfg.dvfsLevels = dvfs_levels;
    cfg.recordTimeline = true;
    const auto r = simulateDay(module, trace, workload::WorkloadId::HM2,
                               cfg);
    EXPECT_LE(r.utilization, 1.0);
    EXPECT_GT(r.solarEnergyWh, 0.0);
    EXPECT_GT(r.solarInstructions, 0.0);
    for (const auto &p : r.timeline) {
        if (p.onSolar) {
            ASSERT_LE(p.consumedW, p.budgetW * 1.001);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Matrix, KnobMatrix,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Bool(),
                                            ::testing::Values(3, 6, 21)));

} // namespace
} // namespace solarcore::core
