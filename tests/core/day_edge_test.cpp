/**
 * @file
 * Degenerate-day edge cases: a fully dark trace must flow through
 * every day-simulation entry point without NaNs, negative energies or
 * spurious solar accounting.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "core/simulation.hpp"

namespace solarcore::core {
namespace {

solar::SolarTrace
darkTrace()
{
    std::vector<solar::TracePoint> points;
    for (double m = solar::kDayStartMinute; m <= solar::kDayEndMinute;
         m += 10.0)
        points.push_back({m, 0.0, 15.0});
    return solar::SolarTrace(std::move(points), 10.0);
}

SimConfig
fastConfig()
{
    SimConfig cfg;
    cfg.dtSeconds = 60.0;
    return cfg;
}

TEST(DarkDay, TrackedDayRunsEntirelyOnGrid)
{
    const auto module = pv::buildBp3180n();
    const auto r = simulateDay(module, darkTrace(),
                               workload::WorkloadId::HM2, fastConfig());
    EXPECT_DOUBLE_EQ(r.mppEnergyWh, 0.0);
    EXPECT_DOUBLE_EQ(r.solarEnergyWh, 0.0);
    EXPECT_DOUBLE_EQ(r.utilization, 0.0);
    EXPECT_DOUBLE_EQ(r.effectiveFraction, 0.0);
    EXPECT_DOUBLE_EQ(r.solarInstructions, 0.0);
    EXPECT_EQ(r.transferCount, 0);
    // The grid keeps the chip running: work still retires.
    EXPECT_GT(r.gridEnergyWh, 0.0);
    EXPECT_GT(r.totalInstructions, 0.0);
    EXPECT_TRUE(std::isfinite(r.avgTrackingError));
}

TEST(DarkDay, FixedPowerDayRunsEntirelyOnGrid)
{
    const auto module = pv::buildBp3180n();
    auto cfg = fastConfig();
    cfg.policy = PolicyKind::FixedPower;
    const auto r = simulateDay(module, darkTrace(),
                               workload::WorkloadId::L1, cfg);
    EXPECT_DOUBLE_EQ(r.solarEnergyWh, 0.0);
    EXPECT_DOUBLE_EQ(r.effectiveFraction, 0.0);
    EXPECT_GT(r.totalInstructions, 0.0);
}

TEST(DarkDay, HybridBufferNeverChargesAndNothingGoesGreen)
{
    const auto module = pv::buildBp3180n();
    const auto r = simulateHybridDay(module, darkTrace(),
                                     workload::WorkloadId::HM2, 25.0,
                                     fastConfig());
    EXPECT_DOUBLE_EQ(r.bufferedWh, 0.0);
    // greenEnergyWh is defined as chipEnergy - gridEnergy. The grid
    // ledger samples chip power once per step while the chip
    // integrates through intra-step phase changes, so a dark day shows
    // only a sub-0.1% accounting residue -- never material green
    // energy.
    EXPECT_NEAR(r.greenFraction, 0.0, 1e-3);
    EXPECT_LT(std::abs(r.greenEnergyWh), 1e-3 * r.day.chipEnergyWh);
    EXPECT_DOUBLE_EQ(r.day.solarEnergyWh, 0.0);
    EXPECT_GT(r.day.gridEnergyWh, 0.0);
    EXPECT_GT(r.day.totalInstructions, 0.0);
}

TEST(DarkDay, BatteryBaselineIdlesAtZeroBudget)
{
    const auto module = pv::buildBp3180n();
    const auto r = simulateBatteryDay(module, darkTrace(),
                                      workload::WorkloadId::HM2, 0.92,
                                      fastConfig());
    // Nothing harvested, nothing stored: no work retires. The chip
    // still parks at its all-gated leakage floor, so consumption is a
    // small positive number rather than exactly zero.
    EXPECT_DOUBLE_EQ(r.mppEnergyWh, 0.0);
    EXPECT_DOUBLE_EQ(r.budgetW, 0.0);
    EXPECT_GT(r.consumedWh, 0.0);
    EXPECT_LT(r.consumedWh, 10.0);
    EXPECT_DOUBLE_EQ(r.instructions, 0.0);
    EXPECT_DOUBLE_EQ(r.utilization, 0.0);
}

TEST(DayEdge, MinimumDeratingStillProducesAViableDay)
{
    // The de-rating factor's lower extreme (a tiny but valid transfer
    // ratio through the battery path) must shrink, not zero, the day.
    const auto module = pv::buildBp3180n();
    const auto trace = solar::generateDayTrace(solar::SiteId::AZ,
                                               solar::Month::Jul, 1);
    const auto tiny = simulateBatteryDay(module, trace,
                                         workload::WorkloadId::HM2, 0.05,
                                         fastConfig());
    const auto high = simulateBatteryDay(module, trace,
                                         workload::WorkloadId::HM2, 0.92,
                                         fastConfig());
    EXPECT_GT(tiny.budgetW, 0.0);
    EXPECT_GT(tiny.consumedWh, 0.0);
    EXPECT_LT(tiny.consumedWh, high.consumedWh);
    EXPECT_LE(tiny.consumedWh, tiny.deratingFactor * tiny.mppEnergyWh +
                                   1e-6);
}

TEST(DayEdge, HybridZeroCapacityMatchesPlainDayOnDarkTrace)
{
    const auto module = pv::buildBp3180n();
    const auto plain = simulateDay(module, darkTrace(),
                                   workload::WorkloadId::HM2,
                                   fastConfig());
    const auto hybrid = simulateHybridDay(module, darkTrace(),
                                          workload::WorkloadId::HM2, 0.0,
                                          fastConfig());
    EXPECT_DOUBLE_EQ(hybrid.day.gridEnergyWh, plain.gridEnergyWh);
    EXPECT_DOUBLE_EQ(hybrid.day.totalInstructions,
                     plain.totalInstructions);
    EXPECT_DOUBLE_EQ(hybrid.greenFraction, 0.0);
}

} // namespace
} // namespace solarcore::core
