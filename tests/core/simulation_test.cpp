/**
 * @file
 * Tests for the full-day simulation driver: conservation laws, metric
 * ranges, determinism, and the paper's qualitative policy ordering.
 */

#include <gtest/gtest.h>

#include "core/simulation.hpp"
#include "power/battery.hpp"

namespace solarcore::core {
namespace {

SimConfig
fastConfig(PolicyKind policy = PolicyKind::MpptOpt)
{
    SimConfig cfg;
    cfg.policy = policy;
    cfg.dtSeconds = 60.0; // coarse step keeps tests quick
    return cfg;
}

DayResult
run(PolicyKind policy, workload::WorkloadId wl = workload::WorkloadId::HM2,
    solar::SiteId site = solar::SiteId::AZ,
    solar::Month month = solar::Month::Jan)
{
    const auto module = pv::buildBp3180n();
    const auto trace = solar::generateDayTrace(site, month, 1);
    return simulateDay(module, trace, wl, fastConfig(policy));
}

TEST(Simulation, MetricRanges)
{
    const auto r = run(PolicyKind::MpptOpt);
    EXPECT_GT(r.mppEnergyWh, 0.0);
    EXPECT_GT(r.solarEnergyWh, 0.0);
    EXPECT_LE(r.utilization, 1.0);
    EXPECT_GE(r.utilization, 0.0);
    EXPECT_GE(r.effectiveFraction, 0.0);
    EXPECT_LE(r.effectiveFraction, 1.0);
    EXPECT_GT(r.solarInstructions, 0.0);
    EXPECT_GE(r.totalInstructions, r.solarInstructions);
    EXPECT_GE(r.avgTrackingError, 0.0);
    EXPECT_LT(r.avgTrackingError, 0.5);
}

TEST(Simulation, SolarConsumptionNeverExceedsBudget)
{
    const auto module = pv::buildBp3180n();
    const auto trace = solar::generateDayTrace(solar::SiteId::AZ,
                                               solar::Month::Jul, 2);
    auto cfg = fastConfig(PolicyKind::MpptOpt);
    cfg.recordTimeline = true;
    const auto r = simulateDay(module, trace, workload::WorkloadId::H1, cfg);
    ASSERT_FALSE(r.timeline.empty());
    for (const auto &p : r.timeline) {
        if (p.onSolar) {
            EXPECT_LE(p.consumedW, p.budgetW * 1.001)
                << "minute " << p.minute;
        }
    }
}

TEST(Simulation, EnergyLedgerConsistent)
{
    // Solar + grid ledger must equal what the chip consumed.
    const auto module = pv::buildBp3180n();
    const auto trace = solar::generateDayTrace(solar::SiteId::CO,
                                               solar::Month::Apr, 3);
    auto cfg = fastConfig(PolicyKind::MpptRr);
    const auto r = simulateDay(module, trace, workload::WorkloadId::M2, cfg);
    // The ledger samples power at the start of each step while the
    // chip integrates through phase changes, so agreement is to the
    // step discretization, not exact.
    EXPECT_NEAR(r.solarEnergyWh + r.gridEnergyWh, r.chipEnergyWh,
                5e-3 * r.chipEnergyWh);
}

TEST(Simulation, WinterDawnFallsBackToGrid)
{
    // CO January sunrise is well after 7:30: the first minutes of the
    // window must be grid-powered.
    const auto r = run(PolicyKind::MpptOpt, workload::WorkloadId::M2,
                       solar::SiteId::CO, solar::Month::Jan);
    EXPECT_GT(r.gridEnergyWh, 0.0);
    EXPECT_LT(r.effectiveFraction, 1.0);
}

TEST(Simulation, Deterministic)
{
    const auto a = run(PolicyKind::MpptOpt);
    const auto b = run(PolicyKind::MpptOpt);
    EXPECT_DOUBLE_EQ(a.solarEnergyWh, b.solarEnergyWh);
    EXPECT_DOUBLE_EQ(a.solarInstructions, b.solarInstructions);
    EXPECT_DOUBLE_EQ(a.avgTrackingError, b.avgTrackingError);
}

TEST(Simulation, PolicyOrderingOnHeterogeneousWorkload)
{
    // Paper Section 6.4: MPPT&Opt > MPPT&RR > MPPT&IC in PTP.
    const auto opt = run(PolicyKind::MpptOpt, workload::WorkloadId::HM2);
    const auto rr = run(PolicyKind::MpptRr, workload::WorkloadId::HM2);
    const auto ic = run(PolicyKind::MpptIc, workload::WorkloadId::HM2);
    EXPECT_GT(opt.solarInstructions, rr.solarInstructions);
    EXPECT_GT(rr.solarInstructions, ic.solarInstructions);
}

TEST(Simulation, ThreadMotionRecoversIcPerformance)
{
    // Extension: migrating efficient programs onto the boosted cores
    // lets the concentration policy commit more instructions.
    const auto ic = run(PolicyKind::MpptIc, workload::WorkloadId::ML2);
    const auto tm = run(PolicyKind::MpptIcMotion,
                        workload::WorkloadId::ML2);
    EXPECT_GT(tm.solarInstructions, 1.05 * ic.solarInstructions);
    // Still at most Opt-level performance.
    const auto opt = run(PolicyKind::MpptOpt, workload::WorkloadId::ML2);
    EXPECT_LT(tm.solarInstructions, 1.05 * opt.solarInstructions);
}

TEST(Simulation, OptCloseToRoundRobinOnHomogeneousWorkload)
{
    // With 8 copies of one program the TPR heuristic degenerates to
    // near-round-robin; the gap should be small.
    const auto opt = run(PolicyKind::MpptOpt, workload::WorkloadId::M1);
    const auto rr = run(PolicyKind::MpptRr, workload::WorkloadId::M1);
    EXPECT_NEAR(opt.solarInstructions / rr.solarInstructions, 1.0, 0.08);
}

TEST(Simulation, FixedPowerWorseThanSolarCore)
{
    // Paper Section 6.2: even the best fixed budget reaches at most
    // ~70% of SolarCore's energy and PTP.
    const auto sc = run(PolicyKind::MpptOpt);
    for (double budget : {25.0, 50.0, 75.0, 100.0}) {
        const auto module = pv::buildBp3180n();
        const auto trace =
            solar::generateDayTrace(solar::SiteId::AZ, solar::Month::Jan, 1);
        auto cfg = fastConfig(PolicyKind::FixedPower);
        cfg.fixedBudgetW = budget;
        const auto r =
            simulateDay(module, trace, workload::WorkloadId::HM2, cfg);
        EXPECT_LT(r.solarEnergyWh, 0.75 * sc.solarEnergyWh) << budget;
        EXPECT_LT(r.solarInstructions, 0.75 * sc.solarInstructions)
            << budget;
    }
}

TEST(Simulation, HigherFixedBudgetShortensEffectiveDuration)
{
    // Paper Figure 15: the duration above threshold shrinks with the
    // budget.
    const auto module = pv::buildBp3180n();
    const auto trace = solar::generateDayTrace(solar::SiteId::AZ,
                                               solar::Month::Oct, 1);
    double prev = 2.0;
    for (double budget : {25.0, 50.0, 75.0, 100.0}) {
        auto cfg = fastConfig(PolicyKind::FixedPower);
        cfg.fixedBudgetW = budget;
        const auto r =
            simulateDay(module, trace, workload::WorkloadId::M1, cfg);
        EXPECT_LE(r.effectiveFraction, prev + 1e-9) << budget;
        prev = r.effectiveFraction;
    }
}

TEST(Simulation, SunnierSiteHigherUtilization)
{
    const auto az = run(PolicyKind::MpptOpt, workload::WorkloadId::HM2,
                        solar::SiteId::AZ, solar::Month::Oct);
    const auto tn = run(PolicyKind::MpptOpt, workload::WorkloadId::HM2,
                        solar::SiteId::TN, solar::Month::Oct);
    EXPECT_GT(az.utilization, tn.utilization);
    EXPECT_GT(az.effectiveFraction, tn.effectiveFraction);
}

TEST(Simulation, TimelineOnlyWhenRequested)
{
    const auto module = pv::buildBp3180n();
    const auto trace = solar::generateDayTrace(solar::SiteId::AZ,
                                               solar::Month::Jan, 1);
    auto cfg = fastConfig(PolicyKind::MpptOpt);
    cfg.recordTimeline = false;
    EXPECT_TRUE(simulateDay(module, trace, workload::WorkloadId::L1, cfg)
                    .timeline.empty());
    cfg.recordTimeline = true;
    const auto r = simulateDay(module, trace, workload::WorkloadId::L1, cfg);
    EXPECT_GE(r.timeline.size(), 590u);
    EXPECT_LE(r.timeline.size(), 610u);
}

TEST(BatterySim, UpperBoundBeatsLowerBound)
{
    const auto module = pv::buildBp3180n();
    const auto trace = solar::generateDayTrace(solar::SiteId::AZ,
                                               solar::Month::Jan, 1);
    const auto cfg = fastConfig();
    const auto bu = simulateBatteryDay(module, trace,
                                       workload::WorkloadId::HM2,
                                       power::kBatteryUpperBound, cfg);
    const auto bl = simulateBatteryDay(module, trace,
                                       workload::WorkloadId::HM2,
                                       power::kBatteryLowerBound, cfg);
    EXPECT_GT(bu.instructions, bl.instructions);
    EXPECT_GT(bu.budgetW, bl.budgetW);
    EXPECT_NEAR(bu.budgetW / bl.budgetW, 0.92 / 0.81, 1e-9);
}

TEST(BatterySim, UtilizationBoundedByDerating)
{
    const auto module = pv::buildBp3180n();
    const auto trace = solar::generateDayTrace(solar::SiteId::CO,
                                               solar::Month::Jul, 1);
    const auto cfg = fastConfig();
    const auto b = simulateBatteryDay(module, trace,
                                      workload::WorkloadId::L2, 0.92, cfg);
    EXPECT_LE(b.utilization, 0.92 + 1e-9);
    EXPECT_GT(b.utilization, 0.5);
}

TEST(BatterySim, SolarCoreWithinBatteryBand)
{
    // Paper Figure 21: SolarCore's PTP sits between the battery
    // bounds (just below Battery-U). Allow a generous band: above
    // 80% of Battery-L, below Battery-U.
    const auto module = pv::buildBp3180n();
    const auto trace = solar::generateDayTrace(solar::SiteId::AZ,
                                               solar::Month::Jul, 1);
    const auto cfg = fastConfig();
    const auto sc = simulateDay(module, trace, workload::WorkloadId::HM2,
                                fastConfig(PolicyKind::MpptOpt));
    const auto bu = simulateBatteryDay(module, trace,
                                       workload::WorkloadId::HM2,
                                       power::kBatteryUpperBound, cfg);
    const auto bl = simulateBatteryDay(module, trace,
                                       workload::WorkloadId::HM2,
                                       power::kBatteryLowerBound, cfg);
    EXPECT_GT(sc.solarInstructions, 0.8 * bl.instructions);
    EXPECT_LT(sc.solarInstructions, 1.05 * bu.instructions);
}

} // namespace
} // namespace solarcore::core
