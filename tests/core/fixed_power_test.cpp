/**
 * @file
 * Tests for the fixed-budget allocation optimizer, including a
 * cross-check of the DP against exhaustive search.
 */

#include <gtest/gtest.h>

#include "core/fixed_power.hpp"
#include "workload/multiprogram.hpp"

namespace solarcore::core {
namespace {

cpu::MultiCoreChip
makeChip(workload::WorkloadId id, int cores = 8)
{
    auto cfg = cpu::defaultChipConfig();
    cfg.numCores = cores;
    auto profiles = workload::workloadSet(id);
    profiles.resize(static_cast<std::size_t>(cores),
                    profiles.empty() ? cpu::BenchmarkProfile{} : profiles[0]);
    return cpu::MultiCoreChip(cfg, cpu::DvfsTable::paperDefault(),
                              cpu::EnergyParams{}, std::move(profiles), 42);
}

TEST(FixedPower, RespectsBudget)
{
    auto chip = makeChip(workload::WorkloadId::HM2);
    for (double budget : {10.0, 30.0, 60.0, 100.0, 150.0, 300.0}) {
        const auto alloc = optimizeAllocation(chip, budget);
        ASSERT_TRUE(alloc.feasible) << budget;
        EXPECT_LE(alloc.powerW, budget + 1e-9) << budget;
    }
}

TEST(FixedPower, ThroughputMonotoneInBudget)
{
    auto chip = makeChip(workload::WorkloadId::M2);
    double prev = -1.0;
    for (double budget : {10.0, 25.0, 50.0, 75.0, 100.0, 150.0, 250.0}) {
        const auto alloc = optimizeAllocation(chip, budget);
        ASSERT_TRUE(alloc.feasible);
        EXPECT_GE(alloc.throughput, prev - 1e-6) << budget;
        prev = alloc.throughput;
    }
}

TEST(FixedPower, HugeBudgetRunsEverythingFlatOut)
{
    auto chip = makeChip(workload::WorkloadId::L1);
    const auto alloc = optimizeAllocation(chip, 1000.0);
    ASSERT_TRUE(alloc.feasible);
    for (const auto &s : alloc.settings) {
        EXPECT_FALSE(s.gated);
        EXPECT_EQ(s.level, chip.dvfs().maxLevel());
    }
}

TEST(FixedPower, TinyBudgetGatesEverything)
{
    auto chip = makeChip(workload::WorkloadId::H1);
    const auto alloc = optimizeAllocation(chip, 1.0);
    ASSERT_TRUE(alloc.feasible);
    for (const auto &s : alloc.settings)
        EXPECT_TRUE(s.gated);
    EXPECT_DOUBLE_EQ(alloc.throughput, 0.0);
}

TEST(FixedPower, ZeroBudgetInfeasible)
{
    auto chip = makeChip(workload::WorkloadId::H1);
    EXPECT_FALSE(optimizeAllocation(chip, 0.0).feasible);
    EXPECT_FALSE(optimizeAllocation(chip, -5.0).feasible);
}

TEST(FixedPower, ApplyAllocationSetsChipState)
{
    auto chip = makeChip(workload::WorkloadId::HM1);
    const auto alloc = optimizeAllocation(chip, 70.0);
    ASSERT_TRUE(alloc.feasible);
    applyAllocation(chip, alloc);
    EXPECT_NEAR(chip.totalPower(), alloc.powerW, 1e-9);
    EXPECT_NEAR(chip.totalThroughput(), alloc.throughput,
                alloc.throughput * 1e-12);
}

TEST(FixedPower, DpMatchesBruteForceSmallChip)
{
    // 4 cores, 7 choices each: 2401 combinations -- exact comparison.
    auto chip = makeChip(workload::WorkloadId::ML2, 4);
    for (double budget : {15.0, 30.0, 45.0, 70.0, 120.0}) {
        const auto dp = optimizeAllocation(chip, budget, 0.01);
        const auto bf = bruteForceAllocation(chip, budget);
        ASSERT_EQ(dp.feasible, bf.feasible) << budget;
        if (!dp.feasible)
            continue;
        // The DP rounds power up to its grid, so it may forgo a
        // combination the exact search finds; with a fine grid the
        // throughput gap is bounded by one notch.
        EXPECT_LE(dp.throughput, bf.throughput + 1e-6) << budget;
        EXPECT_GE(dp.throughput, bf.throughput * 0.98) << budget;
    }
}

TEST(FixedPower, DpMatchesBruteForceHeterogeneous)
{
    auto chip = makeChip(workload::WorkloadId::HM2, 4);
    const auto dp = optimizeAllocation(chip, 55.0, 0.01);
    const auto bf = bruteForceAllocation(chip, 55.0);
    ASSERT_TRUE(dp.feasible && bf.feasible);
    EXPECT_GE(dp.throughput, bf.throughput * 0.98);
}

TEST(FixedPower, PrefersEfficientCoresUnderTightBudget)
{
    // ML1 = 4x gcc (moderate EPI) + 4x mesa (low EPI). With a budget
    // that cannot raise everyone, the optimizer must give mesa cores
    // at least as much frequency as gcc cores on average.
    auto chip = makeChip(workload::WorkloadId::ML1);
    const auto alloc = optimizeAllocation(chip, 60.0);
    ASSERT_TRUE(alloc.feasible);
    double gcc_levels = 0.0;
    double mesa_levels = 0.0;
    for (int i = 0; i < 4; ++i) {
        gcc_levels += alloc.settings[static_cast<std::size_t>(i)].gated
            ? -1
            : alloc.settings[static_cast<std::size_t>(i)].level;
        mesa_levels += alloc.settings[static_cast<std::size_t>(i + 4)].gated
            ? -1
            : alloc.settings[static_cast<std::size_t>(i + 4)].level;
    }
    EXPECT_GE(mesa_levels, gcc_levels);
}

} // namespace
} // namespace solarcore::core
