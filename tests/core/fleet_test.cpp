/**
 * @file
 * Tests for the fleet-level simulation.
 */

#include <gtest/gtest.h>

#include "core/fleet.hpp"

namespace solarcore::core {
namespace {

NodeSpec
node(solar::SiteId site, std::uint64_t seed = 1)
{
    NodeSpec spec;
    spec.site = site;
    spec.month = solar::Month::Apr;
    spec.weatherSeed = seed;
    spec.workload = workload::WorkloadId::ML2;
    spec.config.dtSeconds = 60.0;
    return spec;
}

TEST(Fleet, AggregatesMatchNodeSums)
{
    const auto module = pv::buildBp3180n();
    const std::vector<NodeSpec> specs = {node(solar::SiteId::AZ),
                                         node(solar::SiteId::NC)};
    const auto fleet = simulateFleetDay(module, specs);

    ASSERT_EQ(fleet.nodes.size(), 2u);
    double solar = 0.0;
    double grid = 0.0;
    double instr = 0.0;
    for (const auto &r : fleet.nodes) {
        solar += r.solarEnergyWh;
        grid += r.gridEnergyWh;
        instr += r.solarInstructions;
    }
    EXPECT_NEAR(fleet.totalSolarWh, solar, 1e-9);
    EXPECT_NEAR(fleet.totalGridWh, grid, 1e-9);
    EXPECT_NEAR(fleet.totalGreenInstructions, instr, 1e-3);
    EXPECT_GT(fleet.greenFraction, 0.0);
    EXPECT_LE(fleet.greenFraction, 1.0);
    EXPECT_LE(fleet.fleetUtilization, 1.0);
}

TEST(Fleet, DiversitySmoothsGreenSupply)
{
    const auto module = pv::buildBp3180n();
    const std::vector<NodeSpec> specs = {
        node(solar::SiteId::AZ, 1), node(solar::SiteId::CO, 2),
        node(solar::SiteId::NC, 3), node(solar::SiteId::TN, 4)};
    const auto fleet = simulateFleetDay(module, specs);
    // The fleet average must fluctuate less than a single node.
    EXPECT_LT(fleet.fleetCov, fleet.singleNodeCov);
}

TEST(Fleet, SingleNodeFleetDegeneratesToDay)
{
    const auto module = pv::buildBp3180n();
    const auto spec = node(solar::SiteId::AZ);
    const auto fleet = simulateFleetDay(module, {spec});
    EXPECT_NEAR(fleet.singleNodeCov, fleet.fleetCov, 1e-12);
    EXPECT_NEAR(fleet.totalSolarWh, fleet.nodes[0].solarEnergyWh, 1e-12);

    const auto trace = solar::generateDayTrace(spec.site, spec.month,
                                               spec.weatherSeed);
    SimConfig cfg = spec.config;
    const auto day = simulateDay(module, trace, spec.workload, cfg);
    EXPECT_NEAR(fleet.nodes[0].solarEnergyWh, day.solarEnergyWh, 1e-9);
}

TEST(Fleet, MixedPoliciesPerNode)
{
    const auto module = pv::buildBp3180n();
    auto opt = node(solar::SiteId::AZ);
    auto fixed = node(solar::SiteId::AZ);
    fixed.config.policy = PolicyKind::FixedPower;
    fixed.config.fixedBudgetW = 50.0;
    const auto fleet = simulateFleetDay(module, {opt, fixed});
    // The tracking node must out-harvest the fixed one.
    EXPECT_GT(fleet.nodes[0].solarEnergyWh, fleet.nodes[1].solarEnergyWh);
}

} // namespace
} // namespace solarcore::core
