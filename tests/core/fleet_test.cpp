/**
 * @file
 * Tests for the fleet-level simulation.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "core/carbon.hpp"
#include "core/fleet.hpp"

namespace solarcore::core {
namespace {

NodeSpec
node(solar::SiteId site, std::uint64_t seed = 1)
{
    NodeSpec spec;
    spec.site = site;
    spec.month = solar::Month::Apr;
    spec.weatherSeed = seed;
    spec.workload = workload::WorkloadId::ML2;
    spec.config.dtSeconds = 60.0;
    return spec;
}

TEST(Fleet, AggregatesMatchNodeSums)
{
    const auto module = pv::buildBp3180n();
    const std::vector<NodeSpec> specs = {node(solar::SiteId::AZ),
                                         node(solar::SiteId::NC)};
    const auto fleet = simulateFleetDay(module, specs);

    ASSERT_EQ(fleet.nodes.size(), 2u);
    double solar = 0.0;
    double grid = 0.0;
    double instr = 0.0;
    for (const auto &r : fleet.nodes) {
        solar += r.solarEnergyWh;
        grid += r.gridEnergyWh;
        instr += r.solarInstructions;
    }
    EXPECT_NEAR(fleet.totalSolarWh, solar, 1e-9);
    EXPECT_NEAR(fleet.totalGridWh, grid, 1e-9);
    EXPECT_NEAR(fleet.totalGreenInstructions, instr, 1e-3);
    EXPECT_GT(fleet.greenFraction, 0.0);
    EXPECT_LE(fleet.greenFraction, 1.0);
    EXPECT_LE(fleet.fleetUtilization, 1.0);
}

TEST(Fleet, DiversitySmoothsGreenSupply)
{
    const auto module = pv::buildBp3180n();
    const std::vector<NodeSpec> specs = {
        node(solar::SiteId::AZ, 1), node(solar::SiteId::CO, 2),
        node(solar::SiteId::NC, 3), node(solar::SiteId::TN, 4)};
    const auto fleet = simulateFleetDay(module, specs);
    // The fleet average must fluctuate less than a single node.
    EXPECT_LT(fleet.fleetCov, fleet.singleNodeCov);
}

TEST(Fleet, SingleNodeFleetDegeneratesToDay)
{
    const auto module = pv::buildBp3180n();
    const auto spec = node(solar::SiteId::AZ);
    const auto fleet = simulateFleetDay(module, {spec});
    EXPECT_NEAR(fleet.singleNodeCov, fleet.fleetCov, 1e-12);
    EXPECT_NEAR(fleet.totalSolarWh, fleet.nodes[0].solarEnergyWh, 1e-12);

    const auto trace = solar::generateDayTrace(spec.site, spec.month,
                                               spec.weatherSeed);
    SimConfig cfg = spec.config;
    const auto day = simulateDay(module, trace, spec.workload, cfg);
    EXPECT_NEAR(fleet.nodes[0].solarEnergyWh, day.solarEnergyWh, 1e-9);
}

FleetGroupEnergy
group(double count, double mpp, double solar, double grid, double chip,
      double solar_instr, double total_instr)
{
    FleetGroupEnergy g;
    g.nodeCount = count;
    g.mppEnergyWh = mpp;
    g.solarEnergyWh = solar;
    g.gridEnergyWh = grid;
    g.chipEnergyWh = chip;
    g.solarInstructions = solar_instr;
    g.totalInstructions = total_instr;
    return g;
}

TEST(FleetAggregate, WeightedHandSumIdentity)
{
    const std::vector<FleetGroupEnergy> groups = {
        group(100.0, 900.0, 800.0, 120.0, 920.0, 2.0e12, 2.5e12),
        group(40.0, 700.0, 300.0, 400.0, 700.0, 0.9e12, 2.1e12),
        group(1.0, 0.125, 0.0625, 0.03125, 0.09375, 1.0e9, 3.0e9)};
    const auto t = aggregateFleet(groups);

    // Same group order, same expression, so the sums are exact.
    EXPECT_DOUBLE_EQ(t.nodes, 141.0);
    EXPECT_DOUBLE_EQ(t.mppEnergyWh,
                     100.0 * 900.0 + 40.0 * 700.0 + 0.125);
    EXPECT_DOUBLE_EQ(t.solarEnergyWh,
                     100.0 * 800.0 + 40.0 * 300.0 + 0.0625);
    EXPECT_DOUBLE_EQ(t.gridEnergyWh,
                     100.0 * 120.0 + 40.0 * 400.0 + 0.03125);
    EXPECT_DOUBLE_EQ(t.chipEnergyWh,
                     100.0 * 920.0 + 40.0 * 700.0 + 0.09375);
    EXPECT_DOUBLE_EQ(t.solarInstructions,
                     100.0 * 2.0e12 + 40.0 * 0.9e12 + 1.0e9);
    EXPECT_DOUBLE_EQ(t.totalInstructions,
                     100.0 * 2.5e12 + 40.0 * 2.1e12 + 3.0e9);
    EXPECT_DOUBLE_EQ(t.fleetUtilization,
                     t.solarEnergyWh / t.mppEnergyWh);
    EXPECT_DOUBLE_EQ(t.greenFraction,
                     t.solarEnergyWh / (t.solarEnergyWh + t.gridEnergyWh));
}

TEST(FleetAggregate, GroupCountCollapsesDuplicates)
{
    // One group of N identical nodes must equal N count-1 groups:
    // the collapsed representation the planning service relies on.
    const auto g = group(1.0, 903.7, 811.3, 97.1, 842.9, 1.9e12, 2.4e12);
    auto collapsed = g;
    collapsed.nodeCount = 3.0;

    const auto one = aggregateFleet({collapsed});
    const auto many = aggregateFleet({g, g, g});
    EXPECT_DOUBLE_EQ(one.nodes, many.nodes);
    EXPECT_DOUBLE_EQ(one.mppEnergyWh, many.mppEnergyWh);
    EXPECT_DOUBLE_EQ(one.solarEnergyWh, many.solarEnergyWh);
    EXPECT_DOUBLE_EQ(one.gridEnergyWh, many.gridEnergyWh);
    EXPECT_DOUBLE_EQ(one.chipEnergyWh, many.chipEnergyWh);
    EXPECT_DOUBLE_EQ(one.fleetUtilization, many.fleetUtilization);
    EXPECT_DOUBLE_EQ(one.greenFraction, many.greenFraction);
}

TEST(FleetAggregate, EmptyAndDarkFleetsAreSafe)
{
    const auto empty = aggregateFleet({});
    EXPECT_DOUBLE_EQ(empty.nodes, 0.0);
    EXPECT_DOUBLE_EQ(empty.fleetUtilization, 0.0);
    EXPECT_DOUBLE_EQ(empty.greenFraction, 0.0);

    // All-grid group: no MPP energy, no solar -> both ratios must
    // come out 0 instead of dividing by zero.
    const auto dark =
        aggregateFleet({group(10.0, 0.0, 0.0, 500.0, 500.0, 0.0, 1e12)});
    EXPECT_DOUBLE_EQ(dark.fleetUtilization, 0.0);
    EXPECT_DOUBLE_EQ(dark.greenFraction, 0.0);
    EXPECT_DOUBLE_EQ(dark.gridEnergyWh, 5000.0);
}

TEST(FleetAggregate, MatchesSimulateFleetDayExactly)
{
    // The documented identity: per-node ledgers (count 1) through
    // aggregateFleet reproduce simulateFleetDay's totals bit-exactly.
    const auto module = pv::buildBp3180n();
    const std::vector<NodeSpec> specs = {node(solar::SiteId::AZ, 1),
                                         node(solar::SiteId::CO, 2),
                                         node(solar::SiteId::TN, 3)};
    const auto fleet = simulateFleetDay(module, specs);

    std::vector<FleetGroupEnergy> groups;
    for (const auto &r : fleet.nodes) {
        FleetGroupEnergy g;
        g.nodeCount = 1.0;
        g.mppEnergyWh = r.mppEnergyWh;
        g.solarEnergyWh = r.solarEnergyWh;
        g.gridEnergyWh = r.gridEnergyWh;
        g.chipEnergyWh = r.chipEnergyWh;
        g.solarInstructions = r.solarInstructions;
        g.totalInstructions = r.totalInstructions;
        groups.push_back(g);
    }
    const auto t = aggregateFleet(groups);
    EXPECT_DOUBLE_EQ(t.solarEnergyWh, fleet.totalSolarWh);
    EXPECT_DOUBLE_EQ(t.gridEnergyWh, fleet.totalGridWh);
    EXPECT_DOUBLE_EQ(t.fleetUtilization, fleet.fleetUtilization);
    EXPECT_DOUBLE_EQ(t.greenFraction, fleet.greenFraction);
}

TEST(FleetAggregate, GoldenFleetDayAnswer)
{
    // Committed end-to-end numbers for a 2-node AZ/Jul HM2 fleet at
    // dt=60 under the default economic context -- the serve daemon's
    // canonical demo query. A drift beyond 0.1% means the physics,
    // the aggregation or the accounting changed and every cached
    // serve answer with it.
    const auto module = pv::buildBp3180n();
    std::vector<NodeSpec> specs;
    for (std::uint64_t seed = 1; seed <= 2; ++seed) {
        NodeSpec spec;
        spec.site = solar::SiteId::AZ;
        spec.month = solar::Month::Jul;
        spec.weatherSeed = seed;
        spec.workload = workload::WorkloadId::HM2;
        spec.config.dtSeconds = 60.0;
        specs.push_back(spec);
    }
    const auto fleet = simulateFleetDay(module, specs);
    const auto report =
        assessEnergy(fleet.totalSolarWh, fleet.totalGridWh);

    auto near = [](double actual, double golden) {
        EXPECT_NEAR(actual, golden, std::abs(golden) * 1e-3);
    };
    near(fleet.totalSolarWh, 1441.7279076056002);
    near(fleet.totalGridWh, 313.28375290853364);
    near(fleet.fleetUtilization, 0.86934048231420058);
    near(fleet.greenFraction, 0.82149192512102365);
    near(report.co2AvoidedKgPerYear, 210.49227451041762);
    near(report.savingsUsdPerYear, 63.147682353125283);
    near(report.panelPaybackYears, 7.1261522708557292);
}

TEST(Fleet, MixedPoliciesPerNode)
{
    const auto module = pv::buildBp3180n();
    auto opt = node(solar::SiteId::AZ);
    auto fixed = node(solar::SiteId::AZ);
    fixed.config.policy = PolicyKind::FixedPower;
    fixed.config.fixedBudgetW = 50.0;
    const auto fleet = simulateFleetDay(module, {opt, fixed});
    // The tracking node must out-harvest the fixed one.
    EXPECT_GT(fleet.nodes[0].solarEnergyWh, fleet.nodes[1].solarEnergyWh);
}

} // namespace
} // namespace solarcore::core
