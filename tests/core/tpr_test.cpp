/**
 * @file
 * Tests for step candidates and throughput-power-ratio machinery.
 */

#include <gtest/gtest.h>

#include "core/tpr.hpp"
#include "workload/multiprogram.hpp"

namespace solarcore::core {
namespace {

cpu::MultiCoreChip
makeChip(workload::WorkloadId id = workload::WorkloadId::ML2)
{
    return cpu::MultiCoreChip(cpu::defaultChipConfig(),
                              cpu::DvfsTable::paperDefault(),
                              cpu::EnergyParams{},
                              workload::workloadSet(id), 42);
}

TEST(Step, UpFromMiddleLevel)
{
    auto chip = makeChip();
    chip.core(0).setLevel(2);
    const auto s = upStep(chip, 0);
    ASSERT_TRUE(s.valid);
    EXPECT_EQ(s.fromLevel, 2);
    EXPECT_EQ(s.toLevel, 3);
    EXPECT_FALSE(s.toGated);
    EXPECT_GT(s.deltaPowerW, 0.0);
    EXPECT_GT(s.deltaThroughput, 0.0);
}

TEST(Step, UpFromTopIsInvalid)
{
    auto chip = makeChip();
    chip.core(0).setLevel(chip.dvfs().maxLevel());
    EXPECT_FALSE(upStep(chip, 0).valid);
}

TEST(Step, UpFromGatedUngates)
{
    auto chip = makeChip();
    chip.core(0).setGated(true);
    const auto s = upStep(chip, 0);
    ASSERT_TRUE(s.valid);
    EXPECT_TRUE(s.fromGated);
    EXPECT_FALSE(s.toGated);
    EXPECT_EQ(s.toLevel, 0);
    EXPECT_GT(s.deltaPowerW, 0.0);
}

TEST(Step, DownFromBottomGates)
{
    auto chip = makeChip();
    chip.core(0).setLevel(0);
    const auto s = downStep(chip, 0);
    ASSERT_TRUE(s.valid);
    EXPECT_TRUE(s.toGated);
    EXPECT_LT(s.deltaPowerW, 0.0);
    EXPECT_LT(s.deltaThroughput, 0.0);
}

TEST(Step, DownFromGatedIsInvalid)
{
    auto chip = makeChip();
    chip.core(0).setGated(true);
    EXPECT_FALSE(downStep(chip, 0).valid);
}

TEST(Step, ApplyUpThenDownRestoresState)
{
    auto chip = makeChip();
    chip.core(2).setLevel(3);
    const auto before = chip.settings();
    const auto up = upStep(chip, 2);
    applyStep(chip, up);
    EXPECT_EQ(chip.core(2).level(), 4);
    const auto down = downStep(chip, 2);
    applyStep(chip, down);
    EXPECT_EQ(chip.settings()[2].level, before[2].level);
}

TEST(Step, UpDownDeltasAreSymmetric)
{
    auto chip = makeChip();
    chip.core(1).setLevel(2);
    const auto up = upStep(chip, 1);
    applyStep(chip, up);
    const auto down = downStep(chip, 1);
    EXPECT_NEAR(down.deltaPowerW, -up.deltaPowerW, 1e-9);
    EXPECT_NEAR(down.deltaThroughput, -up.deltaThroughput, 1e-6);
}

TEST(Step, AllUpStepsSkipsMaxedCores)
{
    auto chip = makeChip();
    chip.setAllLevels(chip.dvfs().maxLevel());
    chip.core(3).setLevel(1);
    const auto steps = allUpSteps(chip);
    ASSERT_EQ(steps.size(), 1u);
    EXPECT_EQ(steps[0].coreIndex, 3);
}

TEST(Step, AllDownStepsSkipsGatedCores)
{
    auto chip = makeChip();
    chip.gateAll();
    chip.core(5).setGated(false);
    chip.core(5).setLevel(2);
    const auto steps = allDownSteps(chip);
    ASSERT_EQ(steps.size(), 1u);
    EXPECT_EQ(steps[0].coreIndex, 5);
}

TEST(Tpr, LowEpiCoreHasHigherUpTpr)
{
    // In ML2, core 4 runs mesa (low EPI) and core 1 runs mcf
    // (moderate EPI, memory bound). At equal levels, mesa gains more
    // throughput per watt.
    auto chip = makeChip(workload::WorkloadId::ML2);
    chip.setAllLevels(2);
    const auto mesa = upStep(chip, 4);
    const auto mcf = upStep(chip, 1);
    ASSERT_TRUE(mesa.valid && mcf.valid);
    EXPECT_GT(mesa.tpr(), mcf.tpr());
}

TEST(Tpr, DiminishingReturnsAtHigherLevels)
{
    // The cubic power law makes each additional notch more expensive
    // per unit of throughput: TPR falls as the level rises.
    auto chip = makeChip(workload::WorkloadId::M1);
    double prev = 1e300;
    for (int l = 0; l < chip.dvfs().maxLevel(); ++l) {
        chip.core(0).setLevel(l);
        const auto s = upStep(chip, 0);
        ASSERT_TRUE(s.valid);
        EXPECT_LT(s.tpr(), prev) << "level " << l;
        prev = s.tpr();
    }
}

} // namespace
} // namespace solarcore::core
