/**
 * @file
 * Tests for the SolarCore MPPT controller against a static panel.
 */

#include <gtest/gtest.h>

#include "core/controller.hpp"
#include "pv/bp3180n.hpp"
#include "pv/mpp.hpp"
#include "workload/multiprogram.hpp"

namespace solarcore::core {
namespace {

struct Rig
{
    pv::PvModule module = pv::buildBp3180n();
    pv::PvArray array{module, 1, 1, pv::kStc};
    cpu::MultiCoreChip chip{cpu::defaultChipConfig(),
                            cpu::DvfsTable::paperDefault(),
                            cpu::EnergyParams{},
                            workload::workloadSet(workload::WorkloadId::HM2),
                            42};
    TprOptAdapter adapter;
};

TEST(Controller, TrackClimbsToNearMpp)
{
    Rig rig;
    rig.array.setEnvironment({800.0, 35.0});
    const double pmpp = pv::findMpp(rig.array).power;

    rig.chip.gateAll();
    SolarCoreController ctl(rig.array, rig.chip, rig.adapter);
    const auto res = ctl.track();
    ASSERT_TRUE(res.solarViable);

    const double consumed = rig.chip.totalPower();
    EXPECT_LE(consumed * (1.0 + ctl.config().marginFraction),
              pmpp + 1e-6);
    // Within a couple of DVFS notches of the MPP (notches are a few
    // watts on a ~120 W budget).
    EXPECT_GT(consumed, 0.85 * pmpp);
}

TEST(Controller, TrackShedsWhenOverloaded)
{
    Rig rig;
    rig.array.setEnvironment({300.0, 25.0}); // ~50 W available
    rig.chip.setAllLevels(rig.chip.dvfs().maxLevel()); // ~180 W demand
    SolarCoreController ctl(rig.array, rig.chip, rig.adapter);
    const auto res = ctl.track();
    ASSERT_TRUE(res.solarViable);
    EXPECT_GT(res.stepsDown, 0);
    const double pmpp = pv::findMpp(rig.array).power;
    EXPECT_LE(rig.chip.totalPower(), pmpp);
}

TEST(Controller, DarkPanelNotViable)
{
    Rig rig;
    rig.array.setEnvironment({0.0, 25.0});
    rig.chip.setAllLevels(2);
    SolarCoreController ctl(rig.array, rig.chip, rig.adapter);
    const auto res = ctl.track();
    EXPECT_FALSE(res.solarViable);
}

TEST(Controller, RailHeldAtNominal)
{
    Rig rig;
    rig.array.setEnvironment({700.0, 30.0});
    rig.chip.setAllLevels(0);
    SolarCoreController ctl(rig.array, rig.chip, rig.adapter);
    const auto res = ctl.track();
    ASSERT_TRUE(res.solarViable);
    EXPECT_NEAR(res.net.load.voltage, ctl.config().railNominalV, 1e-6);
    // The panel side operates on the stable branch: at or above Vmpp.
    const auto mpp = pv::findMpp(rig.array);
    EXPECT_GE(res.net.panel.voltage, mpp.voltage - 0.5);
}

TEST(Controller, EnforceRailShedsAfterCloudFront)
{
    Rig rig;
    rig.array.setEnvironment({900.0, 30.0});
    rig.chip.gateAll();
    SolarCoreController ctl(rig.array, rig.chip, rig.adapter);
    ASSERT_TRUE(ctl.track().solarViable);
    const double before = rig.chip.totalPower();

    // A cloud front cuts the available power by ~70%.
    rig.array.setEnvironment({250.0, 28.0});
    const auto res = ctl.enforceRail();
    ASSERT_TRUE(res.solarViable);
    EXPECT_LT(rig.chip.totalPower(), before);
    EXPECT_LE(rig.chip.totalPower(), pv::findMpp(rig.array).power);
}

TEST(Controller, EnforceRailNoopWhenSustainable)
{
    Rig rig;
    rig.array.setEnvironment({800.0, 30.0});
    rig.chip.setAllLevels(0); // tiny demand, plenty of sun
    SolarCoreController ctl(rig.array, rig.chip, rig.adapter);
    const auto before = rig.chip.settings();
    const auto res = ctl.enforceRail();
    ASSERT_TRUE(res.solarViable);
    const auto after = rig.chip.settings();
    for (std::size_t i = 0; i < before.size(); ++i) {
        EXPECT_EQ(before[i].level, after[i].level);
        EXPECT_EQ(before[i].gated, after[i].gated);
    }
}

TEST(Controller, ProbeReportsRightOfMppAfterTracking)
{
    // The controller parks the panel on the stable branch, i.e. at or
    // right of the MPP; the perturb-and-observe probe must agree.
    Rig rig;
    rig.array.setEnvironment({800.0, 30.0});
    rig.chip.gateAll();
    SolarCoreController ctl(rig.array, rig.chip, rig.adapter);
    ASSERT_TRUE(ctl.track().solarViable);
    const auto side = ctl.probeMppSide();
    EXPECT_NE(side, SolarCoreController::MppSide::Left);
}

TEST(Controller, ProbeDetectsLeftOfMpp)
{
    // Park the converter so the panel sits far left of the MPP (low
    // panel voltage) with a fixed load, then probe.
    Rig rig;
    rig.array.setEnvironment({800.0, 30.0});
    rig.chip.setAllLevels(1);
    SolarCoreController ctl(rig.array, rig.chip, rig.adapter);
    ASSERT_TRUE(ctl.track().solarViable);

    // Manually drag the operating point left by dropping the ratio:
    // re-create a controller whose converter is mid-range. We reach
    // into the network directly for this white-box check.
    power::DcDcConverter probe_conv(0.3, 8.0, 1.0);
    probe_conv.setRatio(0.8); // panel at ~9.6 V, far left of ~35 V MPP
    const double r_load = power::loadResistance(12.0,
                                                rig.chip.totalPower());
    const auto base = power::solveNetwork(rig.array, probe_conv, r_load);
    ASSERT_TRUE(base.valid);
    power::DcDcConverter nudged = probe_conv;
    nudged.setRatio(0.8 + 0.02);
    const auto perturbed = power::solveNetwork(rig.array, nudged, r_load);
    ASSERT_TRUE(perturbed.valid);
    // Left of the MPP: raising k raises the output current (Table 1).
    EXPECT_GT(perturbed.load.current, base.load.current);
}

TEST(Controller, StepCountersAccumulate)
{
    Rig rig;
    rig.array.setEnvironment({600.0, 30.0});
    rig.chip.gateAll();
    SolarCoreController ctl(rig.array, rig.chip, rig.adapter);
    EXPECT_EQ(ctl.totalSteps(), 0);
    const auto res = ctl.track();
    EXPECT_GT(res.stepsUp, 0);
    EXPECT_EQ(ctl.totalSteps(), res.stepsUp + res.stepsDown);
}

TEST(Controller, MarginScalesHeadroom)
{
    // A larger configured margin must leave more unused power.
    double consumed[2] = {0.0, 0.0};
    int idx = 0;
    for (double margin : {0.02, 0.15}) {
        Rig rig;
        rig.array.setEnvironment({800.0, 30.0});
        rig.chip.gateAll();
        ControllerConfig cfg;
        cfg.marginFraction = margin;
        SolarCoreController ctl(rig.array, rig.chip, rig.adapter, cfg);
        ASSERT_TRUE(ctl.track().solarViable);
        consumed[idx++] = rig.chip.totalPower();
    }
    EXPECT_GT(consumed[0], consumed[1]);
}

} // namespace
} // namespace solarcore::core
