/**
 * @file
 * Tests for the carbon/cost accounting and the year-round weather
 * interpolation that backs annual studies.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "core/carbon.hpp"
#include "solar/sites.hpp"
#include "solar/trace.hpp"

namespace solarcore::core {
namespace {

DayResult
syntheticDay(double solar_wh, double grid_wh)
{
    DayResult day;
    day.solarEnergyWh = solar_wh;
    day.gridEnergyWh = grid_wh;
    return day;
}

TEST(Carbon, BasicAccounting)
{
    const auto report = assessDay(syntheticDay(500.0, 250.0));
    EXPECT_DOUBLE_EQ(report.solarKwhPerDay, 0.5);
    EXPECT_DOUBLE_EQ(report.gridKwhPerDay, 0.25);
    // 0.5 kWh * 365 * 0.4 kg = 73 kg.
    EXPECT_NEAR(report.co2AvoidedKgPerYear, 73.0, 1e-9);
    // 0.5 kWh * 365 * 0.12 $ = 21.9 $.
    EXPECT_NEAR(report.savingsUsdPerYear, 21.9, 1e-9);
    EXPECT_NEAR(report.panelPaybackYears, 450.0 / 21.9, 1e-9);
    EXPECT_NEAR(report.batteryAvoidedUsdPerYear, 150.0, 1e-9);
}

TEST(Carbon, NoSunNeverPaysBack)
{
    const auto report = assessDay(syntheticDay(0.0, 800.0));
    EXPECT_TRUE(std::isinf(report.panelPaybackYears));
    EXPECT_DOUBLE_EQ(report.co2AvoidedKgPerYear, 0.0);
}

TEST(Carbon, ContextScalesLinearly)
{
    GridContext dirty;
    dirty.co2KgPerKwh = 0.8;
    const auto clean = assessDay(syntheticDay(500.0, 0.0));
    const auto coal = assessDay(syntheticDay(500.0, 0.0), dirty);
    EXPECT_NEAR(coal.co2AvoidedKgPerYear,
                2.0 * clean.co2AvoidedKgPerYear, 1e-9);
}

TEST(Carbon, AssessDayDelegatesToAssessEnergy)
{
    // assessDay is documented as a thin wrapper over assessEnergy;
    // the two must agree bit-for-bit (serve aggregates use the
    // energy form directly).
    GridContext grid;
    grid.co2KgPerKwh = 0.63;
    grid.panelUsd = 1234.0;
    const auto a = assessDay(syntheticDay(417.25, 93.5), grid);
    const auto b = assessEnergy(417.25, 93.5, grid);
    EXPECT_DOUBLE_EQ(a.solarKwhPerDay, b.solarKwhPerDay);
    EXPECT_DOUBLE_EQ(a.gridKwhPerDay, b.gridKwhPerDay);
    EXPECT_DOUBLE_EQ(a.co2AvoidedKgPerYear, b.co2AvoidedKgPerYear);
    EXPECT_DOUBLE_EQ(a.savingsUsdPerYear, b.savingsUsdPerYear);
    EXPECT_DOUBLE_EQ(a.panelPaybackYears, b.panelPaybackYears);
    EXPECT_DOUBLE_EQ(a.batteryAvoidedUsdPerYear,
                     b.batteryAvoidedUsdPerYear);
}

TEST(Carbon, ZeroCarbonGridStillSavesMoney)
{
    // A fully decarbonized grid: nothing to avoid, but the tariff
    // savings (and therefore a finite payback) remain.
    GridContext grid;
    grid.co2KgPerKwh = 0.0;
    const auto report = assessEnergy(500.0, 250.0, grid);
    EXPECT_DOUBLE_EQ(report.co2AvoidedKgPerYear, 0.0);
    EXPECT_NEAR(report.savingsUsdPerYear, 21.9, 1e-9);
    EXPECT_TRUE(std::isfinite(report.panelPaybackYears));
}

TEST(Carbon, ZeroCostFleetPaysBackImmediately)
{
    GridContext grid;
    grid.panelUsd = 0.0;
    const auto report = assessEnergy(500.0, 0.0, grid);
    EXPECT_DOUBLE_EQ(report.panelPaybackYears, 0.0);

    // ...but with no harvest either, payback stays "never", not NaN.
    const auto dark = assessEnergy(0.0, 500.0, grid);
    EXPECT_TRUE(std::isinf(dark.panelPaybackYears));
    EXPECT_FALSE(std::isnan(dark.panelPaybackYears));
}

TEST(Carbon, ZeroBatteryLifeAvoidsDivisionByZero)
{
    GridContext grid;
    grid.batteryLifeYears = 0.0;
    const auto report = assessEnergy(500.0, 250.0, grid);
    EXPECT_DOUBLE_EQ(report.batteryAvoidedUsdPerYear, 0.0);
    EXPECT_FALSE(std::isnan(report.batteryAvoidedUsdPerYear));
}

TEST(Carbon, FleetScaleIsLinear)
{
    // A 1024-node fleet ledger projects exactly 1024x the per-node
    // rates (payback scales with the fleet-level panel cost instead).
    // A power-of-two node count commutes exactly with rounding, so
    // the comparison can be bit-exact.
    const auto unit = assessEnergy(500.0, 250.0);
    GridContext fleet_grid;
    fleet_grid.panelUsd = 450.0 * 1024.0;
    const auto fleet = assessEnergy(500.0 * 1024.0, 250.0 * 1024.0,
                                    fleet_grid);
    EXPECT_DOUBLE_EQ(fleet.co2AvoidedKgPerYear,
                     1024.0 * unit.co2AvoidedKgPerYear);
    EXPECT_DOUBLE_EQ(fleet.savingsUsdPerYear,
                     1024.0 * unit.savingsUsdPerYear);
    EXPECT_DOUBLE_EQ(fleet.panelPaybackYears, unit.panelPaybackYears);
}

TEST(YearRound, AnchorsReproduceExactly)
{
    using solar::Month;
    using solar::SiteId;
    for (auto site : solar::allSites()) {
        const auto jan = solar::weatherParamsForDay(site, 15);
        const auto &anchor = solar::weatherParams(site, Month::Jan);
        EXPECT_NEAR(jan.clearFrac, anchor.clearFrac, 1e-12);
        EXPECT_NEAR(jan.tMaxC, anchor.tMaxC, 1e-12);

        const auto jul = solar::weatherParamsForDay(site, 196);
        const auto &a_jul = solar::weatherParams(site, Month::Jul);
        EXPECT_NEAR(jul.gustiness, a_jul.gustiness, 1e-12);
    }
}

TEST(YearRound, MidpointsBlend)
{
    using solar::Month;
    using solar::SiteId;
    // Day 60 sits between the Jan (15) and Apr (105) anchors.
    const auto mid = solar::weatherParamsForDay(SiteId::AZ, 60);
    const auto &jan = solar::weatherParams(SiteId::AZ, Month::Jan);
    const auto &apr = solar::weatherParams(SiteId::AZ, Month::Apr);
    const double t = (60.0 - 15.0) / (105.0 - 15.0);
    EXPECT_NEAR(mid.tMaxC, jan.tMaxC + t * (apr.tMaxC - jan.tMaxC),
                1e-12);
    EXPECT_GT(mid.clearFrac + mid.partlyFrac + mid.overcastFrac, 0.999);
    EXPECT_LT(mid.clearFrac + mid.partlyFrac + mid.overcastFrac, 1.001);
}

TEST(YearRound, WrapsAcrossNewYear)
{
    using solar::Month;
    using solar::SiteId;
    // Day 350 sits between the Oct (288) and next Jan (15+365) anchors.
    const auto dec = solar::weatherParamsForDay(SiteId::TN, 350);
    const auto &oct = solar::weatherParams(SiteId::TN, Month::Oct);
    const auto &jan = solar::weatherParams(SiteId::TN, Month::Jan);
    const double lo = std::min(oct.tMaxC, jan.tMaxC);
    const double hi = std::max(oct.tMaxC, jan.tMaxC);
    EXPECT_GE(dec.tMaxC, lo - 1e-12);
    EXPECT_LE(dec.tMaxC, hi + 1e-12);

    // Day 1 (early January, before the Jan-15 anchor) also blends
    // Oct -> Jan and must stay in range.
    const auto new_year = solar::weatherParamsForDay(SiteId::TN, 1);
    EXPECT_GE(new_year.tMaxC, lo - 1e-12);
    EXPECT_LE(new_year.tMaxC, hi + 1e-12);
}

TEST(YearRound, UsableByCustomTraceGenerator)
{
    // A December day generated from interpolated statistics.
    const auto wx = solar::weatherParamsForDay(solar::SiteId::AZ, 340);
    const auto trace =
        solar::generateCustomTrace(33.45, 340, wx, 1.0, 21);
    EXPECT_EQ(trace.size(), 601u);
    EXPECT_GT(trace.insolationKwhPerM2(), 0.5);
}

} // namespace
} // namespace solarcore::core
