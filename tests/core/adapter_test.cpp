/**
 * @file
 * Tests for the three load-adaptation policies (paper Table 6).
 */

#include <algorithm>

#include <gtest/gtest.h>

#include "core/load_adapter.hpp"
#include "workload/multiprogram.hpp"

namespace solarcore::core {
namespace {

cpu::MultiCoreChip
makeChip(workload::WorkloadId id = workload::WorkloadId::ML2)
{
    return cpu::MultiCoreChip(cpu::defaultChipConfig(),
                              cpu::DvfsTable::paperDefault(),
                              cpu::EnergyParams{},
                              workload::workloadSet(id), 42);
}

int
levelSpread(const cpu::MultiCoreChip &chip)
{
    int lo = 99;
    int hi = -1;
    for (int i = 0; i < chip.numCores(); ++i) {
        const auto &c = chip.core(i);
        const int l = c.gated() ? -1 : c.level();
        lo = std::min(lo, l);
        hi = std::max(hi, l);
    }
    return hi - lo;
}

TEST(Adapters, FactoryProducesPaperPolicies)
{
    EXPECT_STREQ(makeAdapter(PolicyKind::MpptOpt)->name(), "MPPT&Opt");
    EXPECT_STREQ(makeAdapter(PolicyKind::MpptRr)->name(), "MPPT&RR");
    EXPECT_STREQ(makeAdapter(PolicyKind::MpptIc)->name(), "MPPT&IC");
    EXPECT_STREQ(makeAdapter(PolicyKind::MpptIcMotion)->name(),
                 "MPPT&IC+TM");
    EXPECT_EQ(makeAdapter(PolicyKind::FixedPower), nullptr);
    EXPECT_STREQ(policyName(PolicyKind::FixedPower), "Fixed-Power");
}

TEST(Adapters, RoundRobinSpreadsEvenly)
{
    auto chip = makeChip();
    chip.setAllLevels(0);
    RoundRobinAdapter rr;
    // 16 up-notches over 8 cores: every core must sit at level 2.
    for (int i = 0; i < 16; ++i)
        ASSERT_TRUE(rr.increaseOneStep(chip).valid);
    for (int i = 0; i < chip.numCores(); ++i)
        EXPECT_EQ(chip.core(i).level(), 2) << "core " << i;
    EXPECT_EQ(levelSpread(chip), 0);
}

TEST(Adapters, IndividualCoreConcentrates)
{
    auto chip = makeChip();
    chip.setAllLevels(0);
    IndividualCoreAdapter ic;
    // 5 notches: all must land on core 0.
    for (int i = 0; i < 5; ++i)
        ASSERT_TRUE(ic.increaseOneStep(chip).valid);
    EXPECT_EQ(chip.core(0).level(), 5);
    for (int i = 1; i < chip.numCores(); ++i)
        EXPECT_EQ(chip.core(i).level(), 0);
}

TEST(Adapters, IndividualCoreGatesOnlyAsLastResort)
{
    auto chip = makeChip();
    chip.setAllLevels(1);
    IndividualCoreAdapter ic;
    // 8 down-notches bring everyone to the bottom level first.
    for (int i = 0; i < 8; ++i)
        ASSERT_TRUE(ic.decreaseOneStep(chip).valid);
    for (int i = 0; i < chip.numCores(); ++i) {
        EXPECT_FALSE(chip.core(i).gated()) << "core " << i;
        EXPECT_EQ(chip.core(i).level(), 0) << "core " << i;
    }
    // The next notch has nowhere to go but gating.
    ASSERT_TRUE(ic.decreaseOneStep(chip).valid);
    int gated = 0;
    for (int i = 0; i < chip.numCores(); ++i)
        gated += chip.core(i).gated();
    EXPECT_EQ(gated, 1);
}

TEST(Adapters, OptPicksHighestTprStep)
{
    auto chip = makeChip(workload::WorkloadId::ML2);
    chip.setAllLevels(2);
    // Compute the best TPR by hand, then check Opt applied exactly it.
    double best_tpr = -1.0;
    int best_core = -1;
    for (const auto &s : allUpSteps(chip)) {
        if (s.tpr() > best_tpr) {
            best_tpr = s.tpr();
            best_core = s.coreIndex;
        }
    }
    TprOptAdapter opt;
    const auto applied = opt.increaseOneStep(chip);
    ASSERT_TRUE(applied.valid);
    EXPECT_EQ(applied.coreIndex, best_core);
}

TEST(Adapters, OptShedsCheapestThroughput)
{
    auto chip = makeChip(workload::WorkloadId::ML2);
    chip.setAllLevels(4);
    double best_cost = 1e300;
    int best_core = -1;
    for (const auto &s : allDownSteps(chip)) {
        const double cost = (-s.deltaThroughput) / (-s.deltaPowerW);
        if (cost < best_cost) {
            best_cost = cost;
            best_core = s.coreIndex;
        }
    }
    TprOptAdapter opt;
    const auto applied = opt.decreaseOneStep(chip);
    ASSERT_TRUE(applied.valid);
    EXPECT_EQ(applied.coreIndex, best_core);
}

TEST(Adapters, IncreaseSaturatesAtAllMax)
{
    auto chip = makeChip();
    chip.setAllLevels(chip.dvfs().maxLevel());
    for (auto kind : {PolicyKind::MpptOpt, PolicyKind::MpptRr,
                      PolicyKind::MpptIc}) {
        auto adapter = makeAdapter(kind);
        EXPECT_FALSE(adapter->increaseOneStep(chip).valid)
            << adapter->name();
    }
}

TEST(Adapters, DecreaseSaturatesAtAllGated)
{
    auto chip = makeChip();
    chip.gateAll();
    for (auto kind : {PolicyKind::MpptOpt, PolicyKind::MpptRr,
                      PolicyKind::MpptIc}) {
        auto adapter = makeAdapter(kind);
        EXPECT_FALSE(adapter->decreaseOneStep(chip).valid)
            << adapter->name();
    }
}

TEST(Adapters, EveryPolicyClimbsFromGatedToMax)
{
    // 8 cores x (1 ungate + 5 level notches) = 48 notches to the top.
    for (auto kind : {PolicyKind::MpptOpt, PolicyKind::MpptRr,
                      PolicyKind::MpptIc}) {
        auto chip = makeChip();
        chip.gateAll();
        auto adapter = makeAdapter(kind);
        int steps = 0;
        while (adapter->increaseOneStep(chip).valid)
            ++steps;
        EXPECT_EQ(steps, 48) << adapter->name();
        for (int i = 0; i < chip.numCores(); ++i) {
            EXPECT_FALSE(chip.core(i).gated());
            EXPECT_EQ(chip.core(i).level(), chip.dvfs().maxLevel());
        }
    }
}

TEST(Adapters, MotionPlacesEfficientProgramsFirst)
{
    // ML2 puts gcc/mcf/gap/vpr on cores 0..3 and the low-EPI programs
    // on 4..7; after the motion hook, a low-EPI program must sit on
    // core 0.
    auto chip = makeChip(workload::WorkloadId::ML2);
    chip.setAllLevels(2);
    IcMotionAdapter motion;
    motion.beginTrackingPeriod(chip);
    EXPECT_EQ(chip.core(0).benchmarkName(), "mesa");
    // And the scores must now be non-increasing across cores.
    const int mid = chip.dvfs().numLevels() / 2;
    double prev = 1e300;
    for (int i = 0; i < chip.numCores(); ++i) {
        const double s = chip.core(i).throughputAtLevel(mid) /
            chip.core(i).powerAtLevel(mid);
        EXPECT_LE(s, prev * 1.0001) << i;
        prev = s;
    }
}

TEST(Adapters, MotionPreservesLedgersAndLevels)
{
    auto chip = makeChip(workload::WorkloadId::ML2);
    chip.setAllLevels(3);
    chip.step(100.0);
    const double instr_before = chip.totalInstructions();
    const auto levels_before = chip.settings();
    IcMotionAdapter motion;
    motion.beginTrackingPeriod(chip);
    EXPECT_DOUBLE_EQ(chip.totalInstructions(), instr_before);
    const auto levels_after = chip.settings();
    for (std::size_t i = 0; i < levels_before.size(); ++i)
        EXPECT_EQ(levels_before[i].level, levels_after[i].level);
}

TEST(Adapters, OptBeatsRoundRobinAtEqualPower)
{
    // Climb a heterogeneous chip to (approximately) the same power with
    // both policies; Opt's allocation must deliver at least RR's
    // throughput.
    const double budget = 80.0;
    double thr[2] = {0.0, 0.0};
    int idx = 0;
    for (auto kind : {PolicyKind::MpptOpt, PolicyKind::MpptRr}) {
        auto chip = makeChip(workload::WorkloadId::ML2);
        chip.gateAll();
        auto adapter = makeAdapter(kind);
        while (true) {
            const auto snapshot = chip.settings();
            if (!adapter->increaseOneStep(chip).valid)
                break;
            if (chip.totalPower() > budget) {
                chip.applySettings(snapshot);
                break;
            }
        }
        EXPECT_LE(chip.totalPower(), budget);
        thr[idx++] = chip.totalThroughput();
    }
    EXPECT_GE(thr[0], thr[1] * 0.999);
}

} // namespace
} // namespace solarcore::core
