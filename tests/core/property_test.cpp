/**
 * @file
 * Property-style sweeps across the policy/workload/site matrix: the
 * invariants every simulated day must satisfy regardless of
 * configuration, plus controller behaviour under supply ramps.
 */

#include <gtest/gtest.h>

#include "core/solarcore.hpp"
#include "util/stats.hpp"

namespace solarcore::core {
namespace {

/** Invariants for every (policy, workload) combination. */
class PolicyWorkloadSweep
    : public ::testing::TestWithParam<
          std::tuple<PolicyKind, workload::WorkloadId>>
{
};

TEST_P(PolicyWorkloadSweep, DayInvariantsHold)
{
    const auto [policy, wl] = GetParam();
    const auto module = pv::buildBp3180n();
    const auto trace = solar::generateDayTrace(solar::SiteId::CO,
                                               solar::Month::Apr, 2);
    SimConfig cfg;
    cfg.policy = policy;
    cfg.fixedBudgetW = 60.0;
    cfg.dtSeconds = 60.0;
    cfg.recordTimeline = true;
    const auto r = simulateDay(module, trace, wl, cfg);

    // Energy invariants.
    EXPECT_GE(r.solarEnergyWh, 0.0);
    EXPECT_LE(r.utilization, 1.0 + 1e-9);
    EXPECT_NEAR(r.solarEnergyWh + r.gridEnergyWh, r.chipEnergyWh,
                0.01 * r.chipEnergyWh);

    // While on solar, never draw more than the instantaneous MPP.
    for (const auto &p : r.timeline) {
        if (p.onSolar) {
            ASSERT_LE(p.consumedW, p.budgetW * 1.001)
                << policyName(policy) << "/" << workload::workloadName(wl)
                << " @ " << p.minute;
        }
    }

    // Performance invariants.
    EXPECT_GE(r.totalInstructions, r.solarInstructions);
    EXPECT_GT(r.totalInstructions, 0.0);

    // Metric ranges.
    EXPECT_GE(r.effectiveFraction, 0.0);
    EXPECT_LE(r.effectiveFraction, 1.0);
    if (policy != PolicyKind::FixedPower) {
        EXPECT_LT(r.avgTrackingError, 0.4);
    } else {
        // Fixed-Power does not track: its gap to the moving budget is
        // structural (that is the paper's point), just well-defined.
        EXPECT_GE(r.avgTrackingError, 0.0);
        EXPECT_LE(r.avgTrackingError, 1.0);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, PolicyWorkloadSweep,
    ::testing::Combine(
        ::testing::Values(PolicyKind::FixedPower, PolicyKind::MpptIc,
                          PolicyKind::MpptRr, PolicyKind::MpptOpt),
        ::testing::Values(workload::WorkloadId::H1,
                          workload::WorkloadId::M2,
                          workload::WorkloadId::L1,
                          workload::WorkloadId::HM2,
                          workload::WorkloadId::ML2)));

/** The controller follows a rising and falling irradiance ramp. */
TEST(ControllerRamp, FollowsSupplyBothDirections)
{
    const auto module = pv::buildBp3180n();
    pv::PvArray array(module, 1, 1, {200.0, 25.0});
    cpu::MultiCoreChip chip(cpu::defaultChipConfig(),
                            cpu::DvfsTable::paperDefault(),
                            cpu::EnergyParams{},
                            workload::workloadSet(workload::WorkloadId::M1),
                            3);
    TprOptAdapter adapter;
    SolarCoreController ctl(array, chip, adapter);
    chip.gateAll();

    double prev_power = 0.0;
    // Ramp up: consumption must rise with the budget.
    for (double g = 200.0; g <= 1000.0; g += 100.0) {
        array.setEnvironment({g, 25.0});
        ASSERT_TRUE(ctl.track().solarViable) << g;
        const double p = chip.totalPower();
        const double budget = pv::findMpp(array).power;
        EXPECT_LE(p * (1.0 + ctl.config().marginFraction), budget + 1e-6);
        EXPECT_GE(p, prev_power - 1.0) << g; // monotone up to one notch
        prev_power = p;
    }
    // Ramp down: consumption must shed to stay under the budget.
    for (double g = 900.0; g >= 200.0; g -= 100.0) {
        array.setEnvironment({g, 25.0});
        ASSERT_TRUE(ctl.track().solarViable) << g;
        EXPECT_LE(chip.totalPower(), pv::findMpp(array).power + 1e-6)
            << g;
    }
}

/** Tracking with every policy converges near the MPP in one event. */
class PolicyConvergenceSweep
    : public ::testing::TestWithParam<PolicyKind>
{
};

TEST_P(PolicyConvergenceSweep, SingleTrackReachesBudgetNeighbourhood)
{
    const auto module = pv::buildBp3180n();
    pv::PvArray array(module, 1, 1, {750.0, 30.0});
    cpu::MultiCoreChip chip(cpu::defaultChipConfig(),
                            cpu::DvfsTable::paperDefault(),
                            cpu::EnergyParams{},
                            workload::workloadSet(workload::WorkloadId::L2),
                            5);
    auto adapter = makeAdapter(GetParam());
    SolarCoreController ctl(array, chip, *adapter);
    chip.gateAll();
    ASSERT_TRUE(ctl.track().solarViable);
    const double budget = pv::findMpp(array).power;
    EXPECT_GT(chip.totalPower(), 0.80 * budget) << policyName(GetParam());
    EXPECT_LE(chip.totalPower() * (1.0 + ctl.config().marginFraction),
              budget + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(AllTrackingPolicies, PolicyConvergenceSweep,
                         ::testing::Values(PolicyKind::MpptIc,
                                           PolicyKind::MpptRr,
                                           PolicyKind::MpptOpt));

/** DP allocation: a finer power grid never loses throughput. */
TEST(FixedPowerProperty, FinerGridNeverWorse)
{
    cpu::MultiCoreChip chip(cpu::defaultChipConfig(),
                            cpu::DvfsTable::paperDefault(),
                            cpu::EnergyParams{},
                            workload::workloadSet(workload::WorkloadId::HM2),
                            7);
    for (double budget : {40.0, 80.0, 120.0}) {
        const auto coarse = optimizeAllocation(chip, budget, 1.0);
        const auto fine = optimizeAllocation(chip, budget, 0.05);
        ASSERT_TRUE(coarse.feasible && fine.feasible);
        EXPECT_GE(fine.throughput, coarse.throughput - 1e-6) << budget;
    }
}

/** Workload-seed stability: metrics stay in a band across seeds. */
TEST(SeedStability, MetricsBandAcrossWorkloadSeeds)
{
    const auto module = pv::buildBp3180n();
    const auto trace = solar::generateDayTrace(solar::SiteId::AZ,
                                               solar::Month::Jul, 1);
    solarcore::RunningStats util;
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        SimConfig cfg;
        cfg.dtSeconds = 60.0;
        cfg.seed = seed;
        util.add(
            simulateDay(module, trace, workload::WorkloadId::HM2, cfg)
                .utilization);
    }
    // Same weather, different phase offsets: small spread only.
    EXPECT_LT(util.max() - util.min(), 0.05);
}

/** PCPG extends the harvestable supply range (paper Section 4.1). */
TEST(PcpgProperty, GatingExtendsEffectiveDuration)
{
    const auto module = pv::buildBp3180n();
    const auto trace = solar::generateDayTrace(solar::SiteId::TN,
                                               solar::Month::Jan, 1);
    SimConfig with;
    with.dtSeconds = 60.0;
    SimConfig without = with;
    without.pcpg = false;
    const auto rw = simulateDay(module, trace, workload::WorkloadId::M2,
                                with);
    const auto ro = simulateDay(module, trace, workload::WorkloadId::M2,
                                without);
    EXPECT_GT(rw.effectiveFraction, ro.effectiveFraction);
    EXPECT_GT(rw.utilization, ro.utilization);
    EXPECT_GT(rw.solarInstructions, ro.solarInstructions);
}

/** Fixed-power with a budget above the chip max behaves sanely. */
TEST(FixedPowerProperty, OversizedBudgetCapsAtChipMax)
{
    const auto module = pv::buildBp3180n();
    const auto trace = solar::generateDayTrace(solar::SiteId::AZ,
                                               solar::Month::Jul, 1);
    SimConfig cfg;
    cfg.policy = PolicyKind::FixedPower;
    cfg.fixedBudgetW = 500.0; // far above both chip max and panel MPP
    cfg.dtSeconds = 60.0;
    const auto r = simulateDay(module, trace, workload::WorkloadId::L1,
                               cfg);
    // The panel never reaches the 500 W transfer threshold: the system
    // stays on the grid all day.
    EXPECT_DOUBLE_EQ(r.solarEnergyWh, 0.0);
    EXPECT_DOUBLE_EQ(r.effectiveFraction, 0.0);
    EXPECT_GT(r.totalInstructions, 0.0);
}

} // namespace
} // namespace solarcore::core
