/**
 * @file
 * Tests for the hybrid direct-coupled + storage-buffer extension.
 */

#include <gtest/gtest.h>

#include "core/simulation.hpp"

namespace solarcore::core {
namespace {

SimConfig
fastConfig()
{
    SimConfig cfg;
    cfg.dtSeconds = 60.0;
    return cfg;
}

HybridDayResult
runHybrid(double capacity_wh,
          solar::SiteId site = solar::SiteId::NC,
          solar::Month month = solar::Month::Apr)
{
    const auto module = pv::buildBp3180n();
    const auto trace = solar::generateDayTrace(site, month, 1);
    return simulateHybridDay(module, trace, workload::WorkloadId::HM2,
                             capacity_wh, fastConfig());
}

TEST(Hybrid, ZeroCapacityDegeneratesToPlainDay)
{
    const auto module = pv::buildBp3180n();
    const auto trace = solar::generateDayTrace(solar::SiteId::NC,
                                               solar::Month::Apr, 1);
    const auto plain = simulateDay(module, trace,
                                   workload::WorkloadId::HM2,
                                   fastConfig());
    const auto hybrid = runHybrid(0.0);
    EXPECT_DOUBLE_EQ(hybrid.day.solarEnergyWh, plain.solarEnergyWh);
    EXPECT_DOUBLE_EQ(hybrid.bufferedWh, 0.0);
    EXPECT_DOUBLE_EQ(hybrid.greenEnergyWh, plain.solarEnergyWh);
}

TEST(Hybrid, GreenFractionGrowsWithCapacity)
{
    double prev = -1.0;
    for (double cap : {0.0, 10.0, 50.0}) {
        const auto r = runHybrid(cap);
        EXPECT_GE(r.greenFraction, prev - 1e-9) << cap;
        prev = r.greenFraction;
    }
}

TEST(Hybrid, BufferReducesGridEnergy)
{
    const auto without = runHybrid(0.0);
    const auto with = runHybrid(25.0);
    EXPECT_LT(with.day.gridEnergyWh, without.day.gridEnergyWh);
    EXPECT_GT(with.bufferedWh, 0.0);
}

TEST(Hybrid, MetricsWellFormed)
{
    const auto r = runHybrid(25.0);
    EXPECT_GE(r.greenFraction, 0.0);
    EXPECT_LE(r.greenFraction, 1.0);
    EXPECT_LE(r.day.utilization, 1.0);
    EXPECT_GE(r.bufferedWh, 0.0);
    EXPECT_GT(r.day.solarInstructions, 0.0);
    EXPECT_GE(r.day.totalInstructions, r.day.solarInstructions);
    EXPECT_DOUBLE_EQ(r.batteryCapacityWh, 25.0);
}

TEST(Hybrid, Deterministic)
{
    const auto a = runHybrid(25.0);
    const auto b = runHybrid(25.0);
    EXPECT_DOUBLE_EQ(a.day.solarInstructions, b.day.solarInstructions);
    EXPECT_DOUBLE_EQ(a.bufferedWh, b.bufferedWh);
}

TEST(Hybrid, SteadySiteBenefitsLessThanVolatileSite)
{
    // AZ July is nearly always above threshold: the buffer has little
    // grid time to displace compared to a volatile NC April.
    const auto volatile_gain =
        runHybrid(25.0, solar::SiteId::NC, solar::Month::Apr)
            .greenFraction -
        runHybrid(0.0, solar::SiteId::NC, solar::Month::Apr)
            .greenFraction;
    const auto steady_gain =
        runHybrid(25.0, solar::SiteId::AZ, solar::Month::Jul)
            .greenFraction -
        runHybrid(0.0, solar::SiteId::AZ, solar::Month::Jul)
            .greenFraction;
    EXPECT_GT(volatile_gain, steady_gain);
}

} // namespace
} // namespace solarcore::core
