# Empty compiler generated dependencies file for solarcore_cli.
# This may be replaced when dependencies are built.
