file(REMOVE_RECURSE
  "CMakeFiles/solarcore_cli.dir/solarcore_cli.cpp.o"
  "CMakeFiles/solarcore_cli.dir/solarcore_cli.cpp.o.d"
  "solarcore_cli"
  "solarcore_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solarcore_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
