file(REMOVE_RECURSE
  "CMakeFiles/pv_tests.dir/cell_test.cpp.o"
  "CMakeFiles/pv_tests.dir/cell_test.cpp.o.d"
  "CMakeFiles/pv_tests.dir/module_test.cpp.o"
  "CMakeFiles/pv_tests.dir/module_test.cpp.o.d"
  "CMakeFiles/pv_tests.dir/mpp_property_test.cpp.o"
  "CMakeFiles/pv_tests.dir/mpp_property_test.cpp.o.d"
  "CMakeFiles/pv_tests.dir/shading_test.cpp.o"
  "CMakeFiles/pv_tests.dir/shading_test.cpp.o.d"
  "pv_tests"
  "pv_tests.pdb"
  "pv_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pv_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
