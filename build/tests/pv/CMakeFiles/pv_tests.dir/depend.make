# Empty dependencies file for pv_tests.
# This may be replaced when dependencies are built.
