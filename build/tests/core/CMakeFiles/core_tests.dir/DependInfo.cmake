
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/adapter_test.cpp" "tests/core/CMakeFiles/core_tests.dir/adapter_test.cpp.o" "gcc" "tests/core/CMakeFiles/core_tests.dir/adapter_test.cpp.o.d"
  "/root/repo/tests/core/aggregate_test.cpp" "tests/core/CMakeFiles/core_tests.dir/aggregate_test.cpp.o" "gcc" "tests/core/CMakeFiles/core_tests.dir/aggregate_test.cpp.o.d"
  "/root/repo/tests/core/carbon_test.cpp" "tests/core/CMakeFiles/core_tests.dir/carbon_test.cpp.o" "gcc" "tests/core/CMakeFiles/core_tests.dir/carbon_test.cpp.o.d"
  "/root/repo/tests/core/controller_edge_test.cpp" "tests/core/CMakeFiles/core_tests.dir/controller_edge_test.cpp.o" "gcc" "tests/core/CMakeFiles/core_tests.dir/controller_edge_test.cpp.o.d"
  "/root/repo/tests/core/controller_test.cpp" "tests/core/CMakeFiles/core_tests.dir/controller_test.cpp.o" "gcc" "tests/core/CMakeFiles/core_tests.dir/controller_test.cpp.o.d"
  "/root/repo/tests/core/fixed_power_test.cpp" "tests/core/CMakeFiles/core_tests.dir/fixed_power_test.cpp.o" "gcc" "tests/core/CMakeFiles/core_tests.dir/fixed_power_test.cpp.o.d"
  "/root/repo/tests/core/fleet_test.cpp" "tests/core/CMakeFiles/core_tests.dir/fleet_test.cpp.o" "gcc" "tests/core/CMakeFiles/core_tests.dir/fleet_test.cpp.o.d"
  "/root/repo/tests/core/hybrid_test.cpp" "tests/core/CMakeFiles/core_tests.dir/hybrid_test.cpp.o" "gcc" "tests/core/CMakeFiles/core_tests.dir/hybrid_test.cpp.o.d"
  "/root/repo/tests/core/perturb_observe_test.cpp" "tests/core/CMakeFiles/core_tests.dir/perturb_observe_test.cpp.o" "gcc" "tests/core/CMakeFiles/core_tests.dir/perturb_observe_test.cpp.o.d"
  "/root/repo/tests/core/property_test.cpp" "tests/core/CMakeFiles/core_tests.dir/property_test.cpp.o" "gcc" "tests/core/CMakeFiles/core_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/core/simulation_test.cpp" "tests/core/CMakeFiles/core_tests.dir/simulation_test.cpp.o" "gcc" "tests/core/CMakeFiles/core_tests.dir/simulation_test.cpp.o.d"
  "/root/repo/tests/core/tpr_test.cpp" "tests/core/CMakeFiles/core_tests.dir/tpr_test.cpp.o" "gcc" "tests/core/CMakeFiles/core_tests.dir/tpr_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/sc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/sc_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/sc_power.dir/DependInfo.cmake"
  "/root/repo/build/src/solar/CMakeFiles/sc_solar.dir/DependInfo.cmake"
  "/root/repo/build/src/pv/CMakeFiles/sc_pv.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
