file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/adapter_test.cpp.o"
  "CMakeFiles/core_tests.dir/adapter_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/aggregate_test.cpp.o"
  "CMakeFiles/core_tests.dir/aggregate_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/carbon_test.cpp.o"
  "CMakeFiles/core_tests.dir/carbon_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/controller_edge_test.cpp.o"
  "CMakeFiles/core_tests.dir/controller_edge_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/controller_test.cpp.o"
  "CMakeFiles/core_tests.dir/controller_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/fixed_power_test.cpp.o"
  "CMakeFiles/core_tests.dir/fixed_power_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/fleet_test.cpp.o"
  "CMakeFiles/core_tests.dir/fleet_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/hybrid_test.cpp.o"
  "CMakeFiles/core_tests.dir/hybrid_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/perturb_observe_test.cpp.o"
  "CMakeFiles/core_tests.dir/perturb_observe_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/property_test.cpp.o"
  "CMakeFiles/core_tests.dir/property_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/simulation_test.cpp.o"
  "CMakeFiles/core_tests.dir/simulation_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/tpr_test.cpp.o"
  "CMakeFiles/core_tests.dir/tpr_test.cpp.o.d"
  "core_tests"
  "core_tests.pdb"
  "core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
