file(REMOVE_RECURSE
  "CMakeFiles/power_tests.dir/battery_ats_test.cpp.o"
  "CMakeFiles/power_tests.dir/battery_ats_test.cpp.o.d"
  "CMakeFiles/power_tests.dir/converter_test.cpp.o"
  "CMakeFiles/power_tests.dir/converter_test.cpp.o.d"
  "CMakeFiles/power_tests.dir/psu_test.cpp.o"
  "CMakeFiles/power_tests.dir/psu_test.cpp.o.d"
  "CMakeFiles/power_tests.dir/ups_test.cpp.o"
  "CMakeFiles/power_tests.dir/ups_test.cpp.o.d"
  "power_tests"
  "power_tests.pdb"
  "power_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
