file(REMOVE_RECURSE
  "CMakeFiles/solar_tests.dir/geometry_test.cpp.o"
  "CMakeFiles/solar_tests.dir/geometry_test.cpp.o.d"
  "CMakeFiles/solar_tests.dir/midc_test.cpp.o"
  "CMakeFiles/solar_tests.dir/midc_test.cpp.o.d"
  "CMakeFiles/solar_tests.dir/trace_test.cpp.o"
  "CMakeFiles/solar_tests.dir/trace_test.cpp.o.d"
  "solar_tests"
  "solar_tests.pdb"
  "solar_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solar_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
