
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cpu/cacti_lite_test.cpp" "tests/cpu/CMakeFiles/cpu_tests.dir/cacti_lite_test.cpp.o" "gcc" "tests/cpu/CMakeFiles/cpu_tests.dir/cacti_lite_test.cpp.o.d"
  "/root/repo/tests/cpu/core_chip_test.cpp" "tests/cpu/CMakeFiles/cpu_tests.dir/core_chip_test.cpp.o" "gcc" "tests/cpu/CMakeFiles/cpu_tests.dir/core_chip_test.cpp.o.d"
  "/root/repo/tests/cpu/cycle_test.cpp" "tests/cpu/CMakeFiles/cpu_tests.dir/cycle_test.cpp.o" "gcc" "tests/cpu/CMakeFiles/cpu_tests.dir/cycle_test.cpp.o.d"
  "/root/repo/tests/cpu/dvfs_test.cpp" "tests/cpu/CMakeFiles/cpu_tests.dir/dvfs_test.cpp.o" "gcc" "tests/cpu/CMakeFiles/cpu_tests.dir/dvfs_test.cpp.o.d"
  "/root/repo/tests/cpu/epi_scaling_test.cpp" "tests/cpu/CMakeFiles/cpu_tests.dir/epi_scaling_test.cpp.o" "gcc" "tests/cpu/CMakeFiles/cpu_tests.dir/epi_scaling_test.cpp.o.d"
  "/root/repo/tests/cpu/perf_model_test.cpp" "tests/cpu/CMakeFiles/cpu_tests.dir/perf_model_test.cpp.o" "gcc" "tests/cpu/CMakeFiles/cpu_tests.dir/perf_model_test.cpp.o.d"
  "/root/repo/tests/cpu/power_model_test.cpp" "tests/cpu/CMakeFiles/cpu_tests.dir/power_model_test.cpp.o" "gcc" "tests/cpu/CMakeFiles/cpu_tests.dir/power_model_test.cpp.o.d"
  "/root/repo/tests/cpu/thermal_test.cpp" "tests/cpu/CMakeFiles/cpu_tests.dir/thermal_test.cpp.o" "gcc" "tests/cpu/CMakeFiles/cpu_tests.dir/thermal_test.cpp.o.d"
  "/root/repo/tests/cpu/vrm_test.cpp" "tests/cpu/CMakeFiles/cpu_tests.dir/vrm_test.cpp.o" "gcc" "tests/cpu/CMakeFiles/cpu_tests.dir/vrm_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/sc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/sc_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/sc_power.dir/DependInfo.cmake"
  "/root/repo/build/src/solar/CMakeFiles/sc_solar.dir/DependInfo.cmake"
  "/root/repo/build/src/pv/CMakeFiles/sc_pv.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
