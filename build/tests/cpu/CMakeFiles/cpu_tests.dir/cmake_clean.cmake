file(REMOVE_RECURSE
  "CMakeFiles/cpu_tests.dir/cacti_lite_test.cpp.o"
  "CMakeFiles/cpu_tests.dir/cacti_lite_test.cpp.o.d"
  "CMakeFiles/cpu_tests.dir/core_chip_test.cpp.o"
  "CMakeFiles/cpu_tests.dir/core_chip_test.cpp.o.d"
  "CMakeFiles/cpu_tests.dir/cycle_test.cpp.o"
  "CMakeFiles/cpu_tests.dir/cycle_test.cpp.o.d"
  "CMakeFiles/cpu_tests.dir/dvfs_test.cpp.o"
  "CMakeFiles/cpu_tests.dir/dvfs_test.cpp.o.d"
  "CMakeFiles/cpu_tests.dir/epi_scaling_test.cpp.o"
  "CMakeFiles/cpu_tests.dir/epi_scaling_test.cpp.o.d"
  "CMakeFiles/cpu_tests.dir/perf_model_test.cpp.o"
  "CMakeFiles/cpu_tests.dir/perf_model_test.cpp.o.d"
  "CMakeFiles/cpu_tests.dir/power_model_test.cpp.o"
  "CMakeFiles/cpu_tests.dir/power_model_test.cpp.o.d"
  "CMakeFiles/cpu_tests.dir/thermal_test.cpp.o"
  "CMakeFiles/cpu_tests.dir/thermal_test.cpp.o.d"
  "CMakeFiles/cpu_tests.dir/vrm_test.cpp.o"
  "CMakeFiles/cpu_tests.dir/vrm_test.cpp.o.d"
  "cpu_tests"
  "cpu_tests.pdb"
  "cpu_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpu_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
