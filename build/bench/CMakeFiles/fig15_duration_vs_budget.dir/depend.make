# Empty dependencies file for fig15_duration_vs_budget.
# This may be replaced when dependencies are built.
