file(REMOVE_RECURSE
  "CMakeFiles/fig15_duration_vs_budget.dir/fig15_duration_vs_budget.cpp.o"
  "CMakeFiles/fig15_duration_vs_budget.dir/fig15_duration_vs_budget.cpp.o.d"
  "fig15_duration_vs_budget"
  "fig15_duration_vs_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_duration_vs_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
