# Empty dependencies file for fig13_tracking_jan_az.
# This may be replaced when dependencies are built.
