file(REMOVE_RECURSE
  "CMakeFiles/fig13_tracking_jan_az.dir/fig13_tracking_jan_az.cpp.o"
  "CMakeFiles/fig13_tracking_jan_az.dir/fig13_tracking_jan_az.cpp.o.d"
  "fig13_tracking_jan_az"
  "fig13_tracking_jan_az.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_tracking_jan_az.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
