# Empty compiler generated dependencies file for fig01_fixed_load_utilization.
# This may be replaced when dependencies are built.
