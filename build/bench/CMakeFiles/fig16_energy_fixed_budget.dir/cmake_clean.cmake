file(REMOVE_RECURSE
  "CMakeFiles/fig16_energy_fixed_budget.dir/fig16_energy_fixed_budget.cpp.o"
  "CMakeFiles/fig16_energy_fixed_budget.dir/fig16_energy_fixed_budget.cpp.o.d"
  "fig16_energy_fixed_budget"
  "fig16_energy_fixed_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_energy_fixed_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
