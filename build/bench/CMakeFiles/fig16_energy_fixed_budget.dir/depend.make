# Empty dependencies file for fig16_energy_fixed_budget.
# This may be replaced when dependencies are built.
