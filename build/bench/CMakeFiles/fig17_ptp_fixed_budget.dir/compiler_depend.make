# Empty compiler generated dependencies file for fig17_ptp_fixed_budget.
# This may be replaced when dependencies are built.
