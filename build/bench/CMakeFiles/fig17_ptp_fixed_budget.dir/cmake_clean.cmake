file(REMOVE_RECURSE
  "CMakeFiles/fig17_ptp_fixed_budget.dir/fig17_ptp_fixed_budget.cpp.o"
  "CMakeFiles/fig17_ptp_fixed_budget.dir/fig17_ptp_fixed_budget.cpp.o.d"
  "fig17_ptp_fixed_budget"
  "fig17_ptp_fixed_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_ptp_fixed_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
