# Empty dependencies file for abl_battery_levels.
# This may be replaced when dependencies are built.
