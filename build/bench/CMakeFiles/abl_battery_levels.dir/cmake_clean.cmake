file(REMOVE_RECURSE
  "CMakeFiles/abl_battery_levels.dir/abl_battery_levels.cpp.o"
  "CMakeFiles/abl_battery_levels.dir/abl_battery_levels.cpp.o.d"
  "abl_battery_levels"
  "abl_battery_levels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_battery_levels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
