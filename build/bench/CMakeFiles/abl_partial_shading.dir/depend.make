# Empty dependencies file for abl_partial_shading.
# This may be replaced when dependencies are built.
