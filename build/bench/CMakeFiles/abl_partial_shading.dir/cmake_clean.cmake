file(REMOVE_RECURSE
  "CMakeFiles/abl_partial_shading.dir/abl_partial_shading.cpp.o"
  "CMakeFiles/abl_partial_shading.dir/abl_partial_shading.cpp.o.d"
  "abl_partial_shading"
  "abl_partial_shading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_partial_shading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
