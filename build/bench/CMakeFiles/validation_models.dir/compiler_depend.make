# Empty compiler generated dependencies file for validation_models.
# This may be replaced when dependencies are built.
