file(REMOVE_RECURSE
  "CMakeFiles/validation_models.dir/validation_models.cpp.o"
  "CMakeFiles/validation_models.dir/validation_models.cpp.o.d"
  "validation_models"
  "validation_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validation_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
