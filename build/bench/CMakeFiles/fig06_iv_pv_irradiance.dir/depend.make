# Empty dependencies file for fig06_iv_pv_irradiance.
# This may be replaced when dependencies are built.
