file(REMOVE_RECURSE
  "CMakeFiles/fig06_iv_pv_irradiance.dir/fig06_iv_pv_irradiance.cpp.o"
  "CMakeFiles/fig06_iv_pv_irradiance.dir/fig06_iv_pv_irradiance.cpp.o.d"
  "fig06_iv_pv_irradiance"
  "fig06_iv_pv_irradiance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_iv_pv_irradiance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
