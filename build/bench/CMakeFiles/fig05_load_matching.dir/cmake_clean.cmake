file(REMOVE_RECURSE
  "CMakeFiles/fig05_load_matching.dir/fig05_load_matching.cpp.o"
  "CMakeFiles/fig05_load_matching.dir/fig05_load_matching.cpp.o.d"
  "fig05_load_matching"
  "fig05_load_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_load_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
