# Empty dependencies file for fig05_load_matching.
# This may be replaced when dependencies are built.
