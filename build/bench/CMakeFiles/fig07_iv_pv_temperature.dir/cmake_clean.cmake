file(REMOVE_RECURSE
  "CMakeFiles/fig07_iv_pv_temperature.dir/fig07_iv_pv_temperature.cpp.o"
  "CMakeFiles/fig07_iv_pv_temperature.dir/fig07_iv_pv_temperature.cpp.o.d"
  "fig07_iv_pv_temperature"
  "fig07_iv_pv_temperature.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_iv_pv_temperature.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
