# Empty compiler generated dependencies file for fig07_iv_pv_temperature.
# This may be replaced when dependencies are built.
