# Empty dependencies file for fig19_effective_duration.
# This may be replaced when dependencies are built.
