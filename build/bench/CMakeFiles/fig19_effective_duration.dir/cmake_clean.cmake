file(REMOVE_RECURSE
  "CMakeFiles/fig19_effective_duration.dir/fig19_effective_duration.cpp.o"
  "CMakeFiles/fig19_effective_duration.dir/fig19_effective_duration.cpp.o.d"
  "fig19_effective_duration"
  "fig19_effective_duration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_effective_duration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
