# Empty compiler generated dependencies file for abl_thread_motion.
# This may be replaced when dependencies are built.
