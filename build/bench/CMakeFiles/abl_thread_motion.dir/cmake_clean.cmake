file(REMOVE_RECURSE
  "CMakeFiles/abl_thread_motion.dir/abl_thread_motion.cpp.o"
  "CMakeFiles/abl_thread_motion.dir/abl_thread_motion.cpp.o.d"
  "abl_thread_motion"
  "abl_thread_motion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_thread_motion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
