# Empty dependencies file for abl_seed_robustness.
# This may be replaced when dependencies are built.
