file(REMOVE_RECURSE
  "CMakeFiles/abl_seed_robustness.dir/abl_seed_robustness.cpp.o"
  "CMakeFiles/abl_seed_robustness.dir/abl_seed_robustness.cpp.o.d"
  "abl_seed_robustness"
  "abl_seed_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_seed_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
