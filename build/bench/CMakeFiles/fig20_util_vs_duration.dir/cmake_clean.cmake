file(REMOVE_RECURSE
  "CMakeFiles/fig20_util_vs_duration.dir/fig20_util_vs_duration.cpp.o"
  "CMakeFiles/fig20_util_vs_duration.dir/fig20_util_vs_duration.cpp.o.d"
  "fig20_util_vs_duration"
  "fig20_util_vs_duration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_util_vs_duration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
