# Empty dependencies file for fig20_util_vs_duration.
# This may be replaced when dependencies are built.
