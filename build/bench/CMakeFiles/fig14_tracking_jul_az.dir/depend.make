# Empty dependencies file for fig14_tracking_jul_az.
# This may be replaced when dependencies are built.
