file(REMOVE_RECURSE
  "CMakeFiles/fig14_tracking_jul_az.dir/fig14_tracking_jul_az.cpp.o"
  "CMakeFiles/fig14_tracking_jul_az.dir/fig14_tracking_jul_az.cpp.o.d"
  "fig14_tracking_jul_az"
  "fig14_tracking_jul_az.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_tracking_jul_az.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
