file(REMOVE_RECURSE
  "CMakeFiles/sc_bench_common.dir/common/bench_common.cpp.o"
  "CMakeFiles/sc_bench_common.dir/common/bench_common.cpp.o.d"
  "CMakeFiles/sc_bench_common.dir/common/fixed_budget_sweep.cpp.o"
  "CMakeFiles/sc_bench_common.dir/common/fixed_budget_sweep.cpp.o.d"
  "CMakeFiles/sc_bench_common.dir/common/tracking_figure.cpp.o"
  "CMakeFiles/sc_bench_common.dir/common/tracking_figure.cpp.o.d"
  "libsc_bench_common.a"
  "libsc_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sc_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
