# Empty compiler generated dependencies file for sc_bench_common.
# This may be replaced when dependencies are built.
