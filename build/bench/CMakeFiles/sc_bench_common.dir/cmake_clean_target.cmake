file(REMOVE_RECURSE
  "libsc_bench_common.a"
)
