file(REMOVE_RECURSE
  "CMakeFiles/fig18_energy_utilization.dir/fig18_energy_utilization.cpp.o"
  "CMakeFiles/fig18_energy_utilization.dir/fig18_energy_utilization.cpp.o.d"
  "fig18_energy_utilization"
  "fig18_energy_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_energy_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
