# Empty dependencies file for fig18_energy_utilization.
# This may be replaced when dependencies are built.
