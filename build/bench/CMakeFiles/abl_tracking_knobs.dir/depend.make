# Empty dependencies file for abl_tracking_knobs.
# This may be replaced when dependencies are built.
