file(REMOVE_RECURSE
  "CMakeFiles/abl_tracking_knobs.dir/abl_tracking_knobs.cpp.o"
  "CMakeFiles/abl_tracking_knobs.dir/abl_tracking_knobs.cpp.o.d"
  "abl_tracking_knobs"
  "abl_tracking_knobs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_tracking_knobs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
