file(REMOVE_RECURSE
  "CMakeFiles/fig21_normalized_ptp.dir/fig21_normalized_ptp.cpp.o"
  "CMakeFiles/fig21_normalized_ptp.dir/fig21_normalized_ptp.cpp.o.d"
  "fig21_normalized_ptp"
  "fig21_normalized_ptp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig21_normalized_ptp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
