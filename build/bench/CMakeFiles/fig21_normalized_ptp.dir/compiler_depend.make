# Empty compiler generated dependencies file for fig21_normalized_ptp.
# This may be replaced when dependencies are built.
