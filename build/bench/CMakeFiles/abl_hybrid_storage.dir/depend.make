# Empty dependencies file for abl_hybrid_storage.
# This may be replaced when dependencies are built.
