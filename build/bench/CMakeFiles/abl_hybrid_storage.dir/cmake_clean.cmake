file(REMOVE_RECURSE
  "CMakeFiles/abl_hybrid_storage.dir/abl_hybrid_storage.cpp.o"
  "CMakeFiles/abl_hybrid_storage.dir/abl_hybrid_storage.cpp.o.d"
  "abl_hybrid_storage"
  "abl_hybrid_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_hybrid_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
