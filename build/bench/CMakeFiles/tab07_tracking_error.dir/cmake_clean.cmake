file(REMOVE_RECURSE
  "CMakeFiles/tab07_tracking_error.dir/tab07_tracking_error.cpp.o"
  "CMakeFiles/tab07_tracking_error.dir/tab07_tracking_error.cpp.o.d"
  "tab07_tracking_error"
  "tab07_tracking_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab07_tracking_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
