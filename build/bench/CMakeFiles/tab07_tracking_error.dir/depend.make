# Empty dependencies file for tab07_tracking_error.
# This may be replaced when dependencies are built.
