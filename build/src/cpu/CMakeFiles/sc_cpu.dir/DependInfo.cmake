
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpu/cacti_lite.cpp" "src/cpu/CMakeFiles/sc_cpu.dir/cacti_lite.cpp.o" "gcc" "src/cpu/CMakeFiles/sc_cpu.dir/cacti_lite.cpp.o.d"
  "/root/repo/src/cpu/chip.cpp" "src/cpu/CMakeFiles/sc_cpu.dir/chip.cpp.o" "gcc" "src/cpu/CMakeFiles/sc_cpu.dir/chip.cpp.o.d"
  "/root/repo/src/cpu/core.cpp" "src/cpu/CMakeFiles/sc_cpu.dir/core.cpp.o" "gcc" "src/cpu/CMakeFiles/sc_cpu.dir/core.cpp.o.d"
  "/root/repo/src/cpu/cycle/cycle_core.cpp" "src/cpu/CMakeFiles/sc_cpu.dir/cycle/cycle_core.cpp.o" "gcc" "src/cpu/CMakeFiles/sc_cpu.dir/cycle/cycle_core.cpp.o.d"
  "/root/repo/src/cpu/cycle/trace_gen.cpp" "src/cpu/CMakeFiles/sc_cpu.dir/cycle/trace_gen.cpp.o" "gcc" "src/cpu/CMakeFiles/sc_cpu.dir/cycle/trace_gen.cpp.o.d"
  "/root/repo/src/cpu/dvfs.cpp" "src/cpu/CMakeFiles/sc_cpu.dir/dvfs.cpp.o" "gcc" "src/cpu/CMakeFiles/sc_cpu.dir/dvfs.cpp.o.d"
  "/root/repo/src/cpu/perf_model.cpp" "src/cpu/CMakeFiles/sc_cpu.dir/perf_model.cpp.o" "gcc" "src/cpu/CMakeFiles/sc_cpu.dir/perf_model.cpp.o.d"
  "/root/repo/src/cpu/power_model.cpp" "src/cpu/CMakeFiles/sc_cpu.dir/power_model.cpp.o" "gcc" "src/cpu/CMakeFiles/sc_cpu.dir/power_model.cpp.o.d"
  "/root/repo/src/cpu/thermal.cpp" "src/cpu/CMakeFiles/sc_cpu.dir/thermal.cpp.o" "gcc" "src/cpu/CMakeFiles/sc_cpu.dir/thermal.cpp.o.d"
  "/root/repo/src/cpu/vrm.cpp" "src/cpu/CMakeFiles/sc_cpu.dir/vrm.cpp.o" "gcc" "src/cpu/CMakeFiles/sc_cpu.dir/vrm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
