# Empty compiler generated dependencies file for sc_cpu.
# This may be replaced when dependencies are built.
