file(REMOVE_RECURSE
  "CMakeFiles/sc_cpu.dir/cacti_lite.cpp.o"
  "CMakeFiles/sc_cpu.dir/cacti_lite.cpp.o.d"
  "CMakeFiles/sc_cpu.dir/chip.cpp.o"
  "CMakeFiles/sc_cpu.dir/chip.cpp.o.d"
  "CMakeFiles/sc_cpu.dir/core.cpp.o"
  "CMakeFiles/sc_cpu.dir/core.cpp.o.d"
  "CMakeFiles/sc_cpu.dir/cycle/cycle_core.cpp.o"
  "CMakeFiles/sc_cpu.dir/cycle/cycle_core.cpp.o.d"
  "CMakeFiles/sc_cpu.dir/cycle/trace_gen.cpp.o"
  "CMakeFiles/sc_cpu.dir/cycle/trace_gen.cpp.o.d"
  "CMakeFiles/sc_cpu.dir/dvfs.cpp.o"
  "CMakeFiles/sc_cpu.dir/dvfs.cpp.o.d"
  "CMakeFiles/sc_cpu.dir/perf_model.cpp.o"
  "CMakeFiles/sc_cpu.dir/perf_model.cpp.o.d"
  "CMakeFiles/sc_cpu.dir/power_model.cpp.o"
  "CMakeFiles/sc_cpu.dir/power_model.cpp.o.d"
  "CMakeFiles/sc_cpu.dir/thermal.cpp.o"
  "CMakeFiles/sc_cpu.dir/thermal.cpp.o.d"
  "CMakeFiles/sc_cpu.dir/vrm.cpp.o"
  "CMakeFiles/sc_cpu.dir/vrm.cpp.o.d"
  "libsc_cpu.a"
  "libsc_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sc_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
