file(REMOVE_RECURSE
  "libsc_cpu.a"
)
