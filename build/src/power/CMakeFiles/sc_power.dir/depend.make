# Empty dependencies file for sc_power.
# This may be replaced when dependencies are built.
