file(REMOVE_RECURSE
  "libsc_power.a"
)
