
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/ats.cpp" "src/power/CMakeFiles/sc_power.dir/ats.cpp.o" "gcc" "src/power/CMakeFiles/sc_power.dir/ats.cpp.o.d"
  "/root/repo/src/power/battery.cpp" "src/power/CMakeFiles/sc_power.dir/battery.cpp.o" "gcc" "src/power/CMakeFiles/sc_power.dir/battery.cpp.o.d"
  "/root/repo/src/power/converter.cpp" "src/power/CMakeFiles/sc_power.dir/converter.cpp.o" "gcc" "src/power/CMakeFiles/sc_power.dir/converter.cpp.o.d"
  "/root/repo/src/power/operating_point.cpp" "src/power/CMakeFiles/sc_power.dir/operating_point.cpp.o" "gcc" "src/power/CMakeFiles/sc_power.dir/operating_point.cpp.o.d"
  "/root/repo/src/power/psu.cpp" "src/power/CMakeFiles/sc_power.dir/psu.cpp.o" "gcc" "src/power/CMakeFiles/sc_power.dir/psu.cpp.o.d"
  "/root/repo/src/power/sensors.cpp" "src/power/CMakeFiles/sc_power.dir/sensors.cpp.o" "gcc" "src/power/CMakeFiles/sc_power.dir/sensors.cpp.o.d"
  "/root/repo/src/power/ups.cpp" "src/power/CMakeFiles/sc_power.dir/ups.cpp.o" "gcc" "src/power/CMakeFiles/sc_power.dir/ups.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pv/CMakeFiles/sc_pv.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
