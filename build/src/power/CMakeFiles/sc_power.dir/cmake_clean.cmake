file(REMOVE_RECURSE
  "CMakeFiles/sc_power.dir/ats.cpp.o"
  "CMakeFiles/sc_power.dir/ats.cpp.o.d"
  "CMakeFiles/sc_power.dir/battery.cpp.o"
  "CMakeFiles/sc_power.dir/battery.cpp.o.d"
  "CMakeFiles/sc_power.dir/converter.cpp.o"
  "CMakeFiles/sc_power.dir/converter.cpp.o.d"
  "CMakeFiles/sc_power.dir/operating_point.cpp.o"
  "CMakeFiles/sc_power.dir/operating_point.cpp.o.d"
  "CMakeFiles/sc_power.dir/psu.cpp.o"
  "CMakeFiles/sc_power.dir/psu.cpp.o.d"
  "CMakeFiles/sc_power.dir/sensors.cpp.o"
  "CMakeFiles/sc_power.dir/sensors.cpp.o.d"
  "CMakeFiles/sc_power.dir/ups.cpp.o"
  "CMakeFiles/sc_power.dir/ups.cpp.o.d"
  "libsc_power.a"
  "libsc_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sc_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
