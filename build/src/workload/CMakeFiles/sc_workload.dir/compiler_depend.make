# Empty compiler generated dependencies file for sc_workload.
# This may be replaced when dependencies are built.
