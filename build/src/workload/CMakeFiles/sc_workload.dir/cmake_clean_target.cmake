file(REMOVE_RECURSE
  "libsc_workload.a"
)
