file(REMOVE_RECURSE
  "CMakeFiles/sc_workload.dir/catalog.cpp.o"
  "CMakeFiles/sc_workload.dir/catalog.cpp.o.d"
  "CMakeFiles/sc_workload.dir/multiprogram.cpp.o"
  "CMakeFiles/sc_workload.dir/multiprogram.cpp.o.d"
  "libsc_workload.a"
  "libsc_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sc_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
