
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pv/bp3180n.cpp" "src/pv/CMakeFiles/sc_pv.dir/bp3180n.cpp.o" "gcc" "src/pv/CMakeFiles/sc_pv.dir/bp3180n.cpp.o.d"
  "/root/repo/src/pv/cell.cpp" "src/pv/CMakeFiles/sc_pv.dir/cell.cpp.o" "gcc" "src/pv/CMakeFiles/sc_pv.dir/cell.cpp.o.d"
  "/root/repo/src/pv/module.cpp" "src/pv/CMakeFiles/sc_pv.dir/module.cpp.o" "gcc" "src/pv/CMakeFiles/sc_pv.dir/module.cpp.o.d"
  "/root/repo/src/pv/mpp.cpp" "src/pv/CMakeFiles/sc_pv.dir/mpp.cpp.o" "gcc" "src/pv/CMakeFiles/sc_pv.dir/mpp.cpp.o.d"
  "/root/repo/src/pv/shading.cpp" "src/pv/CMakeFiles/sc_pv.dir/shading.cpp.o" "gcc" "src/pv/CMakeFiles/sc_pv.dir/shading.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
