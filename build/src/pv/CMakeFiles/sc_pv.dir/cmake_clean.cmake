file(REMOVE_RECURSE
  "CMakeFiles/sc_pv.dir/bp3180n.cpp.o"
  "CMakeFiles/sc_pv.dir/bp3180n.cpp.o.d"
  "CMakeFiles/sc_pv.dir/cell.cpp.o"
  "CMakeFiles/sc_pv.dir/cell.cpp.o.d"
  "CMakeFiles/sc_pv.dir/module.cpp.o"
  "CMakeFiles/sc_pv.dir/module.cpp.o.d"
  "CMakeFiles/sc_pv.dir/mpp.cpp.o"
  "CMakeFiles/sc_pv.dir/mpp.cpp.o.d"
  "CMakeFiles/sc_pv.dir/shading.cpp.o"
  "CMakeFiles/sc_pv.dir/shading.cpp.o.d"
  "libsc_pv.a"
  "libsc_pv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sc_pv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
