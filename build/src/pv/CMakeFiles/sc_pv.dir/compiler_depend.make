# Empty compiler generated dependencies file for sc_pv.
# This may be replaced when dependencies are built.
