file(REMOVE_RECURSE
  "libsc_pv.a"
)
