file(REMOVE_RECURSE
  "libsc_solar.a"
)
