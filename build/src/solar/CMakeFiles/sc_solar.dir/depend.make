# Empty dependencies file for sc_solar.
# This may be replaced when dependencies are built.
