file(REMOVE_RECURSE
  "CMakeFiles/sc_solar.dir/clearsky.cpp.o"
  "CMakeFiles/sc_solar.dir/clearsky.cpp.o.d"
  "CMakeFiles/sc_solar.dir/geometry.cpp.o"
  "CMakeFiles/sc_solar.dir/geometry.cpp.o.d"
  "CMakeFiles/sc_solar.dir/midc.cpp.o"
  "CMakeFiles/sc_solar.dir/midc.cpp.o.d"
  "CMakeFiles/sc_solar.dir/sites.cpp.o"
  "CMakeFiles/sc_solar.dir/sites.cpp.o.d"
  "CMakeFiles/sc_solar.dir/trace.cpp.o"
  "CMakeFiles/sc_solar.dir/trace.cpp.o.d"
  "CMakeFiles/sc_solar.dir/weather.cpp.o"
  "CMakeFiles/sc_solar.dir/weather.cpp.o.d"
  "libsc_solar.a"
  "libsc_solar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sc_solar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
