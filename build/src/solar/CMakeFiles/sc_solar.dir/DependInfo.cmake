
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/solar/clearsky.cpp" "src/solar/CMakeFiles/sc_solar.dir/clearsky.cpp.o" "gcc" "src/solar/CMakeFiles/sc_solar.dir/clearsky.cpp.o.d"
  "/root/repo/src/solar/geometry.cpp" "src/solar/CMakeFiles/sc_solar.dir/geometry.cpp.o" "gcc" "src/solar/CMakeFiles/sc_solar.dir/geometry.cpp.o.d"
  "/root/repo/src/solar/midc.cpp" "src/solar/CMakeFiles/sc_solar.dir/midc.cpp.o" "gcc" "src/solar/CMakeFiles/sc_solar.dir/midc.cpp.o.d"
  "/root/repo/src/solar/sites.cpp" "src/solar/CMakeFiles/sc_solar.dir/sites.cpp.o" "gcc" "src/solar/CMakeFiles/sc_solar.dir/sites.cpp.o.d"
  "/root/repo/src/solar/trace.cpp" "src/solar/CMakeFiles/sc_solar.dir/trace.cpp.o" "gcc" "src/solar/CMakeFiles/sc_solar.dir/trace.cpp.o.d"
  "/root/repo/src/solar/weather.cpp" "src/solar/CMakeFiles/sc_solar.dir/weather.cpp.o" "gcc" "src/solar/CMakeFiles/sc_solar.dir/weather.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
