
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/aggregate.cpp" "src/core/CMakeFiles/sc_core.dir/aggregate.cpp.o" "gcc" "src/core/CMakeFiles/sc_core.dir/aggregate.cpp.o.d"
  "/root/repo/src/core/carbon.cpp" "src/core/CMakeFiles/sc_core.dir/carbon.cpp.o" "gcc" "src/core/CMakeFiles/sc_core.dir/carbon.cpp.o.d"
  "/root/repo/src/core/controller.cpp" "src/core/CMakeFiles/sc_core.dir/controller.cpp.o" "gcc" "src/core/CMakeFiles/sc_core.dir/controller.cpp.o.d"
  "/root/repo/src/core/fixed_power.cpp" "src/core/CMakeFiles/sc_core.dir/fixed_power.cpp.o" "gcc" "src/core/CMakeFiles/sc_core.dir/fixed_power.cpp.o.d"
  "/root/repo/src/core/fleet.cpp" "src/core/CMakeFiles/sc_core.dir/fleet.cpp.o" "gcc" "src/core/CMakeFiles/sc_core.dir/fleet.cpp.o.d"
  "/root/repo/src/core/load_adapter.cpp" "src/core/CMakeFiles/sc_core.dir/load_adapter.cpp.o" "gcc" "src/core/CMakeFiles/sc_core.dir/load_adapter.cpp.o.d"
  "/root/repo/src/core/perturb_observe.cpp" "src/core/CMakeFiles/sc_core.dir/perturb_observe.cpp.o" "gcc" "src/core/CMakeFiles/sc_core.dir/perturb_observe.cpp.o.d"
  "/root/repo/src/core/simulation.cpp" "src/core/CMakeFiles/sc_core.dir/simulation.cpp.o" "gcc" "src/core/CMakeFiles/sc_core.dir/simulation.cpp.o.d"
  "/root/repo/src/core/tpr.cpp" "src/core/CMakeFiles/sc_core.dir/tpr.cpp.o" "gcc" "src/core/CMakeFiles/sc_core.dir/tpr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/sc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/sc_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/sc_power.dir/DependInfo.cmake"
  "/root/repo/build/src/solar/CMakeFiles/sc_solar.dir/DependInfo.cmake"
  "/root/repo/build/src/pv/CMakeFiles/sc_pv.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
