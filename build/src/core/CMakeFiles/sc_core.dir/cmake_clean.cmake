file(REMOVE_RECURSE
  "CMakeFiles/sc_core.dir/aggregate.cpp.o"
  "CMakeFiles/sc_core.dir/aggregate.cpp.o.d"
  "CMakeFiles/sc_core.dir/carbon.cpp.o"
  "CMakeFiles/sc_core.dir/carbon.cpp.o.d"
  "CMakeFiles/sc_core.dir/controller.cpp.o"
  "CMakeFiles/sc_core.dir/controller.cpp.o.d"
  "CMakeFiles/sc_core.dir/fixed_power.cpp.o"
  "CMakeFiles/sc_core.dir/fixed_power.cpp.o.d"
  "CMakeFiles/sc_core.dir/fleet.cpp.o"
  "CMakeFiles/sc_core.dir/fleet.cpp.o.d"
  "CMakeFiles/sc_core.dir/load_adapter.cpp.o"
  "CMakeFiles/sc_core.dir/load_adapter.cpp.o.d"
  "CMakeFiles/sc_core.dir/perturb_observe.cpp.o"
  "CMakeFiles/sc_core.dir/perturb_observe.cpp.o.d"
  "CMakeFiles/sc_core.dir/simulation.cpp.o"
  "CMakeFiles/sc_core.dir/simulation.cpp.o.d"
  "CMakeFiles/sc_core.dir/tpr.cpp.o"
  "CMakeFiles/sc_core.dir/tpr.cpp.o.d"
  "libsc_core.a"
  "libsc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
