file(REMOVE_RECURSE
  "CMakeFiles/datacenter_day.dir/datacenter_day.cpp.o"
  "CMakeFiles/datacenter_day.dir/datacenter_day.cpp.o.d"
  "datacenter_day"
  "datacenter_day.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacenter_day.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
