# Empty dependencies file for panel_designer.
# This may be replaced when dependencies are built.
