file(REMOVE_RECURSE
  "CMakeFiles/panel_designer.dir/panel_designer.cpp.o"
  "CMakeFiles/panel_designer.dir/panel_designer.cpp.o.d"
  "panel_designer"
  "panel_designer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/panel_designer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
