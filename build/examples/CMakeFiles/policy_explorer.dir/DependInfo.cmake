
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/policy_explorer.cpp" "examples/CMakeFiles/policy_explorer.dir/policy_explorer.cpp.o" "gcc" "examples/CMakeFiles/policy_explorer.dir/policy_explorer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/sc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/sc_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/sc_power.dir/DependInfo.cmake"
  "/root/repo/build/src/solar/CMakeFiles/sc_solar.dir/DependInfo.cmake"
  "/root/repo/build/src/pv/CMakeFiles/sc_pv.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
