file(REMOVE_RECURSE
  "CMakeFiles/solar_farm.dir/solar_farm.cpp.o"
  "CMakeFiles/solar_farm.dir/solar_farm.cpp.o.d"
  "solar_farm"
  "solar_farm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solar_farm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
