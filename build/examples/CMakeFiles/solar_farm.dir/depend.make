# Empty dependencies file for solar_farm.
# This may be replaced when dependencies are built.
