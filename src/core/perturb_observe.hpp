/**
 * @file
 * Classic perturb-and-observe MPPT on the converter transfer ratio
 * (paper Section 4.2, references [3, 32]).
 *
 * This is the hardware-style tracker SolarCore builds on: hold the
 * load fixed, nudge the transfer ratio by a step, observe the sensed
 * output power, keep the direction if power rose and flip it if power
 * fell. It converges to (and then oscillates around) the MPP of a
 * unimodal curve without any model knowledge. SolarCore's controller
 * supersedes it by co-tuning the load; this standalone implementation
 * exists as the algorithmic baseline, for tests of Table 1's
 * directional claims, and for users who want a plain MPPT block.
 */

#ifndef SOLARCORE_CORE_PERTURB_OBSERVE_HPP
#define SOLARCORE_CORE_PERTURB_OBSERVE_HPP

#include "power/converter.hpp"
#include "power/operating_point.hpp"
#include "power/sensors.hpp"
#include "pv/module.hpp"

namespace solarcore::core {

/** Configuration of the P&O loop. */
struct PerturbObserveConfig
{
    double deltaK = 0.02;    //!< transfer-ratio step per iteration
    double minDeltaK = 0.0025; //!< floor for the adaptive step
    bool adaptiveStep = true; //!< halve the step on direction flips
};

/** A perturb-and-observe tracker bound to a panel/converter/load. */
class PerturbObserveTracker
{
  public:
    /**
     * @param panel     PV source (environment rebound by the caller)
     * @param converter transfer-ratio converter under control
     * @param load_ohm  fixed resistive load at the converter output
     * @param sensor    output-side sensor the tracker reads through
     * @param config    loop parameters
     */
    PerturbObserveTracker(const pv::IvSource &panel,
                          power::DcDcConverter &converter, double load_ohm,
                          power::IvSensor sensor = power::IvSensor(),
                          PerturbObserveConfig config =
                              PerturbObserveConfig());

    /** Change the load (the chip moved its DVFS levels). */
    void setLoad(double load_ohm);

    /**
     * Execute one perturb-observe iteration.
     * @return the sensed output power after the step [W]
     */
    double step();

    /** Run @p iterations steps; returns the final sensed power [W]. */
    double run(int iterations);

    /** Iterations executed so far. */
    int iterations() const { return iterations_; }

    /** Direction flips observed (a proxy for settling). */
    int directionFlips() const { return flips_; }

  private:
    const pv::IvSource *panel_;
    power::DcDcConverter *converter_;
    double loadOhm_;
    power::IvSensor sensor_;
    PerturbObserveConfig config_;

    double stepK_;
    double direction_ = 1.0;
    double lastPower_ = -1.0;
    int iterations_ = 0;
    int flips_ = 0;
};

} // namespace solarcore::core

#endif // SOLARCORE_CORE_PERTURB_OBSERVE_HPP
