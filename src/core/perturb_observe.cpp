#include "perturb_observe.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace solarcore::core {

PerturbObserveTracker::PerturbObserveTracker(const pv::IvSource &panel,
                                             power::DcDcConverter &converter,
                                             double load_ohm,
                                             power::IvSensor sensor,
                                             PerturbObserveConfig config)
    : panel_(&panel), converter_(&converter), loadOhm_(load_ohm),
      sensor_(sensor), config_(config), stepK_(config.deltaK)
{
    SC_ASSERT(load_ohm > 0.0, "PerturbObserveTracker: bad load");
    SC_ASSERT(config_.deltaK > 0.0 && config_.minDeltaK > 0.0,
              "PerturbObserveTracker: bad step configuration");
}

void
PerturbObserveTracker::setLoad(double load_ohm)
{
    SC_ASSERT(load_ohm > 0.0, "PerturbObserveTracker: bad load");
    loadOhm_ = load_ohm;
    // A load change invalidates the power memory; re-prime next step.
    lastPower_ = -1.0;
}

double
PerturbObserveTracker::step()
{
    ++iterations_;

    // Perturb.
    converter_->adjustRatio(direction_ * stepK_);

    // Observe through the sensor.
    const auto st = power::solveNetwork(*panel_, *converter_, loadOhm_);
    if (!st.valid) {
        // Dark panel or infeasible point: back off and flip.
        converter_->adjustRatio(-direction_ * stepK_);
        direction_ = -direction_;
        return 0.0;
    }
    const double p = sensor_.measurePower(st.load);

    // A large power jump means the environment moved, not the
    // perturbation: re-arm the full step so the tracker can chase the
    // new MPP instead of crawling at the settled step size.
    if (config_.adaptiveStep && lastPower_ > 0.0 &&
        std::abs(p - lastPower_) > 0.2 * lastPower_) {
        stepK_ = config_.deltaK;
    }

    // Decide: keep climbing or turn around.
    if (lastPower_ >= 0.0 && p < lastPower_) {
        direction_ = -direction_;
        ++flips_;
        if (config_.adaptiveStep) {
            stepK_ = std::max(config_.minDeltaK, 0.5 * stepK_);
        }
    }
    lastPower_ = p;
    return p;
}

double
PerturbObserveTracker::run(int iterations)
{
    SC_ASSERT(iterations > 0, "PerturbObserveTracker: bad iterations");
    double p = 0.0;
    for (int i = 0; i < iterations; ++i)
        p = step();
    return p;
}

} // namespace solarcore::core
