#include "controller.hpp"

#include "util/logging.hpp"

namespace solarcore::core {

SolarCoreController::SolarCoreController(const pv::IvSource &panel,
                                         cpu::MultiCoreChip &chip,
                                         LoadAdapter &adapter,
                                         ControllerConfig config)
    : panel_(&panel), chip_(&chip), adapter_(&adapter), config_(config),
      converter_(0.5, 8.0, config.converterEfficiency)
{
    SC_ASSERT(config_.railNominalV > 0.0, "controller: bad rail voltage");
    SC_ASSERT(config_.marginFraction >= 0.0 && config_.marginFraction < 0.5,
              "controller: bad margin");
}

bool
SolarCoreController::sustainable(double demand_w)
{
    if (demand_w <= 0.0)
        return false;
    const double with_margin = demand_w * (1.0 + config_.marginFraction);
    const auto st = power::pinRailVoltage(*panel_, converter_,
                                          config_.railNominalV, with_margin);
    return st.valid;
}

void
SolarCoreController::shedUntilSustainable(TrackResult &result)
{
    while (!sustainable(chip_->totalPower())) {
        const auto step = adapter_->decreaseOneStep(*chip_);
        if (!step.valid) {
            result.solarViable = false;
            return;
        }
        ++result.stepsDown;
        ++totalSteps_;
    }
    result.solarViable = true;
}

SolarCoreController::MppSide
SolarCoreController::probeMppSide()
{
    // Fix the chip's load line at its present demand and rail voltage.
    const double demand = chip_->totalPower();
    const double r_load =
        power::loadResistance(config_.railNominalV, demand);

    const double k0 = converter_.ratio();
    const auto base = power::solveNetwork(*panel_, converter_, r_load);

    power::DcDcConverter probe = converter_;
    probe.setRatio(k0 + config_.deltaK);
    const auto perturbed = power::solveNetwork(*panel_, probe, r_load);

    if (!base.valid || !perturbed.valid)
        return MppSide::AtMpp;

    // Raising k raises the panel voltage. If the sensed output current
    // grows, the perturbation approached the MPP from the left
    // (Figure 5-b); if it falls, the point was right of the MPP.
    const double di = perturbed.load.current - base.load.current;
    const double tol = 1e-7 * (1.0 + base.load.current);
    if (di > tol)
        return MppSide::Left;
    if (di < -tol)
        return MppSide::Right;
    return MppSide::AtMpp;
}

TrackResult
SolarCoreController::track()
{
    TrackResult result;
    adapter_->beginTrackingPeriod(*chip_);

    // Step 1: restore the rail -- shed until the present demand fits.
    shedUntilSustainable(result);
    if (!result.solarViable)
        return result;

    // Steps 2+3: climb toward the MPP one notch at a time, retuning k
    // (inside pinRailVoltage) after every notch. When the policy's
    // chosen notch overshoots, revert it and fall through to the fill
    // stage below -- that notch marks the paper's inflection point.
    for (int i = 0; i < config_.maxTuneSteps; ++i) {
        const auto snapshot = chip_->settings();
        const auto step = adapter_->increaseOneStep(*chip_);
        if (!step.valid)
            break; // every core already at the top level
        if (!sustainable(chip_->totalPower())) {
            chip_->applySettings(snapshot); // inflection: back off
            break;
        }
        ++result.stepsUp;
        ++totalSteps_;
    }

    // Fill stage (paper Figure 12: iterate "until the aggregated
    // multi-core power approximates the new budget"): after the
    // policy's preferred notch no longer fits, absorb the remaining
    // headroom with the smallest-power notches that still fit. This
    // runs identically for every policy, so it narrows the margin
    // without disturbing the policies' allocation character.
    for (int i = 0; i < config_.maxTuneSteps; ++i) {
        StepCandidate best;
        for (const auto &s : allUpSteps(*chip_)) {
            if (s.deltaPowerW <= 0.0)
                continue;
            if (!best.valid || s.deltaPowerW < best.deltaPowerW)
                best = s;
        }
        if (!best.valid)
            break;
        const auto snapshot = chip_->settings();
        applyStep(*chip_, best);
        if (!sustainable(chip_->totalPower())) {
            chip_->applySettings(snapshot);
            break;
        }
        ++result.stepsUp;
        ++totalSteps_;
    }

    // Final settle: pin the rail for the demand we ended at.
    result.net = power::pinRailVoltage(*panel_, converter_,
                                       config_.railNominalV,
                                       chip_->totalPower());
    result.solarViable = result.net.valid;
    return result;
}

TrackResult
SolarCoreController::enforceRail()
{
    TrackResult result;
    if (sustainable(chip_->totalPower())) {
        result.solarViable = true;
        result.net = power::pinRailVoltage(*panel_, converter_,
                                           config_.railNominalV,
                                           chip_->totalPower());
        return result;
    }
    shedUntilSustainable(result);
    if (result.solarViable) {
        result.net = power::pinRailVoltage(*panel_, converter_,
                                           config_.railNominalV,
                                           chip_->totalPower());
        result.solarViable = result.net.valid;
    }
    return result;
}

} // namespace solarcore::core
