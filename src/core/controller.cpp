#include "controller.hpp"

#include <algorithm>

#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"

namespace solarcore::core {

SolarCoreController::SolarCoreController(const pv::IvSource &panel,
                                         cpu::MultiCoreChip &chip,
                                         LoadAdapter &adapter,
                                         ControllerConfig config)
    : panel_(&panel), arrayPanel_(dynamic_cast<const pv::PvArray *>(&panel)),
      chip_(&chip), adapter_(&adapter), config_(config),
      converter_(0.5, 8.0, config.converterEfficiency)
{
    SC_ASSERT(config_.railNominalV > 0.0, "controller: bad rail voltage");
    SC_ASSERT(config_.marginFraction >= 0.0 && config_.marginFraction < 0.5,
              "controller: bad margin");
}

power::NetworkState
SolarCoreController::pinRail(double demand_w)
{
    // Non-uniform panels (partial shading / composite strings) and the
    // Scalar-kernel / Newton-oracle modes keep the legacy call
    // sequence, which doubles as the measurable parity baseline.
    if (arrayPanel_ && pv::selectedPvKernel() != pv::PvKernel::Scalar &&
        !pv::newtonIvSolve()) {
        if (!prepared_) {
            prepared_.emplace(arrayPanel_->module(),
                              arrayPanel_->modulesSeries(),
                              arrayPanel_->modulesParallel());
        }
        prepared_->setEnvironment(arrayPanel_->environment());
        return power::pinRailVoltage(*prepared_, converter_,
                                     config_.railNominalV, demand_w);
    }
    return power::pinRailVoltage(*panel_, converter_, config_.railNominalV,
                                 demand_w);
}

bool
SolarCoreController::sustainable(double demand_w)
{
    if (demand_w <= 0.0)
        return false;
    const double with_margin = demand_w * (1.0 + config_.marginFraction);
    return pinRail(with_margin).valid;
}

int
SolarCoreController::rankOf(const StepCandidate &step,
                            const std::vector<StepCandidate> &candidates,
                            bool upward)
{
    int rank = 1;
    for (const auto &c : candidates) {
        if (c.coreIndex == step.coreIndex)
            continue;
        if (upward ? c.tpr() > step.tpr() : c.tpr() < step.tpr())
            ++rank;
    }
    return rank;
}

void
SolarCoreController::traceStep(const StepCandidate &step, int rank)
{
    obs::TraceEvent e;
    e.core = static_cast<std::int16_t>(step.coreIndex);
    e.v0 = step.deltaPowerW;
    if (step.fromGated != step.toGated) {
        e.kind = obs::EventKind::Pcpg;
        e.arg0 = step.toGated ? 1 : 0;
    } else {
        e.kind = obs::EventKind::DvfsChange;
        e.i0 = step.fromLevel;
        e.i1 = step.toLevel;
        e.arg0 = static_cast<std::uint8_t>(std::min(rank, 255));
        e.v1 = step.tpr();
    }
    trace_->emit(e);
}

void
SolarCoreController::shedUntilSustainable(TrackResult &result)
{
    while (!sustainable(chip_->totalPower())) {
        std::vector<StepCandidate> candidates;
        if (trace_)
            candidates = allDownSteps(*chip_);
        const auto step = adapter_->decreaseOneStep(*chip_);
        if (!step.valid) {
            result.solarViable = false;
            return;
        }
        if (trace_)
            traceStep(step, rankOf(step, candidates, false));
        ++result.stepsDown;
        ++totalSteps_;
    }
    result.solarViable = true;
}

SolarCoreController::MppSide
SolarCoreController::probeMppSide()
{
    // Fix the chip's load line at its present demand and rail voltage.
    const double demand = chip_->totalPower();
    const double r_load =
        power::loadResistance(config_.railNominalV, demand);

    const double k0 = converter_.ratio();
    const auto base = power::solveNetwork(*panel_, converter_, r_load);

    power::DcDcConverter probe = converter_;
    probe.setRatio(k0 + config_.deltaK);
    const auto perturbed = power::solveNetwork(*panel_, probe, r_load);

    if (!base.valid || !perturbed.valid)
        return MppSide::AtMpp;

    // Raising k raises the panel voltage. If the sensed output current
    // grows, the perturbation approached the MPP from the left
    // (Figure 5-b); if it falls, the point was right of the MPP.
    const double di = perturbed.load.current - base.load.current;
    const double tol = 1e-7 * (1.0 + base.load.current);
    if (di > tol)
        return MppSide::Left;
    if (di < -tol)
        return MppSide::Right;
    return MppSide::AtMpp;
}

TrackResult
SolarCoreController::track()
{
    SC_PROFILE_SCOPE("controller.track");
    TrackResult result;
    adapter_->beginTrackingPeriod(*chip_);

    // Step 1: restore the rail -- shed until the present demand fits.
    shedUntilSustainable(result);
    if (!result.solarViable) {
        if (trace_) {
            obs::TraceEvent e;
            e.kind = obs::EventKind::MpptTrack;
            e.i0 = result.stepsUp;
            e.i1 = result.stepsDown;
            e.v0 = chip_->totalPower();
            e.arg0 = 0;
            trace_->emit(e);
        }
        return result;
    }

    // Steps 2+3: climb toward the MPP one notch at a time, retuning k
    // (inside pinRailVoltage) after every notch. When the policy's
    // chosen notch overshoots, revert it and fall through to the fill
    // stage below -- that notch marks the paper's inflection point.
    for (int i = 0; i < config_.maxTuneSteps; ++i) {
        const auto snapshot = chip_->settings();
        std::vector<StepCandidate> candidates;
        if (trace_)
            candidates = allUpSteps(*chip_);
        const auto step = adapter_->increaseOneStep(*chip_);
        if (!step.valid)
            break; // every core already at the top level
        if (!sustainable(chip_->totalPower())) {
            chip_->applySettings(snapshot); // inflection: back off
            break;
        }
        if (trace_)
            traceStep(step, rankOf(step, candidates, true));
        ++result.stepsUp;
        ++totalSteps_;
    }

    // Fill stage (paper Figure 12: iterate "until the aggregated
    // multi-core power approximates the new budget"): after the
    // policy's preferred notch no longer fits, absorb the remaining
    // headroom with the smallest-power notches that still fit. This
    // runs identically for every policy, so it narrows the margin
    // without disturbing the policies' allocation character.
    for (int i = 0; i < config_.maxTuneSteps; ++i) {
        StepCandidate best;
        const auto ups = allUpSteps(*chip_);
        for (const auto &s : ups) {
            if (s.deltaPowerW <= 0.0)
                continue;
            if (!best.valid || s.deltaPowerW < best.deltaPowerW)
                best = s;
        }
        if (!best.valid)
            break;
        const auto snapshot = chip_->settings();
        applyStep(*chip_, best);
        if (!sustainable(chip_->totalPower())) {
            chip_->applySettings(snapshot);
            break;
        }
        if (trace_)
            traceStep(best, rankOf(best, ups, true));
        ++result.stepsUp;
        ++totalSteps_;
    }

    // Final settle: pin the rail for the demand we ended at.
    result.net = pinRail(chip_->totalPower());
    result.solarViable = result.net.valid;

    if (trace_) {
        obs::TraceEvent e;
        e.kind = obs::EventKind::MpptTrack;
        e.i0 = result.stepsUp;
        e.i1 = result.stepsDown;
        e.v0 = chip_->totalPower();
        e.arg0 = result.solarViable ? 1 : 0;
        trace_->emit(e);
    }
    return result;
}

TrackResult
SolarCoreController::enforceRail()
{
    SC_PROFILE_SCOPE("controller.enforce");
    TrackResult result;
    if (sustainable(chip_->totalPower())) {
        result.solarViable = true;
        result.net = pinRail(chip_->totalPower());
        return result;
    }
    shedUntilSustainable(result);
    if (result.solarViable) {
        result.net = pinRail(chip_->totalPower());
        result.solarViable = result.net.valid;
    }
    return result;
}

} // namespace solarcore::core
