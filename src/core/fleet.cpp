#include "fleet.hpp"

#include <algorithm>

#include "util/logging.hpp"
#include "util/stats.hpp"

namespace solarcore::core {

FleetTotals
aggregateFleet(const std::vector<FleetGroupEnergy> &groups)
{
    FleetTotals t;
    for (const auto &g : groups) {
        t.nodes += g.nodeCount;
        t.mppEnergyWh += g.nodeCount * g.mppEnergyWh;
        t.solarEnergyWh += g.nodeCount * g.solarEnergyWh;
        t.gridEnergyWh += g.nodeCount * g.gridEnergyWh;
        t.chipEnergyWh += g.nodeCount * g.chipEnergyWh;
        t.solarInstructions += g.nodeCount * g.solarInstructions;
        t.totalInstructions += g.nodeCount * g.totalInstructions;
    }
    t.fleetUtilization =
        t.mppEnergyWh > 0.0 ? t.solarEnergyWh / t.mppEnergyWh : 0.0;
    const double total = t.solarEnergyWh + t.gridEnergyWh;
    t.greenFraction = total > 0.0 ? t.solarEnergyWh / total : 0.0;
    return t;
}

FleetResult
simulateFleetDay(const pv::PvModule &module,
                 const std::vector<NodeSpec> &specs)
{
    SC_ASSERT(!specs.empty(), "simulateFleetDay: empty fleet");
    FleetResult fleet;
    fleet.nodes.reserve(specs.size());

    std::vector<FleetGroupEnergy> groups;
    groups.reserve(specs.size());
    for (const auto &spec : specs) {
        const auto trace = solar::generateDayTrace(spec.site, spec.month,
                                                   spec.weatherSeed);
        SimConfig cfg = spec.config;
        cfg.recordTimeline = true;
        const auto r = simulateDay(module, trace, spec.workload, cfg);

        FleetGroupEnergy g;
        g.mppEnergyWh = r.mppEnergyWh;
        g.solarEnergyWh = r.solarEnergyWh;
        g.gridEnergyWh = r.gridEnergyWh;
        g.chipEnergyWh = r.chipEnergyWh;
        g.solarInstructions = r.solarInstructions;
        g.totalInstructions = r.totalInstructions;
        groups.push_back(g);
        fleet.nodes.push_back(r);
    }

    const FleetTotals totals = aggregateFleet(groups);
    fleet.totalSolarWh = totals.solarEnergyWh;
    fleet.totalGridWh = totals.gridEnergyWh;
    fleet.totalGreenInstructions = totals.solarInstructions;
    fleet.fleetUtilization = totals.fleetUtilization;
    fleet.greenFraction = totals.greenFraction;

    // Smoothing statistics over the common timeline span.
    std::size_t n = fleet.nodes.front().timeline.size();
    for (const auto &node : fleet.nodes)
        n = std::min(n, node.timeline.size());
    RunningStats single;
    RunningStats combined;
    for (std::size_t i = 0; i < n; ++i) {
        double sum = 0.0;
        for (const auto &node : fleet.nodes)
            sum += node.timeline[i].consumedW;
        single.add(fleet.nodes.front().timeline[i].consumedW);
        combined.add(sum / static_cast<double>(fleet.nodes.size()));
    }
    auto cov = [](const RunningStats &s) {
        return s.mean() > 0.0 ? s.stddev() / s.mean() : 0.0;
    };
    fleet.singleNodeCov = cov(single);
    fleet.fleetCov = cov(combined);
    return fleet;
}

} // namespace solarcore::core
