#include "fleet.hpp"

#include <algorithm>

#include "util/logging.hpp"
#include "util/stats.hpp"

namespace solarcore::core {

FleetResult
simulateFleetDay(const pv::PvModule &module,
                 const std::vector<NodeSpec> &specs)
{
    SC_ASSERT(!specs.empty(), "simulateFleetDay: empty fleet");
    FleetResult fleet;
    fleet.nodes.reserve(specs.size());

    double total_mpp_wh = 0.0;
    for (const auto &spec : specs) {
        const auto trace = solar::generateDayTrace(spec.site, spec.month,
                                                   spec.weatherSeed);
        SimConfig cfg = spec.config;
        cfg.recordTimeline = true;
        const auto r = simulateDay(module, trace, spec.workload, cfg);

        fleet.totalSolarWh += r.solarEnergyWh;
        fleet.totalGridWh += r.gridEnergyWh;
        fleet.totalGreenInstructions += r.solarInstructions;
        total_mpp_wh += r.mppEnergyWh;
        fleet.nodes.push_back(r);
    }

    fleet.fleetUtilization =
        total_mpp_wh > 0.0 ? fleet.totalSolarWh / total_mpp_wh : 0.0;
    const double total = fleet.totalSolarWh + fleet.totalGridWh;
    fleet.greenFraction = total > 0.0 ? fleet.totalSolarWh / total : 0.0;

    // Smoothing statistics over the common timeline span.
    std::size_t n = fleet.nodes.front().timeline.size();
    for (const auto &node : fleet.nodes)
        n = std::min(n, node.timeline.size());
    RunningStats single;
    RunningStats combined;
    for (std::size_t i = 0; i < n; ++i) {
        double sum = 0.0;
        for (const auto &node : fleet.nodes)
            sum += node.timeline[i].consumedW;
        single.add(fleet.nodes.front().timeline[i].consumedW);
        combined.add(sum / static_cast<double>(fleet.nodes.size()));
    }
    auto cov = [](const RunningStats &s) {
        return s.mean() > 0.0 ? s.stddev() / s.mean() : 0.0;
    };
    fleet.singleNodeCov = cov(single);
    fleet.fleetCov = cov(combined);
    return fleet;
}

} // namespace solarcore::core
