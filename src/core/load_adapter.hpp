/**
 * @file
 * Per-core load-adaptation policies (paper Table 6 and Section 4.3).
 *
 * The MPPT controller asks a policy for one DVFS notch at a time while
 * it walks the panel operating point toward the MPP. The three
 * tracking policies differ only in which core receives that notch:
 *
 *  - MPPT&Opt: the throughput-power-ratio heuristic of Section 4.3 --
 *    raise the core whose next step has the highest TPR, lower the one
 *    whose last step had the lowest.
 *  - MPPT&RR:  round-robin over the cores.
 *  - MPPT&IC:  individual-core -- drive one core all the way to its
 *    highest (or lowest) point before touching the next.
 */

#ifndef SOLARCORE_CORE_LOAD_ADAPTER_HPP
#define SOLARCORE_CORE_LOAD_ADAPTER_HPP

#include <memory>

#include "core/tpr.hpp"
#include "cpu/chip.hpp"

namespace solarcore::obs {
class TraceBuffer;
} // namespace solarcore::obs

namespace solarcore::core {

/** Strategy interface: choose where the next DVFS notch lands. */
class LoadAdapter
{
  public:
    virtual ~LoadAdapter() = default;

    /** Policy label as used in the paper's tables. */
    virtual const char *name() const = 0;

    /**
     * Apply one upward notch to the chip.
     * @return the applied step; invalid when every core is at the top
     */
    virtual StepCandidate increaseOneStep(cpu::MultiCoreChip &chip) = 0;

    /**
     * Apply one downward notch to the chip.
     * @return the applied step; invalid when every core is gated
     */
    virtual StepCandidate decreaseOneStep(cpu::MultiCoreChip &chip) = 0;

    /** Hook called at the start of each tracking period. */
    virtual void beginTrackingPeriod(cpu::MultiCoreChip &) {}

    /**
     * Attach a trace sink (nullptr detaches). The base policies emit
     * nothing themselves -- the controller narrates their steps -- but
     * policies with internal actions (thread motion) report them here.
     */
    void setTrace(obs::TraceBuffer *trace) { trace_ = trace; }

  protected:
    obs::TraceBuffer *trace_ = nullptr;
};

/** MPPT&Opt: throughput-power-ratio optimized scheduling. */
class TprOptAdapter : public LoadAdapter
{
  public:
    const char *name() const override { return "MPPT&Opt"; }
    StepCandidate increaseOneStep(cpu::MultiCoreChip &chip) override;
    StepCandidate decreaseOneStep(cpu::MultiCoreChip &chip) override;
};

/** MPPT&RR: round-robin scheduling. */
class RoundRobinAdapter : public LoadAdapter
{
  public:
    const char *name() const override { return "MPPT&RR"; }
    StepCandidate increaseOneStep(cpu::MultiCoreChip &chip) override;
    StepCandidate decreaseOneStep(cpu::MultiCoreChip &chip) override;

  private:
    int upCursor_ = 0;
    int downCursor_ = 0;
};

/** MPPT&IC: tune one core to its extreme before the next. */
class IndividualCoreAdapter : public LoadAdapter
{
  public:
    const char *name() const override { return "MPPT&IC"; }
    StepCandidate increaseOneStep(cpu::MultiCoreChip &chip) override;
    StepCandidate decreaseOneStep(cpu::MultiCoreChip &chip) override;
};

/**
 * MPPT&IC augmented with thread motion (extension; paper reference
 * [36]): before each tracking period the programs are migrated so the
 * most power-efficient ones sit on the low-indexed cores that the
 * individual-core policy boosts first. Recovers part of the PTP the
 * plain concentration policy loses.
 */
class IcMotionAdapter : public IndividualCoreAdapter
{
  public:
    const char *name() const override { return "MPPT&IC+TM"; }
    void beginTrackingPeriod(cpu::MultiCoreChip &chip) override;
};

/** Factory for the paper's policy set (plus the motion extension). */
enum class PolicyKind { FixedPower, MpptIc, MpptRr, MpptOpt,
                        MpptIcMotion };

/** Paper label for a policy. */
const char *policyName(PolicyKind kind);

/** Build the adapter for a tracking policy; FixedPower has none. */
std::unique_ptr<LoadAdapter> makeAdapter(PolicyKind kind);

} // namespace solarcore::core

#endif // SOLARCORE_CORE_LOAD_ADAPTER_HPP
