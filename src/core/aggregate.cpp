#include "aggregate.hpp"

#include "util/logging.hpp"

namespace solarcore::core {

AggregateResult
simulateManyDays(const pv::PvModule &module, solar::SiteId site,
                 solar::Month month, workload::WorkloadId workload,
                 const SimConfig &cfg, int days, std::uint64_t base_seed)
{
    SC_ASSERT(days > 0, "simulateManyDays: non-positive day count");
    AggregateResult agg;
    for (int d = 0; d < days; ++d) {
        const std::uint64_t seed = base_seed + static_cast<std::uint64_t>(d);
        const auto trace = solar::generateDayTrace(site, month, seed);
        SimConfig day_cfg = cfg;
        day_cfg.seed = seed;
        const auto r = simulateDay(module, trace, workload, day_cfg);
        agg.utilization.add(r.utilization);
        agg.effectiveFraction.add(r.effectiveFraction);
        agg.trackingError.add(r.avgTrackingError);
        agg.solarEnergyWh.add(r.solarEnergyWh);
        agg.solarInstructions.add(r.solarInstructions);
        ++agg.days;
    }
    return agg;
}

} // namespace solarcore::core
