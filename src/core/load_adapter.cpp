#include "load_adapter.hpp"

#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"

namespace solarcore::core {

namespace {

StepCandidate
applyIfValid(cpu::MultiCoreChip &chip, const StepCandidate &step)
{
    if (step.valid)
        applyStep(chip, step);
    return step;
}

} // namespace

StepCandidate
TprOptAdapter::increaseOneStep(cpu::MultiCoreChip &chip)
{
    SC_PROFILE_SCOPE("tpr.step");
    // Highest throughput gain per added watt wins the new power.
    StepCandidate best;
    double best_tpr = -1.0;
    for (const auto &s : allUpSteps(chip)) {
        if (s.deltaPowerW <= 0.0)
            continue; // defensive: an up-step should always cost power
        const double tpr = s.deltaThroughput / s.deltaPowerW;
        if (tpr > best_tpr) {
            best_tpr = tpr;
            best = s;
        }
    }
    return applyIfValid(chip, best);
}

StepCandidate
TprOptAdapter::decreaseOneStep(cpu::MultiCoreChip &chip)
{
    SC_PROFILE_SCOPE("tpr.step");
    // Shed the step that loses the least throughput per saved watt.
    StepCandidate best;
    double best_cost = 1e301;
    for (const auto &s : allDownSteps(chip)) {
        if (s.deltaPowerW >= 0.0)
            continue;
        const double cost = (-s.deltaThroughput) / (-s.deltaPowerW);
        if (cost < best_cost) {
            best_cost = cost;
            best = s;
        }
    }
    return applyIfValid(chip, best);
}

StepCandidate
RoundRobinAdapter::increaseOneStep(cpu::MultiCoreChip &chip)
{
    const int n = chip.numCores();
    for (int tried = 0; tried < n; ++tried) {
        const int idx = (upCursor_ + tried) % n;
        const auto s = upStep(chip, idx);
        if (s.valid) {
            upCursor_ = (idx + 1) % n;
            return applyIfValid(chip, s);
        }
    }
    return StepCandidate{};
}

StepCandidate
RoundRobinAdapter::decreaseOneStep(cpu::MultiCoreChip &chip)
{
    const int n = chip.numCores();
    for (int tried = 0; tried < n; ++tried) {
        const int idx = (downCursor_ + tried) % n;
        const auto s = downStep(chip, idx);
        if (s.valid) {
            downCursor_ = (idx + 1) % n;
            return applyIfValid(chip, s);
        }
    }
    return StepCandidate{};
}

StepCandidate
IndividualCoreAdapter::increaseOneStep(cpu::MultiCoreChip &chip)
{
    // Fill the lowest-indexed running core to its top level before the
    // next; only ungate another core once every running core is maxed.
    for (int i = 0; i < chip.numCores(); ++i) {
        if (chip.core(i).gated())
            continue;
        const auto s = upStep(chip, i);
        if (s.valid)
            return applyIfValid(chip, s);
    }
    for (int i = 0; i < chip.numCores(); ++i) {
        const auto s = upStep(chip, i); // ungates the first gated core
        if (s.valid)
            return applyIfValid(chip, s);
    }
    return StepCandidate{};
}

StepCandidate
IndividualCoreAdapter::decreaseOneStep(cpu::MultiCoreChip &chip)
{
    // Drain the highest-indexed core above the bottom level before
    // touching the next (concentrating the remaining power in the
    // low-indexed cores); gate cores only once everything runs at the
    // lowest level.
    for (int i = chip.numCores() - 1; i >= 0; --i) {
        const cpu::Core &c = chip.core(i);
        if (c.gated() || c.level() <= chip.dvfs().minLevel())
            continue;
        const auto s = downStep(chip, i);
        if (s.valid)
            return applyIfValid(chip, s);
    }
    for (int i = chip.numCores() - 1; i >= 0; --i) {
        const auto s = downStep(chip, i); // gates the next level-0 core
        if (s.valid)
            return applyIfValid(chip, s);
    }
    return StepCandidate{};
}

void
IcMotionAdapter::beginTrackingPeriod(cpu::MultiCoreChip &chip)
{
    // Selection sort by mid-level efficiency (throughput per watt):
    // the best program migrates to core 0, the next to core 1, ...
    const int mid = chip.dvfs().numLevels() / 2;
    auto score = [&](int i) {
        const auto &c = chip.core(i);
        return c.throughputAtLevel(mid) / c.powerAtLevel(mid);
    };
    for (int pos = 0; pos < chip.numCores(); ++pos) {
        int best = pos;
        for (int i = pos + 1; i < chip.numCores(); ++i) {
            if (score(i) > score(best))
                best = i;
        }
        chip.swapWorkloads(pos, best);
        if (trace_ && best != pos) {
            obs::TraceEvent e;
            e.kind = obs::EventKind::ThreadMotion;
            e.core = static_cast<std::int16_t>(pos);
            e.i0 = best;
            trace_->emit(e);
        }
    }
}

const char *
policyName(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::FixedPower:   return "Fixed-Power";
      case PolicyKind::MpptIc:       return "MPPT&IC";
      case PolicyKind::MpptRr:       return "MPPT&RR";
      case PolicyKind::MpptOpt:      return "MPPT&Opt";
      case PolicyKind::MpptIcMotion: return "MPPT&IC+TM";
    }
    SC_PANIC("policyName: bad kind");
    return "?";
}

std::unique_ptr<LoadAdapter>
makeAdapter(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::MpptOpt:
        return std::make_unique<TprOptAdapter>();
      case PolicyKind::MpptRr:
        return std::make_unique<RoundRobinAdapter>();
      case PolicyKind::MpptIc:
        return std::make_unique<IndividualCoreAdapter>();
      case PolicyKind::MpptIcMotion:
        return std::make_unique<IcMotionAdapter>();
      case PolicyKind::FixedPower:
        return nullptr;
    }
    SC_PANIC("makeAdapter: bad kind");
    return nullptr;
}

} // namespace solarcore::core
