/**
 * @file
 * Fixed-budget throughput maximization (the paper's Fixed-Power
 * baseline, Table 6, and the allocator inside the battery baselines).
 *
 * The paper solves this with linear programming; our per-core levels
 * are discrete (gate, or one of six V/F points), so we solve the
 * problem exactly with dynamic programming over a discretized power
 * axis -- at least as strong a baseline as the LP relaxation. Tests
 * cross-check the DP against brute force on small instances.
 */

#ifndef SOLARCORE_CORE_FIXED_POWER_HPP
#define SOLARCORE_CORE_FIXED_POWER_HPP

#include <vector>

#include "cpu/chip.hpp"

namespace solarcore::core {

/** Result of a fixed-budget allocation. */
struct AllocationResult
{
    std::vector<cpu::MultiCoreChip::CoreSetting> settings;
    double powerW = 0.0;       //!< chip power of the allocation
    double throughput = 0.0;   //!< instruction rate of the allocation
    bool feasible = false;     //!< false if even all-gated exceeds budget
};

/**
 * Choose per-core levels maximizing total throughput subject to total
 * power <= @p budget_w, using the cores' current phases.
 *
 * @param chip        chip whose cores/phases to optimize (not mutated)
 * @param budget_w    power budget [W]
 * @param power_res_w DP power resolution [W]; power values are rounded
 *                    up to the grid so the budget is never exceeded
 */
AllocationResult optimizeAllocation(const cpu::MultiCoreChip &chip,
                                    double budget_w,
                                    double power_res_w = 0.1);

/**
 * Exhaustive reference optimizer for testing; cost grows as
 * (levels+1)^cores, use only for small chips.
 */
AllocationResult bruteForceAllocation(const cpu::MultiCoreChip &chip,
                                      double budget_w);

/** Apply an allocation to the chip. */
void applyAllocation(cpu::MultiCoreChip &chip, const AllocationResult &alloc);

} // namespace solarcore::core

#endif // SOLARCORE_CORE_FIXED_POWER_HPP
