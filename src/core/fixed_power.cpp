#include "fixed_power.hpp"

#include <cmath>
#include <limits>

#include "obs/profiler.hpp"
#include "util/logging.hpp"

namespace solarcore::core {

namespace {

/** One selectable state of a core: gated or a DVFS level. */
struct Choice
{
    cpu::MultiCoreChip::CoreSetting setting;
    double powerW = 0.0;
    double throughput = 0.0;
};

std::vector<Choice>
coreChoices(const cpu::MultiCoreChip &chip, int index)
{
    std::vector<Choice> out;
    const auto &table = chip.dvfs();
    const cpu::Core &c = chip.core(index);

    Choice gated;
    gated.setting = {table.minLevel(), true};
    gated.powerW = chip.powerModel().gatedPower().totalW();
    gated.throughput = 0.0;
    out.push_back(gated);

    for (int l = table.minLevel(); l <= table.maxLevel(); ++l) {
        Choice ch;
        ch.setting = {l, false};
        ch.powerW = c.powerAtLevel(l);
        ch.throughput = c.throughputAtLevel(l);
        out.push_back(ch);
    }
    return out;
}

} // namespace

AllocationResult
optimizeAllocation(const cpu::MultiCoreChip &chip, double budget_w,
                   double power_res_w)
{
    SC_ASSERT(power_res_w > 0.0, "optimizeAllocation: bad resolution");
    SC_PROFILE_SCOPE("alloc.optimize");
    AllocationResult res;
    if (budget_w <= 0.0)
        return res;

    const int n = chip.numCores();
    const int budget_units =
        static_cast<int>(std::floor(budget_w / power_res_w));
    if (budget_units <= 0)
        return res;

    constexpr double kNegInf = -std::numeric_limits<double>::infinity();

    // dp[u]: best throughput with the cores processed so far consuming
    // at most u power units; choice[i][u] reconstructs the argmax.
    std::vector<double> dp(static_cast<std::size_t>(budget_units) + 1,
                           kNegInf);
    dp[0] = 0.0;
    std::vector<std::vector<int>> choice_at(
        static_cast<std::size_t>(n),
        std::vector<int>(static_cast<std::size_t>(budget_units) + 1, -1));
    std::vector<std::vector<Choice>> choices;
    choices.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        choices.push_back(coreChoices(chip, i));

    for (int i = 0; i < n; ++i) {
        std::vector<double> next(dp.size(), kNegInf);
        for (int u = 0; u <= budget_units; ++u) {
            if (dp[static_cast<std::size_t>(u)] == kNegInf)
                continue;
            for (std::size_t c = 0; c < choices[i].size(); ++c) {
                const auto &ch = choices[static_cast<std::size_t>(i)][c];
                // Round power up so the grid never under-counts.
                const int cost = static_cast<int>(
                    std::ceil(ch.powerW / power_res_w - 1e-12));
                const int u2 = u + cost;
                if (u2 > budget_units)
                    continue;
                const double t =
                    dp[static_cast<std::size_t>(u)] + ch.throughput;
                if (t > next[static_cast<std::size_t>(u2)]) {
                    next[static_cast<std::size_t>(u2)] = t;
                    choice_at[static_cast<std::size_t>(i)]
                             [static_cast<std::size_t>(u2)] =
                                 static_cast<int>(c);
                }
            }
        }
        dp.swap(next);
    }

    // Best end state.
    int best_u = -1;
    double best_t = kNegInf;
    for (int u = 0; u <= budget_units; ++u) {
        if (dp[static_cast<std::size_t>(u)] > best_t) {
            best_t = dp[static_cast<std::size_t>(u)];
            best_u = u;
        }
    }
    if (best_u < 0 || best_t == kNegInf)
        return res; // even all-gated does not fit

    // Walk the choices backwards. choice_at[i][u] was only recorded for
    // the u that the dp actually reached, so recompute by re-running
    // the backward reconstruction.
    res.settings.resize(static_cast<std::size_t>(n));
    int u = best_u;
    for (int i = n - 1; i >= 0; --i) {
        const int c = choice_at[static_cast<std::size_t>(i)]
                               [static_cast<std::size_t>(u)];
        SC_ASSERT(c >= 0, "optimizeAllocation: broken DP path");
        const auto &ch =
            choices[static_cast<std::size_t>(i)][static_cast<std::size_t>(c)];
        res.settings[static_cast<std::size_t>(i)] = ch.setting;
        res.powerW += ch.powerW;
        res.throughput += ch.throughput;
        const int cost =
            static_cast<int>(std::ceil(ch.powerW / power_res_w - 1e-12));
        u -= cost;
    }
    SC_ASSERT(u >= 0, "optimizeAllocation: negative residual budget");
    res.feasible = true;
    return res;
}

AllocationResult
bruteForceAllocation(const cpu::MultiCoreChip &chip, double budget_w)
{
    AllocationResult best;
    const int n = chip.numCores();
    std::vector<std::vector<Choice>> choices;
    choices.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        choices.push_back(coreChoices(chip, i));

    std::vector<std::size_t> pick(static_cast<std::size_t>(n), 0);
    while (true) {
        double p = 0.0;
        double t = 0.0;
        for (int i = 0; i < n; ++i) {
            const auto &ch =
                choices[static_cast<std::size_t>(i)][pick[
                    static_cast<std::size_t>(i)]];
            p += ch.powerW;
            t += ch.throughput;
        }
        if (p <= budget_w && (!best.feasible || t > best.throughput)) {
            best.feasible = true;
            best.powerW = p;
            best.throughput = t;
            best.settings.clear();
            for (int i = 0; i < n; ++i)
                best.settings.push_back(
                    choices[static_cast<std::size_t>(i)]
                           [pick[static_cast<std::size_t>(i)]].setting);
        }
        // Odometer increment.
        int i = 0;
        for (; i < n; ++i) {
            auto &d = pick[static_cast<std::size_t>(i)];
            if (++d < choices[static_cast<std::size_t>(i)].size())
                break;
            d = 0;
        }
        if (i == n)
            break;
    }
    return best;
}

void
applyAllocation(cpu::MultiCoreChip &chip, const AllocationResult &alloc)
{
    SC_ASSERT(alloc.feasible, "applyAllocation: infeasible allocation");
    chip.applySettings(alloc.settings);
}

} // namespace solarcore::core
