/**
 * @file
 * Fleet-level simulation: several SolarCore nodes, each with its own
 * panel, weather and workload, evaluated over the same day.
 *
 * The paper's introduction motivates SolarCore with datacenter-scale
 * solar deployments; this module provides the datacenter view. Each
 * node runs the single-node simulation independently (panels do not
 * share strings across sites), and the fleet result aggregates the
 * energy ledgers plus the per-minute combined green power, which is
 * what capacity planning needs: geographic/weather diversity smooths
 * the aggregate supply.
 */

#ifndef SOLARCORE_CORE_FLEET_HPP
#define SOLARCORE_CORE_FLEET_HPP

#include <vector>

#include "core/simulation.hpp"

namespace solarcore::core {

/**
 * Energy ledger of one *group* of identical fleet nodes. Nodes with
 * the same (site, month, seed, workload, config) produce identical
 * days, so a 10k-node fleet collapses to a handful of groups with
 * counts -- the representation the planning service aggregates over.
 */
struct FleetGroupEnergy
{
    double nodeCount = 1.0;
    double mppEnergyWh = 0.0;
    double solarEnergyWh = 0.0;
    double gridEnergyWh = 0.0;
    double chipEnergyWh = 0.0;
    double solarInstructions = 0.0;
    double totalInstructions = 0.0;
};

/** Group-count-weighted fleet aggregate. */
struct FleetTotals
{
    double nodes = 0.0;            //!< total node count across groups
    double mppEnergyWh = 0.0;
    double solarEnergyWh = 0.0;
    double gridEnergyWh = 0.0;
    double chipEnergyWh = 0.0;
    double solarInstructions = 0.0;
    double totalInstructions = 0.0;
    double fleetUtilization = 0.0; //!< sum solar / sum MPP energy
    double greenFraction = 0.0;    //!< solar / (solar + grid) energy
};

/**
 * Aggregate group ledgers into fleet totals, weighting each group by
 * its node count, in group order (deterministic summation order).
 * simulateFleetDay() feeds per-node ledgers with count 1 through this
 * same function, so the identity
 *   aggregateFleet(per-node groups).X == simulateFleetDay(...).totalX
 * holds exactly.
 */
FleetTotals aggregateFleet(const std::vector<FleetGroupEnergy> &groups);

/** One node of the fleet. */
struct NodeSpec
{
    solar::SiteId site = solar::SiteId::AZ;
    solar::Month month = solar::Month::Apr;
    std::uint64_t weatherSeed = 1;
    workload::WorkloadId workload = workload::WorkloadId::HM2;
    SimConfig config;
};

/** Aggregated outcome of a fleet day. */
struct FleetResult
{
    std::vector<DayResult> nodes;  //!< per-node results, spec order

    double totalSolarWh = 0.0;
    double totalGridWh = 0.0;
    double totalGreenInstructions = 0.0;
    double fleetUtilization = 0.0; //!< sum solar / sum MPP energy
    double greenFraction = 0.0;    //!< solar / (solar + grid) energy

    /**
     * Coefficient of variation (stddev/mean) of the per-minute green
     * power, for one representative node and for the fleet average --
     * the diversity-smoothing measure.
     */
    double singleNodeCov = 0.0;
    double fleetCov = 0.0;
};

/**
 * Simulate every node of @p specs over its own trace and aggregate.
 * Timelines are forced on internally to compute the smoothing
 * statistics.
 */
FleetResult simulateFleetDay(const pv::PvModule &module,
                             const std::vector<NodeSpec> &specs);

} // namespace solarcore::core

#endif // SOLARCORE_CORE_FLEET_HPP
