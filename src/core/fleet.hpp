/**
 * @file
 * Fleet-level simulation: several SolarCore nodes, each with its own
 * panel, weather and workload, evaluated over the same day.
 *
 * The paper's introduction motivates SolarCore with datacenter-scale
 * solar deployments; this module provides the datacenter view. Each
 * node runs the single-node simulation independently (panels do not
 * share strings across sites), and the fleet result aggregates the
 * energy ledgers plus the per-minute combined green power, which is
 * what capacity planning needs: geographic/weather diversity smooths
 * the aggregate supply.
 */

#ifndef SOLARCORE_CORE_FLEET_HPP
#define SOLARCORE_CORE_FLEET_HPP

#include <vector>

#include "core/simulation.hpp"

namespace solarcore::core {

/** One node of the fleet. */
struct NodeSpec
{
    solar::SiteId site = solar::SiteId::AZ;
    solar::Month month = solar::Month::Apr;
    std::uint64_t weatherSeed = 1;
    workload::WorkloadId workload = workload::WorkloadId::HM2;
    SimConfig config;
};

/** Aggregated outcome of a fleet day. */
struct FleetResult
{
    std::vector<DayResult> nodes;  //!< per-node results, spec order

    double totalSolarWh = 0.0;
    double totalGridWh = 0.0;
    double totalGreenInstructions = 0.0;
    double fleetUtilization = 0.0; //!< sum solar / sum MPP energy
    double greenFraction = 0.0;    //!< solar / (solar + grid) energy

    /**
     * Coefficient of variation (stddev/mean) of the per-minute green
     * power, for one representative node and for the fleet average --
     * the diversity-smoothing measure.
     */
    double singleNodeCov = 0.0;
    double fleetCov = 0.0;
};

/**
 * Simulate every node of @p specs over its own trace and aggregate.
 * Timelines are forced on internally to compute the smoothing
 * statistics.
 */
FleetResult simulateFleetDay(const pv::PvModule &module,
                             const std::vector<NodeSpec> &specs);

} // namespace solarcore::core

#endif // SOLARCORE_CORE_FLEET_HPP
