/**
 * @file
 * Throughput-power ratio (TPR) machinery (paper Section 4.3,
 * Figure 10).
 *
 * The TPR of a prospective DVFS step is delta-throughput over
 * delta-power. When the solar budget grows, the step with the highest
 * TPR buys the most performance for the new watts; when the budget
 * shrinks, retiring the step with the lowest TPR sheds watts at the
 * smallest performance cost. Ungating a gated core and gating a
 * level-0 core are treated as ordinary steps so per-core power gating
 * (PCPG) falls out of the same mechanism.
 */

#ifndef SOLARCORE_CORE_TPR_HPP
#define SOLARCORE_CORE_TPR_HPP

#include <vector>

#include "cpu/chip.hpp"

namespace solarcore::core {

/** A single prospective one-notch change to one core. */
struct StepCandidate
{
    int coreIndex = -1;
    int fromLevel = 0;
    int toLevel = 0;
    bool fromGated = false;
    bool toGated = false;
    double deltaPowerW = 0.0;      //!< signed power change of the step
    double deltaThroughput = 0.0;  //!< signed instruction-rate change
    bool valid = false;

    /**
     * Throughput-power ratio of the step:
     * |delta throughput| / |delta power|.
     */
    double
    tpr() const
    {
        return deltaPowerW != 0.0
            ? deltaThroughput / deltaPowerW
            : 0.0;
    }
};

/**
 * The next upward step available to core @p index: ungate a gated
 * core to the lowest level, or raise the level by one. Invalid when
 * already at the top level.
 */
StepCandidate upStep(const cpu::MultiCoreChip &chip, int index);

/**
 * The next downward step available to core @p index: lower the level
 * by one, or gate a level-0 core. Invalid when already gated.
 */
StepCandidate downStep(const cpu::MultiCoreChip &chip, int index);

/** Apply a (valid) candidate to the chip. */
void applyStep(cpu::MultiCoreChip &chip, const StepCandidate &step);

/** All valid upward steps, one per eligible core. */
std::vector<StepCandidate> allUpSteps(const cpu::MultiCoreChip &chip);

/** All valid downward steps, one per eligible core. */
std::vector<StepCandidate> allDownSteps(const cpu::MultiCoreChip &chip);

} // namespace solarcore::core

#endif // SOLARCORE_CORE_TPR_HPP
