#include "simulation.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "core/fixed_power.hpp"
#include "core/tpr.hpp"
#include "cpu/thermal.hpp"
#include "obs/auditor.hpp"
#include "obs/profiler.hpp"
#include "obs/stats_registry.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "power/ats.hpp"
#include "power/battery.hpp"
#include "pv/mpp.hpp"
#include "util/logging.hpp"
#include "util/stats.hpp"

namespace solarcore::core {

namespace {

cpu::MultiCoreChip
buildChip(workload::WorkloadId workload, const SimConfig &cfg)
{
    const auto table = cfg.dvfsLevels == 6
        ? cpu::DvfsTable::paperDefault()
        : cpu::DvfsTable::interpolated(cfg.dvfsLevels);
    return cpu::MultiCoreChip(cpu::defaultChipConfig(), table,
                              cpu::EnergyParams{},
                              workload::workloadSet(workload), cfg.seed);
}

void
setDieTemps(cpu::MultiCoreChip &chip, double ambient_c)
{
    // Simple thermal proxy: dies run ~30 K above ambient under load.
    for (int i = 0; i < chip.numCores(); ++i)
        chip.core(i).setDieTempC(ambient_c + 30.0);
}

/**
 * One step of the per-core RC thermal loop: integrate each die's
 * temperature, feed it back into the leakage model, and throttle any
 * core past the limit. Returns the number of forced notch-downs.
 */
int
stepRcThermal(cpu::MultiCoreChip &chip,
              std::vector<cpu::ThermalModel> &thermal, double ambient_c,
              const SimConfig &cfg)
{
    int throttles = 0;
    for (int i = 0; i < chip.numCores(); ++i) {
        auto &core = chip.core(i);
        const double t = thermal[static_cast<std::size_t>(i)].step(
            core.power().totalW(), ambient_c, cfg.dtSeconds);
        core.setDieTempC(t);
        if (t > cfg.maxDieTempC && !core.gated() &&
            core.level() > chip.dvfs().minLevel()) {
            core.setLevel(core.level() - 1);
            ++throttles;
            if (cfg.trace) {
                obs::TraceEvent e;
                e.kind = obs::EventKind::ThermalThrottle;
                e.core = static_cast<std::int16_t>(i);
                e.v0 = t;
                cfg.trace->emit(e);
            }
        }
    }
    return throttles;
}

/** Emit a Retrack trigger event (tracing only). */
void
emitRetrack(obs::TraceBuffer *trace, obs::RetrackCause cause,
            double budget_w, double demand_w)
{
    obs::TraceEvent e;
    e.kind = obs::EventKind::Retrack;
    e.arg0 = static_cast<std::uint8_t>(cause);
    e.v0 = budget_w;
    e.v1 = demand_w;
    trace->emit(e);
}

/**
 * Fold one simulated day's counters into the caller's registry. The
 * MPP-cache numbers are deltas against the counts at day start so a
 * shared cross-day cache is not double-counted; the hit rate is a
 * formula over the accumulated operands, so it stays correct when
 * per-worker registries are merged.
 */
void
foldDayStats(obs::StatsRegistry &reg, const DayResult &day,
             const cpu::MultiCoreChip &chip,
             const pv::MppCache::Stats &cache_now,
             const pv::MppCache::Stats &cache_start)
{
    ++reg.scalar("sim.days", "simulated days folded into this registry");
    reg.scalar("sim.mppEnergyWh", "theoretical MPP energy [Wh]") +=
        day.mppEnergyWh;
    reg.scalar("sim.solarEnergyWh", "energy drawn from the panel [Wh]") +=
        day.solarEnergyWh;
    reg.scalar("sim.gridEnergyWh", "energy drawn from the utility [Wh]") +=
        day.gridEnergyWh;
    reg.scalar("sim.chipEnergyWh", "energy the chip consumed [Wh]") +=
        day.chipEnergyWh;
    reg.scalar("sim.solarInstructions",
               "instructions retired on solar power") +=
        day.solarInstructions;
    reg.scalar("sim.totalInstructions", "instructions retired in total") +=
        day.totalInstructions;
    reg.scalar("sim.thermalThrottles",
               "forced notch-downs from overheating") +=
        day.thermalThrottles;
    reg.scalar("ats.transfers", "automatic transfer switchovers") +=
        day.transferCount;
    reg.scalar("controller.retracks",
               "tracking events (all trigger causes)") += day.retracks;
    reg.scalar("controller.steps",
               "DVFS notches moved by the controller") +=
        static_cast<double>(day.controllerSteps);
    reg.formula("sim.solarUtilization",
                dayFormulaByName("sim.solarUtilization"),
                "solar energy / MPP energy over all folded days");

    const auto cores = static_cast<std::size_t>(chip.numCores());
    auto &dvfs = reg.vector("chip.core.dvfsTransitions", cores,
                            "per-core DVFS level changes");
    auto &gates = reg.vector("chip.core.gateTransitions", cores,
                             "per-core PCPG gate/ungate transitions");
    dvfs.ensureLanes(cores);
    gates.ensureLanes(cores);
    for (std::size_t i = 0; i < cores; ++i) {
        const auto &core = chip.core(static_cast<int>(i));
        dvfs.lane(i) += static_cast<double>(core.dvfsTransitions());
        gates.lane(i) += static_cast<double>(core.gateTransitions());
    }
    reg.scalar("chip.dvfsTransitions", "DVFS level changes, all cores") +=
        static_cast<double>(chip.totalDvfsTransitions());
    reg.scalar("chip.gateTransitions", "PCPG transitions, all cores") +=
        static_cast<double>(chip.totalGateTransitions());

    reg.scalar("pv.mppCache.hits", "MPP memo hits") +=
        static_cast<double>(cache_now.hits - cache_start.hits);
    reg.scalar("pv.mppCache.misses", "MPP memo misses (full solves)") +=
        static_cast<double>(cache_now.misses - cache_start.misses);
    reg.formula("pv.mppCache.hitRate",
                dayFormulaByName("pv.mppCache.hitRate"),
                "hit fraction of MPP memo lookups");
}

/**
 * Select the day's MPP memo: the caller-provided cross-day cache when
 * it matches this simulation's array, else a fresh per-day one (still
 * collapses repeated trace conditions, e.g. the overcast plateaus).
 */
pv::MppCache &
selectMppCache(std::optional<pv::MppCache> &local,
               const pv::PvModule &module, const SimConfig &cfg)
{
    if (cfg.mppCache &&
        cfg.mppCache->compatibleWith(module, cfg.modulesSeries,
                                     cfg.modulesParallel))
        return *cfg.mppCache;
    local.emplace(module, cfg.modulesSeries, cfg.modulesParallel);
    return *local;
}

/** Caller-owned workspace when provided, else a per-call local one. */
SimWorkspace &
selectWorkspace(std::optional<SimWorkspace> &local, const SimConfig &cfg)
{
    if (cfg.workspace)
        return *cfg.workspace;
    local.emplace();
    return *local;
}

/**
 * Stage the per-step environments for @p trace into @p ws and resolve
 * their MPPs in one batched lookup. The minute walk replicates the
 * drivers' main loops exactly, so step indices line up one-to-one.
 * assign()/clear() reset contents but keep capacity: with a reused
 * workspace this allocates only when the trace grows.
 */
void
stageStepMpps(SimWorkspace &ws, const pv::PvModule &module,
              const solar::SolarTrace &trace, double dt_min,
              pv::MppCache &mpp_cache)
{
    ws.stepEnvs.clear();
    for (double minute = trace.startMinute(); minute <= trace.endMinute();
         minute += dt_min) {
        const double g = trace.irradianceAt(minute);
        const double ambient = trace.ambientAt(minute);
        ws.stepEnvs.push_back({g, module.cellTempFromAmbient(ambient, g)});
    }
    ws.stepMpps.assign(ws.stepEnvs.size(), pv::MppResult{});
    mpp_cache.lookupBatch(ws.stepEnvs, ws.stepMpps);
}

/**
 * Per-step waveform sampling shared by all three day drivers. Every
 * driver registers the identical channel superset (channels a driver
 * never sets stay NaN / empty CSV cells), which is what lets a
 * campaign concatenate per-unit recorders into one columnar file.
 */
class DayTelemetry
{
  public:
    DayTelemetry(obs::TelemetryRecorder *rec,
                 const cpu::MultiCoreChip &chip)
        : rec_(rec)
    {
        if (!rec_)
            return;
        panelP_ = rec_->channel("panel.power_w", "W");
        panelV_ = rec_->channel("panel.voltage_v", "V");
        panelI_ = rec_->channel("panel.current_a", "A");
        mppP_ = rec_->channel("mpp.power_w", "W");
        convK_ = rec_->channel("converter.ratio");
        railV_ = rec_->channel("rail.voltage_v", "V");
        chipP_ = rec_->channel("chip.power_w", "W");
        budgetP_ = rec_->channel("budget.power_w", "W");
        onSolar_ = rec_->channel("on_solar", "bool");
        soc_ = rec_->channel("battery.soc", "frac");
        for (int i = 0; i < chip.numCores(); ++i) {
            const std::string p = "core" + std::to_string(i);
            cores_.push_back({rec_->channel(p + ".freq_ghz", "GHz"),
                              rec_->channel(p + ".voltage_v", "V"),
                              rec_->channel(p + ".power_w", "W"),
                              rec_->channel(p + ".ipc"),
                              rec_->channel(p + ".tpr", "ips/W")});
        }
    }

    explicit operator bool() const { return rec_ != nullptr; }

    /**
     * Sample one step. @p net may be null (no solved electrical state
     * this step); pass NaN for @p converter_k / @p battery_soc when
     * the driver has no converter / battery.
     */
    void
    sample(double minute, const cpu::MultiCoreChip &chip, double mpp_w,
           double budget_w, bool on_solar,
           const power::NetworkState *net, double converter_k,
           double battery_soc)
    {
        if (!rec_)
            return;
        SC_PROFILE_SCOPE("telemetry");
        rec_->beginStep(minute);
        if (!std::isnan(mpp_w))
            rec_->set(mppP_, mpp_w);
        rec_->set(budgetP_, budget_w);
        rec_->set(chipP_, chip.totalPower());
        rec_->set(onSolar_, on_solar ? 1.0 : 0.0);
        if (net && net->valid) {
            rec_->set(panelP_, net->panelPower());
            rec_->set(panelV_, net->panel.voltage);
            rec_->set(panelI_, net->panel.current);
            rec_->set(railV_, net->load.voltage);
        }
        if (!std::isnan(converter_k))
            rec_->set(convK_, converter_k);
        if (!std::isnan(battery_soc))
            rec_->set(soc_, battery_soc);
        for (int i = 0; i < chip.numCores(); ++i) {
            const auto &core = chip.core(i);
            const auto &ch = cores_[static_cast<std::size_t>(i)];
            rec_->set(ch.power, core.power().totalW());
            if (!core.gated()) {
                rec_->set(ch.freq,
                          chip.dvfs().frequency(core.level()) / 1e9);
                rec_->set(ch.volt, chip.dvfs().voltage(core.level()));
                rec_->set(ch.ipc, core.perf().ipc);
            }
            const auto up = upStep(chip, i);
            if (up.valid)
                rec_->set(ch.tpr, up.tpr());
        }
        rec_->endStep();
    }

  private:
    struct CoreChannels
    {
        obs::TelemetryRecorder::ChannelId freq, volt, power, ipc, tpr;
    };

    obs::TelemetryRecorder *rec_;
    obs::TelemetryRecorder::ChannelId panelP_ = 0, panelV_ = 0,
        panelI_ = 0, mppP_ = 0, convK_ = 0, railV_ = 0, chipP_ = 0,
        budgetP_ = 0, onSolar_ = 0, soc_ = 0;
    std::vector<CoreChannels> cores_;
};

/** The per-core DVFS/gating legality sweep shared by the drivers. */
void
auditChipState(obs::Auditor &audit, const cpu::MultiCoreChip &chip)
{
    for (int i = 0; i < chip.numCores(); ++i) {
        const auto &core = chip.core(i);
        audit.checkDvfsLegality(i, core.level(), chip.dvfs().minLevel(),
                                chip.dvfs().maxLevel(), core.gated(),
                                chip.gatingAllowed(),
                                "core DVFS/gating state");
    }
}

} // namespace

DayResult
simulateDay(const pv::PvModule &module, const solar::SolarTrace &trace,
            workload::WorkloadId workload, const SimConfig &cfg)
{
    SC_ASSERT(!trace.empty(), "simulateDay: empty trace");
    SC_ASSERT(cfg.dtSeconds > 0.0, "simulateDay: bad step");
    SC_PROFILE_SCOPE("day");

    DayResult result;

    auto chip = buildChip(workload, cfg);
    chip.setGatingAllowed(cfg.pcpg);
    pv::PvArray array(module, cfg.modulesSeries, cfg.modulesParallel,
                      pv::kStc);
    std::optional<pv::MppCache> local_cache;
    pv::MppCache &mpp_cache = selectMppCache(local_cache, module, cfg);

    const bool tracking = cfg.policy != PolicyKind::FixedPower;
    auto adapter = tracking ? makeAdapter(cfg.policy) : nullptr;
    std::optional<SolarCoreController> controller;
    if (tracking)
        controller.emplace(array, chip, *adapter, cfg.controller);

    const double threshold =
        tracking ? cfg.thresholdW : cfg.fixedBudgetW;
    power::TransferSwitch ats(threshold, 0.02 * threshold);

    obs::TraceBuffer *const tbuf = cfg.trace;
    ats.setTrace(tbuf);
    if (tracking)
        controller->setTrace(tbuf);
    DayTelemetry telem(cfg.telemetry, chip);
    obs::Auditor *const audit = cfg.audit;
    if (audit)
        audit->setTrace(tbuf);
    const pv::MppCache::Stats cache_start = mpp_cache.stats();
    obs::HistogramStat *const err_hist = cfg.stats
        ? &cfg.stats->histogram("sim.periodErrorPct", 0.0, 50.0, 25,
                                "per-period relative tracking error [%]")
        : nullptr;

    // Tracking-error accounting (Table 7): per tracking period t the
    // relative error is |Pb - Pl| / Pb with Pb the mean budget and Pl
    // the mean consumption over the period; day aggregate is the
    // geometric mean across periods.
    GeometricMean period_errors(1e-4);
    RunningStats period_budget;
    RunningStats period_consumed;
    auto close_period = [&]() {
        if (period_budget.count() > 0 &&
            period_budget.mean() >= cfg.errorFloorW) {
            const double rel_err =
                std::abs(period_budget.mean() - period_consumed.mean()) /
                period_budget.mean();
            period_errors.add(rel_err);
            if (err_hist)
                err_hist->add(rel_err * 100.0);
            if (tbuf) {
                obs::TraceEvent e;
                e.kind = obs::EventKind::PeriodClose;
                e.v0 = period_budget.mean();
                e.v1 = period_consumed.mean();
                tbuf->emit(e);
            }
        }
        period_budget = RunningStats();
        period_consumed = RunningStats();
    };

    std::optional<SimWorkspace> local_ws;
    SimWorkspace &ws = selectWorkspace(local_ws, cfg);
    ws.thermal.assign(static_cast<std::size_t>(chip.numCores()),
                      cpu::ThermalModel());
    std::vector<cpu::ThermalModel> &thermal = ws.thermal;

    const double dt_min = cfg.dtSeconds / 60.0;

    // Batched MPP precompute: the per-step environment is a pure
    // function of the trace, so every per-step MPP lookup collapses
    // into one batched call. Results and cache hit/miss counters are
    // sequential-equivalent, and lookupBatch degrades to the legacy
    // per-step path under the Scalar kernel or the Newton oracle.
    stageStepMpps(ws, module, trace, dt_min, mpp_cache);
    const std::vector<pv::MppResult> &step_mpps = ws.stepMpps;
    std::size_t step_index = 0;

    double last_track_minute = -1e9;
    double last_track_budget = 0.0;
    double last_track_demand = 0.0;
    bool was_on_solar = false;
    double last_timeline_minute = -1e9;

    chip.setAllLevels(chip.dvfs().maxLevel()); // boots on grid, full speed

    for (double minute = trace.startMinute(); minute <= trace.endMinute();
         minute += dt_min) {
        SC_PROFILE_SCOPE("step");
        if (cfg.trace)
            cfg.trace->setNow(minute);
        power::NetworkState step_net; //!< solved state, when tracking
        const double g = trace.irradianceAt(minute);
        const double ambient = trace.ambientAt(minute);
        array.setEnvironment({g, module.cellTempFromAmbient(ambient, g)});
        if (cfg.rcThermal) {
            // Close the power -> temperature -> leakage loop per core,
            // and throttle any core past the thermal limit.
            result.thermalThrottles +=
                stepRcThermal(chip, thermal, ambient, cfg);
        } else {
            setDieTemps(chip, ambient);
        }

        const pv::MppResult mpp = step_mpps[step_index++];
        result.mppEnergyWh += mpp.power * cfg.dtSeconds / 3600.0;

        ats.update(mpp.power, cfg.dtSeconds);
        bool on_solar = ats.onSolar();

        if (on_solar && tracking) {
            const bool due =
                minute - last_track_minute >= cfg.trackingPeriodMinutes;
            const bool supply_moved = last_track_budget > 0.0 &&
                std::abs(mpp.power - last_track_budget) >
                    cfg.retrackSupplyDelta * last_track_budget;
            const bool demand_moved = last_track_demand > 0.0 &&
                std::abs(chip.totalPower() - last_track_demand) >
                    cfg.retrackDemandDelta * last_track_demand;
            TrackResult tr;
            if (!was_on_solar || due || supply_moved || demand_moved) {
                if (tbuf) {
                    const auto cause = !was_on_solar
                        ? obs::RetrackCause::SolarEntry
                        : due ? obs::RetrackCause::Periodic
                              : supply_moved
                            ? obs::RetrackCause::SupplyDelta
                            : obs::RetrackCause::DemandDelta;
                    emitRetrack(tbuf, cause, mpp.power,
                                chip.totalPower());
                }
                if (due || !was_on_solar)
                    close_period();
                ++result.retracks;
                tr = controller->track();
                last_track_minute = minute;
                last_track_budget = mpp.power;
                last_track_demand = chip.totalPower();
            } else {
                tr = controller->enforceRail();
            }
            step_net = tr.net;
            if (!tr.solarViable) {
                // Even the minimum sheddable load exceeds what the
                // panel can carry (possible with PCPG disabled): fail
                // over to the utility before the rail collapses.
                ats.force(power::PowerSource::Grid);
                chip.setAllLevels(chip.dvfs().maxLevel());
                on_solar = false;
            }
        } else if (on_solar && !tracking) {
            // Fixed-Power: (re)allocate to the fixed budget on entry
            // and at each period boundary; enforce on phase drift.
            const bool due =
                minute - last_track_minute >= cfg.trackingPeriodMinutes;
            if (!was_on_solar || due ||
                chip.totalPower() > cfg.fixedBudgetW) {
                if (tbuf) {
                    const auto cause = !was_on_solar
                        ? obs::RetrackCause::SolarEntry
                        : due ? obs::RetrackCause::Periodic
                              : obs::RetrackCause::DemandDelta;
                    emitRetrack(tbuf, cause, cfg.fixedBudgetW,
                                chip.totalPower());
                }
                ++result.retracks;
                const auto alloc =
                    optimizeAllocation(chip, cfg.fixedBudgetW);
                if (alloc.feasible)
                    applyAllocation(chip, alloc);
                else
                    chip.gateAll();
                last_track_minute = minute;
            }
        } else if (!on_solar && was_on_solar) {
            // Fell back to the utility: run as a traditional CMP.
            chip.setAllLevels(chip.dvfs().maxLevel());
        }

        const double consumed = chip.totalPower();
        if (on_solar) {
            period_budget.add(mpp.power);
            period_consumed.add(consumed);
        }

        const double budget_w = tracking ? mpp.power : cfg.fixedBudgetW;
        if (telem) {
            telem.sample(minute, chip, mpp.power, budget_w, on_solar,
                         step_net.valid ? &step_net : nullptr,
                         tracking ? controller->converter().ratio()
                                  : std::nan(""),
                         std::nan(""));
        }

        const double instr_before = chip.totalInstructions();
        {
            SC_PROFILE_SCOPE("chip.step");
            chip.step(cfg.dtSeconds);
        }
        const double instr_delta = chip.totalInstructions() - instr_before;
        result.totalInstructions += instr_delta;
        if (on_solar)
            result.solarInstructions += instr_delta;
        // On solar the panel also supplies the DC/DC conversion loss.
        const double drawn = on_solar && tracking
            ? consumed / cfg.controller.converterEfficiency
            : consumed;
        ats.accountEnergy(drawn, cfg.dtSeconds);

        if (audit) {
            SC_PROFILE_SCOPE("audit");
            audit->setNow(minute);
            audit->countStep();
            if (on_solar)
                audit->checkBudget(drawn, budget_w,
                                   tracking
                                       ? "solar draw vs MPP budget"
                                       : "solar draw vs fixed budget");
            if (step_net.valid) {
                audit->checkRailVoltage(step_net.load.voltage,
                                        cfg.controller.railNominalV,
                                        "converter rail vs nominal");
                audit->checkPanelPoint(
                    step_net.panel.current,
                    array.currentAt(step_net.panel.voltage),
                    array.currentAt(0.0),
                    "solved panel point vs I-V curve");
            }
            auditChipState(*audit, chip);
        }

        if (cfg.recordTimeline && minute - last_timeline_minute >= 1.0) {
            result.timeline.push_back(
                {minute, mpp.power, on_solar ? consumed : 0.0, on_solar});
            last_timeline_minute = minute;
        }
        was_on_solar = on_solar;
    }

    close_period();

    result.solarEnergyWh = ats.solarEnergyWh();
    result.chipEnergyWh = chip.totalEnergy() / 3600.0;
    result.gridEnergyWh = ats.gridEnergyWh();
    result.utilization = result.mppEnergyWh > 0.0
        ? result.solarEnergyWh / result.mppEnergyWh
        : 0.0;
    const double total_sec = ats.solarSeconds() + ats.gridSeconds();
    result.effectiveFraction =
        total_sec > 0.0 ? ats.solarSeconds() / total_sec : 0.0;
    result.avgTrackingError = period_errors.value();
    result.transferCount = ats.transferCount();
    result.controllerSteps = tracking ? controller->totalSteps() : 0;
    if (cfg.stats)
        foldDayStats(*cfg.stats, result, chip, mpp_cache.stats(),
                     cache_start);
    return result;
}

HybridDayResult
simulateHybridDay(const pv::PvModule &module, const solar::SolarTrace &trace,
                  workload::WorkloadId workload,
                  double battery_capacity_wh, const SimConfig &cfg)
{
    SC_ASSERT(battery_capacity_wh >= 0.0,
              "simulateHybridDay: negative capacity");
    HybridDayResult result;
    result.batteryCapacityWh = battery_capacity_wh;
    if (battery_capacity_wh <= 0.0) {
        result.day = simulateDay(module, trace, workload, cfg);
        result.greenEnergyWh = result.day.solarEnergyWh;
        const double total =
            result.day.solarEnergyWh + result.day.gridEnergyWh;
        result.greenFraction =
            total > 0.0 ? result.greenEnergyWh / total : 0.0;
        return result;
    }

    SC_PROFILE_SCOPE("day");
    auto chip = buildChip(workload, cfg);
    chip.setGatingAllowed(cfg.pcpg);
    pv::PvArray array(module, cfg.modulesSeries, cfg.modulesParallel,
                      pv::kStc);
    std::optional<pv::MppCache> local_cache;
    pv::MppCache &mpp_cache = selectMppCache(local_cache, module, cfg);
    auto adapter = makeAdapter(cfg.policy == PolicyKind::FixedPower
                                   ? PolicyKind::MpptOpt
                                   : cfg.policy);
    SolarCoreController controller(array, chip, *adapter, cfg.controller);
    power::TransferSwitch ats(cfg.thresholdW, 0.02 * cfg.thresholdW);
    power::Battery buffer(battery_capacity_wh, 0.95, 0.90);
    obs::TraceBuffer *const tbuf = cfg.trace;
    ats.setTrace(tbuf);
    buffer.setTrace(tbuf);
    controller.setTrace(tbuf);
    DayTelemetry telem(cfg.telemetry, chip);
    obs::Auditor *const audit = cfg.audit;
    if (audit)
        audit->setTrace(tbuf);
    const pv::MppCache::Stats cache_start = mpp_cache.stats();
    // Charge-path conversion efficiency of the buffer's own MPPT.
    constexpr double charge_path_eff = 0.95;
    // Stable discharge level while bridging sub-threshold periods.
    const double buffer_budget_w = 2.0 * cfg.thresholdW;

    DayResult &day = result.day;
    const double dt_min = cfg.dtSeconds / 60.0;
    const double dt_h = cfg.dtSeconds / 3600.0;
    double last_track_minute = -1e9;
    bool was_on_solar = false;
    std::optional<SimWorkspace> local_ws;
    SimWorkspace &ws = selectWorkspace(local_ws, cfg);
    ws.thermal.assign(static_cast<std::size_t>(chip.numCores()),
                      cpu::ThermalModel());
    std::vector<cpu::ThermalModel> &thermal = ws.thermal;

    // Same batched MPP precompute as simulateDay.
    stageStepMpps(ws, module, trace, dt_min, mpp_cache);
    const std::vector<pv::MppResult> &step_mpps = ws.stepMpps;
    std::size_t step_index = 0;

    chip.setAllLevels(chip.dvfs().maxLevel());
    for (double minute = trace.startMinute(); minute <= trace.endMinute();
         minute += dt_min) {
        SC_PROFILE_SCOPE("step");
        if (tbuf)
            tbuf->setNow(minute);
        power::NetworkState step_net;
        const double g = trace.irradianceAt(minute);
        const double ambient = trace.ambientAt(minute);
        array.setEnvironment({g, module.cellTempFromAmbient(ambient, g)});
        // Mirror simulateDay's thermal handling instead of always using
        // the ambient proxy, so the rcThermal/pcpg ablations act on the
        // hybrid extension too.
        if (cfg.rcThermal)
            day.thermalThrottles +=
                stepRcThermal(chip, thermal, ambient, cfg);
        else
            setDieTemps(chip, ambient);
        const pv::MppResult mpp = step_mpps[step_index++];
        day.mppEnergyWh += mpp.power * dt_h;

        ats.update(mpp.power, cfg.dtSeconds);
        const bool on_solar = ats.onSolar();
        bool on_buffer = false;

        if (on_solar) {
            TrackResult tr;
            if (!was_on_solar ||
                minute - last_track_minute >= cfg.trackingPeriodMinutes) {
                if (tbuf) {
                    emitRetrack(tbuf,
                                was_on_solar
                                    ? obs::RetrackCause::Periodic
                                    : obs::RetrackCause::SolarEntry,
                                mpp.power, chip.totalPower());
                }
                ++day.retracks;
                tr = controller.track();
                last_track_minute = minute;
            } else {
                tr = controller.enforceRail();
            }
            step_net = tr.net;
            const double consumed = chip.totalPower();
            // The tracking margin charges the buffer through its own
            // MPPT path instead of being left on the panel.
            const double headroom = std::max(0.0, mpp.power - consumed);
            buffer.charge(headroom * charge_path_eff, dt_h);
            day.solarEnergyWh +=
                (consumed + headroom * charge_path_eff) * dt_h;
            ats.accountEnergy(consumed, cfg.dtSeconds);
        } else {
            // Sub-threshold supply still trickles into the buffer.
            buffer.charge(mpp.power * charge_path_eff, dt_h);
            day.solarEnergyWh += mpp.power * charge_path_eff * dt_h;

            const auto alloc = optimizeAllocation(chip, buffer_budget_w);
            const double want = alloc.feasible ? alloc.powerW : 0.0;
            if (want > 0.0 && buffer.storedWh() * 0.9 >= want * dt_h) {
                applyAllocation(chip, alloc);
                const double delivered =
                    buffer.discharge(chip.totalPower(), dt_h);
                result.bufferedWh += delivered;
                on_buffer = true;
            } else {
                chip.setAllLevels(chip.dvfs().maxLevel());
                ats.accountEnergy(chip.totalPower(), cfg.dtSeconds);
            }
        }

        if (telem) {
            telem.sample(minute, chip, mpp.power,
                         on_buffer ? buffer_budget_w : mpp.power,
                         on_solar, step_net.valid ? &step_net : nullptr,
                         controller.converter().ratio(),
                         buffer.socFraction());
        }

        const double instr_before = chip.totalInstructions();
        {
            SC_PROFILE_SCOPE("chip.step");
            chip.step(cfg.dtSeconds);
        }
        const double delta = chip.totalInstructions() - instr_before;
        day.totalInstructions += delta;
        if (on_solar || on_buffer)
            day.solarInstructions += delta;

        if (audit) {
            SC_PROFILE_SCOPE("audit");
            audit->setNow(minute);
            audit->countStep();
            if (on_solar)
                audit->checkBudget(chip.totalPower(), mpp.power,
                                   "hybrid solar draw vs MPP budget");
            else if (on_buffer)
                audit->checkBudget(chip.totalPower(), buffer_budget_w,
                                   "buffer draw vs discharge budget");
            if (step_net.valid) {
                audit->checkRailVoltage(step_net.load.voltage,
                                        cfg.controller.railNominalV,
                                        "converter rail vs nominal");
                audit->checkPanelPoint(
                    step_net.panel.current,
                    array.currentAt(step_net.panel.voltage),
                    array.currentAt(0.0),
                    "solved panel point vs I-V curve");
            }
            audit->checkSocRange(buffer.socFraction(),
                                 "buffer state of charge");
            auditChipState(*audit, chip);
        }
        was_on_solar = on_solar;
    }

    if (audit) {
        audit->setNow(trace.endMinute());
        audit->checkEnergyBalance(buffer.absorbedWh(), buffer.storedWh(),
                                  buffer.deliveredWh(), buffer.lostWh(),
                                  "battery ledger closure");
    }

    day.gridEnergyWh = ats.gridEnergyWh();
    day.chipEnergyWh = chip.totalEnergy() / 3600.0;
    day.utilization = day.mppEnergyWh > 0.0
        ? std::min(1.0, day.solarEnergyWh / day.mppEnergyWh)
        : 0.0;
    day.transferCount = ats.transferCount();
    result.greenEnergyWh = day.chipEnergyWh - day.gridEnergyWh;
    const double total_energy = day.chipEnergyWh;
    result.greenFraction =
        total_energy > 0.0 ? result.greenEnergyWh / total_energy : 0.0;
    if (cfg.stats) {
        foldDayStats(*cfg.stats, day, chip, mpp_cache.stats(),
                     cache_start);
        cfg.stats->scalar("battery.deliveredWh",
                          "energy delivered from the buffer [Wh]") +=
            buffer.deliveredWh();
        cfg.stats->scalar("battery.lostWh",
                          "buffer conversion/self-discharge losses "
                          "[Wh]") += buffer.lostWh();
    }
    return result;
}

BatteryDayResult
simulateBatteryDay(const pv::PvModule &module,
                   const solar::SolarTrace &trace,
                   workload::WorkloadId workload, double derating_factor,
                   const SimConfig &cfg)
{
    SC_ASSERT(derating_factor > 0.0 && derating_factor <= 1.0,
              "simulateBatteryDay: bad de-rating factor");
    SC_PROFILE_SCOPE("day");
    BatteryDayResult result;
    result.deratingFactor = derating_factor;

    // Pass 1: harvestable energy at the MPP over the day. The memo
    // makes repeated passes over one trace (the de-rating sweeps rerun
    // this identical sequence per factor) near-free after the first.
    std::optional<pv::MppCache> local_cache;
    pv::MppCache &mpp_cache = selectMppCache(local_cache, module, cfg);
    const pv::MppCache::Stats cache_start = mpp_cache.stats();
    const double dt_min = cfg.dtSeconds / 60.0;
    {
        // Pass 1 is a pure reduction over the trace: gather the step
        // environments and fold the batched MPP powers.
        std::optional<SimWorkspace> local_ws;
        SimWorkspace &ws = selectWorkspace(local_ws, cfg);
        stageStepMpps(ws, module, trace, dt_min, mpp_cache);
        for (const pv::MppResult &mpp : ws.stepMpps)
            result.mppEnergyWh += mpp.power * cfg.dtSeconds / 3600.0;
    }

    // Stable delivery level over the full daytime window.
    const double day_hours =
        (trace.endMinute() - trace.startMinute()) / 60.0;
    result.budgetW = derating_factor * result.mppEnergyWh / day_hours;

    // Pass 2: run the chip at that constant budget, re-allocating at
    // each tracking period to follow workload phases.
    auto chip = buildChip(workload, cfg);
    DayTelemetry telem(cfg.telemetry, chip);
    obs::Auditor *const audit = cfg.audit;
    if (audit)
        audit->setTrace(cfg.trace);
    double last_alloc_minute = -1e9;
    for (double minute = trace.startMinute(); minute <= trace.endMinute();
         minute += dt_min) {
        SC_PROFILE_SCOPE("step");
        if (cfg.trace)
            cfg.trace->setNow(minute);
        setDieTemps(chip, trace.ambientAt(minute));
        if (minute - last_alloc_minute >= cfg.trackingPeriodMinutes ||
            chip.totalPower() > result.budgetW) {
            if (cfg.trace) {
                emitRetrack(cfg.trace,
                            minute - last_alloc_minute >=
                                    cfg.trackingPeriodMinutes
                                ? obs::RetrackCause::Periodic
                                : obs::RetrackCause::DemandDelta,
                            result.budgetW, chip.totalPower());
            }
            const auto alloc = optimizeAllocation(chip, result.budgetW);
            if (alloc.feasible)
                applyAllocation(chip, alloc);
            else
                chip.gateAll();
            last_alloc_minute = minute;
        }
        if (telem) {
            telem.sample(minute, chip, std::nan(""), result.budgetW,
                         true, nullptr, std::nan(""), std::nan(""));
        }
        if (audit) {
            SC_PROFILE_SCOPE("audit");
            audit->setNow(minute);
            audit->countStep();
            audit->checkBudget(chip.totalPower(), result.budgetW,
                               "battery baseline draw vs stable budget");
            auditChipState(*audit, chip);
        }
        result.consumedWh += chip.totalPower() * cfg.dtSeconds / 3600.0;
        {
            SC_PROFILE_SCOPE("chip.step");
            chip.step(cfg.dtSeconds);
        }
    }
    result.instructions = chip.totalInstructions();
    result.utilization = result.mppEnergyWh > 0.0
        ? result.consumedWh / result.mppEnergyWh
        : 0.0;
    if (cfg.stats) {
        auto &reg = *cfg.stats;
        ++reg.scalar("sim.batteryDays",
                     "battery-baseline days folded into this registry");
        reg.scalar("sim.mppEnergyWh", "theoretical MPP energy [Wh]") +=
            result.mppEnergyWh;
        reg.scalar("sim.chipEnergyWh", "energy the chip consumed [Wh]") +=
            result.consumedWh;
        reg.scalar("sim.totalInstructions",
                   "instructions retired in total") += result.instructions;
        const auto cache_now = mpp_cache.stats();
        reg.scalar("pv.mppCache.hits", "MPP memo hits") +=
            static_cast<double>(cache_now.hits - cache_start.hits);
        reg.scalar("pv.mppCache.misses",
                   "MPP memo misses (full solves)") +=
            static_cast<double>(cache_now.misses - cache_start.misses);
        reg.formula("pv.mppCache.hitRate",
                    dayFormulaByName("pv.mppCache.hitRate"),
                    "hit fraction of MPP memo lookups");
    }
    return result;
}

obs::FormulaStat::Fn
dayFormulaByName(std::string_view name)
{
    if (name == "sim.solarUtilization") {
        return [](const obs::StatsRegistry &r) {
            const double mpp = r.value("sim.mppEnergyWh");
            return mpp > 0.0 ? r.value("sim.solarEnergyWh") / mpp : 0.0;
        };
    }
    if (name == "pv.mppCache.hitRate") {
        return [](const obs::StatsRegistry &r) {
            const double hits = r.value("pv.mppCache.hits");
            const double n = hits + r.value("pv.mppCache.misses");
            return n > 0.0 ? hits / n : 0.0;
        };
    }
    return {};
}

} // namespace solarcore::core
