/**
 * @file
 * Full-day simulation driver (paper Section 5): replays one daytime
 * irradiance/temperature trace against the panel + converter + 8-core
 * chip network under a power-management policy, producing the metrics
 * the evaluation section reports -- solar energy utilization,
 * effective operation duration, performance-time product (PTP) and
 * relative MPP tracking error -- plus an optional per-minute timeline
 * for the Figure 13/14 reproductions.
 */

#ifndef SOLARCORE_CORE_SIMULATION_HPP
#define SOLARCORE_CORE_SIMULATION_HPP

#include <cstdint>
#include <string_view>
#include <vector>

#include "core/controller.hpp"
#include "core/load_adapter.hpp"
#include "cpu/thermal.hpp"
#include "obs/stats_registry.hpp"
#include "pv/bp3180n.hpp"
#include "pv/mpp_cache.hpp"
#include "solar/trace.hpp"
#include "workload/multiprogram.hpp"

namespace solarcore::obs {
class Auditor;
class TelemetryRecorder;
class TraceBuffer;
} // namespace solarcore::obs

namespace solarcore::core {

/**
 * Reusable scratch buffers for the day drivers. Each simulateDay /
 * simulateHybridDay / simulateBatteryDay call needs a per-step
 * environment/MPP staging area and one thermal model per core; with a
 * caller-owned workspace those buffers keep their capacity across
 * days, so a sweep over many units allocates only on its first day
 * (and on trace-length growth). The drivers reset the *contents*
 * every call -- a workspace carries no state between days, only
 * capacity -- which is what keeps results bit-identical with and
 * without one. Not thread-safe: one per worker, like MppCache.
 */
struct SimWorkspace
{
    std::vector<pv::Environment> stepEnvs;
    std::vector<pv::MppResult> stepMpps;
    std::vector<cpu::ThermalModel> thermal;
};

/** Configuration of one simulated day. */
struct SimConfig
{
    PolicyKind policy = PolicyKind::MpptOpt;
    double fixedBudgetW = 75.0;        //!< Fixed-Power budget/threshold
    double dtSeconds = 15.0;           //!< simulation step
    double trackingPeriodMinutes = 10.0;
    double thresholdW = 15.0;           //!< power-transfer threshold:
                                       //!< SolarCore only needs enough
                                       //!< supply to run one core at the
                                       //!< bottom DVFS point (PCPG covers
                                       //!< the rest); Fixed-Power uses its
                                       //!< budget as the threshold instead
    double retrackSupplyDelta = 0.35;  //!< relative supply change that
                                       //!< triggers an early re-track
    double errorFloorW = 25.0;         //!< tracking periods whose mean
                                       //!< budget is below this level are
                                       //!< excluded from the Table 7
                                       //!< error -- the dawn/dusk tail
                                       //!< where one DVFS notch exceeds
                                       //!< 20% of the budget is not the
                                       //!< operating region the paper
                                       //!< characterizes
    double retrackDemandDelta = 0.30;  //!< relative drift of the chip's
                                       //!< own consumption (workload
                                       //!< phase changes) that triggers
                                       //!< an early re-track
    int dvfsLevels = 6;                //!< per-core DVFS points: 6 is
                                       //!< the paper's table; other
                                       //!< values interpolate the same
                                       //!< V/f range (granularity
                                       //!< ablation)
    int modulesSeries = 1;             //!< PV array: modules in series
    int modulesParallel = 1;           //!< PV array: parallel strings
    ControllerConfig controller;       //!< MPPT controller knobs
    std::uint64_t seed = 1;            //!< workload phase jitter seed
    bool pcpg = true;                  //!< allow per-core power gating
                                       //!< (ablation knob; the paper
                                       //!< uses DVFS + PCPG)
    bool rcThermal = false;            //!< use the per-core RC thermal
                                       //!< model for die temperature
                                       //!< (default: ambient + 30 K
                                       //!< proxy)
    double maxDieTempC = 95.0;         //!< thermal throttle: with the
                                       //!< RC model on, cores above
                                       //!< this temperature are forced
                                       //!< down one DVFS notch per step
    bool recordTimeline = false;       //!< keep the per-minute trace
    SimWorkspace *workspace = nullptr; //!< borrowed per-step scratch
                                       //!< buffers; sweep drivers pass
                                       //!< one so steady-state day
                                       //!< simulation is allocation-
                                       //!< free. A local workspace is
                                       //!< used when null. Not
                                       //!< thread-safe: one per worker.
    pv::MppCache *mppCache = nullptr;  //!< borrowed cross-day MPP memo;
                                       //!< sweep drivers replaying one
                                       //!< trace for many workloads /
                                       //!< budgets share one so each
                                       //!< environment is solved once.
                                       //!< Must match the module and
                                       //!< arrangement; a per-day cache
                                       //!< is used when null or
                                       //!< incompatible. Not
                                       //!< thread-safe: one per worker.
    obs::StatsRegistry *stats = nullptr; //!< borrowed; when set, the
                                       //!< day's counters (energies,
                                       //!< per-core DVFS/gate
                                       //!< transitions, MPP-cache hit
                                       //!< rate, per-period tracking
                                       //!< error histogram) accumulate
                                       //!< into it. Not thread-safe:
                                       //!< one per worker, merge()d.
    obs::TraceBuffer *trace = nullptr; //!< borrowed event sink; when
                                       //!< set, re-tracks (with cause),
                                       //!< DVFS/PCPG steps, ATS
                                       //!< switchovers, battery modes
                                       //!< and period boundaries are
                                       //!< recorded. Null = tracing
                                       //!< off at near-zero cost.
    obs::TelemetryRecorder *telemetry = nullptr; //!< borrowed waveform
                                       //!< sink; when set, every step
                                       //!< samples the shared channel
                                       //!< superset (panel P/V/I, MPP
                                       //!< reference, converter ratio,
                                       //!< rail voltage, chip power vs
                                       //!< budget, battery SoC, per-
                                       //!< core f/V/P/IPC/TPR); all
                                       //!< three day drivers register
                                       //!< the same schema so per-unit
                                       //!< recorders concatenate.
    obs::Auditor *audit = nullptr;     //!< borrowed invariant auditor;
                                       //!< when set, every step checks
                                       //!< budget overshoot, rail
                                       //!< voltage, panel operating
                                       //!< point, DVFS legality and
                                       //!< (hybrid) battery SoC plus
                                       //!< day-end energy closure. The
                                       //!< caller folds its counters
                                       //!< into stats.
};

/** One per-minute sample for the tracking-accuracy figures. */
struct TimelinePoint
{
    double minute = 0.0;     //!< minutes since local midnight
    double budgetW = 0.0;    //!< panel MPP power (maximal budget)
    double consumedW = 0.0;  //!< power drawn from the panel (0 on grid)
    bool onSolar = false;
};

/** Aggregated results of one simulated day. */
struct DayResult
{
    double mppEnergyWh = 0.0;   //!< theoretical maximum solar energy
    double solarEnergyWh = 0.0; //!< energy actually drawn from the panel
    double gridEnergyWh = 0.0;  //!< energy drawn from the utility
    double chipEnergyWh = 0.0;  //!< energy the chip consumed in total
    double utilization = 0.0;   //!< solarEnergyWh / mppEnergyWh
    double effectiveFraction = 0.0; //!< solar-powered share of daytime
    double solarInstructions = 0.0; //!< PTP: instructions on solar power
    double totalInstructions = 0.0; //!< including grid-powered periods
    double avgTrackingError = 0.0;  //!< geomean of per-period rel. error
    int transferCount = 0;      //!< ATS transfers over the day
    int thermalThrottles = 0;   //!< forced notch-downs from overheating
    int retracks = 0;           //!< tracking events (periodic, entry,
                                //!< supply/demand-triggered; for
                                //!< Fixed-Power: re-allocations)
    long controllerSteps = 0;   //!< DVFS notches moved by the controller
    std::vector<TimelinePoint> timeline;
};

/**
 * Simulate one day of @p workload at the conditions of @p trace with
 * the policy selected in @p cfg. The PV source is a single @p module
 * (the paper's BP3180N), direct-coupled through the DC/DC converter.
 */
DayResult simulateDay(const pv::PvModule &module,
                      const solar::SolarTrace &trace,
                      workload::WorkloadId workload, const SimConfig &cfg);

/** Result of the battery-equipped baseline. */
struct BatteryDayResult
{
    double deratingFactor = 0.0; //!< overall de-rating applied
    double budgetW = 0.0;        //!< stable power level delivered
    double instructions = 0.0;   //!< PTP over the daytime window
    double mppEnergyWh = 0.0;
    double consumedWh = 0.0;     //!< energy the chip actually used
    double utilization = 0.0;    //!< consumed / mpp (<= derating)
};

/** Result of the hybrid direct-coupled + storage-buffer extension. */
struct HybridDayResult
{
    DayResult day;              //!< the underlying SolarCore day
    double batteryCapacityWh = 0.0;
    double bufferedWh = 0.0;    //!< energy delivered from the buffer
    double greenEnergyWh = 0.0; //!< panel + buffer energy consumed
    double greenFraction = 0.0; //!< green / (green + grid) energy
};

/**
 * Future-work extension (paper Section 8): a direct-coupled SolarCore
 * system with a small storage buffer. The buffer charges from the
 * tracking margin (the MPP headroom the load cannot absorb) and from
 * sub-threshold supply, and discharges to keep the chip on green
 * power whenever the panel alone cannot carry it. A capacity of 0
 * degenerates to plain simulateDay.
 */
HybridDayResult simulateHybridDay(const pv::PvModule &module,
                                  const solar::SolarTrace &trace,
                                  workload::WorkloadId workload,
                                  double battery_capacity_wh,
                                  const SimConfig &cfg);

/**
 * The paper's battery-equipped MPPT baseline: the panel is harvested
 * at the MPP into storage with the given overall de-rating factor
 * (Table 3), and the chip runs the whole daytime window at the stable
 * power level the stored energy sustains, allocated by the same
 * optimizer as Fixed-Power.
 */
BatteryDayResult simulateBatteryDay(const pv::PvModule &module,
                                    const solar::SolarTrace &trace,
                                    workload::WorkloadId workload,
                                    double derating_factor,
                                    const SimConfig &cfg);

/**
 * The dump-time formula a day driver registers under @p name
 * ("sim.solarUtilization", "pv.mppCache.hitRate"), or an empty
 * function for an unknown name. The single source of truth for the
 * drivers' own registrations, and the resolver a cross-process stats
 * merge uses to reconstruct a worker's formulas from their wire names.
 */
obs::FormulaStat::Fn dayFormulaByName(std::string_view name);

} // namespace solarcore::core

#endif // SOLARCORE_CORE_SIMULATION_HPP
