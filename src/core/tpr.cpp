#include "tpr.hpp"

#include "util/logging.hpp"

namespace solarcore::core {

StepCandidate
upStep(const cpu::MultiCoreChip &chip, int index)
{
    StepCandidate step;
    step.coreIndex = index;
    const cpu::Core &c = chip.core(index);
    const auto &table = chip.dvfs();

    if (c.gated()) {
        // Ungate to the lowest operating point.
        step.fromGated = true;
        step.toGated = false;
        step.fromLevel = c.level();
        step.toLevel = table.minLevel();
        const double gated_w = chip.powerModel().gatedPower().totalW();
        step.deltaPowerW = c.powerAtLevel(table.minLevel()) - gated_w;
        step.deltaThroughput = c.throughputAtLevel(table.minLevel());
        step.valid = true;
        return step;
    }
    if (c.level() >= table.maxLevel())
        return step; // nothing above

    step.fromLevel = c.level();
    step.toLevel = c.level() + 1;
    step.deltaPowerW =
        c.powerAtLevel(step.toLevel) - c.powerAtLevel(step.fromLevel);
    step.deltaThroughput =
        c.throughputAtLevel(step.toLevel) -
        c.throughputAtLevel(step.fromLevel);
    step.valid = true;
    return step;
}

StepCandidate
downStep(const cpu::MultiCoreChip &chip, int index)
{
    StepCandidate step;
    step.coreIndex = index;
    const cpu::Core &c = chip.core(index);
    const auto &table = chip.dvfs();

    if (c.gated())
        return step; // nothing below

    if (c.level() <= table.minLevel()) {
        if (!chip.gatingAllowed())
            return step; // PCPG disabled: the bottom level is the floor
        // Gate the core entirely (PCPG).
        step.fromGated = false;
        step.toGated = true;
        step.fromLevel = c.level();
        step.toLevel = c.level();
        const double gated_w = chip.powerModel().gatedPower().totalW();
        step.deltaPowerW = gated_w - c.powerAtLevel(c.level());
        step.deltaThroughput = -c.throughputAtLevel(c.level());
        step.valid = true;
        return step;
    }

    step.fromLevel = c.level();
    step.toLevel = c.level() - 1;
    step.deltaPowerW =
        c.powerAtLevel(step.toLevel) - c.powerAtLevel(step.fromLevel);
    step.deltaThroughput =
        c.throughputAtLevel(step.toLevel) -
        c.throughputAtLevel(step.fromLevel);
    step.valid = true;
    return step;
}

void
applyStep(cpu::MultiCoreChip &chip, const StepCandidate &step)
{
    SC_ASSERT(step.valid, "applyStep: invalid candidate");
    cpu::Core &c = chip.core(step.coreIndex);
    c.setGated(step.toGated);
    if (!step.toGated)
        c.setLevel(step.toLevel);
}

std::vector<StepCandidate>
allUpSteps(const cpu::MultiCoreChip &chip)
{
    std::vector<StepCandidate> out;
    out.reserve(static_cast<std::size_t>(chip.numCores()));
    for (int i = 0; i < chip.numCores(); ++i) {
        auto s = upStep(chip, i);
        if (s.valid)
            out.push_back(s);
    }
    return out;
}

std::vector<StepCandidate>
allDownSteps(const cpu::MultiCoreChip &chip)
{
    std::vector<StepCandidate> out;
    out.reserve(static_cast<std::size_t>(chip.numCores()));
    for (int i = 0; i < chip.numCores(); ++i) {
        auto s = downStep(chip, i);
        if (s.valid)
            out.push_back(s);
    }
    return out;
}

} // namespace solarcore::core
