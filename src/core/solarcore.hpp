/**
 * @file
 * Umbrella header: the SolarCore public API.
 *
 * Pulls in everything a downstream user needs to build and simulate a
 * solar-energy-driven multi-core system:
 *
 *   pv::        single-diode PV cell/module/array models, MPP finder
 *   solar::     sites, weather model, daytime trace generation
 *   power::     DC/DC converter, network operating point, ATS, battery
 *   cpu::       DVFS table, interval perf model, Wattch-style power
 *               model, cores and the 8-core chip
 *   workload::  calibrated SPEC2000-like profiles and Table 5 mixes
 *   core::      the SolarCore controller, load-adaptation policies,
 *               fixed-budget optimizer and the day-simulation driver
 */

#ifndef SOLARCORE_CORE_SOLARCORE_HPP
#define SOLARCORE_CORE_SOLARCORE_HPP

#include "core/aggregate.hpp"
#include "core/controller.hpp"
#include "core/fixed_power.hpp"
#include "core/carbon.hpp"
#include "core/fleet.hpp"
#include "core/load_adapter.hpp"
#include "core/perturb_observe.hpp"
#include "core/simulation.hpp"
#include "core/tpr.hpp"
#include "cpu/cacti_lite.hpp"
#include "cpu/chip.hpp"
#include "cpu/cycle/cycle_core.hpp"
#include "cpu/thermal.hpp"
#include "cpu/vrm.hpp"
#include "power/ats.hpp"
#include "power/battery.hpp"
#include "power/converter.hpp"
#include "power/operating_point.hpp"
#include "power/psu.hpp"
#include "power/sensors.hpp"
#include "power/ups.hpp"
#include "pv/bp3180n.hpp"
#include "pv/mpp.hpp"
#include "pv/mpp_cache.hpp"
#include "pv/shading.hpp"
#include "solar/midc.hpp"
#include "solar/trace.hpp"
#include "util/thread_pool.hpp"
#include "workload/catalog.hpp"
#include "workload/multiprogram.hpp"

#endif // SOLARCORE_CORE_SOLARCORE_HPP
