/**
 * @file
 * Multi-day aggregation: run one site-month/workload/policy cell over
 * several independently seeded weather days and aggregate the metrics.
 * The paper evaluates single representative days from the 2009 MIDC
 * record; with synthetic weather the honest equivalent is an average
 * over weather draws, which this helper provides for studies that need
 * variance (the bench binaries default to the shared seed for
 * reproducible tables).
 */

#ifndef SOLARCORE_CORE_AGGREGATE_HPP
#define SOLARCORE_CORE_AGGREGATE_HPP

#include "core/simulation.hpp"
#include "util/stats.hpp"

namespace solarcore::core {

/** Aggregated metrics over several simulated days. */
struct AggregateResult
{
    RunningStats utilization;
    RunningStats effectiveFraction;
    RunningStats trackingError;
    RunningStats solarEnergyWh;
    RunningStats solarInstructions;
    int days = 0;
};

/**
 * Simulate @p days consecutive weather draws (seeds base_seed,
 * base_seed+1, ...) of @p workload at @p site / @p month and
 * aggregate. The SimConfig's own seed field is overridden per day so
 * workload phases also vary.
 */
AggregateResult simulateManyDays(const pv::PvModule &module,
                                 solar::SiteId site, solar::Month month,
                                 workload::WorkloadId workload,
                                 const SimConfig &cfg, int days,
                                 std::uint64_t base_seed = 1);

} // namespace solarcore::core

#endif // SOLARCORE_CORE_AGGREGATE_HPP
