#include "carbon.hpp"

#include <limits>

#include "util/logging.hpp"

namespace solarcore::core {

CarbonReport
assessDay(const DayResult &day, const GridContext &grid)
{
    return assessEnergy(day.solarEnergyWh, day.gridEnergyWh, grid);
}

CarbonReport
assessEnergy(double solar_wh, double grid_wh, const GridContext &grid)
{
    SC_ASSERT(grid.co2KgPerKwh >= 0.0 && grid.gridUsdPerKwh >= 0.0,
              "assessEnergy: negative grid context");
    CarbonReport report;
    report.solarKwhPerDay = solar_wh / 1000.0;
    report.gridKwhPerDay = grid_wh / 1000.0;

    const double solar_kwh_year = report.solarKwhPerDay * 365.0;
    report.co2AvoidedKgPerYear = solar_kwh_year * grid.co2KgPerKwh;
    report.savingsUsdPerYear = solar_kwh_year * grid.gridUsdPerKwh;

    report.panelPaybackYears = report.savingsUsdPerYear > 0.0
        ? grid.panelUsd / report.savingsUsdPerYear
        : std::numeric_limits<double>::infinity();

    report.batteryAvoidedUsdPerYear = grid.batteryLifeYears > 0.0
        ? grid.batteryUsd / grid.batteryLifeYears
        : 0.0;
    return report;
}

} // namespace solarcore::core
