/**
 * @file
 * Carbon and cost accounting: turns the simulation's energy ledgers
 * into the quantities the paper's introduction argues about — avoided
 * grid energy, avoided CO2, utility-bill savings, and the payback
 * horizon of the panel against a battery-equipped alternative whose
 * storage must be replaced periodically (the paper's Section 1 cost
 * argument).
 */

#ifndef SOLARCORE_CORE_CARBON_HPP
#define SOLARCORE_CORE_CARBON_HPP

#include "core/simulation.hpp"

namespace solarcore::core {

/** Economic/environmental context of a deployment. */
struct GridContext
{
    double co2KgPerKwh = 0.40;   //!< grid carbon intensity
    double gridUsdPerKwh = 0.12; //!< utility tariff
    double panelUsd = 450.0;     //!< installed cost of the PV module(s)
    double batteryUsd = 600.0;   //!< battery bank for the alternative
    double batteryLifeYears = 4.0; //!< replacement period (paper: short
                                   //!< battery lifetime is a key cost)
};

/** Accounting over a repeated-day horizon. */
struct CarbonReport
{
    double solarKwhPerDay = 0.0;
    double gridKwhPerDay = 0.0;
    double co2AvoidedKgPerYear = 0.0;
    double savingsUsdPerYear = 0.0;
    /** Years for the panel alone to pay for itself; inf if never. */
    double panelPaybackYears = 0.0;
    /**
     * Extra yearly cost of the battery-equipped alternative
     * (amortized storage replacement), the cost SolarCore avoids.
     */
    double batteryAvoidedUsdPerYear = 0.0;
};

/**
 * Project one simulated day across a year (365 identical days — a
 * deliberate simplification; use one report per season for more
 * fidelity) under @p grid.
 */
CarbonReport assessDay(const DayResult &day,
                       const GridContext &grid = GridContext());

/**
 * The same projection from bare daily energy ledgers — the form the
 * planning service uses on fleet aggregates (assessDay delegates
 * here). @p solar_wh and @p grid_wh are one day's energies in Wh;
 * they may describe a whole fleet, in which case panelUsd/batteryUsd
 * in @p grid must be the fleet-level installed costs.
 */
CarbonReport assessEnergy(double solar_wh, double grid_wh,
                          const GridContext &grid = GridContext());

} // namespace solarcore::core

#endif // SOLARCORE_CORE_CARBON_HPP
