/**
 * @file
 * The SolarCore MPPT controller (paper Section 4.2, Figure 9).
 *
 * Each tracking event executes the paper's three-step strategy in our
 * quasi-static electrical model:
 *
 *  step 1  restore the rail to its nominal voltage: if the present
 *          demand exceeds what the panel can source, shed load one
 *          notch at a time (the policy picks the notch);
 *  step 2  determine the climb direction by perturbing the transfer
 *          ratio and observing the output current (in the quasi-static
 *          solver this is the feasibility probe of pinRailVoltage,
 *          which settles on the stable right-of-MPP branch);
 *  step 3  climb: add load one notch at a time, retuning the transfer
 *          ratio after each notch to hold the rail at nominal, until
 *          the next notch (plus the safety margin) would no longer be
 *          sustainable -- the paper's inflection point with a one-notch
 *          power margin.
 *
 * Between tracking events enforceRail() guards against supply drops:
 * if clouds cut the panel below the current demand, load is shed
 * immediately (the paper's "detects a change in PV power supply").
 */

#ifndef SOLARCORE_CORE_CONTROLLER_HPP
#define SOLARCORE_CORE_CONTROLLER_HPP

#include <optional>

#include "core/load_adapter.hpp"
#include "cpu/chip.hpp"
#include "power/converter.hpp"
#include "power/operating_point.hpp"
#include "power/sensors.hpp"
#include "pv/module.hpp"

namespace solarcore::obs {
class TraceBuffer;
} // namespace solarcore::obs

namespace solarcore::core {

/** Tuning knobs of the controller. */
struct ControllerConfig
{
    double railNominalV = 12.0;  //!< nominal converter output voltage
    double marginFraction = 0.02;//!< headroom kept below the MPP
    int maxTuneSteps = 96;       //!< notch cap per tracking event
    double deltaK = 0.02;        //!< transfer-ratio perturbation step
    double converterEfficiency = 1.0; //!< DC/DC conversion efficiency;
                                      //!< panel supplies demand/eff
};

/** Outcome of one tracking event. */
struct TrackResult
{
    bool solarViable = false;    //!< panel can carry the (possibly
                                 //!< reduced) load at nominal rail
    int stepsUp = 0;             //!< notches added this event
    int stepsDown = 0;           //!< notches shed this event
    power::NetworkState net;     //!< final electrical state
};

/** The SolarCore power-management controller. */
class SolarCoreController
{
  public:
    /**
     * @param panel   PV source; the caller rebinds its environment
     * @param chip    the multi-core load
     * @param adapter load-adaptation policy
     * @param config  controller knobs
     */
    SolarCoreController(const pv::IvSource &panel, cpu::MultiCoreChip &chip,
                        LoadAdapter &adapter,
                        ControllerConfig config = ControllerConfig());

    const ControllerConfig &config() const { return config_; }
    const power::DcDcConverter &converter() const { return converter_; }

    /** Which side of the MPP the panel operating point sits on. */
    enum class MppSide { Left, Right, AtMpp };

    /**
     * The paper's Step 2, literally: hold the chip load fixed, perturb
     * the transfer ratio by +deltaK and observe the output current
     * through the sensors. Rising current means the perturbation moved
     * the panel toward the MPP, i.e. the operating point was on the
     * left of the MPP (Figure 5-b); falling current means it was on the
     * right (Figure 5-a). The converter ratio is restored afterwards.
     */
    MppSide probeMppSide();

    /** Run one full tracking event (periodic or event-triggered). */
    TrackResult track();

    /**
     * Cheap inter-event guard: verify the panel still sustains the
     * demand with margin; shed load until it does.
     * @return the resulting state (solarViable=false when even the
     *         minimum load cannot be carried)
     */
    TrackResult enforceRail();

    /** Total notches moved since construction (controller activity). */
    long totalSteps() const { return totalSteps_; }

    /**
     * Attach a trace sink (nullptr detaches; also attaches the policy).
     * Every applied notch emits a DvfsChange event carrying the step's
     * TPR rank among the candidates the policy chose from (1 = best),
     * or a Pcpg event when the notch gates/ungates a core; each
     * tracking event additionally emits an MpptTrack summary. Rank
     * computation only runs while a sink is attached, so detached
     * tracing leaves the controller's hot loops untouched.
     */
    void
    setTrace(obs::TraceBuffer *trace)
    {
        trace_ = trace;
        adapter_->setTrace(trace);
    }

  private:
    /** Can the panel carry @p demand_w with the configured margin? */
    bool sustainable(double demand_w);

    /**
     * Pin the rail at nominal for @p demand_w. When the panel is a
     * uniform PvArray and a batch PV kernel is selected (and the
     * Newton oracle is off), this routes through the PreparedArray
     * fast path -- the per-environment constants and the MPP are
     * derived once per environment change instead of once per probe.
     * Otherwise it is exactly the legacy pinRailVoltage call.
     */
    power::NetworkState pinRail(double demand_w);

    /** Shed load until sustainable; fills @p result. */
    void shedUntilSustainable(TrackResult &result);

    /**
     * TPR rank of @p step among @p candidates (1 = best): descending
     * TPR for upward steps, ascending for downward ones, matching the
     * preference order of the Section 4.3 heuristic.
     */
    static int rankOf(const StepCandidate &step,
                      const std::vector<StepCandidate> &candidates,
                      bool upward);

    /** Emit a DvfsChange (or Pcpg) event for an applied step. */
    void traceStep(const StepCandidate &step, int rank);

    const pv::IvSource *panel_;
    const pv::PvArray *arrayPanel_; //!< non-null when panel_ is uniform
    std::optional<pv::PreparedArray> prepared_;
    cpu::MultiCoreChip *chip_;
    LoadAdapter *adapter_;
    ControllerConfig config_;
    power::DcDcConverter converter_;
    obs::TraceBuffer *trace_ = nullptr;
    long totalSteps_ = 0;
};

} // namespace solarcore::core

#endif // SOLARCORE_CORE_CONTROLLER_HPP
