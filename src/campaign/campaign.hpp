/**
 * @file
 * The sharded scenario-campaign runner.
 *
 * runCampaign() expands a ScenarioGrid into work units, shards them
 * over util/thread_pool (the caller participates; --threads=0
 * auto-detects), and aggregates per-unit metrics into one summary.
 * Determinism contract: every unit writes into its index-addressed
 * result slot, per-worker stats registries and the summary are merged
 * /emitted in task-index order, and all numbers are rendered with
 * shortest-round-trip formatting -- so the summary JSON is
 * byte-identical at any thread count, and a resumed campaign (progress
 * journal) reproduces the uninterrupted summary exactly.
 */

#ifndef SOLARCORE_CAMPAIGN_CAMPAIGN_HPP
#define SOLARCORE_CAMPAIGN_CAMPAIGN_HPP

#include <iosfwd>
#include <string>
#include <vector>

#include "campaign/scenario.hpp"
#include "campaign/unit_metrics.hpp"
#include "obs/obs_options.hpp"

namespace solarcore::core {
struct SimWorkspace;
}

namespace solarcore::campaign {

/** Execution knobs of one campaign invocation. */
struct CampaignOptions
{
    int threads = 0;          //!< thread count per process; 0 auto-detects
    int workers = 1;          //!< forked worker processes; <=1 runs
                              //!< in-process over the thread pool
    std::string journalPath;  //!< progress journal; empty disables
    bool resume = false;      //!< reuse completed units from the journal
    std::string unitCacheDir; //!< persistent unit-result cache; empty
                              //!< disables
    std::size_t unitCacheCap = 4096; //!< cache LRU cap [entries]; 0 =
                              //!< unlimited
    obs::ObsOptions obs;      //!< --stats-out / --trace-out / manifest
    bool verbose = false;     //!< per-unit progress lines on stderr
    std::string statusPath;   //!< run-health status.json; empty disables
    /**
     * Request-span exports: when either path is set the campaign
     * records one trace (a root span, phase spans, and one span per
     * simulated unit). Forked shard workers stream their spans back
     * over the worker pipes ('T' frames) and stitch into the same
     * trace id -- CLOCK_MONOTONIC is shared across fork. Off by
     * default; span collection never touches unit results, merged
     * stats, or the summary bytes.
     */
    std::string spanOut;          //!< span JSONL path; empty disables
    std::string spanPerfettoOut;  //!< Chrome/Perfetto path; empty off
    std::uint64_t traceId = 0;    //!< stitch into this id (0 = fresh)
    /** Internal: campaign root span id, set by runCampaign on the
     *  options copy handed to shard workers so their spans parent
     *  correctly. Zero disables worker span emission. */
    std::uint64_t spanParentId = 0;
};

/** What one campaign run produced. */
struct CampaignOutcome
{
    std::vector<ScenarioUnit> units;   //!< the expanded grid
    std::vector<UnitMetrics> results;  //!< parallel to units
    int unitsResumed = 0;              //!< restored from the journal
    int unitsRun = 0;                  //!< simulated in this invocation
    int unitsCached = 0;               //!< served from the unit cache
    int workerCrashes = 0;             //!< forked workers that died
                                       //!< (their shards were re-run)
};

/**
 * Simulate one unit of @p grid. Exposed for tests; the runner calls
 * this from worker threads. All sinks may be null. A non-null
 * @p audit contributes the unit's violation count to the returned
 * metrics and folds audit.* counters into @p stats. A non-null
 * @p workspace supplies reusable per-step buffers (one per worker
 * thread) so steady-state unit simulation is allocation-free.
 */
UnitMetrics runUnit(const ScenarioUnit &unit, const ScenarioGrid &grid,
                    obs::StatsRegistry *stats = nullptr,
                    obs::TraceBuffer *trace = nullptr,
                    obs::TelemetryRecorder *telemetry = nullptr,
                    obs::Auditor *audit = nullptr,
                    core::SimWorkspace *workspace = nullptr);

/** Expand, shard, execute (resuming if asked) and aggregate @p grid. */
CampaignOutcome runCampaign(const ScenarioGrid &grid,
                            const CampaignOptions &options);

/**
 * Render the deterministic summary JSON: schema tag, the grid axes,
 * one object per unit in index order, and grid-wide aggregates.
 */
void writeSummaryJson(std::ostream &os, const ScenarioGrid &grid,
                      const CampaignOutcome &outcome);

} // namespace solarcore::campaign

#endif // SOLARCORE_CAMPAIGN_CAMPAIGN_HPP
