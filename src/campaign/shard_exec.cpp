#include "shard_exec.hpp"

#include <cstring>
#include <memory>
#include <mutex>
#include <optional>
#include <type_traits>

#include "core/simulation.hpp"
#include "obs/auditor.hpp"
#include "obs/stats_wire.hpp"
#include "util/logging.hpp"
#include "util/pipe_channel.hpp"
#include "util/thread_pool.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define SC_HAVE_FORK 1
#include <csignal>
#include <fcntl.h>
#include <poll.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#else
#define SC_HAVE_FORK 0
#endif

namespace solarcore::campaign {

bool
processShardingSupported()
{
    return SC_HAVE_FORK != 0 && util::pipeChannelSupported();
}

std::uint64_t
campaignUnitSpanId(std::uint64_t trace_id, std::size_t index,
                   std::uint64_t salt)
{
    // The golden-ratio constant keeps this input domain disjoint from
    // RequestTrace's sequential ids (trace ^ small-seq), so a unit
    // span can never collide with a parent-side phase span.
    return obs::mixId(trace_id ^ 0x9e3779b97f4a7c15ULL ^
                      (salt << 56) ^
                      static_cast<std::uint64_t>(index + 1));
}

#if SC_HAVE_FORK

namespace {

constexpr char kTagUnit = 'U';
constexpr char kTagStats = 'S';
constexpr char kTagSpan = 'T';

std::string
packSpanFrame(const obs::SpanRecord &record)
{
    // Raw POD bytes: same machine, same binary, native endianness --
    // the same contract the 'U' metric frames rely on.
    static_assert(std::is_trivially_copyable_v<obs::SpanRecord>);
    std::string payload;
    payload.reserve(1 + sizeof record);
    payload.push_back(kTagSpan);
    payload.append(reinterpret_cast<const char *>(&record),
                   sizeof record);
    return payload;
}

bool
unpackSpanFrame(const std::string &payload, obs::SpanRecord &record)
{
    if (payload.size() != 1 + sizeof record || payload[0] != kTagSpan)
        return false;
    std::memcpy(&record, payload.data() + 1, sizeof record);
    return true;
}

std::string
packUnitFrame(std::uint32_t unit_index, const UnitMetrics &metrics)
{
    // Raw little-endian doubles: parent and child are the same binary
    // on the same machine, so the decoded metrics are bit-exact and
    // the parent-side summary stays byte-identical.
    std::string payload;
    payload.reserve(1 + sizeof(unit_index) +
                    kNumMetricFields * sizeof(double));
    payload.push_back(kTagUnit);
    payload.append(reinterpret_cast<const char *>(&unit_index),
                   sizeof(unit_index));
    const MetricField(&fields)[kNumMetricFields] = metricFields();
    for (const auto &field : fields) {
        const double v = metrics.*(field.member);
        payload.append(reinterpret_cast<const char *>(&v), sizeof(v));
    }
    return payload;
}

bool
unpackUnitFrame(const std::string &payload, std::uint32_t &unit_index,
                UnitMetrics &metrics)
{
    constexpr std::size_t expect =
        1 + sizeof(std::uint32_t) + kNumMetricFields * sizeof(double);
    if (payload.size() != expect || payload[0] != kTagUnit)
        return false;
    std::size_t pos = 1;
    std::memcpy(&unit_index, payload.data() + pos, sizeof(unit_index));
    pos += sizeof(unit_index);
    const MetricField(&fields)[kNumMetricFields] = metricFields();
    for (const auto &field : fields) {
        double v = 0.0;
        std::memcpy(&v, payload.data() + pos, sizeof(v));
        metrics.*(field.member) = v;
        pos += sizeof(v);
    }
    return true;
}

/**
 * The worker child: simulate pending[begin..end) over this process's
 * own thread pool, streaming each unit frame as it completes and the
 * shard-merged stats registry once at the end. Never returns; exits
 * 0 on success. Uses _exit so the parent's inherited state (journal
 * streams, atexit hooks) is never touched from the child.
 */
[[noreturn]] void
runWorkerShard(int fd, int worker_id, const ScenarioGrid &grid,
               const CampaignOptions &options,
               const std::vector<ScenarioUnit> &units,
               const std::vector<std::size_t> &pending, std::size_t begin,
               std::size_t end)
{
    // If the parent dies first, frame writes must fail with EPIPE (so
    // the worker exits 3) instead of dying on SIGPIPE mid-unit.
    ::signal(SIGPIPE, SIG_IGN);

    int exit_code = 0;
    try {
        const bool want_stats = options.obs.statsRequested();
        const bool want_audit = options.obs.auditRequested();
        // Span stitching: the parent only sets spanParentId when it is
        // collecting request spans; each completed unit streams one
        // 'T' frame as it finishes, so a crashed worker still leaves
        // its partial spans in the parent's trace.
        const bool want_spans =
            options.spanParentId != 0 && options.traceId != 0;
        const std::int64_t shard_start_ns =
            want_spans ? obs::spanNowNs() : 0;
        const std::uint64_t shard_span_id = want_spans
            ? obs::mixId(options.traceId ^
                         (static_cast<std::uint64_t>(worker_id + 1)
                          << 32))
            : 0;
        obs::AuditorConfig audit_cfg;
        if (options.obs.audit != obs::AuditMode::Off)
            audit_cfg.mode = options.obs.audit;

        const std::size_t n = end - begin;
        std::vector<std::unique_ptr<obs::StatsRegistry>> regs(n);
        std::vector<std::unique_ptr<obs::Auditor>> audits(n);
        std::mutex write_mutex;
        bool write_failed = false;

        ThreadPool pool(options.threads);
        pool.parallelFor(n, [&](std::size_t t) {
            const std::size_t i = pending[begin + t];
            if (want_stats)
                regs[t] = std::make_unique<obs::StatsRegistry>();
            if (want_audit)
                audits[t] = std::make_unique<obs::Auditor>(audit_cfg);
            // One reusable workspace per pool thread: buffers keep
            // their capacity across the whole shard.
            static thread_local core::SimWorkspace workspace;
            const std::int64_t t0 = want_spans ? obs::spanNowNs() : 0;
            const UnitMetrics m =
                runUnit(units[i], grid, regs[t].get(), nullptr, nullptr,
                        audits[t].get(), &workspace);
            const std::string frame =
                packUnitFrame(static_cast<std::uint32_t>(i), m);
            std::string span_frame;
            if (want_spans) {
                obs::SpanRecord rec;
                rec.traceId = options.traceId;
                rec.spanId =
                    campaignUnitSpanId(options.traceId, i, /*salt=*/0);
                rec.parentId = shard_span_id;
                rec.startNs = t0;
                rec.endNs = obs::spanNowNs();
                rec.lane = static_cast<std::uint32_t>(worker_id) + 1;
                rec.setName("unit");
                rec.attr("unit", static_cast<std::int64_t>(i));
                rec.attr("key", std::string_view(unitKey(units[i])));
                rec.attr("proc",
                         static_cast<std::int64_t>(worker_id));
                span_frame = packSpanFrame(rec);
            }
            std::lock_guard<std::mutex> lock(write_mutex);
            if (!util::writeFrame(fd, frame.data(), frame.size()))
                write_failed = true;
            if (!span_frame.empty() &&
                !util::writeFrame(fd, span_frame.data(),
                                  span_frame.size()))
                write_failed = true;
        });

        if (want_spans) {
            obs::SpanRecord rec;
            rec.traceId = options.traceId;
            rec.spanId = shard_span_id;
            rec.parentId = options.spanParentId;
            rec.startNs = shard_start_ns;
            rec.endNs = obs::spanNowNs();
            rec.lane = static_cast<std::uint32_t>(worker_id) + 1;
            rec.setName("shard");
            rec.attr("proc", static_cast<std::int64_t>(worker_id));
            rec.attr("units", static_cast<std::int64_t>(n));
            const std::string frame = packSpanFrame(rec);
            if (!util::writeFrame(fd, frame.data(), frame.size()))
                write_failed = true;
        }

        if (want_stats) {
            // Shard order, matching the in-process task-order merge.
            obs::StatsRegistry merged;
            for (const auto &reg : regs)
                if (reg)
                    merged.merge(*reg);
            std::string blob;
            blob.push_back(kTagStats);
            blob += obs::serializeRegistry(merged);
            if (!util::writeFrame(fd, blob.data(), blob.size()))
                write_failed = true;
        }
        if (write_failed)
            exit_code = 3;
    } catch (const std::exception &e) {
        SC_WARN("campaign worker: ", e.what());
        exit_code = 2;
    } catch (...) {
        exit_code = 2;
    }
    ::close(fd);
    ::_exit(exit_code);
}

} // namespace

ProcessShardRun::ProcessShardRun(const ScenarioGrid &grid,
                                 const CampaignOptions &options,
                                 const std::vector<ScenarioUnit> &units,
                                 const std::vector<std::size_t> &pending,
                                 int workers)
    : grid_(&grid), units_(&units), pending_(&pending),
      wantStats_(options.obs.statsRequested())
{
    const std::size_t n = pending.size();
    const std::size_t count = std::min<std::size_t>(
        n, static_cast<std::size_t>(std::max(workers, 1)));
    if (count == 0)
        return;

    // Contiguous shards: worker w owns [w*base + min(w, extra), ...)
    // with the first `extra` workers taking one additional unit.
    const std::size_t base = n / count;
    const std::size_t extra = n % count;

    std::size_t begin = 0;
    for (std::size_t w = 0; w < count; ++w) {
        const std::size_t size = base + (w < extra ? 1 : 0);
        const std::size_t end = begin + size;

        int pipe_fds[2];
        if (::pipe(pipe_fds) != 0) {
            SC_WARN("campaign: pipe() failed; remaining shards run "
                    "in-process");
            break;
        }
        const pid_t pid = ::fork();
        if (pid < 0) {
            ::close(pipe_fds[0]);
            ::close(pipe_fds[1]);
            SC_WARN("campaign: fork() failed; remaining shards run "
                    "in-process");
            break;
        }
        if (pid == 0) {
            // Child: keep only its own write end.
            ::close(pipe_fds[0]);
            for (const int fd : fds_)
                ::close(fd);
            runWorkerShard(pipe_fds[1], static_cast<int>(w), grid,
                           options, units, pending, begin, end);
        }
        ::close(pipe_fds[1]);
        const int flags = ::fcntl(pipe_fds[0], F_GETFL, 0);
        ::fcntl(pipe_fds[0], F_SETFL, flags | O_NONBLOCK);

        ShardWorkerState state;
        state.id = static_cast<int>(w);
        state.pid = static_cast<long>(pid);
        state.shardBegin = begin;
        state.shardEnd = end;
        workers_.push_back(state);
        fds_.push_back(pipe_fds[0]);
        got_.emplace_back(size, 0);
        begin = end;
    }
    statsBlobs_.resize(workers_.size());

    // Shard slots no worker took (early pipe/fork failure) run
    // in-process.
    for (std::size_t t = begin; t < n; ++t)
        unfinished_.push_back(pending[t]);
}

void
ProcessShardRun::drain(const UnitCallback &onUnit,
                       const WorkerCallback &onWorker)
{
    std::vector<util::FrameReader> readers(workers_.size());
    std::size_t open = 0;
    for (const auto &w : workers_)
        open += w.alive ? 1 : 0;

    std::vector<pollfd> fds;
    while (open > 0) {
        fds.clear();
        for (std::size_t w = 0; w < workers_.size(); ++w) {
            if (!workers_[w].alive)
                continue;
            pollfd p;
            p.fd = fds_[w];
            p.events = POLLIN;
            p.revents = 0;
            fds.push_back(p);
        }
        const int rc = ::poll(fds.data(),
                              static_cast<nfds_t>(fds.size()), -1);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            SC_WARN("campaign: poll() failed; abandoning worker drain");
            break;
        }
        for (const pollfd &p : fds) {
            if (p.revents == 0)
                continue;
            // Map back to the worker index.
            std::size_t w = 0;
            while (w < workers_.size() && fds_[w] != p.fd)
                ++w;
            ShardWorkerState &state = workers_[w];

            std::vector<std::string> frames;
            const auto status = readers[w].drain(p.fd, frames);
            bool changed = false;
            for (const std::string &frame : frames) {
                if (frame.empty())
                    continue;
                if (frame[0] == kTagUnit) {
                    std::uint32_t index = 0;
                    UnitMetrics m;
                    if (!unpackUnitFrame(frame, index, m))
                        continue;
                    // Mark the shard slot as delivered.
                    for (std::size_t t = state.shardBegin;
                         t < state.shardEnd; ++t) {
                        if ((*pending_)[t] == index) {
                            if (!got_[w][t - state.shardBegin]) {
                                got_[w][t - state.shardBegin] = 1;
                                ++state.received;
                            }
                            break;
                        }
                    }
                    state.lastKey = unitKey((*units_)[index]);
                    changed = true;
                    if (onUnit)
                        onUnit(index, m);
                } else if (frame[0] == kTagStats) {
                    statsBlobs_[w] = frame.substr(1);
                } else if (frame[0] == kTagSpan) {
                    obs::SpanRecord rec;
                    if (unpackSpanFrame(frame, rec))
                        spans_.push_back(rec);
                }
            }
            if (status != util::FrameReader::Status::Open) {
                state.alive = false;
                --open;
                int wstatus = 0;
                ::waitpid(static_cast<pid_t>(state.pid), &wstatus, 0);
                const bool clean_exit =
                    WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0;
                const std::size_t shard_size =
                    state.shardEnd - state.shardBegin;
                const bool complete = state.received == shard_size &&
                    (!wantStats_ || !statsBlobs_[w].empty());
                state.crashed = !clean_exit || !complete;
                if (state.crashed) {
                    ++crashes_;
                    SC_WARN("campaign: worker ", state.id, " (pid ",
                            state.pid, ") died with ", state.received,
                            "/", shard_size,
                            " results; re-queueing its shard");
                    // With stats on, partial results are unusable
                    // (their counters died with the worker): re-run
                    // the whole shard. Without stats only the missing
                    // units need a re-run.
                    for (std::size_t t = state.shardBegin;
                         t < state.shardEnd; ++t) {
                        if (wantStats_ ||
                            !got_[w][t - state.shardBegin])
                            unfinished_.push_back((*pending_)[t]);
                    }
                    statsBlobs_[w].clear();
                }
                changed = true;
            }
            if (changed && onWorker)
                onWorker(state);
        }
    }
    for (const int fd : fds_)
        ::close(fd);

    if (wantStats_) {
        statsValid_ = true;
        for (std::size_t w = 0; w < workers_.size(); ++w) {
            if (statsBlobs_[w].empty())
                continue; // crashed shard; its units re-run in-process
            std::string error;
            if (!obs::mergeSerializedRegistry(
                    statsBlobs_[w], stats_,
                    [](std::string_view name) {
                        return core::dayFormulaByName(name);
                    },
                    error)) {
                SC_WARN("campaign: worker ", w, " stats rejected: ",
                        error);
                statsValid_ = false;
            }
        }
    }
}

#else // !SC_HAVE_FORK

ProcessShardRun::ProcessShardRun(const ScenarioGrid &grid,
                                 const CampaignOptions &,
                                 const std::vector<ScenarioUnit> &units,
                                 const std::vector<std::size_t> &pending,
                                 int)
    : grid_(&grid), units_(&units), pending_(&pending)
{
    unfinished_ = pending;
}

void
ProcessShardRun::drain(const UnitCallback &, const WorkerCallback &)
{
}

#endif

} // namespace solarcore::campaign
