#include "scenario.hpp"

#include <sstream>

#include "util/logging.hpp"

namespace solarcore::campaign {

namespace {

/** Split a comma list into non-empty tokens. */
std::vector<std::string>
splitList(std::string_view text)
{
    std::vector<std::string> tokens;
    std::string token;
    std::istringstream is{std::string(text)};
    while (std::getline(is, token, ',')) {
        if (!token.empty())
            tokens.push_back(token);
    }
    return tokens;
}

template <typename T, typename Name>
bool
parseTokens(std::string_view text, std::vector<T> &out,
            const std::vector<T> &all, Name name)
{
    const auto tokens = splitList(text);
    if (tokens.empty())
        return false;
    std::vector<T> parsed;
    for (const auto &token : tokens) {
        bool found = false;
        for (const T value : all) {
            if (token == name(value)) {
                parsed.push_back(value);
                found = true;
                break;
            }
        }
        if (!found)
            return false;
    }
    out = std::move(parsed);
    return true;
}

const std::vector<CampaignPolicy> &
allPolicies()
{
    static const std::vector<CampaignPolicy> all = {
        CampaignPolicy::MpptOpt,     CampaignPolicy::MpptRr,
        CampaignPolicy::MpptIc,      CampaignPolicy::MpptIcMotion,
        CampaignPolicy::FixedPower,  CampaignPolicy::Battery,
    };
    return all;
}

} // namespace

const char *
campaignPolicyToken(CampaignPolicy policy)
{
    switch (policy) {
      case CampaignPolicy::MpptOpt:      return "opt";
      case CampaignPolicy::MpptRr:       return "rr";
      case CampaignPolicy::MpptIc:       return "ic";
      case CampaignPolicy::MpptIcMotion: return "icm";
      case CampaignPolicy::FixedPower:   return "fixed";
      case CampaignPolicy::Battery:      return "battery";
    }
    SC_PANIC("campaignPolicyToken: bad policy");
    return "?";
}

core::PolicyKind
toSimPolicy(CampaignPolicy policy)
{
    switch (policy) {
      case CampaignPolicy::MpptOpt:      return core::PolicyKind::MpptOpt;
      case CampaignPolicy::MpptRr:       return core::PolicyKind::MpptRr;
      case CampaignPolicy::MpptIc:       return core::PolicyKind::MpptIc;
      case CampaignPolicy::MpptIcMotion:
        return core::PolicyKind::MpptIcMotion;
      case CampaignPolicy::FixedPower:
        return core::PolicyKind::FixedPower;
      case CampaignPolicy::Battery:
        break;
    }
    SC_PANIC("toSimPolicy: the battery baseline has no SimConfig policy");
    return core::PolicyKind::FixedPower;
}

std::vector<ScenarioUnit>
expandGrid(const ScenarioGrid &grid)
{
    std::vector<ScenarioUnit> units;
    units.reserve(grid.unitCount());
    int index = 0;
    for (const auto site : grid.sites)
        for (const auto month : grid.months)
            for (const auto policy : grid.policies)
                for (const auto wl : grid.workloads)
                    for (const auto seed : grid.seeds)
                        units.push_back(
                            {index++, site, month, policy, wl, seed});
    return units;
}

std::string
unitKey(const ScenarioUnit &unit)
{
    std::string key = solar::siteName(unit.site);
    key += '-';
    key += solar::monthName(unit.month);
    key += '-';
    key += campaignPolicyToken(unit.policy);
    key += '-';
    key += workload::workloadName(unit.workload);
    key += "-s";
    key += std::to_string(unit.seed);
    return key;
}

std::string
gridSignature(const ScenarioGrid &grid)
{
    std::ostringstream os;
    os << "v1";
    os << " sites=";
    for (const auto s : grid.sites)
        os << solar::siteName(s) << ',';
    os << " months=";
    for (const auto m : grid.months)
        os << solar::monthName(m) << ',';
    os << " policies=";
    for (const auto p : grid.policies)
        os << campaignPolicyToken(p) << ',';
    os << " workloads=";
    for (const auto w : grid.workloads)
        os << workload::workloadName(w) << ',';
    os << " seeds=";
    for (const auto s : grid.seeds)
        os << s << ',';
    os << " dt=" << grid.dtSeconds << " budget=" << grid.fixedBudgetW
       << " derating=" << grid.batteryDerating
       << " period=" << grid.trackingPeriodMinutes
       << " pvkernel=" << grid.pvKernel;
    return os.str();
}

bool
parseSiteList(std::string_view text, std::vector<solar::SiteId> &out)
{
    const auto arr = solar::allSites();
    return parseTokens(text, out,
                       std::vector<solar::SiteId>(arr.begin(), arr.end()),
                       solar::siteName);
}

bool
parseMonthList(std::string_view text, std::vector<solar::Month> &out)
{
    const auto arr = solar::allMonths();
    return parseTokens(text, out,
                       std::vector<solar::Month>(arr.begin(), arr.end()),
                       solar::monthName);
}

bool
parsePolicyList(std::string_view text, std::vector<CampaignPolicy> &out)
{
    return parseTokens(text, out, allPolicies(), campaignPolicyToken);
}

bool
parseWorkloadList(std::string_view text,
                  std::vector<workload::WorkloadId> &out)
{
    const auto arr = workload::allWorkloads();
    return parseTokens(
        text, out,
        std::vector<workload::WorkloadId>(arr.begin(), arr.end()),
        workload::workloadName);
}

bool
parseSeedList(std::string_view text, std::vector<std::uint64_t> &out)
{
    const auto tokens = splitList(text);
    if (tokens.empty())
        return false;
    std::vector<std::uint64_t> parsed;
    for (const auto &token : tokens) {
        try {
            std::size_t used = 0;
            parsed.push_back(std::stoull(token, &used));
            if (used != token.size())
                return false;
        } catch (...) {
            return false;
        }
    }
    out = std::move(parsed);
    return true;
}

bool
applyPreset(std::string_view name, ScenarioGrid &grid)
{
    using solar::Month;
    using solar::SiteId;
    using workload::WorkloadId;
    ScenarioGrid g;
    if (name == "smoke") {
        g.sites = {SiteId::AZ, SiteId::NC};
        g.months = {Month::Jan, Month::Jul};
        g.policies = {CampaignPolicy::MpptOpt, CampaignPolicy::FixedPower};
        g.workloads = {WorkloadId::HM2};
        g.seeds = {1};
        g.dtSeconds = 120.0;
    } else if (name == "fig13" || name == "fig14") {
        g.sites = {SiteId::AZ};
        g.months = {name == "fig13" ? Month::Jan : Month::Jul};
        g.policies = {CampaignPolicy::MpptOpt};
        g.workloads = {WorkloadId::H1, WorkloadId::HM2, WorkloadId::L1};
        g.seeds = {1};
        g.dtSeconds = 15.0;
    } else if (name == "full") {
        const auto sites = solar::allSites();
        const auto months = solar::allMonths();
        g.sites.assign(sites.begin(), sites.end());
        g.months.assign(months.begin(), months.end());
        g.policies = {CampaignPolicy::MpptOpt, CampaignPolicy::MpptRr,
                      CampaignPolicy::MpptIc, CampaignPolicy::FixedPower,
                      CampaignPolicy::Battery};
        g.workloads = {WorkloadId::H1, WorkloadId::HM2, WorkloadId::L1};
        g.seeds = {1};
        g.dtSeconds = 30.0;
    } else {
        return false;
    }
    // The kernel choice is orthogonal to the preset axes: keep
    // whatever --pv-kernel already selected, regardless of option
    // order on the command line.
    g.pvKernel = grid.pvKernel;
    grid = g;
    return true;
}

} // namespace solarcore::campaign
