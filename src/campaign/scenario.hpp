/**
 * @file
 * Declarative scenario grids for the campaign runner.
 *
 * A ScenarioGrid names the axes the paper's evaluation sweeps -- NREL
 * sites, months, control policies (the four day-simulation policies
 * plus the battery-equipped MPPT baseline), workload mixes and seeds
 * -- together with the shared simulation knobs. expandGrid() unrolls
 * the grid into an indexed list of work units in a fixed site-major
 * nesting order, so a unit's index (and therefore every journal entry
 * and summary row) is a pure function of the grid, independent of
 * thread count or execution order.
 */

#ifndef SOLARCORE_CAMPAIGN_SCENARIO_HPP
#define SOLARCORE_CAMPAIGN_SCENARIO_HPP

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/load_adapter.hpp"
#include "power/battery.hpp"
#include "solar/sites.hpp"
#include "workload/multiprogram.hpp"

namespace solarcore::campaign {

/**
 * The five evaluated control schemes: the four SimConfig policies and
 * the paper's battery-equipped MPPT baseline (simulateBatteryDay).
 */
enum class CampaignPolicy
{
    MpptOpt = 0,
    MpptRr,
    MpptIc,
    MpptIcMotion,
    FixedPower,
    Battery,
};

/** CLI/key token of a policy: "opt", "rr", "ic", "icm", "fixed", "battery". */
const char *campaignPolicyToken(CampaignPolicy policy);

/** The day-simulation PolicyKind of a non-battery campaign policy. */
core::PolicyKind toSimPolicy(CampaignPolicy policy);

/** A declarative scenario matrix plus shared simulation knobs. */
struct ScenarioGrid
{
    std::vector<solar::SiteId> sites;
    std::vector<solar::Month> months;
    std::vector<CampaignPolicy> policies;
    std::vector<workload::WorkloadId> workloads;
    std::vector<std::uint64_t> seeds;

    double dtSeconds = 30.0;           //!< simulation step
    double fixedBudgetW = 75.0;        //!< Fixed-Power budget
    double batteryDerating = power::kBatteryUpperBound;
    double trackingPeriodMinutes = 10.0;

    /**
     * PV kernel token: "auto" (runtime dispatch), "scalar", "portable"
     * or "avx2". runCampaign resolves "auto" to the dispatched kernel
     * and records the *resolved* name in the grid signature, so two
     * runs whose journals/summaries are byte-compatible are guaranteed
     * to have used the same kernel.
     */
    std::string pvKernel = "auto";

    /** Number of units the grid expands to. */
    std::size_t unitCount() const
    {
        return sites.size() * months.size() * policies.size() *
            workloads.size() * seeds.size();
    }
};

/** One expanded work unit (a single simulated day). */
struct ScenarioUnit
{
    int index = -1;                //!< position in the expanded grid
    solar::SiteId site = solar::SiteId::AZ;
    solar::Month month = solar::Month::Jan;
    CampaignPolicy policy = CampaignPolicy::MpptOpt;
    workload::WorkloadId workload = workload::WorkloadId::HM2;
    std::uint64_t seed = 1;
};

/**
 * Unroll @p grid into indexed units. Nesting (outer to inner): site,
 * month, policy, workload, seed -- the paper's site-major table order.
 */
std::vector<ScenarioUnit> expandGrid(const ScenarioGrid &grid);

/** Human/journal key, e.g. "AZ-Jan-opt-HM2-s1". */
std::string unitKey(const ScenarioUnit &unit);

/**
 * A stable one-line signature of the grid (axes and knobs). Journals
 * record it so a resume against a different grid is rejected instead
 * of silently mixing incompatible results.
 */
std::string gridSignature(const ScenarioGrid &grid);

/**
 * Comma-list parsers for the CLI ("AZ,CO", "Jan,Jul", "opt,fixed",
 * "H1,HM2", "1,2,3"). Return false (leaving @p out unspecified) on an
 * unknown token or empty list.
 */
bool parseSiteList(std::string_view text, std::vector<solar::SiteId> &out);
bool parseMonthList(std::string_view text, std::vector<solar::Month> &out);
bool parsePolicyList(std::string_view text,
                     std::vector<CampaignPolicy> &out);
bool parseWorkloadList(std::string_view text,
                       std::vector<workload::WorkloadId> &out);
bool parseSeedList(std::string_view text,
                   std::vector<std::uint64_t> &out);

/**
 * Load a named preset grid:
 *  - "smoke": AZ,NC x Jan,Jul x opt,fixed x HM2, dt=120 s (CI gate)
 *  - "fig13": AZ-Jan, opt, H1/HM2/L1 at dt=15 s (the Figure 13 days)
 *  - "fig14": AZ-Jul, opt, H1/HM2/L1 at dt=15 s (the Figure 14 days)
 *  - "full":  4 sites x 4 months x 5 policies x H1/HM2/L1
 * @return false for an unknown name.
 */
bool applyPreset(std::string_view name, ScenarioGrid &grid);

} // namespace solarcore::campaign

#endif // SOLARCORE_CAMPAIGN_SCENARIO_HPP
