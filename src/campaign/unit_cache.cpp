#include "unit_cache.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/json.hpp"
#include "util/hash.hpp"
#include "util/logging.hpp"

namespace solarcore::campaign {

namespace fs = std::filesystem;

namespace {

constexpr const char *kEntryMagic = "# solarcore-unit-cache-v1";

const MetricField (&kFields)[kNumMetricFields] = metricFields();

std::string
hashHex(const std::string &text)
{
    return util::fnv1aHex(text);
}

std::int64_t
mtimeTicks(const fs::path &p)
{
    std::error_code ec;
    const auto t = fs::last_write_time(p, ec);
    return ec ? 0 : t.time_since_epoch().count();
}

} // namespace

UnitResultCache::UnitResultCache(std::string dir, std::size_t cap_entries,
                                 std::string salt)
    : dir_(std::move(dir)), cap_(cap_entries), salt_(std::move(salt))
{
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec || !fs::is_directory(dir_, ec)) {
        SC_WARN("unit-cache: cannot create directory '", dir_, "'");
        return;
    }
    // Build the recency index from the on-disk state; the logical
    // clock continues past the newest mtime so this process's touches
    // always order after anything pre-existing.
    for (const auto &entry : fs::directory_iterator(dir_, ec)) {
        if (!entry.is_regular_file() ||
            entry.path().extension() != ".unit")
            continue;
        const std::int64_t age = mtimeTicks(entry.path());
        const std::string stem = entry.path().stem().string();
        entries_[stem] = age;
        byAge_.emplace(age, stem);
        clock_ = std::max(clock_, age);
    }
    if (ec) {
        SC_WARN("unit-cache: cannot scan directory '", dir_, "'");
        return;
    }
    ok_ = true;
}

std::string
UnitResultCache::keyMaterial(const ScenarioGrid &grid,
                             const ScenarioUnit &unit) const
{
    // The unit-relevant closure only: axes of THIS unit plus the
    // shared knobs and resolved kernel -- never the grid's axis lists,
    // so overlapping grids share entries (see file header). The
    // metric schema is folded in by name so a schema change (like a
    // journal hash change) invalidates rather than misreads.
    std::string m = "unit-v";
    m += std::to_string(kUnitCacheCodeVersion);
    m += " site=";
    m += solar::siteName(unit.site);
    m += " month=";
    m += solar::monthName(unit.month);
    m += " policy=";
    m += campaignPolicyToken(unit.policy);
    m += " workload=";
    m += workload::workloadName(unit.workload);
    m += " seed=";
    m += std::to_string(unit.seed);
    m += " dt=";
    m += obs::jsonNumber(grid.dtSeconds);
    m += " budget=";
    m += obs::jsonNumber(grid.fixedBudgetW);
    m += " derating=";
    m += obs::jsonNumber(grid.batteryDerating);
    m += " period=";
    m += obs::jsonNumber(grid.trackingPeriodMinutes);
    m += " pvkernel=";
    m += grid.pvKernel;
    m += " schema=";
    for (const auto &field : kFields) {
        m += field.name;
        m += ';';
    }
    m += " salt=";
    m += salt_;
    return m;
}

std::string
UnitResultCache::keyHash(const ScenarioGrid &grid,
                         const ScenarioUnit &unit) const
{
    return hashHex(keyMaterial(grid, unit));
}

std::string
UnitResultCache::entryPath(const std::string &hash) const
{
    return (fs::path(dir_) / (hash + ".unit")).string();
}

bool
UnitResultCache::lookup(const ScenarioGrid &grid, const ScenarioUnit &unit,
                        UnitMetrics &out)
{
    if (!ok_) {
        std::lock_guard<std::mutex> lock(mutex_);
        ++counters_.misses;
        return false;
    }
    const std::string material = keyMaterial(grid, unit);
    const std::string hash = hashHex(material);
    const std::string path = entryPath(hash);

    bool hit = false;
    {
        std::ifstream in(path);
        std::string line;
        if (in && std::getline(in, line) && line == kEntryMagic &&
            std::getline(in, line) && line == material) {
            UnitMetrics m;
            bool good = true;
            for (const auto &field : kFields)
                good = good && static_cast<bool>(in >> m.*(field.member));
            if (good) {
                out = m;
                hit = true;
            }
        }
    }

    std::lock_guard<std::mutex> lock(mutex_);
    if (!hit) {
        ++counters_.misses;
        return false;
    }
    ++counters_.hits;
    // Refresh recency: logical clock for this process, file mtime for
    // the next one.
    const auto it = entries_.find(hash);
    if (it != entries_.end()) {
        const auto range = byAge_.equal_range(it->second);
        for (auto r = range.first; r != range.second; ++r) {
            if (r->second == hash) {
                byAge_.erase(r);
                break;
            }
        }
        it->second = ++clock_;
        byAge_.emplace(it->second, hash);
    }
    std::error_code ec;
    fs::last_write_time(path, fs::file_time_type::clock::now(), ec);
    return true;
}

void
UnitResultCache::store(const ScenarioGrid &grid, const ScenarioUnit &unit,
                       const UnitMetrics &metrics)
{
    if (!ok_)
        return;
    const std::string material = keyMaterial(grid, unit);
    const std::string hash = hashHex(material);
    const std::string path = entryPath(hash);

    // Atomic publication: a reader sees the old entry, the new entry,
    // or a miss -- never a torn file.
    const std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::trunc);
        if (!os) {
            SC_WARN_ONCE("unit-cache: cannot write '", tmp, "'");
            return;
        }
        os << kEntryMagic << '\n' << material << '\n';
        for (std::size_t i = 0; i < kNumMetricFields; ++i) {
            if (i)
                os << ' ';
            os << obs::jsonNumber(metrics.*(kFields[i].member));
        }
        os << '\n';
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
        SC_WARN_ONCE("unit-cache: rename to '", path, "' failed");
        fs::remove(tmp, ec);
        return;
    }

    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.stores;
    const auto it = entries_.find(hash);
    if (it != entries_.end()) {
        const auto range = byAge_.equal_range(it->second);
        for (auto r = range.first; r != range.second; ++r) {
            if (r->second == hash) {
                byAge_.erase(r);
                break;
            }
        }
        it->second = ++clock_;
        byAge_.emplace(it->second, hash);
    } else {
        entries_[hash] = ++clock_;
        byAge_.emplace(clock_, hash);
    }
    evictLocked();
}

void
UnitResultCache::evictLocked()
{
    if (cap_ == 0)
        return;
    while (entries_.size() > cap_ && !byAge_.empty()) {
        const auto oldest = byAge_.begin();
        const std::string hash = oldest->second;
        byAge_.erase(oldest);
        entries_.erase(hash);
        std::error_code ec;
        fs::remove(entryPath(hash), ec);
        ++counters_.evictions;
    }
}

std::size_t
UnitResultCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

UnitCacheCounters
UnitResultCache::counters() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_;
}

} // namespace solarcore::campaign
