#include "run_health.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>

#include "campaign/journal.hpp"
#include "obs/json.hpp"
#include "obs/metrics_export.hpp"
#include "util/logging.hpp"

namespace solarcore::campaign {

namespace {

/** Fill the rate-derived fields from the counters. */
void
deriveRates(RunHealthSnapshot &s)
{
    const std::size_t accounted = s.unitsDone + s.unitsInflight;
    s.queueDepth =
        s.pendingUnits > accounted ? s.pendingUnits - accounted : 0;
    s.unitsPerSecond = static_cast<double>(s.unitsDone) /
        std::max(s.elapsedSeconds, 1e-9);
    s.etaSeconds = static_cast<double>(s.pendingUnits - s.unitsDone) /
        std::max(s.unitsPerSecond, 1e-9);
    s.workerUtilization = s.workers == 0
        ? 0.0
        : static_cast<double>(s.unitsInflight) /
            static_cast<double>(s.workers);
}

} // namespace

RunHealthReporter::RunHealthReporter(RunHealthConfig config)
    : config_(std::move(config)), start_(std::chrono::steady_clock::now()),
      lastPublish_(start_)
{
    busy_.reserve(config_.workers + 1);
    publish(/*force=*/true); // an empty-progress heartbeat at startup
}

RunHealthReporter::~RunHealthReporter() = default;

void
RunHealthReporter::unitStarted(const std::string &key)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        busy_.push_back(key);
    }
    publish(/*force=*/false);
}

void
RunHealthReporter::unitFinished(const std::string &key)
{
    std::size_t finished = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        finished = ++done_;
        const auto it = std::find(busy_.begin(), busy_.end(), key);
        if (it != busy_.end())
            busy_.erase(it);
    }

    // The two legacy per-unit surfaces, byte-identical to the inline
    // code they replaced.
    if (config_.journal) {
        config_.journal->appendComment(
            "heartbeat " + std::to_string(finished) + "/" +
            std::to_string(config_.pendingUnits) + " " + key);
    }
    if (config_.verbose) {
        // One preformatted string per line so concurrent progress
        // reports interleave whole, never mid-line.
        const double secs = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - start_)
                                .count();
        const double rate =
            static_cast<double>(finished) / std::max(secs, 1e-9);
        const double eta_s =
            static_cast<double>(config_.pendingUnits - finished) /
            std::max(rate, 1e-9);
        char suffix[96];
        std::snprintf(suffix, sizeof(suffix),
                      " done [%zu/%zu, %.1f u/s, eta %.0fs]\n", finished,
                      config_.pendingUnits, rate, eta_s);
        std::cerr << (key + suffix);
    }

    publish(/*force=*/finished == config_.pendingUnits);
}

void
RunHealthReporter::workerUpdated(const WorkerHealthRow &row)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = std::find_if(
            workerRows_.begin(), workerRows_.end(),
            [&](const WorkerHealthRow &r) { return r.id == row.id; });
        if (it == workerRows_.end())
            workerRows_.push_back(row);
        else
            *it = row;
    }
    publish(/*force=*/false);
}

void
RunHealthReporter::setCacheCounters(std::size_t units_cached,
                                    const UnitCacheCounters &counters)
{
    std::lock_guard<std::mutex> lock(mutex_);
    unitsCached_ = units_cached;
    cache_ = counters;
}

void
RunHealthReporter::finish()
{
    publish(/*force=*/true);
}

RunHealthSnapshot
RunHealthReporter::snapshot() const
{
    RunHealthSnapshot s;
    s.totalUnits = config_.totalUnits;
    s.pendingUnits = config_.pendingUnits;
    s.unitsResumed = config_.unitsResumed;
    s.workers = config_.workers;
    s.processMode = config_.processMode;
    s.cacheEnabled = config_.cacheEnabled;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        s.unitsDone = done_;
        s.busyKeys = busy_;
        s.workerRows = workerRows_;
        s.unitsCached = unitsCached_;
        s.cache = cache_;
        s.elapsedSeconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start_)
                               .count();
    }
    s.unitsInflight = s.busyKeys.size();
    deriveRates(s);
    return s;
}

std::string
RunHealthReporter::renderStatusJson(const RunHealthSnapshot &snap,
                                    const std::string &signature)
{
    using obs::jsonNumber;
    using obs::jsonString;
    std::string out = "{\"schema\":\"solarcore-campaign-status-v1\"";
    out += ",\"signature\":" + jsonString(signature);
    out += ",\"units_total\":" +
        jsonNumber(static_cast<std::uint64_t>(snap.totalUnits));
    out += ",\"units_pending\":" +
        jsonNumber(static_cast<std::uint64_t>(snap.pendingUnits));
    out += ",\"units_resumed\":" +
        jsonNumber(static_cast<std::uint64_t>(snap.unitsResumed));
    out += ",\"units_done\":" +
        jsonNumber(static_cast<std::uint64_t>(snap.unitsDone));
    out += ",\"units_inflight\":" +
        jsonNumber(static_cast<std::uint64_t>(snap.unitsInflight));
    out += ",\"queue_depth\":" +
        jsonNumber(static_cast<std::uint64_t>(snap.queueDepth));
    out += ",\"workers\":" +
        jsonNumber(static_cast<std::uint64_t>(snap.workers));
    out += ",\"elapsed_seconds\":" + jsonNumber(snap.elapsedSeconds);
    out += ",\"units_per_second\":" + jsonNumber(snap.unitsPerSecond);
    out += ",\"eta_seconds\":" + jsonNumber(snap.etaSeconds);
    out += ",\"worker_utilization\":" + jsonNumber(snap.workerUtilization);
    out += ",\"busy\":[";
    for (std::size_t i = 0; i < snap.busyKeys.size(); ++i) {
        if (i)
            out += ',';
        out += jsonString(snap.busyKeys[i]);
    }
    out += ']';
    out += ",\"process_mode\":";
    out += snap.processMode ? "true" : "false";
    if (snap.processMode) {
        out += ",\"worker_rows\":[";
        for (std::size_t i = 0; i < snap.workerRows.size(); ++i) {
            const WorkerHealthRow &r = snap.workerRows[i];
            if (i)
                out += ',';
            out += "{\"id\":" +
                jsonNumber(static_cast<std::int64_t>(r.id));
            out += ",\"pid\":" +
                jsonNumber(static_cast<std::int64_t>(r.pid));
            out += ",\"done\":" +
                jsonNumber(static_cast<std::uint64_t>(r.done));
            out += ",\"total\":" +
                jsonNumber(static_cast<std::uint64_t>(r.total));
            out += ",\"last_key\":" + jsonString(r.lastKey);
            out += ",\"alive\":";
            out += r.alive ? "true" : "false";
            out += ",\"crashed\":";
            out += r.crashed ? "true" : "false";
            out += '}';
        }
        out += ']';
    }
    if (snap.cacheEnabled) {
        out += ",\"unit_cache\":{\"units_cached\":" +
            jsonNumber(static_cast<std::uint64_t>(snap.unitsCached));
        out += ",\"hits\":" + jsonNumber(snap.cache.hits);
        out += ",\"misses\":" + jsonNumber(snap.cache.misses);
        out += ",\"stores\":" + jsonNumber(snap.cache.stores);
        out += ",\"evictions\":" + jsonNumber(snap.cache.evictions);
        out += '}';
    }
    out += "}\n";
    return out;
}

std::string
RunHealthReporter::renderMetrics(const RunHealthSnapshot &snap)
{
    obs::OpenMetricsWriter w;
    appendMetrics(w, snap);
    return w.finish();
}

void
RunHealthReporter::appendMetrics(obs::OpenMetricsWriter &w,
                                 const RunHealthSnapshot &snap)
{
    w.counter("solarcore_campaign_units_done",
              "work units completed this invocation",
              static_cast<double>(snap.unitsDone));
    w.gauge("solarcore_campaign_units_total",
            "expanded grid size [units]",
            static_cast<double>(snap.totalUnits));
    w.gauge("solarcore_campaign_units_pending",
            "units executing this invocation",
            static_cast<double>(snap.pendingUnits));
    w.gauge("solarcore_campaign_units_resumed",
            "units restored from the journal",
            static_cast<double>(snap.unitsResumed));
    w.gauge("solarcore_campaign_units_inflight",
            "units currently being simulated",
            static_cast<double>(snap.unitsInflight));
    w.gauge("solarcore_campaign_queue_depth",
            "units not yet started",
            static_cast<double>(snap.queueDepth));
    w.gauge("solarcore_campaign_workers", "thread-pool width",
            static_cast<double>(snap.workers));
    w.gauge("solarcore_campaign_elapsed_seconds",
            "wall time since the campaign started [s]",
            snap.elapsedSeconds);
    w.gauge("solarcore_campaign_units_per_second",
            "completion rate [units/s]", snap.unitsPerSecond);
    w.gauge("solarcore_campaign_eta_seconds",
            "estimated time to completion [s]", snap.etaSeconds);
    w.gauge("solarcore_campaign_worker_utilization",
            "in-flight units / workers", snap.workerUtilization);
    if (snap.processMode) {
        w.gauge("solarcore_campaign_worker_processes",
                "forked worker processes",
                static_cast<double>(snap.workerRows.size()));
        double crashed = 0.0;
        for (const WorkerHealthRow &r : snap.workerRows)
            crashed += r.crashed ? 1.0 : 0.0;
        w.counter("solarcore_campaign_worker_crashes",
                  "workers that died before completing their shard",
                  crashed);
        w.family("solarcore_campaign_worker_units_done", "gauge",
                 "unit results received per forked worker");
        for (const WorkerHealthRow &r : snap.workerRows)
            w.sample("", {{"worker", std::to_string(r.id)}},
                     static_cast<double>(r.done));
    }
    if (snap.cacheEnabled) {
        w.counter("solarcore_campaign_unit_cache_hits",
                  "persistent unit-cache lookup hits",
                  static_cast<double>(snap.cache.hits));
        w.counter("solarcore_campaign_unit_cache_misses",
                  "persistent unit-cache lookup misses",
                  static_cast<double>(snap.cache.misses));
        w.counter("solarcore_campaign_unit_cache_stores",
                  "persistent unit-cache entries written",
                  static_cast<double>(snap.cache.stores));
        w.counter("solarcore_campaign_unit_cache_evictions",
                  "persistent unit-cache LRU evictions",
                  static_cast<double>(snap.cache.evictions));
        w.gauge("solarcore_campaign_units_cached",
                "units served from the persistent cache this run",
                static_cast<double>(snap.unitsCached));
    }
}

void
RunHealthReporter::publish(bool force)
{
    if (config_.statusPath.empty() && config_.endpoint == nullptr &&
        config_.metricsPath.empty())
        return;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto now = std::chrono::steady_clock::now();
        const double since =
            std::chrono::duration<double>(now - lastPublish_).count();
        if (!force && published_ && since < config_.minPublishSeconds)
            return;
        lastPublish_ = now;
        published_ = true;
    }
    const RunHealthSnapshot snap = snapshot();
    if (!config_.statusPath.empty()) {
        const std::string tmp = config_.statusPath + ".tmp";
        {
            std::ofstream os(tmp, std::ios::trunc);
            if (!os) {
                SC_WARN_ONCE("run-health: cannot open '", tmp, "'");
                return;
            }
            os << renderStatusJson(snap, config_.signature);
        }
        if (std::rename(tmp.c_str(), config_.statusPath.c_str()) != 0)
            SC_WARN_ONCE("run-health: rename to '", config_.statusPath,
                         "' failed");
    }
    if (config_.endpoint != nullptr || !config_.metricsPath.empty()) {
        const std::string payload = renderMetrics(snap);
        if (config_.endpoint != nullptr)
            config_.endpoint->update(payload);
        if (!config_.metricsPath.empty()) {
            const std::string tmp = config_.metricsPath + ".tmp";
            {
                std::ofstream os(tmp, std::ios::trunc);
                if (!os) {
                    SC_WARN_ONCE("run-health: cannot open '", tmp, "'");
                    return;
                }
                os << payload;
            }
            if (std::rename(tmp.c_str(),
                            config_.metricsPath.c_str()) != 0)
                SC_WARN_ONCE("run-health: rename to '",
                             config_.metricsPath, "' failed");
        }
    }
}

} // namespace solarcore::campaign
