#include "golden.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "obs/json.hpp"

namespace solarcore::campaign {

namespace {

/** Recursive-descent JSON reader flattening leaves into dotted paths. */
class FlatParser
{
  public:
    FlatParser(std::string_view text, FlatJson &out)
        : text_(text), out_(&out)
    {}

    bool
    run(std::string &error)
    {
        skipSpace();
        if (!parseValue(""))
            return fail(error);
        skipSpace();
        if (pos_ != text_.size()) {
            error_ = "trailing content";
            return fail(error);
        }
        return true;
    }

  private:
    bool
    fail(std::string &error)
    {
        std::ostringstream os;
        os << (error_.empty() ? "malformed JSON" : error_)
           << " at offset " << pos_;
        error = os.str();
        return false;
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    static std::string
    joined(const std::string &path, const std::string &segment)
    {
        return path.empty() ? segment : path + "." + segment;
    }

    bool
    parseValue(const std::string &path)
    {
        skipSpace();
        if (pos_ >= text_.size()) {
            error_ = "unexpected end of input";
            return false;
        }
        const char c = text_[pos_];
        if (c == '{')
            return parseObject(path);
        if (c == '[')
            return parseArray(path);
        if (c == '"')
            return parseStringLeaf(path);
        if (c == 't' || c == 'f')
            return parseBool(path);
        if (c == 'n')
            return parseNull(path);
        return parseNumber(path);
    }

    bool
    parseObject(const std::string &path)
    {
        ++pos_; // '{'
        skipSpace();
        if (consume('}'))
            return true;
        for (;;) {
            skipSpace();
            std::string key;
            if (!parseString(key)) {
                error_ = "expected object key";
                return false;
            }
            skipSpace();
            if (!consume(':')) {
                error_ = "expected ':'";
                return false;
            }
            if (!parseValue(joined(path, key)))
                return false;
            skipSpace();
            if (consume(','))
                continue;
            if (consume('}'))
                return true;
            error_ = "expected ',' or '}'";
            return false;
        }
    }

    bool
    parseArray(const std::string &path)
    {
        ++pos_; // '['
        skipSpace();
        if (consume(']'))
            return true;
        for (std::size_t i = 0;; ++i) {
            if (!parseValue(joined(path, std::to_string(i))))
                return false;
            skipSpace();
            if (consume(','))
                continue;
            if (consume(']'))
                return true;
            error_ = "expected ',' or ']'";
            return false;
        }
    }

    bool
    parseString(std::string &out)
    {
        if (!consume('"'))
            return false;
        out.clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (pos_ >= text_.size())
                    break;
                const char esc = text_[pos_++];
                switch (esc) {
                  case '"':  out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/':  out += '/'; break;
                  case 'n':  out += '\n'; break;
                  case 'r':  out += '\r'; break;
                  case 't':  out += '\t'; break;
                  case 'b':  out += '\b'; break;
                  case 'f':  out += '\f'; break;
                  case 'u': {
                    // Keep it simple: decode Latin-1 range, pass the
                    // escape through verbatim otherwise.
                    if (pos_ + 4 > text_.size()) {
                        error_ = "truncated \\u escape";
                        return false;
                    }
                    const std::string hex(text_.substr(pos_, 4));
                    pos_ += 4;
                    const long code = std::strtol(hex.c_str(), nullptr, 16);
                    if (code >= 0 && code < 256)
                        out += static_cast<char>(code);
                    else
                        out += "\\u" + hex;
                    break;
                  }
                  default:
                    error_ = "bad escape";
                    return false;
                }
            } else {
                out += c;
            }
        }
        error_ = "unterminated string";
        return false;
    }

    bool
    parseStringLeaf(const std::string &path)
    {
        JsonLeaf leaf;
        leaf.kind = JsonLeaf::Kind::String;
        if (!parseString(leaf.text))
            return false;
        (*out_)[path] = std::move(leaf);
        return true;
    }

    bool
    parseBool(const std::string &path)
    {
        JsonLeaf leaf;
        leaf.kind = JsonLeaf::Kind::Bool;
        if (text_.substr(pos_, 4) == "true") {
            leaf.boolean = true;
            pos_ += 4;
        } else if (text_.substr(pos_, 5) == "false") {
            leaf.boolean = false;
            pos_ += 5;
        } else {
            error_ = "bad literal";
            return false;
        }
        (*out_)[path] = leaf;
        return true;
    }

    bool
    parseNull(const std::string &path)
    {
        if (text_.substr(pos_, 4) != "null") {
            error_ = "bad literal";
            return false;
        }
        pos_ += 4;
        (*out_)[path] = JsonLeaf{};
        return true;
    }

    bool
    parseNumber(const std::string &path)
    {
        const std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '-' || text_[pos_] == '+' ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E'))
            ++pos_;
        if (pos_ == start) {
            error_ = "expected a value";
            return false;
        }
        const std::string token(text_.substr(start, pos_ - start));
        try {
            std::size_t used = 0;
            JsonLeaf leaf;
            leaf.kind = JsonLeaf::Kind::Number;
            leaf.number = std::stod(token, &used);
            if (used != token.size()) {
                error_ = "bad number";
                return false;
            }
            (*out_)[path] = leaf;
            return true;
        } catch (...) {
            error_ = "bad number";
            return false;
        }
    }

    std::string_view text_;
    FlatJson *out_;
    std::size_t pos_ = 0;
    std::string error_;
};

} // namespace

std::string
JsonLeaf::describe() const
{
    switch (kind) {
      case Kind::Null:   return "null";
      case Kind::Bool:   return boolean ? "true" : "false";
      case Kind::Number: return obs::jsonNumber(number);
      case Kind::String: return "\"" + text + "\"";
    }
    return "?";
}

bool
parseJsonFlat(std::string_view text, FlatJson &out, std::string &error)
{
    out.clear();
    FlatParser parser(text, out);
    if (parser.run(error))
        return true;
    out.clear();
    return false;
}

Tolerance
ToleranceSpec::lookup(const std::string &path) const
{
    for (const auto &[pattern, tol] : overrides) {
        if (path.find(pattern) != std::string::npos)
            return tol;
    }
    return fallback;
}

bool
ToleranceSpec::isIgnored(const std::string &path) const
{
    for (const auto &pattern : ignored) {
        if (path.find(pattern) != std::string::npos)
            return true;
    }
    return false;
}

std::vector<GoldenDiff>
compareFlat(const FlatJson &golden, const FlatJson &candidate,
            const ToleranceSpec &tolerances)
{
    std::vector<GoldenDiff> diffs;
    for (const auto &[path, gold] : golden) {
        if (tolerances.isIgnored(path))
            continue;
        const auto it = candidate.find(path);
        if (it == candidate.end()) {
            diffs.push_back({GoldenDiff::Kind::MissingInCandidate, path,
                             gold.describe(), "", 0.0, 0.0});
            continue;
        }
        const JsonLeaf &cand = it->second;
        if (gold.kind != cand.kind) {
            diffs.push_back({GoldenDiff::Kind::Mismatch, path,
                             gold.describe(), cand.describe(), 0.0, 0.0});
            continue;
        }
        if (gold.kind == JsonLeaf::Kind::Number) {
            const double abs_err = std::abs(gold.number - cand.number);
            const double rel_err = gold.number != 0.0
                ? abs_err / std::abs(gold.number)
                : (cand.number != 0.0 ? 1.0 : 0.0);
            const Tolerance tol = tolerances.lookup(path);
            if (abs_err > tol.atol + tol.rtol * std::abs(gold.number)) {
                diffs.push_back({GoldenDiff::Kind::Mismatch, path,
                                 gold.describe(), cand.describe(),
                                 abs_err, rel_err});
            }
        } else if (gold.kind == JsonLeaf::Kind::Bool
                       ? gold.boolean != cand.boolean
                       : gold.text != cand.text) {
            diffs.push_back({GoldenDiff::Kind::Mismatch, path,
                             gold.describe(), cand.describe(), 0.0, 0.0});
        }
    }
    for (const auto &[path, cand] : candidate) {
        if (!tolerances.isIgnored(path) && !golden.count(path)) {
            diffs.push_back({GoldenDiff::Kind::ExtraInCandidate, path, "",
                             cand.describe(), 0.0, 0.0});
        }
    }
    return diffs;
}

} // namespace solarcore::campaign
