/**
 * @file
 * Persistent on-disk cache of golden-compared unit results.
 *
 * A scenario unit's metrics are a pure function of (unit axes, the
 * grid's shared simulation knobs, the resolved PV kernel, the audit
 * mode, the metric schema, the simulation code version). The cache
 * keys on exactly that closure -- deliberately NOT on the full grid
 * signature, which also names the axis *lists*: two overlapping grids
 * (say fig13 and a superset sweep) share every unit they have in
 * common, so a warm cache accelerates re-runs, --resume, and
 * overlapping grids alike.
 *
 * Layout: one small text file per entry under the cache directory,
 * named by the FNV-1a hash of the key material. The file stores the
 * key material in clear (a hash collision reads as a miss, never as a
 * wrong result) and the metrics with shortest-round-trip formatting,
 * so a cache hit reproduces the simulated bytes exactly. Eviction is
 * LRU by file mtime with a configurable entry cap; lookups touch the
 * file to refresh recency. Thread-safe; cross-process safety comes
 * from writes going through a rename (a torn entry is impossible,
 * concurrent writers of the same key store identical bytes).
 */

#ifndef SOLARCORE_CAMPAIGN_UNIT_CACHE_HPP
#define SOLARCORE_CAMPAIGN_UNIT_CACHE_HPP

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "campaign/scenario.hpp"
#include "campaign/unit_metrics.hpp"

namespace solarcore::campaign {

/**
 * Bumped when a change to the simulation (not the schema -- that is
 * hashed separately) alters unit results; stale entries then miss
 * instead of resurrecting old numbers.
 */
inline constexpr int kUnitCacheCodeVersion = 1;

/** Monotonic counters of one cache handle's activity. */
struct UnitCacheCounters
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t stores = 0;
    std::uint64_t evictions = 0;
};

/** On-disk LRU of per-unit metrics (see file header). */
class UnitResultCache
{
  public:
    /**
     * Open (creating @p dir if needed) with an LRU cap of
     * @p cap_entries files (0 = unlimited). @p salt folds run-level
     * knobs that live outside the grid into every key -- the campaign
     * passes the audit mode, which changes the auditViolations metric.
     */
    UnitResultCache(std::string dir, std::size_t cap_entries,
                    std::string salt);

    /** False when the directory could not be created/scanned. */
    bool ok() const { return ok_; }

    /** The clear-text key material of @p unit under @p grid. */
    std::string keyMaterial(const ScenarioGrid &grid,
                            const ScenarioUnit &unit) const;

    /** Hex FNV-1a of keyMaterial (the entry's file stem). */
    std::string keyHash(const ScenarioGrid &grid,
                        const ScenarioUnit &unit) const;

    /**
     * Look @p unit up; on a hit fills @p out, refreshes the entry's
     * recency and counts a hit, else counts a miss.
     */
    bool lookup(const ScenarioGrid &grid, const ScenarioUnit &unit,
                UnitMetrics &out);

    /** Store @p metrics for @p unit, evicting LRU entries past cap. */
    void store(const ScenarioGrid &grid, const ScenarioUnit &unit,
               const UnitMetrics &metrics);

    /** Entries currently indexed (post-eviction). */
    std::size_t size() const;

    UnitCacheCounters counters() const;

  private:
    std::string entryPath(const std::string &hash) const;
    void evictLocked();

    std::string dir_;
    std::size_t cap_;
    std::string salt_;
    bool ok_ = false;

    mutable std::mutex mutex_;
    UnitCacheCounters counters_;
    // Recency index: mtime-ordered multimap + per-entry reverse lookup.
    std::multimap<std::int64_t, std::string> byAge_;
    std::map<std::string, std::int64_t> entries_;
    std::int64_t clock_ = 0; //!< monotonic recency tiebreaker
};

} // namespace solarcore::campaign

#endif // SOLARCORE_CAMPAIGN_UNIT_CACHE_HPP
