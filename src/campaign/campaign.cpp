#include "campaign.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <memory>
#include <optional>
#include <ostream>

#include "campaign/journal.hpp"
#include "campaign/run_health.hpp"
#include "campaign/shard_exec.hpp"
#include "campaign/unit_cache.hpp"
#include "core/simulation.hpp"
#include "obs/auditor.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/json.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics_export.hpp"
#include "obs/profiler.hpp"
#include "obs/span.hpp"
#include "obs/stats_registry.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "pv/bp3180n.hpp"
#include "pv/mpp_cache.hpp"
#include "pv/pv_kernel.hpp"
#include "solar/trace.hpp"
#include "util/cpuid.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace solarcore::campaign {

namespace {

const MetricField (&kFields)[kNumMetricFields] = metricFields();

UnitMetrics
fromDayResult(const core::DayResult &day)
{
    UnitMetrics m;
    m.mppEnergyWh = day.mppEnergyWh;
    m.solarEnergyWh = day.solarEnergyWh;
    m.gridEnergyWh = day.gridEnergyWh;
    m.chipEnergyWh = day.chipEnergyWh;
    m.utilization = day.utilization;
    m.effectiveFraction = day.effectiveFraction;
    m.trackingError = day.avgTrackingError;
    m.solarInstructions = day.solarInstructions;
    m.totalInstructions = day.totalInstructions;
    m.retracks = day.retracks;
    m.transfers = day.transferCount;
    m.controllerSteps = static_cast<double>(day.controllerSteps);
    m.thermalThrottles = day.thermalThrottles;
    return m;
}

UnitMetrics
fromBatteryResult(const core::BatteryDayResult &day)
{
    // The battery baseline buffers everything: the chip runs the whole
    // window on stored solar energy, so the effective fraction is 1
    // and the direct-coupled tracking metrics do not apply.
    UnitMetrics m;
    m.mppEnergyWh = day.mppEnergyWh;
    m.solarEnergyWh = day.consumedWh;
    m.chipEnergyWh = day.consumedWh;
    m.utilization = day.utilization;
    m.effectiveFraction = 1.0;
    m.solarInstructions = day.instructions;
    m.totalInstructions = day.instructions;
    return m;
}

} // namespace

const MetricField (&metricFields())[kNumMetricFields]
{
    static constexpr MetricField fields[kNumMetricFields] = {
        {"mppEnergyWh", &UnitMetrics::mppEnergyWh},
        {"solarEnergyWh", &UnitMetrics::solarEnergyWh},
        {"gridEnergyWh", &UnitMetrics::gridEnergyWh},
        {"chipEnergyWh", &UnitMetrics::chipEnergyWh},
        {"utilization", &UnitMetrics::utilization},
        {"effectiveFraction", &UnitMetrics::effectiveFraction},
        {"trackingError", &UnitMetrics::trackingError},
        {"solarInstructions", &UnitMetrics::solarInstructions},
        {"totalInstructions", &UnitMetrics::totalInstructions},
        {"retracks", &UnitMetrics::retracks},
        {"transfers", &UnitMetrics::transfers},
        {"controllerSteps", &UnitMetrics::controllerSteps},
        {"thermalThrottles", &UnitMetrics::thermalThrottles},
        {"auditViolations", &UnitMetrics::auditViolations},
    };
    return fields;
}

UnitMetrics
runUnit(const ScenarioUnit &unit, const ScenarioGrid &grid,
        obs::StatsRegistry *stats, obs::TraceBuffer *trace,
        obs::TelemetryRecorder *telemetry, obs::Auditor *audit,
        core::SimWorkspace *workspace)
{
    static const pv::PvModule module = pv::buildBp3180n();
    const auto day_trace =
        solar::generateDayTrace(unit.site, unit.month, unit.seed);

    core::SimConfig cfg;
    cfg.dtSeconds = grid.dtSeconds;
    cfg.fixedBudgetW = grid.fixedBudgetW;
    cfg.trackingPeriodMinutes = grid.trackingPeriodMinutes;
    cfg.seed = unit.seed;
    cfg.stats = stats;
    cfg.trace = trace;
    cfg.telemetry = telemetry;
    cfg.audit = audit;
    cfg.workspace = workspace;

    UnitMetrics m;
    if (unit.policy == CampaignPolicy::Battery) {
        m = fromBatteryResult(core::simulateBatteryDay(
            module, day_trace, unit.workload, grid.batteryDerating, cfg));
    } else {
        cfg.policy = toSimPolicy(unit.policy);
        pv::MppCache mpp_cache(module, cfg.modulesSeries,
                               cfg.modulesParallel);
        cfg.mppCache = &mpp_cache;
        m = fromDayResult(
            core::simulateDay(module, day_trace, unit.workload, cfg));
    }
    if (audit) {
        m.auditViolations = static_cast<double>(audit->violationCount());
        if (stats)
            audit->foldInto(*stats);
    }
    return m;
}

CampaignOutcome
runCampaign(const ScenarioGrid &grid_in, const CampaignOptions &options)
{
    // Select the PV kernel for the whole campaign and bake the
    // *resolved* name into the grid signature: "auto" resolves
    // differently across machines, and a journal must never be resumed
    // under a different kernel than the one that produced it.
    ScenarioGrid grid = grid_in;
    pv::PvKernel kernel = pv::detectPvKernel();
    if (grid.pvKernel != "auto") {
        pv::PvKernel requested;
        if (!pv::pvKernelFromToken(grid.pvKernel, requested))
            SC_FATAL("campaign: unknown pv kernel '", grid.pvKernel, "'");
        if (!pv::pvKernelSupported(requested))
            SC_FATAL("campaign: pv kernel '", grid.pvKernel,
                     "' not supported on this cpu (simd level: ",
                     cpuSimdLevelName(), ")");
        kernel = requested;
    }
    pv::setPvKernel(kernel);
    grid.pvKernel = pv::pvKernelName(kernel);

    // Request spans: one trace covering grid expansion, journal
    // resume, the cache scan, the worker drain and every simulated
    // unit. Forked shard workers stitch in over 'T' pipe frames (one
    // CLOCK_MONOTONIC timebase across fork). Span collection never
    // touches unit results, merged stats, or the summary bytes.
    const bool want_spans =
        !options.spanOut.empty() || !options.spanPerfettoOut.empty();
    obs::SpanSink span_sink(1u << 16);
    obs::RequestTrace rtrace;
    std::size_t root_span = obs::RequestTrace::kNoSpan;
    std::uint64_t trace_id = 0;
    if (want_spans) {
        trace_id =
            options.traceId != 0 ? options.traceId : obs::newTraceId();
        rtrace.begin(trace_id);
        root_span = rtrace.openSpan("campaign");
    }
    const std::uint64_t root_id = rtrace.spanId(root_span);

    CampaignOutcome outcome;
    {
        obs::SpanScope expand_span(&rtrace, "expand", root_id);
        outcome.units = expandGrid(grid);
        expand_span.attr(
            "units", static_cast<std::int64_t>(outcome.units.size()));
    }
    const std::string signature = gridSignature(grid);
    const std::size_t n = outcome.units.size();
    outcome.results.resize(n);

    obs::RunManifest manifest("solarcore_campaign");

    // Resume: restore completed units from the journal, then execute
    // only the rest. The summary below is assembled from the full
    // index-ordered result vector, so a resumed run and an
    // uninterrupted one emit the same bytes.
    std::vector<char> done(n, 0);
    JournalRecovery recovery;
    if (options.resume && !options.journalPath.empty()) {
        obs::SpanScope resume_span(&rtrace, "resume", root_id);
        recovery = loadJournal(options.journalPath, signature);
        for (const auto &[index, metrics] : recovery.completed) {
            if (index >= 0 && static_cast<std::size_t>(index) < n &&
                !done[static_cast<std::size_t>(index)]) {
                outcome.results[static_cast<std::size_t>(index)] = metrics;
                done[static_cast<std::size_t>(index)] = 1;
                ++outcome.unitsResumed;
            }
        }
        resume_span.attr("restored",
                         static_cast<std::int64_t>(outcome.unitsResumed));
    }
    // Persistent unit cache: completed units are served from disk
    // before any scheduling. The audit mode salts every key because it
    // changes the auditViolations metric.
    std::optional<UnitResultCache> cache;
    std::vector<std::size_t> cached_indices;
    if (!options.unitCacheDir.empty()) {
        const char *salt = options.obs.audit == obs::AuditMode::Off
            ? "audit=off"
            : options.obs.audit == obs::AuditMode::Count ? "audit=count"
                                                         : "audit=strict";
        cache.emplace(options.unitCacheDir, options.unitCacheCap, salt);
        if (!cache->ok()) {
            cache.reset();
        } else {
            obs::SpanScope scan_span(&rtrace, "cache.scan", root_id);
            for (std::size_t i = 0; i < n; ++i) {
                if (done[i])
                    continue;
                UnitMetrics m;
                if (cache->lookup(grid, outcome.units[i], m)) {
                    outcome.results[i] = m;
                    done[i] = 1;
                    cached_indices.push_back(i);
                }
            }
            outcome.unitsCached = static_cast<int>(cached_indices.size());
            scan_span.attr("hits", static_cast<std::int64_t>(
                                       cached_indices.size()));
        }
    }

    std::vector<std::size_t> pending;
    pending.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        if (!done[i])
            pending.push_back(i);

    std::optional<JournalWriter> journal;
    if (!options.journalPath.empty())
        journal.emplace(options.journalPath, signature,
                        /*fresh=*/!recovery.headerValid);
    // Cache hits are journaled like simulated units, so a later
    // --resume reproduces them even without the cache directory.
    if (journal)
        for (const std::size_t i : cached_indices)
            journal->append(static_cast<int>(i), outcome.results[i]);

    const bool want_stats = options.obs.statsRequested();
    const bool want_trace = options.obs.traceRequested();
    const bool want_telem = options.obs.telemetryRequested();
    const bool want_profile = options.obs.profileRequested();
    const bool want_audit = options.obs.auditRequested();
    obs::AuditorConfig audit_cfg;
    if (options.obs.audit != obs::AuditMode::Off)
        audit_cfg.mode = options.obs.audit;

    // Heavy per-unit sinks stream objects (trace buffers, telemetry
    // rows, profiler trees, audit violation records) that do not cross
    // the worker pipe; they force the in-process path. Plain
    // --audit=count still works under workers: the violation count
    // rides in the unit metrics and audit.* counters in the stats wire.
    const bool heavy = want_trace || want_telem || want_profile ||
        !options.obs.auditOut.empty();
    bool use_workers = options.workers > 1 && !pending.empty();
    if (use_workers && heavy) {
        SC_WARN("campaign: --workers needs per-process sinks "
                "(trace/telemetry/profile/audit-out); running in-process");
        use_workers = false;
    }
    if (use_workers && !processShardingSupported()) {
        SC_WARN("campaign: process sharding unsupported on this "
                "platform; running in-process");
        use_workers = false;
    }

    // Fork the worker shards strictly before the first thread exists
    // in this process (thread pool, metrics endpoint): fork() in a
    // threaded process is where the dragons live.
    // The shard.drain span opens at fork time (workers start living
    // here, not at drain()) and its id parents the worker shard
    // spans; spanParentId != 0 is what switches on their 'T' frames.
    std::unique_ptr<ProcessShardRun> shard;
    std::size_t drain_span = obs::RequestTrace::kNoSpan;
    if (use_workers) {
        drain_span = rtrace.openSpan("shard.drain", root_id);
        CampaignOptions worker_opts = options;
        if (want_spans) {
            worker_opts.traceId = trace_id;
            worker_opts.spanParentId = rtrace.spanId(drain_span);
        }
        shard = std::make_unique<ProcessShardRun>(
            grid, worker_opts, outcome.units, pending, options.workers);
    }

    // Run-health surfaces. Legacy per-unit heartbeats (journal
    // comments, --verbose stderr) and the new status.json / OpenMetrics
    // publications all render from one RunHealthReporter snapshot, so
    // every surface agrees on done/inflight/rate. Heartbeats never
    // touch the summary, which stays byte-identical at any thread
    // count; with no progress surface requested the reporter is not
    // even constructed.
    ThreadPool pool(options.threads);
    const bool want_metrics = options.obs.metricsRequested();
    obs::MetricsEndpoint endpoint;
    if (options.obs.metricsPort >= 0 &&
        endpoint.start(options.obs.metricsPort)) {
        // Announce the bound port (--metrics-port=0 is ephemeral) so
        // scrapers can find it.
        std::cerr << "campaign: serving metrics on 127.0.0.1:"
                  << endpoint.port() << "\n";
    }
    std::optional<RunHealthReporter> health;
    if (journal || options.verbose || want_metrics ||
        !options.statusPath.empty()) {
        RunHealthConfig health_cfg;
        health_cfg.totalUnits = n;
        health_cfg.pendingUnits = pending.size();
        health_cfg.unitsResumed =
            static_cast<std::size_t>(outcome.unitsResumed);
        health_cfg.workers =
            use_workers ? shard->workerCount() : pool.threadCount();
        health_cfg.processMode = use_workers;
        health_cfg.cacheEnabled = cache.has_value();
        health_cfg.signature = signature;
        health_cfg.statusPath = options.statusPath;
        health_cfg.metricsPath = options.obs.metricsOut;
        health_cfg.verbose = options.verbose;
        health_cfg.journal = journal ? &*journal : nullptr;
        health_cfg.endpoint =
            options.obs.metricsPort >= 0 ? &endpoint : nullptr;
        health.emplace(std::move(health_cfg));
        if (cache)
            health->setCacheCounters(cached_indices.size(),
                                     cache->counters());
    }
    if (options.obs.postmortemRequested()) {
        obs::FlightRecorderConfig fr_cfg;
        fr_cfg.outputPath = options.obs.postmortemOut;
        obs::FlightRecorder::install(fr_cfg);
    }

    obs::StatsRegistry merged_stats;

    // Once a unit's result has been journaled/cached/counted it must
    // not be acted on again -- a crashed worker's shard is re-run in
    // full when stats are on (the re-run regenerates the lost stats
    // contributions), and those units' identical results would
    // otherwise double-publish.
    std::vector<char> reported(n, 0);

    // Drain the worker pipes first; whatever they did not finish
    // (fork failure, crash re-queue) falls through to the in-process
    // path below.
    std::vector<std::size_t> inproc;
    if (use_workers) {
        shard->drain(
            [&](std::size_t i, const UnitMetrics &m) {
                if (reported[i])
                    return;
                reported[i] = 1;
                outcome.results[i] = m;
                const std::string key = unitKey(outcome.units[i]);
                if (health)
                    health->unitStarted(key);
                if (journal)
                    journal->append(static_cast<int>(i), m);
                if (cache)
                    cache->store(grid, outcome.units[i], m);
                if (health) {
                    if (cache)
                        health->setCacheCounters(cached_indices.size(),
                                                 cache->counters());
                    health->unitFinished(key);
                }
            },
            [&](const ShardWorkerState &w) {
                if (!health)
                    return;
                WorkerHealthRow row;
                row.id = w.id;
                row.pid = w.pid;
                row.done = w.received;
                row.total = w.shardEnd - w.shardBegin;
                row.lastKey = w.lastKey;
                row.alive = w.alive;
                row.crashed = w.crashed;
                health->workerUpdated(row);
            });
        if (obs::SpanRecord *s = rtrace.span(drain_span)) {
            s->attr("workers",
                    static_cast<std::int64_t>(shard->workerCount()));
            s->attr("crashes",
                    static_cast<std::int64_t>(shard->crashes()));
        }
        rtrace.closeSpan(drain_span);
        if (!shard->spans().empty())
            span_sink.commit(shard->spans().data(),
                             shard->spans().size());
        outcome.workerCrashes = static_cast<int>(shard->crashes());
        inproc = shard->unfinished();
        if (want_stats) {
            // Worker registries come first (worker-id order), then the
            // in-process leftovers below in task order.
            merged_stats.merge(shard->stats());
            if (!shard->statsValid())
                SC_WARN("campaign: some worker stats were lost; the "
                        "stats dump may be incomplete (unit results and "
                        "the summary are unaffected)");
        }
    } else {
        inproc = pending;
    }

    // Phase span over the in-process leftovers. The per-unit records
    // are built flat and committed straight into the thread-safe sink:
    // RequestTrace is single-threaded by design and stays on this
    // thread.
    const std::size_t inproc_span = inproc.empty()
        ? obs::RequestTrace::kNoSpan
        : rtrace.openSpan("inproc", root_id);
    const std::uint64_t inproc_id = rtrace.spanId(inproc_span);

    std::vector<std::unique_ptr<obs::StatsRegistry>> regs(inproc.size());
    std::vector<std::unique_ptr<obs::TraceBuffer>> tbufs(inproc.size());
    std::vector<std::unique_ptr<obs::TelemetryRecorder>> telems(
        inproc.size());
    std::vector<std::unique_ptr<obs::Profiler>> profs(inproc.size());
    std::vector<std::unique_ptr<obs::Auditor>> audits(inproc.size());

    pool.parallelFor(inproc.size(), [&](std::size_t t) {
        const std::size_t i = inproc[t];
        const std::string key = unitKey(outcome.units[i]);
        const bool fresh = !reported[i];
        if (want_stats)
            regs[t] = std::make_unique<obs::StatsRegistry>();
        if (want_trace)
            tbufs[t] = std::make_unique<obs::TraceBuffer>(
                options.obs.traceBufferCap);
        if (want_telem)
            telems[t] = std::make_unique<obs::TelemetryRecorder>(
                options.obs.telemetryEvery, options.obs.telemetryMode);
        if (want_profile)
            profs[t] = std::make_unique<obs::Profiler>();
        if (want_audit)
            audits[t] = std::make_unique<obs::Auditor>(audit_cfg);
        if (health && fresh)
            health->unitStarted(key);
        const std::int64_t unit_t0 = want_spans ? obs::spanNowNs() : 0;
        obs::FlightRecorder::beginUnit(key.c_str(), tbufs[t].get());
        {
            std::optional<obs::Profiler::Attach> attach;
            if (profs[t])
                attach.emplace(profs[t].get());
            SC_PROFILE_SCOPE("campaign.unit");
            // One workspace per pool thread: per-day step buffers keep
            // their capacity across every unit this thread simulates.
            static thread_local core::SimWorkspace workspace;
            outcome.results[i] =
                runUnit(outcome.units[i], grid, regs[t].get(),
                        tbufs[t].get(), telems[t].get(), audits[t].get(),
                        &workspace);
        }
        obs::FlightRecorder::endUnit();
        if (want_spans) {
            // Salt 1 separates a parent-side re-run (crashed worker)
            // from the worker's own salt-0 span for the same unit.
            obs::SpanRecord rec;
            rec.traceId = trace_id;
            rec.spanId = campaignUnitSpanId(trace_id, i, /*salt=*/1);
            rec.parentId = inproc_id;
            rec.startNs = unit_t0;
            rec.endNs = obs::spanNowNs();
            rec.setName("unit");
            rec.attr("unit", static_cast<std::int64_t>(i));
            rec.attr("key", std::string_view(key));
            span_sink.commit(&rec, 1);
        }
        if (fresh) {
            reported[i] = 1;
            if (journal)
                journal->append(static_cast<int>(i), outcome.results[i]);
            if (cache)
                cache->store(grid, outcome.units[i], outcome.results[i]);
            if (health) {
                if (cache)
                    health->setCacheCounters(cached_indices.size(),
                                             cache->counters());
                health->unitFinished(key);
            }
        }
    });
    if (inproc_span != obs::RequestTrace::kNoSpan) {
        if (obs::SpanRecord *s = rtrace.span(inproc_span))
            s->attr("units", static_cast<std::int64_t>(inproc.size()));
        rtrace.closeSpan(inproc_span);
    }
    outcome.unitsRun = static_cast<int>(pending.size());
    if (health) {
        if (cache)
            health->setCacheCounters(cached_indices.size(),
                                     cache->counters());
        health->finish();
    }

    if (want_stats) {
        for (const auto &reg : regs)
            if (reg)
                merged_stats.merge(*reg);
        if (cache) {
            const UnitCacheCounters c = cache->counters();
            merged_stats.scalar("campaign.unitCache.hits",
                                "persistent unit-cache lookup hits") +=
                static_cast<double>(c.hits);
            merged_stats.scalar("campaign.unitCache.misses",
                                "persistent unit-cache lookup misses") +=
                static_cast<double>(c.misses);
            merged_stats.scalar("campaign.unitCache.stores",
                                "persistent unit-cache entries written") +=
                static_cast<double>(c.stores);
            merged_stats.scalar("campaign.unitCache.evictions",
                                "persistent unit-cache LRU evictions") +=
                static_cast<double>(c.evictions);
        }
        options.obs.writeStats(merged_stats);
    }

    // Final scrape payload: campaign progress plus the merged stats
    // registry (when collected), pushed to the endpoint and snapshotted
    // to --metrics-out so post-run scrapes see the completed picture.
    if (health && want_metrics) {
        obs::OpenMetricsWriter w;
        RunHealthReporter::appendMetrics(w, health->snapshot());
        if (want_stats)
            obs::appendRegistry(w, merged_stats);
        endpoint.update(w.finish());
        if (!options.obs.metricsOut.empty())
            endpoint.writeSnapshot(options.obs.metricsOut);
    }

    if (options.obs.anyRequested()) {
        if (want_trace) {
            std::vector<const obs::TraceBuffer *> raw;
            std::vector<std::string> names;
            raw.reserve(tbufs.size());
            for (std::size_t t = 0; t < tbufs.size(); ++t) {
                if (tbufs[t]) {
                    raw.push_back(tbufs[t].get());
                    names.push_back(unitKey(outcome.units[inproc[t]]));
                }
            }
            options.obs.writeTrace(obs::mergeBuffers(raw), names);
        }
        obs::Profiler merged_prof;
        obs::Auditor merged_audit(audit_cfg);
        if (want_profile) {
            for (const auto &prof : profs)
                if (prof)
                    merged_prof.merge(*prof);
            options.obs.writeProfile(merged_prof);
        }
        if (want_audit) {
            for (const auto &audit : audits)
                if (audit)
                    merged_audit.merge(*audit);
            options.obs.writeAudit(merged_audit);
        }
        if (want_telem) {
            // Index the concat vector by grid unit, not by task, so
            // the CSV "unit" column names the unit even on resumed
            // campaigns (restored units contribute no rows).
            std::vector<obs::TelemetryRecorder *> by_unit(n, nullptr);
            for (std::size_t t = 0; t < inproc.size(); ++t)
                by_unit[inproc[t]] = telems[t].get();
            options.obs.writeTelemetryConcat(by_unit);
            std::uint64_t rows = 0;
            for (const auto &telem : telems)
                if (telem)
                    rows += telem->rowCount();
            manifest.set("telemetry_out", options.obs.telemetryOut);
            manifest.set("telemetry_rows", rows);
        }
        // In worker mode the per-task auditors above only saw the
        // in-process leftovers; the true totals live in the unit
        // metrics (violations) and the stats wire (steps audited).
        options.obs.recordSidecars(
            manifest, nullptr, want_profile ? &merged_prof : nullptr,
            want_audit && !use_workers ? &merged_audit : nullptr);
        if (want_audit && use_workers) {
            double violations = 0.0;
            for (const std::size_t i : pending)
                violations += outcome.results[i].auditViolations;
            manifest.set("audit_violations",
                         static_cast<std::uint64_t>(violations));
            if (want_stats)
                manifest.set(
                    "audit_steps",
                    static_cast<std::uint64_t>(
                        merged_stats.value("audit.stepsAudited")));
        }
        manifest.set("grid", signature);
        manifest.set("pv_kernel", pv::pvKernelName(pv::selectedPvKernel()));
        manifest.set("simd_level", cpuSimdLevelName());
        manifest.set("threads",
                     static_cast<std::uint64_t>(pool.threadCount()));
        manifest.set("worker_processes",
                     static_cast<std::uint64_t>(
                         use_workers ? shard->workerCount() : 0));
        manifest.set("units", static_cast<std::uint64_t>(n));
        manifest.set("units_resumed",
                     static_cast<std::uint64_t>(outcome.unitsResumed));
        manifest.set("units_run",
                     static_cast<std::uint64_t>(outcome.unitsRun));
        manifest.set("units_cached",
                     static_cast<std::uint64_t>(outcome.unitsCached));
        manifest.set("worker_crashes",
                     static_cast<std::uint64_t>(outcome.workerCrashes));
        if (cache)
            manifest.set("unit_cache_dir", options.unitCacheDir);
        if (!options.journalPath.empty())
            manifest.set("journal", options.journalPath);
        options.obs.writeManifest(manifest);
    }

    if (want_spans) {
        if (obs::SpanRecord *root = rtrace.span(root_span)) {
            root->attr("units", static_cast<std::int64_t>(n));
            root->attr("workers",
                       static_cast<std::int64_t>(
                           use_workers ? shard->workerCount() : 0));
            root->attr("kernel", std::string_view(grid.pvKernel));
        }
        rtrace.closeSpan(root_span);
        span_sink.commit(rtrace);
        std::string span_error;
        if (!obs::writeSpanExports(span_sink.snapshot(), options.spanOut,
                                   options.spanPerfettoOut, span_error))
            SC_WARN("campaign: span export failed: ", span_error);
        else
            std::cerr << "campaign: trace " << obs::spanIdHex(trace_id)
                      << " (" << span_sink.counters().committedSpans
                      << " spans)\n";
    }
    return outcome;
}

void
writeSummaryJson(std::ostream &os, const ScenarioGrid &grid,
                 const CampaignOutcome &outcome)
{
    using obs::jsonNumber;
    using obs::jsonString;

    auto list = [](auto &&values, auto &&name) {
        std::string s;
        for (const auto v : values) {
            if (!s.empty())
                s += ',';
            s += name(v);
        }
        return s;
    };

    os << "{\n";
    os << "  \"schema\": \"solarcore-campaign-summary-v1\",\n";
    os << "  \"grid\": {\n";
    os << "    \"sites\": " << jsonString(list(grid.sites, solar::siteName))
       << ",\n";
    os << "    \"months\": "
       << jsonString(list(grid.months, solar::monthName)) << ",\n";
    os << "    \"policies\": "
       << jsonString(list(grid.policies, campaignPolicyToken)) << ",\n";
    os << "    \"workloads\": "
       << jsonString(list(grid.workloads, workload::workloadName))
       << ",\n";
    os << "    \"seeds\": "
       << jsonString(list(grid.seeds,
                          [](std::uint64_t s) { return std::to_string(s); }))
       << ",\n";
    os << "    \"dt_seconds\": " << jsonNumber(grid.dtSeconds) << ",\n";
    os << "    \"fixed_budget_w\": " << jsonNumber(grid.fixedBudgetW)
       << ",\n";
    os << "    \"battery_derating\": " << jsonNumber(grid.batteryDerating)
       << ",\n";
    os << "    \"tracking_period_minutes\": "
       << jsonNumber(grid.trackingPeriodMinutes) << "\n";
    os << "  },\n";

    os << "  \"units\": [\n";
    for (std::size_t i = 0; i < outcome.units.size(); ++i) {
        const auto &unit = outcome.units[i];
        const auto &m = outcome.results[i];
        os << "    {\"key\": " << jsonString(unitKey(unit))
           << ", \"site\": " << jsonString(solar::siteName(unit.site))
           << ", \"month\": " << jsonString(solar::monthName(unit.month))
           << ", \"policy\": "
           << jsonString(campaignPolicyToken(unit.policy))
           << ", \"workload\": "
           << jsonString(workload::workloadName(unit.workload))
           << ", \"seed\": " << jsonNumber(unit.seed);
        for (const auto &field : kFields)
            os << ", \"" << field.name
               << "\": " << jsonNumber(m.*(field.member));
        os << '}' << (i + 1 < outcome.units.size() ? "," : "") << '\n';
    }
    os << "  ],\n";

    // Aggregates: energies/instructions/counters sum; the ratio-like
    // metrics are reported as unweighted means across units.
    UnitMetrics sum;
    for (const auto &m : outcome.results)
        for (const auto &field : kFields)
            sum.*(field.member) += m.*(field.member);
    const double n = outcome.results.empty()
        ? 1.0
        : static_cast<double>(outcome.results.size());
    os << "  \"aggregate\": {\n";
    os << "    \"units\": "
       << jsonNumber(static_cast<std::uint64_t>(outcome.results.size()))
       << ",\n";
    for (const auto &field : kFields) {
        const bool ratio = std::string_view(field.name) == "utilization" ||
            std::string_view(field.name) == "effectiveFraction" ||
            std::string_view(field.name) == "trackingError";
        if (ratio)
            os << "    \"mean_" << field.name
               << "\": " << jsonNumber(sum.*(field.member) / n) << ",\n";
        else
            os << "    \"" << field.name
               << "\": " << jsonNumber(sum.*(field.member)) << ",\n";
    }
    os << "    \"solar_ptp_share\": "
       << jsonNumber(sum.totalInstructions > 0.0
                         ? sum.solarInstructions / sum.totalInstructions
                         : 0.0)
       << "\n";
    os << "  }\n";
    os << "}\n";
}

} // namespace solarcore::campaign
