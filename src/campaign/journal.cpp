#include "journal.hpp"

#include <sstream>

#include "obs/json.hpp"
#include "util/hash.hpp"
#include "util/logging.hpp"

namespace solarcore::campaign {

namespace {

const MetricField (&kFields)[kNumMetricFields] = metricFields();

constexpr const char *kMagic = "# solarcore-campaign-journal";

std::string
headerLine(const std::string &grid_signature)
{
    return std::string(kMagic) + " " + journalHash(grid_signature);
}

} // namespace

std::string
journalHash(const std::string &grid_signature)
{
    // FNV-1a over the signature plus the metric schema, so a metric
    // added or renamed invalidates old journals too.
    std::uint64_t h = util::fnv1a(grid_signature);
    for (const auto &field : kFields) {
        h = util::fnv1a(field.name, h);
        h = util::fnv1aByte(h, ';');
    }
    char buf[17];
    const auto r = std::to_chars(buf, buf + sizeof(buf), h, 16);
    return std::string(buf, r.ptr);
}

JournalRecovery
loadJournal(const std::string &path, const std::string &grid_signature)
{
    JournalRecovery rec;
    std::ifstream in(path);
    if (!in)
        return rec;

    std::string line;
    if (!std::getline(in, line) || line != headerLine(grid_signature))
        return rec;
    rec.headerValid = true;

    while (std::getline(in, line)) {
        if (!line.empty() && line[0] == '#')
            continue; // comment/heartbeat line
        std::istringstream ls(line);
        int index = -1;
        UnitMetrics m;
        bool good = static_cast<bool>(ls >> index) && index >= 0;
        for (const auto &field : kFields) {
            if (!good)
                break;
            good = static_cast<bool>(ls >> m.*(field.member));
        }
        std::string extra;
        if (good && !(ls >> extra))
            rec.completed[index] = m;
        else
            ++rec.linesDropped;
    }
    return rec;
}

JournalWriter::JournalWriter(const std::string &path,
                             const std::string &grid_signature, bool fresh)
{
    // A crash can leave the file without a trailing newline (a torn
    // final record). Appending right after it would glue the next
    // record onto the fragment, losing both; terminate it first.
    bool needs_newline = false;
    if (!fresh) {
        std::ifstream in(path, std::ios::binary);
        if (in) {
            in.seekg(0, std::ios::end);
            const auto size = in.tellg();
            if (size > 0) {
                in.seekg(-1, std::ios::end);
                needs_newline = in.get() != '\n';
            }
        }
    }
    out_.open(path, fresh ? std::ios::trunc : std::ios::app);
    if (!out_) {
        SC_WARN("campaign: cannot open journal '", path, "'");
        return;
    }
    if (fresh)
        out_ << headerLine(grid_signature) << '\n' << std::flush;
    else if (needs_newline)
        out_ << '\n' << std::flush;
    ok_ = true;
}

void
JournalWriter::append(int index, const UnitMetrics &metrics)
{
    if (!ok_)
        return;
    // Shortest-round-trip formatting: the reload parses back the exact
    // double, keeping resumed summaries byte-identical.
    std::string line = std::to_string(index);
    for (const auto &field : kFields) {
        line += ' ';
        line += obs::jsonNumber(metrics.*(field.member));
    }
    line += '\n';
    std::lock_guard<std::mutex> lock(mutex_);
    out_ << line << std::flush;
}

void
JournalWriter::appendComment(const std::string &text)
{
    if (!ok_)
        return;
    const std::string line = "# " + text + '\n';
    std::lock_guard<std::mutex> lock(mutex_);
    out_ << line << std::flush;
}

} // namespace solarcore::campaign
