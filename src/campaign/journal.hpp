/**
 * @file
 * Campaign progress journal: an append-only text file recording one
 * line per completed work unit, so an interrupted campaign can resume
 * at the first incomplete unit instead of recomputing the whole grid.
 *
 * Format (whitespace-separated):
 *
 *   # solarcore-campaign-journal <signature-hash>
 *   <unit-index> <metric-0> <metric-1> ... <metric-N-1>
 *
 * Metric values are written with shortest-round-trip formatting, so a
 * reloaded metric is bit-identical to the recorded one and a resumed
 * campaign's summary matches an uninterrupted run byte for byte. The
 * header carries a hash of the grid signature; a journal written for a
 * different grid (or metric schema) is rejected on load. Lines are
 * flushed per unit; a torn final line (the process died mid-write) is
 * ignored on reload.
 */

#ifndef SOLARCORE_CAMPAIGN_JOURNAL_HPP
#define SOLARCORE_CAMPAIGN_JOURNAL_HPP

#include <cstdint>
#include <fstream>
#include <map>
#include <mutex>
#include <string>

#include "campaign/unit_metrics.hpp"

namespace solarcore::campaign {

/** FNV-1a hash of the grid signature + metric schema, as hex. */
std::string journalHash(const std::string &grid_signature);

/** Completed units recovered from a journal file. */
struct JournalRecovery
{
    std::map<int, UnitMetrics> completed; //!< by unit index
    bool headerValid = false; //!< file existed with a matching header
    int linesDropped = 0;     //!< torn/malformed lines ignored
};

/**
 * Load @p path, accepting only entries written for @p grid_signature.
 * A missing file or a header mismatch yields an empty recovery with
 * headerValid=false (the caller starts fresh).
 */
JournalRecovery loadJournal(const std::string &path,
                            const std::string &grid_signature);

/** Append-only writer; thread-safe, one line per completed unit. */
class JournalWriter
{
  public:
    /**
     * Open @p path for appending. When @p fresh, the file is truncated
     * and a new header written; otherwise entries are appended after
     * the existing, already-validated content.
     */
    JournalWriter(const std::string &path,
                  const std::string &grid_signature, bool fresh);

    bool ok() const { return ok_; }

    /** Record one completed unit (locked, flushed). */
    void append(int index, const UnitMetrics &metrics);

    /**
     * Append a comment line ("# <text>"; progress heartbeats). Loaders
     * skip comments, so heartbeats never perturb resume or count as
     * dropped lines.
     */
    void appendComment(const std::string &text);

  private:
    std::mutex mutex_;
    std::ofstream out_;
    bool ok_ = false;
};

} // namespace solarcore::campaign

#endif // SOLARCORE_CAMPAIGN_JOURNAL_HPP
