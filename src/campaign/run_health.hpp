/**
 * @file
 * Campaign run-health reporting: one snapshot source feeding every
 * progress surface.
 *
 * runCampaign() used to hand-roll its progress outputs inline (a
 * journal heartbeat comment and a --verbose stderr ETA line per
 * completed unit). The RunHealthReporter centralizes that state --
 * done counter, in-flight unit keys, monotonic wall clock -- and fans
 * one consistent snapshot out to four surfaces:
 *
 *   - the journal heartbeat comment   (byte-identical legacy format)
 *   - the --verbose stderr line       (byte-identical legacy format)
 *   - a versioned status.json         (--status-out, atomic rename)
 *   - the OpenMetrics endpoint        (--metrics-port/--metrics-out)
 *
 * The legacy per-unit surfaces fire on every completion exactly as
 * before; the new file/endpoint publications are throttled on the
 * monotonic clock (default 4 Hz) so a million-unit campaign does not
 * spend its time rewriting status.json. All surfaces are off by
 * default and the reporter is never constructed unless one of them is
 * requested, keeping the disabled-path cost at zero.
 */

#ifndef SOLARCORE_CAMPAIGN_RUN_HEALTH_HPP
#define SOLARCORE_CAMPAIGN_RUN_HEALTH_HPP

#include <chrono>
#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

#include "campaign/unit_cache.hpp"

namespace solarcore::obs {
class MetricsEndpoint;
class OpenMetricsWriter;
}

namespace solarcore::campaign {

class JournalWriter;

/** One forked worker's progress, as shown on the health surfaces. */
struct WorkerHealthRow
{
    int id = -1;
    long pid = -1;
    std::size_t done = 0;  //!< unit results received from this worker
    std::size_t total = 0; //!< its shard size
    std::string lastKey;   //!< most recent unit key it completed
    bool alive = true;
    bool crashed = false;
};

/** What the reporter publishes and where. */
struct RunHealthConfig
{
    std::size_t totalUnits = 0;   //!< expanded grid size
    std::size_t pendingUnits = 0; //!< units executing this invocation
    std::size_t unitsResumed = 0; //!< restored from the journal
    std::size_t workers = 0;      //!< thread-pool width (or process
                                  //!< count in --workers mode)
    bool processMode = false;     //!< forked-worker execution
    bool cacheEnabled = false;    //!< --unit-cache in effect
    std::string signature;        //!< grid signature string
    std::string statusPath;       //!< status.json path; empty disables
    std::string metricsPath;      //!< OpenMetrics snapshot file path
    bool verbose = false;         //!< legacy stderr progress lines
    JournalWriter *journal = nullptr;       //!< heartbeat comments
    obs::MetricsEndpoint *endpoint = nullptr; //!< scrape payloads
    double minPublishSeconds = 0.25;        //!< file/endpoint throttle
};

/** One coherent view of campaign progress. */
struct RunHealthSnapshot
{
    std::size_t totalUnits = 0;
    std::size_t pendingUnits = 0;
    std::size_t unitsResumed = 0;
    std::size_t unitsDone = 0;
    std::size_t unitsInflight = 0;
    std::size_t queueDepth = 0; //!< not yet started
    std::size_t workers = 0;
    double elapsedSeconds = 0.0;
    double unitsPerSecond = 0.0;
    double etaSeconds = 0.0;
    double workerUtilization = 0.0; //!< inflight / workers
    std::vector<std::string> busyKeys; //!< in-flight unit keys
    bool processMode = false;          //!< forked-worker execution
    std::vector<WorkerHealthRow> workerRows; //!< per forked worker
    bool cacheEnabled = false;     //!< --unit-cache in effect
    std::size_t unitsCached = 0;   //!< served from the unit cache
    UnitCacheCounters cache;       //!< this run's cache activity
};

/** Thread-safe progress aggregator + publisher (see file header). */
class RunHealthReporter
{
  public:
    explicit RunHealthReporter(RunHealthConfig config);
    ~RunHealthReporter();

    RunHealthReporter(const RunHealthReporter &) = delete;
    RunHealthReporter &operator=(const RunHealthReporter &) = delete;

    /** A worker picked up the unit named @p key. */
    void unitStarted(const std::string &key);

    /**
     * A worker finished the unit named @p key: emits the legacy
     * journal heartbeat and --verbose line, and (throttled) republishes
     * status.json and the metrics payload.
     */
    void unitFinished(const std::string &key);

    /**
     * Upsert (by id) one forked worker's progress row and republish
     * (throttled). Only the --workers parent calls this.
     */
    void workerUpdated(const WorkerHealthRow &row);

    /** Refresh the unit-cache counters shown on the surfaces. */
    void setCacheCounters(std::size_t units_cached,
                          const UnitCacheCounters &counters);

    /** Final unthrottled publication (campaign end). */
    void finish();

    /** The current progress view. */
    RunHealthSnapshot snapshot() const;

    /** Render @p snap as the status.json document. */
    static std::string renderStatusJson(const RunHealthSnapshot &snap,
                                        const std::string &signature);

    /** Render @p snap as an OpenMetrics exposition document. */
    static std::string renderMetrics(const RunHealthSnapshot &snap);

    /** Append @p snap's campaign_* families to @p w (composing the
     *  final payload with the merged stats registry). */
    static void appendMetrics(obs::OpenMetricsWriter &w,
                              const RunHealthSnapshot &snap);

  private:
    void publish(bool force);

    RunHealthConfig config_;
    mutable std::mutex mutex_;
    std::size_t done_ = 0;
    std::vector<std::string> busy_;
    std::vector<WorkerHealthRow> workerRows_;
    std::size_t unitsCached_ = 0;
    UnitCacheCounters cache_;
    std::chrono::steady_clock::time_point start_;
    std::chrono::steady_clock::time_point lastPublish_;
    bool published_ = false;
};

} // namespace solarcore::campaign

#endif // SOLARCORE_CAMPAIGN_RUN_HEALTH_HPP
