/**
 * @file
 * The per-unit metric record shared by the campaign runner, the
 * progress journal and the summary exporter. One flat, fixed schema:
 * every field is a double (counters included) so the journal and the
 * summary serialize from a single field table and stay in lockstep
 * with the struct. Extending the schema = adding a field here and a
 * row to metricFields(); the journal hash changes automatically, which
 * invalidates stale journals instead of misreading them.
 */

#ifndef SOLARCORE_CAMPAIGN_UNIT_METRICS_HPP
#define SOLARCORE_CAMPAIGN_UNIT_METRICS_HPP

#include <cstddef>

namespace solarcore::campaign {

/** Aggregated results of one scenario unit (one simulated day). */
struct UnitMetrics
{
    double mppEnergyWh = 0.0;     //!< theoretical maximum solar energy
    double solarEnergyWh = 0.0;   //!< energy harvested from the panel
    double gridEnergyWh = 0.0;    //!< energy drawn from the utility
    double chipEnergyWh = 0.0;    //!< energy the chip consumed
    double utilization = 0.0;     //!< MPPT efficiency: solar / MPP energy
    double effectiveFraction = 0.0; //!< solar-powered share of daytime
    double trackingError = 0.0;   //!< geomean per-period relative error
    double solarInstructions = 0.0; //!< throughput on solar power
    double totalInstructions = 0.0; //!< throughput incl. grid periods
    double retracks = 0.0;        //!< tracking events over the day
    double transfers = 0.0;       //!< ATS source switchovers
    double controllerSteps = 0.0; //!< DVFS notches the controller moved
    double thermalThrottles = 0.0; //!< forced notch-downs (RC model)
    double auditViolations = 0.0; //!< invariant-auditor violations (0
                                  //!< when auditing was off)
};

/** One row of the serialization schema. */
struct MetricField
{
    const char *name;
    double UnitMetrics::*member;
};

inline constexpr std::size_t kNumMetricFields = 14;

/** The fixed field table, in struct order. */
const MetricField (&metricFields())[kNumMetricFields];

} // namespace solarcore::campaign

#endif // SOLARCORE_CAMPAIGN_UNIT_METRICS_HPP
