/**
 * @file
 * Multi-process campaign sharding: fork one worker process per
 * contiguous shard of the pending unit list and stream results back
 * over length-prefixed pipes (util/pipe_channel).
 *
 * Protocol (worker -> parent; the parent never writes):
 *
 *   frame 'U': u8 tag, u32 unit index, kNumMetricFields raw doubles
 *              -- one completed unit's metrics, bit-exact (same
 *              machine, same binary), so the parent-side summary is
 *              byte-identical to an in-process run.
 *   frame 'S': u8 tag, serialized stats registry (obs/stats_wire)
 *              -- the worker's shard-merged registry, sent once after
 *              its last unit; the parent folds worker registries in
 *              worker-id order.
 *   frame 'T': u8 tag, one raw obs::SpanRecord (flat POD, same
 *              native-endian same-binary contract as 'U') -- emitted
 *              only when the campaign is collecting request spans:
 *              one span per simulated unit as it completes plus one
 *              shard-lifetime span at exit, all stitched into the
 *              parent's trace id (CLOCK_MONOTONIC survives fork).
 *
 * A worker that exits without completing its shard (crash, nonzero
 * exit, torn frame) is detected by EOF + waitpid; its incomplete
 * units are re-queued for the parent to run in-process. When stats
 * are being collected the *entire* shard of a crashed worker is
 * re-queued -- results already received would be kept, but their
 * stats contributions died with the worker, and a re-run restores
 * both consistently.
 *
 * Fork-safety contract: construct (= fork) strictly before any thread
 * exists in the parent -- before the ThreadPool, the metrics
 * endpoint, and the flight recorder are set up. Workers inherit the
 * resolved PV kernel (set pre-fork) and --threads for nested
 * parallelism; they run no observability surfaces of their own beyond
 * stats/audit counter collection.
 */

#ifndef SOLARCORE_CAMPAIGN_SHARD_EXEC_HPP
#define SOLARCORE_CAMPAIGN_SHARD_EXEC_HPP

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "obs/span.hpp"
#include "obs/stats_registry.hpp"

namespace solarcore::campaign {

/** True when fork()-based sharding works on this platform. */
bool processShardingSupported();

/**
 * Deterministic span id of unit @p index within @p trace_id; the
 * @p salt separates a worker-run unit span from a parent-side re-run
 * of the same unit after a worker crash (workers use salt 0, the
 * in-process path salt 1).
 */
std::uint64_t campaignUnitSpanId(std::uint64_t trace_id,
                                 std::size_t index, std::uint64_t salt);

/** One forked worker, as the parent sees it. */
struct ShardWorkerState
{
    int id = -1;              //!< 0-based worker index
    long pid = -1;            //!< child process id
    std::size_t shardBegin = 0; //!< first pending[] slot (inclusive)
    std::size_t shardEnd = 0;   //!< last pending[] slot (exclusive)
    std::size_t received = 0;   //!< unit results streamed back so far
    std::string lastKey;        //!< most recent unit key received
    bool alive = true;
    bool crashed = false;       //!< nonzero exit or incomplete shard
};

/** Forks workers over a pending shard; parent-side result merger. */
class ProcessShardRun
{
  public:
    /**
     * Fork @p workers children (clamped to pending.size()), each
     * owning a contiguous shard of @p pending. Call only while the
     * parent is single-threaded. @p units and @p pending must outlive
     * drain().
     */
    ProcessShardRun(const ScenarioGrid &grid,
                    const CampaignOptions &options,
                    const std::vector<ScenarioUnit> &units,
                    const std::vector<std::size_t> &pending, int workers);

    std::size_t workerCount() const { return workers_.size(); }
    const std::vector<ShardWorkerState> &workers() const
    {
        return workers_;
    }

    using UnitCallback =
        std::function<void(std::size_t unitIndex, const UnitMetrics &)>;
    using WorkerCallback = std::function<void(const ShardWorkerState &)>;

    /**
     * Parent event loop: poll worker pipes, invoke @p onUnit per
     * arriving result (arbitrary arrival order; slot by index) and
     * @p onWorker after each worker's state changes. Returns when
     * every worker has exited and been reaped.
     */
    void drain(const UnitCallback &onUnit, const WorkerCallback &onWorker);

    /** Pending indices that still need an in-process run. */
    const std::vector<std::size_t> &unfinished() const
    {
        return unfinished_;
    }

    /** Workers that died before completing their shard. */
    std::size_t crashes() const { return crashes_; }

    /** Worker registries merged in worker-id order (post-drain);
     *  valid only when stats collection was requested and every
     *  surviving worker delivered its registry. */
    const obs::StatsRegistry &stats() const { return stats_; }
    bool statsValid() const { return statsValid_; }

    /** Span records streamed back by workers ('T' frames, post-drain);
     *  non-empty only when the options carried a span parent id. A
     *  crashed worker contributes whatever it sent before dying. */
    const std::vector<obs::SpanRecord> &spans() const { return spans_; }

  private:
    const ScenarioGrid *grid_;
    const std::vector<ScenarioUnit> *units_;
    const std::vector<std::size_t> *pending_;
    bool wantStats_ = false;

    std::vector<ShardWorkerState> workers_;
    std::vector<int> fds_;                 //!< read ends, parallel
    std::vector<std::string> statsBlobs_;  //!< per worker, maybe empty
    std::vector<std::vector<char>> got_;   //!< per worker, per shard slot
    std::vector<std::size_t> unfinished_;
    std::vector<obs::SpanRecord> spans_;
    obs::StatsRegistry stats_;
    bool statsValid_ = false;
    std::size_t crashes_ = 0;
};

} // namespace solarcore::campaign

#endif // SOLARCORE_CAMPAIGN_SHARD_EXEC_HPP
