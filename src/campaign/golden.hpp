/**
 * @file
 * Golden-baseline comparison: parse two summary JSON files into
 * flattened (dotted-path -> value) maps and diff them under per-field
 * absolute/relative tolerances. This is the regression oracle behind
 * tools/golden_check -- the library layer is exposed so tests can
 * exercise the tolerance logic without spawning processes.
 *
 * The parser is a minimal recursive-descent reader of the JSON the
 * repo's own exporters emit (objects, arrays, strings, numbers, bools,
 * null). Arrays flatten with numeric path segments: the third unit's
 * utilization in a campaign summary is "units.2.utilization".
 */

#ifndef SOLARCORE_CAMPAIGN_GOLDEN_HPP
#define SOLARCORE_CAMPAIGN_GOLDEN_HPP

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace solarcore::campaign {

/** A flattened JSON leaf. */
struct JsonLeaf
{
    enum class Kind { Null, Bool, Number, String };
    Kind kind = Kind::Null;
    double number = 0.0;
    bool boolean = false;
    std::string text;

    /** Rendering for diff reports. */
    std::string describe() const;
};

using FlatJson = std::map<std::string, JsonLeaf>;

/**
 * Parse @p text into @p out. @return false with @p error set on
 * malformed input (position included).
 */
bool parseJsonFlat(std::string_view text, FlatJson &out,
                   std::string &error);

/** Absolute/relative tolerance pair; a field passes when
 *  |g - c| <= atol + rtol * |g|. */
struct Tolerance
{
    double rtol = 5e-4;
    double atol = 1e-9;
};

/**
 * Tolerance policy: a default pair plus substring-matched per-field
 * overrides (first match wins) and ignored path patterns.
 */
struct ToleranceSpec
{
    Tolerance fallback;
    std::vector<std::pair<std::string, Tolerance>> overrides;
    std::vector<std::string> ignored;

    Tolerance lookup(const std::string &path) const;
    bool isIgnored(const std::string &path) const;
};

/** One field-level discrepancy. */
struct GoldenDiff
{
    enum class Kind { Mismatch, MissingInCandidate, ExtraInCandidate };
    Kind kind = Kind::Mismatch;
    std::string path;
    std::string golden;     //!< rendered golden value ("" when extra)
    std::string candidate;  //!< rendered candidate value ("" if missing)
    double absError = 0.0;  //!< numeric mismatches only
    double relError = 0.0;
};

/**
 * Diff @p candidate against @p golden. Numbers compare under the
 * tolerance for their path; strings/bools/null compare exactly; a
 * kind change (number -> string) is always a mismatch. Missing and
 * extra paths are reported unless ignored.
 */
std::vector<GoldenDiff> compareFlat(const FlatJson &golden,
                                    const FlatJson &candidate,
                                    const ToleranceSpec &tolerances);

} // namespace solarcore::campaign

#endif // SOLARCORE_CAMPAIGN_GOLDEN_HPP
