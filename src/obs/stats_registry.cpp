#include "stats_registry.hpp"

#include <algorithm>

#include "obs/json.hpp"
#include "util/logging.hpp"

namespace solarcore::obs {

// ---------------------------------------------------------------- scalar

std::string
ScalarStat::jsonValue(const StatsRegistry &) const
{
    return jsonNumber(value_);
}

void
ScalarStat::flatten(const StatsRegistry &,
                    std::vector<std::pair<std::string, double>> &out) const
{
    out.emplace_back(name(), value_);
}

// ---------------------------------------------------------------- vector

double
VectorStat::total() const
{
    double t = 0.0;
    for (const double v : lanes_)
        t += v;
    return t;
}

void
VectorStat::ensureLanes(std::size_t lanes)
{
    if (lanes > lanes_.size())
        lanes_.resize(lanes, 0.0);
}

void
VectorStat::reset()
{
    std::fill(lanes_.begin(), lanes_.end(), 0.0);
}

std::string
VectorStat::jsonValue(const StatsRegistry &) const
{
    std::string out = "[";
    for (std::size_t i = 0; i < lanes_.size(); ++i) {
        if (i)
            out += ',';
        out += jsonNumber(lanes_[i]);
    }
    out += ']';
    return out;
}

void
VectorStat::flatten(const StatsRegistry &,
                    std::vector<std::pair<std::string, double>> &out) const
{
    for (std::size_t i = 0; i < lanes_.size(); ++i)
        out.emplace_back(name() + "." + std::to_string(i), lanes_[i]);
}

// ------------------------------------------------------------- histogram

HistogramStat::HistogramStat(std::string name, std::string desc, double lo,
                             double hi, std::size_t bins)
    : StatBase(std::move(name), std::move(desc)), lo_(lo), hi_(hi),
      counts_(bins, 0)
{
    SC_ASSERT(hi > lo && bins > 0, "HistogramStat: bad range");
}

void
HistogramStat::add(double x)
{
    const double t = (x - lo_) / (hi_ - lo_) *
        static_cast<double>(counts_.size());
    const auto last = static_cast<double>(counts_.size() - 1);
    const auto i = static_cast<std::size_t>(std::clamp(t, 0.0, last));
    ++counts_[i];
    ++total_;
    sum_ += x;
}

void
HistogramStat::addBinCount(std::size_t i, std::uint64_t n)
{
    counts_.at(i) += n;
    total_ += n;
}

double
HistogramStat::binLow(std::size_t i) const
{
    return lo_ + (hi_ - lo_) * static_cast<double>(i) /
        static_cast<double>(counts_.size());
}

void
HistogramStat::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    total_ = 0;
    sum_ = 0.0;
}

std::string
HistogramStat::jsonValue(const StatsRegistry &) const
{
    std::string out = "{\"lo\":" + jsonNumber(lo_) +
        ",\"hi\":" + jsonNumber(hi_) + ",\"total\":" + jsonNumber(total_) +
        ",\"bins\":[";
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        if (i)
            out += ',';
        out += jsonNumber(counts_[i]);
    }
    out += "]}";
    return out;
}

void
HistogramStat::flatten(const StatsRegistry &,
                       std::vector<std::pair<std::string, double>> &out)
    const
{
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        out.emplace_back(name() + ".bin" + std::to_string(i),
                         static_cast<double>(counts_[i]));
    }
}

// --------------------------------------------------------------- formula

std::string
FormulaStat::jsonValue(const StatsRegistry &reg) const
{
    return jsonNumber(fn_(reg));
}

void
FormulaStat::flatten(const StatsRegistry &reg,
                     std::vector<std::pair<std::string, double>> &out) const
{
    out.emplace_back(name(), fn_(reg));
}

// -------------------------------------------------------------- registry

template <typename T, typename... Args>
T &
StatsRegistry::findOrCreate(const std::string &name,
                            const std::string &desc, Args &&...args)
{
    auto it = stats_.find(name);
    if (it == stats_.end()) {
        it = stats_
                 .emplace(name, std::make_unique<T>(
                                    name, desc,
                                    std::forward<Args>(args)...))
                 .first;
    }
    T *typed = dynamic_cast<T *>(it->second.get());
    if (!typed)
        SC_PANIC("stat '", name, "' already registered with another type");
    return *typed;
}

ScalarStat &
StatsRegistry::scalar(const std::string &name, const std::string &desc)
{
    return findOrCreate<ScalarStat>(name, desc);
}

VectorStat &
StatsRegistry::vector(const std::string &name, std::size_t lanes,
                      const std::string &desc)
{
    auto &v = findOrCreate<VectorStat>(name, desc, lanes);
    v.ensureLanes(lanes);
    return v;
}

HistogramStat &
StatsRegistry::histogram(const std::string &name, double lo, double hi,
                         std::size_t bins, const std::string &desc)
{
    return findOrCreate<HistogramStat>(name, desc, lo, hi, bins);
}

FormulaStat &
StatsRegistry::formula(const std::string &name, FormulaStat::Fn fn,
                       const std::string &desc)
{
    return findOrCreate<FormulaStat>(name, desc, std::move(fn));
}

const StatBase *
StatsRegistry::find(std::string_view name) const
{
    const auto it = stats_.find(name);
    return it == stats_.end() ? nullptr : it->second.get();
}

double
StatsRegistry::value(std::string_view name) const
{
    const StatBase *s = find(name);
    if (!s)
        return 0.0;
    if (const auto *sc = dynamic_cast<const ScalarStat *>(s))
        return sc->value();
    if (const auto *v = dynamic_cast<const VectorStat *>(s))
        return v->total();
    if (const auto *h = dynamic_cast<const HistogramStat *>(s))
        return static_cast<double>(h->total());
    if (const auto *f = dynamic_cast<const FormulaStat *>(s))
        return f->value(*this);
    return 0.0;
}

void
StatsRegistry::forEach(
    const std::function<void(const StatBase &)> &fn) const
{
    for (const auto &[name, stat] : stats_)
        fn(*stat);
}

void
StatsRegistry::resetAll()
{
    for (auto &[name, stat] : stats_)
        stat->reset();
}

std::vector<std::pair<std::string, double>>
StatsRegistry::snapshot() const
{
    std::vector<std::pair<std::string, double>> out;
    out.reserve(stats_.size());
    for (const auto &[name, stat] : stats_)
        stat->flatten(*this, out);
    return out;
}

void
StatsRegistry::merge(const StatsRegistry &other)
{
    for (const auto &[name, stat] : other.stats_) {
        if (const auto *sc = dynamic_cast<const ScalarStat *>(stat.get())) {
            scalar(name, sc->desc()) += sc->value();
        } else if (const auto *v =
                       dynamic_cast<const VectorStat *>(stat.get())) {
            auto &dst = vector(name, v->lanes(), v->desc());
            for (std::size_t i = 0; i < v->lanes(); ++i)
                dst.lane(i) += v->lane(i);
        } else if (const auto *h =
                       dynamic_cast<const HistogramStat *>(stat.get())) {
            auto &dst =
                histogram(name, h->lo(), h->hi(), h->bins(), h->desc());
            SC_ASSERT(dst.bins() == h->bins() && dst.lo() == h->lo() &&
                          dst.hi() == h->hi(),
                      "merge: histogram '", name, "' shape mismatch");
            for (std::size_t i = 0; i < h->bins(); ++i)
                dst.addBinCount(i, h->bin(i));
            dst.addSum(h->sum());
        } else if (const auto *f =
                       dynamic_cast<const FormulaStat *>(stat.get())) {
            formula(name, f->fn(), f->desc());
        }
    }
}

void
StatsRegistry::dumpJson(std::ostream &os) const
{
    JsonObjectWriter w(os);
    for (const auto &[name, stat] : stats_)
        w.raw(name, stat->jsonValue(*this));
    w.close();
    os << '\n';
}

void
StatsRegistry::dumpCsv(std::ostream &os) const
{
    os << "stat,value\n";
    for (const auto &[name, value] : snapshot())
        os << name << ',' << jsonNumber(value) << '\n';
}

// ----------------------------------------------------------------- scope

StatScope
StatScope::sub(const std::string &name) const
{
    return StatScope(*reg_, qualify(name));
}

std::string
StatScope::qualify(const std::string &name) const
{
    return prefix_.empty() ? name : prefix_ + "." + name;
}

} // namespace solarcore::obs
