/**
 * @file
 * Run manifests: a sidecar JSON record of what an invocation actually
 * ran -- tool name, argv, flattened configuration, seed, the build's
 * `git describe`, and wall/CPU time -- so every stats dump or trace
 * file can be tied back to the exact binary and knobs that produced
 * it. The describe string is baked in at configure time (SC_GIT_
 * DESCRIBE); "unknown" outside a git checkout.
 */

#ifndef SOLARCORE_OBS_MANIFEST_HPP
#define SOLARCORE_OBS_MANIFEST_HPP

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace solarcore::obs {

/** The `git describe` of the tree this binary was built from. */
const char *buildGitDescribe();

/** The process peak resident set size [bytes]; 0 when unavailable. */
std::uint64_t peakRssBytes();

/** One invocation's provenance record. */
class RunManifest
{
  public:
    /** Starts the wall/CPU clocks. */
    explicit RunManifest(std::string tool);

    /** Convenience: tool from argv[0], args from argv[1..]. */
    RunManifest(int argc, char **argv);

    /** Record one flattened configuration key. */
    void set(const std::string &key, const std::string &value);
    void set(const std::string &key, double value);
    void set(const std::string &key, std::uint64_t value);

    void setSeed(std::uint64_t seed) { seed_ = seed; }

    /** Stop the clocks (idempotent; also called by writeJson). */
    void finish();

    double wallSeconds() const { return wallSeconds_; }
    double cpuSeconds() const { return cpuSeconds_; }

    /** Render the manifest as one JSON object. */
    void writeJson(std::ostream &os);

    /**
     * Write to @p path (conventionally `<output>.manifest.json`).
     * @return false (with a warning) when the file cannot be opened.
     */
    bool writeFile(const std::string &path);

  private:
    std::string tool_;
    std::vector<std::string> args_;
    std::map<std::string, std::string> config_; //!< pre-rendered JSON
    std::uint64_t seed_ = 0;
    std::int64_t startWallNs_ = 0;
    std::int64_t startCpuNs_ = 0;
    double wallSeconds_ = -1.0;
    double cpuSeconds_ = -1.0;
};

} // namespace solarcore::obs

#endif // SOLARCORE_OBS_MANIFEST_HPP
