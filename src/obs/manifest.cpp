#include "manifest.hpp"

#include <chrono>
#include <ctime>
#include <fstream>

#include <sys/resource.h>

#include "obs/json.hpp"
#include "util/logging.hpp"

#ifndef SC_GIT_DESCRIBE
#define SC_GIT_DESCRIBE "unknown"
#endif

namespace solarcore::obs {

namespace {

std::int64_t
wallNowNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

std::int64_t
cpuNowNs()
{
    // CLOCK_PROCESS_CPUTIME_ID covers all threads of the process.
    timespec ts{};
    if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) != 0)
        return 0;
    return static_cast<std::int64_t>(ts.tv_sec) * 1000000000 + ts.tv_nsec;
}

} // namespace

const char *
buildGitDescribe()
{
    return SC_GIT_DESCRIBE;
}

std::uint64_t
peakRssBytes()
{
    rusage ru{};
    if (getrusage(RUSAGE_SELF, &ru) != 0)
        return 0;
#ifdef __APPLE__
    return static_cast<std::uint64_t>(ru.ru_maxrss); // already bytes
#else
    return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024; // KiB
#endif
}

RunManifest::RunManifest(std::string tool)
    : tool_(std::move(tool)), startWallNs_(wallNowNs()),
      startCpuNs_(cpuNowNs())
{}

RunManifest::RunManifest(int argc, char **argv)
    : RunManifest(argc > 0 ? argv[0] : "?")
{
    for (int i = 1; i < argc; ++i)
        args_.emplace_back(argv[i]);
}

void
RunManifest::set(const std::string &key, const std::string &value)
{
    config_[key] = jsonString(value);
}

void
RunManifest::set(const std::string &key, double value)
{
    config_[key] = jsonNumber(value);
}

void
RunManifest::set(const std::string &key, std::uint64_t value)
{
    config_[key] = jsonNumber(value);
}

void
RunManifest::finish()
{
    if (wallSeconds_ >= 0.0)
        return;
    wallSeconds_ = static_cast<double>(wallNowNs() - startWallNs_) * 1e-9;
    cpuSeconds_ = static_cast<double>(cpuNowNs() - startCpuNs_) * 1e-9;
}

void
RunManifest::writeJson(std::ostream &os)
{
    finish();
    JsonObjectWriter w(os);
    w.field("tool", tool_);
    {
        std::string args = "[";
        for (std::size_t i = 0; i < args_.size(); ++i) {
            if (i)
                args += ',';
            args += jsonString(args_[i]);
        }
        args += ']';
        w.raw("args", args);
    }
    w.field("git_describe", std::string_view(buildGitDescribe()));
    w.field("seed", seed_);
    {
        std::string cfg = "{";
        bool first = true;
        for (const auto &[key, value] : config_) {
            if (!first)
                cfg += ',';
            first = false;
            cfg += jsonString(key) + ":" + value;
        }
        cfg += '}';
        w.raw("config", cfg);
    }
    w.field("wall_seconds", wallSeconds_);
    w.field("cpu_seconds", cpuSeconds_);
    w.field("peak_rss_bytes", peakRssBytes());
    w.close();
    os << '\n';
}

bool
RunManifest::writeFile(const std::string &path)
{
    std::ofstream os(path);
    if (!os) {
        SC_WARN("manifest: cannot open '", path, "'");
        return false;
    }
    writeJson(os);
    return true;
}

} // namespace solarcore::obs
