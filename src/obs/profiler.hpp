/**
 * @file
 * Scoped self-profiler: RAII phase timers on the simulator's hot
 * paths, aggregated into a per-profiler hierarchical tree.
 *
 *   SC_PROFILE_SCOPE("mpp.solve");
 *
 * opens a frame under the profiler attached to the current thread (a
 * plain thread-local pointer). With no profiler attached the macro
 * costs one thread-local load and a branch, which is what lets the
 * scopes live permanently inside the I-V solve, the MPP cache, the
 * TPR allocator, the day loop and the campaign unit without showing
 * up in the profiler-off microbench gate.
 *
 * Each tree node keeps count / total / min / max plus a log2-bucket
 * latency histogram from which p50/p99 are interpolated -- no
 * per-sample storage, so profiling allocates only when a new scope
 * name first appears. Children are keyed by name in an ordered map,
 * so merging per-task profilers in task-index order (the same
 * contract as PR 2's trace buffers and stats registries) produces a
 * tree whose structure and counts are identical at any thread count.
 *
 * Dump formats: a hierarchical JSON tree, and flamegraph-compatible
 * collapsed stacks ("day;step;mpp.solve <total_us>") for
 * flamegraph.pl / speedscope.
 */

#ifndef SOLARCORE_OBS_PROFILER_HPP
#define SOLARCORE_OBS_PROFILER_HPP

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

namespace solarcore::obs {

/** A hierarchical scope-timing aggregator. Not thread-safe: one per
 *  worker, merge()d in task order. */
class Profiler
{
  public:
    /** log2(ns) latency buckets: [2^i, 2^(i+1)) ns up to ~17 min. */
    static constexpr std::size_t kHistBuckets = 40;

    /** One aggregated scope node. */
    struct Node
    {
        std::string name;
        std::uint64_t count = 0;
        std::int64_t totalNs = 0;
        std::int64_t minNs = 0;
        std::int64_t maxNs = 0;
        std::uint64_t hist[kHistBuckets] = {};
        std::map<std::string, std::unique_ptr<Node>> children;

        /** Interpolated latency quantile (q in [0,1]) from the
         *  histogram [ns]; 0 with no samples. */
        double quantileNs(double q) const;

        void record(std::int64_t elapsed_ns);
    };

    Profiler();
    Profiler(const Profiler &) = delete;
    Profiler &operator=(const Profiler &) = delete;

    /** Open a frame named @p name under the current frame. */
    void enter(const char *name);

    /** Close the innermost frame, crediting @p elapsed_ns to it. */
    void exit(std::int64_t elapsed_ns);

    /** The synthetic root ("" name; holds top-level phases). */
    const Node &root() const { return root_; }

    /**
     * The currently open scope names, outermost first, written into
     * @p out (up to @p max). Allocation-free and async-signal-safe
     * when called on the owning thread (the crash flight recorder
     * snapshots the crashing thread's own stack): the returned
     * pointers alias live Node names, which the owning thread is not
     * mutating while it sits inside a signal handler.
     * @return the number of entries written
     */
    std::size_t openScopeNames(const char **out,
                               std::size_t max) const noexcept;

    /** Total time credited to top-level phases [ns]. */
    std::int64_t totalNs() const;

    /**
     * Fold @p other into this tree: same-path nodes add their counts,
     * totals and histograms; min/max combine; new paths are copied.
     * Call in task-index order for thread-count-independent output.
     */
    void merge(const Profiler &other);

    /** Hierarchical JSON dump (count/total/min/max/p50/p99 per node,
     *  times in microseconds). */
    void writeJson(std::ostream &os) const;

    /** Flamegraph collapsed stacks: "a;b;c <total_us>" per node. */
    void writeCollapsed(std::ostream &os) const;

    /** The profiler attached to this thread (nullptr: detached). */
    static Profiler *current();

    /** RAII thread attachment; restores the previous binding. */
    class Attach
    {
      public:
        explicit Attach(Profiler *profiler);
        ~Attach();
        Attach(const Attach &) = delete;
        Attach &operator=(const Attach &) = delete;

      private:
        Profiler *previous_;
    };

  private:
    Node root_;
    Node *current_ = &root_;
    std::vector<Node *> frameStack_; //!< open frames (parents)
};

/** Monotonic timestamp for scope timing [ns]. */
std::int64_t profileNowNs();

/** One RAII profiling frame; no-op while no profiler is attached. */
class ProfileScope
{
  public:
    explicit ProfileScope(const char *name)
        : profiler_(Profiler::current())
    {
        if (profiler_) {
            profiler_->enter(name);
            startNs_ = profileNowNs();
        }
    }

    ~ProfileScope()
    {
        if (profiler_)
            profiler_->exit(profileNowNs() - startNs_);
    }

    ProfileScope(const ProfileScope &) = delete;
    ProfileScope &operator=(const ProfileScope &) = delete;

  private:
    Profiler *profiler_;
    std::int64_t startNs_ = 0;
};

#define SC_PROFILE_CONCAT2(a, b) a##b
#define SC_PROFILE_CONCAT(a, b) SC_PROFILE_CONCAT2(a, b)

/** Time the rest of the enclosing block as profiler phase @p name. */
#define SC_PROFILE_SCOPE(name)                                               \
    ::solarcore::obs::ProfileScope SC_PROFILE_CONCAT(sc_profile_scope_,     \
                                                     __LINE__)(name)

} // namespace solarcore::obs

#endif // SOLARCORE_OBS_PROFILER_HPP
